// Command duploserved serves simulations over HTTP: submit jobs, stream
// whole-figure sweeps, and share one warm content-addressed result store
// across any number of clients (internal/server, DESIGN.md §8).
//
// Usage:
//
//	duploserved -addr 127.0.0.1:8080 -store ~/.cache/duplo
//	duploserved -addr 127.0.0.1:0               # pick a free port (printed)
//	duploserved -ctas 192 -sms 8 -workers 16    # scale the cell size / pool
//
// API (JSON; errors are typed problem documents):
//
//	curl -X POST localhost:8080/v1/runs -d '{"network":"ResNet","layer":"C2","duplo":true}'
//	curl localhost:8080/v1/runs/r000001
//	curl -X DELETE localhost:8080/v1/runs/r000001   # cancel
//	curl localhost:8080/v1/sweeps/fig9              # NDJSON progress stream
//	curl localhost:8080/v1/sweeps/cluster           # DES cluster serving sweep (-seed fixes the traffic)
//	curl localhost:8080/healthz
//	curl localhost:8080/statsz                      # includes the predictor block
//	curl -X POST localhost:8080/v1/calibrate        # fit/load the predictor calibration
//
// With -predict hybrid (or predict-all), sweeps serve low-uncertainty
// cells from the calibrated analytical model (DESIGN.md §9) instead of
// cycle-sim; predicted cells are "~"-marked in tables and counted in
// /statsz. POST /v1/calibrate (add ?force=1 to refit) pre-warms the
// calibration; jobs submitted via /v1/runs always run real cycle-sim.
//
// -max-cycles and -wall-timeout set the default per-job budgets (each job
// may tighten its own via max_cycles / wall_timeout_ms). Ctrl-C/SIGTERM
// drains: in-flight jobs are cancelled (clients see the typed
// "cancelled" error) and open connections get a grace period to finish.
//
// -cpuprofile / -memprofile write pprof profiles of the daemon itself
// (flushed on clean shutdown) — the same flags duplosim and duploexp
// take, for performance work on the serving path.
//
// Operational robustness (DESIGN.md §12): -max-inflight/-queue-cap bound
// job admission (shed 429 + Retry-After beyond them), -max-sweeps bounds
// streaming sweeps (503), -max-body bounds POST bodies (413), -job-ttl
// evicts finished jobs (evicted ids answer 410 gone). Store failures
// retry with backoff (-store-retries) and trip a circuit breaker
// (-breaker-threshold / -breaker-open) that degrades the daemon to
// memo-only rather than failing jobs; /healthz reports degraded (503
// under ?strict=1) until the disk recovers. -journal records job
// starts/ends so a killed daemon reports in-flight jobs as typed
// "interrupted" after restart. -fault-spec/-fault-seed arm deterministic
// fault injection for chaos testing — never in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"duplo/internal/experiments"
	"duplo/internal/fault"
	"duplo/internal/profiling"
	"duplo/internal/server"
	"duplo/internal/store"
)

var (
	addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is printed)")
	storeDir    = flag.String("store", "", "directory of the on-disk result store (strongly recommended; created if missing)")
	ctas        = flag.Int("ctas", 96, "max CTAs simulated per kernel")
	simSMs      = flag.Int("sms", 4, "number of SMs simulated")
	workers     = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	smWorkers   = flag.Int("sm-workers", 0, "goroutines sharding the SMs inside each simulation (0 = serial reference loop)")
	maxCycles   = flag.Int64("max-cycles", 0, "default per-job simulated-cycle budget (0 = simulator default)")
	wallTimeout = flag.Duration("wall-timeout", 0, "default per-job wall-clock budget (0 = none)")
	crashDir    = flag.String("crash-dir", "", "directory for watchdog/panic crash dumps (default: system temp dir)")
	predict     = flag.String("predict", "off", "sweep predictor mode: off | predict-all | hybrid (jobs always run cycle-sim)")
	predBound   = flag.Float64("predict-bound", 0.15, "hybrid mode: max predicted relative error before falling back to cycle-sim")
	calibPath   = flag.String("calibration", "", "calibration artifact path (default: <store>/calibration/<key>.json)")
	gracePeriod = flag.Duration("grace", 5*time.Second, "shutdown grace period for open connections")
	seed        = flag.Int64("seed", 0, "serving cluster RNG seed for /v1/sweeps/cluster (0 = default 1)")
	verbose     = flag.Bool("v", false, "log job progress to stderr")
	cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the daemon to this file on exit")
	memprofile  = flag.String("memprofile", "", "write a heap profile of the daemon to this file on exit")

	// Operational-robustness knobs (DESIGN.md §12).
	maxInflight = flag.Int("max-inflight", 16, "max concurrently executing jobs (0 = unbounded)")
	queueCap    = flag.Int("queue-cap", 64, "max pending jobs beyond the in-flight bound; above it submissions get 429 + Retry-After")
	maxSweeps   = flag.Int("max-sweeps", 4, "max concurrently streaming sweeps; above it 503 + Retry-After (0 = unbounded)")
	jobTTL      = flag.Duration("job-ttl", time.Hour, "retention of finished jobs; evicted ids answer 410 gone (0 = keep forever)")
	journalPath = flag.String("journal", "", "job journal path for crash recovery (default <store>/journal.jsonl; \"none\" disables)")
	maxBody     = flag.Int64("max-body", 1<<20, "max POST body bytes; above it a typed 413 (0 = unbounded)")

	// Store resilience (requires -store).
	breakerThreshold = flag.Int("breaker-threshold", 5, "consecutive store failures that trip the circuit breaker")
	breakerOpen      = flag.Duration("breaker-open", 5*time.Second, "open-breaker dwell before a half-open probe")
	storeRetries     = flag.Int("store-retries", 2, "retries per transient store failure (exponential backoff + jitter)")

	// Deterministic fault injection — test/chaos tooling, never set in
	// production (internal/fault; an empty spec arms nothing).
	faultSpec = flag.String("fault-spec", "", "semicolon-separated fault rules, e.g. 'store-read:p=0.1;sim:nth=3' (testing only)")
	faultSeed = flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")
)

func main() {
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(ctx)
		if e := stop(); err == nil {
			err = e
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "duploserved:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	mode, err := experiments.ParsePredictorMode(*predict)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		MaxCTAs: *ctas, SimSMs: *simSMs, Workers: *workers, SMWorkers: *smWorkers,
		MaxCycles: *maxCycles, WallTimeout: *wallTimeout, CrashDumpDir: *crashDir,
		Predictor: mode, PredictBound: *predBound, CalibrationPath: *calibPath,
		Seed:    *seed,
		Context: ctx,
	}
	if *verbose {
		opts.Verbose = true
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	// Fault injection is armed only by an explicit -fault-spec; the nil
	// injector leaves the production path hook-free.
	var injector *fault.Injector
	if *faultSpec != "" {
		injector, err = fault.Parse(*faultSpec, *faultSeed)
		if err != nil {
			return err
		}
		opts.Faults = injector
		fmt.Fprintln(os.Stderr, "duploserved: FAULT INJECTION ARMED:", *faultSpec)
	}

	cfg := server.Config{
		Options:      opts,
		MaxInflight:  *maxInflight,
		QueueCap:     *queueCap,
		MaxSweeps:    *maxSweeps,
		JobTTL:       *jobTTL,
		MaxBodyBytes: *maxBody,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		if injector != nil {
			st.SetFaults(injector)
		}
		st.EnableResilience(store.ResilienceConfig{
			FailureThreshold: *breakerThreshold,
			OpenFor:          *breakerOpen,
			Retries:          *storeRetries,
			Seed:             *seed,
		})
		cfg.Store = st
	} else {
		fmt.Fprintln(os.Stderr, "duploserved: no -store: results die with the process")
	}
	jpath := *journalPath
	if jpath == "" && *storeDir != "" {
		jpath = filepath.Join(*storeDir, "journal.jsonl")
	}
	if jpath != "" && jpath != "none" {
		jl, err := server.OpenJournal(jpath)
		if err != nil {
			return err
		}
		defer jl.Close()
		if n := len(jl.Interrupted()); n > 0 {
			fmt.Fprintf(os.Stderr, "duploserved: journal: %d job(s) interrupted by a previous crash\n", n)
		}
		cfg.Journal = jl
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so scripts (and the CI smoke) can
	// use -addr host:0 and parse the actual port.
	fmt.Printf("duploserved listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:     server.New(cfg).Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Header/read bounds defend the accept loop; the write timeout
		// bounds silent responses, with the NDJSON sweep stream exempted
		// via its per-event sliding deadline (internal/server/sweep.go).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "duploserved: shutting down (in-flight jobs cancelled)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
