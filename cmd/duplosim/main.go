// Command duplosim simulates one convolutional layer on the modeled GPU,
// baseline and (optionally) with the Duplo detection unit, and prints the
// statistics block.
//
// Usage:
//
//	duplosim -net ResNet -layer C2                 # baseline vs Duplo
//	duplosim -net YOLO -layer C4 -lhb 2048 -ways 8
//	duplosim -net GAN -layer TC1 -oracle -ctas 192
//	duplosim -net ResNet -layer C2 -workers 2      # baseline and Duplo in parallel
//	duplosim -net ResNet -layer C2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	duplosim -net ResNet -layer C2 -trace out.trace.json -metrics-csv out.csv
//
// With -workers > 1 (default GOMAXPROCS) the baseline and Duplo
// simulations run concurrently; output order and values are unchanged.
// -cpuprofile / -memprofile write pprof profiles of the simulator itself;
// -dense forces the one-cycle-at-a-time reference clock.
//
// -trace writes a Perfetto/Chrome trace-event JSON timeline of the traced
// run (load it at https://ui.perfetto.dev) and -metrics-csv a per-interval
// time-series CSV whose counter columns sum exactly to the printed final
// statistics; -interval sets the bucket width in cycles and -trace-run
// picks which of the two runs (base or duplo) is traced. Tracing never
// changes the simulated results (internal/trace, DESIGN.md §4).
//
// -timeout and -max-cycles bound each simulation in wall-clock time and
// simulated cycles; Ctrl-C cancels cleanly. An aborted or livelocked run
// returns a structured error referencing a crash-dump file (written under
// -crash-dir, default the system temp dir) with the frozen pipeline state
// (DESIGN.md §5 "Robustness").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"

	duplo "duplo/internal/core"
	"duplo/internal/experiments"
	"duplo/internal/profiling"
	"duplo/internal/sim"
	"duplo/internal/store"
	"duplo/internal/trace"
	"duplo/internal/workload"
)

var (
	net        = flag.String("net", "ResNet", "network (ResNet, GAN, YOLO)")
	layer      = flag.String("layer", "C2", "layer name from Table I (C1.., TC1..)")
	lhb        = flag.Int("lhb", 1024, "LHB entries")
	ways       = flag.Int("ways", 1, "LHB associativity")
	oracle     = flag.Bool("oracle", false, "infinite LHB")
	ctas       = flag.Int("ctas", 96, "max CTAs simulated (0 = full grid)")
	simSMs     = flag.Int("sms", 4, "SMs simulated")
	batch      = flag.Int("batch", 0, "override batch size (default Table I's 8)")
	workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	smWorkers  = flag.Int("sm-workers", 0, "goroutines sharding the SMs inside each simulation (0 = GOMAXPROCS, 1 = serial reference loop; results identical)")
	dense      = flag.Bool("dense", false, "force the dense (non-cycle-skipping) clock")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceOut   = flag.String("trace", "", "write a Perfetto/Chrome trace-event JSON timeline to this file")
	metricsCSV = flag.String("metrics-csv", "", "write per-interval time-series metrics CSV to this file")
	interval   = flag.Int64("interval", 10000, "metrics interval in cycles (for -trace/-metrics-csv)")
	traceRun   = flag.String("trace-run", "duplo", "which run the tracer observes: base or duplo")
	timeout    = flag.Duration("timeout", 0, "abort either simulation past this much wall-clock time (0 = none)")
	maxCycles  = flag.Int64("max-cycles", 0, "abort either simulation past this many cycles (0 = simulator default)")
	crashDir   = flag.String("crash-dir", "", "directory for watchdog/panic crash dumps (default: system temp dir)")
	storeDir   = flag.String("store", "", "directory of the on-disk result store (warm-starts identical runs; created if missing)")
	noPool     = flag.Bool("no-pool", false, "disable simulator-state reuse between the baseline and Duplo runs (results identical either way)")
	predict    = flag.String("predict", "off", "calibrated analytical fast path: off | predict-all | hybrid (predicted stats are labeled; see DESIGN.md §9)")
	predBound  = flag.Float64("predict-bound", 0.15, "hybrid mode's uncertainty bound (0 = never predict)")
	calibPath  = flag.String("calibration", "", "calibration artifact path (default: <store>/calibration/<key>.json when -store is set, else in-memory only)")
)

func main() {
	flag.Parse()
	// Ctrl-C / SIGTERM cancels the in-flight simulations; the error names
	// the cancellation point. A second signal kills the process outright.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(ctx)
		if e := stop(); err == nil {
			err = e
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplosim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	l, err := workload.Find(*net, *layer)
	if err != nil {
		return err
	}
	if *batch > 0 {
		l.Params = l.Params.WithBatch(*batch)
	}
	k, err := sim.NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		return err
	}
	cfg := sim.TitanVConfig()
	cfg.MaxCTAs = *ctas
	cfg.SimSMs = *simSMs
	cfg.DenseClock = *dense
	cfg.SMWorkers = *smWorkers
	cfg.MaxCycles = *maxCycles
	cfg.WallTimeout = *timeout
	cfg.CrashDumpDir = *crashDir

	fmt.Printf("%s: %v\n", l.FullName(), l.GemmParams())
	fmt.Printf("GEMM %dx%dx%d (padded %dx%dx%d), %d CTAs total, simulating %d on %d SMs\n\n",
		k.M, k.N, k.K, k.MPad, k.NPad, k.KPad, k.TotalCTAs(), min(*ctas, k.TotalCTAs()), cfg.SimSMs)

	dcfg := cfg
	dcfg.Duplo = true
	dcfg.DetectCfg.LHB = duplo.LHBConfig{Entries: *lhb, Ways: *ways, Oracle: *oracle}

	// Attach the event collector to the requested run.
	var col *trace.Collector
	if *traceOut != "" || *metricsCSV != "" {
		col = trace.NewCollector(cfg.TraceMeta(*interval))
		switch *traceRun {
		case "base":
			cfg.Tracer = col
		case "duplo":
			dcfg.Tracer = col
		default:
			return fmt.Errorf("-trace-run must be base or duplo, got %q", *traceRun)
		}
	}

	// Both runs go through the experiments runner: with -workers > 1 the
	// baseline and Duplo simulations execute concurrently, and -store
	// warm-starts them from the on-disk result store (a traced run always
	// executes — the collector must observe a real execution).
	mode, err := experiments.ParsePredictorMode(*predict)
	if err != nil {
		return err
	}
	ropts := experiments.Options{MaxCTAs: *ctas, SimSMs: *simSMs, Workers: *workers, SMWorkers: *smWorkers, Context: ctx,
		MaxCycles: *maxCycles, WallTimeout: *timeout, CrashDumpDir: *crashDir, DisableStatePool: *noPool,
		Predictor: mode, PredictBound: *predBound, CalibrationPath: *calibPath}
	if mode != experiments.PredictorOff {
		// Prediction engages only inside the runner's calibrated envelope, so
		// the run config must be the resolved options config (notably
		// SMWorkers 0 resolves to the serial per-run loop — results are
		// byte-identical either way). Dense-clock or traced runs fall
		// outside the envelope and simulate as usual.
		cfg = ropts.Config()
		cfg.DenseClock = *dense
		dcfg = cfg
		dcfg.Duplo = true
		dcfg.DetectCfg.LHB = duplo.LHBConfig{Entries: *lhb, Ways: *ways, Oracle: *oracle}
		if *traceRun == "base" && col != nil {
			cfg.Tracer = col
		} else if col != nil {
			dcfg.Tracer = col
		}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		ropts.Store = st
	}
	r := experiments.NewRunner(ropts)
	var base, dup sim.Result
	var baseErr, dupErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); base, baseErr = r.Run(k, cfg) }()
	go func() { defer wg.Done(); dup, dupErr = r.Run(k, dcfg) }()
	wg.Wait()
	for _, err := range []error{baseErr, dupErr} {
		if err != nil {
			return err
		}
	}
	printStats("baseline", base)
	printStats("duplo", dup)

	mark := ""
	if base.Predicted || dup.Predicted {
		mark = " ~"
	}
	fmt.Printf("performance improvement: %+.1f%%%s\n", 100*sim.Speedup(base, dup), mark)
	fmt.Printf("DRAM read traffic:       %+.1f%%\n",
		100*(float64(dup.DRAMLines)/float64(base.DRAMLines)-1))
	fmt.Printf("LHB hit rate:            %.1f%% (%d lookups, %d hits)\n",
		100*dup.LHBHitRate(), dup.LHB.Lookups, dup.LHB.Hits)

	if col != nil {
		traced := dup
		if *traceRun == "base" {
			traced = base
		}
		col.Finish(traced.Cycles)
		if err := writeExports(col); err != nil {
			return err
		}
	}
	return nil
}

// writeExports dumps the collected run to the requested files.
func writeExports(col *trace.Collector) error {
	write := func(path string, dump func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(*traceOut, col.WritePerfetto); err != nil {
		return err
	}
	if err := write(*metricsCSV, col.WriteCSV); err != nil {
		return err
	}
	if n := col.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "duplosim: ring buffers dropped %d events (timeline truncated at the front; interval metrics are exact)\n", n)
	}
	return nil
}

func printStats(name string, r sim.Result) {
	if r.Predicted {
		// Visibly distinguish synthesized stats from simulated ones, with
		// the calibration's expected relative error (DESIGN.md §9).
		name += fmt.Sprintf(" ~ predicted, expected error <= %.1f%%", 100*r.PredictedErr)
	}
	fmt.Printf("[%s]\n", name)
	fmt.Printf("  cycles            %12d\n", r.Cycles)
	fmt.Printf("  instructions      %12d (loads %d, MMAs %d, stores %d)\n",
		r.Instructions, r.TensorLoads, r.MMAs, r.Stores)
	fmt.Printf("  loads eliminated  %12d\n", r.LoadsEliminated)
	fmt.Printf("  L1 accesses/hits  %12d / %d\n", r.L1Accesses, r.L1Hits)
	fmt.Printf("  L2 accesses/hits  %12d / %d\n", r.L2Accesses, r.L2Hits)
	fmt.Printf("  DRAM lines        %12d\n", r.DRAMLines)
	fmt.Printf("  LDST stall cycles %12d\n", r.LDSTStallCycles)
	b := r.ServiceBreakdown()
	fmt.Printf("  served by         LHB %.1f%%  L1 %.1f%%  L2 %.1f%%  DRAM %.1f%%\n\n",
		100*b[sim.ServiceLHB], 100*b[sim.ServiceL1], 100*b[sim.ServiceL2], 100*b[sim.ServiceDRAM])
}

func min(a, b int) int {
	if a == 0 || b < a {
		return b
	}
	return a
}
