// Command duplotrace prints the head of the simulator's pipeline event
// stream for one layer as text — the same event vocabulary internal/trace
// records for Perfetto timelines (duplosim -trace), so there is exactly
// one tracing subsystem. A-tile load issues and LHB hits are annotated
// with the Duplo ID generator's output for the event's address, making
// this a debugging/teaching view of exactly what the detection unit sees
// (§IV-C's Table II, at scale).
//
//	duplotrace -net ResNet -layer C2 -n 40
//	duplotrace -net ResNet -layer C2 -warp 3 -kind lhb
//	duplotrace -net YOLO -layer C4 -duplo=false -sm -1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	duplo "duplo/internal/core"
	"duplo/internal/sim"
	"duplo/internal/trace"
	"duplo/internal/workload"
)

var (
	net     = flag.String("net", "ResNet", "network")
	layer   = flag.String("layer", "C2", "layer")
	ctas    = flag.Int("ctas", 2, "max CTAs simulated")
	simSMs  = flag.Int("sms", 1, "SMs simulated")
	n       = flag.Int("n", 40, "events to print")
	smSel   = flag.Int("sm", 0, "only events from this SM (-1 = all)")
	warpSel = flag.Int("warp", -1, "only events from this warp slot (-1 = all)")
	kindSel = flag.String("kind", "", "only kinds whose name contains this substring (e.g. lhb, issue, service)")
	withDup = flag.Bool("duplo", true, "simulate with the Duplo detection unit")
)

// headTracer is a trace.Tracer that keeps the first n events matching the
// SM/warp/kind filters. The sim runs single-threaded, but Tracer
// implementations must be safe for concurrent use, so it still locks.
type headTracer struct {
	mu     sync.Mutex
	events []headEvent
}

type headEvent struct {
	sm int
	e  trace.Event
}

func (h *headTracer) Emit(sm int, e trace.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.events) >= *n {
		return
	}
	if *smSel >= 0 && sm != *smSel {
		return
	}
	if *warpSel >= 0 && e.Warp != int16(*warpSel) {
		return
	}
	if *kindSel != "" && !strings.Contains(e.Kind.String(), *kindSel) {
		return
	}
	h.events = append(h.events, headEvent{sm, e})
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "duplotrace:", err)
		os.Exit(1)
	}
}

func run() error {
	l, err := workload.Find(*net, *layer)
	if err != nil {
		return err
	}
	k, err := sim.NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		return err
	}
	ci, err := duplo.NewConvInfo(*k.Conv, k.Layout)
	if err != nil {
		return err
	}
	gen := duplo.NewIDGen(ci)

	cfg := sim.TitanVConfig()
	cfg.MaxCTAs = *ctas
	cfg.SimSMs = *simSMs
	if *withDup {
		cfg.Duplo = true
		cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	}
	tr := &headTracer{}
	cfg.Tracer = tr

	fmt.Printf("%s: GEMM %dx%dx%d, %d CTAs on %d SMs, duplo=%v\n\n",
		l.FullName(), k.M, k.N, k.K, min(*ctas, k.TotalCTAs()), cfg.SimSMs, *withDup)
	res, err := sim.Run(cfg, k)
	if err != nil {
		return err
	}

	for _, he := range tr.events {
		line := trace.Format(he.sm, he.e)
		// Annotate detection-unit-visible addresses with the generated
		// row IDs (issue events carry the tile's first row address).
		if (he.e.Kind == trace.KindIssue && he.e.Op == trace.OpLoadA) || he.e.Kind == trace.KindLHBHit {
			if id, st := gen.IDs(he.e.Addr); st == duplo.StatusOK {
				line += fmt.Sprintf("  id=b%d:e%d", id.Batch, id.Elem)
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("\n%d events shown; run: %d cycles, %d instructions, %d loads eliminated\n",
		len(tr.events), res.Cycles, res.Instructions, res.LoadsEliminated)
	return nil
}

func min(a, b int) int {
	if a == 0 || b < a {
		return b
	}
	return a
}
