// Command duplotrace dumps the warp-level instruction stream of the
// tensor-core GEMM kernel for one layer, annotated with the Duplo ID
// generator's output per row-vector load — a debugging/teaching view of
// exactly what the detection unit sees (§IV-C's Table II, at scale).
//
//	duplotrace -net ResNet -layer C2 -warp 0 -n 40
package main

import (
	"flag"
	"fmt"
	"os"

	duplo "duplo/internal/core"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

func main() {
	var (
		net   = flag.String("net", "ResNet", "network")
		layer = flag.String("layer", "C2", "layer")
		cta   = flag.Int("cta", 0, "CTA index")
		warp  = flag.Int("warp", 0, "warp within the CTA (0-7)")
		n     = flag.Int("n", 40, "instructions to dump")
	)
	flag.Parse()

	l, err := workload.Find(*net, *layer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplotrace:", err)
		os.Exit(1)
	}
	k, err := sim.NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplotrace:", err)
		os.Exit(1)
	}
	ci, err := duplo.NewConvInfo(*k.Conv, k.Layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplotrace:", err)
		os.Exit(1)
	}
	gen := duplo.NewIDGen(ci)

	fmt.Printf("%s: GEMM %dx%dx%d, CTA %d/%d, warp %d\n\n",
		l.FullName(), k.M, k.N, k.K, *cta, k.TotalCTAs(), *warp)
	insts, err := sim.TraceWarp(k, *cta, *warp, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplotrace:", err)
		os.Exit(1)
	}
	for i, in := range insts {
		switch in.Op {
		case sim.OpMMA:
			fmt.Printf("%4d  %-13s  d=%%f%-2d a=%%f%-2d b=%%f%d\n", i, in.Op, in.Dst, in.SrcA, in.SrcB)
		case sim.OpStoreD:
			fmt.Printf("%4d  %-13s  src=%%f%-2d addr=%#x\n", i, in.Op, in.SrcA, in.Addr)
		default:
			fmt.Printf("%4d  %-13s  d=%%f%-2d addr=%#x", i, in.Op, in.Dst, in.Addr)
			if in.Op == sim.OpLoadA {
				// Show the per-row IDs the detection unit generates.
				fmt.Printf("  rows[")
				for r := 0; r < 4; r++ { // first four rows for brevity
					id, st := gen.IDs(in.Addr + uint64(r)*uint64(in.RowPitch))
					if st == duplo.StatusOK {
						fmt.Printf(" b%d:e%d", id.Batch, id.Elem)
					} else {
						fmt.Printf(" -")
					}
				}
				fmt.Printf(" ...]")
			}
			fmt.Println()
			continue
		}
	}
}
