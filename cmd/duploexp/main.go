// Command duploexp regenerates the paper's tables and figures (the
// per-experiment index is in DESIGN.md §3).
//
// Usage:
//
//	duploexp -exp all                 # everything
//	duploexp -exp fig9 -ctas 192      # one experiment, more CTAs
//	duploexp -exp fig14 -full         # uncapped grids (slow)
//	duploexp -exp fig9 -workers 8     # bound the simulation worker pool
//	duploexp -exp fig9 -cpuprofile cpu.pprof
//	duploexp -exp table2
//	duploexp -exp all -store ~/.cache/duplo    # warm-start across invocations
//
// Independent simulations run on a worker pool (default GOMAXPROCS wide;
// -workers 1 forces the serial path). Tables are byte-identical at any
// worker count. -cpuprofile / -memprofile write pprof profiles of the
// whole run for performance work on the engine.
//
// -store DIR backs the run cache with the on-disk content-addressed
// result store (internal/store, DESIGN.md §8): results persist across
// invocations, so re-rendering a table whose cells are already stored
// simulates nothing and is byte-identical to the cold run. The same
// directory can back a duploserved daemon.
//
// -trace-cell "Net/Layer" re-simulates one cell at the same scale with the
// event tracer attached and writes a Perfetto timeline (-trace) and/or an
// interval-metrics CSV (-metrics-csv) for it; -trace-duplo=false traces
// the baseline run instead of Duplo. -exp none skips the experiment tables
// for trace-only invocations:
//
//	duploexp -exp none -trace-cell ResNet/C2 -trace c2.trace.json
//
// The run degrades gracefully instead of aborting: a failed simulation
// renders its cells as ERR and the remaining experiments still run, with a
// non-zero exit at the end. Ctrl-C (or SIGTERM, or the -timeout deadline)
// cancels in-flight simulations, flushes the partial tables computed so
// far, and exits non-zero. -max-cycles bounds each simulation's cycle
// count as a livelock backstop (see DESIGN.md §5 "Robustness").
//
// -predict engages the calibrated analytical fast path (DESIGN.md §9):
// "predict-all" synthesizes every in-envelope cell from the per-family
// linear model, "hybrid" predicts only low-uncertainty, non-headline
// cells (bounded by -predict-bound) and simulates the rest. The first
// predicted run fits (or loads) the calibration; `-exp calibrate`
// refits explicitly and prints the fit report with the gate verdict.
// Predicted cells are marked "~" and each affected table carries a
// max-predicted-error footer; predictions are never written to -store:
//
//	duploexp -exp calibrate -store ~/.cache/duplo   # fit + persist + report
//	duploexp -exp fig9 -predict predict-all -store ~/.cache/duplo
//	duploexp -exp fig9 -predict hybrid -predict-bound 0.10
//
// -exp cluster runs the discrete-event cluster serving experiment
// (DESIGN.md §10): N chips serving Poisson request traffic whose
// per-request service times come from the cycle-accurate per-layer
// results, Duplo off vs on, across routing policies and offered loads.
// -seed fixes the arrival-process RNG (the table is byte-identical across
// repeated runs and worker counts at a fixed seed). -cluster-timeline
// writes a Chrome/Perfetto timeline of one serving cell (per-chip batch
// spans + queue-depth counters) and -cluster-queues its queue-depth CSV;
// both take the cell from -cluster-load/-cluster-duplo:
//
//	duploexp -exp cluster -seed 7 -store ~/.cache/duplo
//	duploexp -exp none -cluster-timeline cluster.json -cluster-load 0.8
//
// Experiments: table1 table2 table3 fig2 fig3 fig9 fig10 fig11 fig12 fig13
// fig14 energy latency smem cache evict index limits calibrate cluster.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"duplo/internal/experiments"
	"duplo/internal/profiling"
	"duplo/internal/store"
	"duplo/internal/workload"
)

var (
	exp        = flag.String("exp", "all", "experiment id (see package doc), 'all', or 'none'")
	ctas       = flag.Int("ctas", 96, "max CTAs simulated per kernel")
	simSMs     = flag.Int("sms", 4, "number of SMs simulated")
	workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	smWorkers  = flag.Int("sm-workers", 0, "goroutines sharding the SMs inside each simulation (0 = serial reference loop here; results identical at any value)")
	full       = flag.Bool("full", false, "simulate full grids (removes the CTA cap; slow)")
	verbose    = flag.Bool("v", false, "print progress")
	csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceCell  = flag.String("trace-cell", "", `trace one cell "Net/Layer" (e.g. ResNet/C2)`)
	traceOut   = flag.String("trace", "", "write the traced cell's Perfetto/Chrome timeline to this file")
	metricsCSV = flag.String("metrics-csv", "", "write the traced cell's per-interval metrics CSV to this file")
	traceDuplo = flag.Bool("trace-duplo", true, "trace the cell's Duplo run (false = baseline)")
	interval   = flag.Int64("interval", 10000, "metrics interval in cycles for the traced cell")
	timeout    = flag.Duration("timeout", 0, "wall-clock deadline for the whole invocation (0 = none); partial tables are flushed")
	maxCycles  = flag.Int64("max-cycles", 0, "abort any single simulation past this many cycles (0 = simulator default)")
	crashDir   = flag.String("crash-dir", "", "directory for watchdog/panic crash dumps (default: system temp dir)")
	storeDir   = flag.String("store", "", "directory of the on-disk result store (warm-starts identical runs; created if missing)")
	noPool     = flag.Bool("no-pool", false, "disable per-worker simulator-state reuse across cells (results identical either way; for benchmarking the pool)")
	predict    = flag.String("predict", "off", "calibrated analytical fast path: off | predict-all | hybrid (predicted cells are marked '~'; see DESIGN.md §9)")
	predBound  = flag.Float64("predict-bound", 0.15, "hybrid mode's uncertainty bound: predict only when the family's calibrated MAPE is below this (0 = never predict)")
	calibPath  = flag.String("calibration", "", "calibration artifact path (default: <store>/calibration/<key>.json when -store is set, else in-memory only)")

	seed         = flag.Int64("seed", 0, "serving cluster RNG seed (0 = default 1); fixed seed => byte-identical cluster tables at any worker count")
	clusterTL    = flag.String("cluster-timeline", "", "write a Chrome/Perfetto timeline of one cluster serving cell to this file")
	clusterQCSV  = flag.String("cluster-queues", "", "write the cluster cell's queue-depth samples as CSV to this file")
	clusterLoad  = flag.Float64("cluster-load", 0.8, "offered load of the exported cluster cell, as a fraction of baseline capacity")
	clusterDuplo = flag.Bool("cluster-duplo", true, "export the cluster cell with Duplo on (false = baseline fleet)")
)

// errUnknownExperiment preserves the historical exit code 2 for a bad -exp.
var errUnknownExperiment = errors.New("unknown experiment")

func main() {
	flag.Parse()
	// Ctrl-C / SIGTERM cancels in-flight simulations through the context;
	// the engine returns partial tables with ERR cells, which still get
	// rendered before the non-zero exit. A second signal kills the process
	// the usual way (NotifyContext restores the default handler on stop).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(ctx)
		if e := stop(); err == nil {
			err = e
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "duploexp:", err)
		if errors.Is(err, errUnknownExperiment) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	mode, err := experiments.ParsePredictorMode(*predict)
	if err != nil {
		return err
	}
	opts := experiments.Options{MaxCTAs: *ctas, SimSMs: *simSMs, Workers: *workers, SMWorkers: *smWorkers, Verbose: *verbose,
		Context: ctx, MaxCycles: *maxCycles, CrashDumpDir: *crashDir, DisableStatePool: *noPool,
		Predictor: mode, PredictBound: *predBound, CalibrationPath: *calibPath, Seed: *seed}
	if *full {
		opts.MaxCTAs = 0
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		opts.Store = st
	}
	r := experiments.NewRunner(opts)

	var failed []string
	if *exp != "none" {
		found := false
		for _, e := range r.Sweeps() {
			if *exp != "all" && *exp != e.ID {
				continue
			}
			found = true
			t0 := time.Now()
			tbl, err := e.Run()
			// A partial table (ERR cells) comes back alongside the error;
			// flush it before recording the failure and moving on.
			if tbl != nil {
				if *csv {
					tbl.CSV(os.Stdout)
				} else {
					tbl.Render(os.Stdout)
				}
			}
			if err != nil {
				failed = append(failed, e.ID)
				fmt.Fprintf(os.Stderr, "duploexp: %s: %v\n", e.ID, err)
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "[%s took %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
			}
			fmt.Println()
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "duploexp: interrupted; partial tables flushed")
				break
			}
		}
		if !found {
			return fmt.Errorf("%w %q", errUnknownExperiment, *exp)
		}
	}
	if err := traceCellRun(r); err != nil {
		failed = append(failed, "trace-cell")
		fmt.Fprintf(os.Stderr, "duploexp: trace-cell: %v\n", err)
	}
	if err := clusterCellRun(r); err != nil {
		failed = append(failed, "cluster-cell")
		fmt.Fprintf(os.Stderr, "duploexp: cluster-cell: %v\n", err)
	}
	if *verbose {
		cs := r.CacheStats()
		fmt.Fprintf(os.Stderr, "[runner: %d workers, %d simulated, %d memo hits, %d store hits, %d predicted]\n",
			cs.Workers, cs.Execs, cs.MemHits, cs.StoreHits, cs.Predicted)
		if st := r.Store(); st != nil {
			c := st.Counters()
			fmt.Fprintf(os.Stderr, "[store %s: %d hits, %d misses, %d written, %d put errors, %d corrupt, %d version-skipped]\n",
				st.Dir(), c.Hits, c.Misses, c.Puts, c.PutErrors, c.Corruptions, c.VersionSkips)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of the requested experiments failed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// traceCellRun re-simulates the -trace-cell cell with the event collector
// attached (bypassing the run cache) and writes the requested exports.
func traceCellRun(r *experiments.Runner) error {
	if *traceCell == "" {
		if *traceOut != "" || *metricsCSV != "" {
			return errors.New("-trace/-metrics-csv need -trace-cell \"Net/Layer\"")
		}
		return nil
	}
	netName, layerName, ok := strings.Cut(*traceCell, "/")
	if !ok {
		return fmt.Errorf("-trace-cell must be \"Net/Layer\", got %q", *traceCell)
	}
	l, err := workload.Find(netName, layerName)
	if err != nil {
		return err
	}
	res, col, err := r.TraceRun(l, *traceDuplo, *interval, 0)
	if err != nil {
		return err
	}
	write := func(path string, dump func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(*traceOut, col.WritePerfetto); err != nil {
		return err
	}
	if err := write(*metricsCSV, col.WriteCSV); err != nil {
		return err
	}
	mode := "duplo"
	if !*traceDuplo {
		mode = "baseline"
	}
	fmt.Fprintf(os.Stderr, "traced %s (%s): %d cycles, %d intervals", l.FullName(), mode, res.Cycles, len(col.Intervals()))
	if n := col.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, ", %d events dropped (timeline truncated at the front; interval metrics are exact)", n)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// clusterCellRun exports one cluster serving cell's observability files
// (-cluster-timeline / -cluster-queues). The cell shares the runner cache
// with -exp cluster, so combining the two in one invocation simulates
// each latency table cell once.
func clusterCellRun(r *experiments.Runner) error {
	if *clusterTL == "" && *clusterQCSV == "" {
		return nil
	}
	m, err := r.ClusterCell(*clusterLoad, *clusterDuplo)
	if err != nil {
		return err
	}
	write := func(path string, dump func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := dump(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(*clusterTL, m.WriteTimeline); err != nil {
		return err
	}
	if err := write(*clusterQCSV, func(w io.Writer) error { m.QueueDepthTable().CSV(w); return nil }); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cluster cell (load %.1fx, duplo=%v): %s\n", *clusterLoad, *clusterDuplo, m.Summary())
	return nil
}
