#!/bin/sh
/tmp/duploexp -exp latency -ctas 48 -sms 4 > /root/repo/exp_latency.txt 2>&1
/tmp/duploexp -exp smem -ctas 48 -sms 4 > /root/repo/exp_smem.txt 2>&1
/tmp/duploexp -exp cache -ctas 48 -sms 4 > /root/repo/exp_cache.txt 2>&1
/tmp/duploexp -exp evict -ctas 48 -sms 4 > /root/repo/exp_evict.txt 2>&1
/tmp/duploexp -exp index -ctas 48 -sms 4 > /root/repo/exp_index.txt 2>&1
/tmp/duploexp -exp limits > /root/repo/exp_limits.txt 2>&1
echo ABLATIONS_DONE
