#!/usr/bin/env bash
# benchcheck.sh — CI perf-regression gate over the committed benchmark
# baselines (BENCH_predictor.json, BENCH_serving.json; see scripts/bench.sh,
# which writes them with commit/date stamps).
#
# For every benchmark named in the baselines' go_bench arrays that still
# exists, run it once with -benchmem and compare allocs/op:
#
#   * allocs/op regression beyond THRESHOLD% (default 25) + SLACK allocs
#     (default 64, absorbing one-shot lazy-init noise at -benchtime=1x)
#     FAILS the gate — allocation counts are deterministic, so a jump is a
#     real hot-path regression, not machine noise;
#   * ns/op is printed for context but never fails — wall clock on shared
#     CI runners is advisory only.
#
#   THRESHOLD=25 SLACK=64 BENCHTIME=1x scripts/benchcheck.sh
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-25}"
SLACK="${SLACK:-64}"
BENCHTIME="${BENCHTIME:-1x}"

# baseline <file>: the go_bench array as "name allocs/op ns/op" lines
# (benchmark names are normalized by stripping the -GOMAXPROCS suffix).
baseline() {
	grep -o '"Benchmark[^"]*"' "$1" | tr -d '"' | awk '
		{
			name = $1; sub(/-[0-9]+$/, "", name)
			ns = ""; allocs = ""
			for (i = 1; i < NF; i++) {
				if ($(i+1) == "ns/op") ns = $i
				if ($(i+1) == "allocs/op") allocs = $i
			}
			if (allocs != "") print name, allocs, ns
		}'
}

FAIL=0
check_pkg() { # check_pkg <baseline.json> <package>
	local base="$1" pkg="$2"
	[ -f "$base" ] || { echo "benchcheck: missing baseline $base" >&2; exit 1; }
	local names pattern raw
	names=$(baseline "$base" | awk '{print $1}')
	[ -n "$names" ] || { echo "benchcheck: no allocs/op baselines in $base (rerun scripts/bench.sh with -benchmem)" >&2; exit 1; }
	pattern=$(printf '%s$\n' $names | paste -sd'|' -)
	echo "benchcheck: $pkg vs $base (threshold ${THRESHOLD}%+${SLACK}, benchtime $BENCHTIME)" >&2
	raw=$(go test -run='^$' -bench="^($pattern)" -benchmem -benchtime="$BENCHTIME" "$pkg" | grep '^Benchmark' || true)
	[ -n "$raw" ] || { echo "benchcheck: no benchmark output from $pkg" >&2; exit 1; }
	# Join current against baseline on the normalized name and compare.
	if ! {
		baseline "$base" | sed 's/^/base /'
		printf '%s\n' "$raw" | tr '\t' ' ' | tr -s ' ' | awk '
			{
				name = $1; sub(/-[0-9]+$/, "", name)
				ns = ""; allocs = ""
				for (i = 1; i < NF; i++) {
					if ($(i+1) == "ns/op") ns = $i
					if ($(i+1) == "allocs/op") allocs = $i
				}
				if (allocs != "") print "cur", name, allocs, ns
			}'
	} | awk -v thr="$THRESHOLD" -v slack="$SLACK" '
		$1 == "base" { ba[$2] = $3; bns[$2] = $4; next }
		$1 == "cur" && ($2 in ba) {
			limit = ba[$2] * (1 + thr / 100) + slack
			delta = bns[$2] > 0 ? sprintf("%+.0f%%", 100 * ($4 - bns[$2]) / bns[$2]) : "n/a"
			if ($3 > limit) {
				printf "FAIL %s allocs/op %s -> %s (limit %.0f); ns/op %s -> %s [%s, advisory]\n",
					$2, ba[$2], $3, limit, bns[$2], $4, delta
				bad = 1
			} else {
				printf "ok   %s allocs/op %s -> %s; ns/op %s -> %s [%s, advisory]\n",
					$2, ba[$2], $3, bns[$2], $4, delta
			}
		}
		END { exit bad }
	'; then
		FAIL=1
	fi
}

check_pkg BENCH_predictor.json ./internal/sim/
check_pkg BENCH_serving.json ./internal/serving/

if [ "$FAIL" != 0 ]; then
	echo "benchcheck: allocs/op regressed beyond ${THRESHOLD}%+${SLACK} — if intentional, rerun scripts/bench.sh and commit the new baselines" >&2
	exit 1
fi
echo "benchcheck: all allocation baselines hold" >&2
