#!/usr/bin/env bash
# bench.sh — measure the predictor fast path against cycle simulation and
# emit BENCH_predictor.json (repo root; override with OUT=...).
#
# Four timed fig9 regenerations tell the whole tiering story:
#
#   cold        cycle-sim into an empty store (the ground-truth price)
#   warm        same store, second run (disk-tier hits, zero sims)
#   calibrate   `-exp calibrate` over the warm store (fit + artifact)
#   predicted   `-predict predict-all` with only the calibration artifact —
#               no result store at all, every cell synthesized
#
# plus `go test -bench` over the existing sim-core benchmarks (allocs/op
# included via -benchmem). No jq or python: timing is date(1)+awk, JSON is
# printf. Scale and benchtime are env-overridable so CI can run tiny:
#
#   CTAS=96 SMS=4 BENCHTIME=1x OUT=BENCH_predictor.json scripts/bench.sh
#
# A second section measures the cluster serving simulator's raw DES
# throughput (BenchmarkClusterEventLoop, events/s) and writes
# BENCH_serving.json (override with SERVING_OUT=...). SKIP_PREDICTOR=1
# skips the predictor section so the serving bench can run alone:
#
#   SKIP_PREDICTOR=1 SERVING_BENCHTIME=2s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

CTAS="${CTAS:-96}"
SMS="${SMS:-4}"
BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_predictor.json}"
SERVING_OUT="${SERVING_OUT:-BENCH_serving.json}"
SERVING_BENCHTIME="${SERVING_BENCHTIME:-$BENCHTIME}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Every emitted JSON is stamped with the commit and date it measured, so a
# checked-in baseline is traceable to the code it described.
COMMIT=$(git rev-parse HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# Benchmark lines contain no JSON-special characters beyond what we strip
# (tabs -> spaces); each becomes one string in a JSON array.
bench_json() { # bench_json <<<"$RAW"
	local first=1 line
	printf '['
	while IFS= read -r line; do
		[ -n "$line" ] || continue
		line=$(printf '%s' "$line" | tr '\t' ' ' | tr -s ' ')
		[ "$first" = 1 ] || printf ', '
		printf '"%s"' "$line"
		first=0
	done
	printf ']'
}

serving_bench() {
	echo "bench: serving DES event loop (benchtime=$SERVING_BENCHTIME)" >&2
	local raw events
	raw=$(go test -run='^$' -bench=BenchmarkClusterEventLoop -benchmem -benchtime="$SERVING_BENCHTIME" ./internal/serving/ | grep '^Benchmark' || true)
	[ -n "$raw" ] || { echo "bench: BenchmarkClusterEventLoop produced no output" >&2; exit 1; }
	# The bench reports "<N> events/s"; take the last run's figure.
	events=$(printf '%s\n' "$raw" | awk '{for (i=1; i<NF; i++) if ($(i+1) == "events/s") v=$i} END{print v}')
	[ -n "$events" ] || { echo "bench: no events/s metric in: $raw" >&2; exit 1; }
	echo "bench: serving DES $events events/s" >&2
	{
		printf '{\n'
		printf '  "commit": "%s",\n' "$COMMIT"
		printf '  "date": "%s",\n' "$DATE"
		printf '  "des_events_per_sec": %s,\n' "$events"
		printf '  "go_bench": %s\n' "$(bench_json <<<"$raw")"
		printf '}\n'
	} >"$SERVING_OUT"
	echo "bench: wrote $SERVING_OUT" >&2
}

serving_bench
if [ "${SKIP_PREDICTOR:-0}" = 1 ]; then
	echo "bench: SKIP_PREDICTOR=1, done" >&2
	exit 0
fi

go build -o "$WORK/duploexp" ./cmd/duploexp

now() { date +%s.%N; }
run_timed() { # run_timed <args...> -> seconds on stdout
	local t0 t1
	t0=$(now)
	"$WORK/duploexp" "$@" >/dev/null
	t1=$(now)
	awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}'
}

STORE="$WORK/store"
echo "bench: fig9 cold (cycle-sim, empty store, ctas=$CTAS sms=$SMS)" >&2
COLD=$(run_timed -exp fig9 -ctas "$CTAS" -sms "$SMS" -store "$STORE")
echo "bench: fig9 cold ${COLD}s" >&2

echo "bench: fig9 warm (disk-store hits)" >&2
WARM=$(run_timed -exp fig9 -ctas "$CTAS" -sms "$SMS" -store "$STORE")
echo "bench: fig9 warm ${WARM}s" >&2

echo "bench: calibrate (fit over the warm store)" >&2
CALIB=$(run_timed -exp calibrate -ctas "$CTAS" -sms "$SMS" -store "$STORE")
echo "bench: calibrate ${CALIB}s" >&2

ARTIFACT=$(echo "$STORE"/calibration/*.json)
[ -f "$ARTIFACT" ] || { echo "bench: no calibration artifact under $STORE/calibration" >&2; exit 1; }

echo "bench: fig9 predicted (predict-all, artifact only, no result store)" >&2
PRED=$(run_timed -exp fig9 -ctas "$CTAS" -sms "$SMS" -predict predict-all -calibration "$ARTIFACT")
echo "bench: fig9 predicted ${PRED}s" >&2

SPEEDUP=$(awk -v c="$COLD" -v p="$PRED" 'BEGIN{printf "%.1f", c/p}')
echo "bench: predicted vs cold speedup ${SPEEDUP}x" >&2

echo "bench: go test -bench (sim core, benchtime=$BENCHTIME)" >&2
BENCH_RAW=$(go test -run='^$' -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/sim/ | grep '^Benchmark' || true)

{
	printf '{\n'
	printf '  "commit": "%s",\n' "$COMMIT"
	printf '  "date": "%s",\n' "$DATE"
	printf '  "scale": {"ctas": %s, "sms": %s},\n' "$CTAS" "$SMS"
	printf '  "fig9_seconds": {"cold": %s, "warm": %s, "calibrate": %s, "predicted": %s},\n' \
		"$COLD" "$WARM" "$CALIB" "$PRED"
	printf '  "speedup_cold_over_predicted": %s,\n' "$SPEEDUP"
	printf '  "go_bench": %s\n' "$(bench_json <<<"$BENCH_RAW")"
	printf '}\n'
} >"$OUT"
echo "bench: wrote $OUT" >&2
