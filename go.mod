module duplo

go 1.22
