package costmodel

import (
	"math"
	"testing"

	"duplo/internal/memmodel"
	"duplo/internal/workload"
)

func geomean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}

func speedups(m memmodel.Method) []float64 {
	d := RTX2080Ti()
	var out []float64
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		if !memmodel.Applicable(m, p) {
			continue
		}
		out = append(out, Speedup(d, m, p))
	}
	return out
}

// Fig. 2 shape: GEMM_TC > Winograd > GEMM > FFT on average, with averages
// in the paper's regime (25.7 / 20.7 / 13.5 / 11.5).
func TestSpeedupOrdering(t *testing.T) {
	gemm := geomean(speedups(memmodel.GEMM))
	gtc := geomean(speedups(memmodel.GEMMTensorCore))
	wino := geomean(speedups(memmodel.Winograd))
	fft := geomean(speedups(memmodel.FFT))
	t.Logf("gmean speedups: GEMM %.1f (paper 13.5) Winograd %.1f (20.7) FFT %.1f (11.5) GEMM_TC %.1f (25.7)",
		gemm, wino, fft, gtc)
	if !(gtc > wino && wino > gemm && gemm > fft*0.8) {
		t.Errorf("ordering violated: GEMM %.1f Winograd %.1f FFT %.1f GEMM_TC %.1f", gemm, wino, fft, gtc)
	}
	if gemm < 5 || gemm > 30 {
		t.Errorf("GEMM average %.1f out of regime (paper 13.5)", gemm)
	}
	if gtc < 12 || gtc > 60 {
		t.Errorf("GEMM_TC average %.1f out of regime (paper 25.7)", gtc)
	}
}

func TestInapplicableIsInfOrZero(t *testing.T) {
	d := RTX2080Ti()
	c1, _ := workload.Find("ResNet", "C1")
	if !math.IsInf(Seconds(d, memmodel.Winograd, c1.Params), 1) {
		t.Error("Winograd on 7x7 should be +Inf")
	}
	if Speedup(d, memmodel.Winograd, c1.Params) != 0 {
		t.Error("Speedup of inapplicable should be 0")
	}
}

func TestDirectIsSlowest(t *testing.T) {
	d := RTX2080Ti()
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		td := Seconds(d, memmodel.Direct, p)
		for _, m := range memmodel.Methods() {
			tm := Seconds(d, m, p)
			if math.IsInf(tm, 1) {
				continue
			}
			if tm > td {
				t.Errorf("%s: %v slower than direct (%v vs %v)", l.FullName(), m, tm, td)
			}
		}
	}
}

func TestOccupancyRollOff(t *testing.T) {
	d := RTX2080Ti()
	if d.occupancy(1) >= d.occupancy(1000) {
		t.Error("small grids should have lower occupancy")
	}
	if d.occupancy(100000) != 1 {
		t.Error("large grids saturate at 1")
	}
	if d.occupancy(0) <= 0 {
		t.Error("occupancy floor must be positive")
	}
}

func TestTimesArePositiveAndFinite(t *testing.T) {
	d := RTX2080Ti()
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		for _, m := range append(memmodel.Methods(), memmodel.Direct, memmodel.ImplicitGEMM) {
			s := Seconds(d, m, p)
			if math.IsInf(s, 1) {
				continue
			}
			if s <= 0 || math.IsNaN(s) {
				t.Errorf("%s %v: time %v", l.FullName(), m, s)
			}
		}
	}
}

// Tensor cores must beat CUDA-core GEMM on compute-bound layers.
func TestTensorCoreAdvantage(t *testing.T) {
	d := RTX2080Ti()
	c6, _ := workload.Find("YOLO", "C6") // 512->1024 channels: compute heavy
	if Seconds(d, memmodel.GEMMTensorCore, c6.Params) >= Seconds(d, memmodel.GEMM, c6.Params) {
		t.Error("tensor cores should win on compute-bound layers")
	}
}

// Fig. 2's measured per-layer ordering: GEMM_TC is the fastest GEMM
// variant on every Table I layer — including the memory-bound
// transposed-conv ones, where the half-precision workspace keeps the
// tensor-core kernel's byte traffic below the fp32 kernel's.
func TestTensorCoreNeverExceedsCUDACore(t *testing.T) {
	d := RTX2080Ti()
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		tc := Seconds(d, memmodel.GEMMTensorCore, p)
		g := Seconds(d, memmodel.GEMM, p)
		if tc > g {
			t.Errorf("%s: GEMM_TC %.3e slower than GEMM %.3e (ratio %.3f)",
				l.FullName(), tc, g, tc/g)
		}
	}
}

// Roofline estimates must be monotone in layer size: growing the batch
// (with everything else fixed) only adds work and traffic, so no
// method's estimated time may shrink.
func TestSecondsMonotoneInBatch(t *testing.T) {
	d := RTX2080Ti()
	methods := append(memmodel.Methods(), memmodel.Direct, memmodel.ImplicitGEMM)
	for _, l := range workload.AllLayers() {
		for _, m := range methods {
			prev := 0.0
			for _, n := range []int{1, 2, 4, 8, 16, 32} {
				p := l.GemmParams()
				p.N = n
				if !memmodel.Applicable(m, p) {
					continue
				}
				s := Seconds(d, m, p)
				if s < prev {
					t.Errorf("%s %v: time shrank from %.3e to %.3e growing batch to %d",
						l.FullName(), m, prev, s, n)
				}
				prev = s
			}
		}
	}
}

// Channel growth is monotone too (the other size axis a layer sweep
// moves).
func TestSecondsMonotoneInChannels(t *testing.T) {
	d := RTX2080Ti()
	c2, _ := workload.Find("ResNet", "C2")
	for _, m := range []memmodel.Method{memmodel.GEMM, memmodel.GEMMTensorCore, memmodel.Direct} {
		prev := 0.0
		for _, c := range []int{16, 32, 64, 128, 256} {
			p := c2.GemmParams()
			p.C = c
			s := Seconds(d, m, p)
			if s < prev {
				t.Errorf("%v: time shrank from %.3e to %.3e growing channels to %d", m, prev, s, c)
			}
			prev = s
		}
	}
}
