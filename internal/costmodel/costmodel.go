// Package costmodel estimates GPU execution times of the compared
// convolution methods with a roofline-style analytic model — the stand-in
// for the paper's RTX 2080 Ti measurements behind Fig. 2 (see DESIGN.md §1).
//
// Each method's time is the max of a compute term (operations over an
// effective throughput that accounts for tile padding and occupancy) and a
// memory term (mandatory traffic over device bandwidth), plus any transform
// passes. The absolute efficiencies are calibrated constants; the
// per-layer variation (which the figure's shape is about) comes from the
// operation counts, padding waste and occupancy, which are computed exactly
// per layer.
package costmodel

import (
	"math"

	"duplo/internal/conv"
	"duplo/internal/fftconv"
	"duplo/internal/lowering"
	"duplo/internal/memmodel"
)

// Device describes the measured GPU of Fig. 2/3 (RTX 2080 Ti-like).
type Device struct {
	FP32FLOPS   float64 // peak single-precision FLOP/s
	TensorFLOPS float64 // peak half-precision tensor FLOP/s
	MemBW       float64 // device memory bandwidth, bytes/s
	// Effective utilization factors (calibrated; see EXPERIMENTS.md).
	EffDirect float64 // direct convolution on CUDA cores
	EffGEMM   float64 // GEMM on CUDA cores
	EffTensor float64 // GEMM on tensor cores
	EffWino   float64 // Winograd transform/product passes
	EffFFT    float64 // FFT passes
	// SMs sizes the occupancy roll-off for small grids.
	SMs int
}

// RTX2080Ti returns the default device model.
func RTX2080Ti() Device {
	return Device{
		FP32FLOPS:   13.4e12,
		TensorFLOPS: 107e12,
		MemBW:       616e9,
		EffDirect:   0.040,
		EffGEMM:     0.55,
		EffTensor:   0.40,
		EffWino:     0.50,
		EffFFT:      0.45,
		SMs:         68,
	}
}

// occupancy rolls off throughput when the GEMM grid cannot fill the GPU:
// small layers leave SMs idle (the TLP argument of §II-C). Real kernels
// fall back to smaller tiles on small grids, so the roll-off is soft.
func (d Device) occupancy(ctas int) float64 {
	need := float64(d.SMs * 2) // ~2 big CTAs per SM to hide latency
	occ := 0.3 + float64(ctas)/need
	if occ > 1 {
		return 1
	}
	return occ
}

// gemmCTAs estimates the 128x128-tile grid size of the lowered GEMM.
func gemmCTAs(p conv.Params) int {
	m := lowering.RoundUp(p.GemmM(), 128)
	n := lowering.RoundUp(p.GemmN(), 128)
	return (m / 128) * (n / 128)
}

// padWaste is the fraction of tile-padded GEMM work spent on padding.
func padWaste(p conv.Params) float64 {
	m, n, k := p.GemmM(), p.GemmN(), p.GemmK()
	mp := lowering.RoundUp(m, lowering.Tile)
	np := lowering.RoundUp(n, lowering.Tile)
	kp := lowering.RoundUp(k, lowering.Tile)
	return float64(mp) * float64(np) * float64(kp) / (float64(m) * float64(n) * float64(k))
}

// Seconds estimates the execution time of method m on layer p, or +Inf when
// the method is inapplicable (§II-A limitations).
func Seconds(d Device, m memmodel.Method, p conv.Params) float64 {
	if !memmodel.Applicable(m, p) {
		return math.Inf(1)
	}
	flops := 2 * float64(p.MACs())
	switch m {
	case memmodel.Direct:
		// Sliding-filter loops: no data reuse blocking, mostly uncoalesced;
		// modeled as a flat low fraction of peak.
		return flops / (d.FP32FLOPS * d.EffDirect)

	case memmodel.GEMM, memmodel.ImplicitGEMM:
		occ := d.occupancy(gemmCTAs(p))
		compute := flops * padWaste(p) / (d.FP32FLOPS * d.EffGEMM * occ)
		// Lowering writes the workspace once; the GEMM read-back largely
		// hits L2 for the blocked CUDA-core kernel.
		ws := float64(p.WorkspaceElems()) * 4
		memT := 1.2 * ws / d.MemBW
		if m == memmodel.ImplicitGEMM {
			memT = ws / d.MemBW // expanded in shared memory, global read once
		}
		return math.Max(compute, memT)

	case memmodel.GEMMTensorCore:
		occ := d.occupancy(gemmCTAs(p))
		compute := flops * padWaste(p) / (d.TensorFLOPS * d.EffTensor * occ)
		// The tensor-core kernel re-reads workspace tiles across CTA
		// columns (§II-B octet duplication adds register-file traffic but
		// L1 absorbs it); the effective global traffic is ~2.35x the
		// half-precision workspace volume — calibrated just below the
		// fp32 kernel's 1.2x read of a twice-as-wide workspace (4.7 vs
		// 4.8 bytes/elem), matching Fig. 2's measured per-layer ordering:
		// GEMM_TC is the fastest method on every Table I layer, including
		// the memory-bound transposed-conv ones.
		ws := float64(p.WorkspaceElems()) * 2
		memT := 2.35 * ws / d.MemBW
		return math.Max(compute, memT)

	case memmodel.Winograd, memmodel.WinogradTensorCore:
		tiles := float64(p.N) * float64((p.OutH()+1)/2) * float64((p.OutW()+1)/2)
		// F(2x2,3x3): input transform 32 adds per tile-channel, filter
		// transform 28 per filter-channel, inverse 24 per tile-filter.
		transform := 32*tiles*float64(p.C) + 28*float64(p.K*p.C) + 24*tiles*float64(p.K)
		products := 2 * 16 * tiles * float64(p.C) * float64(p.K)
		transT := transform / (d.FP32FLOPS * d.EffWino)
		var prodT float64
		if m == memmodel.WinogradTensorCore {
			occ := d.occupancy(int(tiles/128) + 1)
			prodT = products / (d.TensorFLOPS * d.EffTensor * occ)
		} else {
			prodT = products / (d.FP32FLOPS * d.EffWino)
		}
		memT := float64(memmodel.Bytes(m, p)) / d.MemBW
		return math.Max(transT+prodT, memT)

	case memmodel.FFT:
		l := float64(fftconv.GridSize(p))
		planes := float64(p.N*p.C + p.K*p.C + p.N*p.K)
		fftF := 5 * l * l * math.Log2(l*l) * planes
		prod := 8 * l * l * float64(p.N) * float64(p.C) * float64(p.K)
		memT := float64(memmodel.Bytes(m, p)) / d.MemBW
		return math.Max((fftF+prod)/(d.FP32FLOPS*d.EffFFT), memT)
	}
	return math.Inf(1)
}

// Speedup returns T(Direct) / T(m) — the Fig. 2 bar — or 0 when
// inapplicable.
func Speedup(d Device, m memmodel.Method, p conv.Params) float64 {
	t := Seconds(d, m, p)
	if math.IsInf(t, 1) {
		return 0
	}
	return Seconds(d, memmodel.Direct, p) / t
}
