package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestParseGrammar pins the spec grammar: every documented form parses,
// every malformed one is rejected with a diagnostic.
func TestParseGrammar(t *testing.T) {
	good := []string{
		"",
		"store-read:nth=3",
		"store-write:p=0.1",
		"store-read:after=5,count=10",
		"corrupt:p=0.2",
		"slow-io:every=4,delay=5ms",
		"sim:p=0.05",
		"sim-delay:p=1,delay=200ms",
		"sim:nth=2,match=ResNet",
		"store-read:p=1 ; store-write:p=1",
	}
	for _, spec := range good {
		if _, err := Parse(spec, 1); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
	bad := []string{
		"frobnicate:p=1",       // unknown op
		"store-read:p=1.5",     // probability out of range
		"store-read:nth",       // not key=value
		"store-read:bogus=1",   // unknown parameter
		"slow-io:every=4",      // delay op without delay
		"sim-delay:p=1",        // delay op without delay
		"store-read:nth=-1",    // negative parameter
		"slow-io:delay=-5ms",   // negative delay
		"store-read:p=potato",  // unparsable value
		"store-read:after=x,p", // unparsable + malformed
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestNthEveryWindow pins the deterministic triggers against the 1-based
// call counter.
func TestNthEveryWindow(t *testing.T) {
	in, err := Parse("store-read:nth=3;store-write:every=2;sim:after=2,count=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes, sims []bool
	for i := 0; i < 6; i++ {
		reads = append(reads, in.ReadFault("k") != nil)
		writes = append(writes, in.WriteFault("k") != nil)
		sims = append(sims, in.SimFault("k") != nil)
	}
	wantReads := []bool{false, false, true, false, false, false}
	wantWrites := []bool{false, true, false, true, false, true}
	wantSims := []bool{false, false, true, true, false, false} // window (2, 4]
	for i := range reads {
		if reads[i] != wantReads[i] || writes[i] != wantWrites[i] || sims[i] != wantSims[i] {
			t.Fatalf("call %d: read=%v write=%v sim=%v, want %v %v %v",
				i+1, reads[i], writes[i], sims[i], wantReads[i], wantWrites[i], wantSims[i])
		}
	}
	if got := in.Injected(OpStoreRead); got != 1 {
		t.Errorf("Injected(store-read) = %d, want 1", got)
	}
	if got := in.Calls(OpStoreWrite); got != 6 {
		t.Errorf("Calls(store-write) = %d, want 6", got)
	}
}

// TestProbabilisticDeterminism: the same seed replays the same decision
// sequence; a different seed gives a different one; rates land near p.
func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		in, err := Parse("store-read:p=0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 1000)
		for i := range out {
			out[i] = in.ReadFault("k") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired < 200 || fired > 400 {
		t.Errorf("p=0.3 over 1000 calls fired %d times, want ~300", fired)
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

// TestMatchFilter: a match= rule fires only for matching subjects, and
// non-matching calls still advance the counter (the counter is per op,
// not per rule).
func TestMatchFilter(t *testing.T) {
	in, err := Parse("sim:every=1,match=ResNet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.SimFault("GAN/TC4") != nil {
		t.Error("non-matching kernel was injected")
	}
	if in.SimFault("ResNet/C2") == nil {
		t.Error("matching kernel was not injected")
	}
}

// TestDisableFreezesCounters: a disabled injector passes everything
// through without advancing counters, and re-enabling resumes the exact
// sequence.
func TestDisableFreezesCounters(t *testing.T) {
	in, err := Parse("store-read:nth=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.ReadFault("k") != nil {
		t.Fatal("call 1 fired")
	}
	in.Disable()
	for i := 0; i < 5; i++ {
		if in.ReadFault("k") != nil {
			t.Fatal("disabled injector fired")
		}
	}
	if got := in.Calls(OpStoreRead); got != 1 {
		t.Fatalf("disabled calls advanced the counter to %d", got)
	}
	in.Enable()
	if in.ReadFault("k") == nil {
		t.Error("call 2 after re-enable did not fire (sequence not resumed)")
	}
}

// TestInjectedErrorTyping: injected failures wrap the ErrInjected sentinel
// and carry their op and call number.
func TestInjectedErrorTyping(t *testing.T) {
	in, err := Parse("store-write:nth=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	werr := in.WriteFault("k")
	if werr == nil {
		t.Fatal("nth=1 write did not fire")
	}
	if !errors.Is(werr, ErrInjected) {
		t.Errorf("injected error does not unwrap to ErrInjected: %v", werr)
	}
	var ie *InjectedError
	if !errors.As(werr, &ie) || ie.Op != OpStoreWrite || ie.Call != 1 {
		t.Errorf("injected error = %+v, want {store-write, 1}", ie)
	}
}

// TestMangleReadCopies: corruption mangles a copy, never the caller's
// bytes, and actually differs from the original.
func TestMangleReadCopies(t *testing.T) {
	in, err := Parse("corrupt:every=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte(`{"version":1,"payload":"abc"}`)
	orig := append([]byte(nil), raw...)
	m, ok := in.MangleRead(raw)
	if !ok {
		t.Fatal("every=1 corrupt did not fire")
	}
	if !bytes.Equal(raw, orig) {
		t.Error("MangleRead mutated the caller's buffer")
	}
	if bytes.Equal(m, orig) {
		t.Error("mangled copy is identical to the original")
	}
	if _, ok := in.MangleRead(nil); ok {
		t.Error("MangleRead fired on an empty buffer")
	}
}

// TestDelays: slow-io and sim-delay return the rule's duration when they
// fire and zero otherwise.
func TestDelays(t *testing.T) {
	in, err := Parse("slow-io:every=2,delay=5ms;sim-delay:nth=1,delay=200ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := in.IODelay(); d != 0 {
		t.Errorf("IODelay call 1 = %v, want 0", d)
	}
	if d := in.IODelay(); d != 5*time.Millisecond {
		t.Errorf("IODelay call 2 = %v, want 5ms", d)
	}
	if d := in.SimDelay("k"); d != 200*time.Millisecond {
		t.Errorf("SimDelay call 1 = %v, want 200ms", d)
	}
	if d := in.SimDelay("k"); d != 0 {
		t.Errorf("SimDelay call 2 = %v, want 0", d)
	}
}
