// Package fault is a deterministic, seeded fault-injection harness for
// the persistence and simulation tiers (DESIGN.md §12). An Injector is
// parsed from a compact rule spec and threaded through store.Store and
// experiments.Runner via small hook interfaces that are nil — and
// therefore strictly off the hot path — in production. The chaos suites
// drive concurrent clients against an injected daemon and assert the
// invariants that matter: no corrupted payload is ever served, healthy
// runs stay byte-identical, and the breaker recovers when faults stop.
//
// Spec grammar (rules separated by ';', parameters by ','):
//
//	store-read:nth=3              fail exactly the 3rd store read
//	store-write:p=0.1             fail each store write with probability 0.1
//	store-read:after=5,count=10   fail reads 6..15 (a durational outage)
//	corrupt:p=0.2                 bit-flip read payloads with probability 0.2
//	slow-io:every=4,delay=5ms     delay every 4th disk op by 5ms
//	sim:p=0.05                    panic inside every 20th simulation (expected)
//	sim-delay:p=1,delay=200ms     stretch every simulation by 200ms
//	sim:nth=2,match=ResNet        only for kernels whose name contains "ResNet"
//
// Triggers compose: `after`/`count` bound a window of the op's 1-based
// call counter, and within it `nth` (one-shot), `every` (periodic), or
// `p` (probabilistic, drawn from the injector's seeded splitmix64 stream)
// decide; a rule with a window but no trigger fires on every call in the
// window. Given one seed and one call order, the decision sequence is a
// pure function of the spec — the chaos tests rely on it.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op names one injection point.
type Op string

// The injection points. Store ops are consulted by store.Store (via its
// FaultInjector hook), sim ops by experiments.Runner (via SimFaultInjector).
const (
	// OpStoreRead fails a store lookup with a transient I/O error before
	// it touches the disk (the record, if any, is left intact).
	OpStoreRead Op = "store-read"
	// OpStoreWrite fails a store persist with a transient I/O error
	// before any bytes are written.
	OpStoreWrite Op = "store-write"
	// OpCorrupt bit-flips a successfully read record payload, exercising
	// the envelope checksum (the mangled copy must never be served).
	OpCorrupt Op = "corrupt"
	// OpSlowIO delays a disk operation by the rule's delay.
	OpSlowIO Op = "slow-io"
	// OpSim panics inside the simulation phase; the runner's containment
	// surfaces it as a typed *sim.SimError (phase "panic").
	OpSim Op = "sim"
	// OpSimDelay stretches a simulation's wall-clock by the rule's delay
	// (admission-control and shedding tests use it for long jobs).
	OpSimDelay Op = "sim-delay"
)

// ops indexes the per-op call/injection counters.
var ops = []Op{OpStoreRead, OpStoreWrite, OpCorrupt, OpSlowIO, OpSim, OpSimDelay}

func opIndex(op Op) int {
	for i, o := range ops {
		if o == op {
			return i
		}
	}
	return -1
}

// ErrInjected is the sentinel every injected failure wraps, so tests can
// errors.Is-classify an injected error against a real one.
var ErrInjected = errors.New("injected fault")

// InjectedError is the typed failure an armed rule produces.
type InjectedError struct {
	Op   Op
	Call int64 // the op's 1-based call number that fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s failure (call %d)", e.Op, e.Call)
}

// Unwrap ties the error to the ErrInjected sentinel.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Rule is one parsed injection rule. Zero trigger fields mean "every call
// in the window"; Match restricts sim rules to kernels (and store rules to
// keys) containing the substring.
type Rule struct {
	Op    Op
	Nth   int64         // fire exactly on this call number
	Every int64         // fire on every multiple of this call number
	Prob  float64       // fire with this probability per call
	After int64         // window start: only calls > After fire
	Count int64         // window length: only calls <= After+Count fire (0 = unbounded)
	Delay time.Duration // slow-io / sim-delay latency
	Match string        // substring filter on the call subject
}

func (r *Rule) matches(subject string) bool {
	return r.Match == "" || strings.Contains(subject, r.Match)
}

func (r *Rule) inWindow(n int64) bool {
	if n <= r.After {
		return false
	}
	return r.Count == 0 || n <= r.After+r.Count
}

// Injector evaluates a rule set against per-op call counters and one
// seeded random stream. All methods are safe for concurrent use; under
// concurrency the decision *set* stays that of the spec even though the
// call order (and so which exact call a probabilistic rule hits) is
// schedule-dependent.
type Injector struct {
	mu       sync.Mutex
	rules    []Rule
	rng      uint64
	disabled bool
	c        counters
}

// nOps must track len(ops); counters are fixed-size arrays so decide is
// allocation-free.
const nOps = 6

type counters struct {
	calls    [nOps]int64
	injected [nOps]int64
}

// New builds an injector from explicit rules (Parse is the spec form).
func New(seed int64, rules ...Rule) (*Injector, error) {
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
	}
	s := uint64(seed)
	// Pre-mix so seed 0 does not start the stream at the fixed point.
	splitmix64(&s)
	return &Injector{rules: rules, rng: s}, nil
}

func (r *Rule) validate() error {
	if opIndex(r.Op) < 0 {
		return fmt.Errorf("fault: unknown op %q", r.Op)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: %s: probability %v outside [0,1]", r.Op, r.Prob)
	}
	if r.Nth < 0 || r.Every < 0 || r.After < 0 || r.Count < 0 || r.Delay < 0 {
		return fmt.Errorf("fault: %s: negative rule parameter", r.Op)
	}
	if (r.Op == OpSlowIO || r.Op == OpSimDelay) && r.Delay <= 0 {
		return fmt.Errorf("fault: %s requires delay=<duration>", r.Op)
	}
	return nil
}

// Parse builds an injector from a spec string (see the package comment
// for the grammar). An empty spec yields an armed injector with no rules:
// hooks attached, nothing ever fires — the fault-free differential gates
// run in exactly that configuration.
func Parse(spec string, seed int64) (*Injector, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		opStr, params, _ := strings.Cut(raw, ":")
		r := Rule{Op: Op(strings.TrimSpace(opStr))}
		if params != "" {
			for _, p := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
				if !ok {
					return nil, fmt.Errorf("fault: rule %q: parameter %q is not key=value", raw, p)
				}
				var err error
				switch k {
				case "nth":
					r.Nth, err = strconv.ParseInt(v, 10, 64)
				case "every":
					r.Every, err = strconv.ParseInt(v, 10, 64)
				case "p":
					r.Prob, err = strconv.ParseFloat(v, 64)
				case "after":
					r.After, err = strconv.ParseInt(v, 10, 64)
				case "count":
					r.Count, err = strconv.ParseInt(v, 10, 64)
				case "delay":
					r.Delay, err = time.ParseDuration(v)
				case "match":
					r.Match = v
				default:
					err = fmt.Errorf("unknown parameter %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("fault: rule %q: %v", raw, err)
				}
			}
		}
		rules = append(rules, r)
	}
	return New(seed, rules...)
}

// Disable stops all injection: every hook becomes a pass-through and the
// call counters freeze. The chaos recovery tests flip this to model
// "the faults stop" without rebuilding the daemon.
func (in *Injector) Disable() { in.setDisabled(true) }

// Enable re-arms a disabled injector.
func (in *Injector) Enable() { in.setDisabled(false) }

func (in *Injector) setDisabled(v bool) {
	in.mu.Lock()
	in.disabled = v
	in.mu.Unlock()
}

// Injected reports how many times op's rules have fired.
func (in *Injector) Injected(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if i := opIndex(op); i >= 0 {
		return in.c.injected[i]
	}
	return 0
}

// Calls reports how many times op has been consulted (disabled calls are
// not counted, so re-enabling resumes the deterministic sequence).
func (in *Injector) Calls(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if i := opIndex(op); i >= 0 {
		return in.c.calls[i]
	}
	return 0
}

// decide advances op's call counter and evaluates the rules in spec
// order, returning the first rule that fires.
func (in *Injector) decide(op Op, subject string) (Rule, int64, bool) {
	idx := opIndex(op)
	if idx < 0 {
		return Rule{}, 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.disabled {
		return Rule{}, 0, false
	}
	in.c.calls[idx]++
	n := in.c.calls[idx]
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != op || !r.matches(subject) || !r.inWindow(n) {
			continue
		}
		switch {
		case r.Nth > 0:
			if n != r.Nth {
				continue
			}
		case r.Every > 0:
			if n%r.Every != 0 {
				continue
			}
		case r.Prob > 0:
			if in.float64() >= r.Prob {
				continue
			}
		}
		in.c.injected[idx]++
		return *r, n, true
	}
	return Rule{}, n, false
}

// float64 draws a uniform sample in [0,1) from the injector's own
// splitmix64 stream (deliberately not math/rand: the decision sequence
// must not depend on the standard library staying stable).
func (in *Injector) float64() float64 {
	return float64(splitmix64(&in.rng)>>11) / (1 << 53)
}

func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ReadFault implements store.FaultInjector: a non-nil error fails the
// lookup with a transient I/O error before the disk is touched.
func (in *Injector) ReadFault(key string) error {
	if _, n, ok := in.decide(OpStoreRead, key); ok {
		return &InjectedError{Op: OpStoreRead, Call: n}
	}
	return nil
}

// WriteFault implements store.FaultInjector for the persist side.
func (in *Injector) WriteFault(key string) error {
	if _, n, ok := in.decide(OpStoreWrite, key); ok {
		return &InjectedError{Op: OpStoreWrite, Call: n}
	}
	return nil
}

// MangleRead implements store.FaultInjector: when armed it returns a
// bit-flipped copy of raw (the original is never mutated), simulating
// on-disk corruption the envelope checksum must catch.
func (in *Injector) MangleRead(raw []byte) ([]byte, bool) {
	_, n, ok := in.decide(OpCorrupt, "")
	if !ok || len(raw) == 0 {
		return nil, false
	}
	m := make([]byte, len(raw))
	copy(m, raw)
	// Flip one deterministic bit per call: spread across the record so
	// envelope, checksum, and payload regions all get exercised over time.
	pos := int(uint64(n*2654435761) % uint64(len(m)))
	m[pos] ^= 1 << (uint(n) % 8)
	return m, true
}

// IODelay implements store.FaultInjector: extra latency for a disk op.
func (in *Injector) IODelay() time.Duration {
	if r, _, ok := in.decide(OpSlowIO, ""); ok {
		return r.Delay
	}
	return 0
}

// SimFault implements experiments.SimFaultInjector: a non-nil error makes
// the runner panic inside its contained sim wrapper.
func (in *Injector) SimFault(kernel string) error {
	if _, n, ok := in.decide(OpSim, kernel); ok {
		return &InjectedError{Op: OpSim, Call: n}
	}
	return nil
}

// SimDelay implements experiments.SimFaultInjector's latency side.
func (in *Injector) SimDelay(kernel string) time.Duration {
	if r, _, ok := in.decide(OpSimDelay, kernel); ok {
		return r.Delay
	}
	return 0
}
