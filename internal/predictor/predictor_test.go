package predictor

import (
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
	"duplo/internal/sim"
)

var testLayer = conv.Params{N: 2, H: 16, W: 16, C: 16, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}

func testKernel(t *testing.T) *sim.Kernel {
	t.Helper()
	k, err := sim.NewConvKernel("predtest", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testConfig() sim.Config {
	cfg := sim.TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 8
	return cfg
}

func TestFamily(t *testing.T) {
	k := testKernel(t)
	if got := Family(k); got != "conv3x3s1" {
		t.Errorf("Family = %q, want conv3x3s1", got)
	}
	g, err := sim.NewGemmKernel("g", 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := Family(g); got != "gemm" {
		t.Errorf("gemm Family = %q", got)
	}
}

// TestFeaturesShape: the feature vector is index-aligned with
// FeatureNames, finite, and the Duplo terms engage only with the
// detection unit on.
func TestFeaturesShape(t *testing.T) {
	k := testKernel(t)
	cfg := testConfig()
	f := Features(k, cfg)
	if len(f) != len(FeatureNames) {
		t.Fatalf("features %d != names %d", len(f), len(FeatureNames))
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %s is %v", FeatureNames[i], v)
		}
	}
	idx := func(name string) int {
		for i, n := range FeatureNames {
			if n == name {
				return i
			}
		}
		t.Fatalf("no feature %q", name)
		return -1
	}
	if f[idx("bias")] != 1 {
		t.Error("bias feature != 1")
	}
	if f[idx("eligible")] != 0 || f[idx("elim_red")] != 0 {
		t.Error("Duplo terms nonzero with the detection unit off")
	}
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultDetectionUnitConfig().LHB
	fd := Features(k, cfg)
	if fd[idx("eligible")] <= 0 || fd[idx("elim_red")] <= 0 {
		t.Error("Duplo terms zero with the detection unit on")
	}
	if fd[idx("elim_near")] > fd[idx("elim_red")]+1e-9 {
		t.Error("capacity-discounted elimination exceeds the unlimited volume")
	}
}

// TestTargetIndexCoversAllNames: every name PredictResult dereferences
// (and every declared target) resolves without panicking.
func TestTargetIndexCoversAllNames(t *testing.T) {
	for _, n := range TargetNames {
		if got := TargetNames[targetIndex(n)]; got != n {
			t.Errorf("targetIndex(%q) resolved to %q", n, got)
		}
	}
	// Every normalized target must also be a real target (its intensity is
	// computed from Targets) and resolve in a model with no normalized fit.
	empty := &FamilyModel{}
	for _, n := range NormTargetNames {
		if got := TargetNames[targetIndex(n)]; got != n {
			t.Errorf("norm target %q is not a target", n)
		}
		if w := empty.normWeights(n); w != nil {
			t.Errorf("normWeights(%q) on an empty model = %v, want nil", n, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("targetIndex on an unknown name did not panic")
		}
	}()
	targetIndex("no-such-target")
}

// synthSamples builds a calibration set whose cycles target is exactly
// linear in the features — the fit must recover it to machine precision.
func synthSamples(k *sim.Kernel) []Sample {
	var ss []Sample
	for _, ctas := range []int{2, 4, 6, 8, 10, 12} {
		for _, don := range []bool{false, true} {
			cfg := testConfig()
			cfg.MaxCTAs = ctas
			cfg.Duplo = don
			if don {
				cfg.DetectCfg = duplo.DefaultDetectionUnitConfig()
			}
			f := Features(k, cfg)
			targets := make([]float64, len(TargetNames))
			for t := range targets {
				// Deterministic synthetic ground truth: a distinct linear
				// combination per target.
				targets[t] = 1000 + float64(t+1)*f[1] + 2*float64(t+1)*f[len(f)-1]
			}
			s := Sample{Family: Family(k), Duplo: don, Features: f, Targets: targets}
			if don {
				s.Eligible = float64(k.StaticWork(cfg.MaxCTAs).ARowLoads())
				s.Intensive = Intensives(k, cfg)
			}
			ss = append(ss, s)
		}
	}
	return ss
}

// TestFitRecoversLinearTruth: on exactly-linear synthetic data the fit
// passes the gate with ~zero error and PredictResult round-trips the
// cycles prediction.
func TestFitRecoversLinearTruth(t *testing.T) {
	k := testKernel(t)
	ss := synthSamples(k)
	cal, err := Fit("test-key", ss)
	if err != nil {
		t.Fatal(err)
	}
	if !cal.GatePass() {
		t.Fatal("gate failed on exactly-linear data")
	}
	m, ok := cal.Model(k)
	if !ok {
		t.Fatal("no model for the fitted family")
	}
	if m.All.MAPE > 1e-6 || m.All.Pearson < 0.999 {
		t.Errorf("linear fit not exact: MAPE %g r %g", m.All.MAPE, m.All.Pearson)
	}
	if m.Uncertainty() > 1e-6 {
		t.Errorf("uncertainty %g on exact data", m.Uncertainty())
	}
	cfg := testConfig()
	cfg.MaxCTAs = 6
	res, ok := cal.PredictResult(k, cfg)
	if !ok {
		t.Fatal("PredictResult refused a gate-passing family")
	}
	if !res.Predicted {
		t.Error("predicted result not marked Predicted")
	}
	f := Features(k, cfg)
	want := 1000 + 1*f[1] + 2*f[len(f)-1]
	if got := float64(res.Cycles); math.Abs(got-want) > 1 {
		t.Errorf("predicted cycles %g, want %g", got, want)
	}
	// Exact static counters are filled from the work profile.
	w := k.StaticWork(cfg.MaxCTAs)
	if res.Instructions != w.Instructions() || res.TensorLoads != w.RowLoads() {
		t.Error("exact counters not filled from the static work profile")
	}
}

// TestFitRejectsMalformedSamples: length mismatches are programming
// errors, not noise.
func TestFitRejectsMalformedSamples(t *testing.T) {
	if _, err := Fit("k", []Sample{{Family: "f", Features: []float64{1}, Targets: []float64{1}}}); err == nil {
		t.Error("Fit accepted a malformed sample")
	}
}

// TestGateFailingFamilyNeverPredicts: a family whose metrics miss the
// thresholds must be refused by Model and PredictResult.
func TestGateFailingFamilyNeverPredicts(t *testing.T) {
	k := testKernel(t)
	cal, err := Fit("k", synthSamples(k))
	if err != nil {
		t.Fatal(err)
	}
	cal.Families[Family(k)].GatePass = false
	if _, ok := cal.Model(k); ok {
		t.Error("Model returned a gate-failing family")
	}
	if _, ok := cal.PredictResult(k, testConfig()); ok {
		t.Error("PredictResult used a gate-failing family")
	}
	var nilCal *Calibration
	if _, ok := nilCal.Model(k); ok {
		t.Error("nil calibration returned a model")
	}
}

// TestPredictResultClamps: predicted counters respect the accounting
// invariants even when the raw linear prediction goes negative or
// inconsistent.
func TestPredictResultClamps(t *testing.T) {
	k := testKernel(t)
	cal, err := Fit("k", synthSamples(k))
	if err != nil {
		t.Fatal(err)
	}
	m := cal.Families[Family(k)]
	// Force pathological weights: hits way above accesses, negative DRAM.
	for i := range m.Weights[targetIndex("l1_hits")] {
		m.Weights[targetIndex("l1_hits")][i] *= 100
	}
	for i := range m.Weights[targetIndex("dram_lines")] {
		m.Weights[targetIndex("dram_lines")][i] *= -1
	}
	cfg := testConfig()
	cfg.Duplo = true
	cfg.DetectCfg = duplo.DefaultDetectionUnitConfig()
	res, ok := cal.PredictResult(k, cfg)
	if !ok {
		t.Fatal("no prediction")
	}
	if res.L1Hits > res.L1Accesses {
		t.Errorf("L1 hits %d > accesses %d", res.L1Hits, res.L1Accesses)
	}
	if res.DRAMLines < 0 {
		t.Errorf("negative DRAM lines %d", res.DRAMLines)
	}
	if res.LHB.Hits > res.LHB.Lookups {
		t.Errorf("LHB hits %d > lookups %d", res.LHB.Hits, res.LHB.Lookups)
	}
	if res.LHB.Hits+res.LHB.Misses != res.LHB.Lookups {
		t.Error("LHB hits+misses != lookups")
	}
	if res.LoadsEliminated != int64(res.LHB.Hits) {
		t.Errorf("eliminated %d != LHB hits %d (simulator invariant)", res.LoadsEliminated, res.LHB.Hits)
	}
	if res.Cycles < 1 {
		t.Errorf("cycles %d < 1", res.Cycles)
	}
	// Baseline predictions must carry no Duplo activity at all.
	cfg.Duplo = false
	cfg.DetectCfg = duplo.DetectionUnitConfig{}
	res, _ = cal.PredictResult(k, cfg)
	if res.LHB.Lookups != 0 || res.LoadsEliminated != 0 {
		t.Error("baseline prediction carries Duplo counters")
	}
}

// TestMetricsVacuousPearson: correlation needs spread — tiny subsets and
// near-constant targets gate on MAPE alone.
func TestMetricsVacuousPearson(t *testing.T) {
	flat := []float64{1e6, 1e6 + 10, 1e6 - 10, 1e6 + 5}
	m := metricsOver(allIdx(len(flat)),
		func(i int) float64 { return flat[i] + 1 },
		func(i int) float64 { return flat[i] })
	if m.Pearson != 1 {
		t.Errorf("near-constant subset Pearson %g, want vacuous 1", m.Pearson)
	}
	two := metricsOver([]int{0, 1},
		func(i int) float64 { return float64(i) },
		func(i int) float64 { return -float64(i) })
	if two.Pearson != 1 {
		t.Errorf("N=2 Pearson %g, want vacuous 1", two.Pearson)
	}
	// Real spread with anti-correlated predictions must be caught.
	y := []float64{100, 200, 300, 400}
	anti := metricsOver(allIdx(len(y)),
		func(i int) float64 { return y[len(y)-1-i] },
		func(i int) float64 { return y[i] })
	if anti.Pearson > -0.99 {
		t.Errorf("anti-correlated Pearson %g, want ~-1", anti.Pearson)
	}
}

func TestCountClamps(t *testing.T) {
	if count(-5) != 0 || count(math.NaN()) != 0 {
		t.Error("negative/NaN not clamped to 0")
	}
	if count(2.6) != 3 {
		t.Error("rounding broken")
	}
	if count(math.MaxFloat64) != math.MaxInt64/2 {
		t.Error("overflow not clamped")
	}
}

// TestArtifactRoundTrip: Save/Load preserve the calibration bit-for-bit
// and every tamper mode is detected.
func TestArtifactRoundTrip(t *testing.T) {
	k := testKernel(t)
	cal, err := Fit("round-trip-key", synthSamples(k))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub", "calib.json")
	if err := Save(path, cal); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, cal.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != cal.Key || len(got.Families) != len(cal.Families) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	gm, cm := got.Families[Family(k)], cal.Families[Family(k)]
	if gm.All.MAPE != cm.All.MAPE || len(gm.Weights) != len(cm.Weights) {
		t.Error("family model did not round-trip")
	}

	if _, err := Load(path, "some-other-key"); !errors.Is(err, ErrMismatch) {
		t.Errorf("key mismatch error %v, want ErrMismatch", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json"), cal.Key); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing artifact error %v, want fs.ErrNotExist", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(raw), `"gate_pass":true`, `"gate_pass":false`, 1)
	if corrupt == string(raw) {
		t.Fatal("tamper target not found in artifact")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, cal.Key); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("tampered artifact error %v, want a checksum mismatch", err)
	}

	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, cal.Key); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestDefaultPathStable(t *testing.T) {
	a := DefaultPath("/store", "key-1")
	b := DefaultPath("/store", "key-1")
	c := DefaultPath("/store", "key-2")
	if a != b {
		t.Error("DefaultPath not deterministic")
	}
	if a == c {
		t.Error("distinct keys map to the same artifact path")
	}
	if !strings.HasPrefix(a, filepath.Join("/store", "calibration")+string(filepath.Separator)) {
		t.Errorf("unexpected artifact location %q", a)
	}
}
