package predictor

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Calibration artifacts persist through the same versioned-envelope frame
// as internal/store records: {version, key, sum, payload} with the
// payload's own SHA-256, written via temp file + atomic rename. A warm
// daemon (or a second duploexp invocation pointed at the same artifact)
// therefore never refits — and a truncated, bit-flipped, version-skewed
// or wrong-key artifact is a clean refit, never a reinterpretation.

// envelope mirrors store.envelope; predictor keeps its own copy so the
// artifact format is self-contained (store persists sim Records, this
// persists fitted models — they version independently).
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// ErrMismatch reports a structurally valid artifact fitted for a
// different calibration key (different sim config, workload set, or
// predictor format): the caller must refit, but the file is not damaged.
var ErrMismatch = errors.New("predictor: calibration key mismatch")

// Save writes the calibration artifact atomically. The parent directory
// is created if needed.
func Save(path string, c *Calibration) error {
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("predictor: encode: %w", err)
	}
	// Compact, like store records: MarshalIndent would re-indent the
	// embedded RawMessage and break the checksum's byte-for-byte contract.
	data, err := json.Marshal(envelope{
		Version: FormatVersion, Key: c.Key, Sum: payloadSum(payload), Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("predictor: encode: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("predictor: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".calib-*")
	if err != nil {
		return fmt.Errorf("predictor: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("predictor: %w", werr)
	}
	return nil
}

// Load reads and fully verifies a calibration artifact. It returns
// fs.ErrNotExist (wrapped) when the file is absent, ErrMismatch (wrapped,
// with both keys) when the artifact was fitted for a different key, and a
// descriptive error for damage or version skew. Callers treat every
// non-nil error the same way — refit — but the distinction keeps logs
// honest.
func Load(path, wantKey string) (*Calibration, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("predictor: %w", err)
		}
		return nil, fmt.Errorf("predictor: read %s: %w", path, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("predictor: %s: corrupt envelope: %w", path, err)
	}
	if env.Version != FormatVersion {
		return nil, fmt.Errorf("predictor: %s: format version %d, want %d", path, env.Version, FormatVersion)
	}
	if env.Sum != payloadSum(env.Payload) {
		return nil, fmt.Errorf("predictor: %s: payload checksum mismatch", path)
	}
	if env.Key != wantKey {
		return nil, fmt.Errorf("%w: artifact %q, want %q", ErrMismatch, env.Key, wantKey)
	}
	var c Calibration
	if err := json.Unmarshal(env.Payload, &c); err != nil {
		return nil, fmt.Errorf("predictor: %s: corrupt payload: %w", path, err)
	}
	if c.Key != wantKey {
		return nil, fmt.Errorf("%w: payload %q, want %q", ErrMismatch, c.Key, wantKey)
	}
	return &c, nil
}

// DefaultPath places the artifact inside a store directory, keyed by the
// calibration key's hash, so differently-scaled daemons sharing one cache
// directory keep separate calibrations.
func DefaultPath(storeDir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(storeDir, "calibration", hex.EncodeToString(sum[:])[:16]+".json")
}

// payloadSum is the envelope checksum: hex SHA-256 of the payload bytes.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
