// Package predictor is the calibrated analytical fast path in front of the
// cycle simulator (ROADMAP open item 3): a small per-layer-family linear
// model fit by least squares against cycle-sim ground truth, with an
// explicit calibration gate (MAPE and Pearson r thresholds) and persisted
// calibration artifacts.
//
// The model is deliberately simple — a handful of physically meaningful
// features per sample, one weight vector per predicted counter per layer
// family — because its job is interpolation inside a calibrated envelope,
// not discovery. Every feature is computable without simulating: exact
// static instruction counts from sim.Kernel.StaticWork (the warp programs
// are deterministic), roofline-style cycle terms for each candidate
// bottleneck (issue throughput, L1 port serialization, DRAM bandwidth,
// tensor-core initiation), their max (the roofline hull, linear in the
// weights even though it is nonlinear in the inputs), and Duplo redundancy
// terms built from the convolution's duplication factor and an
// LHB-capacity coverage estimate.
//
// The fit minimizes squared *relative* error (each sample's row is scaled
// by 1/max(|y|,1)), so the least-squares objective is aligned with the
// MAPE gate rather than dominated by the largest layers. Duplo activity
// counters (eliminations, LHB hits, ...) are fit separately as
// *intensities* — counts per eligible A row load, over the scale-free
// coverage features — and scaled back up by the exact structural lookup
// volume at prediction time: relative-error WLS on raw counts quietly
// sacrifices the largest layers whenever the capacity features cannot
// separate layers, while intensities put every (layer, LHB point) cell on
// equal footing. A family whose fit fails the gate never predicts —
// callers fall back to the simulator, which is always correct.
package predictor

import (
	"fmt"
	"math"
	"sort"

	"duplo/internal/sim"
)

// FormatVersion is bumped whenever the feature set, target set, or fit
// procedure changes incompatibly; it participates in both the artifact
// envelope and the calibration key, so a stale artifact is a clean refit,
// never a reinterpretation.
const FormatVersion = 2

// Calibration gate thresholds (ISSUE 7 acceptance criteria): a family
// predicts only when its fit achieves MAPE <= GateMAPE and Pearson
// r >= GatePearson on the cycles target against cycle-sim ground truth,
// evaluated separately on the Duplo-off and Duplo-on sample subsets.
const (
	GateMAPE    = 0.15
	GatePearson = 0.95
)

// FeatureNames names the feature vector, index-aligned with Features.
var FeatureNames = []string{
	"bias",
	"t_issue",     // warp instructions / issue throughput
	"t_l1port",    // load line-requests / L1 port throughput
	"t_dram",      // compulsory bytes / sliced DRAM bandwidth
	"t_mma",       // MMA steps / tensor-core initiation throughput
	"t_max",       // roofline hull: max of the four terms above
	"elim_red",    // Duplo: capacity-unlimited redundant-load volume
	"elim_near",   // ... discounted by near-reuse LHB coverage
	"elim_far",    // ... discounted by far-reuse LHB coverage
	"elim_oracle", // oracle-only redundant-load volume
	"eligible",    // Duplo: LHB-eligible load volume (workspace loads)
	"waves",       // CTA waves per SM (epilogue / fill overhead)
}

// IntensiveNames names the scale-free feature vector the Duplo activity
// counters are fit against, index-aligned with Intensives. Every term is
// an O(1) fraction — independent of layer size and CTA count — so the
// normalized fit weighs every (layer, LHB point) cell equally.
var IntensiveNames = []string{
	"bias",
	"frac",        // capacity-unlimited redundant fraction 1-1/D
	"frac_near",   // ... discounted by near-reuse LHB coverage
	"frac_far",    // ... discounted by far-reuse LHB coverage
	"frac_oracle", // oracle-only redundant fraction
}

// NormTargetNames lists the targets fit as intensities (counts per
// eligible A row load) rather than raw counts, index-aligned with
// FamilyModel.NormWeights rows. All of them are Duplo activity counters
// proportional to the detection-unit lookup volume.
var NormTargetNames = []string{
	"loads_eliminated",
	"lhb_hits",
	"lhb_allocs",
	"lhb_replacements",
	"lhb_releases",
	"lhb_relays",
	"renames",
	"allocs",
	"svc_lhb",
}

// TargetNames names the predicted counters, index-aligned with Targets
// and with FamilyModel.Weights rows. Cycles is first: it is the gated
// target, and the one every speedup ratio is built from.
var TargetNames = []string{
	"cycles",
	"issue_stall",
	"ldst_stall",
	"loads_eliminated",
	"lhb_lookups",
	"lhb_hits",
	"lhb_allocs",
	"lhb_replacements",
	"lhb_releases",
	"lhb_relays",
	"renames",
	"allocs",
	"l1_accesses",
	"l1_hits",
	"l2_accesses",
	"l2_hits",
	"dram_lines",
	"store_lines",
	"mshr_merges",
	"svc_lhb",
	"svc_l1",
	"svc_l2",
	"svc_dram",
}

// Family classifies a kernel into a layer family: one linear model is fit
// per family, because the duplication structure (and therefore the shape
// of the Duplo response) is set by the filter geometry. Plain GEMM kernels
// (no lowered convolution: wgrad, synthetic M/N/K) form the "gemm" family.
func Family(k *sim.Kernel) string {
	if k.Conv == nil {
		return "gemm"
	}
	return fmt.Sprintf("conv%dx%ds%d", k.Conv.FH, k.Conv.FW, k.Conv.Stride)
}

// Features computes the feature vector for one (kernel, config) cell.
// Everything is derived statically — no simulation.
func Features(k *sim.Kernel, cfg sim.Config) []float64 {
	w := k.StaticWork(cfg.MaxCTAs)
	sms := float64(cfg.SimSMs)
	loads := float64(w.ALoads + w.BLoads)
	instrs := float64(w.Instructions())

	// Roofline terms, each in cycles (up to a constant the fit absorbs).
	tIssue := instrs / (sms * float64(cfg.Schedulers))
	// A 16x16 half tile load splits into 16 row segments of 32B; the L1
	// port serializes line requests.
	tL1 := loads * 16 / sms
	tDRAM := compulsoryBytes(k, w) / (cfg.DRAMBytesPerCycle() * cfg.SliceScale())
	tMMA := float64(w.MMAs) * float64(cfg.MMAInitiation) / (sms * float64(cfg.TensorCores) / 2)
	tMax := math.Max(math.Max(tIssue, tL1), math.Max(tDRAM, tMMA))

	// Duplo redundancy terms: zero when the detection unit is off or the A
	// operand is not a lowered workspace (nothing is LHB-eligible).
	var elim, elimNear, elimFar, elimOracle, eligible float64
	if cfg.Duplo && k.Conv != nil {
		eligible = float64(w.ALoads) * 16 / sms // line-request units, like tL1
		frac, covNear, covFar, oracle := duploCoverage(k, cfg)
		elim = eligible * frac
		if oracle {
			elimOracle = elim
		}
		elimNear = elim * covNear
		elimFar = elim * covFar
	}

	waves := 0.0
	if per := k.CTAsPerSM(cfg); per > 0 && cfg.SimSMs > 0 {
		waves = math.Ceil(float64(w.CTAs) / float64(cfg.SimSMs*per))
	}

	return []float64{1, tIssue, tL1, tDRAM, tMMA, tMax,
		elim, elimNear, elimFar, elimOracle, eligible, waves}
}

// duploCoverage computes the redundant-load fraction of a lowered
// convolution and the LHB capacity coverage of its two reuse distances.
// Requires k.Conv != nil and cfg.Duplo.
func duploCoverage(k *sim.Kernel, cfg sim.Config) (frac, covNear, covFar float64, oracle bool) {
	p := k.Conv
	frac = 1 - 1/p.DuplicationFactor()
	if frac < 0 {
		frac = 0
	}
	covNear, covFar = 1.0, 1.0
	oracle = cfg.DetectCfg.LHB.Oracle
	if !oracle {
		entries := float64(cfg.DetectCfg.LHB.Entries)
		// Reuse working sets in distinct-input-ID units: one workspace
		// row (horizontal reuse) and one filter-row sweep of the input
		// (vertical reuse).
		near := float64(p.GemmK())
		far := float64(p.FH) * float64(p.C) * float64(p.W)
		covNear = entries / (entries + near)
		covFar = entries / (entries + far)
	}
	return frac, covNear, covFar, oracle
}

// Intensives computes the scale-free feature vector (IntensiveNames
// order) for one (kernel, config) cell. All terms are zero past the bias
// when the detection unit is off or the kernel has no lowered workspace.
func Intensives(k *sim.Kernel, cfg sim.Config) []float64 {
	out := make([]float64, len(IntensiveNames))
	out[0] = 1
	if !cfg.Duplo || k.Conv == nil {
		return out
	}
	frac, covNear, covFar, oracle := duploCoverage(k, cfg)
	out[1] = frac
	out[2] = frac * covNear
	out[3] = frac * covFar
	if oracle {
		out[4] = frac
	}
	return out
}

// compulsoryBytes estimates the compulsory DRAM read footprint of the
// simulated CTA prefix: the touched A rows, the touched B columns, plus
// the D write-through traffic.
func compulsoryBytes(k *sim.Kernel, w sim.Work) float64 {
	a := float64(w.RowsCovered) * float64(k.KPad) * float64(k.ElemSize)
	b := float64(k.KPad) * float64(w.ColsCovered) * float64(k.ElemSize)
	d := float64(w.RowsCovered) * float64(k.NPad) * float64(k.DElemSize)
	return a + b + d
}

// Sample is one calibration observation: a (kernel, config) cell's
// features and its simulated ground-truth targets.
type Sample struct {
	Family   string    `json:"family"`
	Duplo    bool      `json:"duplo"`
	Features []float64 `json:"features"`
	Targets  []float64 `json:"targets"`
	// Intensive / Eligible feed the normalized Duplo-counter fit: the
	// scale-free feature vector (IntensiveNames order) and the structural
	// detection-unit lookup volume (ARowLoads) the counters are divided
	// by. Zero Eligible (Duplo off, or no lowered workspace) excludes the
	// sample from that fit.
	Intensive []float64 `json:"intensive,omitempty"`
	Eligible  float64   `json:"eligible,omitempty"`
}

// SampleOf builds the calibration sample for a simulated result.
func SampleOf(k *sim.Kernel, cfg sim.Config, res sim.Result) Sample {
	s := Sample{
		Family:   Family(k),
		Duplo:    cfg.Duplo,
		Features: Features(k, cfg),
		Targets:  Targets(res),
	}
	if cfg.Duplo && k.Conv != nil {
		s.Eligible = float64(k.StaticWork(cfg.MaxCTAs).ARowLoads())
		s.Intensive = Intensives(k, cfg)
	}
	return s
}

// Targets extracts the predicted-counter vector (TargetNames order) from a
// ground-truth result.
func Targets(res sim.Result) []float64 {
	s := res.Stats
	return []float64{
		float64(s.Cycles),
		float64(s.IssueStallCycles),
		float64(s.LDSTStallCycles),
		float64(s.LoadsEliminated),
		float64(s.LHB.Lookups),
		float64(s.LHB.Hits),
		float64(s.LHB.Allocs),
		float64(s.LHB.Replacements),
		float64(s.LHB.Releases),
		float64(s.LHB.Relays),
		float64(s.RenameCount),
		float64(s.AllocCount),
		float64(s.L1Accesses),
		float64(s.L1Hits),
		float64(s.L2Accesses),
		float64(s.L2Hits),
		float64(s.DRAMLines),
		float64(s.StoreLines),
		float64(s.MSHRMerges),
		float64(s.ServiceLines[sim.ServiceLHB]),
		float64(s.ServiceLines[sim.ServiceL1]),
		float64(s.ServiceLines[sim.ServiceL2]),
		float64(s.ServiceLines[sim.ServiceDRAM]),
	}
}

// Metrics summarizes a fit's accuracy on the cycles target over one sample
// subset.
type Metrics struct {
	N       int     `json:"n"`
	MAPE    float64 `json:"mape"`
	MaxAPE  float64 `json:"max_ape"`
	Pearson float64 `json:"pearson"`
}

// FamilyModel is the fitted model of one layer family.
type FamilyModel struct {
	Family string `json:"family"`
	// Weights[t] is the weight vector of target t (TargetNames order) over
	// the features (FeatureNames order).
	Weights [][]float64 `json:"weights"`
	// NormWeights[t] is the weight vector of normalized target t
	// (NormTargetNames order) over the intensive features (IntensiveNames
	// order): the model predicts count = eligible · (wI · fI). Nil when
	// the family had no eligible samples (plain GEMM); predictions then
	// fall back to the extensive regression.
	NormWeights [][]float64 `json:"norm_weights,omitempty"`
	// Fit quality on the cycles target: all samples, and the Duplo-off /
	// Duplo-on subsets the gate is evaluated on.
	All Metrics `json:"all"`
	Off Metrics `json:"off"`
	On  Metrics `json:"on"`
	// GatePass is the calibration gate: both subsets within GateMAPE and
	// GatePearson. A failing family never predicts.
	GatePass bool `json:"gate_pass"`
}

// Uncertainty is the expected relative error carried on predictions from
// this family: the worse of the two gated subset MAPEs.
func (m *FamilyModel) Uncertainty() float64 {
	return math.Max(m.Off.MAPE, m.On.MAPE)
}

// normWeights returns the intensity weight vector of a normalized target,
// or nil when the family carries no normalized fit. It panics on a name
// outside NormTargetNames — a typo, which the package tests exercise.
func (m *FamilyModel) normWeights(name string) []float64 {
	for i, n := range NormTargetNames {
		if n == name {
			if i < len(m.NormWeights) {
				return m.NormWeights[i]
			}
			return nil
		}
	}
	panic("predictor: target " + name + " has no normalized model")
}

// Calibration is a fitted, persistable set of family models.
type Calibration struct {
	// Key fingerprints what this calibration is valid for: predictor
	// format version, simulator configuration, and the workload set it was
	// fit against. A loaded artifact with a different key is discarded.
	Key        string                  `json:"key"`
	Features   []string                `json:"features"`
	Intensives []string                `json:"intensives"`
	Targets    []string                `json:"targets"`
	Families   map[string]*FamilyModel `json:"families"`
}

// Fit performs the per-family weighted least-squares fit and evaluates the
// calibration gate. Samples with mismatched vector lengths are rejected
// outright — that is a programming error, not noise.
func Fit(key string, samples []Sample) (*Calibration, error) {
	c := &Calibration{
		Key:        key,
		Features:   append([]string(nil), FeatureNames...),
		Intensives: append([]string(nil), IntensiveNames...),
		Targets:    append([]string(nil), TargetNames...),
		Families:   map[string]*FamilyModel{},
	}
	byFam := map[string][]Sample{}
	for _, s := range samples {
		if len(s.Features) != len(FeatureNames) || len(s.Targets) != len(TargetNames) {
			return nil, fmt.Errorf("predictor: sample for %s has %d features / %d targets, want %d / %d",
				s.Family, len(s.Features), len(s.Targets), len(FeatureNames), len(TargetNames))
		}
		if s.Eligible > 0 && len(s.Intensive) != len(IntensiveNames) {
			return nil, fmt.Errorf("predictor: eligible sample for %s has %d intensive features, want %d",
				s.Family, len(s.Intensive), len(IntensiveNames))
		}
		byFam[s.Family] = append(byFam[s.Family], s)
	}
	for fam, ss := range byFam {
		m := fitFamily(fam, ss)
		c.Families[fam] = m
	}
	return c, nil
}

// FamilyList returns the family models sorted by name (deterministic
// report order).
func (c *Calibration) FamilyList() []*FamilyModel {
	names := make([]string, 0, len(c.Families))
	for n := range c.Families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*FamilyModel, len(names))
	for i, n := range names {
		out[i] = c.Families[n]
	}
	return out
}

// GatePass reports whether every fitted family passed the calibration
// gate.
func (c *Calibration) GatePass() bool {
	if len(c.Families) == 0 {
		return false
	}
	for _, m := range c.Families {
		if !m.GatePass {
			return false
		}
	}
	return true
}

// Model returns the gate-passing model for a kernel's family, or false
// when the family is uncalibrated or failed the gate (the caller must
// simulate).
func (c *Calibration) Model(k *sim.Kernel) (*FamilyModel, bool) {
	if c == nil {
		return nil, false
	}
	m, ok := c.Families[Family(k)]
	if !ok || !m.GatePass {
		return nil, false
	}
	return m, true
}

// PredictResult synthesizes a full sim.Result for the cell without
// simulating. ok is false when the kernel's family is uncalibrated or
// failed the gate. Exactly-known counters (instruction counts, CTA
// accounting) are filled from the static work profile; predicted counters
// are clamped to their valid ranges (non-negative, hits <= accesses,
// eliminations <= loads) so a prediction is always a plausible Stats
// block even at the edge of the envelope.
func (c *Calibration) PredictResult(k *sim.Kernel, cfg sim.Config) (sim.Result, bool) {
	m, ok := c.Model(k)
	if !ok {
		return sim.Result{}, false
	}
	feats := Features(k, cfg)
	pred := make([]float64, len(m.Weights))
	for t, w := range m.Weights {
		pred[t] = dot(w, feats)
	}
	work := k.StaticWork(cfg.MaxCTAs)
	res := sim.Result{
		SimulatedCTAs: work.CTAs,
		TotalCTAs:     k.TotalCTAs(),
		Kernel:        k,
		Config:        cfg,
		Predicted:     true,
		PredictedErr:  m.Uncertainty(),
	}
	s := &res.Stats
	// Exact by construction (the warp programs are static).
	s.Instructions = work.Instructions()
	s.TensorLoads = work.RowLoads()
	s.MMAs = work.MMAs
	s.Stores = work.Stores

	at := func(name string) int64 { return count(pred[targetIndex(name)]) }
	atU := func(name string) uint64 { return uint64(count(pred[targetIndex(name)])) }
	// Duplo activity counters use the normalized fit when available:
	// intensity (per eligible A row load) times the exact structural
	// lookup volume. The extensive regression is the fallback for kernels
	// with no workspace (plain GEMM) or families with no eligible samples.
	var elig float64
	var fI []float64
	if cfg.Duplo && k.Conv != nil {
		elig = float64(work.ARowLoads())
		fI = Intensives(k, cfg)
	}
	nAt := func(name string) int64 {
		if w := m.normWeights(name); w != nil && elig > 0 {
			return count(elig * dot(w, fI))
		}
		return at(name)
	}
	nAtU := func(name string) uint64 { return uint64(nAt(name)) }
	s.Cycles = max64(at("cycles"), 1)
	s.IssueStallCycles = min64(at("issue_stall"), s.Cycles*int64(cfg.Schedulers)*int64(cfg.SimSMs))
	s.LDSTStallCycles = at("ldst_stall")
	if cfg.Duplo {
		// Lookups are structural, not regressed: every A row load of a
		// lowered-workspace kernel consults the detection unit (sm.go
		// issueLoad), so predicting them would only add error to the
		// rendered hit rate. Non-conv kernels have no workspace; the
		// detection unit bypasses and the regressed count (clamped up to
		// hits) is the best available.
		if k.Conv != nil {
			s.LHB.Lookups = uint64(work.ARowLoads())
		}
		elim := min64(nAt("loads_eliminated"), s.TensorLoads)
		// The simulator's accounting ties eliminations to LHB hits one to
		// one (invariants_test), so hits derive from the gated elimination
		// prediction, capped by what was looked up.
		s.LHB.Hits = minU(nAtU("lhb_hits"), uint64(elim))
		if k.Conv != nil {
			s.LHB.Hits = minU(s.LHB.Hits, s.LHB.Lookups)
		} else {
			s.LHB.Lookups = maxU(atU("lhb_lookups"), s.LHB.Hits)
		}
		s.LoadsEliminated = int64(s.LHB.Hits)
		s.LHB.Misses = s.LHB.Lookups - s.LHB.Hits
		s.LHB.Allocs = minU(nAtU("lhb_allocs"), s.LHB.Misses)
		s.LHB.Replacements = minU(nAtU("lhb_replacements"), s.LHB.Allocs)
		s.LHB.Releases = minU(nAtU("lhb_releases"), s.LHB.Allocs)
		s.LHB.Relays = nAtU("lhb_relays")
		s.RenameCount = min64(nAt("renames"), s.TensorLoads)
		s.AllocCount = nAt("allocs")
	}
	s.L1Accesses = at("l1_accesses")
	s.L1Hits = min64(at("l1_hits"), s.L1Accesses)
	s.L2Accesses = at("l2_accesses")
	s.L2Hits = min64(at("l2_hits"), s.L2Accesses)
	s.DRAMLines = at("dram_lines")
	s.StoreLines = at("store_lines")
	s.MSHRMerges = at("mshr_merges")
	if cfg.Duplo {
		s.ServiceLines[sim.ServiceLHB] = nAt("svc_lhb")
	}
	s.ServiceLines[sim.ServiceL1] = at("svc_l1")
	s.ServiceLines[sim.ServiceL2] = at("svc_l2")
	s.ServiceLines[sim.ServiceDRAM] = at("svc_dram")
	return res, true
}

// targetIndex resolves a TargetNames entry; it panics on a typo, which the
// package's own tests exercise for every name used above.
func targetIndex(name string) int {
	for i, n := range TargetNames {
		if n == name {
			return i
		}
	}
	panic("predictor: unknown target " + name)
}

// fitFamily fits one family: a weighted least-squares solve per target,
// then gate metrics on the cycles target.
func fitFamily(fam string, ss []Sample) *FamilyModel {
	nf := len(FeatureNames)
	m := &FamilyModel{Family: fam, Weights: make([][]float64, len(TargetNames))}
	X := make([][]float64, len(ss))
	for i, s := range ss {
		X[i] = s.Features
	}
	for t := range TargetNames {
		y := make([]float64, len(ss))
		w := make([]float64, len(ss))
		for i, s := range ss {
			y[i] = s.Targets[t]
			// Relative weighting: the LS objective becomes squared
			// relative error, aligned with the MAPE gate. The floor keeps
			// zero-valued targets (Duplo counters on baseline runs) from
			// blowing the system up.
			w[i] = 1 / math.Max(math.Abs(y[i]), 1)
		}
		m.Weights[t] = solveWLS(X, y, w, nf)
	}
	// Duplo activity counters get a second, normalized fit: counts per
	// eligible A row load over the scale-free coverage features, with
	// uniform weights — every (layer, LHB point) cell contributes an O(1)
	// intensity, so no layer can buy objective by sacrificing another.
	var el []int
	for i, s := range ss {
		if s.Duplo && s.Eligible > 0 && len(s.Intensive) == len(IntensiveNames) {
			el = append(el, i)
		}
	}
	if len(el) > 0 {
		XI := make([][]float64, len(el))
		for j, i := range el {
			XI[j] = ss[i].Intensive
		}
		ones := make([]float64, len(el))
		for j := range ones {
			ones[j] = 1
		}
		m.NormWeights = make([][]float64, len(NormTargetNames))
		for t, name := range NormTargetNames {
			ti := targetIndex(name)
			y := make([]float64, len(el))
			for j, i := range el {
				y[j] = ss[i].Targets[ti] / ss[i].Eligible
			}
			m.NormWeights[t] = solveWLS(XI, y, ones, len(IntensiveNames))
		}
	}
	// Gate metrics on the cycles target.
	cycles := targetIndex("cycles")
	var off, on []int
	for i, s := range ss {
		if s.Duplo {
			on = append(on, i)
		} else {
			off = append(off, i)
		}
	}
	predAt := func(i int) float64 { return dot(m.Weights[cycles], ss[i].Features) }
	truthAt := func(i int) float64 { return ss[i].Targets[cycles] }
	m.All = metricsOver(allIdx(len(ss)), predAt, truthAt)
	m.Off = metricsOver(off, predAt, truthAt)
	m.On = metricsOver(on, predAt, truthAt)
	m.GatePass = gate(m.Off) && gate(m.On) && m.All.N > 0
	return m
}

// gate evaluates one subset against the thresholds. An empty subset is
// vacuously passing: a family with only Duplo-off samples (plain GEMM) is
// gated on what it was actually calibrated against.
func gate(m Metrics) bool {
	if m.N == 0 {
		return true
	}
	return m.MAPE <= GateMAPE && m.Pearson >= GatePearson
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// metricsOver computes MAPE / MaxAPE / Pearson r over a sample index
// subset. Pearson over fewer than 3 points, or over a near-constant
// subset (ground-truth relative spread below vacuousSpread), is vacuous
// and reported as 1 — correlation needs spread to mean anything, and on a
// flat target it degenerates into amplified noise even when every
// prediction is within a fraction of a percent. MAPE still gates those
// subsets, so accuracy is never ungated.
func metricsOver(idx []int, pred, truth func(i int) float64) Metrics {
	m := Metrics{N: len(idx)}
	if m.N == 0 {
		return m
	}
	var sp, st float64
	for _, i := range idx {
		ape := math.Abs(pred(i)-truth(i)) / math.Max(math.Abs(truth(i)), 1)
		m.MAPE += ape
		if ape > m.MaxAPE {
			m.MaxAPE = ape
		}
		sp += pred(i)
		st += truth(i)
	}
	m.MAPE /= float64(m.N)
	if m.N < 3 {
		m.Pearson = 1
		return m
	}
	mp, mt := sp/float64(m.N), st/float64(m.N)
	var cov, vp, vt float64
	for _, i := range idx {
		dp, dt := pred(i)-mp, truth(i)-mt
		cov += dp * dt
		vp += dp * dp
		vt += dt * dt
	}
	if vp == 0 || vt == 0 ||
		math.Sqrt(vt/float64(m.N)) < vacuousSpread*math.Max(math.Abs(mt), 1) {
		m.Pearson = 1
		return m
	}
	m.Pearson = cov / math.Sqrt(vp*vt)
	return m
}

// vacuousSpread is the ground-truth coefficient of variation below which
// a subset counts as constant for Pearson purposes (see metricsOver): a
// target moving less than 2% across the whole calibration sweep carries
// no correlation signal worth gating on.
const vacuousSpread = 0.02

// solveWLS solves the weighted least-squares problem min Σ w_i (x_i·β −
// y_i)² by normal equations with a tiny ridge term for numerical safety
// (features can be collinear — t_max coincides with one of its inputs on
// single-regime families).
func solveWLS(X [][]float64, y, w []float64, nf int) []float64 {
	a := make([][]float64, nf)
	for i := range a {
		a[i] = make([]float64, nf+1)
	}
	for s := range X {
		ws := w[s] * w[s]
		for i := 0; i < nf; i++ {
			xi := X[s][i]
			if xi == 0 {
				continue
			}
			for j := 0; j < nf; j++ {
				a[i][j] += ws * xi * X[s][j]
			}
			a[i][nf] += ws * xi * y[s]
		}
	}
	// Ridge scaled to the diagonal so it is negligible where the data has
	// signal and decisive where a feature is absent (all-zero column).
	var trace float64
	for i := 0; i < nf; i++ {
		trace += a[i][i]
	}
	ridge := 1e-10*trace/float64(nf) + 1e-12
	for i := 0; i < nf; i++ {
		a[i][i] += ridge
	}
	return gaussSolve(a, nf)
}

// gaussSolve runs Gaussian elimination with partial pivoting on the
// augmented matrix a (nf x nf+1). A vanishing pivot leaves that
// coefficient at zero (the ridge makes this effectively unreachable).
func gaussSolve(a [][]float64, nf int) []float64 {
	for col := 0; col < nf; col++ {
		piv := col
		for r := col + 1; r < nf; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		p := a[col][col]
		if p == 0 {
			continue
		}
		for r := col + 1; r < nf; r++ {
			f := a[r][col] / p
			if f == 0 {
				continue
			}
			for cc := col; cc <= nf; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
		}
	}
	beta := make([]float64, nf)
	for i := nf - 1; i >= 0; i-- {
		if a[i][i] == 0 {
			beta[i] = 0
			continue
		}
		sum := a[i][nf]
		for j := i + 1; j < nf; j++ {
			sum -= a[i][j] * beta[j]
		}
		beta[i] = sum / a[i][i]
	}
	return beta
}

func dot(w, x []float64) float64 {
	var s float64
	for i := range w {
		s += w[i] * x[i]
	}
	return s
}

// count rounds a predicted counter to a non-negative integer.
func count(v float64) int64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(math.Round(v))
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
