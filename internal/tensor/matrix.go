package tensor

import "fmt"

// Matrix is a dense row-major 2-D matrix of float32, used for GEMM workspaces
// and filter matrices. Stride is the row pitch in elements, allowing padded
// (K-aligned) workspaces without copying.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix allocates a zero matrix with Stride == Cols.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// NewMatrixStrided allocates a zero matrix whose rows are padded to stride
// elements (stride >= cols). The padding stays zero, which matches the
// zero-padded K dimension fed to tensor cores.
func NewMatrixStrided(rows, cols, stride int) *Matrix {
	if rows <= 0 || cols <= 0 || stride < cols {
		panic(fmt.Sprintf("tensor: invalid strided dims %dx%d stride %d", rows, cols, stride))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: stride, Data: make([]float32, rows*stride)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Stride+c] }

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Stride+c] = v }

// Row returns the slice backing row r (length Cols).
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Stride : r*m.Stride+m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	d := make([]float32, len(m.Data))
	copy(d, m.Data)
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.Stride, Data: d}
}

// MaxAbsDiff returns the largest |a-b| over the logical (unpadded) region.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: matrix shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	var max float64
	for r := 0; r < m.Rows; r++ {
		a, b := m.Row(r), o.Row(r)
		for c := range a {
			d := float64(a[c]) - float64(b[c])
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Fill sets every element (including stride padding) to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}
