// Package tensor provides the 4-D NHWC tensors used throughout the Duplo
// reproduction.
//
// The paper (§III-C) notes that cuDNN mandates the NHWC layout for tensor
// cores, so every tensor in this repository is stored NHWC: the innermost
// (unit-stride) dimension is the channel, then width, then height, then
// batch. All convolution, lowering and ID-generation code depends on this
// layout matching device memory order.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense 4-D tensor in NHWC layout backed by float32 storage.
type Tensor struct {
	N, H, W, C int
	Data       []float32
}

// New allocates a zero-filled NHWC tensor. It panics on non-positive
// dimensions; tensors of zero size are never meaningful in this codebase and
// a panic localizes configuration bugs.
func New(n, h, w, c int) *Tensor {
	if n <= 0 || h <= 0 || w <= 0 || c <= 0 {
		panic(fmt.Sprintf("tensor: invalid dims %dx%dx%dx%d", n, h, w, c))
	}
	return &Tensor{N: n, H: h, W: w, C: c, Data: make([]float32, n*h*w*c)}
}

// FromSlice wraps data (length must equal n*h*w*c) without copying.
func FromSlice(n, h, w, c int, data []float32) *Tensor {
	if len(data) != n*h*w*c {
		panic(fmt.Sprintf("tensor: data length %d != %d", len(data), n*h*w*c))
	}
	return &Tensor{N: n, H: h, W: w, C: c, Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return t.N * t.H * t.W * t.C }

// Index returns the linear NHWC index of (n, y, x, c).
func (t *Tensor) Index(n, y, x, c int) int {
	return ((n*t.H+y)*t.W+x)*t.C + c
}

// At returns the element at (n, y, x, c).
func (t *Tensor) At(n, y, x, c int) float32 { return t.Data[t.Index(n, y, x, c)] }

// Set stores v at (n, y, x, c).
func (t *Tensor) Set(n, y, x, c int, v float32) { t.Data[t.Index(n, y, x, c)] = v }

// AtPadded returns the element at (n, y, x, c) treating out-of-bounds spatial
// coordinates as zero padding. Batch and channel must be in range.
func (t *Tensor) AtPadded(n, y, x, c int) float32 {
	if y < 0 || y >= t.H || x < 0 || x >= t.W {
		return 0
	}
	return t.Data[t.Index(n, y, x, c)]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Tensor{N: t.N, H: t.H, W: t.W, C: t.C, Data: d}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandom fills the tensor with deterministic pseudo-random values drawn
// from N(0, 1) scaled by scale. The same seed always produces the same
// tensor, which keeps functional cross-checks and benches reproducible.
func (t *Tensor) FillRandom(seed int64, scale float32) {
	rng := rand.New(rand.NewSource(seed))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * scale
	}
}

// FillSequential fills with 0, 1, 2, ... useful for layout tests.
func (t *Tensor) FillSequential() {
	for i := range t.Data {
		t.Data[i] = float32(i)
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.N == o.N && t.H == o.H && t.W == o.W && t.C == o.C
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// same-shaped tensors. It panics on shape mismatch.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.ShapeString(), o.ShapeString()))
	}
	var max float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(o.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// RelErr returns max |a-b| / (1 + max|a|) over all elements, a scale-aware
// error metric for comparing convolution implementations.
func (t *Tensor) RelErr(o *Tensor) float64 {
	if !t.SameShape(o) {
		panic("tensor: shape mismatch")
	}
	var maxDiff, maxVal float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(o.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
		a := math.Abs(float64(t.Data[i]))
		if a > maxVal {
			maxVal = a
		}
	}
	return maxDiff / (1 + maxVal)
}

// ShapeString returns "NxHxWxC".
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("%dx%dx%dx%d", t.N, t.H, t.W, t.C)
}

// Bytes returns the storage footprint assuming elemSize bytes per element
// (2 for half precision, 4 for single precision).
func (t *Tensor) Bytes(elemSize int) int64 { return int64(t.Len()) * int64(elemSize) }
