package tensor

import (
	"testing"
	"testing/quick"
)

func TestIndexLayoutNHWC(t *testing.T) {
	tt := New(2, 3, 4, 5)
	tt.FillSequential()
	// NHWC: channel is unit stride.
	if tt.Index(0, 0, 0, 1)-tt.Index(0, 0, 0, 0) != 1 {
		t.Error("channel stride != 1")
	}
	if tt.Index(0, 0, 1, 0)-tt.Index(0, 0, 0, 0) != 5 {
		t.Error("width stride != C")
	}
	if tt.Index(0, 1, 0, 0)-tt.Index(0, 0, 0, 0) != 20 {
		t.Error("height stride != W*C")
	}
	if tt.Index(1, 0, 0, 0)-tt.Index(0, 0, 0, 0) != 60 {
		t.Error("batch stride != H*W*C")
	}
	if got := tt.At(1, 2, 3, 4); got != float32(tt.Index(1, 2, 3, 4)) {
		t.Errorf("At/FillSequential mismatch: %v", got)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	tt := New(2, 2, 2, 2)
	tt.Set(1, 0, 1, 1, 42)
	if tt.At(1, 0, 1, 1) != 42 {
		t.Fatal("Set/At mismatch")
	}
}

func TestAtPadded(t *testing.T) {
	tt := New(1, 2, 2, 1)
	tt.Fill(7)
	if tt.AtPadded(0, -1, 0, 0) != 0 || tt.AtPadded(0, 0, 2, 0) != 0 {
		t.Error("out-of-bounds should be zero")
	}
	if tt.AtPadded(0, 1, 1, 0) != 7 {
		t.Error("in-bounds should read the value")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 1, 1, 4)
	a.FillSequential()
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] == 99 {
		t.Fatal("clone shares storage")
	}
	if !a.SameShape(b) {
		t.Fatal("clone shape mismatch")
	}
}

func TestMaxAbsDiffAndRelErr(t *testing.T) {
	a := New(1, 1, 1, 3)
	b := New(1, 1, 1, 3)
	a.Data = []float32{1, 2, 3}
	b.Data = []float32{1, 2.5, 3}
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if r := a.RelErr(b); r != 0.5/4 {
		t.Errorf("RelErr = %v", r)
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(1, 4, 4, 4)
	b := New(1, 4, 4, 4)
	a.FillRandom(42, 1)
	b.FillRandom(42, 1)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("FillRandom not deterministic for same seed")
	}
	b.FillRandom(43, 1)
	if a.MaxAbsDiff(b) == 0 {
		t.Fatal("different seeds produced identical tensors")
	}
}

func TestInvalidDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero dim")
		}
	}()
	New(0, 1, 1, 1)
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice(1, 1, 1, 2, []float32{1})
}

// Property: Index is a bijection onto [0, Len).
func TestIndexBijection(t *testing.T) {
	tt := New(2, 3, 4, 5)
	seen := make([]bool, tt.Len())
	for n := 0; n < tt.N; n++ {
		for y := 0; y < tt.H; y++ {
			for x := 0; x < tt.W; x++ {
				for c := 0; c < tt.C; c++ {
					i := tt.Index(n, y, x, c)
					if i < 0 || i >= tt.Len() || seen[i] {
						t.Fatalf("index collision or out of range at (%d,%d,%d,%d)=%d", n, y, x, c, i)
					}
					seen[i] = true
				}
			}
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 5)
	if m.At(2, 3) != 5 {
		t.Fatal("matrix Set/At")
	}
	if len(m.Row(1)) != 4 {
		t.Fatal("row length")
	}
}

func TestMatrixStride(t *testing.T) {
	m := NewMatrixStrided(2, 3, 8)
	m.Set(1, 2, 9)
	if m.Data[1*8+2] != 9 {
		t.Fatal("strided addressing broken")
	}
	// Padding region must remain zero after logical writes.
	for c := 3; c < 8; c++ {
		if m.Data[1*8+c] != 0 {
			t.Fatal("padding disturbed")
		}
	}
	n := m.Clone()
	if n.MaxAbsDiff(m) != 0 || n.Stride != 8 {
		t.Fatal("clone mismatch")
	}
}

func TestMatrixMaxAbsDiffIgnoresPadding(t *testing.T) {
	a := NewMatrixStrided(2, 2, 4)
	b := NewMatrixStrided(2, 2, 4)
	a.Data[3] = 100 // padding element, must not count
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("padding counted in diff: %v", d)
	}
}

// Property: Bytes is linear in element size.
func TestBytesProperty(t *testing.T) {
	f := func(n, h, w, c uint8) bool {
		nn, hh, ww, cc := int(n%4)+1, int(h%4)+1, int(w%4)+1, int(c%4)+1
		tt := New(nn, hh, ww, cc)
		return tt.Bytes(4) == 2*tt.Bytes(2) && tt.Bytes(2) == int64(2*tt.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
