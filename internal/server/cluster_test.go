package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"duplo/internal/workload"
)

// TestServerClusterSweep: the DES cluster serving experiment streams over
// the same NDJSON contract as the figure sweeps, and two streams at the
// same seed carry identical tables (the registry route must preserve the
// experiment's determinism end to end).
func TestServerClusterSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := quickOpts()
	l, err := workload.Find("ResNet", "C2")
	if err != nil {
		t.Fatal(err)
	}
	opts.Layers = []workload.Layer{l}
	opts.Seed = 7
	_, hs := newTestServer(t, opts, nil)

	stream := func() *TableJSON {
		resp, err := http.Get(hs.URL + "/v1/sweeps/cluster")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster sweep: status %d", resp.StatusCode)
		}
		var table *TableJSON
		var start, done int
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var ev SweepEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			switch ev.Type {
			case "start":
				start++
			case "table":
				table = ev.Table
			case "done":
				done++
			case "error":
				t.Fatalf("cluster sweep streamed an error event: %s", sc.Text())
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if start != 1 || done != 1 || table == nil {
			t.Fatalf("stream shape: start=%d done=%d table=%v", start, done, table != nil)
		}
		return table
	}

	first := stream()
	if len(first.Rows) != 18 {
		t.Fatalf("cluster table rows %d, want 18 (3 policies x 3 loads x B/D)", len(first.Rows))
	}
	for _, row := range first.Rows {
		for _, cell := range row {
			if cell == "ERR" {
				t.Fatalf("cluster table has ERR cells: %v", row)
			}
		}
	}
	if second := stream(); !reflect.DeepEqual(first, second) {
		t.Fatalf("cluster sweep not deterministic at a fixed seed:\n--- first ---\n%+v\n--- second ---\n%+v", first, second)
	}
}
