package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// Journal is duploserved's append-only JSONL job journal (DESIGN.md §12):
// one "start" line when a job is accepted, one "end" line when it
// finishes. A daemon that dies mid-job leaves a start without an end;
// reopening the journal turns every such orphan into an "interrupted"
// tombstone, so a restarted daemon answers GETs for those ids with a
// typed interrupted problem instead of a 404 that looks like the client
// imagined the job.
//
// Crash-safety model: entries are single lines, appended. A SIGKILL can
// tear at most the final line, and replay skips lines that do not parse —
// losing one "start" record, never corrupting the rest. Reopening
// compacts the file down to the live tombstones, so the journal's size is
// bounded by interrupted jobs, not by traffic.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	interrupted map[string]RunRequest
	maxSeq      int64
}

// journalEntry is one JSONL line.
type journalEntry struct {
	Op     string      `json:"op"` // start | end | interrupted
	ID     string      `json:"id"`
	Status string      `json:"status,omitempty"`  // end: done | failed
	Req    *RunRequest `json:"request,omitempty"` // start | interrupted
}

// OpenJournal replays path (which need not exist), compacts it to the
// interrupted-job tombstones, and reopens it for appending. The returned
// journal reports the ids found interrupted and the highest job sequence
// number ever issued, so the server resumes numbering without collisions.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, interrupted: make(map[string]RunRequest)}
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	started := make(map[string]RunRequest)
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if json.Unmarshal(line, &e) != nil {
			// A torn trailing line from a hard kill — or any corrupt
			// line — is skipped, not fatal: the journal is a reporting
			// aid, losing one record beats refusing to boot.
			continue
		}
		switch e.Op {
		case "start":
			if e.Req != nil {
				started[e.ID] = *e.Req
			}
		case "end":
			delete(started, e.ID)
		case "interrupted":
			if e.Req != nil {
				j.interrupted[e.ID] = *e.Req
			}
		}
		if n := jobSeq(e.ID); n > j.maxSeq {
			j.maxSeq = n
		}
	}
	// Unmatched starts are this boot's newly interrupted jobs; they join
	// tombstones from earlier restarts (a job stays reportable until the
	// journal is deleted, however many times the daemon bounces).
	for id, rq := range started {
		j.interrupted[id] = rq
	}
	if err := j.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	return j, nil
}

// compact rewrites the journal as just the interrupted tombstones
// (atomically: temp + rename), in id order for reproducible bytes.
func (j *Journal) compact() error {
	ids := make([]string, 0, len(j.interrupted))
	for id := range j.interrupted {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var buf bytes.Buffer
	for _, id := range ids {
		rq := j.interrupted[id]
		line, err := json.Marshal(journalEntry{Op: "interrupted", ID: id, Req: &rq})
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Interrupted returns the jobs found in flight at the last crash, keyed
// by id. The map is the journal's own; the server reads it only.
func (j *Journal) Interrupted() map[string]RunRequest { return j.interrupted }

// MaxSeq returns the highest job sequence number the journal has seen
// (0 for a fresh journal).
func (j *Journal) MaxSeq() int64 { return j.maxSeq }

// Start records a job acceptance.
func (j *Journal) Start(id string, rq RunRequest) {
	j.append(journalEntry{Op: "start", ID: id, Req: &rq})
}

// End records a job's terminal state ("done" or "failed").
func (j *Journal) End(id, status string) {
	j.append(journalEntry{Op: "end", ID: id, Status: status})
}

// append writes one line. Best-effort by design: a full disk must not
// fail job submission — the journal degrades to under-reporting, the
// store and memo tiers still hold the results.
func (j *Journal) append(e journalEntry) {
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Write(line) //nolint:errcheck // best-effort, see above
	}
}

// Close closes the append handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// jobSeq parses the numeric part of an "r%06d" job id (0 when the id has
// another shape).
func jobSeq(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "r%d", &n); err != nil {
		return 0
	}
	return n
}
