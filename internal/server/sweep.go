package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"duplo/internal/experiments"
	"duplo/internal/report"
)

// sweepWriteWindow is the per-event write deadline a streaming sweep
// slides forward: the stream may run arbitrarily long, but a client that
// absorbs nothing for this long is cut off.
const sweepWriteWindow = time.Minute

// SweepEvent is one NDJSON line of a GET /v1/sweeps/{id} response. The
// stream is: one "start", interleaved "progress" lines as cells finish,
// one "table" with the assembled figure, an optional "error" (partial
// tables still carry their ERR cells), and a final "done" with the
// sweep's execution counters.
type SweepEvent struct {
	Type  string `json:"type"` // start | progress | table | error | done
	Sweep string `json:"sweep,omitempty"`
	// Message is the progress line ("fig9 ResNet/C2 1024-entry done").
	Message string     `json:"message,omitempty"`
	Table   *TableJSON `json:"table,omitempty"`
	Problem *Problem   `json:"problem,omitempty"`
	// Done-event counters: how many simulations this sweep actually
	// executed vs served warm from the disk store vs synthesized by the
	// calibrated predictor ("~"-marked cells).
	Execs     int64 `json:"execs,omitempty"`
	StoreHits int64 `json:"store_hits,omitempty"`
	Predicted int64 `json:"predicted,omitempty"`
}

// TableJSON is a report.Table in structured form.
type TableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	// Note carries the table's trailing annotation line (e.g. the
	// predicted-cells footer); empty for most tables.
	Note string `json:"note,omitempty"`
}

func tableJSON(t *report.Table) *TableJSON {
	return &TableJSON{Title: t.Title, Headers: t.Headers(), Rows: t.Rows(), Note: t.Note}
}

// handleSweepList returns the sweep registry ids.
func (s *Server) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sweeps []string `json:"sweeps"`
	}{experiments.NewRunner(experiments.Options{Workers: 1}).SweepIDs()})
}

// handleSweep runs one whole figure/ablation and streams progress as
// NDJSON. Each sweep gets its own runner — its progress sink belongs to
// this response — sharing the daemon's disk store, so cells another
// client (or a previous sweep) already simulated are served warm and the
// stream shows store_hits instead of re-simulation.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")

	// Sweep admission (Config.MaxSweeps): a sweep holds a worker-pool's
	// worth of CPU for minutes, so beyond the cap we shed deterministically
	// instead of thrashing every stream at once.
	if s.sweepSem != nil {
		select {
		case s.sweepSem <- struct{}{}:
			defer func() { <-s.sweepSem }()
		default:
			s.sweepsShed.Add(1)
			w.Header().Set("Retry-After", "5")
			writeProblem(w, http.StatusServiceUnavailable, "too many sweeps",
				fmt.Sprintf("all %d sweep slots busy; retry later", cap(s.sweepSem)))
			return
		}
	}

	// The sweep dies with the client connection or the daemon, whichever
	// ends first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.ctx, cancel)
	defer stop()

	var emitMu sync.Mutex
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	headerWritten := false
	emit := func(ev SweepEvent) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if !headerWritten {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headerWritten = true
		}
		// A sweep legitimately outlives any fixed http.Server.WriteTimeout;
		// what a hardened daemon bounds is *silence*. Sliding the deadline
		// at every event keeps a live stream exempt while a stalled client
		// still times out one window after the last successful write.
		rc.SetWriteDeadline(time.Now().Add(sweepWriteWindow)) //nolint:errcheck // best-effort: not every ResponseWriter supports deadlines
		json.NewEncoder(w).Encode(ev)                         //nolint:errcheck // stream best-effort
		if flusher != nil {
			flusher.Flush()
		}
	}

	opts := s.opts
	opts.Store = s.store
	opts.Context = ctx
	opts.Verbose = true
	opts.Progress = func(line string) { emit(SweepEvent{Type: "progress", Message: line}) }
	rr := experiments.NewRunner(opts)

	sweep, ok := rr.Sweep(id)
	if !ok {
		writeProblem(w, http.StatusNotFound, "unknown sweep",
			"known sweeps: "+strings.Join(rr.SweepIDs(), ", "))
		return
	}

	s.sweepsActive.Add(1)
	defer func() {
		s.sweepsActive.Add(-1)
		s.sweepExecs.Add(rr.Execs())
		s.sweepPredicted.Add(rr.Predicted())
	}()

	emit(SweepEvent{Type: "start", Sweep: id})
	tbl, err := sweep.Run()
	if tbl != nil {
		emit(SweepEvent{Type: "table", Sweep: id, Table: tableJSON(tbl)})
	}
	if err != nil {
		emit(SweepEvent{Type: "error", Sweep: id, Problem: simProblem(err)})
	}
	emit(SweepEvent{Type: "done", Sweep: id, Execs: rr.Execs(), StoreHits: rr.StoreHits(), Predicted: rr.Predicted()})
}
