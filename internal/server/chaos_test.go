package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"duplo/internal/fault"
	"duplo/internal/sim"
	"duplo/internal/store"
)

// chaosServer boots a Server with the full robustness config under
// httptest.
func chaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postRaw posts v and returns the raw response (the caller closes it) —
// for tests that need status AND headers.
func postRaw(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// chaosSubmit and chaosPoll are goroutine-safe variants of the
// postJSON/pollJob helpers (no t.Fatal off the test goroutine).
func chaosSubmit(base string, rq RunRequest) (JobStatus, error) {
	var js JobStatus
	body, err := json.Marshal(rq)
	if err != nil {
		return js, err
	}
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return js, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return js, fmt.Errorf("decode submit response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return js, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	return js, nil
}

func chaosPoll(base, id string, deadline time.Duration) (JobStatus, error) {
	var js JobStatus
	until := time.Now().Add(deadline)
	for {
		resp, err := http.Get(base + "/v1/runs/" + id)
		if err != nil {
			return js, err
		}
		err = json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if err != nil {
			return js, fmt.Errorf("decode poll response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return js, fmt.Errorf("poll %s: status %d", id, resp.StatusCode)
		}
		if js.Status != jobRunning && js.Status != jobQueued {
			return js, nil
		}
		if time.Now().After(until) {
			return js, fmt.Errorf("job %s still %s after %v", id, js.Status, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosConcurrentClientsUnderFaults is the acceptance gate for the
// whole robustness layer: three concurrent clients hammer a daemon whose
// store reads, store writes, payload integrity, and simulator all fail at
// 10% each. Every job must terminate as done or as a typed problem; every
// done result must be byte-for-byte the fault-free ground truth (a
// corrupted payload may cost warmth, never correctness); and once the
// faults stop, the circuit breaker must close and /healthz must return
// to ok.
func TestChaosConcurrentClientsUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.Parse("store-read:p=0.1;store-write:p=0.1;corrupt:p=0.1;sim:p=0.1", 20260808)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaults(in)
	st.EnableResilience(store.ResilienceConfig{
		FailureThreshold: 3,
		OpenFor:          50 * time.Millisecond,
		Retries:          1,
		RetryBase:        time.Millisecond,
		Sleep:            func(time.Duration) {}, // no real sleeping in tests
	})
	opts := quickOpts()
	opts.Faults = in
	_, hs := chaosServer(t, Config{Options: opts, Store: st, MaxInflight: 4, QueueCap: 64})

	cells := []RunRequest{
		{Network: "ResNet", Layer: "C2"},
		{Network: "ResNet", Layer: "C2", Duplo: true},
		{Network: "GAN", Layer: "TC4", Duplo: true},
	}
	// Ground truth: the same cells simulated directly, fault-free.
	want := make([]sim.Stats, len(cells))
	for i, rq := range cells {
		k, cfg, err := rq.build(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Stats
	}

	const clients, perClient = 3, 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	var problems []string
	report := func(format string, args ...interface{}) {
		mu.Lock()
		problems = append(problems, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				cell := (c + i) % len(cells)
				js, err := chaosSubmit(hs.URL, cells[cell])
				if err != nil {
					report("client %d submit %d: %v", c, i, err)
					continue
				}
				js, err = chaosPoll(hs.URL, js.ID, 60*time.Second)
				if err != nil {
					report("client %d job %s: %v", c, js.ID, err)
					continue
				}
				switch js.Status {
				case jobDone:
					if js.Result == nil {
						report("job %s done with no result", js.ID)
					} else if !reflect.DeepEqual(js.Result.Stats, want[cell]) {
						report("job %s served a wrong result under faults:\n got %+v\nwant %+v",
							js.ID, js.Result.Stats, want[cell])
					}
				case jobFailed:
					if js.Error == nil || js.Error.Phase != sim.PhasePanic {
						report("job %s failed without the typed injected-fault problem: %+v", js.ID, js.Error)
					}
				default:
					report("job %s non-terminal status %q", js.ID, js.Status)
				}
			}
		}(c)
	}
	wg.Wait()
	for _, p := range problems {
		t.Error(p)
	}

	// Faults stop; fresh traffic drives the breaker's half-open probe, and
	// /healthz converges back to ok (the degraded deltas drain, the breaker
	// closes). Distinct batch sizes force store traffic past the memo tier.
	in.Disable()
	deadline := time.Now().Add(15 * time.Second)
	for batch := 2; ; batch++ {
		if time.Now().After(deadline) {
			var h HealthZ
			getJSON(t, hs.URL+"/healthz", &h)
			t.Fatalf("healthz never recovered to ok after faults stopped: %+v", h)
		}
		js, err := chaosSubmit(hs.URL, RunRequest{Network: "ResNet", Layer: "C2", Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if js, err = chaosPoll(hs.URL, js.ID, 60*time.Second); err != nil || js.Status != jobDone {
			t.Fatalf("post-recovery job: %v (status %+v)", err, js)
		}
		var h HealthZ
		if code := getJSON(t, hs.URL+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz: status %d", code)
		}
		if h.Status == "ok" {
			if h.Breaker != nil && h.Breaker.State != store.BreakerClosed {
				t.Fatalf("healthz ok but breaker %+v", h.Breaker)
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerAdmissionShedding pins the deterministic load-shedding
// contract: with one execution slot and a one-deep queue, the first job
// runs, the second queues, the third is shed 429 with Retry-After, and
// cancelled queued jobs finish with the typed cancellation problem
// without ever simulating.
func TestServerAdmissionShedding(t *testing.T) {
	in, err := fault.Parse("sim-delay:every=1,delay=30s", 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.Faults = in
	s, hs := chaosServer(t, Config{Options: opts, MaxInflight: 1, QueueCap: 1})

	var j1, j2 JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &j1); code != http.StatusAccepted {
		t.Fatalf("submit 1: status %d", code)
	}
	if j1.Status != jobRunning {
		t.Errorf("job 1 status %q, want running (slot claimed at submit)", j1.Status)
	}
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2", Duplo: true}, &j2); code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d", code)
	}
	if j2.Status != jobQueued {
		t.Errorf("job 2 status %q, want queued", j2.Status)
	}

	resp := postRaw(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C3"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("shed response Retry-After = %q, want \"1\"", ra)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decode shed problem: %v", err)
	}
	if p.Status != http.StatusTooManyRequests || p.Title != "server at capacity" {
		t.Errorf("shed problem = %+v", p)
	}

	var stz StatsZ
	getJSON(t, hs.URL+"/statsz", &stz)
	if stz.JobsRunning != 1 || stz.JobsQueued != 1 || stz.JobsShed != 1 {
		t.Errorf("statsz running=%d queued=%d shed=%d, want 1/1/1",
			stz.JobsRunning, stz.JobsQueued, stz.JobsShed)
	}

	// Cancel the queued job first: it must finish with the typed
	// cancelled-while-queued problem, having never won the slot (job 1 is
	// mid-execution, so the exec count must not move).
	execsBefore := s.runner.Execs()
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/runs/"+j2.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	js := pollJob(t, hs.URL, j2.ID, 5*time.Second)
	if js.Status != jobFailed || js.Error == nil || js.Error.Phase != sim.PhaseCancelled {
		t.Errorf("cancelled queued job = %q %+v, want failed/cancelled", js.Status, js.Error)
	}
	if got := s.runner.Execs(); got != execsBefore {
		t.Errorf("cancelled queued job executed a simulation (execs %d -> %d)", execsBefore, got)
	}

	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/v1/runs/"+j1.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	js = pollJob(t, hs.URL, j1.ID, 5*time.Second)
	if js.Status != jobFailed || js.Error == nil || js.Error.Phase != sim.PhaseCancelled {
		t.Errorf("cancelled running job = %q %+v, want failed/cancelled", js.Status, js.Error)
	}
}

// TestServerSweepShedding: beyond MaxSweeps concurrent streams, sweep
// requests shed deterministically with 503 + Retry-After.
func TestServerSweepShedding(t *testing.T) {
	s, hs := chaosServer(t, Config{Options: quickOpts(), MaxSweeps: 1})
	s.sweepSem <- struct{}{} // occupy the only slot
	defer func() { <-s.sweepSem }()

	resp, err := http.Get(hs.URL + "/v1/sweeps/fig9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep over cap: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("shed sweep Retry-After = %q, want \"5\"", ra)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decode shed problem: %v", err)
	}
	if p.Title != "too many sweeps" {
		t.Errorf("shed problem = %+v", p)
	}
	var stz StatsZ
	getJSON(t, hs.URL+"/statsz", &stz)
	if stz.SweepsShed != 1 {
		t.Errorf("SweepsShed = %d, want 1", stz.SweepsShed)
	}
}

// TestServerBodyLimit: an oversized POST body gets the typed 413 problem,
// not a connection reset or a generic 400.
func TestServerBodyLimit(t *testing.T) {
	_, hs := chaosServer(t, Config{Options: quickOpts(), MaxBodyBytes: 16})
	resp := postRaw(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decode 413 problem: %v", err)
	}
	if p.Title != "request body too large" {
		t.Errorf("413 problem = %+v", p)
	}
}

// mutexClock is a goroutine-safe virtual clock for the Now seam (handlers
// and job goroutines read it concurrently with the test's advances).
type mutexClock struct {
	mu sync.Mutex
	at time.Time
}

func (c *mutexClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *mutexClock) advance(d time.Duration) {
	c.mu.Lock()
	c.at = c.at.Add(d)
	c.mu.Unlock()
}

// TestServerJobTTLEviction: finished jobs age out of the id map after
// JobTTL; GETs of evicted ids say 410 gone (the daemon issued the id),
// never-issued ids stay 404, and the eviction is counted.
func TestServerJobTTLEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ck := &mutexClock{at: time.Unix(1_700_000_000, 0)}
	_, hs := chaosServer(t, Config{Options: quickOpts(), JobTTL: time.Hour, Now: ck.now})

	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := js.ID
	if js = pollJob(t, hs.URL, id, 30*time.Second); js.Status != jobDone {
		t.Fatalf("job finished %q, want done", js.Status)
	}
	// Within the TTL the job is still served.
	if code := getJSON(t, hs.URL+"/v1/runs/"+id, &js); code != http.StatusOK {
		t.Fatalf("pre-eviction GET: status %d", code)
	}

	ck.advance(2 * time.Hour)
	resp, err := http.Get(hs.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted GET: status %d, want 410", resp.StatusCode)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decode 410 problem: %v", err)
	}
	if p.Title != "job evicted" {
		t.Errorf("410 problem = %+v", p)
	}

	// Ids the daemon never issued are a plain 404, evicted or not.
	if code := getJSON(t, hs.URL+"/v1/runs/r999999", &p); code != http.StatusNotFound {
		t.Errorf("never-issued id: status %d, want 404", code)
	}
	if code := getJSON(t, hs.URL+"/v1/runs/bogus", &p); code != http.StatusNotFound {
		t.Errorf("malformed id: status %d, want 404", code)
	}

	var stz StatsZ
	getJSON(t, hs.URL+"/statsz", &stz)
	if stz.JobsEvicted != 1 || stz.JobsTotal != 0 {
		t.Errorf("statsz evicted=%d total=%d, want 1/0", stz.JobsEvicted, stz.JobsTotal)
	}
}

// TestServerHealthzDegradedRecovers: a store put failure flips /healthz
// to degraded (503 under ?strict=1, 200 plain), and the next check —
// with no new failures — reports ok again: health reflects *new* damage,
// not history.
func TestServerHealthzDegradedRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.Parse("store-write:nth=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaults(in)
	_, hs := chaosServer(t, Config{Options: quickOpts(), Store: st})

	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if js = pollJob(t, hs.URL, js.ID, 30*time.Second); js.Status != jobDone {
		t.Fatalf("job finished %q (error %+v), want done despite the failed persist", js.Status, js.Error)
	}

	var h HealthZ
	if code := getJSON(t, hs.URL+"/healthz?strict=1", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("strict healthz after put failure: status %d, want 503", code)
	}
	if h.Status != "degraded" || len(h.Reasons) == 0 {
		t.Errorf("healthz = %+v, want degraded with reasons", h)
	}

	// The delta is consumed; no new failures since, so health recovers.
	if code := getJSON(t, hs.URL+"/healthz?strict=1", &h); code != http.StatusOK {
		t.Fatalf("strict healthz after recovery: status %d, want 200", code)
	}
	if h.Status != "ok" {
		t.Errorf("healthz = %+v, want ok", h)
	}
}

// writeJournalLines writes a hand-crafted journal file simulating a
// daemon that died mid-job (including a torn trailing line from the
// kill).
func writeJournalLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServerCrashRecovery is the restart gate: a journal left by a killed
// daemon turns in-flight jobs into typed "interrupted" reports (not
// 404s), job numbering resumes past every id ever issued, and a restart
// over the same store serves previously computed cells warm with zero
// re-executions.
func TestServerCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	writeJournalLines(t, jpath,
		`{"op":"start","id":"r000001","request":{"network":"ResNet","layer":"C2"}}`,
		`{"op":"end","id":"r000001","status":"done"}`,
		`{"op":"start","id":"r000002","request":{"network":"GAN","layer":"TC4","duplo":true}}`,
		`{"op":"start","id":"r0000`, // torn by the kill
	)
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Interrupted(); len(got) != 1 || got["r000002"].Network != "GAN" {
		t.Fatalf("Interrupted() = %+v, want exactly r000002 (GAN/TC4)", got)
	}
	if j.MaxSeq() != 2 {
		t.Fatalf("MaxSeq() = %d, want 2", j.MaxSeq())
	}

	st, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	s1, hs1 := chaosServer(t, Config{Options: quickOpts(), Store: st, Journal: j})

	// The interrupted job is reported, not lost.
	var js JobStatus
	if code := getJSON(t, hs1.URL+"/v1/runs/r000002", &js); code != http.StatusOK {
		t.Fatalf("interrupted GET: status %d", code)
	}
	if js.Status != jobInterrupted || js.Error == nil || js.Error.Phase != jobInterrupted {
		t.Errorf("interrupted job = %q %+v", js.Status, js.Error)
	}
	if js.Request.Network != "GAN" || js.Request.Layer != "TC4" || !js.Request.Duplo {
		t.Errorf("interrupted job lost its request: %+v", js.Request)
	}
	// The pre-crash *completed* id is gone (it was issued, then the map
	// died with the process), never 404.
	var p Problem
	if code := getJSON(t, hs1.URL+"/v1/runs/r000001", &p); code != http.StatusGone {
		t.Errorf("pre-crash completed id: status %d, want 410", code)
	}
	var h HealthZ
	getJSON(t, hs1.URL+"/healthz", &h)
	if h.InterruptedJobs != 1 {
		t.Errorf("healthz InterruptedJobs = %d, want 1", h.InterruptedJobs)
	}

	// Numbering resumes past the journal's watermark.
	if code := postJSON(t, hs1.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if js.ID != "r000003" {
		t.Fatalf("post-restart job id = %q, want r000003 (resumed numbering)", js.ID)
	}
	if js = pollJob(t, hs1.URL, js.ID, 30*time.Second); js.Status != jobDone {
		t.Fatalf("job finished %q, want done", js.Status)
	}
	if execs := s1.runner.Execs(); execs != 1 {
		t.Fatalf("first boot executed %d simulations, want 1", execs)
	}

	// "Restart" again: close everything, reopen the journal over the same
	// store. The finished job's end record keeps it out of the interrupted
	// set, the watermark advances, and the warm store serves the repeat
	// with zero re-executions.
	hs1.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Interrupted(); len(got) != 1 || got["r000002"].Network != "GAN" {
		t.Fatalf("second boot Interrupted() = %+v, want still exactly r000002", got)
	}
	if j2.MaxSeq() != 3 {
		t.Fatalf("second boot MaxSeq() = %d, want 3", j2.MaxSeq())
	}
	s2, hs2 := chaosServer(t, Config{Options: quickOpts(), Store: st, Journal: j2})
	if code := postJSON(t, hs2.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &js); code != http.StatusAccepted {
		t.Fatalf("warm submit: status %d", code)
	}
	if js.ID != "r000004" {
		t.Fatalf("second boot job id = %q, want r000004", js.ID)
	}
	if js = pollJob(t, hs2.URL, js.ID, 30*time.Second); js.Status != jobDone {
		t.Fatalf("warm job finished %q, want done", js.Status)
	}
	if execs := s2.runner.Execs(); execs != 0 {
		t.Errorf("restarted daemon re-executed %d simulations, want 0 (warm store)", execs)
	}
	if hits := s2.runner.StoreHits(); hits != 1 {
		t.Errorf("restarted daemon took %d store hits, want 1", hits)
	}
}
