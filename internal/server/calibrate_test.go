package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"

	"duplo/internal/experiments"
	"duplo/internal/store"
	"duplo/internal/workload"
)

// predictOpts is quickOpts restricted to one layer so the calibration
// grid (layers x LHB points x duplo off/on) fits in a test budget.
func predictOpts(t *testing.T) experiments.Options {
	t.Helper()
	l, err := workload.Find("ResNet", "C2")
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	opts.Layers = []workload.Layer{l}
	return opts
}

// TestServerCalibrateAndStatsz pins the daemon's predictor surface:
// /statsz reports the configured mode before any calibration, POST
// /v1/calibrate fits and returns the per-family report, and /statsz then
// shows the installed calibration. A hybrid sweep afterwards serves
// predicted cells (counted in its done event and in SweepPredicted),
// loading the artifact the calibrate call persisted instead of refitting.
func TestServerCalibrateAndStatsz(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := predictOpts(t)
	opts.Predictor = experiments.PredictHybrid
	// Accept any uncertainty: whether tiny-scale fits clear 15% is the
	// experiments gate test's business, not this routing test's.
	opts.PredictBound = 1e9
	_, hs := newTestServer(t, opts, st)

	var sz StatsZ
	if code := getJSON(t, hs.URL+"/statsz", &sz); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if sz.Predictor == nil || sz.Predictor.Mode != string(experiments.PredictHybrid) {
		t.Fatalf("statsz predictor before calibrate: %+v", sz.Predictor)
	}
	if sz.Predictor.Calibrated {
		t.Fatal("statsz reports calibrated before any calibrate call")
	}

	var cr CalibrateResponse
	if code := postJSON(t, hs.URL+"/v1/calibrate", nil, &cr); code != http.StatusOK {
		t.Fatalf("calibrate: status %d", code)
	}
	if cr.Key == "" || len(cr.Families) == 0 {
		t.Fatalf("calibrate response %+v, want a key and family reports", cr)
	}
	for _, f := range cr.Families {
		if f.Family == "" || f.N == 0 {
			t.Fatalf("calibrate family report %+v, want a named family with samples", f)
		}
	}

	if code := getJSON(t, hs.URL+"/statsz", &sz); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	p := sz.Predictor
	if p == nil || !p.Calibrated || len(p.Families) != len(cr.Families) {
		t.Fatalf("statsz predictor after calibrate: %+v", p)
	}
	if p.Gate["mape"] == 0 || p.Gate["pearson"] == 0 {
		t.Fatalf("statsz predictor gate thresholds missing: %+v", p.Gate)
	}

	resp, err := http.Get(hs.URL + "/v1/sweeps/fig10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var done *SweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type == "done" {
			done = &ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done == nil || done.Predicted == 0 {
		t.Fatalf("hybrid sweep done event %+v, want predicted cells", done)
	}
	// The calibrate call already simulated (and stored) the calibration
	// grid; the sweep's non-predicted cells must come back warm, not
	// re-simulated.
	if done.Execs != 0 {
		t.Fatalf("hybrid sweep after calibrate executed %d simulations, want 0 (warm store + predictor)", done.Execs)
	}

	if code := getJSON(t, hs.URL+"/statsz", &sz); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if sz.SweepPredicted != done.Predicted {
		t.Fatalf("statsz sweep_predicted %d, want %d", sz.SweepPredicted, done.Predicted)
	}
}

// TestServerPredictorOffByDefault pins the conservative default: a daemon
// without -predict reports mode off and no calibration.
func TestServerPredictorOffByDefault(t *testing.T) {
	_, hs := newTestServer(t, quickOpts(), nil)
	var sz StatsZ
	if code := getJSON(t, hs.URL+"/statsz", &sz); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if sz.Predictor == nil || sz.Predictor.Mode != string(experiments.PredictorOff) {
		t.Fatalf("statsz predictor: %+v, want mode off", sz.Predictor)
	}
	if sz.Predictor.Calibrated || sz.SweepPredicted != 0 {
		t.Fatalf("fresh off-mode daemon reports predictor activity: %+v", sz)
	}
}
