package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"duplo/internal/experiments"
	"duplo/internal/sim"
	"duplo/internal/store"
	"duplo/internal/workload"
)

// quickOpts is the test scale: small enough that one cell simulates in
// tens of milliseconds.
func quickOpts() experiments.Options {
	return experiments.Options{MaxCTAs: 8, SimSMs: 2, Workers: 4}
}

// newTestServer boots a Server over httptest. The store is optional.
func newTestServer(t *testing.T, opts experiments.Options, st *store.Store) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Options: opts, Store: st})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postJSON posts v and decodes the response into out, returning the status.
func postJSON(t *testing.T, url string, v interface{}, out interface{}) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url into out, returning the status.
func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls GET /v1/runs/{id} until the job leaves "running" or the
// deadline passes.
func pollJob(t *testing.T, base, id string, deadline time.Duration) JobStatus {
	t.Helper()
	var js JobStatus
	until := time.Now().Add(deadline)
	for {
		if code := getJSON(t, base+"/v1/runs/"+id, &js); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if js.Status != jobRunning && js.Status != jobQueued {
			return js
		}
		if time.Now().After(until) {
			t.Fatalf("job %s still running after %v", id, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerSubmitPollResult is the end-to-end happy path: submit → poll →
// the job's result is field-for-field the same Stats a direct sim.Run of
// the identical kernel/config produces.
func TestServerSubmitPollResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := quickOpts()
	_, hs := newTestServer(t, opts, nil)

	rq := RunRequest{Network: "ResNet", Layer: "C2", Duplo: true}
	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", rq, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if js.ID == "" {
		t.Fatal("submit returned no job id")
	}
	js = pollJob(t, hs.URL, js.ID, 30*time.Second)
	if js.Status != jobDone || js.Result == nil {
		t.Fatalf("job finished %q (error %+v), want done", js.Status, js.Error)
	}

	k, cfg, err := rq.build(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(js.Result.Stats, want.Stats) {
		t.Fatalf("served stats differ from direct sim.Run:\n got %+v\nwant %+v", js.Result.Stats, want.Stats)
	}
	if js.Result.SimulatedCTAs != want.SimulatedCTAs || js.Result.TotalCTAs != want.TotalCTAs {
		t.Fatalf("CTA accounting differs: got %d/%d want %d/%d",
			js.Result.SimulatedCTAs, js.Result.TotalCTAs, want.SimulatedCTAs, want.TotalCTAs)
	}
}

// TestServerConcurrentDedup pins the millions-of-users property at n=2:
// two clients submitting the same cell concurrently produce exactly one
// simulation — asserted via the runner's exec counter and the store's
// write counter (one record, not two).
func TestServerConcurrentDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, quickOpts(), st)

	rq := RunRequest{Network: "ResNet", Layer: "C2", Duplo: true, LHBEntries: 512}
	const clients = 2
	ids := make([]string, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			var js JobStatus
			if code := postJSON(t, hs.URL+"/v1/runs", rq, &js); code != http.StatusAccepted {
				t.Errorf("client %d: submit status %d", i, code)
				return
			}
			ids[i] = js.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var results []JobStatus
	for _, id := range ids {
		js := pollJob(t, hs.URL, id, 30*time.Second)
		if js.Status != jobDone {
			t.Fatalf("job %s finished %q (error %+v)", id, js.Status, js.Error)
		}
		results = append(results, js)
	}
	if !reflect.DeepEqual(results[0].Result, results[1].Result) {
		t.Fatal("coalesced clients got different results")
	}
	if n := s.runner.Execs(); n != 1 {
		t.Fatalf("runner executed %d simulations for %d identical clients, want 1", n, clients)
	}
	if c := st.Counters(); c.Puts != 1 {
		t.Fatalf("store recorded %d puts, want 1 (stats %+v)", c.Puts, c)
	}
}

// TestServerWarmRestart pins cross-process warmth: a second daemon over
// the same store directory serves the first one's cell without
// simulating at all.
func TestServerWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	rq := RunRequest{Network: "GAN", Layer: "TC4", Duplo: true}

	run := func() (js JobStatus, execs int64, hits int64) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, hs := newTestServer(t, quickOpts(), st)
		if code := postJSON(t, hs.URL+"/v1/runs", rq, &js); code != http.StatusAccepted {
			t.Fatalf("submit: status %d", code)
		}
		js = pollJob(t, hs.URL, js.ID, 30*time.Second)
		return js, s.runner.Execs(), s.runner.StoreHits()
	}

	cold, coldExecs, _ := run()
	warm, warmExecs, warmHits := run()
	if cold.Status != jobDone || warm.Status != jobDone {
		t.Fatalf("statuses %q/%q, want done/done", cold.Status, warm.Status)
	}
	if coldExecs != 1 {
		t.Fatalf("cold daemon executed %d simulations, want 1", coldExecs)
	}
	if warmExecs != 0 || warmHits != 1 {
		t.Fatalf("warm daemon executed %d simulations (%d store hits), want 0 (1)", warmExecs, warmHits)
	}
	if !reflect.DeepEqual(cold.Result, warm.Result) {
		t.Fatalf("warm result differs from cold:\n got %+v\nwant %+v", warm.Result, cold.Result)
	}
}

// TestServerCancelMidJob pins the typed-error path: cancelling an
// in-flight job finishes it as failed with the structured "cancelled"
// problem, not a hang or a prose-only error.
func TestServerCancelMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Full grid on the largest layer: minutes of work, so the DELETE
	// always lands mid-run.
	opts := quickOpts()
	opts.MaxCTAs = 0
	_, hs := newTestServer(t, opts, nil)

	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C1"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	id := js.ID

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/runs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	js = pollJob(t, hs.URL, id, 30*time.Second)
	if js.Status != jobFailed || js.Error == nil {
		t.Fatalf("cancelled job finished %q (error %+v), want failed with a problem", js.Status, js.Error)
	}
	if js.Error.Phase != sim.PhaseCancelled {
		t.Fatalf("problem phase %q, want %q (problem %+v)", js.Error.Phase, sim.PhaseCancelled, js.Error)
	}
}

// TestServerSweepNDJSON pins the streaming contract: start, at least one
// progress line, the assembled table, and a final done event whose
// counters account for every cell.
func TestServerSweepNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := quickOpts()
	l, err := workload.Find("ResNet", "C2")
	if err != nil {
		t.Fatal(err)
	}
	opts.Layers = []workload.Layer{l}
	_, hs := newTestServer(t, opts, nil)

	resp, err := http.Get(hs.URL + "/v1/sweeps/fig10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep content type %q", ct)
	}
	var events []SweepEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	count := map[string]int{}
	var table *TableJSON
	var done *SweepEvent
	for i := range events {
		count[events[i].Type]++
		switch events[i].Type {
		case "table":
			table = events[i].Table
		case "done":
			done = &events[i]
		}
	}
	if count["start"] != 1 || count["done"] != 1 || count["error"] != 0 {
		t.Fatalf("event counts %v, want one start, one done, no error", count)
	}
	if count["progress"] == 0 {
		t.Fatal("no progress events streamed")
	}
	if table == nil || table.Title == "" || len(table.Rows) == 0 {
		t.Fatalf("table event missing or empty: %+v", table)
	}
	// Fig10 at one layer: 5 LHB points simulate, so the done event must
	// report exactly those executions (nothing warm, nothing double).
	if done.Execs != 5 || done.StoreHits != 0 {
		t.Fatalf("done counters execs=%d storeHits=%d, want 5/0", done.Execs, done.StoreHits)
	}
}

// TestServerProblemResponses pins the typed HTTP error paths.
func TestServerProblemResponses(t *testing.T) {
	_, hs := newTestServer(t, quickOpts(), nil)

	check := func(name string, gotCode, wantCode int, p Problem) {
		t.Helper()
		if gotCode != wantCode {
			t.Fatalf("%s: status %d, want %d", name, gotCode, wantCode)
		}
		if p.Status != wantCode || p.Title == "" {
			t.Fatalf("%s: problem %+v, want status %d and a title", name, p, wantCode)
		}
	}

	var p Problem
	code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "NoSuchNet", Layer: "C1"}, &p)
	check("unknown layer", code, http.StatusBadRequest, p)

	p = Problem{}
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", strings.NewReader(`{"netwrk":"typo"}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	check("unknown field", resp.StatusCode, http.StatusBadRequest, p)

	p = Problem{}
	code = getJSON(t, hs.URL+"/v1/runs/r999999", &p)
	check("unknown job", code, http.StatusNotFound, p)

	p = Problem{}
	code = getJSON(t, hs.URL+"/v1/sweeps/fig99", &p)
	check("unknown sweep", code, http.StatusNotFound, p)
	if !strings.Contains(p.Detail, "fig9") {
		t.Fatalf("unknown-sweep problem should list known ids, got %q", p.Detail)
	}
}

// TestServerHealthAndStats pins the ops endpoints: healthz answers, and
// statsz counters move with the traffic.
func TestServerHealthAndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, quickOpts(), st)

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "ResNet", Layer: "C2"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if got := pollJob(t, hs.URL, js.ID, 30*time.Second); got.Status != jobDone {
		t.Fatalf("job finished %q", got.Status)
	}

	var sz StatsZ
	if code := getJSON(t, hs.URL+"/statsz", &sz); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if sz.JobsTotal != 1 || sz.JobsDone != 1 || sz.Execs != 1 {
		t.Fatalf("statsz after one job: %+v", sz)
	}
	if sz.Store == nil || sz.Store.Puts != 1 {
		t.Fatalf("statsz store counters: %+v", sz.Store)
	}

	// The sweep listing names the registry.
	var sweeps struct {
		Sweeps []string `json:"sweeps"`
	}
	if code := getJSON(t, hs.URL+"/v1/sweeps", &sweeps); code != http.StatusOK {
		t.Fatalf("sweep list: status %d", code)
	}
	if len(sweeps.Sweeps) == 0 || sweeps.Sweeps[0] != "table1" {
		t.Fatalf("sweep list %v", sweeps.Sweeps)
	}
}

// TestServerGracefulContext pins daemon-lifetime cancellation: cancelling
// the base context fails in-flight jobs with the typed cancelled error
// (what SIGTERM does through cmd/duploserved).
func TestServerGracefulContext(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := quickOpts()
	opts.MaxCTAs = 0 // long-running
	opts.Context = ctx
	_, hs := newTestServer(t, opts, nil)

	var js JobStatus
	if code := postJSON(t, hs.URL+"/v1/runs", RunRequest{Network: "YOLO", Layer: "C1"}, &js); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	cancel()
	js = pollJob(t, hs.URL, js.ID, 30*time.Second)
	if js.Status != jobFailed || js.Error == nil || js.Error.Phase != sim.PhaseCancelled {
		t.Fatalf("after daemon cancel: %+v", js)
	}
}
