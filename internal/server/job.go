package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	duplo "duplo/internal/core"
	"duplo/internal/experiments"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// RunRequest is the POST /v1/runs body: one cell of the evaluation —
// a Table I layer under the daemon's base scale, baseline or Duplo, with
// optional per-job budget overrides.
type RunRequest struct {
	Network string `json:"network"`
	Layer   string `json:"layer"`
	// Batch overrides the layer's Table I batch size (0 = keep it).
	Batch int `json:"batch,omitempty"`

	// Duplo enables the detection unit; the LHB fields refine it
	// (defaults: the paper's 1024-entry direct-mapped design point).
	Duplo      bool `json:"duplo"`
	LHBEntries int  `json:"lhb_entries,omitempty"`
	LHBWays    int  `json:"lhb_ways,omitempty"`
	LHBOracle  bool `json:"lhb_oracle,omitempty"`

	// Per-job budgets (0 = the daemon's defaults): the simulated-cycle
	// bound and the wall-clock bound, both surfaced as typed problem
	// errors when exceeded (sim.SimError phases cycle-limit/deadline).
	MaxCycles     int64 `json:"max_cycles,omitempty"`
	WallTimeoutMS int64 `json:"wall_timeout_ms,omitempty"`
}

// build resolves the request against the daemon's base options into the
// kernel and config to simulate — the same construction duplosim and the
// figure sweeps use, so a job's result is identical to the CLI's.
func (rq RunRequest) build(opts experiments.Options) (*sim.Kernel, sim.Config, error) {
	if rq.Batch < 0 {
		return nil, sim.Config{}, fmt.Errorf("batch %d must be >= 0", rq.Batch)
	}
	if rq.MaxCycles < 0 || rq.WallTimeoutMS < 0 {
		return nil, sim.Config{}, errors.New("budgets must be >= 0")
	}
	l, err := workload.Find(rq.Network, rq.Layer)
	if err != nil {
		return nil, sim.Config{}, err
	}
	if rq.Batch > 0 {
		l.Params = l.Params.WithBatch(rq.Batch)
	}
	k, err := experiments.LayerKernel(l)
	if err != nil {
		return nil, sim.Config{}, err
	}
	if rq.Batch > 0 {
		// Batch-overridden kernels get a distinct name, like Fig. 13's
		// sweep, so they occupy their own cache/store slots.
		k.Name = fmt.Sprintf("%s@b%d", l.FullName(), rq.Batch)
	}
	cfg := opts.Config()
	if rq.Duplo {
		cfg.Duplo = true
		lhb := experiments.DefaultLHB
		if rq.LHBEntries > 0 {
			lhb.Entries = rq.LHBEntries
		}
		if rq.LHBWays > 0 {
			lhb.Ways = rq.LHBWays
		}
		if rq.LHBOracle {
			lhb = duplo.LHBConfig{Oracle: true}
		}
		cfg.DetectCfg.LHB = lhb
	}
	if rq.MaxCycles > 0 {
		cfg.MaxCycles = rq.MaxCycles
	}
	if rq.WallTimeoutMS > 0 {
		cfg.WallTimeout = time.Duration(rq.WallTimeoutMS) * time.Millisecond
	}
	return k, cfg, nil
}

// Job states.
const (
	jobQueued      = "queued"
	jobRunning     = "running"
	jobDone        = "done"
	jobFailed      = "failed"
	jobInterrupted = "interrupted"
)

// job is one submitted run: its request, its cancel handle, and — once
// finished — its result or structured error.
type job struct {
	id     string
	req    RunRequest
	cancel context.CancelFunc
	// started closes when the job wins an execution slot and begins
	// simulating (immediately at submit when admission is unbounded);
	// done closes when it finishes either way.
	started chan struct{}
	done    chan struct{}

	mu         sync.Mutex
	res        sim.Result
	err        error
	finishedAt time.Time
}

// finished reports whether the job reached a terminal state, and when
// (for TTL eviction).
func (j *job) finished() (time.Time, bool) {
	select {
	case <-j.done:
	default:
		return time.Time{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishedAt, true
}

// snapshot renders the job's externally visible state.
func (j *job) snapshot() JobStatus {
	js := JobStatus{ID: j.id, Status: jobRunning, Request: j.req}
	select {
	case <-j.done:
	default:
		select {
		case <-j.started:
		default:
			js.Status = jobQueued
		}
		return js
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		js.Status = jobFailed
		js.Error = simProblem(j.err)
		return js
	}
	js.Status = jobDone
	js.Result = &RunResult{
		Stats:         j.res.Stats,
		SimulatedCTAs: j.res.SimulatedCTAs,
		TotalCTAs:     j.res.TotalCTAs,
	}
	return js
}

// JobStatus is the GET /v1/runs/{id} body.
type JobStatus struct {
	ID      string     `json:"id"`
	Status  string     `json:"status"` // queued | running | done | failed | interrupted
	Request RunRequest `json:"request"`
	Result  *RunResult `json:"result,omitempty"`
	Error   *Problem   `json:"error,omitempty"`
}

// RunResult is the persisted-shape result: the full Stats block plus CTA
// accounting (the same subset internal/store writes to disk).
type RunResult struct {
	Stats         sim.Stats `json:"stats"`
	SimulatedCTAs int       `json:"simulated_ctas"`
	TotalCTAs     int       `json:"total_ctas"`
}

// handleSubmit accepts a RunRequest, starts the job on the shared runner,
// and returns 202 with the job id. Identical concurrent submissions
// coalesce inside the runner onto one simulation.
//
// Admission control (Config.MaxInflight/QueueCap): the execution slot is
// claimed synchronously here when one is free; otherwise the job joins
// the bounded pending queue, and when that too is full the submission is
// shed with a deterministic 429 + Retry-After — the decision depends only
// on the daemon's current load, never on goroutine scheduling.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.evictExpired()
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var rq RunRequest
	if err := dec.Decode(&rq); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeProblem(w, http.StatusRequestEntityTooLarge, "request body too large",
				fmt.Sprintf("body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		writeProblem(w, http.StatusBadRequest, "malformed run request", err.Error())
		return
	}
	k, cfg, err := rq.build(s.opts)
	if err != nil {
		writeProblem(w, http.StatusBadRequest, "invalid run request", err.Error())
		return
	}

	// Claim a slot (or a queue seat) before the job exists, so a shed
	// submission leaves no trace.
	slotHeld, queued := false, false
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			slotHeld = true
		default:
			for {
				q := s.queued.Load()
				if q >= s.queueCap {
					s.jobsShed.Add(1)
					w.Header().Set("Retry-After", "1")
					writeProblem(w, http.StatusTooManyRequests, "server at capacity",
						fmt.Sprintf("all %d execution slots busy and %d submissions already pending; retry later", cap(s.inflight), q))
					return
				}
				if s.queued.CompareAndSwap(q, q+1) {
					queued = true
					break
				}
			}
		}
	}

	jctx, cancel := context.WithCancel(s.ctx)
	j := &job{req: rq, cancel: cancel, started: make(chan struct{}), done: make(chan struct{})}
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("r%06d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	if slotHeld || !queued {
		close(j.started)
	}
	if s.journal != nil {
		s.journal.Start(j.id, rq)
	}

	go func() {
		defer cancel()
		if queued {
			select {
			case s.inflight <- struct{}{}:
				s.queued.Add(-1)
				close(j.started)
			case <-jctx.Done():
				// Cancelled (or daemon shutdown) while still queued: finish
				// with the typed cancellation error without ever running.
				s.queued.Add(-1)
				close(j.started)
				s.finishJob(j, sim.Result{}, &sim.SimError{
					Phase: sim.PhaseCancelled, Reason: "cancelled while queued", Err: jctx.Err(),
				})
				return
			}
		}
		if s.inflight != nil {
			defer func() { <-s.inflight }()
		}
		res, err := s.runner.RunCtx(jctx, k, cfg)
		s.finishJob(j, res, err)
	}()

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// finishJob records a job's terminal state and journals it.
func (s *Server) finishJob(j *job, res sim.Result, err error) {
	j.mu.Lock()
	j.res, j.err = res, err
	j.finishedAt = s.now()
	j.mu.Unlock()
	close(j.done)
	if s.journal != nil {
		status := jobDone
		if err != nil {
			status = jobFailed
		}
		s.journal.End(j.id, status)
	}
}

// lookupJob resolves {id} to a live job, or writes the appropriate
// problem: a journal-recovered id gets the typed "interrupted" status, an
// id the daemon issued but has since TTL-evicted gets 410 gone, anything
// else 404.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	s.evictExpired()
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	if j != nil {
		s.mu.Unlock()
		return j
	}
	rq, wasInterrupted := s.interrupted[id]
	issued := jobSeq(id) >= 1 && jobSeq(id) <= s.seq
	s.mu.Unlock()
	switch {
	case wasInterrupted:
		// 200 with a terminal status, mirroring a failed job: the daemon
		// knows exactly what happened to this id, it did not lose it.
		writeJSON(w, http.StatusOK, JobStatus{
			ID: id, Status: jobInterrupted, Request: rq,
			Error: &Problem{
				Title:  "job interrupted",
				Detail: "the daemon restarted while this job was in flight; resubmit to rerun it (completed cells are served warm from the store)",
				Phase:  jobInterrupted,
			},
		})
	case issued:
		writeProblem(w, http.StatusGone, "job evicted",
			fmt.Sprintf("job %q completed and was evicted after its retention window", id))
	default:
		writeProblem(w, http.StatusNotFound, "unknown job", fmt.Sprintf("no job %q", id))
	}
	return nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

// handleJobCancel cancels an in-flight job. The job then finishes as
// failed with the typed cancellation error (sim.SimError, phase
// "cancelled"); cancelling a finished job is a no-op. Either way the
// current snapshot is returned.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}
