package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"duplo/internal/sim"
)

// Problem is the typed error document (application/problem+json shape)
// used both as an HTTP error body and embedded in a failed JobStatus. For
// simulation failures the sim.SimError structure is carried verbatim, so
// a client can distinguish a cancelled job from a tripped watchdog or an
// exhausted cycle budget without parsing prose.
type Problem struct {
	// Status is the HTTP status (0 when embedded in a job).
	Status int    `json:"status,omitempty"`
	Title  string `json:"title"`
	Detail string `json:"detail,omitempty"`

	// Simulation-failure structure (sim.SimError): the guard phase
	// ("cancelled", "deadline", "cycle-limit", "watchdog", "panic",
	// "program"), the simulated clock when it tripped, and the crash-dump
	// path when one was written.
	Phase string `json:"phase,omitempty"`
	Cycle int64  `json:"cycle,omitempty"`
	Dump  string `json:"dump,omitempty"`
}

// simProblem converts a run error into its problem document, lifting the
// structured SimError fields when present.
func simProblem(err error) *Problem {
	p := &Problem{Title: "simulation failed", Detail: err.Error()}
	var se *sim.SimError
	if errors.As(err, &se) {
		p.Phase, p.Cycle, p.Dump = se.Phase, se.Cycle, se.Dump
	}
	return p
}

// writeProblem writes an HTTP-level problem response.
func writeProblem(w http.ResponseWriter, status int, title, detail string) {
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(Problem{Status: status, Title: title, Detail: detail}) //nolint:errcheck // header written
}
