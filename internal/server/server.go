// Package server implements duploserved, the simulation-as-a-service
// daemon: N clients, one warm result store, zero redundant simulation.
//
// The HTTP surface (all JSON; errors are typed problem documents):
//
//	POST   /v1/runs          submit one (layer, config) simulation job
//	GET    /v1/runs/{id}     job status; result or structured error when done
//	DELETE /v1/runs/{id}     cancel an in-flight job
//	GET    /v1/sweeps/{id}   run a whole figure/ablation, streaming NDJSON
//	GET    /healthz          liveness
//	GET    /statsz           cache/store/job counters
//
// All jobs share one experiments.Runner, so concurrent clients requesting
// the same cell coalesce onto a single simulation (the PR 1 singleflight
// machinery), and every successful run lands in the content-addressed
// disk store (internal/store) where it outlives the process. Per-job
// MaxCycles/WallTimeout budgets and cancellation ride on the PR 5
// RunContext/SimError plumbing; a failed or cancelled job reports the
// SimError's phase/cycle/dump as JSON instead of a stack trace.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"duplo/internal/experiments"
	"duplo/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Options is the base experiment scale every job and sweep runs at
	// (CTA cap, simulated SMs, worker pool, default budgets). Its Context
	// is the daemon lifetime: cancelling it aborts every in-flight job
	// and sweep. Its Store field is overridden by Config.Store.
	Options experiments.Options
	// Store is the shared on-disk result tier (nil = memory-only: results
	// then live exactly as long as the process).
	Store *store.Store

	// MaxInflight bounds concurrently executing jobs; further submissions
	// wait in the pending queue. 0 = unbounded (every job starts at once;
	// the runner's worker pool is then the only brake).
	MaxInflight int
	// QueueCap bounds pending (accepted, not yet executing) jobs when
	// MaxInflight is set; beyond it submissions are shed with a
	// deterministic 429 + Retry-After. 0 = no pending queue: when every
	// slot is busy, submissions shed immediately.
	QueueCap int
	// MaxSweeps bounds concurrently streaming sweeps; beyond it
	// GET /v1/sweeps/{id} sheds with 503 + Retry-After. 0 = unbounded.
	MaxSweeps int
	// MaxBodyBytes bounds POST bodies (http.MaxBytesReader; oversized
	// requests get a typed 413). 0 = unbounded.
	MaxBodyBytes int64
	// JobTTL evicts completed/failed jobs from the id map this long after
	// they finish; GETs of evicted ids return a typed 410 "gone" problem.
	// 0 = keep forever (the pre-PR-10 behavior; fine for tests, unbounded
	// memory for a long-lived daemon).
	JobTTL time.Duration
	// Journal, when non-nil, records job starts/ends for crash recovery:
	// jobs in flight when the process died are reported as typed
	// "interrupted" problems after restart, and job numbering resumes
	// past every id the journal has seen.
	Journal *Journal
	// Now is the clock used for TTL eviction (nil = time.Now; a seam for
	// deterministic tests).
	Now func() time.Time
}

// Server is the duploserved HTTP handler state.
type Server struct {
	opts   experiments.Options
	store  *store.Store
	runner *experiments.Runner // shared by all /v1/runs jobs
	ctx    context.Context     // daemon lifetime

	mu          sync.Mutex
	jobs        map[string]*job
	seq         int64
	interrupted map[string]RunRequest // journal-recovered ids from before a crash
	// healthz degraded-delta watermarks: last-reported store failure
	// counters, so /healthz flags *new* put-errors/corruptions and
	// recovers to ok once they stop (also under mu).
	seenPutErrors int64
	seenCorrupt   int64

	// Admission control (nil/0 = unbounded, the test default).
	inflight chan struct{} // MaxInflight semaphore
	sweepSem chan struct{} // MaxSweeps semaphore
	queued   atomic.Int64  // pending jobs (accepted, waiting for a slot)
	queueCap int64
	maxBody  int64
	jobTTL   time.Duration
	journal  *Journal
	now      func() time.Time

	jobsShed   atomic.Int64 // submissions rejected 429 (queue full)
	sweepsShed atomic.Int64 // sweeps rejected 503
	evicted    atomic.Int64 // jobs TTL-evicted from the id map

	sweepsActive   atomic.Int64
	sweepExecs     atomic.Int64 // cumulative simulations executed by finished sweeps
	sweepPredicted atomic.Int64 // cumulative predictor-synthesized cells across finished sweeps
}

// New builds a Server. The shared job runner is created here; sweeps get
// per-request runners (their progress streams belong to one response) that
// share the same disk store.
func New(cfg Config) *Server {
	opts := cfg.Options
	opts.Store = cfg.Store
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Server{
		opts:        opts,
		store:       cfg.Store,
		runner:      experiments.NewRunner(opts),
		ctx:         ctx,
		jobs:        make(map[string]*job),
		interrupted: make(map[string]RunRequest),
		queueCap:    int64(cfg.QueueCap),
		maxBody:     cfg.MaxBodyBytes,
		jobTTL:      cfg.JobTTL,
		journal:     cfg.Journal,
		now:         cfg.Now,
	}
	if s.now == nil {
		s.now = time.Now
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.MaxSweeps > 0 {
		s.sweepSem = make(chan struct{}, cfg.MaxSweeps)
	}
	if s.journal != nil {
		s.interrupted = s.journal.Interrupted()
		if ms := s.journal.MaxSeq(); ms > s.seq {
			s.seq = ms
		}
	}
	return s
}

// evictExpired drops completed/failed jobs whose TTL has lapsed. Called
// lazily from the handlers that touch the job map — no background
// goroutine to manage, and with the Now seam eviction is deterministic
// under test. Running jobs are never evicted regardless of age.
func (s *Server) evictExpired() {
	if s.jobTTL <= 0 {
		return
	}
	cutoff := s.now().Add(-s.jobTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		if t, terminal := j.finished(); terminal && t.Before(cutoff) {
			delete(s.jobs, id)
			s.evicted.Add(1)
		}
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("POST /v1/calibrate", s.handleCalibrate)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	return mux
}

// HealthZ is the /healthz body. Status is "ok" or "degraded"; degraded
// means the daemon still serves (jobs succeed off the memo tier and
// re-simulation) but the disk tier is unhealthy: the circuit breaker is
// not closed, or new put-errors/corruptions appeared since the last
// health check. Plain GETs stay 200 either way — liveness probes must
// not kill a pod for a sick disk — while ?strict=1 returns 503 when
// degraded, for load balancers that should drain a degraded instance.
type HealthZ struct {
	Status  string   `json:"status"` // ok | degraded
	Reasons []string `json:"reasons,omitempty"`
	// Breaker is the store circuit breaker's snapshot (absent when the
	// daemon runs without resilience or without a store).
	Breaker *store.BreakerSnapshot `json:"breaker,omitempty"`
	// InterruptedJobs counts journal-recovered jobs from before a crash.
	InterruptedJobs int `json:"interrupted_jobs,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthZ{Status: "ok"}
	if s.store != nil {
		c := s.store.Counters()
		s.mu.Lock()
		h.InterruptedJobs = len(s.interrupted)
		if d := c.PutErrors - s.seenPutErrors; d > 0 {
			h.Reasons = append(h.Reasons, fmt.Sprintf("%d new store put error(s)", d))
		}
		if d := c.Corruptions - s.seenCorrupt; d > 0 {
			h.Reasons = append(h.Reasons, fmt.Sprintf("%d new corrupt store record(s)", d))
		}
		s.seenPutErrors, s.seenCorrupt = c.PutErrors, c.Corruptions
		s.mu.Unlock()
		if b := s.store.Breaker(); b != nil {
			h.Breaker = b
			if b.State != store.BreakerClosed {
				h.Reasons = append(h.Reasons, "store circuit breaker "+b.State)
			}
		}
	} else {
		s.mu.Lock()
		h.InterruptedJobs = len(s.interrupted)
		s.mu.Unlock()
	}
	if len(h.Reasons) > 0 {
		h.Status = "degraded"
	}
	status := http.StatusOK
	if h.Status == "degraded" && r.URL.Query().Get("strict") == "1" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// StatsZ is the /statsz body: one snapshot of every counter a capacity
// dashboard needs — cache tiers, job states, sweep activity.
type StatsZ struct {
	// Workers is the shared job runner's pool width.
	Workers int `json:"workers"`
	// Execs counts simulations the shared job runner actually executed
	// (both cache tiers missed). Sweeps run on per-request runners; their
	// executed simulations accumulate in SweepExecs as each sweep ends.
	Execs      int64 `json:"execs"`
	StoreHits  int64 `json:"store_hits"`
	SweepExecs int64 `json:"sweep_execs"`
	// SweepPredicted accumulates predictor-synthesized cells across
	// finished sweeps (jobs never predict: POST /v1/runs is ground truth).
	SweepPredicted int64 `json:"sweep_predicted"`

	JobsTotal   int   `json:"jobs_total"`
	JobsQueued  int   `json:"jobs_queued"`
	JobsRunning int   `json:"jobs_running"`
	JobsDone    int   `json:"jobs_done"`
	JobsFailed  int   `json:"jobs_failed"`
	SweepsOpen  int64 `json:"sweeps_open"`

	// Admission-control and lifecycle accounting (DESIGN.md §12):
	// submissions shed 429, sweeps shed 503, completed jobs TTL-evicted
	// from the id map, and journal-recovered interrupted jobs.
	JobsShed        int64 `json:"jobs_shed"`
	SweepsShed      int64 `json:"sweeps_shed"`
	JobsEvicted     int64 `json:"jobs_evicted"`
	JobsInterrupted int   `json:"jobs_interrupted"`

	// Store holds the disk tier's counters; absent when the daemon runs
	// memory-only.
	Store *store.Counters `json:"store,omitempty"`
	// Breaker is the store circuit breaker's state (absent unless the
	// daemon enabled store resilience).
	Breaker *store.BreakerSnapshot `json:"breaker,omitempty"`
	// Predictor reports the analytical fast path's mode and the installed
	// calibration's per-family fit quality (DESIGN.md §9).
	Predictor *PredictorStatsZ `json:"predictor"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	s.evictExpired()
	st := StatsZ{
		Workers:        s.runner.Workers(),
		Execs:          s.runner.Execs(),
		StoreHits:      s.runner.StoreHits(),
		SweepExecs:     s.sweepExecs.Load(),
		SweepPredicted: s.sweepPredicted.Load(),
		SweepsOpen:     s.sweepsActive.Load(),
		JobsShed:       s.jobsShed.Load(),
		SweepsShed:     s.sweepsShed.Load(),
		JobsEvicted:    s.evicted.Load(),
		Predictor:      s.predictorStatsZ(),
	}
	s.mu.Lock()
	st.JobsTotal = len(s.jobs)
	st.JobsInterrupted = len(s.interrupted)
	for _, j := range s.jobs {
		switch j.snapshot().Status {
		case jobQueued:
			st.JobsQueued++
		case jobRunning:
			st.JobsRunning++
		case jobDone:
			st.JobsDone++
		case jobFailed:
			st.JobsFailed++
		}
	}
	s.mu.Unlock()
	if s.store != nil {
		c := s.store.Counters()
		st.Store = &c
		st.Breaker = s.store.Breaker()
	}
	writeJSON(w, http.StatusOK, st)
}

// writeJSON writes one JSON document with the right header. Encoding
// errors past the header write are unrecoverable mid-body; they surface
// as a truncated response the client's decoder rejects.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // header already written
}
