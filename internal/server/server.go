// Package server implements duploserved, the simulation-as-a-service
// daemon: N clients, one warm result store, zero redundant simulation.
//
// The HTTP surface (all JSON; errors are typed problem documents):
//
//	POST   /v1/runs          submit one (layer, config) simulation job
//	GET    /v1/runs/{id}     job status; result or structured error when done
//	DELETE /v1/runs/{id}     cancel an in-flight job
//	GET    /v1/sweeps/{id}   run a whole figure/ablation, streaming NDJSON
//	GET    /healthz          liveness
//	GET    /statsz           cache/store/job counters
//
// All jobs share one experiments.Runner, so concurrent clients requesting
// the same cell coalesce onto a single simulation (the PR 1 singleflight
// machinery), and every successful run lands in the content-addressed
// disk store (internal/store) where it outlives the process. Per-job
// MaxCycles/WallTimeout budgets and cancellation ride on the PR 5
// RunContext/SimError plumbing; a failed or cancelled job reports the
// SimError's phase/cycle/dump as JSON instead of a stack trace.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"duplo/internal/experiments"
	"duplo/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Options is the base experiment scale every job and sweep runs at
	// (CTA cap, simulated SMs, worker pool, default budgets). Its Context
	// is the daemon lifetime: cancelling it aborts every in-flight job
	// and sweep. Its Store field is overridden by Config.Store.
	Options experiments.Options
	// Store is the shared on-disk result tier (nil = memory-only: results
	// then live exactly as long as the process).
	Store *store.Store
}

// Server is the duploserved HTTP handler state.
type Server struct {
	opts   experiments.Options
	store  *store.Store
	runner *experiments.Runner // shared by all /v1/runs jobs
	ctx    context.Context     // daemon lifetime

	mu   sync.Mutex
	jobs map[string]*job
	seq  int64

	sweepsActive   atomic.Int64
	sweepExecs     atomic.Int64 // cumulative simulations executed by finished sweeps
	sweepPredicted atomic.Int64 // cumulative predictor-synthesized cells across finished sweeps
}

// New builds a Server. The shared job runner is created here; sweeps get
// per-request runners (their progress streams belong to one response) that
// share the same disk store.
func New(cfg Config) *Server {
	opts := cfg.Options
	opts.Store = cfg.Store
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Server{
		opts:   opts,
		store:  cfg.Store,
		runner: experiments.NewRunner(opts),
		ctx:    ctx,
		jobs:   make(map[string]*job),
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("POST /v1/calibrate", s.handleCalibrate)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// StatsZ is the /statsz body: one snapshot of every counter a capacity
// dashboard needs — cache tiers, job states, sweep activity.
type StatsZ struct {
	// Workers is the shared job runner's pool width.
	Workers int `json:"workers"`
	// Execs counts simulations the shared job runner actually executed
	// (both cache tiers missed). Sweeps run on per-request runners; their
	// executed simulations accumulate in SweepExecs as each sweep ends.
	Execs      int64 `json:"execs"`
	StoreHits  int64 `json:"store_hits"`
	SweepExecs int64 `json:"sweep_execs"`
	// SweepPredicted accumulates predictor-synthesized cells across
	// finished sweeps (jobs never predict: POST /v1/runs is ground truth).
	SweepPredicted int64 `json:"sweep_predicted"`

	JobsTotal   int   `json:"jobs_total"`
	JobsRunning int   `json:"jobs_running"`
	JobsDone    int   `json:"jobs_done"`
	JobsFailed  int   `json:"jobs_failed"`
	SweepsOpen  int64 `json:"sweeps_open"`

	// Store holds the disk tier's counters; absent when the daemon runs
	// memory-only.
	Store *store.Counters `json:"store,omitempty"`
	// Predictor reports the analytical fast path's mode and the installed
	// calibration's per-family fit quality (DESIGN.md §9).
	Predictor *PredictorStatsZ `json:"predictor"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	st := StatsZ{
		Workers:        s.runner.Workers(),
		Execs:          s.runner.Execs(),
		StoreHits:      s.runner.StoreHits(),
		SweepExecs:     s.sweepExecs.Load(),
		SweepPredicted: s.sweepPredicted.Load(),
		SweepsOpen:     s.sweepsActive.Load(),
		Predictor:      s.predictorStatsZ(),
	}
	s.mu.Lock()
	st.JobsTotal = len(s.jobs)
	for _, j := range s.jobs {
		switch j.snapshot().Status {
		case jobRunning:
			st.JobsRunning++
		case jobDone:
			st.JobsDone++
		case jobFailed:
			st.JobsFailed++
		}
	}
	s.mu.Unlock()
	if s.store != nil {
		c := s.store.Counters()
		st.Store = &c
	}
	writeJSON(w, http.StatusOK, st)
}

// writeJSON writes one JSON document with the right header. Encoding
// errors past the header write are unrecoverable mid-body; they surface
// as a truncated response the client's decoder rejects.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // header already written
}
