package server

import (
	"net/http"

	"duplo/internal/experiments"
	"duplo/internal/predictor"
)

// PredictorStatsZ is the /statsz predictor block: the configured mode and
// the installed calibration's per-family fit quality.
type PredictorStatsZ struct {
	// Mode is the daemon's configured predictor mode (off | predict-all |
	// hybrid); Bound is the hybrid uncertainty bound.
	Mode  string  `json:"mode"`
	Bound float64 `json:"bound,omitempty"`
	// Calibrated reports whether a calibration is installed on the shared
	// runner (via POST /v1/calibrate or a predicted run); GatePass whether
	// every fitted family cleared the gate.
	Calibrated bool               `json:"calibrated"`
	GatePass   bool               `json:"gate_pass,omitempty"`
	Families   []FamilyStatsZ     `json:"families,omitempty"`
	Gate       map[string]float64 `json:"gate,omitempty"`
}

// FamilyStatsZ summarizes one family model's calibration fit.
type FamilyStatsZ struct {
	Family      string  `json:"family"`
	N           int     `json:"n"`
	MAPE        float64 `json:"mape"`
	Pearson     float64 `json:"pearson"`
	MAPEOff     float64 `json:"mape_off"`
	MAPEOn      float64 `json:"mape_on"`
	Uncertainty float64 `json:"uncertainty"`
	GatePass    bool    `json:"gate_pass"`
}

// predictorStatsZ snapshots the shared runner's predictor state.
func (s *Server) predictorStatsZ() *PredictorStatsZ {
	p := &PredictorStatsZ{
		Mode:  string(s.opts.Predictor),
		Bound: s.opts.PredictBound,
	}
	if p.Mode == "" {
		p.Mode = string(experiments.PredictorOff)
	}
	cal := s.runner.Calibration()
	if cal == nil {
		return p
	}
	p.Calibrated = true
	p.GatePass = cal.GatePass()
	p.Gate = map[string]float64{"mape": predictor.GateMAPE, "pearson": predictor.GatePearson}
	for _, m := range cal.FamilyList() {
		p.Families = append(p.Families, familyStatsZ(m))
	}
	return p
}

func familyStatsZ(m *predictor.FamilyModel) FamilyStatsZ {
	return FamilyStatsZ{
		Family:      m.Family,
		N:           m.All.N,
		MAPE:        m.All.MAPE,
		Pearson:     m.All.Pearson,
		MAPEOff:     m.Off.MAPE,
		MAPEOn:      m.On.MAPE,
		Uncertainty: m.Uncertainty(),
		GatePass:    m.GatePass,
	}
}

// CalibrateResponse is the POST /v1/calibrate body.
type CalibrateResponse struct {
	Key      string         `json:"key"`
	GatePass bool           `json:"gate_pass"`
	Families []FamilyStatsZ `json:"families"`
}

// handleCalibrate fits (or loads) the shared runner's calibration against
// cycle-sim ground truth and returns the fit report. With ?force=1 a
// valid persisted artifact is ignored and the fit reruns; the default
// load-or-fit path is idempotent and cheap on a warm daemon — this is how
// an operator pre-warms the predictor before pointing clients at it. The
// fit simulates the calibration grid through the normal store-warmed
// path, so it shares ground truth with every other client.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	force := r.URL.Query().Get("force") == "1" || r.URL.Query().Get("force") == "true"
	cal, err := s.runner.Calibrate(force)
	if err != nil {
		writeProblem(w, http.StatusInternalServerError, "calibration failed", err.Error())
		return
	}
	resp := CalibrateResponse{Key: cal.Key, GatePass: cal.GatePass()}
	for _, m := range cal.FamilyList() {
		resp.Families = append(resp.Families, familyStatsZ(m))
	}
	writeJSON(w, http.StatusOK, resp)
}
