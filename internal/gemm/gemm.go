// Package gemm implements the general matrix multiplication kernels used to
// compute lowered convolutions (Fig. 1(b)): an fp32 reference, a
// cache-blocked fp32 kernel, and a functional emulation of the tensor-core
// datapath (half-precision operands, fp32 accumulation, 16x16x16 tile
// steps) matching the wmma semantics described in §II-B.
package gemm

import (
	"fmt"

	"duplo/internal/fp16"
	"duplo/internal/tensor"
)

// Tile is the tensor-core tile edge.
const Tile = 16

// Reference computes D = A * B with the naive triple loop. A is MxK,
// B is KxN, D is MxN. Strides are honored, so padded workspaces work.
func Reference(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols > b.Rows {
		return nil, fmt.Errorf("gemm: inner dims %d vs %d", a.Cols, b.Rows)
	}
	d := tensor.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := d.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := ar[k]
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := range dr {
				dr[j] += av * br[j]
			}
		}
	}
	return d, nil
}

// Blocked computes D = A * B with simple cache blocking. It produces the
// same result as Reference (up to fp32 association order) but runs several
// times faster on large matrices; functional convolution tests use it.
func Blocked(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols > b.Rows {
		return nil, fmt.Errorf("gemm: inner dims %d vs %d", a.Cols, b.Rows)
	}
	const bs = 64
	d := tensor.NewMatrix(a.Rows, b.Cols)
	for i0 := 0; i0 < a.Rows; i0 += bs {
		i1 := min(i0+bs, a.Rows)
		for k0 := 0; k0 < a.Cols; k0 += bs {
			k1 := min(k0+bs, a.Cols)
			for i := i0; i < i1; i++ {
				ar := a.Row(i)
				dr := d.Row(i)
				for k := k0; k < k1; k++ {
					av := ar[k]
					if av == 0 {
						continue
					}
					br := b.Row(k)
					for j := range dr {
						dr[j] += av * br[j]
					}
				}
			}
		}
	}
	return d, nil
}

// TensorCore computes D = A * B emulating the tensor-core datapath:
// operands are rounded to binary16 before multiplication and products are
// accumulated in fp32, processed as 16x16x16 MMA tile steps in the same
// order a wmma kernel sweeps them (k-inner). Dimensions must be multiples
// of Tile (use the padded workspace dims).
func TensorCore(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("gemm: tensor-core inner dims %d vs %d", a.Cols, b.Rows)
	}
	if a.Rows%Tile != 0 || a.Cols%Tile != 0 || b.Cols%Tile != 0 {
		return nil, fmt.Errorf("gemm: tensor-core dims %dx%dx%d not multiples of %d",
			a.Rows, a.Cols, b.Cols, Tile)
	}
	d := tensor.NewMatrix(a.Rows, b.Cols)
	var at, bt [Tile][Tile]float32
	for ti := 0; ti < a.Rows; ti += Tile {
		for tj := 0; tj < b.Cols; tj += Tile {
			var acc [Tile][Tile]float32
			for tk := 0; tk < a.Cols; tk += Tile {
				// Load fragments with operand conversion to half.
				for r := 0; r < Tile; r++ {
					ar := a.Row(ti + r)[tk : tk+Tile]
					for c := 0; c < Tile; c++ {
						at[r][c] = fp16.Round(ar[c])
					}
					br := b.Row(tk + r)[tj : tj+Tile]
					for c := 0; c < Tile; c++ {
						bt[r][c] = fp16.Round(br[c])
					}
				}
				// 16x16x16 MMA: FEDP-style fp32 accumulation.
				for r := 0; r < Tile; r++ {
					for c := 0; c < Tile; c++ {
						s := acc[r][c]
						for k := 0; k < Tile; k++ {
							s += at[r][k] * bt[k][c]
						}
						acc[r][c] = s
					}
				}
			}
			for r := 0; r < Tile; r++ {
				copy(d.Row(ti + r)[tj:tj+Tile], acc[r][:])
			}
		}
	}
	return d, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
