package gemm

import (
	"math/rand"
	"testing"

	"duplo/internal/tensor"
)

func randomMatrix(rows, cols int, seed int64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestReferenceSmall(t *testing.T) {
	a := tensor.NewMatrix(2, 3)
	copy(a.Data, []float32{1, 2, 3, 4, 5, 6})
	b := tensor.NewMatrix(3, 2)
	copy(b.Data, []float32{7, 8, 9, 10, 11, 12})
	d, err := Reference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if d.Data[i] != w {
			t.Errorf("d[%d] = %v, want %v", i, d.Data[i], w)
		}
	}
}

func TestIdentity(t *testing.T) {
	n := 8
	a := randomMatrix(n, n, 1)
	id := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	d, err := Reference(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxAbsDiff(a) != 0 {
		t.Error("A*I != A")
	}
}

func TestBlockedMatchesReference(t *testing.T) {
	for _, dims := range [][3]int{{5, 7, 3}, {64, 64, 64}, {100, 33, 17}, {1, 1, 1}, {130, 70, 90}} {
		a := randomMatrix(dims[0], dims[1], int64(dims[0]))
		b := randomMatrix(dims[1], dims[2], int64(dims[1]))
		ref, err := Reference(a, b)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := Blocked(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := ref.MaxAbsDiff(blk); d > 1e-3 {
			t.Errorf("%v: blocked differs by %v", dims, d)
		}
	}
}

func TestTensorCoreMatchesReferenceWithinHalfPrecision(t *testing.T) {
	a := randomMatrix(32, 48, 5)
	b := randomMatrix(48, 32, 6)
	ref, _ := Reference(a, b)
	tc, err := TensorCore(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Half-precision operand rounding: relative error ~ 2^-11 * sqrt(K).
	var maxRel float64
	for i := range ref.Data {
		d := float64(ref.Data[i] - tc.Data[i])
		if d < 0 {
			d = -d
		}
		rel := d / (1 + abs64(float64(ref.Data[i])))
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.05 {
		t.Errorf("tensor-core max rel err %v", maxRel)
	}
	if maxRel == 0 {
		t.Error("expected some half-precision rounding error")
	}
}

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestTensorCoreDimValidation(t *testing.T) {
	a := randomMatrix(17, 16, 1)
	b := randomMatrix(16, 16, 2)
	if _, err := TensorCore(a, b); err == nil {
		t.Error("expected dim error for non-tile rows")
	}
	a = randomMatrix(16, 16, 1)
	b = randomMatrix(32, 16, 2)
	if _, err := TensorCore(a, b); err == nil {
		t.Error("expected inner-dim mismatch error")
	}
}

func TestReferenceInnerDimError(t *testing.T) {
	a := tensor.NewMatrix(2, 5)
	b := tensor.NewMatrix(3, 2)
	if _, err := Reference(a, b); err == nil {
		t.Error("expected error: A cols exceed B rows")
	}
}

func TestPadAndCrop(t *testing.T) {
	m := randomMatrix(5, 7, 9)
	p := PadToTiles(m)
	if p.Rows != 16 || p.Cols != 16 {
		t.Fatalf("padded dims %dx%d", p.Rows, p.Cols)
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			if p.At(r, c) != m.At(r, c) {
				t.Fatal("pad corrupted data")
			}
		}
	}
	if p.At(5, 0) != 0 || p.At(0, 7) != 0 {
		t.Fatal("padding not zero")
	}
	back := CropMatrix(p, 5, 7)
	if back.MaxAbsDiff(m) != 0 {
		t.Fatal("crop mismatch")
	}
	// Already aligned matrices are returned as-is.
	q := randomMatrix(16, 32, 3)
	if PadToTiles(q) != q {
		t.Error("aligned matrix should not be copied")
	}
}

func TestPadMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PadMatrix(randomMatrix(4, 4, 1), 2, 4)
}

// Associativity-free property: (A*B)*e_j column equals A*(B e_j).
func TestColumnExtraction(t *testing.T) {
	a := randomMatrix(8, 8, 11)
	b := randomMatrix(8, 8, 12)
	d, _ := Reference(a, b)
	// Multiply by basis vector via a 8x1 matrix.
	for j := 0; j < 8; j++ {
		e := tensor.NewMatrix(8, 1)
		e.Set(j, 0, 1)
		col, _ := Reference(b, e) // B e_j
		dcol, _ := Reference(a, col)
		for i := 0; i < 8; i++ {
			if diff := abs64(float64(d.At(i, j) - dcol.At(i, 0))); diff > 1e-4 {
				t.Fatalf("column %d mismatch %v", j, diff)
			}
		}
	}
}

func BenchmarkBlocked128(b *testing.B) {
	a := randomMatrix(128, 128, 1)
	bb := randomMatrix(128, 128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Blocked(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTensorCore128(b *testing.B) {
	a := randomMatrix(128, 128, 1)
	bb := randomMatrix(128, 128, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TensorCore(a, bb); err != nil {
			b.Fatal(err)
		}
	}
}
