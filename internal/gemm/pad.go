package gemm

import "duplo/internal/tensor"

// PadMatrix returns a rows x cols zero-padded copy of m (rows >= m.Rows,
// cols >= m.Cols). Tensor-core GEMM requires tile-aligned dimensions; real
// kernels do the same padding when staging operands.
func PadMatrix(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if rows < m.Rows || cols < m.Cols {
		panic("gemm: PadMatrix target smaller than source")
	}
	out := tensor.NewMatrix(rows, cols)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r)[:m.Cols], m.Row(r))
	}
	return out
}

// PadToTiles pads m so both dimensions are multiples of Tile.
func PadToTiles(m *tensor.Matrix) *tensor.Matrix {
	r := (m.Rows + Tile - 1) / Tile * Tile
	c := (m.Cols + Tile - 1) / Tile * Tile
	if r == m.Rows && c == m.Cols && m.Stride == m.Cols {
		return m
	}
	return PadMatrix(m, r, c)
}

// CropMatrix returns the rows x cols top-left submatrix of m as a copy.
func CropMatrix(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	if rows > m.Rows || cols > m.Cols {
		panic("gemm: CropMatrix target larger than source")
	}
	out := tensor.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		copy(out.Row(r), m.Row(r)[:cols])
	}
	return out
}
