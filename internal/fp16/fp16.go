// Package fp16 implements IEEE 754 binary16 (half-precision) floating point.
//
// NVIDIA tensor cores consume half-precision A and B operands and accumulate
// in single precision (Volta/Turing wmma semantics). The Duplo simulator and
// the functional tensor-core GEMM use this package to round operands to the
// exact value a tensor core would see, so functional cross-checks against
// fp32 reference kernels use realistic tolerances.
//
// The representation is the raw 16-bit pattern (type Num). Arithmetic is
// performed by converting to float32, which is exact: every binary16 value is
// exactly representable in binary32.
package fp16

import "math"

// Num is a raw IEEE 754 binary16 bit pattern.
type Num uint16

// Bit-field layout of binary16.
const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	fracBits     = 10
	maxExp       = 0x1F
	infBits      = 0x7C00 // +Inf
	nanBits      = 0x7E00 // a quiet NaN
	maxFinite    = 65504.0
	minNormal    = 6.103515625e-05      // 2^-14
	minSubnormal = 5.960464477539063e-8 // 2^-24
)

// FromFloat32 converts an fp32 value to the nearest binary16 value using
// round-to-nearest-even, matching hardware conversion instructions.
func FromFloat32(f float32) Num {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			return Num(sign | nanBits)
		}
		return Num(sign | infBits)
	case exp == 0 && frac == 0: // signed zero
		return Num(sign)
	}

	// Unbiased exponent of the fp32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return Num(sign | infBits)
	case e >= -14: // normal half range
		// 13 low bits of the fp32 fraction are rounded away.
		half := uint32(e+expBias)<<fracBits | frac>>13
		// Round to nearest even on the discarded 13 bits.
		rem := frac & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into exponent; that is the correct rounding
		}
		if half >= infBits {
			return Num(sign | infBits)
		}
		return Num(sign | uint16(half))
	case e >= -24: // subnormal half range
		// Implicit leading 1 becomes explicit; shift depends on exponent.
		frac |= 0x800000
		shift := uint32(-e - 14 + 13) // bits discarded
		half := frac >> shift
		rem := frac & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return Num(sign | uint16(half))
	default: // underflow to zero
		return Num(sign)
	}
}

// Float32 converts a binary16 value to the exactly equal float32.
func (n Num) Float32() float32 {
	sign := uint32(n&signMask) << 16
	exp := uint32(n&expMask) >> fracBits
	frac := uint32(n & fracMask)

	switch {
	case exp == maxExp: // Inf or NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | frac<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalize.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp-expBias+127)<<23 | frac<<13)
	}
}

// Round returns f rounded through binary16 precision, i.e. the fp32 value a
// tensor core would actually multiply after operand conversion.
func Round(f float32) float32 { return FromFloat32(f).Float32() }

// IsNaN reports whether n is a NaN pattern.
func (n Num) IsNaN() bool { return n&expMask == expMask && n&fracMask != 0 }

// IsInf reports whether n is +Inf or -Inf.
func (n Num) IsInf() bool { return n&expMask == expMask && n&fracMask == 0 }

// Neg returns n with its sign flipped (also flips NaN sign, like hardware).
func (n Num) Neg() Num { return n ^ signMask }

// Add returns the binary16 rounding of a+b.
func Add(a, b Num) Num { return FromFloat32(a.Float32() + b.Float32()) }

// Mul returns the binary16 rounding of a*b.
func Mul(a, b Num) Num { return FromFloat32(a.Float32() * b.Float32()) }

// FMA computes a*b+c with the product kept in fp32 before accumulation,
// mirroring the tensor-core FEDP datapath (half multiply, fp32 accumulate).
// The returned value is fp32 (the accumulator precision).
func FMA(a, b Num, c float32) float32 { return a.Float32()*b.Float32() + c }

// MaxValue is the largest finite binary16 value.
func MaxValue() float32 { return maxFinite }

// SliceFromFloat32 rounds every element of src into a new []Num.
func SliceFromFloat32(src []float32) []Num {
	dst := make([]Num, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// SliceToFloat32 widens every element of src into a new []float32.
func SliceToFloat32(src []Num) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}
