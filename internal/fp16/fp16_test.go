package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Num
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},           // max finite
		{6.103515625e-05, 0x0400}, // min normal
		{5.960464477539063e-8, 0x0001},
		{0.333251953125, 0x3555}, // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := c.bits.Float32(); got != c.f {
			t.Errorf("(%#04x).Float32() = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	n := FromFloat32(float32(math.Copysign(0, -1)))
	if n != 0x8000 {
		t.Fatalf("negative zero = %#04x, want 0x8000", n)
	}
	f := n.Float32()
	if f != 0 || !math.Signbit(float64(f)) {
		t.Fatalf("round trip of -0 lost the sign: %v", f)
	}
}

func TestSpecials(t *testing.T) {
	inf := FromFloat32(float32(math.Inf(1)))
	if !inf.IsInf() || inf != infBits {
		t.Errorf("+Inf = %#04x", inf)
	}
	ninf := FromFloat32(float32(math.Inf(-1)))
	if !ninf.IsInf() || ninf != signMask|infBits {
		t.Errorf("-Inf = %#04x", ninf)
	}
	nan := FromFloat32(float32(math.NaN()))
	if !nan.IsNaN() {
		t.Errorf("NaN = %#04x not NaN", nan)
	}
	if !float32IsNaN(nan.Float32()) {
		t.Errorf("NaN did not round trip")
	}
	// Overflow saturates to infinity.
	if got := FromFloat32(65520); !got.IsInf() {
		t.Errorf("65520 should overflow to Inf, got %#04x", got)
	}
	// 65519.996... rounds down to max finite; 65504+16=65520 is the midpoint
	// and rounds to even (infinity), per IEEE.
	if got := FromFloat32(65519); !got.IsInf() {
		// 65519 > 65504+8? midpoint between 65504 and Inf-step is 65520.
		// 65519 < 65520 so it must round DOWN to 65504.
		if got != 0x7BFF {
			t.Errorf("65519 = %#04x, want 0x7BFF", got)
		}
	}
	// Underflow to zero.
	if got := FromFloat32(1e-9); got != 0 {
		t.Errorf("1e-9 = %#04x, want 0", got)
	}
}

func float32IsNaN(f float32) bool { return f != f }

// Every binary16 pattern must round-trip bit-exactly through float32
// (except that NaN payloads only need to stay NaN).
func TestAllPatternsRoundTrip(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		n := Num(i)
		f := n.Float32()
		back := FromFloat32(f)
		if n.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("%#04x: NaN round trip lost NaN-ness", i)
			}
			continue
		}
		if back != n {
			t.Fatalf("%#04x -> %v -> %#04x", i, f, back)
		}
	}
}

// Conversion must be monotonic: a <= b  =>  half(a) <= half(b).
func TestMonotonicConversion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := float32(rng.NormFloat64() * 100)
		b := float32(rng.NormFloat64() * 100)
		if a > b {
			a, b = b, a
		}
		fa, fb := Round(a), Round(b)
		if fa > fb {
			t.Fatalf("monotonicity violated: %v<=%v but %v>%v", a, b, fa, fb)
		}
	}
}

// Round-to-nearest: the rounded value must be within half a ULP.
func TestRoundingError(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := float32(rng.NormFloat64())
		if f == 0 {
			return true
		}
		r := Round(f)
		// relative error bound for normals: 2^-11
		rel := math.Abs(float64(r-f)) / math.Abs(float64(f))
		return rel <= math.Pow(2, -11)+1e-12 || math.Abs(float64(f)) < minNormal
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRoundNearestEven(t *testing.T) {
	// 2048 and 2050 are representable; 2049 is exactly between and must go
	// to the even mantissa (2048).
	if got := Round(2049); got != 2048 {
		t.Errorf("Round(2049) = %v, want 2048", got)
	}
	if got := Round(2051); got != 2052 {
		t.Errorf("Round(2051) = %v, want 2052", got)
	}
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat32(1.5), FromFloat32(2.25)
	if got := Add(a, b).Float32(); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
	if got := Mul(a, b).Float32(); got != 3.375 {
		t.Errorf("1.5*2.25 = %v", got)
	}
	if got := FMA(a, b, 1); got != 4.375 {
		t.Errorf("fma = %v", got)
	}
	if got := a.Neg().Float32(); got != -1.5 {
		t.Errorf("neg = %v", got)
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []float32{0, 1, -2, 3.5}
	ns := SliceFromFloat32(src)
	back := SliceToFloat32(ns)
	for i := range src {
		if back[i] != src[i] {
			t.Errorf("slice round trip [%d]: %v != %v", i, back[i], src[i])
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	vals := make([]float32, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	var sink Num
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(vals[i&1023])
	}
	_ = sink
}
