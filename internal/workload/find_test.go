package workload

import (
	"strings"
	"testing"
)

// TestFindTableDriven covers the lookup paths the parallel experiment
// fan-out depends on: every valid (network, layer) pair resolves, and the
// error paths name the missing pair.
func TestFindTableDriven(t *testing.T) {
	cases := []struct {
		network, layer string
		wantErr        bool
	}{
		{"ResNet", "C1", false},
		{"ResNet", "C8", false},
		{"GAN", "TC1", false},
		{"GAN", "C4", false},
		{"YOLO", "C6", false},
		{"VGG", "C1", true},     // unknown network
		{"ResNet", "C9", true},  // unknown layer in a known network
		{"ResNet", "TC1", true}, // layer name from the wrong network
		{"resnet", "C1", true},  // lookup is case-sensitive
		{"", "", true},          // empty pair
		{"YOLO", "", true},      // empty layer
		{"", "C1", true},        // empty network
	}
	for _, c := range cases {
		l, err := Find(c.network, c.layer)
		if c.wantErr {
			if err == nil {
				t.Errorf("Find(%q, %q): expected error, got %v", c.network, c.layer, l)
				continue
			}
			if !strings.Contains(err.Error(), c.network+"/"+c.layer) {
				t.Errorf("Find(%q, %q): error %q does not name the pair", c.network, c.layer, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Find(%q, %q): %v", c.network, c.layer, err)
			continue
		}
		if l.Network != c.network || l.Name != c.layer {
			t.Errorf("Find(%q, %q) = %s", c.network, c.layer, l.FullName())
		}
	}
}

// TestTrainingGemmsInvariants checks the shape invariants of every Table I
// layer's training decomposition — the kernels Fig. 14's fan-out builds.
func TestTrainingGemmsInvariants(t *testing.T) {
	for _, l := range AllLayers() {
		gs := TrainingGemms(l)
		if len(gs) != 3 {
			t.Fatalf("%s: %d training GEMMs, want 3", l.FullName(), len(gs))
		}
		fwd, dgrad, wgrad := gs[0], gs[1], gs[2]

		// fwd: the layer's own lowered GEMM, name-suffixed for the cache.
		if fwd.Conv == nil || *fwd.Conv != l.GemmParams() {
			t.Errorf("%s: fwd params %+v != GemmParams", l.FullName(), fwd.Conv)
		}
		if !strings.HasSuffix(fwd.Name, "/fwd") {
			t.Errorf("%s: fwd name %q", l.FullName(), fwd.Name)
		}

		// dgrad: a valid lowered convolution whose output reconstructs the
		// forward input resolution, with C and K swapped.
		if dgrad.Conv == nil {
			t.Fatalf("%s: dgrad has no conv params", l.FullName())
		}
		if err := dgrad.Conv.Validate(); err != nil {
			t.Errorf("%s: dgrad invalid: %v", l.FullName(), err)
		}
		p := l.GemmParams()
		if dgrad.Conv.C != p.K || dgrad.Conv.K != p.C {
			t.Errorf("%s: dgrad channels %d->%d, want %d->%d",
				l.FullName(), dgrad.Conv.C, dgrad.Conv.K, p.K, p.C)
		}
		if dgrad.Conv.OutH() != p.H || dgrad.Conv.OutW() != p.W {
			t.Errorf("%s: dgrad output %dx%d, want input resolution %dx%d",
				l.FullName(), dgrad.Conv.OutH(), dgrad.Conv.OutW(), p.H, p.W)
		}
		if !strings.HasSuffix(dgrad.Name, "/dgrad") {
			t.Errorf("%s: dgrad name %q", l.FullName(), dgrad.Name)
		}

		// wgrad: a plain reduction GEMM (no workspace) with the filter
		// gradient's dimensions.
		if wgrad.Conv != nil {
			t.Errorf("%s: wgrad must be a plain GEMM", l.FullName())
		}
		if wgrad.M != p.K || wgrad.N != p.FH*p.FW*p.C || wgrad.K != p.GemmM() {
			t.Errorf("%s: wgrad dims %dx%dx%d, want %dx%dx%d",
				l.FullName(), wgrad.M, wgrad.N, wgrad.K, p.K, p.FH*p.FW*p.C, p.GemmM())
		}
		if wgrad.M <= 0 || wgrad.N <= 0 || wgrad.K <= 0 {
			t.Errorf("%s: wgrad dims must be positive", l.FullName())
		}
	}
}
