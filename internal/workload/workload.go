// Package workload defines the DNN layer zoo of Table I (ResNet, GAN, YOLO)
// and the network-level pass compositions used by the experiments.
package workload

import (
	"fmt"

	"duplo/internal/conv"
)

// Layer is one row of Table I.
type Layer struct {
	Network string // "ResNet", "GAN", "YOLO"
	Name    string // "C1", "TC2", ...
	// Transposed marks GAN's TC layers (§II-A): they are executed by
	// lowering to the zero-dilated equivalent convolution.
	Transposed bool
	Params     conv.Params
}

// FullName returns e.g. "ResNet/C3".
func (l Layer) FullName() string { return l.Network + "/" + l.Name }

// GemmParams returns the convolution parameters the GPU actually lowers:
// the layer itself, or the dilated direct equivalent for transposed layers.
func (l Layer) GemmParams() conv.Params {
	if l.Transposed {
		return conv.TransposedEquivalentParams(l.Params)
	}
	return l.Params
}

// Table I of the paper, verbatim: Input is NHWC, Filter is KHWC (the paper
// prints filter shapes as NHWC with N = filter count).
var (
	// ResNet [6] layers C1-C8.
	ResNet = []Layer{
		{"ResNet", "C1", false, conv.Params{N: 8, H: 224, W: 224, C: 3, K: 64, FH: 7, FW: 7, Pad: 3, Stride: 2}},
		{"ResNet", "C2", false, conv.Params{N: 8, H: 56, W: 56, C: 64, K: 64, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"ResNet", "C3", false, conv.Params{N: 8, H: 56, W: 56, C: 64, K: 128, FH: 3, FW: 3, Pad: 0, Stride: 2}},
		{"ResNet", "C4", false, conv.Params{N: 8, H: 28, W: 28, C: 128, K: 128, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"ResNet", "C5", false, conv.Params{N: 8, H: 28, W: 28, C: 128, K: 256, FH: 3, FW: 3, Pad: 0, Stride: 2}},
		{"ResNet", "C6", false, conv.Params{N: 8, H: 14, W: 14, C: 256, K: 256, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"ResNet", "C7", false, conv.Params{N: 8, H: 14, W: 14, C: 256, K: 512, FH: 3, FW: 3, Pad: 0, Stride: 2}},
		{"ResNet", "C8", false, conv.Params{N: 8, H: 7, W: 7, C: 512, K: 512, FH: 3, FW: 3, Pad: 1, Stride: 1}},
	}

	// GAN [31] layers: four transposed convolutions (the generator) and
	// four convolutions (the discriminator).
	GAN = []Layer{
		{"GAN", "TC1", true, conv.Params{N: 8, H: 4, W: 4, C: 512, K: 256, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "TC2", true, conv.Params{N: 8, H: 8, W: 8, C: 256, K: 128, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "TC3", true, conv.Params{N: 8, H: 16, W: 16, C: 128, K: 64, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "TC4", true, conv.Params{N: 8, H: 32, W: 32, C: 64, K: 3, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "C1", false, conv.Params{N: 8, H: 64, W: 64, C: 3, K: 64, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "C2", false, conv.Params{N: 8, H: 32, W: 32, C: 64, K: 128, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "C3", false, conv.Params{N: 8, H: 16, W: 16, C: 128, K: 256, FH: 5, FW: 5, Pad: 2, Stride: 2}},
		{"GAN", "C4", false, conv.Params{N: 8, H: 8, W: 8, C: 256, K: 512, FH: 5, FW: 5, Pad: 2, Stride: 2}},
	}

	// YOLO [33] layers C1-C6.
	YOLO = []Layer{
		{"YOLO", "C1", false, conv.Params{N: 8, H: 224, W: 224, C: 3, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"YOLO", "C2", false, conv.Params{N: 8, H: 112, W: 112, C: 32, K: 64, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"YOLO", "C3", false, conv.Params{N: 8, H: 56, W: 56, C: 64, K: 128, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"YOLO", "C4", false, conv.Params{N: 8, H: 28, W: 28, C: 128, K: 256, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"YOLO", "C5", false, conv.Params{N: 8, H: 14, W: 14, C: 256, K: 512, FH: 3, FW: 3, Pad: 1, Stride: 1}},
		{"YOLO", "C6", false, conv.Params{N: 8, H: 7, W: 7, C: 512, K: 1024, FH: 3, FW: 3, Pad: 1, Stride: 1}},
	}
)

// Networks maps network names to their layer lists.
func Networks() map[string][]Layer {
	return map[string][]Layer{"ResNet": ResNet, "GAN": GAN, "YOLO": YOLO}
}

// NetworkNames in the paper's presentation order.
func NetworkNames() []string { return []string{"ResNet", "GAN", "YOLO"} }

// AllLayers returns the 22 layers in Table I order.
func AllLayers() []Layer {
	out := make([]Layer, 0, len(ResNet)+len(GAN)+len(YOLO))
	out = append(out, ResNet...)
	out = append(out, GAN...)
	out = append(out, YOLO...)
	return out
}

// Find returns the layer with the given network and name.
func Find(network, name string) (Layer, error) {
	for _, l := range AllLayers() {
		if l.Network == network && l.Name == name {
			return l, nil
		}
	}
	return Layer{}, fmt.Errorf("workload: no layer %s/%s", network, name)
}

// TrainingGemm describes one GEMM of a layer's backward pass (Fig. 14
// training runs). Each convolutional layer trains with three GEMMs: the
// forward pass (lowered workspace, Duplo-eligible), the data-gradient pass
// (also a lowered workspace: dgrad is a convolution of the output gradient
// with the transposed filter, so the dilated gradient workspace has the
// same duplication structure), and the weight-gradient pass (a plain
// reduction GEMM with no im2col workspace, which Duplo cannot help).
type TrainingGemm struct {
	Name string
	// Conv is set when the GEMM has a lowered-workspace A operand.
	Conv *conv.Params
	// Plain GEMM dims when Conv is nil.
	M, N, K int
}

// TrainingGemms returns the three GEMMs of one layer's training step.
func TrainingGemms(l Layer) []TrainingGemm {
	fwd := l.GemmParams()
	// dgrad: convolve the (dilated, for stride>1) output gradient with the
	// 180-degree-rotated filter to produce the input gradient. As a lowered
	// GEMM: M = N*H*W (input positions), K = FH*FW*K_filters, N = C.
	g := conv.Params{
		N: fwd.N, H: fwd.OutH(), W: fwd.OutW(), C: fwd.K,
		K: fwd.C, FH: fwd.FH, FW: fwd.FW,
		Pad: fwd.FH - 1 - fwd.Pad, Stride: 1,
	}
	if g.Pad < 0 {
		g.Pad = 0
	}
	if fwd.Stride > 1 {
		// Zero-dilate the gradient back to input resolution.
		g.H = fwd.OutH() * fwd.Stride
		g.W = fwd.OutW() * fwd.Stride
	}
	// wgrad: dW[k, fy, fx, c] = sum over (n, oy, ox) dy * x — a plain GEMM
	// of M = K_filters, N = FH*FW*C, K = N*OutH*OutW with no workspace
	// duplication structure Duplo could use.
	return []TrainingGemm{
		{Name: l.FullName() + "/fwd", Conv: &fwd},
		{Name: l.FullName() + "/dgrad", Conv: &g},
		{Name: l.FullName() + "/wgrad", M: fwd.K, N: fwd.FH * fwd.FW * fwd.C, K: fwd.GemmM()},
	}
}
