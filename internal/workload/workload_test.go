package workload

import (
	"testing"

	"duplo/internal/conv"
)

func TestTableICounts(t *testing.T) {
	if len(ResNet) != 8 || len(GAN) != 8 || len(YOLO) != 6 {
		t.Fatalf("layer counts %d/%d/%d", len(ResNet), len(GAN), len(YOLO))
	}
	if len(AllLayers()) != 22 {
		t.Fatalf("total layers %d", len(AllLayers()))
	}
}

func TestAllLayersValid(t *testing.T) {
	for _, l := range AllLayers() {
		if err := l.Params.Validate(); err != nil {
			t.Errorf("%s: %v", l.FullName(), err)
		}
		if err := l.GemmParams().Validate(); err != nil {
			t.Errorf("%s gemm params: %v", l.FullName(), err)
		}
		if l.Params.N != 8 {
			t.Errorf("%s: Table I batch is 8, got %d", l.FullName(), l.Params.N)
		}
	}
}

// Chained layers must have compatible shapes: each layer's output feeds the
// next (spot-check the chains the paper's Table I implies).
func TestLayerChaining(t *testing.T) {
	chains := [][]Layer{YOLO, ResNet[1:]} // ResNet C1 feeds C2 via a pooling layer
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			prev, cur := chain[i-1], chain[i]
			if prev.Params.K != cur.Params.C {
				t.Errorf("%s -> %s: channels %d -> %d", prev.FullName(), cur.FullName(), prev.Params.K, cur.Params.C)
			}
		}
	}
	// GAN generator chain TC1->TC4.
	for i := 1; i < 4; i++ {
		prev, cur := GAN[i-1], GAN[i]
		if prev.Params.K != cur.Params.C {
			t.Errorf("%s -> %s: channels %d -> %d", prev.FullName(), cur.FullName(), prev.Params.K, cur.Params.C)
		}
		if prev.Params.H*2 != cur.Params.H {
			t.Errorf("%s -> %s: upsampling %d -> %d", prev.FullName(), cur.FullName(), prev.Params.H, cur.Params.H)
		}
	}
}

// Table I spot checks against the printed rows.
func TestTableISpotChecks(t *testing.T) {
	c1, err := Find("ResNet", "C1")
	if err != nil {
		t.Fatal(err)
	}
	want := conv.Params{N: 8, H: 224, W: 224, C: 3, K: 64, FH: 7, FW: 7, Pad: 3, Stride: 2}
	if c1.Params != want {
		t.Errorf("ResNet C1 = %+v", c1.Params)
	}
	tc4, _ := Find("GAN", "TC4")
	if !tc4.Transposed || tc4.Params.K != 3 {
		t.Errorf("GAN TC4 = %+v", tc4)
	}
	c6, _ := Find("YOLO", "C6")
	if c6.Params.K != 1024 || c6.Params.C != 512 {
		t.Errorf("YOLO C6 = %+v", c6.Params)
	}
	if _, err := Find("ResNet", "C99"); err == nil {
		t.Error("expected error for unknown layer")
	}
}

// GAN transposed layers double the spatial size through the dilated
// equivalent (Table I: TC1 4x4 -> TC2 8x8, etc.).
func TestTransposedGemmParams(t *testing.T) {
	tc1, _ := Find("GAN", "TC1")
	g := tc1.GemmParams()
	if g.H != 8 || g.W != 8 || g.Stride != 1 {
		t.Fatalf("TC1 dilated params %+v", g)
	}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("TC1 output %dx%d, want 8x8 (Table I TC2 input)", g.OutH(), g.OutW())
	}
	// Non-transposed layers pass through unchanged.
	c2, _ := Find("ResNet", "C2")
	if c2.GemmParams() != c2.Params {
		t.Fatal("plain layer must pass through")
	}
}

func TestTrainingGemms(t *testing.T) {
	l, _ := Find("ResNet", "C2")
	gs := TrainingGemms(l)
	if len(gs) != 3 {
		t.Fatalf("training GEMM count %d", len(gs))
	}
	if gs[0].Conv == nil || gs[1].Conv == nil {
		t.Fatal("fwd and dgrad must carry conv params")
	}
	if gs[2].Conv != nil {
		t.Fatal("wgrad must be a plain GEMM")
	}
	if err := gs[1].Conv.Validate(); err != nil {
		t.Fatalf("dgrad params invalid: %v", err)
	}
	// dgrad reconstructs the input spatial resolution: output dims must
	// equal the forward input dims.
	d := *gs[1].Conv
	if d.OutH() != l.Params.H || d.OutW() != l.Params.W {
		t.Fatalf("dgrad output %dx%d, want %dx%d", d.OutH(), d.OutW(), l.Params.H, l.Params.W)
	}
	if gs[2].M != 64 || gs[2].N != 3*3*64 || gs[2].K != 8*56*56 {
		t.Fatalf("wgrad dims %dx%dx%d", gs[2].M, gs[2].N, gs[2].K)
	}
	// Strided layer dgrad also validates and reconstructs.
	l3, _ := Find("ResNet", "C3")
	gs3 := TrainingGemms(l3)
	if err := gs3[1].Conv.Validate(); err != nil {
		t.Fatalf("strided dgrad invalid: %v", err)
	}
}

func TestNetworksMap(t *testing.T) {
	m := Networks()
	if len(m) != 3 {
		t.Fatal("network count")
	}
	for _, n := range NetworkNames() {
		if len(m[n]) == 0 {
			t.Errorf("network %s empty", n)
		}
	}
}
