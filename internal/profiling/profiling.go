// Package profiling wires the conventional -cpuprofile / -memprofile flags
// of the cmd binaries to runtime/pprof, so performance work on the
// simulator measures instead of guessing.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (when non-empty). Either path may be empty; the returned stop is never
// nil and is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		runtime.GC() // settle the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
