package conv

import (
	"testing"

	"duplo/internal/tensor"
)

var benchParams = Params{N: 1, H: 32, W: 32, C: 16, K: 16, FH: 3, FW: 3, Pad: 1, Stride: 1}

func benchTensors(b *testing.B) (*tensor.Tensor, *tensor.Tensor) {
	b.Helper()
	in := tensor.New(benchParams.N, benchParams.H, benchParams.W, benchParams.C)
	in.FillRandom(1, 1)
	f := tensor.New(benchParams.K, benchParams.FH, benchParams.FW, benchParams.C)
	f.FillRandom(2, 0.5)
	return in, f
}

func BenchmarkDirect(b *testing.B) {
	in, f := benchTensors(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Direct(benchParams, in, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransposed(b *testing.B) {
	p := Params{N: 1, H: 16, W: 16, C: 16, K: 8, FH: 5, FW: 5, Pad: 2, Stride: 2}
	in := tensor.New(p.N, p.H, p.W, p.C)
	in.FillRandom(3, 1)
	f := tensor.New(p.K, p.FH, p.FW, p.C)
	f.FillRandom(4, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transposed(p, in, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniqueWorkspaceElems(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += benchParams.UniqueWorkspaceElems()
	}
	_ = sink
}
