package conv

import (
	"fmt"

	"duplo/internal/tensor"
)

// Transposed computes a transposed ("TC" in Table I) convolution, the
// upsampling operation of GAN generator layers [31]. Following the paper
// (§II-A), the GPU implements it by inserting zeros into the input and then
// performing an ordinary convolution; ToDirect exposes exactly that lowering
// so the GEMM/tensor-core path can reuse the whole machinery of this
// repository, and Transposed itself is an independent scatter-style reference
// used to validate it.
//
// Shape convention (matching Table I): the input is N x H x W x C, filters
// are K x FH x FW x C (C input channels -> K output channels), and the
// output spatial size is H*Stride + FH - 1 - 2*Pad — the size produced by
// zero-dilating the input to H*Stride and convolving with stride 1 and
// padding FH-1-Pad. For every GAN layer in Table I (5x5 filters, pad 2,
// stride 2) this reduces to exactly H*Stride, doubling the spatial size.
func Transposed(p Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkShapes(p, input, filters); err != nil {
		return nil, err
	}
	oh := p.H*p.Stride + p.FH - 1 - 2*p.Pad
	ow := p.W*p.Stride + p.FW - 1 - 2*p.Pad
	out := tensor.New(p.N, oh, ow, p.K)
	for n := 0; n < p.N; n++ {
		for iy := 0; iy < p.H; iy++ {
			for ix := 0; ix < p.W; ix++ {
				for fy := 0; fy < p.FH; fy++ {
					oy := iy*p.Stride + fy - p.Pad
					if oy < 0 || oy >= oh {
						continue
					}
					for fx := 0; fx < p.FW; fx++ {
						ox := ix*p.Stride + fx - p.Pad
						if ox < 0 || ox >= ow {
							continue
						}
						for k := 0; k < p.K; k++ {
							var acc float32
							for c := 0; c < p.C; c++ {
								acc += input.At(n, iy, ix, c) * filters.At(k, fy, fx, c)
							}
							out.Data[out.Index(n, oy, ox, k)] += acc
						}
					}
				}
			}
		}
	}
	return out, nil
}

// ToDirect lowers a transposed convolution to an equivalent direct
// convolution: the input is zero-dilated by the stride (each element lands at
// coordinate i*Stride) and the filter is spatially flipped; the equivalent
// direct convolution then uses stride 1 and padding FH-1-Pad. This is the
// "inserting zeros before performing a convolution" formulation of §II-A and
// is what the GEMM-based path simulates for GAN's TC layers.
func ToDirect(p Params, input, filters *tensor.Tensor) (Params, *tensor.Tensor, *tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return Params{}, nil, nil, err
	}
	if err := checkShapes(p, input, filters); err != nil {
		return Params{}, nil, nil, err
	}
	if p.Pad > p.FH-1 || p.Pad > p.FW-1 {
		return Params{}, nil, nil, fmt.Errorf("conv: transposed pad %d exceeds filter-1", p.Pad)
	}
	dil := tensor.New(p.N, p.H*p.Stride, p.W*p.Stride, p.C)
	for n := 0; n < p.N; n++ {
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				for c := 0; c < p.C; c++ {
					dil.Set(n, y*p.Stride, x*p.Stride, c, input.At(n, y, x, c))
				}
			}
		}
	}
	flip := tensor.New(p.K, p.FH, p.FW, p.C)
	for k := 0; k < p.K; k++ {
		for fy := 0; fy < p.FH; fy++ {
			for fx := 0; fx < p.FW; fx++ {
				for c := 0; c < p.C; c++ {
					flip.Set(k, fy, fx, c, filters.At(k, p.FH-1-fy, p.FW-1-fx, c))
				}
			}
		}
	}
	dp := Params{
		N: p.N, H: p.H * p.Stride, W: p.W * p.Stride, C: p.C,
		K: p.K, FH: p.FH, FW: p.FW,
		Pad: p.FH - 1 - p.Pad, Stride: 1,
	}
	return dp, dil, flip, nil
}

// TransposedEquivalentParams returns only the lowered direct-convolution
// parameters (no tensors), used by the timing simulator and analytic models
// to size GAN's TC layers without materializing data.
func TransposedEquivalentParams(p Params) Params {
	return Params{
		N: p.N, H: p.H * p.Stride, W: p.W * p.Stride, C: p.C,
		K: p.K, FH: p.FH, FW: p.FW,
		Pad: p.FH - 1 - p.Pad, Stride: 1,
	}
}
