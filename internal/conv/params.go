// Package conv defines convolution parameter algebra and the direct
// (sliding-filter) and transposed convolution reference implementations.
//
// Direct convolution is the paper's Fig. 1(a) baseline: the filter slides
// over the input and each output element is the dot product between the
// filter and the overlapping receptive field. Every other method in this
// repository (GEMM-based, Winograd, FFT) is validated against it.
package conv

import (
	"fmt"

	"duplo/internal/tensor"
)

// Params describes one convolutional layer in the shape used by Table I of
// the paper: NHWC input, KHWC filters (K filters of FHxFWxC), symmetric
// spatial padding and stride.
type Params struct {
	// Input dimensions.
	N, H, W, C int
	// Filter dimensions: K filters of size FHxFW over C channels.
	K, FH, FW int
	// Symmetric zero padding and stride (same in both spatial dims, as in
	// every layer of Table I).
	Pad, Stride int
}

// Validate reports a descriptive error for ill-formed parameters.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.H <= 0 || p.W <= 0 || p.C <= 0:
		return fmt.Errorf("conv: invalid input dims %dx%dx%dx%d", p.N, p.H, p.W, p.C)
	case p.K <= 0 || p.FH <= 0 || p.FW <= 0:
		return fmt.Errorf("conv: invalid filter dims %dx%dx%dx%d", p.K, p.FH, p.FW, p.C)
	case p.Pad < 0:
		return fmt.Errorf("conv: negative padding %d", p.Pad)
	case p.Stride <= 0:
		return fmt.Errorf("conv: non-positive stride %d", p.Stride)
	case p.H+2*p.Pad < p.FH || p.W+2*p.Pad < p.FW:
		return fmt.Errorf("conv: filter %dx%d larger than padded input %dx%d",
			p.FH, p.FW, p.H+2*p.Pad, p.W+2*p.Pad)
	}
	return nil
}

// OutH returns the output height: (H + 2*Pad - FH)/Stride + 1.
func (p Params) OutH() int { return (p.H+2*p.Pad-p.FH)/p.Stride + 1 }

// OutW returns the output width.
func (p Params) OutW() int { return (p.W+2*p.Pad-p.FW)/p.Stride + 1 }

// OutputShape returns the NHWC shape of the convolution output.
func (p Params) OutputShape() (n, h, w, c int) { return p.N, p.OutH(), p.OutW(), p.K }

// GEMM dimensions of the lowered convolution (Fig. 1(b)):
// the workspace matrix A is M x Kdim, the filter matrix B is Kdim x Ncol,
// and the output D is M x Ncol.

// GemmM returns the number of workspace rows: N * OutH * OutW.
func (p Params) GemmM() int { return p.N * p.OutH() * p.OutW() }

// GemmK returns the reduction depth: FH * FW * C.
func (p Params) GemmK() int { return p.FH * p.FW * p.C }

// GemmN returns the number of output channels (filters): K.
func (p Params) GemmN() int { return p.K }

// InputElems returns the number of input elements N*H*W*C.
func (p Params) InputElems() int64 {
	return int64(p.N) * int64(p.H) * int64(p.W) * int64(p.C)
}

// WorkspaceElems returns the number of elements in the explicit lowered
// workspace, GemmM * GemmK. This is the quantity whose ratio to InputElems
// drives Fig. 3 and the duplication analysis.
func (p Params) WorkspaceElems() int64 { return int64(p.GemmM()) * int64(p.GemmK()) }

// MACs returns the number of multiply-accumulate operations of the
// convolution: M * K * Ncol in GEMM terms.
func (p Params) MACs() int64 {
	return int64(p.GemmM()) * int64(p.GemmK()) * int64(p.GemmN())
}

// DuplicationFactor returns WorkspaceElems / InputElems, the average number
// of workspace copies of each input element (≥ 1 for the layers of interest;
// may be < 1 for stride > filter configurations where inputs are skipped).
func (p Params) DuplicationFactor() float64 {
	return float64(p.WorkspaceElems()) / float64(p.InputElems())
}

// UniqueWorkspaceElems counts workspace entries with distinct (batch,
// element) IDs, i.e. the number of distinct input elements actually
// referenced by the workspace. With padding, out-of-bounds taps reference the
// shared zero region and are excluded.
func (p Params) UniqueWorkspaceElems() int64 {
	// A padded-input element (iy, ix, c) of one image is referenced iff some
	// output position (oy, ox) and tap (fy, fx) hit it. Count referenced
	// in-bounds input elements of a single image, then multiply by N and C
	// (channels and images replicate the spatial pattern exactly).
	oh, ow := p.OutH(), p.OutW()
	refY := referencedAxis(p.H, p.Pad, p.FH, p.Stride, oh)
	refX := referencedAxis(p.W, p.Pad, p.FW, p.Stride, ow)
	return int64(refY) * int64(refX) * int64(p.C) * int64(p.N)
}

// referencedAxis counts in-bounds coordinates along one axis hit by at least
// one (output, tap) pair.
func referencedAxis(size, pad, f, stride, out int) int {
	count := 0
	for i := 0; i < size; i++ {
		// padded coordinate of input i is i+pad; it is hit iff there exists
		// o in [0,out) and t in [0,f) with o*stride+t == i+pad.
		hit := false
		for t := 0; t < f && !hit; t++ {
			o := i + pad - t
			if o >= 0 && o%stride == 0 && o/stride < out {
				hit = true
			}
		}
		if hit {
			count++
		}
	}
	return count
}

// String renders the layer like Table I rows.
func (p Params) String() string {
	return fmt.Sprintf("in %dx%dx%dx%d filt %dx%dx%dx%d pad %d stride %d",
		p.N, p.H, p.W, p.C, p.K, p.FH, p.FW, p.C, p.Pad, p.Stride)
}

// NewOutput allocates the output tensor for p.
func (p Params) NewOutput() *tensor.Tensor {
	n, h, w, c := p.OutputShape()
	return tensor.New(n, h, w, c)
}

// WithBatch returns a copy of p with the batch size replaced (Fig. 13 sweep).
func (p Params) WithBatch(n int) Params {
	p.N = n
	return p
}
