package conv

import (
	"math"
	"testing"

	"duplo/internal/tensor"
)

func TestOutputDims(t *testing.T) {
	cases := []struct {
		p      Params
		oh, ow int
	}{
		// Fig. 1: 4x4 input, 3x3 filter, no pad, stride 1 -> 2x2.
		{Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}, 2, 2},
		// ResNet C1: 224x224, 7x7, pad 3, stride 2 -> 112x112.
		{Params{N: 8, H: 224, W: 224, C: 3, K: 64, FH: 7, FW: 7, Pad: 3, Stride: 2}, 112, 112},
		// ResNet C2: 56x56, 3x3, pad 1, stride 1 -> 56x56.
		{Params{N: 8, H: 56, W: 56, C: 64, K: 64, FH: 3, FW: 3, Pad: 1, Stride: 1}, 56, 56},
		// ResNet C3: 56x56, 3x3, pad 0, stride 2 -> 27x27.
		{Params{N: 8, H: 56, W: 56, C: 64, K: 128, FH: 3, FW: 3, Pad: 0, Stride: 2}, 27, 27},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if c.p.OutH() != c.oh || c.p.OutW() != c.ow {
			t.Errorf("%v: out %dx%d, want %dx%d", c.p, c.p.OutH(), c.p.OutW(), c.oh, c.ow)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Params{
		{N: 0, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 1},
		{N: 1, H: 4, W: 4, C: 1, K: 0, FH: 3, FW: 3, Stride: 1},
		{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 0},
		{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: -1, Stride: 1},
		{N: 1, H: 2, W: 2, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("expected error for %+v", p)
		}
	}
}

// The worked example of Fig. 1(a): 4x4 input, 3x3 filter, output [[8,7],[-5,8]].
func TestDirectPaperExample(t *testing.T) {
	p := Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	in := tensor.FromSlice(1, 4, 4, 1, []float32{
		3, 1, 4, -2,
		1, 0, -2, 1,
		4, -2, 4, 0,
		-2, 1, 0, 3,
	})
	f := tensor.FromSlice(1, 3, 3, 1, []float32{
		1, 0, 3,
		-3, -1, 2,
		0, 2, 1,
	})
	out, err := Direct(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{8, 7, -5, 8}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v (full: %v)", i, out.Data[i], w, out.Data)
		}
	}
}

func TestDirectIdentityFilter(t *testing.T) {
	// A 1x1 filter with weight 1 on channel 0 copies channel 0.
	p := Params{N: 2, H: 3, W: 3, C: 2, K: 1, FH: 1, FW: 1, Pad: 0, Stride: 1}
	in := tensor.New(2, 3, 3, 2)
	in.FillRandom(5, 1)
	f := tensor.New(1, 1, 1, 2)
	f.Set(0, 0, 0, 0, 1)
	out, err := Direct(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if out.At(n, y, x, 0) != in.At(n, y, x, 0) {
					t.Fatalf("identity conv mismatch at (%d,%d,%d)", n, y, x)
				}
			}
		}
	}
}

func TestDirectPaddingZeros(t *testing.T) {
	// All-ones input and filter with pad: corner outputs see fewer taps.
	p := Params{N: 1, H: 3, W: 3, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	in := tensor.New(1, 3, 3, 1)
	in.Fill(1)
	f := tensor.New(1, 3, 3, 1)
	f.Fill(1)
	out, err := Direct(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 1, 1, 0) != 9 {
		t.Errorf("center = %v, want 9", out.At(0, 1, 1, 0))
	}
	if out.At(0, 0, 0, 0) != 4 {
		t.Errorf("corner = %v, want 4", out.At(0, 0, 0, 0))
	}
	if out.At(0, 0, 1, 0) != 6 {
		t.Errorf("edge = %v, want 6", out.At(0, 0, 1, 0))
	}
}

func TestDirectShapeMismatch(t *testing.T) {
	p := Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 1}
	in := tensor.New(1, 5, 4, 1)
	f := tensor.New(1, 3, 3, 1)
	if _, err := Direct(p, in, f); err == nil {
		t.Error("expected input shape error")
	}
	in = tensor.New(1, 4, 4, 1)
	f = tensor.New(2, 3, 3, 1)
	if _, err := Direct(p, in, f); err == nil {
		t.Error("expected filter shape error")
	}
}

func TestGemmDims(t *testing.T) {
	p := Params{N: 8, H: 56, W: 56, C: 64, K: 128, FH: 3, FW: 3, Pad: 1, Stride: 1}
	if p.GemmM() != 8*56*56 {
		t.Errorf("M = %d", p.GemmM())
	}
	if p.GemmK() != 3*3*64 {
		t.Errorf("K = %d", p.GemmK())
	}
	if p.GemmN() != 128 {
		t.Errorf("N = %d", p.GemmN())
	}
	if p.MACs() != int64(p.GemmM())*int64(p.GemmK())*int64(p.GemmN()) {
		t.Error("MACs mismatch")
	}
}

func TestDuplicationFactor(t *testing.T) {
	// Fig. 1(b): 4x4 input -> 4x9 workspace: 36/16 = 2.25x.
	p := Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	if got := p.DuplicationFactor(); got != 2.25 {
		t.Errorf("duplication = %v, want 2.25", got)
	}
	// 3x3 stride-1 pad-1 same conv on HxW: workspace = H*W*9, input H*W -> 9x.
	p2 := Params{N: 1, H: 56, W: 56, C: 64, K: 64, FH: 3, FW: 3, Pad: 1, Stride: 1}
	if got := p2.DuplicationFactor(); got != 9 {
		t.Errorf("duplication = %v, want 9", got)
	}
}

func TestUniqueWorkspaceElems(t *testing.T) {
	// Fig. 6: every one of the 16 input elements is referenced.
	p := Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	if got := p.UniqueWorkspaceElems(); got != 16 {
		t.Errorf("unique = %d, want 16", got)
	}
	// Stride 3 with 2x2 filter on 7x7: outputs anchor at 0 and 3, covering
	// coordinates {0,1,3,4} per axis -> 4x4 referenced.
	p2 := Params{N: 1, H: 7, W: 7, C: 1, K: 1, FH: 2, FW: 2, Pad: 0, Stride: 3}
	if got := p2.UniqueWorkspaceElems(); got != 16 {
		t.Errorf("unique = %d, want 16", got)
	}
	// Channels and batch multiply.
	p3 := Params{N: 2, H: 4, W: 4, C: 3, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	if got := p3.UniqueWorkspaceElems(); got != 16*2*3 {
		t.Errorf("unique = %d, want 96", got)
	}
}

func TestTransposedShapes(t *testing.T) {
	// GAN TC1: 8x4x4x512 -> 8x8x8x256 with 256x5x5x512, pad 2, stride 2.
	p := Params{N: 1, H: 4, W: 4, C: 4, K: 3, FH: 5, FW: 5, Pad: 2, Stride: 2}
	in := tensor.New(1, 4, 4, 4)
	in.FillRandom(11, 1)
	f := tensor.New(3, 5, 5, 4)
	f.FillRandom(12, 1)
	out, err := Transposed(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 8 || out.W != 8 || out.C != 3 {
		t.Fatalf("transposed out shape %s", out.ShapeString())
	}
}

// Transposed convolution must equal direct convolution on the zero-dilated
// input with the flipped filter (the paper's lowering for GAN layers).
func TestTransposedEqualsDilatedDirect(t *testing.T) {
	for _, p := range []Params{
		{N: 2, H: 4, W: 4, C: 3, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 2},
		{N: 1, H: 3, W: 3, C: 2, K: 2, FH: 3, FW: 3, Pad: 1, Stride: 2},
		{N: 1, H: 5, W: 5, C: 1, K: 1, FH: 3, FW: 3, Pad: 2, Stride: 1},
	} {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(21, 1)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		f.FillRandom(22, 1)
		want, err := Transposed(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		dp, dil, flip, err := ToDirect(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		if dp != TransposedEquivalentParams(p) {
			t.Fatalf("equivalent params mismatch: %+v vs %+v", dp, TransposedEquivalentParams(p))
		}
		got, err := Direct(dp, dil, flip)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("shape %s vs %s", got.ShapeString(), want.ShapeString())
		}
		if d := got.MaxAbsDiff(want); d > 1e-4 {
			t.Errorf("%+v: transposed/dilated mismatch %v", p, d)
		}
	}
}

// Linearity property: conv(a*x) == a*conv(x).
func TestDirectLinearity(t *testing.T) {
	p := Params{N: 1, H: 6, W: 6, C: 3, K: 2, FH: 3, FW: 3, Pad: 1, Stride: 1}
	in := tensor.New(1, 6, 6, 3)
	in.FillRandom(31, 1)
	f := tensor.New(2, 3, 3, 3)
	f.FillRandom(32, 1)
	out1, _ := Direct(p, in, f)
	scaled := in.Clone()
	for i := range scaled.Data {
		scaled.Data[i] *= 2
	}
	out2, _ := Direct(p, scaled, f)
	for i := range out1.Data {
		if math.Abs(float64(out2.Data[i]-2*out1.Data[i])) > 1e-3 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, out2.Data[i], 2*out1.Data[i])
		}
	}
}

func TestWithBatch(t *testing.T) {
	p := Params{N: 8, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 1}
	q := p.WithBatch(32)
	if q.N != 32 || p.N != 8 {
		t.Fatal("WithBatch must copy")
	}
}
