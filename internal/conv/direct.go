package conv

import (
	"fmt"

	"duplo/internal/tensor"
)

// Direct computes the convolution of input (NHWC, shape p.N x p.H x p.W x
// p.C) with filters (stored as a K x FH x FW x C tensor, i.e. filter index in
// the N slot) by the sliding-filter method of Fig. 1(a). It returns the
// N x OutH x OutW x K output.
//
// This is the reference every accelerated method is validated against. It is
// deliberately the naive deeply-nested loop the paper describes; no blocking
// or vectorization.
func Direct(p Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkShapes(p, input, filters); err != nil {
		return nil, err
	}
	out := p.NewOutput()
	oh, ow := p.OutH(), p.OutW()
	for n := 0; n < p.N; n++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for k := 0; k < p.K; k++ {
					var acc float32
					for fy := 0; fy < p.FH; fy++ {
						iy := oy*p.Stride + fy - p.Pad
						if iy < 0 || iy >= p.H {
							continue
						}
						for fx := 0; fx < p.FW; fx++ {
							ix := ox*p.Stride + fx - p.Pad
							if ix < 0 || ix >= p.W {
								continue
							}
							for c := 0; c < p.C; c++ {
								acc += input.At(n, iy, ix, c) * filters.At(k, fy, fx, c)
							}
						}
					}
					out.Set(n, oy, ox, k, acc)
				}
			}
		}
	}
	return out, nil
}

func checkShapes(p Params, input, filters *tensor.Tensor) error {
	if input.N != p.N || input.H != p.H || input.W != p.W || input.C != p.C {
		return fmt.Errorf("conv: input shape %s does not match params %v", input.ShapeString(), p)
	}
	if filters.N != p.K || filters.H != p.FH || filters.W != p.FW || filters.C != p.C {
		return fmt.Errorf("conv: filter shape %s does not match params %v", filters.ShapeString(), p)
	}
	return nil
}
