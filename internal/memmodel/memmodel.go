// Package memmodel computes the memory footprint of each convolution method
// — the quantities behind Fig. 3 of the paper (relative memory usage over
// direct convolution) and the implicit-GEMM comparison of §II-C.
//
// Footprints are exact elementwise accounting (no simulation): the sizes of
// every buffer a method materializes beyond the input, filter and output
// tensors that all methods share.
package memmodel

import (
	"duplo/internal/conv"
	"duplo/internal/fftconv"
	"duplo/internal/lowering"
	"duplo/internal/winograd"
)

// Method enumerates the compared convolution implementations of Fig. 2/3.
type Method int

const (
	Direct Method = iota
	GEMM          // explicit lowering, CUDA cores
	Winograd
	FFT
	GEMMTensorCore     // explicit lowering, tensor cores (half precision)
	WinogradTensorCore // Winograd with tensor-core element products
	ImplicitGEMM       // lazy lowering through shared memory (§II-C)
)

// String names the method like the figure legends.
func (m Method) String() string {
	switch m {
	case Direct:
		return "Direct"
	case GEMM:
		return "GEMM"
	case Winograd:
		return "Winograd"
	case FFT:
		return "FFT"
	case GEMMTensorCore:
		return "GEMM_TC"
	case WinogradTensorCore:
		return "Winograd_TC"
	case ImplicitGEMM:
		return "ImplicitGEMM"
	}
	return "?"
}

// Methods returns the Fig. 2/3 presentation order.
func Methods() []Method {
	return []Method{GEMM, Winograd, FFT, GEMMTensorCore, WinogradTensorCore}
}

// Applicable reports whether the method supports the layer (§II-A: Winograd
// needs 3x3 unit-stride filters; FFT needs unit stride). Inapplicable
// combinations are the missing bars of Fig. 2/3.
func Applicable(m Method, p conv.Params) bool {
	switch m {
	case Winograd, WinogradTensorCore:
		return winograd.Applicable(p)
	case FFT:
		return fftconv.Applicable(p)
	default:
		return true
	}
}

// elemSize returns the working element size in bytes: tensor-core methods
// hold half-precision operands, everything else fp32.
func elemSize(m Method) int64 {
	switch m {
	case GEMMTensorCore, WinogradTensorCore, ImplicitGEMM:
		return 2
	default:
		return 4
	}
}

// baseBytes is the footprint every method shares: input, filters, output.
func baseBytes(p conv.Params, es int64) int64 {
	in := p.InputElems()
	f := int64(p.K) * int64(p.FH) * int64(p.FW) * int64(p.C)
	out := int64(p.N) * int64(p.OutH()) * int64(p.OutW()) * int64(p.K)
	return (in + f + out) * es
}

// Bytes returns the total device-memory footprint of the method on layer p.
// It returns 0 for inapplicable combinations.
func Bytes(m Method, p conv.Params) int64 {
	if !Applicable(m, p) {
		return 0
	}
	es := elemSize(m)
	b := baseBytes(p, es)
	switch m {
	case Direct:
		return b
	case GEMM, GEMMTensorCore:
		// The explicit workspace (K-padded for the tensor-core variant).
		kd := int64(p.GemmK())
		if m == GEMMTensorCore {
			kd = int64(lowering.RoundUp(p.GemmK(), lowering.Tile))
		}
		return b + int64(p.GemmM())*kd*es
	case ImplicitGEMM:
		// Lazily lowered: only a per-CTA shared-memory staging buffer per
		// SM, negligible in global memory (§II-C: "saves the global memory
		// space"). Global footprint equals direct.
		return b
	case Winograd, WinogradTensorCore:
		return b + winograd.TransformElems(p)*es
	case FFT:
		return b + fftconv.TransformElems(p)*4 // complex stored as fp32 pairs
	}
	return 0
}

// RelativeUsage returns Bytes(m) / Bytes(Direct) — the Fig. 3 bar — or 0
// when inapplicable.
func RelativeUsage(m Method, p conv.Params) float64 {
	if !Applicable(m, p) {
		return 0
	}
	return float64(Bytes(m, p)) / float64(Bytes(Direct, p))
}

// ImplicitVsExplicitRatio returns explicit GEMM_TC bytes over implicit GEMM
// bytes — the §II-C claim that the implicit method uses ~8.8x less global
// memory.
func ImplicitVsExplicitRatio(p conv.Params) float64 {
	return float64(Bytes(GEMMTensorCore, p)) / float64(Bytes(ImplicitGEMM, p))
}
