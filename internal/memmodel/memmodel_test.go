package memmodel

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/workload"
)

func TestApplicability(t *testing.T) {
	s1 := conv.Params{N: 1, H: 8, W: 8, C: 4, K: 4, FH: 3, FW: 3, Pad: 1, Stride: 1}
	s2 := conv.Params{N: 1, H: 8, W: 8, C: 4, K: 4, FH: 3, FW: 3, Pad: 0, Stride: 2}
	f5 := conv.Params{N: 1, H: 8, W: 8, C: 4, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 1}
	if !Applicable(Winograd, s1) || Applicable(Winograd, s2) || Applicable(Winograd, f5) {
		t.Error("winograd applicability wrong")
	}
	if !Applicable(FFT, s1) || Applicable(FFT, s2) || !Applicable(FFT, f5) {
		t.Error("fft applicability wrong")
	}
	if !Applicable(GEMM, s2) || !Applicable(GEMMTensorCore, s2) || !Applicable(Direct, s2) {
		t.Error("GEMM methods must always apply")
	}
	// The paper's missing bars: the entire GAN (stride 2) and ResNet C1.
	for _, l := range workload.GAN {
		if Applicable(Winograd, l.GemmParams()) && l.Params.Stride != 1 {
			t.Errorf("%s should be Winograd-inapplicable", l.FullName())
		}
	}
	c1, _ := workload.Find("ResNet", "C1")
	if Applicable(Winograd, c1.Params) {
		t.Error("ResNet C1 (7x7) should be Winograd-inapplicable")
	}
}

func TestGEMMUsageIsDuplicationDriven(t *testing.T) {
	// 3x3 stride-1 same conv: workspace is 9x the input, so relative usage
	// must exceed the duplication but stay below 1 + 9*inputShare... just
	// pin the exact value against hand arithmetic.
	p := conv.Params{N: 1, H: 56, W: 56, C: 64, K: 64, FH: 3, FW: 3, Pad: 1, Stride: 1}
	in := int64(56 * 56 * 64)
	f := int64(64 * 3 * 3 * 64)
	out := int64(56 * 56 * 64)
	ws := int64(56*56) * int64(3*3*64)
	wantDirect := (in + f + out) * 4
	if got := Bytes(Direct, p); got != wantDirect {
		t.Fatalf("direct bytes %d, want %d", got, wantDirect)
	}
	if got := Bytes(GEMM, p); got != wantDirect+ws*4 {
		t.Fatalf("gemm bytes %d, want %d", got, wantDirect+ws*4)
	}
	rel := RelativeUsage(GEMM, p)
	if rel < 4 || rel > 6 {
		t.Fatalf("C2-like GEMM relative usage %v (expect ~5x)", rel)
	}
}

func TestRelativeUsageAverages(t *testing.T) {
	// Fig. 3 averages: GEMM ~9.7x, Winograd ~12.2x, FFT ~53.5x over the
	// applicable layers. Check our analytic model lands in the right
	// regime (same ordering, same order of magnitude).
	avg := func(m Method) float64 {
		s, n := 0.0, 0
		for _, l := range workload.AllLayers() {
			p := l.GemmParams()
			if !Applicable(m, p) {
				continue
			}
			s += RelativeUsage(m, p)
			n++
		}
		return s / float64(n)
	}
	gemm, wino, fft := avg(GEMM), avg(Winograd), avg(FFT)
	if !(gemm > 2 && gemm < 25) {
		t.Errorf("GEMM avg usage %v out of regime (paper 9.7x)", gemm)
	}
	if !(wino > gemm*0.7) {
		t.Errorf("Winograd avg %v should be comparable to or above GEMM %v", wino, gemm)
	}
	if !(fft > wino && fft > 20) {
		t.Errorf("FFT avg %v should dominate (paper 53.5x)", fft)
	}
	t.Logf("avg usage: GEMM %.1fx (paper 9.7) Winograd %.1fx (12.2) FFT %.1fx (53.5)", gemm, wino, fft)
}

func TestTensorCoreUsesHalfPrecision(t *testing.T) {
	p := conv.Params{N: 2, H: 16, W: 16, C: 16, K: 16, FH: 3, FW: 3, Pad: 1, Stride: 1}
	// Same structure, half the element size (modulo K padding).
	if Bytes(GEMMTensorCore, p) >= Bytes(GEMM, p) {
		t.Error("tensor-core footprint should be smaller (half precision)")
	}
}

func TestImplicitGEMMSavings(t *testing.T) {
	// §II-C: implicit GEMM uses ~8.8x less global memory than explicit.
	var s float64
	var n int
	for _, l := range workload.AllLayers() {
		s += ImplicitVsExplicitRatio(l.GemmParams())
		n++
	}
	avg := s / float64(n)
	if avg < 3 || avg > 15 {
		t.Errorf("implicit-vs-explicit avg %v out of regime (paper 8.8x)", avg)
	}
	t.Logf("implicit GEMM saves %.1fx global memory (paper 8.8x)", avg)
}

func TestInapplicableIsZero(t *testing.T) {
	p := conv.Params{N: 1, H: 8, W: 8, C: 4, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 2}
	if Bytes(Winograd, p) != 0 || RelativeUsage(FFT, p) != 0 {
		t.Error("inapplicable methods must report zero")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range append(Methods(), Direct, ImplicitGEMM) {
		if m.String() == "?" || m.String() == "" {
			t.Errorf("method %d has no name", m)
		}
	}
	if len(Methods()) != 5 {
		t.Error("Fig. 2/3 compare five methods")
	}
}
