package energy

import (
	"testing"

	"duplo/internal/sim"
)

func fakeResult(duplo bool) sim.Result {
	var r sim.Result
	r.TensorLoads = 1000 * 16
	r.MMAs = 8000
	r.Stores = 800
	r.L1Accesses = 60000
	r.L2Accesses = 20000
	r.DRAMLines = 9000
	r.StoreLines = 800
	if duplo {
		r.LoadsEliminated = 9000
		r.LHB.Lookups = 14000
		r.LHB.Hits = 9000
		r.L1Accesses = 35000
		r.L2Accesses = 9000
		r.DRAMLines = 6000
	}
	return r
}

func TestEnergyBreakdownPositive(t *testing.T) {
	m := Default12nm()
	b := Energy(m, fakeResult(false))
	if b.OnChipNJ <= 0 || b.TotalNJ <= b.OnChipNJ {
		t.Fatalf("breakdown %+v", b)
	}
	if b.LHBNJ != 0 {
		t.Fatal("baseline must have zero LHB energy")
	}
	d := Energy(m, fakeResult(true))
	if d.LHBNJ <= 0 {
		t.Fatal("duplo must pay LHB energy")
	}
}

func TestOnChipSaving(t *testing.T) {
	m := Default12nm()
	s := OnChipSaving(m, fakeResult(false), fakeResult(true))
	if s <= 0 || s >= 1 {
		t.Fatalf("saving %v", s)
	}
	// Duplo pays the LHB but removes far more cache/RF traffic.
	if s < 0.05 {
		t.Fatalf("saving %v implausibly small for these counts", s)
	}
}

func TestLHBBitsAndArea(t *testing.T) {
	per, total := LHBBits(1024)
	if per != 61 {
		t.Fatalf("per-entry bits %d", per)
	}
	if total != 1024*61 {
		t.Fatalf("total bits %d", total)
	}
	m := Default12nm()
	ovh := AreaOverhead(m, 1024)
	// ~7.6KB SRAM vs 256KB register file: ~3%. The paper reports 0.77%
	// (their entry stores only 22 tag bits and their register file area is
	// denser than pure SRAM); same order of magnitude.
	if ovh <= 0 || ovh > 0.1 {
		t.Fatalf("area overhead %v out of regime", ovh)
	}
	// Bigger buffers cost proportionally more.
	if AreaOverhead(m, 2048) <= ovh {
		t.Fatal("area must grow with entries")
	}
}

func TestZeroBaseline(t *testing.T) {
	m := Default12nm()
	if OnChipSaving(m, sim.Result{}, sim.Result{}) != 0 {
		t.Fatal("zero baseline must yield zero saving")
	}
}
