// Package energy models on-chip energy and area implications of Duplo
// (§V-H), standing in for the paper's McPAT [21] evaluation.
//
// Energy is event-based: every counter the simulator produces (register
// accesses, LHB lookups, L1/L2 line accesses, DRAM line transfers, FEDP
// operations) is multiplied by a per-event energy drawn from published
// CACTI/McPAT-class numbers for a ~12nm GPU. The paper reports only
// relative deltas (34.1% on-chip energy reduction, 0.77% area overhead), so
// the shape depends on event-count ratios, which come from the simulator.
package energy

import "duplo/internal/sim"

// Model holds per-event energies in picojoules and SRAM area parameters.
type Model struct {
	// Per-event energies (pJ).
	RegAccessPJ float64 // one 32-bit register-file access per thread
	LHBLookupPJ float64 // one LHB probe (small direct-mapped SRAM)
	IDGenPJ     float64 // shift/mask + reciprocal-multiply ID pipeline
	L1AccessPJ  float64 // one 128B line access in the L1 (tag + data)
	L1TagPJ     float64 // a tag-only probe (Duplo's parallel lookup that is
	// cancelled on an LHB hit, §IV-B)
	L2AccessPJ float64 // one 128B line access in the L2
	DRAMLinePJ float64 // one 128B line transfer (off-chip, excluded
	// from the "on-chip" total like the paper's §V-H accounting; reported
	// separately).
	FEDPOpPJ float64 // one four-element dot product step

	// Area parameters.
	SRAMBytesPerMM2 float64 // SRAM density (bytes per mm^2)
	RegFileKBPerSM  int
}

// Default12nm returns the default energy/area model.
// Magnitudes follow the usual CACTI-class scaling: small SRAM probes are
// ~1-2pJ, big cache line accesses tens of pJ, DRAM line transfers ~1-2nJ.
func Default12nm() Model {
	return Model{
		RegAccessPJ:     1.2,
		LHBLookupPJ:     1.5,
		IDGenPJ:         0.6,
		L1AccessPJ:      60,
		L1TagPJ:         6,
		L2AccessPJ:      240,
		DRAMLinePJ:      2000,
		FEDPOpPJ:        2.0,
		SRAMBytesPerMM2: 2.2e6, // ~2.2 MB/mm^2 high-density SRAM at 12nm
		RegFileKBPerSM:  256,
	}
}

// Breakdown reports the energy of one simulation, in nanojoules.
type Breakdown struct {
	RegisterNJ float64
	LHBNJ      float64 // LHB lookups + ID generation (zero without Duplo)
	L1NJ       float64
	L2NJ       float64
	TensorNJ   float64 // FEDP compute energy (identical in both designs;
	// excluded from the §V-H basis, which counts "only on-chip components
	// (i.e., registers, caches, and detection unit of Duplo)")
	OnChipNJ    float64 // registers + LHB + L1 + L2 (the §V-H comparison basis)
	DRAMNJ      float64 // off-chip, reported separately
	TotalNJ     float64
	LoadsRemove uint64
}

// Energy computes the event-based breakdown from simulation stats.
func Energy(m Model, r sim.Result) Breakdown {
	var b Breakdown
	// Register file: every warp-level load/MMA/store reads or writes 32
	// threads' registers; eliminated loads still write the rename table
	// (counted in LHB) but skip the RF fill... they share the existing
	// registers, so only the original fill paid the RF write.
	warpRegEvents := float64(r.TensorLoads-r.LoadsEliminated)*32 +
		float64(r.MMAs)*32*4 + float64(r.Stores)*32*2
	b.RegisterNJ = warpRegEvents * m.RegAccessPJ / 1e3
	if r.LHB.Lookups > 0 {
		b.LHBNJ = float64(r.LHB.Lookups) * (m.LHBLookupPJ + m.IDGenPJ) / 1e3
	}
	// LHB hits cancel the parallel L1 lookup before the data array is
	// read: those probes cost tag energy only (§IV-B / §V-H).
	fullL1 := r.L1Accesses - r.LoadsEliminated
	if fullL1 < 0 {
		fullL1 = 0
	}
	b.L1NJ = (float64(fullL1)*m.L1AccessPJ + float64(r.LoadsEliminated)*m.L1TagPJ) / 1e3
	b.L2NJ = float64(r.L2Accesses) * m.L2AccessPJ / 1e3
	// A warp MMA is 16x16x16 = 4096 MACs = 1024 FEDP steps.
	b.TensorNJ = float64(r.MMAs) * 1024 * m.FEDPOpPJ / 1e3
	b.DRAMNJ = float64(r.DRAMLines+r.StoreLines) * m.DRAMLinePJ / 1e3
	b.OnChipNJ = b.RegisterNJ + b.LHBNJ + b.L1NJ + b.L2NJ
	b.TotalNJ = b.OnChipNJ + b.TensorNJ + b.DRAMNJ
	b.LoadsRemove = uint64(r.LoadsEliminated)
	return b
}

// OnChipSaving returns 1 - duplo/baseline on-chip energy — the §V-H 34.1%
// figure's counterpart.
func OnChipSaving(m Model, base, duplo sim.Result) float64 {
	b, d := Energy(m, base), Energy(m, duplo)
	if b.OnChipNJ == 0 {
		return 0
	}
	return 1 - d.OnChipNJ/b.OnChipNJ
}

// LHBBits returns the storage bits of one LHB entry and the whole buffer.
// An entry holds a tag (32-bit element ID + 10-bit batch ID + 8-bit PID),
// a 10-bit register ID and a valid bit (§IV-B, plus the hashed-index tag
// extension noted in internal/core).
func LHBBits(entries int) (perEntry, total int64) {
	perEntry = 32 + 10 + 8 + 10 + 1
	return perEntry, int64(entries) * perEntry
}

// AreaOverhead returns the LHB area as a fraction of the per-SM register
// file area — the §V-H 0.77% figure's counterpart (one LHB per SM).
func AreaOverhead(m Model, entries int) float64 {
	_, bits := LHBBits(entries)
	lhbBytes := float64(bits) / 8
	rfBytes := float64(m.RegFileKBPerSM) * 1024
	return lhbBytes / rfBytes
}
