// Package report renders aligned text tables and CSV series shared by the
// experiment binaries and benches. Every table/figure reproduction prints
// through this package so outputs are uniform and diffable.
package report

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Sink serializes progress lines from concurrent producers (the parallel
// experiment engine emits per-layer progress from worker goroutines). A nil
// *Sink is a valid no-op sink.
type Sink struct {
	mu   sync.Mutex
	emit func(string)
}

// NewSink wraps an emit function in a concurrency-safe sink.
func NewSink(emit func(string)) *Sink {
	if emit == nil {
		return nil
	}
	return &Sink{emit: emit}
}

// NewWriterSink builds a sink that writes one line per message to w.
func NewWriterSink(w io.Writer) *Sink {
	if w == nil {
		return nil
	}
	return &Sink{emit: func(s string) { fmt.Fprintln(w, s) }}
}

// Println emits one message; safe for concurrent use, no-op on a nil sink.
func (s *Sink) Println(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emit(msg)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title string
	// Note, when non-empty, renders as one trailing line under the rows
	// (e.g. the predicted-cell legend with the per-table max predicted
	// error). It is omitted from CSV output — cells carry their own
	// markers there — but carried on the JSON export (duploserved).
	Note    string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowCells appends pre-formatted cells.
func (t *Table) AddRowCells(cells []string) { t.rows = append(t.rows, cells) }

// Headers returns a copy of the column headers (for structured exports —
// duploserved streams tables as JSON rather than pre-rendered text).
func (t *Table) Headers() []string {
	return append([]string(nil), t.headers...)
}

// Rows returns a copy of the accumulated rows with their pre-formatted
// cells, in insertion order.
func (t *Table) Rows() [][]string {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return rows
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "=== %s ===\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(t.headers))
		for i := range t.headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintln(w, t.Note)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (for plotting).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.headers, ","))
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a signed percentage ("+12.3%").
func Pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// PctU formats a fraction as an unsigned percentage ("12.3%").
func PctU(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Ratio formats a speedup-style multiplier ("13.5x"); zero renders as "n/a"
// (the missing bars of Fig. 2/3).
func Ratio(f float64) string {
	if f == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", f)
}
