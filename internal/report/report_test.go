package report

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Layer", "Speedup")
	tb.AddRow("ResNet/C1", 1.25)
	tb.AddRow("YOLO/C6", "n/a")
	out := tb.String()
	if !strings.Contains(out, "=== Demo ===") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "ResNet/C1") || !strings.Contains(out, "1.25") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	// Alignment: header and first row start columns at the same offset.
	h := lines[1]
	r := lines[3]
	if strings.Index(h, "Speedup") != strings.Index(r, "1.25") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var b strings.Builder
	tb.CSV(&b)
	want := "a,b\n1,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "+12.3%" {
		t.Error(Pct(0.123))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Error(Pct(-0.05))
	}
	if PctU(0.5) != "50.0%" {
		t.Error(PctU(0.5))
	}
	if Ratio(13.54) != "13.5x" {
		t.Error(Ratio(13.54))
	}
	if Ratio(0) != "n/a" {
		t.Error("zero ratio must be n/a")
	}
}

func TestAddRowCells(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRowCells([]string{"y"})
	if !strings.Contains(tb.String(), "y") {
		t.Error("AddRowCells lost data")
	}
}

// Sink must serialize concurrent producers and tolerate nil receivers.
func TestSinkConcurrent(t *testing.T) {
	var mu sync.Mutex
	var got []string
	s := NewSink(func(m string) { mu.Lock(); got = append(got, m); mu.Unlock() })
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Println(fmt.Sprintf("line %d", i))
		}(i)
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("sink delivered %d/%d lines", len(got), n)
	}
	var nilSink *Sink
	nilSink.Println("dropped") // must not panic
	if NewSink(nil) != nil || NewWriterSink(nil) != nil {
		t.Error("nil-backed sinks must be nil (no-op)")
	}
}

func TestWriterSink(t *testing.T) {
	var b strings.Builder
	s := NewWriterSink(&b)
	s.Println("a")
	s.Println("b")
	if b.String() != "a\nb\n" {
		t.Errorf("writer sink output %q", b.String())
	}
}
