package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "Layer", "Speedup")
	tb.AddRow("ResNet/C1", 1.25)
	tb.AddRow("YOLO/C6", "n/a")
	out := tb.String()
	if !strings.Contains(out, "=== Demo ===") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "ResNet/C1") || !strings.Contains(out, "1.25") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	// Alignment: header and first row start columns at the same offset.
	h := lines[1]
	r := lines[3]
	if strings.Index(h, "Speedup") != strings.Index(r, "1.25") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	var b strings.Builder
	tb.CSV(&b)
	want := "a,b\n1,2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "+12.3%" {
		t.Error(Pct(0.123))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Error(Pct(-0.05))
	}
	if PctU(0.5) != "50.0%" {
		t.Error(PctU(0.5))
	}
	if Ratio(13.54) != "13.5x" {
		t.Error(Ratio(13.54))
	}
	if Ratio(0) != "n/a" {
		t.Error("zero ratio must be n/a")
	}
}

func TestAddRowCells(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRowCells([]string{"y"})
	if !strings.Contains(tb.String(), "y") {
		t.Error("AddRowCells lost data")
	}
}
