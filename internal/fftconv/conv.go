package fftconv

import (
	"fmt"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

// Applicable reports whether the FFT path supports the layer: unit stride
// only (§II-A limitations). Any filter size works.
func Applicable(p conv.Params) bool { return p.Stride == 1 }

// GridSize returns the power-of-two FFT grid edge for the layer: the padded
// input must fit without circular wrap-around of the correlation window.
func GridSize(p conv.Params) int {
	h := p.H + 2*p.Pad
	w := p.W + 2*p.Pad
	m := h
	if w > m {
		m = w
	}
	return NextPow2(m)
}

// Conv computes the convolution via the Fourier domain. Per (image, output
// channel): accumulate over input channels F(D_c)·conj(F(G_kc)), inverse
// transform once, and crop the valid correlation region.
func Conv(p conv.Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !Applicable(p) {
		return nil, fmt.Errorf("fftconv: inapplicable layer (stride %d)", p.Stride)
	}
	if input.N != p.N || input.H != p.H || input.W != p.W || input.C != p.C {
		return nil, fmt.Errorf("fftconv: input shape %s != params", input.ShapeString())
	}
	if filters.N != p.K || filters.H != p.FH || filters.W != p.FW || filters.C != p.C {
		return nil, fmt.Errorf("fftconv: filter shape %s != params", filters.ShapeString())
	}

	l := GridSize(p)
	out := p.NewOutput()
	oh, ow := p.OutH(), p.OutW()

	// Pre-transform all filter planes: FG[k][c].
	fg := make([][]*grid, p.K)
	for k := 0; k < p.K; k++ {
		fg[k] = make([]*grid, p.C)
		for c := 0; c < p.C; c++ {
			g := newGrid(l)
			for fy := 0; fy < p.FH; fy++ {
				for fx := 0; fx < p.FW; fx++ {
					g.re[fy*l+fx] = float64(filters.At(k, fy, fx, c))
				}
			}
			g.fft2d(false)
			fg[k][c] = g
		}
	}

	fin := make([]*grid, p.C)
	for n := 0; n < p.N; n++ {
		// Transform each padded input plane of this image.
		for c := 0; c < p.C; c++ {
			g := newGrid(l)
			for y := 0; y < p.H; y++ {
				for x := 0; x < p.W; x++ {
					g.re[(y+p.Pad)*l+(x+p.Pad)] = float64(input.At(n, y, x, c))
				}
			}
			g.fft2d(false)
			fin[c] = g
		}
		for k := 0; k < p.K; k++ {
			acc := newGrid(l)
			for c := 0; c < p.C; c++ {
				accumulateCorr(acc, fin[c], fg[k][c])
			}
			acc.fft2d(true)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					out.Set(n, oy, ox, k, float32(acc.re[oy*l+ox]))
				}
			}
		}
	}
	return out, nil
}

// TransformElems returns the number of complex Fourier-domain elements the
// method materializes (padded input planes, filter planes, and one
// accumulator per output channel), counted in real-scalar units (x2 for
// complex). This drives the FFT bars of Fig. 3, whose 53.5x average comes
// from padding small filters up to full power-of-two image grids.
func TransformElems(p conv.Params) int64 {
	if !Applicable(p) {
		return 0
	}
	l := int64(GridSize(p))
	planes := l * l
	inputG := int64(p.N) * int64(p.C) * planes
	filterG := int64(p.K) * int64(p.C) * planes
	outG := int64(p.N) * int64(p.K) * planes
	return 2 * (inputG + filterG + outG) // complex = 2 scalars
}
