// Package fftconv implements FFT-based convolution (Mathieu et al. [24]),
// the second transform-domain method the paper compares against.
//
// Input and filter planes are zero-padded to a power-of-two grid, moved to
// the Fourier domain with a radix-2 Cooley–Tukey FFT, multiplied point-wise
// (with conjugation, since convolutional layers compute cross-correlation),
// accumulated over channels, and inverse-transformed.
//
// Applicability follows §II-A: unit-stride filters only.
package fftconv

import (
	"math"
	"math/bits"
)

// fft performs an in-place radix-2 decimation-in-time FFT on x
// (len(x) must be a power of two). If inverse, computes the unscaled
// inverse transform (caller divides by N).
func fft(re, im []float64, inverse bool) {
	n := len(re)
	if n != len(im) || n&(n-1) != 0 {
		panic("fftconv: length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			cr, ci := 1.0, 0.0
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tr := re[j]*cr - im[j]*ci
				ti := re[j]*ci + im[j]*cr
				re[j], im[j] = re[i]-tr, im[i]-ti
				re[i], im[i] = re[i]+tr, im[i]+ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// grid is a square LxL complex grid stored as separate real/imag planes.
type grid struct {
	l      int
	re, im []float64
}

func newGrid(l int) *grid {
	return &grid{l: l, re: make([]float64, l*l), im: make([]float64, l*l)}
}

// fft2d transforms the grid in place (rows then columns).
func (g *grid) fft2d(inverse bool) {
	l := g.l
	// Rows.
	for r := 0; r < l; r++ {
		fft(g.re[r*l:(r+1)*l], g.im[r*l:(r+1)*l], inverse)
	}
	// Columns via gather/scatter.
	cr := make([]float64, l)
	ci := make([]float64, l)
	for c := 0; c < l; c++ {
		for r := 0; r < l; r++ {
			cr[r] = g.re[r*l+c]
			ci[r] = g.im[r*l+c]
		}
		fft(cr, ci, inverse)
		for r := 0; r < l; r++ {
			g.re[r*l+c] = cr[r]
			g.im[r*l+c] = ci[r]
		}
	}
	if inverse {
		scale := 1 / float64(l*l)
		for i := range g.re {
			g.re[i] *= scale
			g.im[i] *= scale
		}
	}
}

// accumulateCorr adds conj(F(filter)) * F(input) into acc, the Fourier-domain
// form of cross-correlation accumulation over channels.
func accumulateCorr(acc, in, filt *grid) {
	for i := range acc.re {
		// in * conj(filt)
		acc.re[i] += in.re[i]*filt.re[i] + in.im[i]*filt.im[i]
		acc.im[i] += in.im[i]*filt.re[i] - in.re[i]*filt.im[i]
	}
}

// NextPow2 returns the smallest power of two >= x (and >= 1).
func NextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(x - 1)))
}
