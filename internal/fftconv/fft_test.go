package fftconv

import (
	"math"
	"math/rand"
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

func TestNextPow2(t *testing.T) {
	cases := [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {224, 256}, {230, 256}, {257, 512}}
	for _, c := range cases {
		if got := NextPow2(c[0]); got != c[1] {
			t.Errorf("NextPow2(%d) = %d, want %d", c[0], c[1], got)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			orig[i] = re[i]
		}
		fft(re, im, false)
		fft(re, im, true)
		for i := range re {
			if math.Abs(re[i]/float64(n)-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip failed at %d", n, i)
			}
		}
	}
}

// Parseval: sum |x|^2 == (1/N) sum |X|^2.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	re := make([]float64, n)
	im := make([]float64, n)
	var eIn float64
	for i := range re {
		re[i] = rng.NormFloat64()
		eIn += re[i] * re[i]
	}
	fft(re, im, false)
	var eOut float64
	for i := range re {
		eOut += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(eOut/float64(n)-eIn) > 1e-8*eIn {
		t.Fatalf("parseval: %v vs %v", eOut/float64(n), eIn)
	}
}

// FFT of a delta is flat ones.
func TestDeltaSpectrum(t *testing.T) {
	n := 16
	re := make([]float64, n)
	im := make([]float64, n)
	re[0] = 1
	fft(re, im, false)
	for i := range re {
		if math.Abs(re[i]-1) > 1e-12 || math.Abs(im[i]) > 1e-12 {
			t.Fatalf("delta spectrum wrong at %d: %v+%vi", i, re[i], im[i])
		}
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-pow2 length")
		}
	}()
	fft(make([]float64, 3), make([]float64, 3), false)
}

func TestFFT2DRoundTrip(t *testing.T) {
	g := newGrid(8)
	rng := rand.New(rand.NewSource(3))
	orig := make([]float64, len(g.re))
	for i := range g.re {
		g.re[i] = rng.NormFloat64()
		orig[i] = g.re[i]
	}
	g.fft2d(false)
	g.fft2d(true)
	for i := range g.re {
		if math.Abs(g.re[i]-orig[i]) > 1e-9 || math.Abs(g.im[i]) > 1e-9 {
			t.Fatalf("2d round trip failed at %d", i)
		}
	}
}

func TestApplicable(t *testing.T) {
	if !Applicable(conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 1}) {
		t.Error("stride 1 should be applicable")
	}
	p2 := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 2}
	if Applicable(p2) {
		t.Error("stride 2 should be inapplicable")
	}
	if _, err := Conv(p2, tensor.New(1, 4, 4, 1), tensor.New(1, 3, 3, 1)); err == nil {
		t.Error("Conv should reject stride 2")
	}
}

func TestConvMatchesDirect(t *testing.T) {
	layers := []conv.Params{
		{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1},
		{N: 2, H: 8, W: 8, C: 3, K: 4, FH: 3, FW: 3, Pad: 1, Stride: 1},
		{N: 1, H: 6, W: 9, C: 2, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 1},
		{N: 1, H: 10, W: 10, C: 2, K: 3, FH: 7, FW: 7, Pad: 3, Stride: 1},
	}
	for _, p := range layers {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(81, 1)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		f.FillRandom(82, 0.5)
		want, err := conv.Direct(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Conv(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("%v: shape %s vs %s", p, got.ShapeString(), want.ShapeString())
		}
		if d := got.RelErr(want); d > 1e-4 {
			t.Errorf("%v: fft conv rel err %v", p, d)
		}
	}
}

func TestGridSizeAndTransformElems(t *testing.T) {
	p := conv.Params{N: 1, H: 6, W: 6, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	if GridSize(p) != 8 {
		t.Fatalf("grid %d", GridSize(p))
	}
	// input 1*1*64, filter 1*1*64, out 1*1*64 complex -> 2*192 = 384.
	if got := TransformElems(p); got != 384 {
		t.Errorf("TransformElems = %d, want 384", got)
	}
	if TransformElems(conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Stride: 2}) != 0 {
		t.Error("inapplicable should be 0")
	}
}

func BenchmarkFFT2D64(b *testing.B) {
	g := newGrid(64)
	for i := range g.re {
		g.re[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.fft2d(false)
		g.fft2d(true)
	}
}
