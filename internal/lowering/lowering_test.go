package lowering

import (
	"math/rand"
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

var fig1Params = conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}

func fig1Input() *tensor.Tensor {
	return tensor.FromSlice(1, 4, 4, 1, []float32{
		3, 1, 4, -2,
		1, 0, -2, 1,
		4, -2, 4, 0,
		-2, 1, 0, 3,
	})
}

func fig1Filter() *tensor.Tensor {
	return tensor.FromSlice(1, 3, 3, 1, []float32{
		1, 0, 3,
		-3, -1, 2,
		0, 2, 1,
	})
}

// The workspace of Fig. 1(b): the 4x4 input expands to the exact 4x9 matrix
// printed in the paper.
func TestWorkspaceMatchesFig1(t *testing.T) {
	l, err := Lower(fig1Params, fig1Input(), fig1Filter())
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float32{
		{3, 1, 4, 1, 0, -2, 4, -2, 4},
		{1, 4, -2, 0, -2, 1, -2, 4, 0},
		{1, 0, -2, 4, -2, 4, -2, 1, 0},
		{0, -2, 1, -2, 4, 0, 1, 0, 3},
	}
	if l.M != 4 || l.K != 9 {
		t.Fatalf("dims M=%d K=%d", l.M, l.K)
	}
	for r := range want {
		for c := range want[r] {
			if got := l.A.At(r, c); got != want[r][c] {
				t.Errorf("A[%d][%d] = %v, want %v", r, c, got, want[r][c])
			}
		}
	}
	// Padding columns must be zero.
	if l.KPad != 16 {
		t.Fatalf("KPad = %d", l.KPad)
	}
	for r := 0; r < l.M; r++ {
		for c := l.K; c < l.KPad; c++ {
			if l.A.Data[r*l.A.Stride+c] != 0 {
				t.Fatalf("padding A[%d][%d] nonzero", r, c)
			}
		}
	}
}

func TestFilterMatrix(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 2, K: 3, FH: 2, FW: 2, Pad: 0, Stride: 1}
	filters := tensor.New(3, 2, 2, 2)
	filters.FillSequential()
	in := tensor.New(1, 4, 4, 2)
	l, err := Lower(p, in, filters)
	if err != nil {
		t.Fatal(err)
	}
	// B[(fy*FW+fx)*C+ch][k] == filters.At(k, fy, fx, ch)
	for fy := 0; fy < 2; fy++ {
		for fx := 0; fx < 2; fx++ {
			for ch := 0; ch < 2; ch++ {
				kr := (fy*2+fx)*2 + ch
				for k := 0; k < 3; k++ {
					if got := l.B.At(kr, k); got != filters.At(k, fy, fx, ch) {
						t.Fatalf("B[%d][%d] = %v, want %v", kr, k, got, filters.At(k, fy, fx, ch))
					}
				}
			}
		}
	}
	if l.NPad != 16 {
		t.Fatalf("NPad = %d", l.NPad)
	}
}

// Every workspace entry equals the input element SourceElem says it came
// from (or zero for padding halo).
func TestWorkspaceSourceConsistency(t *testing.T) {
	for _, p := range []conv.Params{
		{N: 2, H: 5, W: 5, C: 3, K: 2, FH: 3, FW: 3, Pad: 1, Stride: 1},
		{N: 1, H: 8, W: 8, C: 2, K: 2, FH: 3, FW: 3, Pad: 0, Stride: 2},
		{N: 2, H: 6, W: 6, C: 4, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 2},
	} {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(7, 1)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		l, err := Lower(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < l.M; r++ {
			for c := 0; c < l.K; c++ {
				img, iy, ix, ch, ok := SourceElem(p, r, c)
				got := l.A.At(r, c)
				if !ok {
					if got != 0 {
						t.Fatalf("%v: halo entry (%d,%d) = %v, want 0", p, r, c, got)
					}
					continue
				}
				if want := in.At(img, iy, ix, ch); got != want {
					t.Fatalf("%v: A[%d][%d] = %v, want in(%d,%d,%d,%d)=%v",
						p, r, c, got, img, iy, ix, ch, want)
				}
			}
		}
	}
}

// Property: entries with equal SourceElem hold equal values — the ground
// truth for the duplicate-identification scheme.
func TestDuplicateEntriesEqual(t *testing.T) {
	p := conv.Params{N: 1, H: 6, W: 6, C: 2, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	in := tensor.New(1, 6, 6, 2)
	in.FillRandom(9, 1)
	f := tensor.New(1, 3, 3, 2)
	l, _ := Lower(p, in, f)
	type src struct{ img, iy, ix, ch int }
	seen := map[src]float32{}
	dups := 0
	for r := 0; r < l.M; r++ {
		for c := 0; c < l.K; c++ {
			img, iy, ix, ch, ok := SourceElem(p, r, c)
			if !ok {
				continue
			}
			k := src{img, iy, ix, ch}
			if v, found := seen[k]; found {
				dups++
				if v != l.A.At(r, c) {
					t.Fatalf("duplicate entries differ for %+v", k)
				}
			} else {
				seen[k] = l.A.At(r, c)
			}
		}
	}
	if dups == 0 {
		t.Fatal("expected duplicates in a stride-1 workspace")
	}
}

func TestRowColRoundTrips(t *testing.T) {
	p := conv.Params{N: 3, H: 8, W: 6, C: 5, K: 2, FH: 3, FW: 2, Pad: 1, Stride: 2}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		row := rng.Intn(p.GemmM())
		img, oy, ox := RowToOutput(p, row)
		if back := img*(p.OutH()*p.OutW()) + oy*p.OutW() + ox; back != row {
			t.Fatalf("row %d -> (%d,%d,%d) -> %d", row, img, oy, ox, back)
		}
		col := rng.Intn(p.GemmK())
		fy, fx, ch := ColToTap(p, col)
		if back := (fy*p.FW+fx)*p.C + ch; back != col {
			t.Fatalf("col %d -> (%d,%d,%d) -> %d", col, fy, fx, ch, back)
		}
	}
}

func TestLayoutAddressing(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	l := NewLayout(p, 0x1000, 2)
	if l.KPad != 16 || l.M != 4 || l.K != 9 {
		t.Fatalf("layout %+v", l)
	}
	if l.Bytes() != 4*16*2 {
		t.Fatalf("bytes %d", l.Bytes())
	}
	addr := l.Addr(2, 5)
	if addr != 0x1000+uint64(2*16+5)*2 {
		t.Fatalf("addr %#x", addr)
	}
	r, c, ok := l.Coords(addr)
	if !ok || r != 2 || c != 5 {
		t.Fatalf("coords (%d,%d,%v)", r, c, ok)
	}
	if _, _, ok := l.Coords(0x0FFF); ok {
		t.Error("address below base should be outside")
	}
	if _, _, ok := l.Coords(l.Base + l.Bytes()); ok {
		t.Error("address at end should be outside")
	}
	if _, _, ok := l.Coords(addr + 1); ok {
		t.Error("unaligned address should fail")
	}
	if !l.Contains(l.Base) || l.Contains(l.Base+l.Bytes()) {
		t.Error("Contains boundary conditions")
	}
}

func TestRoundUp(t *testing.T) {
	cases := [][3]int{{0, 16, 0}, {1, 16, 16}, {16, 16, 16}, {17, 16, 32}, {147, 16, 160}}
	for _, c := range cases {
		if got := RoundUp(c[0], c[1]); got != c[2] {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestFillRowMatchesLower(t *testing.T) {
	p := conv.Params{N: 2, H: 5, W: 4, C: 3, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 2}
	in := tensor.New(p.N, p.H, p.W, p.C)
	in.FillRandom(13, 1)
	f := tensor.New(1, 3, 3, 3)
	l, _ := Lower(p, in, f)
	buf := make([]float32, p.GemmK())
	for r := 0; r < l.M; r++ {
		img, oy, ox := RowToOutput(p, r)
		FillRow(p, in, img, oy, ox, buf)
		for c, v := range buf {
			if l.A.At(r, c) != v {
				t.Fatalf("FillRow mismatch at row %d col %d", r, c)
			}
		}
	}
}
