package lowering

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

var benchP = conv.Params{N: 1, H: 32, W: 32, C: 16, K: 16, FH: 3, FW: 3, Pad: 1, Stride: 1}

func BenchmarkLower(b *testing.B) {
	in := tensor.New(benchP.N, benchP.H, benchP.W, benchP.C)
	in.FillRandom(1, 1)
	f := tensor.New(benchP.K, benchP.FH, benchP.FW, benchP.C)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lower(benchP, in, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGemmConv(b *testing.B) {
	in := tensor.New(benchP.N, benchP.H, benchP.W, benchP.C)
	in.FillRandom(1, 1)
	f := tensor.New(benchP.K, benchP.FH, benchP.FW, benchP.C)
	f.FillRandom(2, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GemmConv(benchP, in, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTensorCoreConv(b *testing.B) {
	p := conv.Params{N: 1, H: 16, W: 16, C: 16, K: 16, FH: 3, FW: 3, Pad: 1, Stride: 1}
	in := tensor.New(p.N, p.H, p.W, p.C)
	in.FillRandom(1, 1)
	f := tensor.New(p.K, p.FH, p.FW, p.C)
	f.FillRandom(2, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TensorCoreConv(p, in, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFillRow(b *testing.B) {
	in := tensor.New(benchP.N, benchP.H, benchP.W, benchP.C)
	in.FillRandom(1, 1)
	buf := make([]float32, benchP.GemmK())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FillRow(benchP, in, 0, i%benchP.OutH(), i%benchP.OutW(), buf)
	}
}
