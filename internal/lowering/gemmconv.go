package lowering

import (
	"duplo/internal/conv"
	"duplo/internal/gemm"
	"duplo/internal/tensor"
)

// GemmConv computes the convolution by explicit lowering followed by a
// blocked fp32 GEMM — the "GEMM-based convolution" of Fig. 1(b) running on
// conventional CUDA cores. The M x N GEMM result reshapes directly into the
// NHWC output because workspace rows are ordered (n, oy, ox) and columns are
// the K filters.
func GemmConv(p conv.Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	l, err := Lower(p, input, filters)
	if err != nil {
		return nil, err
	}
	d, err := gemm.Blocked(l.A, l.B)
	if err != nil {
		return nil, err
	}
	return reshapeToOutput(p, d, l.N), nil
}

// TensorCoreConv computes the convolution with the functional tensor-core
// GEMM emulation: half-precision operands, fp32 accumulation, 16x16x16 MMA
// steps (§II-B). Operand rounding makes the result differ from the fp32
// reference by the expected half-precision error, which the tests bound.
func TensorCoreConv(p conv.Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	l, err := Lower(p, input, filters)
	if err != nil {
		return nil, err
	}
	// Tile-align M; K and N are already padded by Lower.
	mp := RoundUp(l.M, Tile)
	a := l.A
	// View A through its padded pitch so Cols == KPad, then pad rows.
	av := &tensor.Matrix{Rows: a.Rows, Cols: l.KPad, Stride: a.Stride, Data: a.Data}
	ap := gemm.PadMatrix(av, mp, l.KPad)
	// View B through its padded pitch so Cols == NPad.
	bv := &tensor.Matrix{Rows: l.KPad, Cols: l.NPad, Stride: l.B.Stride, Data: l.B.Data}
	d, err := gemm.TensorCore(ap, bv)
	if err != nil {
		return nil, err
	}
	return reshapeToOutput(p, gemm.CropMatrix(d, l.M, l.N), l.N), nil
}

func reshapeToOutput(p conv.Params, d *tensor.Matrix, n int) *tensor.Tensor {
	out := p.NewOutput()
	for r := 0; r < p.GemmM(); r++ {
		copy(out.Data[r*n:(r+1)*n], d.Row(r)[:n])
	}
	return out
}
