package lowering

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

var testLayers = []conv.Params{
	{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1},   // Fig. 1
	{N: 2, H: 8, W: 8, C: 4, K: 8, FH: 3, FW: 3, Pad: 1, Stride: 1},   // ResNet-like
	{N: 1, H: 9, W: 9, C: 3, K: 4, FH: 3, FW: 3, Pad: 0, Stride: 2},   // strided
	{N: 2, H: 8, W: 8, C: 2, K: 3, FH: 5, FW: 5, Pad: 2, Stride: 2},   // GAN-like
	{N: 1, H: 12, W: 10, C: 5, K: 7, FH: 7, FW: 7, Pad: 3, Stride: 2}, // ResNet C1-like
	{N: 1, H: 6, W: 6, C: 16, K: 16, FH: 1, FW: 1, Pad: 0, Stride: 1}, // pointwise
}

// GEMM-based convolution must equal direct convolution exactly up to fp32
// reassociation error.
func TestGemmConvMatchesDirect(t *testing.T) {
	for _, p := range testLayers {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(41, 1)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		f.FillRandom(42, 0.5)
		want, err := conv.Direct(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GemmConv(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("%v: shape %s vs %s", p, got.ShapeString(), want.ShapeString())
		}
		if d := got.RelErr(want); d > 1e-4 {
			t.Errorf("%v: GemmConv rel err %v", p, d)
		}
	}
}

// Tensor-core convolution agrees with direct convolution within
// half-precision tolerance. The error scales with sqrt(K); 1e-2 relative is
// comfortably above the expected bound for the small test layers and far
// below any wrong-result signature.
func TestTensorCoreConvMatchesDirect(t *testing.T) {
	for _, p := range testLayers {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(51, 0.5)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		f.FillRandom(52, 0.5)
		want, err := conv.Direct(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TensorCoreConv(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.RelErr(want); d > 1e-2 {
			t.Errorf("%v: TensorCoreConv rel err %v", p, d)
		}
	}
}

// Transposed convolutions computed through the lowering path (zero-dilated
// direct equivalent) must match the scatter reference — this is how GAN's TC
// layers run on the simulated tensor cores.
func TestTransposedViaGemm(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 3, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 2}
	in := tensor.New(p.N, p.H, p.W, p.C)
	in.FillRandom(61, 1)
	f := tensor.New(p.K, p.FH, p.FW, p.C)
	f.FillRandom(62, 0.5)
	want, err := conv.Transposed(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	dp, dil, flip, err := conv.ToDirect(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GemmConv(dp, dil, flip)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.RelErr(want); d > 1e-4 {
		t.Errorf("transposed-via-GEMM rel err %v", d)
	}
}
