// Package lowering implements im2col lowering of convolutions into GEMM
// workspaces (Fig. 1(b) and Fig. 4 of the paper).
//
// Layout, matching §III-C and Fig. 4 exactly:
//
//   - Workspace row index = n*(OutH*OutW) + oy*OutW + ox — one row per output
//     position, with batch images concatenated downwards.
//   - Workspace column index = fy*(FW*C) + fx*C + ch — the receptive field
//     flattened in NHWC order, with channels appended horizontally.
//
// The reduction depth K = FH*FW*C is padded to KPad (a multiple of the
// tensor-core tile size, 16) with zero columns, exactly as real tensor-core
// GEMM kernels require. The padded columns contain no duplicated input data,
// so the Duplo ID generator treats them as outside the duplication region.
package lowering

import (
	"fmt"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

// Tile is the tensor-core tile edge (16x16x16 MMA steps, §II-B).
const Tile = 16

// RoundUp returns the smallest multiple of m that is >= x.
func RoundUp(x, m int) int { return (x + m - 1) / m * m }

// Layout describes the address arithmetic of an explicit workspace in device
// memory. The Duplo ID generator (internal/core) consumes this plus the
// convolution parameters; it is the "convolution information" the compiler
// stores for the detection unit (§IV-A).
type Layout struct {
	Base     uint64 // starting address of the workspace region
	ElemSize int    // bytes per element (2 for half precision)
	M        int    // rows (N * OutH * OutW)
	K        int    // logical columns (FH * FW * C)
	KPad     int    // padded row pitch in elements (multiple of Tile)
}

// NewLayout builds the workspace layout for p at the given base address.
func NewLayout(p conv.Params, base uint64, elemSize int) Layout {
	return Layout{
		Base:     base,
		ElemSize: elemSize,
		M:        p.GemmM(),
		K:        p.GemmK(),
		KPad:     RoundUp(p.GemmK(), Tile),
	}
}

// Bytes returns the size of the workspace region in bytes.
func (l Layout) Bytes() uint64 {
	return uint64(l.M) * uint64(l.KPad) * uint64(l.ElemSize)
}

// Contains reports whether addr falls inside the workspace region. This is
// the region check the detection unit performs on every tensor-core-load
// (§IV-A): only workspace addresses are candidates for duplication.
func (l Layout) Contains(addr uint64) bool {
	return addr >= l.Base && addr < l.Base+l.Bytes()
}

// Addr returns the device address of workspace element (row, col).
func (l Layout) Addr(row, col int) uint64 {
	return l.Base + uint64(row*l.KPad+col)*uint64(l.ElemSize)
}

// Coords inverts Addr: it maps a workspace address to (row, col), where col
// is in padded coordinates [0, KPad). The second return is false if addr is
// outside the region or not element-aligned.
func (l Layout) Coords(addr uint64) (row, col int, ok bool) {
	if !l.Contains(addr) {
		return 0, 0, false
	}
	off := addr - l.Base
	if off%uint64(l.ElemSize) != 0 {
		return 0, 0, false
	}
	e := int(off / uint64(l.ElemSize))
	return e / l.KPad, e % l.KPad, true
}

// Lowered bundles the explicit workspace matrix A, the filter matrix B, and
// the GEMM dimensions for one convolution.
type Lowered struct {
	P conv.Params
	// A is M x K with row pitch KPad (padding columns zero).
	A *tensor.Matrix
	// B is KPad x NPad: B[(fy*FW+fx)*C+ch][k] = filter k's tap value.
	// Rows >= K and columns >= N are zero padding.
	B *tensor.Matrix
	// Logical and padded GEMM dims.
	M, K, N, KPad, NPad int
}

// Lower expands input into the explicit workspace matrix and builds the
// filter matrix. This is the "explicitly creating the workspace in global
// memory" form of §II-C, which is the paper's baseline kernel configuration.
func Lower(p conv.Params, input, filters *tensor.Tensor) (*Lowered, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if input.N != p.N || input.H != p.H || input.W != p.W || input.C != p.C {
		return nil, fmt.Errorf("lowering: input shape %s != params %v", input.ShapeString(), p)
	}
	if filters.N != p.K || filters.H != p.FH || filters.W != p.FW || filters.C != p.C {
		return nil, fmt.Errorf("lowering: filter shape %s != params %v", filters.ShapeString(), p)
	}
	m, k, n := p.GemmM(), p.GemmK(), p.GemmN()
	kp, np := RoundUp(k, Tile), RoundUp(n, Tile)
	a := tensor.NewMatrixStrided(m, k, kp)
	row := 0
	buf := make([]float32, k)
	for img := 0; img < p.N; img++ {
		for oy := 0; oy < p.OutH(); oy++ {
			for ox := 0; ox < p.OutW(); ox++ {
				FillRow(p, input, img, oy, ox, buf)
				copy(a.Row(row), buf)
				row++
			}
		}
	}
	b := tensor.NewMatrixStrided(kp, n, np)
	for fy := 0; fy < p.FH; fy++ {
		for fx := 0; fx < p.FW; fx++ {
			for c := 0; c < p.C; c++ {
				kr := (fy*p.FW+fx)*p.C + c
				for f := 0; f < n; f++ {
					b.Set(kr, f, filters.At(f, fy, fx, c))
				}
			}
		}
	}
	return &Lowered{P: p, A: a, B: b, M: m, K: k, N: n, KPad: kp, NPad: np}, nil
}

// FillRow writes the workspace row for output position (img, oy, ox) into
// dst (length >= GemmK). This is the lazy, tile-on-demand lowering used by
// implicit GEMM (§II-C): a CTA expands only the rows it needs into shared
// memory instead of materializing the whole workspace.
func FillRow(p conv.Params, input *tensor.Tensor, img, oy, ox int, dst []float32) {
	i := 0
	for fy := 0; fy < p.FH; fy++ {
		iy := oy*p.Stride + fy - p.Pad
		for fx := 0; fx < p.FW; fx++ {
			ix := ox*p.Stride + fx - p.Pad
			if iy < 0 || iy >= p.H || ix < 0 || ix >= p.W {
				for c := 0; c < p.C; c++ {
					dst[i] = 0
					i++
				}
				continue
			}
			base := input.Index(img, iy, ix, 0)
			copy(dst[i:i+p.C], input.Data[base:base+p.C])
			i += p.C
		}
	}
}

// RowToOutput maps a workspace row index back to its output coordinates.
func RowToOutput(p conv.Params, row int) (img, oy, ox int) {
	per := p.OutH() * p.OutW()
	img = row / per
	r := row % per
	return img, r / p.OutW(), r % p.OutW()
}

// ColToTap maps a workspace column index to its filter tap coordinates.
func ColToTap(p conv.Params, col int) (fy, fx, ch int) {
	ch = col % p.C
	t := col / p.C
	return t / p.FW, t % p.FW, ch
}

// SourceElem returns, for workspace entry (row, col), the input coordinates
// it was copied from, or ok=false when the entry reads the zero-padding halo.
// Two workspace entries are duplicates exactly when they map to the same
// (img, iy, ix, ch) — the ground truth the Duplo ID scheme must reproduce.
func SourceElem(p conv.Params, row, col int) (img, iy, ix, ch int, ok bool) {
	img, oy, ox := RowToOutput(p, row)
	fy, fx, ch := ColToTap(p, col)
	iy = oy*p.Stride + fy - p.Pad
	ix = ox*p.Stride + fx - p.Pad
	if iy < 0 || iy >= p.H || ix < 0 || ix >= p.W {
		return 0, 0, 0, 0, false
	}
	return img, iy, ix, ch, true
}
