package serving

import "testing"

func TestLatencyTableLookup(t *testing.T) {
	tbl := NewLatencyTable()
	tbl.Set("ResNet", 16, 1600)
	tbl.Set("ResNet", 8, 1000)
	tbl.Set("ResNet", 32, 2500)

	cases := []struct {
		batch int
		want  int64
	}{
		{1, 1000},  // rounds up to the smallest point
		{8, 1000},  // exact
		{9, 1600},  // rounds up
		{16, 1600}, // exact
		{17, 2500},
		{32, 2500},
		{64, 2500}, // saturates at the largest point
	}
	for _, tc := range cases {
		got, err := tbl.ServiceNanos("ResNet", tc.batch)
		if err != nil {
			t.Fatalf("ServiceNanos(ResNet, %d): %v", tc.batch, err)
		}
		if got != tc.want {
			t.Errorf("ServiceNanos(ResNet, %d) = %d, want %d", tc.batch, got, tc.want)
		}
	}
	if _, err := tbl.ServiceNanos("YOLO", 8); err == nil {
		t.Error("unknown class must error")
	}
	if _, err := tbl.ServiceNanos("ResNet", 0); err == nil {
		t.Error("non-positive batch must error")
	}
	if got := tbl.MaxBatch("ResNet"); got != 32 {
		t.Errorf("MaxBatch = %d, want 32", got)
	}
	// Set replaces in place and keeps points sorted.
	tbl.Set("ResNet", 16, 1700)
	if got, _ := tbl.ServiceNanos("ResNet", 16); got != 1700 {
		t.Errorf("replaced point = %d, want 1700", got)
	}
	pts := tbl.Points("ResNet")
	for i := 1; i < len(pts); i++ {
		if pts[i].Batch <= pts[i-1].Batch {
			t.Fatalf("points not sorted: %+v", pts)
		}
	}
}

func TestCyclesToNanos(t *testing.T) {
	// 1200 cycles at 1200 MHz is exactly 1 us.
	if got := CyclesToNanos(1200, 1200); got != 1000 {
		t.Errorf("CyclesToNanos(1200, 1200) = %d, want 1000", got)
	}
	// Truncating integer math: 1 cycle at 1200 MHz is 0.833 ns -> 0.
	if got := CyclesToNanos(1, 1200); got != 0 {
		t.Errorf("CyclesToNanos(1, 1200) = %d, want 0", got)
	}
	if got := CyclesToNanos(1000, 0); got != 0 {
		t.Errorf("zero clock must yield 0, got %d", got)
	}
}
