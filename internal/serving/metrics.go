package serving

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"duplo/internal/report"
	"duplo/internal/trace"
)

// ClassMetrics accumulates one request class's traffic accounting.
// Latencies are request sojourn times: completion minus arrival,
// queueing and batching delay included.
type ClassMetrics struct {
	Name string `json:"name"`

	Offered  int64 `json:"offered"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// Retried counts backed-off re-offers after queue-full sheds
	// (Config.RetryAfterNanos). Offered == Admitted + Rejected regardless:
	// a retry re-offers the same request, it is not new traffic.
	Retried   int64 `json:"retried"`
	Completed int64 `json:"completed"`
	// Good counts completions within the class SLO (all of them when the
	// SLO is 0).
	Good int64 `json:"good"`

	// Latency percentiles in nanoseconds (nearest-rank over completed
	// requests; 0 when nothing completed).
	P50Nanos  int64 `json:"p50_nanos"`
	P95Nanos  int64 `json:"p95_nanos"`
	P99Nanos  int64 `json:"p99_nanos"`
	MaxNanos  int64 `json:"max_nanos"`
	MeanNanos int64 `json:"mean_nanos"`

	latencies []int64
}

// QueueSample is one queue-depth observation (in-service requests
// included) — the cluster-level time series.
type QueueSample struct {
	AtNanos int64 `json:"at_nanos"`
	Depths  []int `json:"depths"`
	Total   int   `json:"total"`
}

// BatchSpan is one formed batch's service interval on one chip.
type BatchSpan struct {
	Chip       int    `json:"chip"`
	Class      string `json:"class"`
	Size       int    `json:"size"`
	StartNanos int64  `json:"start_nanos"`
	DurNanos   int64  `json:"dur_nanos"`
}

// Metrics is one cluster simulation's complete result.
type Metrics struct {
	Chips        int    `json:"chips"`
	Policy       string `json:"policy"`
	Seed         int64  `json:"seed"`
	HorizonNanos int64  `json:"horizon_nanos"`
	// MakespanNanos is when the last admitted request completed (>= the
	// horizon whenever anything was still in flight at it).
	MakespanNanos int64 `json:"makespan_nanos"`

	// Events counts processed DES events (arrivals + completions +
	// samples) — the event-loop throughput denominator for benches.
	Events int64 `json:"events"`
	// BatchedRequests sums formed batch sizes; BatchedRequests/Batches
	// ratios above 1 mean batching engaged.
	BatchedRequests int64 `json:"batched_requests"`
	Batches         int64 `json:"batches"`

	Offered   int64 `json:"offered"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Retried   int64 `json:"retried"`
	Completed int64 `json:"completed"`
	Good      int64 `json:"good"`

	// OfferedPerSec and GoodputPerSec are rates over the horizon (not the
	// makespan: the horizon is the window traffic was offered in).
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`

	// MeanUtilization averages busy-time fractions over chips and the
	// makespan.
	MeanUtilization float64 `json:"mean_utilization"`

	// MeanQueueDepth is the time-weighted mean of in-system requests
	// (queued + in service) over the makespan; MaxQueueDepth is the
	// deepest any single chip's wait queue got.
	MeanQueueDepth float64 `json:"mean_queue_depth"`
	MaxQueueDepth  int     `json:"max_queue_depth"`

	Classes      []ClassMetrics `json:"classes"`
	QueueSamples []QueueSample  `json:"queue_samples,omitempty"`
	// BatchSpans is the per-batch activity record (Config.RecordSpans).
	BatchSpans []BatchSpan `json:"batch_spans,omitempty"`

	chipBusyNanos []int64
}

// latencyPool recycles the per-class latency sample slices between runs.
// A run appends one sample per completed request and finish discards the
// slice after folding it into percentiles; without the pool every run
// regrows that capacity from scratch (sweeps and benches run thousands of
// configs back to back).
var latencyPool = sync.Pool{New: func() interface{} { return new([]int64) }}

func newMetrics(cfg Config) *Metrics {
	m := &Metrics{
		Chips:        cfg.Chips,
		Policy:       cfg.Policy.String(),
		Seed:         cfg.Seed,
		HorizonNanos: cfg.HorizonNanos,
		Classes:      make([]ClassMetrics, len(cfg.Classes)),
	}
	for i, cl := range cfg.Classes {
		m.Classes[i].Name = cl.Name
		m.Classes[i].latencies = (*latencyPool.Get().(*[]int64))[:0]
	}
	return m
}

// finish folds the per-class latency samples into percentiles and the
// cluster totals. All reductions run in class/chip index order, so the
// finished metrics are a pure function of the config.
func (m *Metrics) finish(makespan int64) {
	if makespan < m.HorizonNanos {
		makespan = m.HorizonNanos
	}
	m.MakespanNanos = makespan
	for i := range m.Classes {
		c := &m.Classes[i]
		m.Offered += c.Offered
		m.Admitted += c.Admitted
		m.Rejected += c.Rejected
		m.Retried += c.Retried
		m.Completed += c.Completed
		m.Good += c.Good
		if len(c.latencies) > 0 {
			slices.Sort(c.latencies)
			var sum int64
			for _, v := range c.latencies {
				sum += v
			}
			c.P50Nanos = percentile(c.latencies, 0.50)
			c.P95Nanos = percentile(c.latencies, 0.95)
			c.P99Nanos = percentile(c.latencies, 0.99)
			c.MaxNanos = c.latencies[len(c.latencies)-1]
			c.MeanNanos = sum / int64(len(c.latencies))
		}
		if c.latencies != nil {
			buf := c.latencies[:0]
			latencyPool.Put(&buf)
			c.latencies = nil
		}
	}
	horizonSec := float64(m.HorizonNanos) / 1e9
	m.OfferedPerSec = float64(m.Offered) / horizonSec
	m.GoodputPerSec = float64(m.Good) / horizonSec
	var busy float64
	for _, b := range m.chipBusyNanos {
		busy += float64(b)
	}
	if m.Chips > 0 && makespan > 0 {
		m.MeanUtilization = busy / (float64(makespan) * float64(m.Chips))
	}
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ms converts nanoseconds to milliseconds for rendering.
func Ms(nanos int64) float64 { return float64(nanos) / 1e6 }

// QueueDepthTable renders the queue-depth time series as a report.Table
// (CSV-exportable via report.Table.CSV): one row per sample, one column
// per chip plus the total.
func (m *Metrics) QueueDepthTable() *report.Table {
	headers := []string{"t_ms"}
	for i := 0; i < m.Chips; i++ {
		headers = append(headers, fmt.Sprintf("chip%d", i))
	}
	headers = append(headers, "total")
	t := report.NewTable(fmt.Sprintf("Queue depth over time (%d chips, policy=%s, seed=%d)", m.Chips, m.Policy, m.Seed), headers...)
	for _, s := range m.QueueSamples {
		row := []string{fmt.Sprintf("%.3f", Ms(s.AtNanos))}
		for _, d := range s.Depths {
			row = append(row, fmt.Sprint(d))
		}
		row = append(row, fmt.Sprint(s.Total))
		t.AddRowCells(row)
	}
	return t
}

// WriteTimeline exports the cluster run as a Chrome trace-event /
// Perfetto timeline through the shared internal/trace span vocabulary:
// one track per chip carrying its batch spans (Config.RecordSpans), plus
// queue-depth counter tracks from the sampled series
// (Config.SampleEveryNanos). Timestamps are ns/1000 of simulated time,
// so 1 us of trace time = 1 us simulated; only relative durations are
// meaningful.
func (m *Metrics) WriteTimeline(w io.Writer) error {
	tl := trace.NewTimeline("duplo-serving")
	tracks := make([]int, m.Chips)
	for i := range tracks {
		tracks[i] = tl.Track(fmt.Sprintf("chip %d", i))
	}
	for _, b := range m.BatchSpans {
		tl.SpanArg(tracks[b.Chip], fmt.Sprintf("%s x%d", b.Class, b.Size),
			b.StartNanos/1000, b.DurNanos/1000, "batch_size", int64(b.Size))
	}
	for _, s := range m.QueueSamples {
		ts := s.AtNanos / 1000
		for i, d := range s.Depths {
			tl.Counter(fmt.Sprintf("chip%d depth", i), ts, float64(d))
		}
		tl.Counter("total depth", ts, float64(s.Total))
	}
	return tl.Write(w)
}

// Summary renders the cluster totals as one deterministic line (the
// determinism tests compare these byte-for-byte).
func (m *Metrics) Summary() string {
	return fmt.Sprintf("chips=%d policy=%s seed=%d offered=%d admitted=%d rejected=%d retried=%d completed=%d good=%d goodput=%.3f/s util=%.4f events=%d batches=%d batched=%d",
		m.Chips, m.Policy, m.Seed, m.Offered, m.Admitted, m.Rejected, m.Retried, m.Completed, m.Good,
		m.GoodputPerSec, m.MeanUtilization, m.Events, m.Batches, m.BatchedRequests)
}
