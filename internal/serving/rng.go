// Package serving is a deterministic discrete-event simulator of a
// multi-chip serving cluster. Request service times come from the
// cycle-accurate per-layer simulator through a LatencyTable (built by
// internal/experiments from Runner results), so a single traffic-level
// experiment answers "what does a per-layer Duplo speedup buy at cluster
// scale — p99 latency and goodput under real arrival processes?".
//
// Everything in this package is single-threaded and integer-clocked
// (nanoseconds): given a fixed Config.Seed, a simulation's metrics are
// byte-identical across runs, GOMAXPROCS values, and hosts. The
// parallelism lives one layer down, in the experiment engine that fills
// the latency table (itself byte-identical at any worker count).
package serving

import (
	"math"
)

// RNG is a deterministic splitmix64 pseudo-random generator. It is
// deliberately not seeded from math/rand: the serving simulator's
// determinism contract ("same seed ⇒ byte-identical metrics") must not
// depend on the standard library's generator staying stable across Go
// releases.
type RNG struct {
	state uint64

	// Box–Muller produces normals in pairs; the spare is cached so a
	// normal draw consumes a deterministic number of uniforms.
	hasSpare bool
	spare    float64
}

// splitmix64 advances s and returns the next output of Vigna's
// splitmix64, the canonical 64-bit mixer.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// DeriveRNG returns a generator for an independent substream of seed,
// labelled by name (e.g. one stream per request class). The label is
// folded in with FNV-1a so distinct labels decorrelate even for adjacent
// seeds.
func DeriveRNG(seed int64, label string) *RNG {
	const (
		fnvOffset = 1469598103934665603
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	s := uint64(seed)
	// Mix the seed before folding the label hash in, so seed 0 and an
	// empty label do not collapse to the zero state.
	splitmix64(&s)
	return &RNG{state: s ^ h}
}

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 { return splitmix64(&r.state) }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// open returns a uniform sample in (0, 1], safe as a log argument.
func (r *RNG) open() float64 { return 1 - r.Float64() }

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u1 := r.open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}
