package serving

import (
	"fmt"
	"math"
)

// Policy selects how arriving requests are routed to chips.
type Policy int

const (
	// RoundRobin cycles through the chips in index order.
	RoundRobin Policy = iota
	// JoinShortestQueue routes to the chip with the fewest requests
	// queued or in service (ties break to the lowest index).
	JoinShortestQueue
	// LeastLoaded routes to the chip with the least estimated outstanding
	// work in nanoseconds — remaining service of the in-flight batch plus
	// a batch-of-one estimate per queued request (ties break low).
	LeastLoaded
)

// String returns the policy's CLI/table name.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case JoinShortestQueue:
		return "jsq"
	case LeastLoaded:
		return "least"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses a CLI/table policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr", "round-robin":
		return RoundRobin, nil
	case "jsq":
		return JoinShortestQueue, nil
	case "least", "least-loaded":
		return LeastLoaded, nil
	}
	return 0, fmt.Errorf("serving: unknown routing policy %q (want rr, jsq, or least)", s)
}

// Policies lists every routing policy in presentation order.
func Policies() []Policy { return []Policy{RoundRobin, JoinShortestQueue, LeastLoaded} }

// Class is one request class: a named workload (a LatencyTable class, so
// typically a network like "ResNet") with its own arrival process and SLO.
type Class struct {
	// Name keys the LatencyTable.
	Name string
	// Arrival is the inter-arrival distribution of this class's stream.
	Arrival Dist
	// SLONanos is the per-request latency objective: a completion within
	// it counts toward goodput. 0 means every completion is good.
	SLONanos int64
}

// Config assembles one cluster simulation.
type Config struct {
	// Chips is the number of serving instances.
	Chips int
	// Policy routes arrivals to chips.
	Policy Policy
	// MaxBatch caps batch formation (0 = 1: no batching). Formed batches
	// look their service time up in Table, rounding up to the nearest
	// measured batch point.
	MaxBatch int
	// QueueCap bounds each chip's queue; an arrival routed to a full chip
	// is rejected (admission control). 0 = unbounded.
	QueueCap int
	// RetryAfterNanos, when positive, models shed clients that honor a
	// Retry-After hint instead of vanishing: a queue-full offer backs off
	// this long and re-offers itself, up to MaxRetries times, before it
	// finally counts as Rejected. 0 (the default) keeps the original
	// immediate-rejection semantics and byte-identical metrics. Latency
	// for an eventually-admitted retry is measured from its first offer,
	// so retry queueing shows up in the percentiles like any other wait.
	RetryAfterNanos int64
	// MaxRetries bounds re-offers per shed request (meaningful only with
	// RetryAfterNanos > 0). The invariant Offered == Admitted + Rejected
	// holds at any setting: retries are re-offers of the same request,
	// counted separately in Retried.
	MaxRetries int
	// HorizonNanos is how long arrivals are generated. The loop then
	// drains: every admitted request completes and is measured.
	HorizonNanos int64
	// Seed fixes every random stream. Same seed ⇒ byte-identical metrics.
	Seed int64
	// Classes are the request classes (at least one).
	Classes []Class
	// Table provides service times (required).
	Table *LatencyTable
	// SampleEveryNanos enables the queue-depth time series at this period
	// (0 = off).
	SampleEveryNanos int64
	// RecordSpans keeps one BatchSpan per formed batch for the Perfetto
	// timeline export (off by default: a long run forms many batches).
	RecordSpans bool
}

// Validate rejects a config the event loop cannot run deterministically
// to completion.
func (c Config) Validate() error {
	if c.Chips <= 0 {
		return fmt.Errorf("serving: Chips must be positive, got %d", c.Chips)
	}
	if c.HorizonNanos <= 0 {
		return fmt.Errorf("serving: HorizonNanos must be positive, got %d", c.HorizonNanos)
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serving: MaxBatch must be non-negative, got %d", c.MaxBatch)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("serving: QueueCap must be non-negative, got %d", c.QueueCap)
	}
	if c.RetryAfterNanos < 0 {
		return fmt.Errorf("serving: RetryAfterNanos must be non-negative, got %d", c.RetryAfterNanos)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("serving: MaxRetries must be non-negative, got %d", c.MaxRetries)
	}
	if c.Table == nil {
		return fmt.Errorf("serving: Config.Table is required")
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("serving: at least one request class is required")
	}
	for i, cl := range c.Classes {
		if cl.Name == "" {
			return fmt.Errorf("serving: class %d has no name", i)
		}
		if cl.Arrival == nil {
			return fmt.Errorf("serving: class %q has no arrival distribution", cl.Name)
		}
		if err := cl.Arrival.Validate(); err != nil {
			return fmt.Errorf("serving: class %q: %w", cl.Name, err)
		}
		if cl.SLONanos < 0 {
			return fmt.Errorf("serving: class %q SLO must be non-negative, got %d", cl.Name, cl.SLONanos)
		}
		// Probe the table now so a missing class fails at configuration
		// time, not mid-simulation.
		if _, err := c.Table.ServiceNanos(cl.Name, 1); err != nil {
			return err
		}
	}
	return nil
}

// request is one admitted request in flight through the cluster.
type request struct {
	class   int // index into Config.Classes
	arrival int64
}

// chip is one serving instance's state.
type chip struct {
	queue []request
	// queuedEstNanos is the batch-of-one service estimate summed over the
	// queue (LeastLoaded's bookkeeping; maintained incrementally).
	queuedEstNanos int64
	busy           bool
	busyUntil      int64
	batch          []request
	busyNanos      int64 // total time spent serving (utilization)
	batches        int64
	maxDepth       int
}

// event kinds, in tie-break order: at equal timestamps, completions
// precede arrivals precede retried offers precede samples (a freed chip
// sees the queue state before a simultaneous arrival routes, fresh
// traffic beats backed-off traffic to a contested slot, and samples
// observe the settled state). Remaining ties break on sequence number —
// insertion order — so the schedule is a pure function of the config.
const (
	evComplete = iota
	evArrival
	evRetry
	evSample
)

type event struct {
	at   int64
	seq  int64
	arr  int64 // evRetry: the retried request's original offer time
	who  int32 // chip (evComplete) or class (evArrival/evRetry)
	aux  int32 // evRetry: re-offers taken so far
	kind uint8
}

// eventHeap is a hand-rolled binary min-heap of events. container/heap
// would box every event into an interface{} on each Push and Pop — two heap
// allocations per DES event, the dominant cost of the loop. The value-typed
// version allocates only on backing-array growth; capacity is retained
// across pushes and pops, so a settled loop runs allocation-free. The pop
// sequence is identical to the container/heap version: the comparator
// (at, kind, seq) is a strict total order (seq is unique), and any binary
// heap pops a strictly ordered set in exactly sorted order.
type eventHeap []event

func lessEv(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// push sifts up with a hole: parents slide down into the vacancy and the
// new event is written exactly once.
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessEv(ev, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
}

// pop removes the minimum, sifting the displaced last element down through
// a hole the same way.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && lessEv(q[r], q[c]) {
			c = r
		}
		if !lessEv(q[c], last) {
			break
		}
		q[i] = q[c]
		i = c
	}
	if n > 0 {
		q[i] = last
	}
	return top
}

// sim is the running event loop's state.
type sim struct {
	cfg    Config
	chips  []chip
	events eventHeap
	seq    int64
	rngs   []*RNG // one substream per class
	unit   []int64
	// svc[class][n-1] caches Table.ServiceNanos(class, n) for n=1..MaxBatch,
	// hoisting the per-batch string-keyed map lookup and batch-point search
	// out of the event loop.
	svc    [][]int64
	rrNext int
	now    int64
	m      *Metrics

	// Time-weighted queue-depth accounting: inSystem counts admitted but
	// not yet completed requests; the integral accumulates depth*dt.
	inSystem      int
	depthIntegral float64

	// depthArena backs the per-sample Depths slices in chunks, so a long
	// sampled run costs one allocation per ~1k samples instead of one each.
	depthArena []int
}

// Run executes the cluster simulation to completion — arrivals generated
// until the horizon, then drained — and returns the finished metrics.
// The loop is single-threaded and integer-clocked: a fixed seed yields
// byte-identical metrics at any GOMAXPROCS.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 1
	}
	s := &sim{
		cfg:   cfg,
		chips: make([]chip, cfg.Chips),
		rngs:  make([]*RNG, len(cfg.Classes)),
		unit:  make([]int64, len(cfg.Classes)),
		m:     newMetrics(cfg),
	}
	s.svc = make([][]int64, len(cfg.Classes))
	for i, cl := range cfg.Classes {
		s.rngs[i] = DeriveRNG(cfg.Seed, fmt.Sprintf("class/%d/%s", i, cl.Name))
		// Validate probed batch 1, so these lookups cannot fail.
		s.unit[i], _ = cfg.Table.ServiceNanos(cl.Name, 1)
		s.svc[i] = make([]int64, cfg.MaxBatch)
		for n := 1; n <= cfg.MaxBatch; n++ {
			s.svc[i][n-1], _ = cfg.Table.ServiceNanos(cl.Name, n)
		}
		s.scheduleArrival(i, 0)
	}
	if cfg.SampleEveryNanos > 0 {
		s.push(event{at: cfg.SampleEveryNanos, kind: evSample})
	}
	for len(s.events) > 0 {
		ev := s.events.pop()
		s.depthIntegral += float64(s.inSystem) * float64(ev.at-s.now)
		s.now = ev.at
		s.m.Events++
		switch ev.kind {
		case evArrival:
			s.arrive(int(ev.who))
		case evRetry:
			s.offer(int(ev.who), ev.arr, ev.aux)
		case evComplete:
			s.complete(int(ev.who))
		case evSample:
			s.sample()
		}
	}
	for i := range s.chips {
		s.m.chipBusyNanos = append(s.m.chipBusyNanos, s.chips[i].busyNanos)
		s.m.Batches += s.chips[i].batches
		if s.chips[i].maxDepth > s.m.MaxQueueDepth {
			s.m.MaxQueueDepth = s.chips[i].maxDepth
		}
	}
	if s.now > 0 {
		s.m.MeanQueueDepth = s.depthIntegral / float64(s.now)
	}
	s.m.finish(s.now)
	return s.m, nil
}

func (s *sim) push(ev event) {
	ev.seq = s.seq
	s.seq++
	s.events.push(ev)
}

// scheduleArrival draws the class's next inter-arrival from `from` and
// enqueues it unless it lands past the horizon (the stream then ends).
func (s *sim) scheduleArrival(class int, from int64) {
	gap := s.cfg.Classes[class].Arrival.Sample(s.rngs[class])
	next := from + nanosOf(gap)
	if next > s.cfg.HorizonNanos {
		return
	}
	s.push(event{at: next, kind: evArrival, who: int32(class)})
}

// nanosOf converts a sampled inter-arrival in seconds to the integer
// clock, clamping to at least one nanosecond so streams always advance.
func nanosOf(seconds float64) int64 {
	n := int64(math.Round(seconds * 1e9))
	if n < 1 {
		n = 1
	}
	return n
}

// arrive counts one fresh arrival, keeps the class's stream going, and
// offers the request to the cluster.
func (s *sim) arrive(class int) {
	s.scheduleArrival(class, s.now)
	s.m.Classes[class].Offered++
	s.offer(class, s.now, 0)
}

// offer routes one offered request — fresh or backing off after a shed —
// and applies admission control. arrival is the request's first offer
// time (its latency clock); retries is how many re-offers it has taken.
func (s *sim) offer(class int, arrival int64, retries int32) {
	cm := &s.m.Classes[class]
	ci := s.route()
	c := &s.chips[ci]
	if s.cfg.QueueCap > 0 && len(c.queue) >= s.cfg.QueueCap {
		if s.cfg.RetryAfterNanos > 0 && int(retries) < s.cfg.MaxRetries {
			cm.Retried++
			s.push(event{at: s.now + s.cfg.RetryAfterNanos, arr: arrival, kind: evRetry, who: int32(class), aux: retries + 1})
			return
		}
		cm.Rejected++
		return
	}
	cm.Admitted++
	s.inSystem++
	c.queue = append(c.queue, request{class: class, arrival: arrival})
	c.queuedEstNanos += s.unit[class]
	if d := len(c.queue); d > c.maxDepth {
		c.maxDepth = d
	}
	if !c.busy {
		s.startBatch(ci)
	}
}

// route picks the destination chip under the configured policy.
func (s *sim) route() int {
	switch s.cfg.Policy {
	case JoinShortestQueue:
		best, bestDepth := 0, -1
		for i := range s.chips {
			d := len(s.chips[i].queue) + len(s.chips[i].batch)
			if bestDepth < 0 || d < bestDepth {
				best, bestDepth = i, d
			}
		}
		return best
	case LeastLoaded:
		best := 0
		var bestLoad int64 = -1
		for i := range s.chips {
			load := s.chips[i].queuedEstNanos
			if s.chips[i].busy {
				load += s.chips[i].busyUntil - s.now
			}
			if bestLoad < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	default: // RoundRobin
		i := s.rrNext % len(s.chips)
		s.rrNext++
		return i
	}
}

// startBatch forms a batch and begins serving it: the head request picks
// the class, then the whole queue is scanned for that class's requests
// (in FIFO order) up to MaxBatch — classes never mix in a batch, but a
// same-class request behind a different-class head still rides along, so
// interleaved streams don't fragment batching. Service time is the
// latency table's entry for the formed size (rounded up to the nearest
// measured batch point).
func (s *sim) startBatch(ci int) {
	c := &s.chips[ci]
	if len(c.queue) == 0 {
		return
	}
	class := c.queue[0].class
	c.batch = c.batch[:0]
	kept := c.queue[:0]
	for _, rq := range c.queue {
		if rq.class == class && len(c.batch) < s.cfg.MaxBatch {
			c.batch = append(c.batch, rq)
		} else {
			kept = append(kept, rq)
		}
	}
	c.queue = kept
	n := len(c.batch)
	c.queuedEstNanos -= int64(n) * s.unit[class]
	svc := s.svc[class][n-1]
	c.busy = true
	c.busyUntil = s.now + svc
	c.busyNanos += svc
	c.batches++
	s.m.BatchedRequests += int64(n)
	if s.cfg.RecordSpans {
		s.m.BatchSpans = append(s.m.BatchSpans, BatchSpan{
			Chip: ci, Class: s.cfg.Classes[class].Name, Size: n,
			StartNanos: s.now, DurNanos: svc,
		})
	}
	s.push(event{at: c.busyUntil, kind: evComplete, who: int32(ci)})
}

// complete retires the chip's in-flight batch, crediting each request's
// sojourn to its class, then starts the next batch if one is waiting.
func (s *sim) complete(ci int) {
	c := &s.chips[ci]
	for _, rq := range c.batch {
		cm := &s.m.Classes[rq.class]
		cm.Completed++
		lat := s.now - rq.arrival
		cm.latencies = append(cm.latencies, lat)
		slo := s.cfg.Classes[rq.class].SLONanos
		if slo == 0 || lat <= slo {
			cm.Good++
		}
	}
	s.inSystem -= len(c.batch)
	c.batch = c.batch[:0]
	c.busy = false
	s.startBatch(ci)
}

// sample records one queue-depth observation and schedules the next while
// inside the horizon.
func (s *sim) sample() {
	depths := s.allocDepths(len(s.chips))
	total := 0
	for i := range s.chips {
		depths[i] = len(s.chips[i].queue) + len(s.chips[i].batch)
		total += depths[i]
	}
	s.m.QueueSamples = append(s.m.QueueSamples, QueueSample{AtNanos: s.now, Depths: depths, Total: total})
	if next := s.now + s.cfg.SampleEveryNanos; next <= s.cfg.HorizonNanos {
		s.push(event{at: next, kind: evSample})
	}
}

// allocDepths carves an n-int slice out of the sample arena, refilling the
// arena in whole chunks. The carved slices are retained by QueueSamples in
// the finished Metrics, so the memory is live either way — chunking only
// batches the allocator traffic.
func (s *sim) allocDepths(n int) []int {
	if len(s.depthArena) < n {
		chunk := 1024 * n
		if chunk < 4096 {
			chunk = 4096
		}
		s.depthArena = make([]int, chunk)
	}
	d := s.depthArena[:n:n]
	s.depthArena = s.depthArena[n:]
	return d
}
