package serving

import "testing"

// BenchmarkClusterEventLoop measures raw DES throughput (events/sec) on a
// synthetic latency table — no cycle simulation, just the heap, routing,
// batching, and metrics machinery. scripts/bench.sh records the events/s
// metric in BENCH_serving.json.
func BenchmarkClusterEventLoop(b *testing.B) {
	cfg := Config{
		Chips:        16,
		Policy:       JoinShortestQueue,
		MaxBatch:     8,
		QueueCap:     256,
		HorizonNanos: 10_000_000_000, // 10 s of simulated traffic
		Seed:         1,
		Table:        testTable(),
		Classes: []Class{
			{Name: "fast", Arrival: Exponential{Rate: 20000}, SLONanos: 20_000_000},
			{Name: "slow", Arrival: Gamma{Shape: 2, Rate: 2000}, SLONanos: 50_000_000},
		},
	}
	var events int64
	var elapsed float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += m.Events
	}
	b.StopTimer()
	elapsed = b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed, "events/s")
	}
}
