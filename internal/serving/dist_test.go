package serving

import (
	"errors"
	"math"
	"testing"
)

// sampleStats draws n samples and returns the empirical mean and
// coefficient of variation.
func sampleStats(t *testing.T, d Dist, r *RNG, n int) (mean, cv float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		if x < 0 {
			t.Fatalf("%s produced a negative inter-arrival %v", d, x)
		}
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// within asserts |got-want| <= tol*want.
func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s: got %.5f, want %.5f (tolerance %.1f%%)", what, got, want, 100*tol)
	}
}

// TestGeneratorStatistics checks each inter-arrival distribution's
// empirical mean and CV against the configured parameters: Poisson
// (CV 1), Gamma (CV 1/sqrt(shape)) both above and below shape 1, and
// Weibull (moments via the gamma function).
func TestGeneratorStatistics(t *testing.T) {
	const n = 200000
	cases := []struct {
		name string
		d    Dist
		cv   float64
	}{
		{"poisson", Exponential{Rate: 25}, 1},
		{"gamma-smooth", Gamma{Shape: 4, Rate: 100}, 0.5},
		{"gamma-bursty", Gamma{Shape: 0.5, Rate: 12.5}, math.Sqrt2},
		{"weibull-heavy", Weibull{Shape: 0.8, Scale: 0.04}, weibullCV(0.8)},
		{"weibull-clustered", Weibull{Shape: 2, Scale: 0.04}, weibullCV(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.d.Validate(); err != nil {
				t.Fatalf("valid distribution rejected: %v", err)
			}
			r := DeriveRNG(42, tc.name)
			mean, cv := sampleStats(t, tc.d, r, n)
			within(t, tc.name+" mean", mean, tc.d.Mean(), 0.02)
			within(t, tc.name+" cv", cv, tc.cv, 0.05)
		})
	}
}

func weibullCV(shape float64) float64 {
	m := math.Gamma(1 + 1/shape)
	v := math.Gamma(1+2/shape) - m*m
	return math.Sqrt(v) / m
}

// TestDistValidation rejects every non-positive parameter with a typed
// *ParamError naming the distribution and the parameter.
func TestDistValidation(t *testing.T) {
	cases := []struct {
		d           Dist
		dist, param string
	}{
		{Exponential{Rate: 0}, "exponential", "rate"},
		{Exponential{Rate: -3}, "exponential", "rate"},
		{Exponential{Rate: math.NaN()}, "exponential", "rate"},
		{Gamma{Shape: 0, Rate: 1}, "gamma", "shape"},
		{Gamma{Shape: -1, Rate: 1}, "gamma", "shape"},
		{Gamma{Shape: 1, Rate: 0}, "gamma", "rate"},
		{Weibull{Shape: 0, Scale: 1}, "weibull", "shape"},
		{Weibull{Shape: 1, Scale: 0}, "weibull", "scale"},
		{Weibull{Shape: 1, Scale: -0.5}, "weibull", "scale"},
	}
	for _, tc := range cases {
		err := tc.d.Validate()
		if err == nil {
			t.Errorf("%v: expected a validation error", tc.d)
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%v: error %v is not a *ParamError", tc.d, err)
			continue
		}
		if pe.Dist != tc.dist || pe.Param != tc.param {
			t.Errorf("%v: got ParamError{%s,%s}, want {%s,%s}", tc.d, pe.Dist, pe.Param, tc.dist, tc.param)
		}
	}
}

// TestRNGDeterminism: same seed ⇒ same stream; derived substreams are
// decorrelated by label.
func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	x, y := DeriveRNG(7, "class/0/ResNet"), DeriveRNG(7, "class/1/GAN")
	same := 0
	for i := 0; i < 1000; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived substreams collide: %d identical draws", same)
	}
}
