package serving

import (
	"fmt"
	"math"
)

// Dist is an inter-arrival time distribution. Sample returns one draw in
// seconds; Mean is the analytical expectation (used by tests and by load
// derivations); Validate rejects degenerate parameters with a typed
// *ParamError before any sampling happens.
type Dist interface {
	Sample(r *RNG) float64
	Mean() float64
	Validate() error
	String() string
}

// ParamError reports a distribution parameter that must be positive but
// is not. It is a typed error so callers (flag parsing, the HTTP surface)
// can distinguish configuration mistakes from simulation failures.
type ParamError struct {
	Dist  string  // "exponential", "gamma", "weibull"
	Param string  // "rate", "shape", "scale"
	Value float64 // the offending value
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("serving: %s %s must be positive, got %v", e.Dist, e.Param, e.Value)
}

// Exponential inter-arrivals form a Poisson arrival process with the
// given rate (arrivals per second). Mean inter-arrival is 1/Rate; CV 1.
type Exponential struct {
	Rate float64
}

func (d Exponential) Validate() error {
	if !(d.Rate > 0) {
		return &ParamError{Dist: "exponential", Param: "rate", Value: d.Rate}
	}
	return nil
}

func (d Exponential) Mean() float64 { return 1 / d.Rate }

func (d Exponential) Sample(r *RNG) float64 {
	return -math.Log(r.open()) / d.Rate
}

func (d Exponential) String() string { return fmt.Sprintf("poisson(rate=%g)", d.Rate) }

// Gamma inter-arrivals with the given shape and rate: mean Shape/Rate,
// CV 1/sqrt(Shape). Shape > 1 models smoother-than-Poisson traffic,
// Shape < 1 burstier.
type Gamma struct {
	Shape float64
	Rate  float64
}

func (d Gamma) Validate() error {
	if !(d.Shape > 0) {
		return &ParamError{Dist: "gamma", Param: "shape", Value: d.Shape}
	}
	if !(d.Rate > 0) {
		return &ParamError{Dist: "gamma", Param: "rate", Value: d.Rate}
	}
	return nil
}

func (d Gamma) Mean() float64 { return d.Shape / d.Rate }

// Sample draws with the Marsaglia–Tsang squeeze method; shapes below one
// use the standard boosting identity Gamma(a) = Gamma(a+1) * U^(1/a).
func (d Gamma) Sample(r *RNG) float64 {
	shape, boost := d.Shape, 1.0
	if shape < 1 {
		boost = math.Pow(r.open(), 1/shape)
		shape++
	}
	dd := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*dd)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.open()
		if math.Log(u) < 0.5*x*x+dd-dd*v+dd*math.Log(v) {
			return boost * dd * v / d.Rate
		}
	}
}

func (d Gamma) String() string { return fmt.Sprintf("gamma(shape=%g,rate=%g)", d.Shape, d.Rate) }

// Weibull inter-arrivals with the given shape and scale: mean
// Scale*Γ(1+1/Shape). Shape < 1 gives heavy-tailed bursts, shape > 1
// clusters arrivals around the scale.
type Weibull struct {
	Shape float64
	Scale float64
}

func (d Weibull) Validate() error {
	if !(d.Shape > 0) {
		return &ParamError{Dist: "weibull", Param: "shape", Value: d.Shape}
	}
	if !(d.Scale > 0) {
		return &ParamError{Dist: "weibull", Param: "scale", Value: d.Scale}
	}
	return nil
}

func (d Weibull) Mean() float64 { return d.Scale * math.Gamma(1+1/d.Shape) }

// Sample draws by inverse transform: Scale * (-ln U)^(1/Shape).
func (d Weibull) Sample(r *RNG) float64 {
	return d.Scale * math.Pow(-math.Log(r.open()), 1/d.Shape)
}

func (d Weibull) String() string { return fmt.Sprintf("weibull(shape=%g,scale=%g)", d.Shape, d.Scale) }
