package serving

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// testTable builds a two-class latency table with simple service times:
// "fast" serves a batch of up to 8 in 1 ms, up to 32 in 2 ms; "slow"
// in 4/6 ms.
func testTable() *LatencyTable {
	tbl := NewLatencyTable()
	tbl.Set("fast", 1, 500_000)
	tbl.Set("fast", 8, 1_000_000)
	tbl.Set("fast", 32, 2_000_000)
	tbl.Set("slow", 1, 2_000_000)
	tbl.Set("slow", 8, 4_000_000)
	tbl.Set("slow", 32, 6_000_000)
	return tbl
}

func testConfig(policy Policy, seed int64) Config {
	return Config{
		Chips:            4,
		Policy:           policy,
		MaxBatch:         8,
		QueueCap:         64,
		HorizonNanos:     2_000_000_000, // 2 s
		Seed:             seed,
		Table:            testTable(),
		SampleEveryNanos: 100_000_000,
		Classes: []Class{
			{Name: "fast", Arrival: Exponential{Rate: 2000}, SLONanos: 20_000_000},
			{Name: "slow", Arrival: Exponential{Rate: 200}, SLONanos: 50_000_000},
		},
	}
}

// canonical renders everything a client could observe from a run into one
// string, for byte-identity comparisons.
func canonical(t *testing.T, m *Metrics) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(m.Summary())
	b.WriteByte('\n')
	for _, c := range m.Classes {
		fmt.Fprintf(&b, "%s offered=%d admitted=%d rejected=%d completed=%d good=%d p50=%d p95=%d p99=%d max=%d mean=%d\n",
			c.Name, c.Offered, c.Admitted, c.Rejected, c.Completed, c.Good,
			c.P50Nanos, c.P95Nanos, c.P99Nanos, c.MaxNanos, c.MeanNanos)
	}
	m.QueueDepthTable().Render(&b)
	if err := m.WriteTimeline(&b); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	return b.String()
}

// TestClusterDeterministic: the same seed yields byte-identical metrics
// across repeated runs and across GOMAXPROCS values (the loop is
// single-threaded by construction; this is the regression gate), and a
// different seed yields different traffic.
func TestClusterDeterministic(t *testing.T) {
	for _, policy := range Policies() {
		cfg := testConfig(policy, 7)
		cfg.RecordSpans = true
		m1, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		ref := canonical(t, m1)

		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			m2, err := Run(cfg)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatalf("%v at GOMAXPROCS=%d: %v", policy, procs, err)
			}
			if got := canonical(t, m2); got != ref {
				t.Fatalf("%v: metrics differ at GOMAXPROCS=%d:\n--- ref\n%s\n--- got\n%s", policy, procs, ref, got)
			}
		}

		other := testConfig(policy, 8)
		other.RecordSpans = true
		m3, err := Run(other)
		if err != nil {
			t.Fatalf("%v seed 8: %v", policy, err)
		}
		if canonical(t, m3) == ref {
			t.Fatalf("%v: different seeds produced identical metrics", policy)
		}
	}
}

// TestClusterConservation: every offered request is admitted or rejected,
// every admitted request completes (the loop drains), and goodput never
// exceeds completions.
func TestClusterConservation(t *testing.T) {
	for _, policy := range Policies() {
		m, err := Run(testConfig(policy, 3))
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if m.Offered == 0 {
			t.Fatalf("%v: no traffic generated", policy)
		}
		if m.Admitted+m.Rejected != m.Offered {
			t.Errorf("%v: admitted %d + rejected %d != offered %d", policy, m.Admitted, m.Rejected, m.Offered)
		}
		if m.Completed != m.Admitted {
			t.Errorf("%v: completed %d != admitted %d (drain broken)", policy, m.Completed, m.Admitted)
		}
		if m.Good > m.Completed {
			t.Errorf("%v: good %d > completed %d", policy, m.Good, m.Completed)
		}
		if m.BatchedRequests != m.Admitted {
			t.Errorf("%v: batched %d != admitted %d", policy, m.BatchedRequests, m.Admitted)
		}
		for _, c := range m.Classes {
			if c.Completed > 0 && (c.P50Nanos <= 0 || c.P99Nanos < c.P50Nanos || c.MaxNanos < c.P99Nanos) {
				t.Errorf("%v %s: implausible percentiles p50=%d p99=%d max=%d", policy, c.Name, c.P50Nanos, c.P99Nanos, c.MaxNanos)
			}
		}
	}
}

// TestClusterBatching: with batching enabled the fast class's mean batch
// exceeds one under load, and a MaxBatch=1 run forms only singletons.
func TestClusterBatching(t *testing.T) {
	cfg := testConfig(RoundRobin, 5)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batches == 0 || m.BatchedRequests <= m.Batches {
		t.Errorf("expected multi-request batches under load: %d requests in %d batches", m.BatchedRequests, m.Batches)
	}
	cfg.MaxBatch = 1
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.BatchedRequests != m1.Batches {
		t.Errorf("MaxBatch=1 must form singleton batches: %d requests in %d batches", m1.BatchedRequests, m1.Batches)
	}
}

// TestClusterAdmission: a tiny queue cap under overload rejects traffic;
// an unbounded queue rejects nothing.
func TestClusterAdmission(t *testing.T) {
	cfg := testConfig(RoundRobin, 9)
	cfg.QueueCap = 2
	cfg.Classes[0].Arrival = Exponential{Rate: 20000} // far past capacity
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected == 0 {
		t.Error("overloaded tiny queue must reject")
	}
	cfg.QueueCap = 0
	m0, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Rejected != 0 {
		t.Errorf("unbounded queue rejected %d", m0.Rejected)
	}
}

// TestClusterRoutingBalance: under symmetric load, JSQ and least-loaded
// keep the max per-chip queue no deeper than round-robin does (they react
// to imbalance; RR is oblivious).
func TestClusterRoutingBalance(t *testing.T) {
	deepest := func(p Policy) int {
		cfg := testConfig(p, 11)
		cfg.Classes[0].Arrival = Exponential{Rate: 3500} // saturating
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return m.MaxQueueDepth
	}
	rr := deepest(RoundRobin)
	if jsq := deepest(JoinShortestQueue); jsq > rr {
		t.Errorf("JSQ max depth %d exceeds round-robin's %d", jsq, rr)
	}
	if ll := deepest(LeastLoaded); ll > rr {
		t.Errorf("least-loaded max depth %d exceeds round-robin's %d", ll, rr)
	}
}

// TestClusterSLOAccounting: an impossibly tight SLO yields zero goodput;
// a generous one counts every completion.
func TestClusterSLOAccounting(t *testing.T) {
	cfg := testConfig(RoundRobin, 13)
	cfg.Classes = cfg.Classes[:1]
	cfg.Classes[0].SLONanos = 1 // tighter than any service time
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Good != 0 {
		t.Errorf("1ns SLO admitted %d good completions", m.Good)
	}
	cfg.Classes[0].SLONanos = 0 // unbounded
	m0, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Good != m0.Completed {
		t.Errorf("unbounded SLO: good %d != completed %d", m0.Good, m0.Completed)
	}
}

// TestClusterConfigValidation: broken configs are rejected with errors,
// not simulated.
func TestClusterConfigValidation(t *testing.T) {
	base := testConfig(RoundRobin, 1)
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"no chips", func(c *Config) { c.Chips = 0 }},
		{"no horizon", func(c *Config) { c.HorizonNanos = 0 }},
		{"negative batch", func(c *Config) { c.MaxBatch = -1 }},
		{"negative cap", func(c *Config) { c.QueueCap = -1 }},
		{"no table", func(c *Config) { c.Table = nil }},
		{"no classes", func(c *Config) { c.Classes = nil }},
		{"unnamed class", func(c *Config) { c.Classes[0].Name = "" }},
		{"nil dist", func(c *Config) { c.Classes[0].Arrival = nil }},
		{"bad dist", func(c *Config) { c.Classes[0].Arrival = Exponential{Rate: -1} }},
		{"negative slo", func(c *Config) { c.Classes[0].SLONanos = -5 }},
		{"unknown class", func(c *Config) { c.Classes[0].Name = "nosuch" }},
	}
	for _, tc := range mutations {
		cfg := base
		cfg.Classes = append([]Class(nil), base.Classes...)
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

// TestClusterRetryModeling pins the shed-retry extension: with
// RetryAfterNanos off the metrics are unchanged (the zero value is the
// original semantics); with it on, shed requests re-offer themselves,
// Retried counts the re-offers, the Offered == Admitted + Rejected
// invariant survives, and retries recover traffic a hard shed would have
// dropped. The retried run stays deterministic across repeats.
func TestClusterRetryModeling(t *testing.T) {
	overload := func() Config {
		cfg := testConfig(RoundRobin, 9)
		cfg.QueueCap = 2
		cfg.Classes[0].Arrival = Exponential{Rate: 20000} // far past capacity
		return cfg
	}

	// RetryAfterNanos=0 disables the whole mechanism: byte-identical to a
	// config that never heard of retries, MaxRetries notwithstanding.
	base, err := Run(overload())
	if err != nil {
		t.Fatal(err)
	}
	if base.Retried != 0 {
		t.Fatalf("RetryAfterNanos=0 run retried %d times", base.Retried)
	}
	off := overload()
	off.MaxRetries = 5 // inert without a backoff
	moff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(t, base) != canonical(t, moff) {
		t.Error("MaxRetries with RetryAfterNanos=0 changed the metrics")
	}

	cfg := overload()
	cfg.RetryAfterNanos = 500_000 // 0.5 ms backoff
	cfg.MaxRetries = 3
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retried == 0 {
		t.Fatal("overloaded retry run took no retries")
	}
	if m.Offered != m.Admitted+m.Rejected {
		t.Errorf("conservation broke: offered %d != admitted %d + rejected %d",
			m.Offered, m.Admitted, m.Rejected)
	}
	if m.Completed != m.Admitted {
		t.Errorf("drain broke: completed %d != admitted %d", m.Completed, m.Admitted)
	}
	if m.Offered != base.Offered {
		t.Errorf("retries changed the offered stream: %d vs %d", m.Offered, base.Offered)
	}
	var classRetried int64
	for _, c := range m.Classes {
		classRetried += c.Retried
	}
	if classRetried != m.Retried {
		t.Errorf("class retries sum to %d, total says %d", classRetried, m.Retried)
	}

	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(t, m) != canonical(t, m2) {
		t.Error("retried run is not deterministic across repeats")
	}
}
