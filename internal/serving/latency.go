package serving

import (
	"fmt"
	"sort"
)

// LatencyTable maps a request class and a formed batch size to a service
// time in nanoseconds. The experiments engine fills one from cycle-sim
// results (Runner → cycles → CyclesToNanos), so the DES's service model is
// the same validated ground truth the paper's figures render.
//
// The table carries a discrete set of batch points per class (the batch
// sweep's 8/16/32, typically). ServiceNanos rounds a formed batch up to
// the nearest point at or above it — the conservative choice: a smaller
// batch never runs faster than the table's next-larger measurement says.
type LatencyTable struct {
	classes map[string][]BatchPoint
}

// BatchPoint is one measured (batch size, service time) cell.
type BatchPoint struct {
	Batch int
	Nanos int64
}

// NewLatencyTable returns an empty table.
func NewLatencyTable() *LatencyTable {
	return &LatencyTable{classes: make(map[string][]BatchPoint)}
}

// Set records the service time for one (class, batch) cell, replacing any
// previous value. Points are kept sorted by batch size.
func (t *LatencyTable) Set(class string, batch int, nanos int64) {
	pts := t.classes[class]
	for i := range pts {
		if pts[i].Batch == batch {
			pts[i].Nanos = nanos
			return
		}
	}
	pts = append(pts, BatchPoint{Batch: batch, Nanos: nanos})
	sort.Slice(pts, func(i, j int) bool { return pts[i].Batch < pts[j].Batch })
	t.classes[class] = pts
}

// Classes returns the class names in sorted order.
func (t *LatencyTable) Classes() []string {
	out := make([]string, 0, len(t.classes))
	for c := range t.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Points returns the class's batch points in ascending batch order (nil
// for an unknown class).
func (t *LatencyTable) Points(class string) []BatchPoint {
	return append([]BatchPoint(nil), t.classes[class]...)
}

// MaxBatch returns the largest measured batch size for the class (0 for
// an unknown class).
func (t *LatencyTable) MaxBatch(class string) int {
	pts := t.classes[class]
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Batch
}

// ServiceNanos returns the service time for a batch of the given size:
// the smallest measured point at or above batch, or the largest point
// when the batch exceeds every measurement (the table saturates rather
// than extrapolating). It errors on unknown classes and non-positive
// batches so a miswired experiment fails loudly instead of serving in
// zero time.
func (t *LatencyTable) ServiceNanos(class string, batch int) (int64, error) {
	if batch <= 0 {
		return 0, fmt.Errorf("serving: batch must be positive, got %d", batch)
	}
	pts := t.classes[class]
	if len(pts) == 0 {
		return 0, fmt.Errorf("serving: latency table has no class %q", class)
	}
	for _, p := range pts {
		if p.Batch >= batch {
			return p.Nanos, nil
		}
	}
	return pts[len(pts)-1].Nanos, nil
}

// CyclesToNanos converts a cycle count at the given core clock into
// nanoseconds (integer math, truncating: nanos = cycles*1000/clockMHz).
func CyclesToNanos(cycles int64, clockMHz int) int64 {
	if clockMHz <= 0 {
		return 0
	}
	return cycles * 1000 / int64(clockMHz)
}
