package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
	"duplo/internal/sim"
	"duplo/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRun simulates a small fixed workload with tracing attached — the
// fixture behind both exporter golden files. The simulator is fully
// deterministic (sim.Run's contract), so the exports are byte-stable.
func goldenRun(t *testing.T) *trace.Collector {
	t.Helper()
	layer := conv.Params{N: 1, H: 8, W: 8, C: 16, K: 16, FH: 3, FW: 3, Pad: 1, Stride: 1}
	k, err := sim.NewConvKernel("golden", layer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 2
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	col := trace.NewCollector(cfg.TraceMeta(2000))
	cfg.Tracer = col
	res, err := sim.Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	col.Finish(res.Cycles)
	if col.Dropped() != 0 {
		t.Fatalf("golden workload overflowed the ring (%d dropped); shrink it", col.Dropped())
	}
	return col
}

// checkGolden compares got against testdata/name, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d vs %d bytes); run with -update if intentional",
			name, len(got), len(want))
	}
}

func TestPerfettoGolden(t *testing.T) {
	col := goldenRun(t)
	var buf bytes.Buffer
	if err := col.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural sanity independent of the golden bytes.
	for _, want := range []string{
		`"displayTimeUnit"`, `"traceEvents"`,
		`"name":"SM 0"`, `"name":"SM 1"`,
		`"name":"active"`, `"name":"stall"`,
		`"name":"IPC"`, `"name":"LHB hit rate"`, `"name":"DRAM lines"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Perfetto export missing %s", want)
		}
	}
	checkGolden(t, "perfetto.golden", buf.Bytes())
}

func TestCSVGolden(t *testing.T) {
	col := goldenRun(t)
	var buf bytes.Buffer
	if err := col.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(col.Intervals())+1 {
		t.Fatalf("CSV has %d lines for %d intervals", len(lines), len(col.Intervals()))
	}
	if !strings.HasPrefix(lines[0], "interval,start_cycle,cycles,instructions,ipc") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	checkGolden(t, "intervals.golden", buf.Bytes())
}
