package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestSpanApportioning: a KindStallSpan crossing several interval
// boundaries must split its stall cycles exactly, bucket by bucket.
func TestSpanApportioning(t *testing.T) {
	c := NewCollector(Meta{SMs: 1, Schedulers: 4, Interval: 100})
	// Span [250, 750): 50 cycles in interval 2, 100 in 3 and 4 each,
	// 50 in interval 7 from a second span [750, 800)... keep it simple:
	c.Emit(0, Event{Cycle: 250, Kind: KindStallSpan, A: 500, B: 3})
	ivs := c.Intervals()
	want := map[int64]int64{2: 50, 3: 100, 4: 100, 5: 100, 6: 100, 7: 50}
	var totIssue, totLdst int64
	for _, iv := range ivs {
		w := want[iv.Index]
		if iv.IssueStallCycles != w*4 {
			t.Errorf("interval %d: issue stalls %d, want %d", iv.Index, iv.IssueStallCycles, w*4)
		}
		if iv.LDSTStallCycles != w*3 {
			t.Errorf("interval %d: ldst stalls %d, want %d", iv.Index, iv.LDSTStallCycles, w*3)
		}
		totIssue += iv.IssueStallCycles
		totLdst += iv.LDSTStallCycles
	}
	if totIssue != 500*4 || totLdst != 500*3 {
		t.Errorf("span total = %d/%d, want %d/%d", totIssue, totLdst, 500*4, 500*3)
	}
}

// TestSpanOnBoundary: spans starting or ending exactly on a boundary must
// not leak a cycle into a neighbouring bucket.
func TestSpanOnBoundary(t *testing.T) {
	c := NewCollector(Meta{SMs: 1, Schedulers: 1, Interval: 100})
	c.Emit(0, Event{Cycle: 100, Kind: KindStallSpan, A: 100, B: 0})
	ivs := c.Intervals()
	for _, iv := range ivs {
		want := int64(0)
		if iv.Index == 1 {
			want = 100
		}
		if iv.IssueStallCycles != want {
			t.Errorf("interval %d: %d stalls, want %d", iv.Index, iv.IssueStallCycles, want)
		}
	}
}

// TestRingOverwrite: a full ring drops the oldest events, keeps counters
// exact, and Events returns the retained tail in order.
func TestRingOverwrite(t *testing.T) {
	c := NewCollector(Meta{SMs: 1, Schedulers: 4, Interval: 1000, RingCap: 8})
	for i := 0; i < 20; i++ {
		c.Emit(0, Event{Cycle: int64(i), Kind: KindIssue, Op: OpMMA})
	}
	if got := c.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	evs := c.Events(0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != int64(12+i) {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first order)", i, e.Cycle, 12+i)
		}
	}
	if tot := c.Totals(); tot.Instructions != 20 || tot.MMAs != 20 {
		t.Fatalf("counters lost events: %+v", tot)
	}
}

// TestShardGrowth: emits for SMs beyond the declared count must land in
// fresh shards, not panic or alias.
func TestShardGrowth(t *testing.T) {
	c := NewCollector(Meta{SMs: 1, Schedulers: 4, Interval: 100})
	c.Emit(3, Event{Cycle: 5, Kind: KindIssue, Op: OpStoreD})
	if c.SMs() != 4 {
		t.Fatalf("SMs = %d, want 4", c.SMs())
	}
	if len(c.Events(3)) != 1 || len(c.Events(0)) != 0 {
		t.Fatal("event landed in the wrong shard")
	}
	if c.Events(99) != nil {
		t.Fatal("out-of-range SM should return nil")
	}
}

// TestConcurrentEmit hammers the collector from several goroutines (the
// race detector is the real assertion; counts confirm nothing was lost).
func TestConcurrentEmit(t *testing.T) {
	c := NewCollector(Meta{SMs: 4, Schedulers: 4, Interval: 50, RingCap: 64})
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Emit(g%4, Event{Cycle: int64(i), Kind: KindIssue, Op: OpMMA})
				c.Emit(g%4, Event{Cycle: int64(i), Kind: KindService, Level: LevelL2})
			}
		}(g)
	}
	wg.Wait()
	tot := c.Totals()
	if tot.Instructions != 8*perG || tot.ServiceLines[LevelL2] != 8*perG {
		t.Fatalf("lost events under concurrency: %+v", tot)
	}
}

// TestIntervalsWithFinish: Finish clips the last interval and pads empty
// trailing intervals so coverage matches the run length.
func TestIntervalsWithFinish(t *testing.T) {
	c := NewCollector(Meta{SMs: 1, Schedulers: 4, Interval: 100})
	c.Emit(0, Event{Cycle: 10, Kind: KindIssue, Op: OpMMA})
	c.Finish(450)
	ivs := c.Intervals()
	if len(ivs) != 5 {
		t.Fatalf("%d intervals, want 5", len(ivs))
	}
	var covered int64
	for _, iv := range ivs {
		covered += iv.Cycles
	}
	if covered != 450 {
		t.Fatalf("covered %d cycles, want 450", covered)
	}
	if ivs[4].Cycles != 50 {
		t.Fatalf("last interval %d cycles, want 50", ivs[4].Cycles)
	}
}

// TestDefaults: zero-valued Meta fields fall back to the documented
// defaults.
func TestDefaults(t *testing.T) {
	c := NewCollector(Meta{})
	if c.Meta().Interval != DefaultInterval || c.Meta().RingCap != DefaultRingCap {
		t.Fatalf("defaults not applied: %+v", c.Meta())
	}
}

// TestFormatCoversKinds: every kind renders without the fallback branch,
// and the names match the vocabulary.
func TestFormatCoversKinds(t *testing.T) {
	events := []Event{
		{Kind: KindIssue, Op: OpLoadA, Addr: 0x100, Warp: 3, Sched: 1},
		{Kind: KindIssue, Op: OpMMA, Warp: 3, Sched: 1},
		{Kind: KindStall, A: 4, B: 2},
		{Kind: KindStallSpan, A: 100, B: 1},
		{Kind: KindLHBHit, Addr: 0x200, Warp: 5},
		{Kind: KindService, Level: LevelDRAM, Addr: 0x300},
		{Kind: KindMSHRMerge, Addr: 0x400},
		{Kind: KindLHBRelease, A: 16},
	}
	for _, e := range events {
		s := Format(0, e)
		if strings.Contains(s, "?") {
			t.Errorf("Format(%+v) fell back: %q", e, s)
		}
		if !strings.Contains(s, e.Kind.String()) {
			t.Errorf("Format(%+v) missing kind name: %q", e, s)
		}
	}
	if Kind(numKinds).String() != "?" || OpName(numOps) != "?" || LevelName(NumLevels) != "?" {
		t.Error("out-of-range names must fall back to ?")
	}
}

// TestSliceHelpers exercises the Perfetto slice reconstruction directly.
func TestSliceHelpers(t *testing.T) {
	// Issues at 0..3, gap of 100, issues at 110..111 -> two activity
	// slices with 4 and 2 instructions.
	var evs []Event
	for _, c := range []int64{0, 1, 2, 3, 110, 111} {
		evs = append(evs, Event{Cycle: c, Kind: KindIssue, Op: OpMMA})
	}
	act := activitySlices(evs)
	if len(act) != 2 || act[0].span != 4 || act[0].ldstCycles != 4 || act[1].start != 110 || act[1].ldstCycles != 2 {
		t.Fatalf("activity slices: %+v", act)
	}

	// A full-stall tick at 9 followed by a span [10,50) and another tick
	// at 50 merges into one stall slice [9, 51).
	stalls := []Event{
		{Cycle: 9, Kind: KindStall, A: 4, B: 1},
		{Cycle: 10, Kind: KindStallSpan, A: 40, B: 1},
		{Cycle: 50, Kind: KindStall, A: 4, B: 0},
		{Cycle: 60, Kind: KindStall, A: 2, B: 0}, // partial: not a stall slice
	}
	st := stallSlices(stalls, 4)
	if len(st) != 1 || st[0].start != 9 || st[0].span != 42 || st[0].ldstCycles != 41 {
		t.Fatalf("stall slices: %+v", st)
	}
}
