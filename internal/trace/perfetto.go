package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// activityGap is the issue-to-issue distance (cycles) above which the
// Perfetto exporter splits warp-activity slices. Small pipeline bubbles
// stay inside one slice; real stalls separate slices (and show up as
// explicit "stall" slices of their own).
const activityGap = 8

// stallSeg is one fully-stalled span of an SM, pre-merge.
type stallSeg struct {
	start, span int64
	ldstCycles  int64 // LDST-blocked scheduler-cycles inside the span
}

// WritePerfetto writes the collected run as a Chrome trace-event / Perfetto
// JSON timeline: one thread ("track") per SM carrying warp-activity and
// stall slices, plus chip-wide counter tracks (IPC, LHB hit rate, DRAM
// lines) sampled per interval. Load the file at ui.perfetto.dev or
// chrome://tracing. Cycles are reported as timestamps 1 cycle = 1 us (the
// trace-event unit); only relative durations are meaningful.
//
// Slices are reconstructed from the ring buffers; if a ring overflowed
// (Dropped > 0) the earliest part of that SM's timeline is missing, while
// counter tracks — built from interval accounting — always cover the whole
// run. Call Finish before exporting.
func (c *Collector) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"duplo-sim\"}}")

	nsm := c.SMs()
	for sm := 0; sm < nsm; sm++ {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"SM %d\"}}", sm, sm)
	}

	for sm := 0; sm < nsm; sm++ {
		events := c.Events(sm)
		for _, s := range activitySlices(events) {
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"active\",\"args\":{\"instructions\":%d}}",
				sm, s.start, s.span, s.ldstCycles)
		}
		for _, s := range stallSlices(events, c.meta.Schedulers) {
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"stall\",\"args\":{\"ldst_stall_cycles\":%d}}",
				sm, s.start, s.span, s.ldstCycles)
		}
	}

	// Chip-wide interval counter tracks.
	for _, iv := range c.Intervals() {
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%d,\"name\":\"IPC\",\"args\":{\"value\":%s}}",
			iv.Start, jsonFloat(iv.IPC()))
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%d,\"name\":\"LHB hit rate\",\"args\":{\"value\":%s}}",
			iv.Start, jsonFloat(iv.LHBRate()))
		fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%d,\"name\":\"DRAM lines\",\"args\":{\"value\":%d}}",
			iv.Start, iv.DRAMLines())
	}

	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// jsonFloat renders a float deterministically for the JSON/CSV exports.
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// activitySlices coalesces KindIssue events into warp-activity slices:
// issues closer than activityGap cycles share a slice. The ldstCycles
// field is reused to carry the slice's instruction count.
func activitySlices(events []Event) []stallSeg {
	var out []stallSeg
	var cur *stallSeg
	var lastCycle int64
	for _, e := range events {
		if e.Kind != KindIssue {
			continue
		}
		if cur != nil && e.Cycle <= lastCycle+activityGap {
			if e.Cycle >= cur.start+cur.span {
				cur.span = e.Cycle - cur.start + 1
			}
			cur.ldstCycles++
			lastCycle = e.Cycle
			continue
		}
		out = append(out, stallSeg{start: e.Cycle, span: 1, ldstCycles: 1})
		cur = &out[len(out)-1]
		lastCycle = e.Cycle
	}
	return out
}

// stallSlices merges full-stall ticks (KindStall with every scheduler
// stalled) and skipped spans (KindStallSpan) into maximal contiguous stall
// slices.
func stallSlices(events []Event, schedulers int) []stallSeg {
	var segs []stallSeg
	for _, e := range events {
		switch e.Kind {
		case KindStall:
			if int(e.A) == schedulers {
				segs = append(segs, stallSeg{start: e.Cycle, span: 1, ldstCycles: e.B})
			}
		case KindStallSpan:
			segs = append(segs, stallSeg{start: e.Cycle, span: e.A, ldstCycles: e.A * e.B})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	var out []stallSeg
	for _, s := range segs {
		if n := len(out); n > 0 && out[n-1].start+out[n-1].span == s.start {
			out[n-1].span += s.span
			out[n-1].ldstCycles += s.ldstCycles
			continue
		}
		out = append(out, s)
	}
	return out
}
