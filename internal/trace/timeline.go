package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Timeline builds a Chrome trace-event / Perfetto JSON file from generic
// spans and counter samples — the same wire vocabulary WritePerfetto
// emits for simulator runs, reusable by other subsystems (the serving
// DES exports cluster queue depths and per-chip batch spans through it).
// Events are written in insertion order, so a deterministic producer
// yields a byte-identical file. Load the output at ui.perfetto.dev.
type Timeline struct {
	process string
	tracks  []string // tid -> track name, in registration order
	events  []timelineEvent
}

type timelineEvent struct {
	// span events carry tid/name/ts/dur; counter events carry name/ts/val.
	counter   bool
	tid       int
	name      string
	ts, dur   int64
	val       float64
	argName   string
	argValue  int64
	hasIntArg bool
}

// NewTimeline starts a timeline for the named process.
func NewTimeline(process string) *Timeline {
	return &Timeline{process: process}
}

// Track registers a named track (a "thread" row in the UI) and returns
// its id for Span calls.
func (t *Timeline) Track(name string) int {
	t.tracks = append(t.tracks, name)
	return len(t.tracks) - 1
}

// Span adds one complete span to a track. Timestamps and durations are in
// the trace-event unit (microseconds in the UI; only relative durations
// are meaningful).
func (t *Timeline) Span(track int, name string, ts, dur int64) {
	t.events = append(t.events, timelineEvent{tid: track, name: name, ts: ts, dur: dur})
}

// SpanArg is Span with one integer argument rendered in the UI's detail
// pane.
func (t *Timeline) SpanArg(track int, name string, ts, dur int64, argName string, argValue int64) {
	t.events = append(t.events, timelineEvent{tid: track, name: name, ts: ts, dur: dur,
		argName: argName, argValue: argValue, hasIntArg: true})
}

// Counter adds one sample to a named counter track.
func (t *Timeline) Counter(name string, ts int64, val float64) {
	t.events = append(t.events, timelineEvent{counter: true, name: name, ts: ts, val: val})
}

// Write emits the timeline as trace-event JSON.
func (t *Timeline) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":%q}}", t.process)
	for tid, name := range t.tracks {
		fmt.Fprintf(bw, ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%q}}", tid, name)
	}
	for _, e := range t.events {
		switch {
		case e.counter:
			fmt.Fprintf(bw, ",\n{\"ph\":\"C\",\"pid\":0,\"ts\":%d,\"name\":%q,\"args\":{\"value\":%s}}",
				e.ts, e.name, jsonFloat(e.val))
		case e.hasIntArg:
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q,\"args\":{%q:%d}}",
				e.tid, e.ts, e.dur, e.name, e.argName, e.argValue)
		default:
			fmt.Fprintf(bw, ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%q}",
				e.tid, e.ts, e.dur, e.name)
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}
