package trace

import "sync"

// Meta describes the simulated machine to the collector and exporters.
// internal/sim builds it from a Config (Config.TraceMeta) so the knowledge
// of slice scaling and clock geometry stays in one place.
type Meta struct {
	// SMs is the number of simulated SMs (shards are pre-allocated for
	// them; emits for higher ids grow the shard set on demand).
	SMs int
	// Schedulers per SM — the per-cycle issue-stall weight of a skipped
	// span (KindStallSpan apportioning).
	Schedulers int
	// Interval is the time-series bucket width in cycles (<= 0 selects
	// DefaultInterval).
	Interval int64
	// LineBytes sizes DRAM traffic in bytes for the exporters.
	LineBytes int
	// DRAMBytesPerCycle is the slice-scaled DRAM bandwidth, for the
	// bandwidth-utilization column (0 leaves utilization unreported).
	DRAMBytesPerCycle float64
	// RingCap bounds each SM's event ring buffer (<= 0 selects
	// DefaultRingCap). When a ring is full the oldest events are
	// overwritten; interval counters are exact regardless.
	RingCap int
}

// DefaultInterval is the metrics bucket width when Meta.Interval is unset.
const DefaultInterval = int64(10000)

// DefaultRingCap is the per-SM event capacity when Meta.RingCap is unset
// (~2.6 MB of events per SM).
const DefaultRingCap = 1 << 16

// Counters are the per-interval (and total) event-derived counts. Each
// field sums to the matching field of the run's final sim.Stats — the
// conservation contract the interval tests enforce: tracing is a
// decomposition of the aggregate statistics over time, never a second
// bookkeeping that can drift.
type Counters struct {
	Instructions    int64
	TensorLoads     int64 // row-vector loads issued (16 per wmma.load)
	LoadsEliminated int64 // rows removed by LHB renaming
	MMAs            int64
	Stores          int64

	IssueStallCycles int64 // scheduler-cycles with nothing issued
	LDSTStallCycles  int64 // of those, blocked on a full LDST queue

	// ServiceLines[level] counts line-equivalents supplied by each level
	// (the Fig. 11 mix, time-resolved).
	ServiceLines [NumLevels]int64
	MSHRMerges   int64
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.Instructions += o.Instructions
	c.TensorLoads += o.TensorLoads
	c.LoadsEliminated += o.LoadsEliminated
	c.MMAs += o.MMAs
	c.Stores += o.Stores
	c.IssueStallCycles += o.IssueStallCycles
	c.LDSTStallCycles += o.LDSTStallCycles
	for i := range c.ServiceLines {
		c.ServiceLines[i] += o.ServiceLines[i]
	}
	c.MSHRMerges += o.MSHRMerges
}

// DRAMLines is the number of lines transferred from DRAM.
func (c Counters) DRAMLines() int64 { return c.ServiceLines[LevelDRAM] }

// LHBRate is the fraction of issued row loads eliminated by renaming.
func (c Counters) LHBRate() float64 {
	if c.TensorLoads == 0 {
		return 0
	}
	return float64(c.LoadsEliminated) / float64(c.TensorLoads)
}

// Interval is one time-series sample: the counters accumulated over
// [Start, Start+Cycles).
type Interval struct {
	Index  int64
	Start  int64
	Cycles int64
	Counters
}

// IPC is instructions per cycle over the interval (whole simulated slice).
func (iv Interval) IPC() float64 {
	if iv.Cycles == 0 {
		return 0
	}
	return float64(iv.Instructions) / float64(iv.Cycles)
}

// shard is one SM's collection state: a ring buffer of events and the SM's
// interval accumulators. Each shard has its own lock, so concurrent
// emitters on different SMs never contend.
type shard struct {
	mu      sync.Mutex
	ring    []Event
	head    int // next overwrite position once the ring is full
	dropped int64
	iv      []Counters // indexed by interval number
}

// Collector implements Tracer: it captures events into per-SM ring buffers
// and folds counter-bearing kinds into per-interval accumulators. All
// methods are safe for concurrent use.
type Collector struct {
	meta Meta

	mu     sync.RWMutex // guards the shard slice (growth) and total
	shards []*shard
	total  int64 // set by Finish
}

// NewCollector builds a collector for the machine described by meta.
func NewCollector(meta Meta) *Collector {
	if meta.Interval <= 0 {
		meta.Interval = DefaultInterval
	}
	if meta.RingCap <= 0 {
		meta.RingCap = DefaultRingCap
	}
	if meta.SMs < 0 {
		meta.SMs = 0
	}
	c := &Collector{meta: meta}
	c.shards = make([]*shard, meta.SMs)
	for i := range c.shards {
		c.shards[i] = &shard{}
	}
	return c
}

// Meta returns the machine description the collector was built with.
func (c *Collector) Meta() Meta { return c.meta }

// shard returns SM sm's shard, growing the shard set if needed.
func (c *Collector) shard(sm int) *shard {
	if sm < 0 {
		sm = 0
	}
	c.mu.RLock()
	if sm < len(c.shards) {
		s := c.shards[sm]
		c.mu.RUnlock()
		return s
	}
	c.mu.RUnlock()
	c.mu.Lock()
	for sm >= len(c.shards) {
		c.shards = append(c.shards, &shard{})
	}
	s := c.shards[sm]
	c.mu.Unlock()
	return s
}

// Emit records one event (Tracer implementation).
func (c *Collector) Emit(sm int, e Event) {
	s := c.shard(sm)
	s.mu.Lock()
	defer s.mu.Unlock()

	// Ring capture.
	if len(s.ring) < c.meta.RingCap {
		s.ring = append(s.ring, e)
	} else {
		s.ring[s.head] = e
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.dropped++
	}

	// Interval accounting.
	switch e.Kind {
	case KindIssue:
		iv := s.at(e.Cycle / c.meta.Interval)
		iv.Instructions++
		iv.TensorLoads += e.A
		switch e.Op {
		case OpMMA:
			iv.MMAs++
		case OpStoreD:
			iv.Stores++
		}
	case KindStall:
		iv := s.at(e.Cycle / c.meta.Interval)
		iv.IssueStallCycles += e.A
		iv.LDSTStallCycles += e.B
	case KindStallSpan:
		// Apportion the dead span across the intervals it crosses: each
		// skipped cycle stalled all schedulers, B of them LDST-blocked —
		// exact arithmetic, same discipline as the dispatcher's Stats
		// accounting.
		start, span := e.Cycle, e.A
		for span > 0 {
			idx := start / c.meta.Interval
			take := (idx+1)*c.meta.Interval - start
			if take > span {
				take = span
			}
			iv := s.at(idx)
			iv.IssueStallCycles += take * int64(c.meta.Schedulers)
			iv.LDSTStallCycles += take * e.B
			start += take
			span -= take
		}
	case KindLHBHit:
		iv := s.at(e.Cycle / c.meta.Interval)
		iv.LoadsEliminated++
		iv.ServiceLines[LevelLHB]++
	case KindService:
		if e.Level >= 0 && e.Level < NumLevels {
			s.at(e.Cycle / c.meta.Interval).ServiceLines[e.Level]++
		}
	case KindMSHRMerge:
		s.at(e.Cycle/c.meta.Interval).MSHRMerges++
	}
}

// at returns the shard's counter bucket for interval idx, growing the
// slice as the simulation advances.
func (s *shard) at(idx int64) *Counters {
	if idx < 0 {
		idx = 0
	}
	for int64(len(s.iv)) <= idx {
		s.iv = append(s.iv, Counters{})
	}
	return &s.iv[idx]
}

// Finish records the run's total cycle count so the last (partial)
// interval reports its true width. Call it once, after sim.Run returns,
// before exporting.
func (c *Collector) Finish(totalCycles int64) {
	c.mu.Lock()
	c.total = totalCycles
	c.mu.Unlock()
}

// SMs returns the number of SM shards holding data.
func (c *Collector) SMs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.shards)
}

// Dropped returns how many events were overwritten in full rings, summed
// over SMs. Interval counters are unaffected by drops.
func (c *Collector) Dropped() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.dropped
		s.mu.Unlock()
	}
	return n
}

// Events returns SM sm's captured events in chronological capture order
// (oldest retained first). The slice is a copy.
func (c *Collector) Events(sm int) []Event {
	c.mu.RLock()
	if sm < 0 || sm >= len(c.shards) {
		c.mu.RUnlock()
		return nil
	}
	s := c.shards[sm]
	c.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.ring))
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	return out
}

// TailEvents returns the last n captured events of SM sm (chronological,
// oldest of the tail first) — what a crash dump wants: the ring's most
// recent activity without copying the whole buffer. The slice is a copy.
func (c *Collector) TailEvents(sm, n int) []Event {
	c.mu.RLock()
	if sm < 0 || sm >= len(c.shards) || n <= 0 {
		c.mu.RUnlock()
		return nil
	}
	s := c.shards[sm]
	c.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(s.ring)
	if n > total {
		n = total
	}
	// Chronological order is ring[head:] then ring[:head] (head is both
	// the oldest retained event and the next overwrite position once the
	// ring is full; 0 while it is still filling). The tail is the last n
	// of that sequence.
	out := make([]Event, 0, n)
	if n <= s.head {
		return append(out, s.ring[s.head-n:s.head]...)
	}
	out = append(out, s.ring[total-(n-s.head):]...)
	return append(out, s.ring[:s.head]...)
}

// Intervals returns the merged (all-SM) time series as contiguous
// intervals from cycle 0 through the end of the run. Empty intervals are
// materialized with zero counters so consumers see a gap-free series.
func (c *Collector) Intervals() []Interval {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := int64(0)
	for _, s := range c.shards {
		s.mu.Lock()
		if int64(len(s.iv)) > n {
			n = int64(len(s.iv))
		}
		s.mu.Unlock()
	}
	if c.total > 0 {
		if covers := (c.total + c.meta.Interval - 1) / c.meta.Interval; covers > n {
			n = covers
		}
	}
	out := make([]Interval, n)
	for i := range out {
		out[i].Index = int64(i)
		out[i].Start = int64(i) * c.meta.Interval
		out[i].Cycles = c.meta.Interval
		if c.total > 0 && out[i].Start+out[i].Cycles > c.total {
			out[i].Cycles = c.total - out[i].Start
			if out[i].Cycles < 0 {
				out[i].Cycles = 0
			}
		}
	}
	for _, s := range c.shards {
		s.mu.Lock()
		for i, iv := range s.iv {
			out[i].Counters.add(iv)
		}
		s.mu.Unlock()
	}
	return out
}

// Totals sums every interval — the whole-run counters.
func (c *Collector) Totals() Counters {
	var t Counters
	for _, iv := range c.Intervals() {
		t.add(iv.Counters)
	}
	return t
}
