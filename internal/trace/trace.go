// Package trace is the simulator's observability subsystem: a low-overhead
// event vocabulary the sim core emits into (internal/sim carries a
// trace.Tracer in its Config), a concurrency-safe Collector that captures
// events into per-SM ring buffers and folds them into per-interval
// time-series counters, and exporters that turn a collected run into a
// Chrome trace-event / Perfetto JSON timeline or a CSV time-series dump.
//
// Tracing is strictly observational: an attached Tracer never changes the
// simulated machine's behaviour, so a traced run's Result is byte-identical
// to an untraced one (asserted by the differential tests in internal/sim).
// With a nil Tracer every emit site in the sim core is a single pointer
// comparison — the hot path does zero tracing work by default.
//
// The same vocabulary backs all consumers: the Perfetto timeline, the
// interval metrics CSV, and cmd/duplotrace's textual event dump — one
// tracing subsystem, not three (DESIGN.md §4).
package trace

import "fmt"

// Kind discriminates pipeline events. Each kind documents how the generic
// payload fields (A, B, Addr, Op, Level) are interpreted.
type Kind uint8

const (
	// KindIssue: a warp scheduler issued one instruction. Sched and Warp
	// identify the scheduler and warp slot, Op the instruction class, Addr
	// the memory address (loads/stores; 0 for MMA). A is the number of
	// row-vector tensor-core loads the instruction expands into (16 for a
	// wmma.load macro-op, 0 otherwise, §II-B).
	KindIssue Kind = iota
	// KindStall: at least one scheduler found no issuable warp this cycle.
	// A is the number of stalled schedulers, B how many of those were
	// blocked (at least in part) by a full LDST queue (§V-B).
	KindStall
	// KindStallSpan: the event-driven clock skipped the dead span
	// [Cycle, Cycle+A): every scheduler of this SM stalled on each skipped
	// cycle. A is the span length in cycles, B the per-cycle count of
	// LDST-blocked schedulers observed at the tick preceding the skip. A
	// collector must apportion the span's stall cycles arithmetically
	// across the intervals it crosses (same discipline as the dispatcher's
	// counter accounting in internal/sim/gpu.go).
	KindStallSpan
	// KindLHBHit: a row-vector load was eliminated by the detection unit —
	// an LHB hit renamed the destination to the previous load's registers
	// (§IV-B). Warp is the warp slot, Addr the row address.
	KindLHBHit
	// KindService: one cache-line request was serviced. Level is the
	// supplying level (LevelL1/LevelL2/LevelDRAM), Addr the line address,
	// Cycle the L1 tag-port cycle of the access.
	KindService
	// KindMSHRMerge: a line request merged into an in-flight L1 miss
	// instead of generating new traffic. Addr is the line address.
	KindMSHRMerge
	// KindLHBRelease: a retired tensor-core-load's LHB entries were
	// released after the register-reuse window (§V-C). A is the number of
	// entries released.
	KindLHBRelease
	numKinds
)

// String names the kind for the textual dump.
func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindStall:
		return "stall"
	case KindStallSpan:
		return "stall-span"
	case KindLHBHit:
		return "lhb-hit"
	case KindService:
		return "service"
	case KindMSHRMerge:
		return "mshr-merge"
	case KindLHBRelease:
		return "lhb-release"
	}
	return "?"
}

// Service levels, mirroring internal/sim's ServiceLevel values (the Fig. 11
// vocabulary). The correspondence is asserted by internal/sim's trace tests;
// trace cannot import sim (sim imports trace).
const (
	LevelLHB int8 = iota
	LevelL1
	LevelL2
	LevelDRAM
	NumLevels
)

// LevelName names a service level like the Fig. 11 legend.
func LevelName(l int8) string {
	switch l {
	case LevelLHB:
		return "LHB"
	case LevelL1:
		return "L1$"
	case LevelL2:
		return "L2$"
	case LevelDRAM:
		return "DRAM"
	}
	return "?"
}

// Instruction classes, mirroring internal/sim's Op values (asserted by the
// same tests).
const (
	OpLoadA int8 = iota
	OpLoadB
	OpMMA
	OpStoreD
	numOps
)

// OpName names the instruction class like PTX.
func OpName(op int8) string {
	switch op {
	case OpLoadA:
		return "wmma.load.a"
	case OpLoadB:
		return "wmma.load.b"
	case OpMMA:
		return "wmma.mma"
	case OpStoreD:
		return "wmma.store.d"
	}
	return "?"
}

// Event is one pipeline occurrence at a cycle on one SM. The SM index is
// not part of the event; it is the first argument of Tracer.Emit (events
// are stored per SM).
type Event struct {
	Cycle int64
	Addr  uint64
	A, B  int64 // kind-specific payloads (see Kind docs)
	Kind  Kind
	Op    int8  // instruction class (KindIssue)
	Level int8  // service level (KindService)
	Sched int8  // scheduler id (KindIssue), -1 otherwise
	Warp  int16 // warp slot (KindIssue, KindLHBHit), -1 otherwise
}

// Format renders the event as one line of the textual dump (the
// cmd/duplotrace view).
func Format(sm int, e Event) string {
	switch e.Kind {
	case KindIssue:
		s := fmt.Sprintf("cyc %8d  sm%d sch%d w%02d  %-12s %-13s", e.Cycle, sm, e.Sched, e.Warp, e.Kind, OpName(e.Op))
		if e.Op != OpMMA {
			s += fmt.Sprintf("  addr=%#x", e.Addr)
		}
		return s
	case KindStall:
		return fmt.Sprintf("cyc %8d  sm%d          %-12s %d schedulers (%d ldst-blocked)", e.Cycle, sm, e.Kind, e.A, e.B)
	case KindStallSpan:
		return fmt.Sprintf("cyc %8d  sm%d          %-12s %d cycles (%d ldst-blocked/cycle)", e.Cycle, sm, e.Kind, e.A, e.B)
	case KindLHBHit:
		return fmt.Sprintf("cyc %8d  sm%d      w%02d  %-12s row=%#x", e.Cycle, sm, e.Warp, e.Kind, e.Addr)
	case KindService:
		return fmt.Sprintf("cyc %8d  sm%d          %-12s %-4s line=%#x", e.Cycle, sm, e.Kind, LevelName(e.Level), e.Addr)
	case KindMSHRMerge:
		return fmt.Sprintf("cyc %8d  sm%d          %-12s line=%#x", e.Cycle, sm, e.Kind, e.Addr)
	case KindLHBRelease:
		return fmt.Sprintf("cyc %8d  sm%d          %-12s %d entries", e.Cycle, sm, e.Kind, e.A)
	}
	return fmt.Sprintf("cyc %8d  sm%d  ?kind=%d", e.Cycle, sm, e.Kind)
}

// Tracer receives pipeline events from the sim core. Implementations must
// be safe for concurrent use by multiple simulations only if they are
// actually shared across them; within one simulation, events for one SM
// arrive from a single goroutine in cycle order (except KindService /
// KindMSHRMerge, whose cycles are port-arbitrated and may trail the
// emission front).
type Tracer interface {
	Emit(sm int, e Event)
}

// Nop is a Tracer that discards everything — the no-op implementation used
// by the differential tests to exercise the emit path without collecting.
type Nop struct{}

// Emit discards the event.
func (Nop) Emit(int, Event) {}
