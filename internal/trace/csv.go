package trace

import (
	"bufio"
	"fmt"
	"io"
)

// csvHeader names the time-series columns. Counter columns are exact event
// counts whose per-column sums reconcile with the run's final sim.Stats
// (the conservation contract); rate columns are derived per interval.
const csvHeader = "interval,start_cycle,cycles,instructions,ipc," +
	"tensor_loads,loads_eliminated,lhb_rate,mmas,stores," +
	"issue_stall_cycles,ldst_stall_cycles," +
	"lhb_lines,l1_lines,l2_lines,dram_lines,mshr_merges," +
	"dram_bytes,dram_bw_util"

// WriteCSV writes the merged interval time series as CSV, one row per
// interval from cycle 0 through the end of the run (call Finish first so
// the last partial interval reports its true width). dram_bw_util is the
// fraction of the slice-scaled DRAM read bandwidth consumed (0 when the
// collector's Meta carries no bandwidth).
func (c *Collector) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, csvHeader)
	for _, iv := range c.Intervals() {
		dramBytes := iv.DRAMLines() * int64(c.meta.LineBytes)
		util := 0.0
		if c.meta.DRAMBytesPerCycle > 0 && iv.Cycles > 0 {
			util = float64(dramBytes) / (float64(iv.Cycles) * c.meta.DRAMBytesPerCycle)
		}
		fmt.Fprintf(bw, "%d,%d,%d,%d,%s,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			iv.Index, iv.Start, iv.Cycles,
			iv.Instructions, jsonFloat(iv.IPC()),
			iv.TensorLoads, iv.LoadsEliminated, jsonFloat(iv.LHBRate()),
			iv.MMAs, iv.Stores,
			iv.IssueStallCycles, iv.LDSTStallCycles,
			iv.ServiceLines[LevelLHB], iv.ServiceLines[LevelL1],
			iv.ServiceLines[LevelL2], iv.ServiceLines[LevelDRAM],
			iv.MSHRMerges, dramBytes, jsonFloat(util))
	}
	return bw.Flush()
}
