package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	duplo "duplo/internal/core"
	"duplo/internal/predictor"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/store"
	"duplo/internal/trace"
	"duplo/internal/workload"
)

// Runner memoizes simulator runs so experiments sharing configurations
// (Fig. 9 and Fig. 10, for instance) pay for each simulation once, and
// executes independent simulations on a bounded worker pool.
//
// The cache is singleflight: when several goroutines request the same
// (kernel, config) key concurrently, exactly one simulates and the rest
// wait for its result. The pool bound applies to executing simulations
// only — waiters hold no slot — so nested fan-outs (Fig. 14 launching
// per-network sweeps that launch per-GEMM runs) cannot deadlock.
type Runner struct {
	opts    Options
	workers int
	sem     chan struct{}   // bounds concurrently executing simulations
	sink    *report.Sink    // nil unless Verbose
	ctx     context.Context // cancels in-flight and future simulations

	// simFn executes one simulation (sim.RunPooledContext; the arena is nil
	// when state pooling is disabled). It is a seam the robustness tests
	// override to inject deterministic per-cell failures.
	simFn func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error)

	// arenas pools per-run simulator state across the sweep's cells
	// (sim.Arena): an executing simulation takes one arena, runs with it,
	// and returns it, so at most Workers arenas exist and each is reused by
	// whichever cell executes next. Arenas self-invalidate on failed runs,
	// making the recycle unconditional. nil when Options.DisableStatePool.
	arenas *sync.Pool

	// store is the optional on-disk second cache tier (Options.Store): a
	// memoization miss consults it before simulating, and successful runs
	// are persisted through it. nil = memory-only, the pre-store behavior.
	store *store.Store

	mu    sync.Mutex
	cache map[string]*cacheEntry

	// Calibrated analytical predictor state (predict.go): the installed
	// calibration (nil until first use), a remembered fit failure so a
	// broken calibration degrades to ground truth once instead of
	// re-fitting per cell, and the lock serializing first-use fitting.
	calMu  sync.Mutex
	cal    *predictor.Calibration
	calErr error

	execs     atomic.Int64 // simulations actually executed (all tiers missed)
	memHits   atomic.Int64 // runs served from the in-memory singleflight cache
	storeHits atomic.Int64 // runs served from the disk tier
	predicted atomic.Int64 // runs synthesized by the analytical predictor
}

// cacheEntry is one singleflight slot: done closes when res/err are final.
type cacheEntry struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// NewRunner builds a runner with opts.Workers pool slots (default
// runtime.GOMAXPROCS(0)).
func NewRunner(opts Options) *Runner {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var sink *report.Sink
	if opts.Verbose {
		if opts.Progress != nil {
			sink = report.NewSink(opts.Progress)
		} else {
			sink = report.NewWriterSink(os.Stdout)
		}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	r := &Runner{
		opts:    opts,
		workers: w,
		sem:     make(chan struct{}, w),
		sink:    sink,
		ctx:     ctx,
		simFn:   sim.RunPooledContext,
		store:   opts.Store,
		cache:   make(map[string]*cacheEntry),
	}
	if !opts.DisableStatePool {
		r.arenas = &sync.Pool{New: func() interface{} { return sim.NewArena() }}
	}
	if opts.Faults != nil {
		r.simFn = faultWrap(opts.Faults, r.simFn)
	}
	return r
}

// faultWrap layers a SimFaultInjector over the simulate function: injected
// delays stall before the run (losing to cancellation with the usual typed
// error), injected faults surface as contained sim.PhasePanic errors — the
// exact failure shape a real in-loop panic produces, so the whole typed
// error path (problem documents, failed-run eviction, crash accounting) is
// exercised without ever crashing a server goroutine. Nil Faults never
// reaches here; the production simFn is untouched.
func faultWrap(f SimFaultInjector, next func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error)) func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
	return func(ctx context.Context, cfg sim.Config, k *sim.Kernel, ar *sim.Arena) (sim.Result, error) {
		if d := f.SimDelay(k.Name); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				phase := sim.PhaseCancelled
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					phase = sim.PhaseDeadline
				}
				return sim.Result{}, &sim.SimError{Phase: phase, Reason: "cancelled during injected delay", Err: ctx.Err()}
			case <-t.C:
			}
		}
		if ferr := f.SimFault(k.Name); ferr != nil {
			return sim.Result{}, &sim.SimError{
				Phase:  sim.PhasePanic,
				Reason: fmt.Sprintf("injected simulation fault: %v", ferr),
				Err:    ferr,
			}
		}
		return next(ctx, cfg, k, ar)
	}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Execs returns how many simulations actually ran (misses in both cache
// tiers); memory hits, disk-store hits and coalesced concurrent requests
// do not count.
func (r *Runner) Execs() int64 { return r.execs.Load() }

// StoreHits returns how many runs were served from the disk tier instead
// of simulating (0 when no store is configured).
func (r *Runner) StoreHits() int64 { return r.storeHits.Load() }

// Predicted returns how many runs were synthesized by the calibrated
// analytical predictor instead of simulating (0 unless Options.Predictor
// enables it). Memoized re-reads of a predicted cell are not counted.
func (r *Runner) Predicted() int64 { return r.predicted.Load() }

// CacheStats is a point-in-time snapshot of the runner's tiered caching
// activity, surfaced by `duploexp -v` and duploserved's /statsz.
type CacheStats struct {
	Workers   int   `json:"workers"`
	Execs     int64 `json:"execs"`
	MemHits   int64 `json:"mem_hits"`
	StoreHits int64 `json:"store_hits"`
	Predicted int64 `json:"predicted"`
}

// CacheStats snapshots the tier counters. Like store.Counters, the
// snapshot is not atomic across fields but each field is exact.
func (r *Runner) CacheStats() CacheStats {
	return CacheStats{
		Workers:   r.workers,
		Execs:     r.execs.Load(),
		MemHits:   r.memHits.Load(),
		StoreHits: r.storeHits.Load(),
		Predicted: r.predicted.Load(),
	}
}

// Store returns the disk tier, nil when the runner is memory-only.
func (r *Runner) Store() *store.Store { return r.store }

// progress emits one formatted progress line through the concurrency-safe
// sink (no-op unless Options.Verbose).
func (r *Runner) progress(format string, args ...interface{}) {
	if r.sink != nil {
		r.sink.Println(fmt.Sprintf(format, args...))
	}
}

// key builds a cache key for a kernel/config combination. DenseClock and
// SMWorkers are included for hygiene even though the clocks and the SM-worker
// counts are byte-identical by contract (clock_test.go, parallel_sm_test.go),
// so a deliberate cross-mode comparison is never served from the cache.
func (r *Runner) key(kernelName string, cfg sim.Config) string {
	d := cfg.DetectCfg
	return fmt.Sprintf("%s|d=%v|e=%d,w=%d,o=%v,ne=%v,mi=%v|lat=%d|cta=%d|sm=%d|b=%d|rl=%d|l1=%d|l2=%d|dc=%v|smw=%d|mc=%d|wt=%v",
		kernelName, cfg.Duplo, d.LHB.Entries, d.LHB.Ways, d.LHB.Oracle, d.LHB.NeverEvict, d.LHB.ModuloIndex,
		d.LatencyCycles, cfg.MaxCTAs, cfg.SimSMs, 0, cfg.RetireDelay, cfg.L1KB, cfg.L2KB, cfg.DenseClock,
		cfg.SMWorkers, cfg.MaxCycles, cfg.WallTimeout)
}

// Run obtains kernel k's result under cfg, memoized and singleflighted:
// safe for concurrent use, and each unique key simulates at most once per
// attempt wave. Only successful runs stay memoized — a failed run's entry
// is evicted before it is published, so concurrent waiters get the error
// but a later request retries instead of being served a poisoned key for
// the process lifetime.
//
// When Options.Predictor enables the analytical fast path, Run may return
// a predicted (marked, never persisted) result instead of simulating —
// see runTier in predict.go for the exact decision. RunExact always
// simulates.
func (r *Runner) Run(k *sim.Kernel, cfg sim.Config) (sim.Result, error) {
	return r.runTier(r.ctx, k, cfg, false)
}

// RunHeadline is Run for cells that feed a table's headline ratios: in
// hybrid mode these always simulate (the safety contract), while
// predict-all still predicts them (the caller asked for speed over
// everything inside the gate).
func (r *Runner) RunHeadline(k *sim.Kernel, cfg sim.Config) (sim.Result, error) {
	return r.runTier(r.ctx, k, cfg, true)
}

// RunCtx is the exact-tier Run with an explicit context governing this
// request's execution: when this request ends up being the one that
// simulates, ctx (not the runner-wide context) cancels it. Coalesced
// waiters share the executing request's fate — a cancelled executor
// propagates its error to the waiters, and the eviction semantics mean
// their retry re-simulates. duploserved uses this for per-job
// cancellation on a shared runner; a nil ctx selects the runner-wide
// context. RunCtx never predicts: single-run requests (POST /v1/runs,
// duplosim's default) are ground-truth API surface.
func (r *Runner) RunCtx(ctx context.Context, k *sim.Kernel, cfg sim.Config) (sim.Result, error) {
	if ctx == nil {
		ctx = r.ctx
	}
	key := r.key(k.Name, cfg)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.memHits.Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	// Disk tier. Traced runs bypass it in both directions: a collector
	// must observe an actual execution, and its result (byte-identical by
	// the tracing contract) would be a redundant write. The lookup happens
	// before a pool slot is taken — a store hit never occupies simulation
	// capacity.
	persist := r.store != nil && cfg.Tracer == nil
	if persist {
		if rec, ok := r.store.Get(key); ok {
			r.storeHits.Add(1)
			e.res = rec.Result(k, cfg)
			close(e.done)
			return e.res, nil
		}
	}

	r.sem <- struct{}{}
	r.execs.Add(1)
	var ar *sim.Arena
	if r.arenas != nil {
		ar = r.arenas.Get().(*sim.Arena)
	}
	e.res, e.err = r.simFn(ctx, cfg, k, ar)
	if ar != nil {
		// Unconditional recycle: a failed run leaves the arena marked
		// dirty, and the next run through it rebuilds instead of reusing.
		r.arenas.Put(ar)
	}
	<-r.sem
	if e.err != nil {
		// Evict before closing done: once waiters wake, the failed key
		// must already be gone. Guard on identity — a retry may have
		// installed a fresh entry in the window. Nothing is persisted, so
		// the disk tier inherits the same semantics: a failed run can
		// never be served from the store.
		r.mu.Lock()
		if r.cache[key] == e {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	} else if persist {
		// Best-effort: a full disk must not fail the sweep. The error is
		// surfaced on the progress sink and in the store's PutErrors
		// counter (statsz).
		if perr := r.store.Put(key, store.RecordOf(e.res)); perr != nil {
			r.progress("store: persist %s: %v", k.Name, perr)
		}
	}
	close(e.done)
	return e.res, e.err
}

// fanOutAll runs n independent tasks on the worker pool and returns one
// error slot per task. Every task runs — the serial path does not stop at
// the first failure — so a sweep degrades to per-cell errors instead of
// aborting the figure, and the outputs written so far stay valid for a
// partial table. A panicking task is contained into its own error slot;
// the remaining tasks still run. Tasks must write their outputs to
// disjoint, index-addressed slots so assembly order is the caller's loop
// order, not completion order.
func (r *Runner) fanOutAll(n int, f func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	call := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("experiments: task %d panicked: %v", i, p)
			}
		}()
		return f(i)
	}
	if r.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errs
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = call(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// fanOut is the all-or-nothing form: every task runs (and drains), and the
// lowest-index error is returned — deterministic regardless of completion
// order. Callers that can render partial results use fanOutAll directly.
func (r *Runner) fanOut(n int, f func(i int) error) error {
	for _, err := range r.fanOutAll(n, f) {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachLayer fans one task per layer out on the pool, returning one
// error slot per layer.
func (r *Runner) forEachLayer(layers []workload.Layer, f func(i int, l workload.Layer) error) []error {
	return r.fanOutAll(len(layers), func(i int) error { return f(i, layers[i]) })
}

// LayerKernel builds the forward tensor-core GEMM kernel for a layer.
func LayerKernel(l workload.Layer) (*sim.Kernel, error) {
	return sim.NewConvKernel(l.FullName(), l.GemmParams())
}

// Baseline runs the layer without Duplo (predict-aware; headline marks
// cells feeding a table's headline ratios, which hybrid mode always
// simulates).
func (r *Runner) Baseline(l workload.Layer) (sim.Result, error) {
	return r.baseline(l, false)
}

func (r *Runner) baseline(l workload.Layer, headline bool) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	return r.runTier(r.ctx, k, r.opts.config(), headline)
}

// Duplo runs the layer with the given LHB configuration (predict-aware).
func (r *Runner) Duplo(l workload.Layer, lhb duplo.LHBConfig) (sim.Result, error) {
	return r.duplo(l, lhb, false)
}

func (r *Runner) duplo(l workload.Layer, lhb duplo.LHBConfig, headline bool) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	cfg := r.opts.config()
	cfg.Duplo = true
	cfg.DetectCfg.LHB = lhb
	return r.runTier(r.ctx, k, cfg, headline)
}

// TraceRun simulates one named cell — the layer at this runner's scale,
// baseline or Duplo (DefaultLHB) — with an event collector attached, and
// returns the finished collector alongside the result. It deliberately
// bypasses the run cache: the memoized result of an untraced twin would
// be byte-identical (tracing never perturbs a run), but the collector
// must observe an actual execution. interval <= 0 selects
// trace.DefaultInterval; ringCap <= 0 trace.DefaultRingCap.
func (r *Runner) TraceRun(l workload.Layer, withDuplo bool, interval int64, ringCap int) (sim.Result, *trace.Collector, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, nil, err
	}
	cfg := r.opts.config()
	if withDuplo {
		cfg.Duplo = true
		cfg.DetectCfg.LHB = DefaultLHB
	}
	meta := cfg.TraceMeta(interval)
	meta.RingCap = ringCap
	col := trace.NewCollector(meta)
	cfg.Tracer = col
	res, err := sim.Run(cfg, k)
	if err != nil {
		return sim.Result{}, nil, err
	}
	col.Finish(res.Cycles)
	return res, col, nil
}
