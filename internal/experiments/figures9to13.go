package experiments

import (
	"fmt"

	duplo "duplo/internal/core"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// Fig9 reproduces Figure 9: per-layer performance improvement of Duplo over
// the baseline for variable-sized LHBs (256 to 2048 entries plus the
// oracle), ending with the gmean row. The layer x size sweep fans out on
// the worker pool; rows are assembled in Table I order. On partial
// failure the table is still returned (failed cells render "ERR")
// alongside a *SweepError naming them.
func (r *Runner) Fig9() (*report.Table, error) {
	layers := r.opts.layers()
	headers := []string{"Layer"}
	for _, p := range LHBPoints {
		headers = append(headers, p.Name)
	}
	t := report.NewTable("Figure 9: Performance improvement vs LHB size", headers...)
	imps := make([][]float64, len(layers))
	preds := predMatrix(len(layers), len(LHBPoints))
	for i := range imps {
		imps[i] = make([]float64, len(LHBPoints))
	}
	errs := r.fanOutAll(len(layers)*len(LHBPoints), func(idx int) error {
		li, pi := idx/len(LHBPoints), idx%len(LHBPoints)
		l := layers[li]
		// The 1024-entry column is the paper's chosen design point — the
		// headline ratio hybrid mode never predicts.
		headline := LHBPoints[pi].Cfg == DefaultLHB
		base, err := r.baseline(l, headline)
		if err != nil {
			return err
		}
		dup, err := r.duplo(l, LHBPoints[pi].Cfg, headline)
		if err != nil {
			return err
		}
		imps[li][pi] = sim.Speedup(base, dup)
		preds[li][pi] = predErrOf(base, dup)
		r.progress("fig9 %s %s done", l.FullName(), LHBPoints[pi].Name)
		return nil
	})
	renderGrid(t, layers, len(LHBPoints), errs, imps, preds, report.Pct, "Gmean", gmeanImprovement)
	return t, sweepError("fig9", errs, gridLabel(layers, len(LHBPoints),
		func(pi int) string { return LHBPoints[pi].Name }))
}

// Fig10 reproduces Figure 10: LHB hit rate per layer for the same sweep.
func (r *Runner) Fig10() (*report.Table, error) {
	layers := r.opts.layers()
	headers := []string{"Layer"}
	for _, p := range LHBPoints {
		headers = append(headers, p.Name)
	}
	t := report.NewTable("Figure 10: LHB hit rate vs size", headers...)
	rates := make([][]float64, len(layers))
	preds := predMatrix(len(layers), len(LHBPoints))
	for i := range rates {
		rates[i] = make([]float64, len(LHBPoints))
	}
	errs := r.fanOutAll(len(layers)*len(LHBPoints), func(idx int) error {
		li, pi := idx/len(LHBPoints), idx%len(LHBPoints)
		headline := LHBPoints[pi].Cfg == DefaultLHB
		dup, err := r.duplo(layers[li], LHBPoints[pi].Cfg, headline)
		if err != nil {
			return err
		}
		rates[li][pi] = dup.LHBHitRate()
		preds[li][pi] = predErrOf(dup)
		r.progress("fig10 %s %s done", layers[li].FullName(), LHBPoints[pi].Name)
		return nil
	})
	renderGrid(t, layers, len(LHBPoints), errs, rates, preds, report.PctU, "Mean", mean)
	return t, sweepError("fig10", errs, gridLabel(layers, len(LHBPoints),
		func(pi int) string { return LHBPoints[pi].Name }))
}

// fig11Row carries one layer's pre-rendered baseline/Duplo rows and its
// traffic deltas from a worker to the in-order assembly loop.
type fig11Row struct {
	baseCells, dupCells []string
	dDRAM, dL1, dL2     float64
}

// Fig11 reproduces Figure 11: the breakdown of which memory-hierarchy level
// services load data, baseline (B) vs Duplo with a 1024-entry LHB (D), plus
// the traffic deltas the paper quotes (§V-D: DRAM -26.6%, L1 -28.1%,
// L2 -19.2% on average).
func (r *Runner) Fig11() (*report.Table, error) {
	layers := r.opts.layers()
	t := report.NewTable("Figure 11: Memory service breakdown (B=baseline, D=Duplo 1024)",
		"Layer", "Cfg", "LHB", "L1$", "L2$", "DRAM", "dDRAM", "dL1svc", "dL2svc")
	rows := make([]fig11Row, len(layers))
	preds := make([]float64, len(layers))
	for i := range preds {
		preds[i] = -1
	}
	errs := r.forEachLayer(layers, func(i int, l workload.Layer) error {
		// Every cell here feeds the §V-D headline deltas, so the whole
		// figure is headline: hybrid mode always simulates it, predict-all
		// predicts (and marks) it.
		base, err := r.baseline(l, true)
		if err != nil {
			return err
		}
		dup, err := r.duplo(l, DefaultLHB, true)
		if err != nil {
			return err
		}
		pe := predErrOf(base, dup)
		preds[i] = pe
		mark := func(s string) string { return markPred(s, pe) }
		bb := base.ServiceBreakdown()
		db := dup.ServiceBreakdown()
		rd := ratioDelta(dup.DRAMLines, base.DRAMLines)
		// "Data services" deltas, like §V-D (not tag probes — Duplo still
		// probes the L1 in parallel with the LHB).
		rl1 := ratioDelta(dup.ServiceLines[sim.ServiceL1], base.ServiceLines[sim.ServiceL1])
		rl2 := ratioDelta(dup.ServiceLines[sim.ServiceL2], base.ServiceLines[sim.ServiceL2])
		rows[i] = fig11Row{
			baseCells: []string{l.FullName(), "B",
				mark(report.PctU(bb[sim.ServiceLHB])), mark(report.PctU(bb[sim.ServiceL1])),
				mark(report.PctU(bb[sim.ServiceL2])), mark(report.PctU(bb[sim.ServiceDRAM])), "", "", ""},
			dupCells: []string{"", "D",
				mark(report.PctU(db[sim.ServiceLHB])), mark(report.PctU(db[sim.ServiceL1])),
				mark(report.PctU(db[sim.ServiceL2])), mark(report.PctU(db[sim.ServiceDRAM])),
				mark(report.Pct(rd)), mark(report.Pct(rl1)), mark(report.Pct(rl2))},
			dDRAM: rd, dL1: rl1, dL2: rl2,
		}
		r.progress("fig11 %s done", l.FullName())
		return nil
	})
	var dDRAM, dL1, dL2 []float64
	failed, anyPred := false, false
	for i, row := range rows {
		if errs[i] != nil {
			failed = true
			t.AddRowCells([]string{layers[i].FullName(), "B",
				errCell, errCell, errCell, errCell, "", "", ""})
			t.AddRowCells([]string{"", "D",
				errCell, errCell, errCell, errCell, errCell, errCell, errCell})
			continue
		}
		if preds[i] >= 0 {
			anyPred = true
		}
		t.AddRowCells(row.baseCells)
		t.AddRowCells(row.dupCells)
		dDRAM = append(dDRAM, row.dDRAM)
		dL1 = append(dL1, row.dL1)
		dL2 = append(dL2, row.dL2)
	}
	meanMark := func(s string) string {
		if anyPred {
			return s + predictedMark
		}
		return s
	}
	if failed {
		t.AddRowCells([]string{"Mean", "", "", "", "", "", errCell, errCell, errCell})
	} else {
		t.AddRowCells([]string{"Mean", "", "", "", "", "",
			meanMark(report.Pct(mean(dDRAM))), meanMark(report.Pct(mean(dL1))), meanMark(report.Pct(mean(dL2)))})
	}
	predNote(t, preds)
	return t, sweepError("fig11", errs, func(i int) string { return layers[i].FullName() })
}

func ratioDelta(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a)/float64(b) - 1
}

// Fig12 reproduces Figure 12: set-associative LHBs (1024 entries total) vs
// the direct-mapped default. The paper finds 8-way buys only ~3.6%.
func (r *Runner) Fig12() (*report.Table, error) {
	layers := r.opts.layers()
	ways := []int{1, 2, 4, 8}
	headers := []string{"Layer"}
	for _, w := range ways {
		if w == 1 {
			headers = append(headers, "Direct")
		} else {
			headers = append(headers, fmt.Sprintf("%d-way", w))
		}
	}
	t := report.NewTable("Figure 12: Performance improvement vs LHB associativity (1024 entries)", headers...)
	imps := make([][]float64, len(layers))
	preds := predMatrix(len(layers), len(ways))
	for i := range imps {
		imps[i] = make([]float64, len(ways))
	}
	errs := r.fanOutAll(len(layers)*len(ways), func(idx int) error {
		li, wi := idx/len(ways), idx%len(ways)
		l := layers[li]
		// Direct-mapped is the recommended design (§V-E) — the headline
		// column. Associative cells are outside the calibrated envelope
		// anyway (the fit never saw Ways > 1), so they always simulate.
		headline := ways[wi] == 1
		base, err := r.baseline(l, headline)
		if err != nil {
			return err
		}
		dup, err := r.duplo(l, duplo.LHBConfig{Entries: 1024, Ways: ways[wi]}, headline)
		if err != nil {
			return err
		}
		imps[li][wi] = sim.Speedup(base, dup)
		preds[li][wi] = predErrOf(base, dup)
		r.progress("fig12 %s %d-way done", l.FullName(), ways[wi])
		return nil
	})
	renderGrid(t, layers, len(ways), errs, imps, preds, report.Pct, "Gmean", gmeanImprovement)
	return t, sweepError("fig12", errs, gridLabel(layers, len(ways),
		func(wi int) string { return fmt.Sprintf("%d-way", ways[wi]) }))
}

// Fig13 reproduces Figure 13: Duplo's improvement with batch sizes 8, 16
// and 32 (1024-entry LHB). Larger batches enlarge the workspace without
// adding cross-image duplication, so the fixed-size LHB covers a smaller
// fraction (§V-F).
func (r *Runner) Fig13() (*report.Table, error) {
	layers := r.opts.layers()
	batches := []int{8, 16, 32}
	headers := []string{"Layer"}
	for _, b := range batches {
		headers = append(headers, fmt.Sprintf("Batch %d", b))
	}
	t := report.NewTable("Figure 13: Performance improvement vs batch size (1024-entry LHB)", headers...)
	imps := make([][]float64, len(layers))
	preds := predMatrix(len(layers), len(batches))
	for i := range imps {
		imps[i] = make([]float64, len(batches))
	}
	errs := r.fanOutAll(len(layers)*len(batches), func(idx int) error {
		li, bi := idx/len(batches), idx%len(batches)
		l, b := layers[li], batches[bi]
		k, err := BatchKernel(l, b)
		if err != nil {
			return err
		}
		cfg := r.opts.config()
		base, err := r.Run(k, cfg)
		if err != nil {
			return err
		}
		cfg.Duplo = true
		cfg.DetectCfg.LHB = DefaultLHB
		dup, err := r.Run(k, cfg)
		if err != nil {
			return err
		}
		imps[li][bi] = sim.Speedup(base, dup)
		preds[li][bi] = predErrOf(base, dup)
		r.progress("fig13 %s b%d done", l.FullName(), b)
		return nil
	})
	renderGrid(t, layers, len(batches), errs, imps, preds, report.Pct, "Gmean", gmeanImprovement)
	return t, sweepError("fig13", errs, gridLabel(layers, len(batches),
		func(bi int) string { return fmt.Sprintf("b%d", batches[bi]) }))
}
