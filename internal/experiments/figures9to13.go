package experiments

import (
	"fmt"

	duplo "duplo/internal/core"
	"duplo/internal/report"
	"duplo/internal/sim"
)

// Fig9 reproduces Figure 9: per-layer performance improvement of Duplo over
// the baseline for variable-sized LHBs (256 to 2048 entries plus the
// oracle), ending with the gmean row.
func (r *Runner) Fig9() (*report.Table, error) {
	headers := []string{"Layer"}
	for _, p := range LHBPoints {
		headers = append(headers, p.Name)
	}
	t := report.NewTable("Figure 9: Performance improvement vs LHB size", headers...)
	agg := make([][]float64, len(LHBPoints))
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		row := []string{l.FullName()}
		for i, pt := range LHBPoints {
			dup, err := r.Duplo(l, pt.Cfg)
			if err != nil {
				return nil, err
			}
			imp := sim.Speedup(base, dup)
			agg[i] = append(agg[i], imp)
			row = append(row, report.Pct(imp))
		}
		t.AddRowCells(row)
		r.opts.progress("fig9 %s done", l.FullName())
	}
	g := []string{"Gmean"}
	for i := range LHBPoints {
		g = append(g, report.Pct(gmeanImprovement(agg[i])))
	}
	t.AddRowCells(g)
	return t, nil
}

// Fig10 reproduces Figure 10: LHB hit rate per layer for the same sweep.
func (r *Runner) Fig10() (*report.Table, error) {
	headers := []string{"Layer"}
	for _, p := range LHBPoints {
		headers = append(headers, p.Name)
	}
	t := report.NewTable("Figure 10: LHB hit rate vs size", headers...)
	agg := make([][]float64, len(LHBPoints))
	for _, l := range r.opts.layers() {
		row := []string{l.FullName()}
		for i, pt := range LHBPoints {
			dup, err := r.Duplo(l, pt.Cfg)
			if err != nil {
				return nil, err
			}
			hr := dup.LHBHitRate()
			agg[i] = append(agg[i], hr)
			row = append(row, report.PctU(hr))
		}
		t.AddRowCells(row)
		r.opts.progress("fig10 %s done", l.FullName())
	}
	g := []string{"Mean"}
	for i := range LHBPoints {
		g = append(g, report.PctU(mean(agg[i])))
	}
	t.AddRowCells(g)
	return t, nil
}

// Fig11 reproduces Figure 11: the breakdown of which memory-hierarchy level
// services load data, baseline (B) vs Duplo with a 1024-entry LHB (D), plus
// the traffic deltas the paper quotes (§V-D: DRAM -26.6%, L1 -28.1%,
// L2 -19.2% on average).
func (r *Runner) Fig11() (*report.Table, error) {
	t := report.NewTable("Figure 11: Memory service breakdown (B=baseline, D=Duplo 1024)",
		"Layer", "Cfg", "LHB", "L1$", "L2$", "DRAM", "dDRAM", "dL1svc", "dL2svc")
	var dDRAM, dL1, dL2 []float64
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		dup, err := r.Duplo(l, DefaultLHB)
		if err != nil {
			return nil, err
		}
		bb := base.ServiceBreakdown()
		db := dup.ServiceBreakdown()
		t.AddRowCells([]string{l.FullName(), "B",
			report.PctU(bb[sim.ServiceLHB]), report.PctU(bb[sim.ServiceL1]),
			report.PctU(bb[sim.ServiceL2]), report.PctU(bb[sim.ServiceDRAM]), "", "", ""})
		rd := ratioDelta(dup.DRAMLines, base.DRAMLines)
		// "Data services" deltas, like §V-D (not tag probes — Duplo still
		// probes the L1 in parallel with the LHB).
		rl1 := ratioDelta(dup.ServiceLines[sim.ServiceL1], base.ServiceLines[sim.ServiceL1])
		rl2 := ratioDelta(dup.ServiceLines[sim.ServiceL2], base.ServiceLines[sim.ServiceL2])
		dDRAM = append(dDRAM, rd)
		dL1 = append(dL1, rl1)
		dL2 = append(dL2, rl2)
		t.AddRowCells([]string{"", "D",
			report.PctU(db[sim.ServiceLHB]), report.PctU(db[sim.ServiceL1]),
			report.PctU(db[sim.ServiceL2]), report.PctU(db[sim.ServiceDRAM]),
			report.Pct(rd), report.Pct(rl1), report.Pct(rl2)})
		r.opts.progress("fig11 %s done", l.FullName())
	}
	t.AddRowCells([]string{"Mean", "", "", "", "", "",
		report.Pct(mean(dDRAM)), report.Pct(mean(dL1)), report.Pct(mean(dL2))})
	return t, nil
}

func ratioDelta(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a)/float64(b) - 1
}

// Fig12 reproduces Figure 12: set-associative LHBs (1024 entries total) vs
// the direct-mapped default. The paper finds 8-way buys only ~3.6%.
func (r *Runner) Fig12() (*report.Table, error) {
	ways := []int{1, 2, 4, 8}
	headers := []string{"Layer"}
	for _, w := range ways {
		if w == 1 {
			headers = append(headers, "Direct")
		} else {
			headers = append(headers, fmt.Sprintf("%d-way", w))
		}
	}
	t := report.NewTable("Figure 12: Performance improvement vs LHB associativity (1024 entries)", headers...)
	agg := make([][]float64, len(ways))
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		row := []string{l.FullName()}
		for i, w := range ways {
			dup, err := r.Duplo(l, duplo.LHBConfig{Entries: 1024, Ways: w})
			if err != nil {
				return nil, err
			}
			imp := sim.Speedup(base, dup)
			agg[i] = append(agg[i], imp)
			row = append(row, report.Pct(imp))
		}
		t.AddRowCells(row)
		r.opts.progress("fig12 %s done", l.FullName())
	}
	g := []string{"Gmean"}
	for i := range ways {
		g = append(g, report.Pct(gmeanImprovement(agg[i])))
	}
	t.AddRowCells(g)
	return t, nil
}

// Fig13 reproduces Figure 13: Duplo's improvement with batch sizes 8, 16
// and 32 (1024-entry LHB). Larger batches enlarge the workspace without
// adding cross-image duplication, so the fixed-size LHB covers a smaller
// fraction (§V-F).
func (r *Runner) Fig13() (*report.Table, error) {
	batches := []int{8, 16, 32}
	headers := []string{"Layer"}
	for _, b := range batches {
		headers = append(headers, fmt.Sprintf("Batch %d", b))
	}
	t := report.NewTable("Figure 13: Performance improvement vs batch size (1024-entry LHB)", headers...)
	agg := make([][]float64, len(batches))
	for _, l := range r.opts.layers() {
		row := []string{l.FullName()}
		for i, b := range batches {
			lb := l
			lb.Params = l.Params.WithBatch(b)
			k, err := LayerKernel(lb)
			if err != nil {
				return nil, err
			}
			k.Name = fmt.Sprintf("%s@b%d", lb.FullName(), b)
			cfg := r.opts.config()
			base, err := r.Run(k, cfg)
			if err != nil {
				return nil, err
			}
			cfg.Duplo = true
			cfg.DetectCfg.LHB = DefaultLHB
			dup, err := r.Run(k, cfg)
			if err != nil {
				return nil, err
			}
			imp := sim.Speedup(base, dup)
			agg[i] = append(agg[i], imp)
			row = append(row, report.Pct(imp))
		}
		t.AddRowCells(row)
		r.opts.progress("fig13 %s done", l.FullName())
	}
	g := []string{"Gmean"}
	for i := range batches {
		g = append(g, report.Pct(gmeanImprovement(agg[i])))
	}
	t.AddRowCells(g)
	return t, nil
}
