package experiments

import (
	"fmt"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
	"duplo/internal/lowering"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// Table1 reproduces Table I: the configuration of the convolutional layers.
func Table1() *report.Table {
	t := report.NewTable("Table I: Configuration of Convolutional Layers in DNNs",
		"Network", "Layer", "Input(NHWC)", "Filter(KHWC)", "Pad", "Stride")
	for _, l := range workload.AllLayers() {
		p := l.Params
		t.AddRow(l.Network, l.Name,
			fmt.Sprintf("%dx%dx%dx%d", p.N, p.H, p.W, p.C),
			fmt.Sprintf("%dx%dx%dx%d", p.K, p.FH, p.FW, p.C),
			p.Pad, p.Stride)
	}
	return t
}

// Table2 reproduces Table II: the Duplo workflow example on the Fig. 6
// workspace, executed on a real detection unit.
func Table2() (*report.Table, error) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	layout := lowering.NewLayout(p, 0x1000, 2)
	du, err := duplo.NewDetectionUnit(duplo.DetectionUnitConfig{
		LHB:           duplo.LHBConfig{Entries: 4, Ways: 1, ModuloIndex: true},
		LatencyCycles: 2,
	}, 4, 16)
	if err != nil {
		return nil, err
	}
	if err := du.Program(p, layout); err != nil {
		return nil, err
	}
	t := report.NewTable("Table II: Duplo Workflow Using the LHB",
		"Inst", "Op", "array_idx", "element_ID", "LHB entry", "LHB status", "Renaming", "LHB operation")

	type step struct {
		op       string
		arrayIdx int // -1: non-workspace load
		dst      int
	}
	steps := []step{
		{"wmma.load.a %r4", 2, 4},
		{"wmma.load.b %r2", -1, 2},
		{"wmma.load.a %r3", 10, 3},
		{"wmma.load.a %r8", 28, 8},
	}
	for i, s := range steps {
		var addr uint64 = 0x9000_0000
		if s.arrayIdx >= 0 {
			addr = layout.Addr(s.arrayIdx/9, s.arrayIdx%9)
		}
		before := du.LHBStats()
		res, _ := du.Access(0, s.dst, addr, 0)
		after := du.LHBStats()
		idx, elem, status, rename, op := "-", "-", "N/A", "-", "N/A"
		if s.arrayIdx >= 0 {
			idx = fmt.Sprint(s.arrayIdx)
		}
		switch res.Kind {
		case duplo.AccessHit:
			elem = fmt.Sprint(res.ID.Elem)
			status = "Hit"
			rename = fmt.Sprintf("%%r%d -> %%p%d", s.dst, res.Reg)
			op = "Register reuse"
		case duplo.AccessMiss:
			elem = fmt.Sprint(res.ID.Elem)
			status = "Miss"
			rename = fmt.Sprintf("%%r%d -> %%p%d", s.dst, res.Reg)
			if after.Replacements > before.Replacements {
				op = "Entry replacement"
			} else {
				op = "Entry allocation"
			}
		}
		entry := "-"
		if res.Kind != duplo.AccessBypass {
			entry = fmt.Sprint(res.ID.Elem % 4)
		}
		t.AddRow(i+1, s.op, idx, elem, entry, status, rename, op)
	}
	return t, nil
}

// Table3 reproduces Table III: the baseline GPU configuration.
func Table3() *report.Table {
	cfg := sim.TitanVConfig()
	t := report.NewTable("Table III: Configuration of Baseline GPU Model", "Parameter", "Value")
	t.AddRow("# of SMs", cfg.NumSMs)
	t.AddRow("Clock frequency", fmt.Sprintf("%dMHz", cfg.ClockMHz))
	t.AddRow("Max # of CTAs/SM", cfg.MaxCTAsPerSM)
	t.AddRow("Max # of warps/SM", cfg.MaxWarpsPerSM)
	t.AddRow("Warp schedulers/SM", cfg.Schedulers)
	t.AddRow("Warp scheduling policy", "Greedy-then-oldest (GTO)")
	t.AddRow("Tensor cores/SM", cfg.TensorCores)
	t.AddRow("Register file/SM", fmt.Sprintf("%dKB", cfg.RegFileKB))
	t.AddRow("Unified L1 cache/SM", fmt.Sprintf("%dKB", cfg.L1KB))
	t.AddRow("L2 cache", fmt.Sprintf("%.1fMB, %d ways, %d cycles", float64(cfg.L2KB)/1024, cfg.L2Ways, cfg.L2LatencyCycles))
	t.AddRow("DRAM bandwidth", fmt.Sprintf("%.1fGB/s", cfg.DRAMBandwidth))
	return t
}
