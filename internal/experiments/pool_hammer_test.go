package experiments

import (
	"testing"

	"duplo/internal/report"
	"duplo/internal/sim"
)

// TestPooledRunnerReuseHammer drives the quick Fig. 9 grid twice through one
// pooled Runner and then the Fig. 12 associativity grid through the same
// Runner — so every worker's arena is reused across many heterogeneous
// configurations (baseline, four LHB sizes, the oracle, multi-way LHBs) —
// and requires the output byte-identical to a DisableStatePool Runner that
// builds fresh simulator state for every run. Per-cell results are compared
// exactly (sim.Result is comparable and embeds every Stats counter), so any
// state leaking from one pooled run into the next fails loudly. Runs under
// -race in CI at Workers 1 and 4.
func TestPooledRunnerReuseHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	layers := detLayers(t)
	mk := func(disablePool bool, workers int) *Runner {
		opts := QuickOptions()
		opts.Layers = layers
		opts.Workers = workers
		opts.DisableStatePool = disablePool
		return NewRunner(opts)
	}
	for _, workers := range []int{1, 4} {
		pooled := mk(false, workers)
		fresh := mk(true, workers)

		run := func(name string, f func(*Runner) (*report.Table, error)) (string, string) {
			t.Helper()
			tp, err := f(pooled)
			if err != nil {
				t.Fatalf("workers=%d %s pooled: %v", workers, name, err)
			}
			tf, err := f(fresh)
			if err != nil {
				t.Fatalf("workers=%d %s fresh: %v", workers, name, err)
			}
			return tp.String(), tf.String()
		}

		// Pass 1: the Fig. 9 grid, pooled vs fresh.
		p1, f1 := run("fig9", (*Runner).Fig9)
		if p1 != f1 {
			t.Errorf("workers=%d: pooled fig9 differs from fresh-state fig9:\n--- pooled ---\n%s\n--- fresh ---\n%s", workers, p1, f1)
		}
		// Pass 2 through the same runners: the table must not drift (the
		// run cache hands back the identical results).
		p2, f2 := run("fig9 again", (*Runner).Fig9)
		if p2 != p1 || f2 != f1 {
			t.Errorf("workers=%d: second fig9 pass drifted", workers)
		}
		// Fig. 12 forces new executions (multi-way LHB configs) through the
		// arenas the Fig. 9 cells already dirtied — the actual reuse hammer.
		p12, f12 := run("fig12", (*Runner).Fig12)
		if p12 != f12 {
			t.Errorf("workers=%d: pooled fig12 differs from fresh-state fig12:\n--- pooled ---\n%s\n--- fresh ---\n%s", workers, p12, f12)
		}
		if pe, fe := pooled.Execs(), fresh.Execs(); pe != fe {
			t.Errorf("workers=%d: pooled runner executed %d simulations, fresh executed %d", workers, pe, fe)
		}

		// Per-cell exactness: every cached headline cell must match the
		// fresh runner's field-for-field (cycle counts, cache stats, LHB
		// counters — sim.Result is a comparable value). The Kernel pointer
		// is identity, not state — each runner constructs its own kernel
		// objects — so it is masked before comparing.
		maskKernel := func(rs ...*sim.Result) {
			for _, r := range rs {
				r.Kernel = nil
			}
		}
		for _, l := range layers {
			bp, err := pooled.Baseline(l)
			if err != nil {
				t.Fatal(err)
			}
			bf, err := fresh.Baseline(l)
			if err != nil {
				t.Fatal(err)
			}
			maskKernel(&bp, &bf)
			if bp != bf {
				t.Errorf("workers=%d %s: pooled baseline result differs from fresh:\npooled: %+v\nfresh:  %+v", workers, l.FullName(), bp, bf)
			}
			dp, err := pooled.Duplo(l, DefaultLHB)
			if err != nil {
				t.Fatal(err)
			}
			df, err := fresh.Duplo(l, DefaultLHB)
			if err != nil {
				t.Fatal(err)
			}
			maskKernel(&dp, &df)
			if dp != df {
				t.Errorf("workers=%d %s: pooled duplo result differs from fresh:\npooled: %+v\nfresh:  %+v", workers, l.FullName(), dp, df)
			}
		}
	}
}
