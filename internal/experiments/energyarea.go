package experiments

import (
	"fmt"

	"duplo/internal/energy"
	"duplo/internal/report"
)

// EnergyArea reproduces §V-H: on-chip energy reduction and LHB area
// overhead relative to the register file (paper: -34.1% energy, +0.77%
// area).
func (r *Runner) EnergyArea() (*report.Table, error) {
	m := energy.Default12nm()
	t := report.NewTable("Section V-H: Energy and area",
		"Layer", "Base on-chip (uJ)", "Duplo on-chip (uJ)", "Saving", "DRAM saving")
	var savings, dramSavings []float64
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		dup, err := r.Duplo(l, DefaultLHB)
		if err != nil {
			return nil, err
		}
		be, de := energy.Energy(m, base), energy.Energy(m, dup)
		s := energy.OnChipSaving(m, base, dup)
		var ds float64
		if be.DRAMNJ > 0 {
			ds = 1 - de.DRAMNJ/be.DRAMNJ
		}
		savings = append(savings, s)
		dramSavings = append(dramSavings, ds)
		t.AddRowCells([]string{l.FullName(),
			fmt.Sprintf("%.1f", be.OnChipNJ/1e3), fmt.Sprintf("%.1f", de.OnChipNJ/1e3),
			report.Pct(s), report.Pct(ds)})
		r.opts.progress("energy %s done", l.FullName())
	}
	t.AddRowCells([]string{"Mean", "", "", report.Pct(mean(savings)), report.Pct(mean(dramSavings))})
	perEntry, totalBits := energy.LHBBits(1024)
	t.AddRowCells([]string{"", "", "", "", ""})
	t.AddRowCells([]string{fmt.Sprintf("LHB: %d bits/entry, %d KB total", perEntry, totalBits/8/1024), "",
		fmt.Sprintf("area overhead vs 256KB RF: %s", report.PctU(energy.AreaOverhead(m, 1024))), "", ""})
	return t, nil
}
