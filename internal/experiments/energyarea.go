package experiments

import (
	"fmt"

	"duplo/internal/energy"
	"duplo/internal/report"
	"duplo/internal/workload"
)

// EnergyArea reproduces §V-H: on-chip energy reduction and LHB area
// overhead relative to the register file (paper: -34.1% energy, +0.77%
// area). The energy model integrates detailed per-event counters, so this
// table is ground-truth-only at every predictor mode (exact run variants;
// DESIGN.md §9).
func (r *Runner) EnergyArea() (*report.Table, error) {
	layers := r.opts.layers()
	m := energy.Default12nm()
	t := report.NewTable("Section V-H: Energy and area",
		"Layer", "Base on-chip (uJ)", "Duplo on-chip (uJ)", "Saving", "DRAM saving")
	type row struct {
		baseNJ, dupNJ, saving, dramSaving float64
	}
	rows := make([]row, len(layers))
	errs := r.forEachLayer(layers, func(i int, l workload.Layer) error {
		base, err := r.BaselineExact(l)
		if err != nil {
			return err
		}
		dup, err := r.DuploExact(l, DefaultLHB)
		if err != nil {
			return err
		}
		be, de := energy.Energy(m, base), energy.Energy(m, dup)
		s := energy.OnChipSaving(m, base, dup)
		var ds float64
		if be.DRAMNJ > 0 {
			ds = 1 - de.DRAMNJ/be.DRAMNJ
		}
		rows[i] = row{be.OnChipNJ, de.OnChipNJ, s, ds}
		r.progress("energy %s done", l.FullName())
		return nil
	})
	var savings, dramSavings []float64
	failed := false
	for i, l := range layers {
		if errs[i] != nil {
			failed = true
			t.AddRowCells([]string{l.FullName(), errCell, errCell, errCell, errCell})
			continue
		}
		savings = append(savings, rows[i].saving)
		dramSavings = append(dramSavings, rows[i].dramSaving)
		t.AddRowCells([]string{l.FullName(),
			fmt.Sprintf("%.1f", rows[i].baseNJ/1e3), fmt.Sprintf("%.1f", rows[i].dupNJ/1e3),
			report.Pct(rows[i].saving), report.Pct(rows[i].dramSaving)})
	}
	t.AddRowCells([]string{"Mean", "", "",
		footerCell(failed, report.Pct(mean(savings))),
		footerCell(failed, report.Pct(mean(dramSavings)))})
	perEntry, totalBits := energy.LHBBits(1024)
	t.AddRowCells([]string{"", "", "", "", ""})
	t.AddRowCells([]string{fmt.Sprintf("LHB: %d bits/entry, %d KB total", perEntry, totalBits/8/1024), "",
		fmt.Sprintf("area overhead vs 256KB RF: %s", report.PctU(energy.AreaOverhead(m, 1024))), "", ""})
	return t, sweepError("energy", errs, func(i int) string { return layers[i].FullName() })
}
