package experiments

import (
	"strings"
	"testing"

	"duplo/internal/workload"
)

// clusterTestOptions: one small layer per network keeps the latency-table
// build cheap while still exercising multi-class serving.
func clusterTestOptions(tb testing.TB) Options {
	tb.Helper()
	var layers []workload.Layer
	for _, id := range [][2]string{{"ResNet", "C2"}, {"GAN", "TC4"}} {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			tb.Fatal(err)
		}
		layers = append(layers, l)
	}
	return Options{MaxCTAs: 8, SimSMs: 2, Layers: layers}
}

// TestServingLatencies: the table's service times must equal the summed
// per-layer cycle counts of direct Runner runs, converted at the clock
// rate — i.e. the helper adds bookkeeping, never arithmetic of its own.
func TestServingLatencies(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := clusterTestOptions(t)
	r := NewRunner(opts)
	batches := []int{8, 16}
	clock := opts.Config().ClockMHz
	base, dup, err := r.ServingLatencies(opts.layers(), batches, clock)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Classes(); len(got) != 2 {
		t.Fatalf("expected 2 classes, got %v", got)
	}
	for _, l := range opts.layers() {
		for _, b := range batches {
			k, err := BatchKernel(l, b)
			if err != nil {
				t.Fatal(err)
			}
			cfg := opts.Config()
			res, err := r.Run(k, cfg) // memoized: same key the helper used
			if err != nil {
				t.Fatal(err)
			}
			wantBase := res.Cycles * 1000 / int64(clock)
			gotBase, err := base.ServiceNanos(l.Network, b)
			if err != nil {
				t.Fatal(err)
			}
			// One layer per network, so the network sum IS the layer.
			if gotBase != wantBase {
				t.Errorf("%s b%d base: table %d ns, direct %d ns", l.Network, b, gotBase, wantBase)
			}
			cfg.Duplo = true
			cfg.DetectCfg.LHB = DefaultLHB
			resD, err := r.Run(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			gotDup, err := dup.ServiceNanos(l.Network, b)
			if err != nil {
				t.Fatal(err)
			}
			if wantDup := resD.Cycles * 1000 / int64(clock); gotDup != wantDup {
				t.Errorf("%s b%d duplo: table %d ns, direct %d ns", l.Network, b, gotDup, wantDup)
			}
		}
	}
}

// TestServingLatenciesValidation: bad inputs fail fast, before any
// simulation.
func TestServingLatenciesValidation(t *testing.T) {
	r := NewRunner(clusterTestOptions(t))
	if _, _, err := r.ServingLatencies(r.opts.layers(), nil, 1200); err == nil {
		t.Error("empty batch list accepted")
	}
	if _, _, err := r.ServingLatencies(r.opts.layers(), []int{8}, 0); err == nil {
		t.Error("zero clock accepted")
	}
}

// TestClusterSweepDeterministic: the full cluster table is byte-identical
// between Workers=1 and Workers=4 at a fixed seed (the DES itself is
// single-threaded; this gates the latency-table fan-out and assembly),
// and a different seed changes the traffic.
func TestClusterSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	render := func(workers int, seed int64) string {
		opts := clusterTestOptions(t)
		opts.Workers = workers
		opts.Seed = seed
		tb, err := NewRunner(opts).Cluster()
		if err != nil {
			t.Fatalf("Workers=%d seed=%d: %v", workers, seed, err)
		}
		var b, d int
		for _, row := range tb.Rows() {
			switch row[3] {
			case "B":
				b++
			case "D":
				d++
			}
		}
		if b != 9 || d != 9 {
			t.Errorf("expected 9 B and 9 D rows (3 policies x 3 loads), got %d/%d:\n%s", b, d, tb)
		}
		return tb.String()
	}
	serial := render(1, 7)
	if parallel := render(4, 7); parallel != serial {
		t.Errorf("cluster table differs between Workers=1 and Workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if again := render(1, 7); again != serial {
		t.Errorf("cluster table differs between repeated identical runs")
	}
	if other := render(1, 8); other == serial {
		t.Errorf("different seeds produced an identical cluster table")
	}
	// Shape: every policy appears, B and D rows pair up, no ERR cells.
	for _, want := range []string{"rr", "jsq", "least", "seed=7"} {
		if !strings.Contains(serial, want) {
			t.Errorf("cluster table missing %q:\n%s", want, serial)
		}
	}
	if strings.Contains(serial, errCell) {
		t.Errorf("cluster table has ERR cells:\n%s", serial)
	}
}

// TestClusterCell: the observability cell records queue samples and batch
// spans and reuses the sweep's latency cells (warm cache, no new sims).
func TestClusterCell(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(clusterTestOptions(t))
	m, err := r.ClusterCell(0.8, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.QueueSamples) == 0 {
		t.Error("ClusterCell recorded no queue samples")
	}
	if len(m.BatchSpans) == 0 {
		t.Error("ClusterCell recorded no batch spans")
	}
	before := r.CacheStats().Execs
	if _, err := r.ClusterCell(0.8, false); err != nil {
		t.Fatal(err)
	}
	if after := r.CacheStats().Execs; after != before {
		t.Errorf("second ClusterCell simulated %d new cells; expected full cache reuse", after-before)
	}
}
