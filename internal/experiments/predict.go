package experiments

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"strings"

	duplo "duplo/internal/core"
	"duplo/internal/predictor"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// PredictorMode selects the analytical fast path's role in Run (DESIGN.md
// §9). The predictor is a third tier in front of the memoization cache and
// the disk store — but unlike those tiers it is approximate, so it only
// ever engages where the calibration gate passed, and its results are
// marked (sim.Result.Predicted) and never persisted.
type PredictorMode string

const (
	// PredictorOff (the zero value) disables prediction: every run is
	// cycle-sim ground truth. The pre-predictor behavior.
	PredictorOff PredictorMode = "off"
	// PredictAll predicts every cell inside the calibrated envelope whose
	// family passed the gate; only out-of-envelope or uncalibrated cells
	// simulate. The fast path for whole-figure regeneration.
	PredictAll PredictorMode = "predict-all"
	// PredictHybrid predicts only cells whose calibrated uncertainty
	// (family MAPE) is strictly below Options.PredictBound, and never the
	// cells feeding a table's headline ratios — those always simulate.
	// With PredictBound 0 nothing predicts and output is byte-identical
	// to PredictorOff (the safe-by-construction contract, gated by
	// TestHybridBoundZeroByteIdentical).
	PredictHybrid PredictorMode = "hybrid"
)

// ParsePredictorMode resolves a CLI flag value ("" = off).
func ParsePredictorMode(s string) (PredictorMode, error) {
	switch PredictorMode(s) {
	case "", PredictorOff:
		return PredictorOff, nil
	case PredictAll:
		return PredictAll, nil
	case PredictHybrid:
		return PredictHybrid, nil
	}
	return PredictorOff, fmt.Errorf("unknown predictor mode %q (off | predict-all | hybrid)", s)
}

// predictorMode resolves the configured mode's zero value.
func (r *Runner) predictorMode() PredictorMode {
	if r.opts.Predictor == "" {
		return PredictorOff
	}
	return r.opts.Predictor
}

// CalibrationKey fingerprints what a calibration artifact is valid for:
// predictor format version, the resolved simulator configuration, and the
// workload/LHB-point set the fit runs against. Any drift in these is a
// different key, so a stale artifact can never be silently reused.
func (r *Runner) CalibrationKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "calib/v%d|%s", predictor.FormatVersion, r.key("base", r.opts.config()))
	for _, l := range r.opts.layers() {
		b.WriteString("|")
		b.WriteString(l.FullName())
	}
	for _, p := range LHBPoints {
		b.WriteString("|")
		b.WriteString(p.Name)
	}
	return b.String()
}

// calibrationPath resolves where the artifact lives: the explicit
// Options.CalibrationPath, else a key-addressed file inside the store
// directory, else nothing (fit is kept in memory only).
func (r *Runner) calibrationPath(key string) string {
	if r.opts.CalibrationPath != "" {
		return r.opts.CalibrationPath
	}
	if r.store != nil {
		return predictor.DefaultPath(r.store.Dir(), key)
	}
	return ""
}

// Calibration returns the installed calibration (nil before the first
// predicted run or Calibrate call) — duploserved's /statsz reads it.
func (r *Runner) Calibration() *predictor.Calibration {
	r.calMu.Lock()
	defer r.calMu.Unlock()
	return r.cal
}

// ensureCalibration returns the installed calibration, loading the
// persisted artifact or fitting from scratch on first use. Fitting
// simulates the calibration set through the normal exact path (store-
// warmed when a store is attached), so a failed fit is remembered and not
// retried per cell. Concurrent callers serialize on calMu; they hold no
// pool slot while waiting, so the fit's own fan-out cannot deadlock.
func (r *Runner) ensureCalibration(ctx context.Context) (*predictor.Calibration, error) {
	r.calMu.Lock()
	defer r.calMu.Unlock()
	if r.cal != nil {
		return r.cal, nil
	}
	if r.calErr != nil {
		return nil, r.calErr
	}
	cal, err := r.calibrateLocked(ctx, false)
	if err != nil {
		r.calErr = err
		return nil, err
	}
	r.cal = cal
	return cal, nil
}

// Calibrate fits (or refits, when force is true) the calibration against
// cycle-sim ground truth, installs it on the runner, and persists the
// artifact. With force false a valid persisted artifact short-circuits
// the fit entirely — a warm daemon never refits.
func (r *Runner) Calibrate(force bool) (*predictor.Calibration, error) {
	r.calMu.Lock()
	defer r.calMu.Unlock()
	cal, err := r.calibrateLocked(r.ctx, force)
	if err != nil {
		return nil, err
	}
	r.cal, r.calErr = cal, nil
	return cal, nil
}

func (r *Runner) calibrateLocked(ctx context.Context, force bool) (*predictor.Calibration, error) {
	key := r.CalibrationKey()
	path := r.calibrationPath(key)
	if !force && path != "" {
		cal, err := predictor.Load(path, key)
		if err == nil {
			r.progress("predictor: loaded calibration %s", path)
			return cal, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			// Damaged, version-skewed or mismatched artifacts refit; say so.
			r.progress("predictor: %v (refitting)", err)
		}
	}
	cal, err := r.fitCalibration(ctx, key)
	if err != nil {
		return nil, err
	}
	if path != "" {
		// Best-effort, like store.Put: an unwritable artifact must not
		// fail the sweep — the fit still serves this process.
		if serr := predictor.Save(path, cal); serr != nil {
			r.progress("predictor: persist calibration: %v", serr)
		} else {
			r.progress("predictor: calibration saved to %s", path)
		}
	}
	return cal, nil
}

// calibrationConfigs returns the ground-truth config set the fit runs per
// layer: the baseline plus every Fig. 9 LHB point (the gate's "both Duplo
// off and on" sample split).
func (r *Runner) calibrationConfigs() []sim.Config {
	cfgs := make([]sim.Config, 0, 1+len(LHBPoints))
	cfgs = append(cfgs, r.opts.config())
	for _, p := range LHBPoints {
		cfg := r.opts.config()
		cfg.Duplo = true
		cfg.DetectCfg.LHB = p.Cfg
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// fitCalibration simulates the Fig. 9 workload grid through the exact
// path (memo- and store-warmed) and fits the per-family models.
func (r *Runner) fitCalibration(ctx context.Context, key string) (*predictor.Calibration, error) {
	layers := r.opts.layers()
	cfgs := r.calibrationConfigs()
	kernels := make([]*sim.Kernel, len(layers))
	for i, l := range layers {
		k, err := LayerKernel(l)
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	samples := make([]predictor.Sample, len(layers)*len(cfgs))
	err := r.fanOut(len(samples), func(i int) error {
		li, ci := i/len(cfgs), i%len(cfgs)
		res, err := r.RunCtx(ctx, kernels[li], cfgs[ci])
		if err != nil {
			return err
		}
		samples[i] = predictor.SampleOf(kernels[li], cfgs[ci], res)
		r.progress("calibrate %s cfg %d/%d done", layers[li].FullName(), ci+1, len(cfgs))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("predictor: calibration ground truth: %w", err)
	}
	return predictor.Fit(key, samples)
}

// FigCalibrate is the `-exp calibrate` sweep: refit against ground truth,
// persist the artifact, and render the fit report — per-family sample
// counts, MAPE / Pearson r / max APE on the cycles target (overall and on
// the gated Duplo-off/on subsets), and the gate verdict.
func (r *Runner) FigCalibrate() (*report.Table, error) {
	t := report.NewTable("Calibration: analytical predictor vs cycle-sim ground truth",
		"Family", "N", "MAPE", "r", "MaxAPE", "MAPE(off)", "r(off)", "MAPE(on)", "r(on)", "Gate")
	cal, err := r.Calibrate(true)
	if err != nil {
		t.AddRowCells([]string{errCell, errCell, errCell, errCell, errCell,
			errCell, errCell, errCell, errCell, errCell})
		return t, err
	}
	for _, m := range cal.FamilyList() {
		verdict := "pass"
		if !m.GatePass {
			verdict = "FAIL"
		}
		t.AddRowCells([]string{
			m.Family, fmt.Sprint(m.All.N),
			report.PctU(m.All.MAPE), fmt.Sprintf("%.3f", m.All.Pearson), report.PctU(m.All.MaxAPE),
			report.PctU(m.Off.MAPE), fmt.Sprintf("%.3f", m.Off.Pearson),
			report.PctU(m.On.MAPE), fmt.Sprintf("%.3f", m.On.Pearson),
			verdict,
		})
	}
	note := fmt.Sprintf("gate: MAPE <= %s and r >= %.2f per family on both Duplo-off and Duplo-on subsets",
		report.PctU(predictor.GateMAPE), predictor.GatePearson)
	if path := r.calibrationPath(cal.Key); path != "" {
		note += "; artifact: " + path
	}
	t.Note = note
	if !cal.GatePass() {
		return t, fmt.Errorf("predictor: calibration gate failed (families above)")
	}
	return t, nil
}

// inEnvelope reports whether a config lies inside the calibrated envelope:
// identical to the runner's base config on every axis the calibration
// sweep does not vary (SM count, CTA cap, cache sizes, latencies, ...),
// with the Duplo axis restricted to what the fit observed — any entry
// count, direct-mapped, hash-indexed, default detection latency, oracle
// allowed. Everything else (associativity sweeps, modulo indexing,
// never-evict, scaled caches, traced runs) must simulate: the model has
// no feature that saw those axes move.
func (r *Runner) inEnvelope(cfg sim.Config) bool {
	if cfg.Tracer != nil {
		return false
	}
	base := r.opts.config()
	// Compare everything except the axes calibration varies.
	c, b := cfg, base
	c.Tracer, b.Tracer = nil, nil
	c.Duplo, b.Duplo = false, false
	c.DetectCfg, b.DetectCfg = base.DetectCfg, base.DetectCfg
	if c != b {
		return false
	}
	if !cfg.Duplo {
		return true
	}
	d := cfg.DetectCfg
	if d.LatencyCycles != base.DetectCfg.LatencyCycles || d.PID != base.DetectCfg.PID {
		return false
	}
	l := d.LHB
	if l.NeverEvict || l.ModuloIndex || l.Ways > 1 {
		return false
	}
	return l.Oracle || l.Entries > 0
}

// runTier is the predict-aware run path: fall through to exact cycle
// simulation unless the mode, the envelope, the family's calibration gate
// and (in hybrid) the uncertainty bound all clear. The decision is a pure
// function of (options, kernel, config, headline) — never of timing or
// cache state — so tables stay byte-identical at any worker count.
func (r *Runner) runTier(ctx context.Context, k *sim.Kernel, cfg sim.Config, headline bool) (sim.Result, error) {
	mode := r.predictorMode()
	if mode == PredictorOff || !r.inEnvelope(cfg) {
		return r.RunCtx(ctx, k, cfg)
	}
	if mode == PredictHybrid && (headline || r.opts.PredictBound <= 0) {
		return r.RunCtx(ctx, k, cfg)
	}
	cal, err := r.ensureCalibration(ctx)
	if err != nil {
		// A failed calibration degrades to ground truth (and is remembered,
		// so this is one fallback decision, not one per cell).
		return r.RunCtx(ctx, k, cfg)
	}
	m, ok := cal.Model(k)
	if !ok {
		return r.RunCtx(ctx, k, cfg)
	}
	if mode == PredictHybrid && !(m.Uncertainty() < r.opts.PredictBound) {
		return r.RunCtx(ctx, k, cfg)
	}

	// Predicted results memoize under their own key prefix: a predicted
	// entry can never shadow (or be shadowed by) ground truth for the same
	// cell, and eviction/singleflight semantics carry over unchanged.
	key := "pred|" + r.key(k.Name, cfg)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.mu.Unlock()
		r.memHits.Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	res, ok := cal.PredictResult(k, cfg)
	if !ok {
		// Unreachable (Model gate-checked above) — but degrade, don't trust.
		e.err = fmt.Errorf("predictor: no model for %s", k.Name)
		r.mu.Lock()
		if r.cache[key] == e {
			delete(r.cache, key)
		}
		r.mu.Unlock()
		close(e.done)
		return r.RunCtx(ctx, k, cfg)
	}
	r.predicted.Add(1)
	e.res = res
	close(e.done)
	return res, nil
}

// predErrOf folds the predictedness of the runs contributing to one table
// cell: -1 when every contributor is ground truth, else the worst
// expected relative error among predicted contributors (>= 0).
func predErrOf(rs ...sim.Result) float64 {
	e := -1.0
	for _, res := range rs {
		if res.Predicted {
			if e < 0 {
				e = 0
			}
			if res.PredictedErr > e {
				e = res.PredictedErr
			}
		}
	}
	return e
}

// markPred appends the predicted-cell marker to a rendered cell.
func markPred(cell string, predErr float64) string {
	if predErr >= 0 {
		return cell + predictedMark
	}
	return cell
}

// predictedMark is the visible marker on every predicted cell.
const predictedMark = "~"

// predMatrix allocates a rows x cols predicted-error matrix initialized
// to the ground-truth sentinel (-1).
func predMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = -1
		}
	}
	return m
}

// predNote builds the per-table footer note: only emitted when at least
// one cell is predicted, so ground-truth-only tables stay byte-identical
// to the pre-predictor output.
func predNote(t *report.Table, pred []float64) {
	n, maxErr := 0, 0.0
	for _, e := range pred {
		if e >= 0 {
			n++
			if e > maxErr {
				maxErr = e
			}
		}
	}
	if n == 0 {
		return
	}
	t.Note = fmt.Sprintf("%s = predicted by the calibrated analytical model (%d cells); max predicted error %s",
		predictedMark, n, report.PctU(maxErr))
}

// Exact run variants: always cycle-sim ground truth regardless of
// Options.Predictor. The ablations, the energy/area model and the
// calibration fit itself use these — their tables are documented as
// ground-truth-only (DESIGN.md §9).

// RunExact simulates k under cfg through the memo/store tiers, never the
// predictor.
func (r *Runner) RunExact(k *sim.Kernel, cfg sim.Config) (sim.Result, error) {
	return r.RunCtx(r.ctx, k, cfg)
}

// BaselineExact is Baseline without the predictor tier.
func (r *Runner) BaselineExact(l workload.Layer) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	return r.RunCtx(r.ctx, k, r.opts.config())
}

// DuploExact is Duplo without the predictor tier.
func (r *Runner) DuploExact(l workload.Layer, lhb duplo.LHBConfig) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	cfg := r.opts.config()
	cfg.Duplo = true
	cfg.DetectCfg.LHB = lhb
	return r.RunCtx(r.ctx, k, cfg)
}
