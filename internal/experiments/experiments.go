// Package experiments reproduces every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §3). Each
// experiment returns a report.Table so cmd/duploexp and the benchmark
// harness share one implementation.
//
// Experiments fan their independent simulations out on a bounded worker
// pool (see Runner); results are assembled in deterministic order, so a
// table rendered with Workers=8 is byte-identical to the Workers=1 serial
// output.
package experiments

import (
	"context"
	"math"
	"time"

	duplo "duplo/internal/core"
	"duplo/internal/sim"
	"duplo/internal/store"
	"duplo/internal/workload"
)

// Options scales experiment cost. The defaults reproduce the shapes at
// manageable runtime; -full removes the CTA cap.
type Options struct {
	// MaxCTAs bounds simulated CTAs per kernel (0 = full grid).
	MaxCTAs int
	// SimSMs is the number of SMs simulated (memory system sliced
	// proportionally).
	SimSMs int
	// Layers restricts the layer set (nil = all of Table I).
	Layers []workload.Layer
	// Workers bounds concurrently executing simulations (0 = GOMAXPROCS;
	// 1 = the serial path).
	Workers int
	// SMWorkers shards the SMs of each individual simulation across
	// goroutines (sim.Config.SMWorkers). The engine already parallelizes
	// across simulations, so 0 keeps each one on the serial reference loop
	// rather than inheriting GOMAXPROCS; set >1 to shard within runs too
	// (total goroutine demand is then roughly Workers*SMWorkers). Results
	// are byte-identical at any value.
	SMWorkers int
	// Verbose prints progress lines through Progress (stdout when nil).
	Verbose  bool
	Progress func(string)
	// Context cancels in-flight and future simulations (nil = Background).
	// A cancelled sweep still returns its table with "ERR" cells for the
	// runs that did not finish.
	Context context.Context
	// MaxCycles bounds each simulation's cycle count (sim.Config.MaxCycles;
	// 0 = the simulator's own generous default).
	MaxCycles int64
	// WallTimeout bounds each simulation's wall-clock time
	// (sim.Config.WallTimeout; 0 = none).
	WallTimeout time.Duration
	// CrashDumpDir receives watchdog/panic crash dumps
	// (sim.Config.CrashDumpDir; "" = os.TempDir()).
	CrashDumpDir string
	// Store, when non-nil, backs the in-memory singleflight cache with the
	// on-disk content-addressed result store: a memoization miss consults
	// the store before simulating, and every successful simulation is
	// persisted, so sweeps warm-start across invocations (and across the
	// clients of a duploserved daemon sharing one directory). Failed runs
	// are never persisted — the failed-run eviction semantics extend to
	// the disk tier — and traced runs bypass the store entirely, because a
	// collector must observe an actual execution.
	Store *store.Store

	// Predictor selects the calibrated analytical fast path (DESIGN.md §9):
	// PredictorOff (the zero value) keeps every run cycle-sim ground
	// truth; PredictAll predicts every gate-passing cell inside the
	// calibrated envelope; PredictHybrid predicts only cells whose
	// calibrated uncertainty is strictly below PredictBound and never the
	// cells feeding headline ratios. Predicted results are marked
	// (sim.Result.Predicted, "~" in tables) and never persisted.
	Predictor PredictorMode
	// PredictBound is hybrid mode's uncertainty bound: a family predicts
	// only when its calibrated MAPE is strictly below this. The zero value
	// never predicts — hybrid output is then byte-identical to
	// PredictorOff by construction. (CLI flags default it to the gate
	// threshold, 0.15.)
	PredictBound float64
	// CalibrationPath overrides where the calibration artifact is
	// persisted and loaded ("" = <store dir>/calibration/<keyhash>.json
	// when a store is attached, else in-memory only).
	CalibrationPath string

	// DisableStatePool turns off per-worker simulator-state reuse: every
	// simulation then builds its memory system, SM states and detection
	// units from scratch (the pre-pool behavior). Results are byte-identical
	// either way — the pooled-vs-fresh differential tests assert it — so
	// this exists for benchmarking the pool's effect and as an escape hatch.
	DisableStatePool bool

	// Seed seeds the serving cluster experiment's arrival-process RNG
	// (internal/serving). 0 means the default seed (1); every non-zero
	// value is used as-is. The cluster table is byte-identical across
	// repeated runs and worker counts at a fixed seed.
	Seed int64

	// Faults, when non-nil, injects simulation-phase faults (panics,
	// added latency) keyed by kernel name — the runner-tier half of
	// internal/fault. Nil (the production default) adds no branches to
	// the simulate path: the seam wraps simFn once at construction, the
	// same discipline as the PR 3 tracer.
	Faults SimFaultInjector
}

// SimFaultInjector is the runner's view of a fault injector
// (*fault.Injector satisfies it). SimFault returning non-nil makes the
// wrapped simulation panic with that error (exercising the typed
// sim.PhasePanic recovery path); SimDelay stalls the simulation, or
// aborts with the context's typed error if cancellation wins the race.
type SimFaultInjector interface {
	SimFault(kernel string) error
	SimDelay(kernel string) time.Duration
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{MaxCTAs: 96, SimSMs: 4}
}

// QuickOptions returns a reduced scale for benches and smoke tests.
func QuickOptions() Options {
	return Options{MaxCTAs: 12, SimSMs: 2}
}

func (o Options) layers() []workload.Layer {
	if o.Layers != nil {
		return o.Layers
	}
	return workload.AllLayers()
}

// Config resolves the options into the sim.Config experiments run under
// (exported for duploserved, which builds per-request configs from the
// daemon's base options).
func (o Options) Config() sim.Config { return o.config() }

func (o Options) config() sim.Config {
	cfg := sim.TitanVConfig()
	if o.MaxCTAs >= 0 {
		cfg.MaxCTAs = o.MaxCTAs
	}
	if o.SimSMs > 0 {
		cfg.SimSMs = o.SimSMs
	}
	// Default each run to the serial loop: the engine's own Workers pool is
	// the parallelism knob at experiment granularity (see SMWorkers doc).
	cfg.SMWorkers = 1
	if o.SMWorkers > 0 {
		cfg.SMWorkers = o.SMWorkers
	}
	cfg.MaxCycles = o.MaxCycles
	cfg.WallTimeout = o.WallTimeout
	cfg.CrashDumpDir = o.CrashDumpDir
	return cfg
}

// LHBPoints is the Fig. 9/10 sweep: four sizes plus the oracle.
var LHBPoints = []struct {
	Name string
	Cfg  duplo.LHBConfig
}{
	{"256-entry", duplo.LHBConfig{Entries: 256, Ways: 1}},
	{"512-entry", duplo.LHBConfig{Entries: 512, Ways: 1}},
	{"1024-entry", duplo.LHBConfig{Entries: 1024, Ways: 1}},
	{"2048-entry", duplo.LHBConfig{Entries: 2048, Ways: 1}},
	{"Oracle", duplo.LHBConfig{Oracle: true}},
}

// DefaultLHB is the paper's chosen design point (§V-B).
var DefaultLHB = duplo.LHBConfig{Entries: 1024, Ways: 1}

// gmeanImprovement aggregates fractional improvements geometrically, the
// way the paper's "Gmean" bars do.
func gmeanImprovement(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += math.Log(1 + x)
	}
	return math.Exp(s/float64(len(v))) - 1
}
