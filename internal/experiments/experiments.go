// Package experiments reproduces every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §3). Each
// experiment returns a report.Table so cmd/duploexp and the benchmark
// harness share one implementation.
package experiments

import (
	"fmt"
	"math"

	duplo "duplo/internal/core"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// Options scales experiment cost. The defaults reproduce the shapes at
// manageable runtime; -full removes the CTA cap.
type Options struct {
	// MaxCTAs bounds simulated CTAs per kernel (0 = full grid).
	MaxCTAs int
	// SimSMs is the number of SMs simulated (memory system sliced
	// proportionally).
	SimSMs int
	// Layers restricts the layer set (nil = all of Table I).
	Layers []workload.Layer
	// Verbose prints progress lines.
	Verbose  bool
	Progress func(string)
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{MaxCTAs: 96, SimSMs: 4}
}

// QuickOptions returns a reduced scale for benches and smoke tests.
func QuickOptions() Options {
	return Options{MaxCTAs: 12, SimSMs: 2}
}

func (o Options) layers() []workload.Layer {
	if o.Layers != nil {
		return o.Layers
	}
	return workload.AllLayers()
}

func (o Options) config() sim.Config {
	cfg := sim.TitanVConfig()
	if o.MaxCTAs >= 0 {
		cfg.MaxCTAs = o.MaxCTAs
	}
	if o.SimSMs > 0 {
		cfg.SimSMs = o.SimSMs
	}
	return cfg
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Verbose && o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Runner memoizes simulator runs so experiments sharing configurations
// (Fig. 9 and Fig. 10, for instance) pay for each simulation once.
type Runner struct {
	opts  Options
	cache map[string]sim.Result
}

// NewRunner builds a runner.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, cache: make(map[string]sim.Result)}
}

// LHBPoints is the Fig. 9/10 sweep: four sizes plus the oracle.
var LHBPoints = []struct {
	Name string
	Cfg  duplo.LHBConfig
}{
	{"256-entry", duplo.LHBConfig{Entries: 256, Ways: 1}},
	{"512-entry", duplo.LHBConfig{Entries: 512, Ways: 1}},
	{"1024-entry", duplo.LHBConfig{Entries: 1024, Ways: 1}},
	{"2048-entry", duplo.LHBConfig{Entries: 2048, Ways: 1}},
	{"Oracle", duplo.LHBConfig{Oracle: true}},
}

// DefaultLHB is the paper's chosen design point (§V-B).
var DefaultLHB = duplo.LHBConfig{Entries: 1024, Ways: 1}

// key builds a cache key for a kernel/config combination.
func (r *Runner) key(kernelName string, cfg sim.Config) string {
	d := cfg.DetectCfg
	return fmt.Sprintf("%s|d=%v|e=%d,w=%d,o=%v,ne=%v,mi=%v|lat=%d|cta=%d|sm=%d|b=%d|rl=%d|l1=%d|l2=%d",
		kernelName, cfg.Duplo, d.LHB.Entries, d.LHB.Ways, d.LHB.Oracle, d.LHB.NeverEvict, d.LHB.ModuloIndex,
		d.LatencyCycles, cfg.MaxCTAs, cfg.SimSMs, 0, cfg.RetireDelay, cfg.L1KB, cfg.L2KB)
}

// Run simulates kernel k under cfg, memoized.
func (r *Runner) Run(k *sim.Kernel, cfg sim.Config) (sim.Result, error) {
	key := r.key(k.Name, cfg)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := sim.Run(cfg, k)
	if err != nil {
		return sim.Result{}, err
	}
	r.cache[key] = res
	return res, nil
}

// LayerKernel builds the forward tensor-core GEMM kernel for a layer.
func LayerKernel(l workload.Layer) (*sim.Kernel, error) {
	return sim.NewConvKernel(l.FullName(), l.GemmParams())
}

// Baseline runs the layer without Duplo.
func (r *Runner) Baseline(l workload.Layer) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	return r.Run(k, r.opts.config())
}

// Duplo runs the layer with the given LHB configuration.
func (r *Runner) Duplo(l workload.Layer, lhb duplo.LHBConfig) (sim.Result, error) {
	k, err := LayerKernel(l)
	if err != nil {
		return sim.Result{}, err
	}
	cfg := r.opts.config()
	cfg.Duplo = true
	cfg.DetectCfg.LHB = lhb
	return r.Run(k, cfg)
}

// gmeanImprovement aggregates fractional improvements geometrically, the
// way the paper's "Gmean" bars do.
func gmeanImprovement(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += math.Log(1 + x)
	}
	return math.Exp(s/float64(len(v))) - 1
}
