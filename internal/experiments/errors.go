package experiments

import (
	"fmt"
	"strings"

	"duplo/internal/report"
	"duplo/internal/workload"
)

// errCell is what a failed sweep cell renders as. Failure identity is
// per-task, not per-schedule, so a partial table is byte-identical at
// every worker count.
const errCell = "ERR"

// renderGrid assembles the layers x cols body and the aggregate footer of
// a sweep table. errs[li*cols+ci] marks failed cells, which render
// errCell; an aggregate over a column containing any failed cell is
// itself errCell — a silently partial gmean would masquerade as the
// paper's headline number.
//
// pred, when non-nil, carries per-cell predicted errors (predErrOf
// convention: -1 = ground truth, >= 0 = predicted with that expected
// relative error): predicted cells render with the "~" marker, a footer
// over any predicted cell is marked too, and the table gets the
// predicted-legend note with the max predicted error. A nil (or
// all-ground-truth) pred leaves the output byte-identical to the
// pre-predictor rendering.
func renderGrid(t *report.Table, layers []workload.Layer, cols int, errs []error,
	vals, pred [][]float64, cell func(float64) string, aggName string, agg func([]float64) float64) {
	colVals := make([][]float64, cols)
	colErr := make([]bool, cols)
	colPred := make([]bool, cols)
	var flat []float64
	predAt := func(li, ci int) float64 {
		if pred == nil {
			return -1
		}
		return pred[li][ci]
	}
	for li, l := range layers {
		row := []string{l.FullName()}
		for ci := 0; ci < cols; ci++ {
			if errs[li*cols+ci] != nil {
				colErr[ci] = true
				row = append(row, errCell)
				continue
			}
			pe := predAt(li, ci)
			if pe >= 0 {
				colPred[ci] = true
			}
			flat = append(flat, pe)
			colVals[ci] = append(colVals[ci], vals[li][ci])
			row = append(row, markPred(cell(vals[li][ci]), pe))
		}
		t.AddRowCells(row)
	}
	foot := []string{aggName}
	for ci := 0; ci < cols; ci++ {
		switch {
		case colErr[ci]:
			foot = append(foot, errCell)
		case colPred[ci]:
			foot = append(foot, cell(agg(colVals[ci]))+predictedMark)
		default:
			foot = append(foot, cell(agg(colVals[ci])))
		}
	}
	t.AddRowCells(foot)
	predNote(t, flat)
}

// footerCell renders an aggregate footer cell: errCell when any
// contributing cell failed, the rendered aggregate otherwise.
func footerCell(failed bool, s string) string {
	if failed {
		return errCell
	}
	return s
}

// gridLabel names cell i of a layers x cols sweep ("ResNet/C2/1024-entry").
func gridLabel(layers []workload.Layer, cols int, colName func(ci int) string) func(i int) string {
	return func(i int) string {
		return layers[i/cols].FullName() + "/" + colName(i%cols)
	}
}

// SweepError aggregates the per-cell failures of one experiment sweep.
// The experiment still returns its table — failed cells render "ERR" —
// so a single livelocked or cancelled configuration degrades one figure
// cell instead of aborting the whole invocation.
type SweepError struct {
	Exp   string   // experiment name, e.g. "fig9"
	Cells []string // human-readable labels of the failed cells, task order
	Errs  []error  // matching errors, same order
}

// maxSweepErrorCells bounds how many per-cell failures Error() spells out;
// the rest are summarized. Unwrap still exposes every error.
const maxSweepErrorCells = 6

// Error lists the failed cells deterministically (task order, not
// completion order) so the same failure renders the same message at every
// worker count. The experiment name is deliberately omitted — callers
// (duploexp's per-experiment loop) already prefix it; Exp carries it for
// programmatic use.
func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d of the sweep's cells failed", len(e.Cells))
	n := len(e.Cells)
	if n > maxSweepErrorCells {
		n = maxSweepErrorCells
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\n  %s: %v", e.Cells[i], e.Errs[i])
	}
	if len(e.Cells) > n {
		fmt.Fprintf(&b, "\n  ... and %d more", len(e.Cells)-n)
	}
	return b.String()
}

// Unwrap exposes every cell error, so errors.Is(err, context.Canceled)
// answers whether any cell was cancelled.
func (e *SweepError) Unwrap() []error { return e.Errs }

// sweepError folds a fanOutAll error slice into a *SweepError, labelling
// each failed slot with label(i). It returns nil when every slot is nil.
func sweepError(exp string, errs []error, label func(i int) string) error {
	se := &SweepError{Exp: exp}
	for i, err := range errs {
		if err != nil {
			se.Cells = append(se.Cells, label(i))
			se.Errs = append(se.Errs, err)
		}
	}
	if len(se.Errs) == 0 {
		return nil
	}
	return se
}
