package experiments

import (
	"fmt"

	"duplo/internal/report"
	"duplo/internal/serving"
)

// The cluster experiment's fixed shape: a small serving fleet, the
// Fig. 13 batch points as the latency table's measured cells, and offered
// loads expressed as fractions of the baseline cluster's batched
// capacity — so the same sweep is meaningful at quick scale and full
// scale (service times change, the saturation story doesn't).
const (
	clusterChips    = 4
	clusterQueueCap = 128
	clusterMaxBatch = 32
	// clusterSLOServiceMult: each class's SLO is this multiple of its
	// baseline batch-8 per-request service time — identical for the
	// Duplo-off and Duplo-on runs so goodput is comparable.
	clusterSLOServiceMult = 10
	// clusterTargetArrivals sizes the horizon so every load point sees
	// about this many offered requests.
	clusterTargetArrivals = 2000
)

// clusterBatches are the latency-table batch points: the Fig. 13 sweep
// (8/16/32, so a warm store serves both experiments from the same cells)
// plus batch 1, so a lone request under light load pays a singleton
// forward pass rather than rounding up to the batch-8 price.
var clusterBatches = []int{1, 8, 16, 32}

// clusterLoads are the offered-load points as fractions of the baseline
// cluster's capacity: comfortable, near-saturation, and past it.
var clusterLoads = []float64{0.5, 0.8, 1.1}

// clusterSetup is everything the DES cells share: the two latency
// tables, the class list, per-class SLOs, and the baseline capacity the
// load points scale from.
type clusterSetup struct {
	base, dup *serving.LatencyTable
	classes   []string
	sloNanos  map[string]int64
	// capacityPerSec is the baseline cluster's batched throughput: with
	// equal class shares, one chip serves a request of class c in
	// s8(c)/8 seconds at full batching, so the fleet's aggregate is
	// chips / mean_c(s8(c)/8).
	capacityPerSec float64
}

// clusterSeed resolves the serving RNG seed (Options.Seed, default 1).
func (r *Runner) clusterSeed() int64 {
	if r.opts.Seed != 0 {
		return r.opts.Seed
	}
	return 1
}

// setupCluster builds the latency tables through the Runner and derives
// the traffic model. Classes whose table points are incomplete (a
// simulation failed) are dropped; latErr carries the cell failures.
func (r *Runner) setupCluster() (*clusterSetup, error) {
	clock := r.opts.config().ClockMHz
	base, dup, latErr := r.ServingLatencies(r.opts.layers(), clusterBatches, clock)
	if base == nil || dup == nil {
		return nil, latErr
	}
	s := &clusterSetup{base: base, dup: dup, sloNanos: make(map[string]int64)}
	for _, net := range base.Classes() {
		if len(base.Points(net)) != len(clusterBatches) || len(dup.Points(net)) != len(clusterBatches) {
			continue // incomplete: a latency cell for this network failed
		}
		s.classes = append(s.classes, net)
	}
	if len(s.classes) == 0 {
		if latErr == nil {
			latErr = fmt.Errorf("experiments: cluster has no serving classes")
		}
		return nil, latErr
	}
	var meanPerReq float64 // seconds per request at full batching, class-averaged
	for _, net := range s.classes {
		s8, err := s.base.ServiceNanos(net, 8)
		if err != nil {
			return nil, err
		}
		s.sloNanos[net] = clusterSLOServiceMult * s8
		meanPerReq += float64(s8) / 8 / 1e9
	}
	meanPerReq /= float64(len(s.classes))
	s.capacityPerSec = float64(clusterChips) / meanPerReq
	return s, latErr
}

// clusterConfig assembles one DES cell: the given routing policy, an
// aggregate Poisson offered load of loadFrac x baseline capacity split
// equally across classes, against the Duplo-off or -on latency table.
func (s *clusterSetup) clusterConfig(policy serving.Policy, loadFrac float64, duploOn bool, seed int64) serving.Config {
	table := s.base
	if duploOn {
		table = s.dup
	}
	rate := loadFrac * s.capacityPerSec
	horizon := int64(clusterTargetArrivals / rate * 1e9)
	classes := make([]serving.Class, len(s.classes))
	for i, net := range s.classes {
		classes[i] = serving.Class{
			Name:     net,
			Arrival:  serving.Exponential{Rate: rate / float64(len(s.classes))},
			SLONanos: s.sloNanos[net],
		}
	}
	return serving.Config{
		Chips:        clusterChips,
		Policy:       policy,
		MaxBatch:     clusterMaxBatch,
		QueueCap:     clusterQueueCap,
		HorizonNanos: horizon,
		Seed:         seed,
		Classes:      classes,
		Table:        table,
	}
}

// Cluster runs the discrete-event cluster serving experiment: offered
// load x routing policy x Duplo off/on, with per-request service times
// from the cycle-accurate per-layer results (through the Runner, so the
// memo/store/predictor tiers all apply). Each row pair compares the
// baseline (B) and Duplo (D) fleets under identical traffic: p50/p95/p99
// request latency, goodput (completions within the class SLO per
// second), rejection rate, time-weighted mean queue depth, and chip
// utilization. The whole table is deterministic: a fixed -seed yields
// byte-identical output at any worker count.
func (r *Runner) Cluster() (*report.Table, error) {
	seed := r.clusterSeed()
	t := report.NewTable(
		fmt.Sprintf("Cluster serving: %d chips, Poisson arrivals, batch<=%d, queue<=%d (seed=%d)",
			clusterChips, clusterMaxBatch, clusterQueueCap, seed),
		"Policy", "Load", "Offered r/s", "Cfg", "p50 ms", "p95 ms", "p99 ms", "Goodput r/s", "Reject%", "MeanQ", "Util")

	setup, latErr := r.setupCluster()
	se := &SweepError{Exp: "cluster"}
	if sweepErr, ok := latErr.(*SweepError); ok {
		se.Cells, se.Errs = sweepErr.Cells, sweepErr.Errs
	} else if latErr != nil {
		se.Cells = append(se.Cells, "latency-table")
		se.Errs = append(se.Errs, latErr)
	}
	if setup == nil {
		for _, policy := range serving.Policies() {
			for range clusterLoads {
				t.AddRowCells([]string{policy.String(), errCell, errCell, "B", errCell, errCell, errCell, errCell, errCell, errCell, errCell})
				t.AddRowCells([]string{"", "", "", "D", errCell, errCell, errCell, errCell, errCell, errCell, errCell})
			}
		}
		return t, se
	}

	for _, policy := range serving.Policies() {
		for _, load := range clusterLoads {
			for d, tag := range []string{"B", "D"} {
				cfg := setup.clusterConfig(policy, load, d == 1, seed)
				m, err := serving.Run(cfg)
				if err != nil {
					se.Cells = append(se.Cells, fmt.Sprintf("%s/%.1fx/%s", policy, load, tag))
					se.Errs = append(se.Errs, err)
					lead := []string{policy.String(), fmt.Sprintf("%.1fx", load), fmt.Sprintf("%.1f", load*setup.capacityPerSec)}
					if d == 1 {
						lead = []string{"", "", ""}
					}
					t.AddRowCells(append(lead, tag, errCell, errCell, errCell, errCell, errCell, errCell, errCell))
					continue
				}
				t.AddRowCells(clusterRow(policy, load, tag, d == 1, setup, m))
				r.progress("cluster %s load=%.1fx %s done (%d events)", policy, load, tag, m.Events)
			}
		}
	}
	t.Note = fmt.Sprintf("classes: %v; SLO = %dx baseline batch-8 service; B = Duplo off, D = Duplo on (1024-entry LHB); loads scale the baseline fleet's batched capacity (%.1f r/s)",
		setup.classes, clusterSLOServiceMult, setup.capacityPerSec)
	if len(se.Errs) == 0 {
		return t, nil
	}
	return t, se
}

// clusterRow renders one finished DES cell. Latency percentiles are
// cluster-wide worst-per-class maxima folded to the class-weighted view:
// the table reports the completion-weighted merge of per-class
// percentiles' host classes — concretely, the max per-class percentile,
// the conservative single number for an SLO conversation.
func clusterRow(policy serving.Policy, load float64, tag string, duploOn bool, setup *clusterSetup, m *serving.Metrics) []string {
	var p50, p95, p99 int64
	for _, c := range m.Classes {
		if c.P50Nanos > p50 {
			p50 = c.P50Nanos
		}
		if c.P95Nanos > p95 {
			p95 = c.P95Nanos
		}
		if c.P99Nanos > p99 {
			p99 = c.P99Nanos
		}
	}
	rejectPct := 0.0
	if m.Offered > 0 {
		rejectPct = 100 * float64(m.Rejected) / float64(m.Offered)
	}
	lead := []string{policy.String(), fmt.Sprintf("%.1fx", load), fmt.Sprintf("%.1f", load*setup.capacityPerSec)}
	if duploOn {
		lead = []string{"", "", ""}
	}
	return append(lead,
		tag,
		fmt.Sprintf("%.3f", serving.Ms(p50)),
		fmt.Sprintf("%.3f", serving.Ms(p95)),
		fmt.Sprintf("%.3f", serving.Ms(p99)),
		fmt.Sprintf("%.1f", m.GoodputPerSec),
		fmt.Sprintf("%.1f", rejectPct),
		fmt.Sprintf("%.1f", m.MeanQueueDepth),
		fmt.Sprintf("%.2f", m.MeanUtilization),
	)
}

// ClusterCell runs one cluster cell in detail — queue-depth sampling and
// batch-span recording on — for the observability exports (duploexp
// -cluster-timeline/-cluster-queues). The cell is the JSQ policy at the
// given load fraction, Duplo on or off, over the same latency tables the
// Cluster table uses (shared runner cache: a preceding -exp cluster pays
// for every simulation).
func (r *Runner) ClusterCell(loadFrac float64, duploOn bool) (*serving.Metrics, error) {
	setup, err := r.setupCluster()
	if setup == nil {
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	cfg := setup.clusterConfig(serving.JoinShortestQueue, loadFrac, duploOn, r.clusterSeed())
	cfg.SampleEveryNanos = cfg.HorizonNanos / 200
	if cfg.SampleEveryNanos == 0 {
		cfg.SampleEveryNanos = 1
	}
	cfg.RecordSpans = true
	return serving.Run(cfg)
}
