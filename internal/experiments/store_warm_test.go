package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"duplo/internal/sim"
	"duplo/internal/store"
	"duplo/internal/trace"
)

// TestStoreWarmStartDeterminism is the acceptance gate for the disk tier:
// the same sweep run twice against one store directory (two Store
// instances — two processes, as `duploexp -store DIR` twice) produces
// byte-identical tables, and the second run executes zero cycle
// simulations — every cell is a store hit.
func TestStoreWarmStartDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	layers := detLayers(t)[:2]

	render := func() (string, *Runner) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opts := QuickOptions()
		opts.Layers = layers
		opts.Workers = 4
		opts.Store = st
		r := NewRunner(opts)
		var b strings.Builder
		for _, id := range []string{"fig9", "fig11"} {
			sw, ok := r.Sweep(id)
			if !ok {
				t.Fatalf("no sweep %q", id)
			}
			tbl, err := sw.Run()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			tbl.Render(&b)
		}
		return b.String(), r
	}

	cold, coldRunner := render()
	if coldRunner.Execs() == 0 {
		t.Fatal("cold run executed nothing")
	}
	coldStore := coldRunner.Store().Counters()
	if coldStore.Puts != coldRunner.Execs() {
		t.Fatalf("cold run persisted %d of %d executions", coldStore.Puts, coldRunner.Execs())
	}

	warm, warmRunner := render()
	if warm != cold {
		t.Errorf("warm tables differ from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if n := warmRunner.Execs(); n != 0 {
		t.Errorf("warm run executed %d simulations, want 0", n)
	}
	warmStore := warmRunner.Store().Counters()
	if warmStore.Hits != warmRunner.StoreHits() || warmStore.Misses != 0 {
		t.Errorf("warm store counters %+v (runner store hits %d), want all hits",
			warmStore, warmRunner.StoreHits())
	}
	// 100%% store hits: every unique cell of the cold run was served warm.
	if warmRunner.StoreHits() != coldRunner.Execs() {
		t.Errorf("warm store hits %d != cold executions %d",
			warmRunner.StoreHits(), coldRunner.Execs())
	}
}

// TestStoreTierSkipsFailedRuns pins the eviction contract on the disk
// tier: a failed simulation is never persisted, and the retry that
// succeeds is.
func TestStoreTierSkipsFailedRuns(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Store = st
	r := NewRunner(opts)
	calls := 0
	r.simFn = func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
		calls++
		if calls == 1 {
			return sim.Result{}, errors.New("injected failure")
		}
		return sim.Result{Stats: sim.Stats{Cycles: 77}}, nil
	}
	k, err := sim.NewConvKernel("store-evict", hammerLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.config()

	if _, err := r.Run(k, cfg); err == nil {
		t.Fatal("injected failure did not surface")
	}
	if c := st.Counters(); c.Puts != 0 {
		t.Fatalf("failed run was persisted: %+v", c)
	}
	res, err := r.Run(k, cfg)
	if err != nil || res.Cycles != 77 {
		t.Fatalf("retry: res=%d err=%v", res.Cycles, err)
	}
	if c := st.Counters(); c.Puts != 1 {
		t.Fatalf("successful retry not persisted: %+v", c)
	}

	// A fresh runner over the same store serves the retried result warm.
	r2 := NewRunner(opts)
	r2.simFn = func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
		t.Error("warm hit still simulated")
		return sim.Result{}, nil
	}
	res, err = r2.Run(k, cfg)
	if err != nil || res.Cycles != 77 {
		t.Fatalf("warm run: res=%d err=%v", res.Cycles, err)
	}
}

// TestStoreTierBypassedWhenTracing pins the tracing contract against the
// disk tier: a run with a collector attached neither reads nor writes the
// store — the collector must observe an actual execution.
func TestStoreTierBypassedWhenTracing(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Store = st
	r := NewRunner(opts)
	r.simFn = func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
		return sim.Result{Stats: sim.Stats{Cycles: 11}}, nil
	}
	k, err := sim.NewConvKernel("store-traced", hammerLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.config()
	cfg.Tracer = trace.NewCollector(cfg.TraceMeta(0))

	if _, err := r.Run(k, cfg); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Puts != 0 || c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("traced run touched the store: %+v", c)
	}
}
