package experiments

import (
	"fmt"

	duplo "duplo/internal/core"
	"duplo/internal/report"
	"duplo/internal/sim"
)

// AblationLatency reproduces the §IV-A sensitivity: a 3-cycle detection
// unit costs only ~0.9% versus the 2-cycle design.
func (r *Runner) AblationLatency() (*report.Table, error) {
	t := report.NewTable("Ablation: detection-unit latency (§IV-A)",
		"Layer", "2-cycle", "3-cycle", "Delta")
	var deltas []float64
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		k, err := LayerKernel(l)
		if err != nil {
			return nil, err
		}
		imp := func(lat int) (float64, error) {
			cfg := r.opts.config()
			cfg.Duplo = true
			cfg.DetectCfg.LHB = DefaultLHB
			cfg.DetectCfg.LatencyCycles = lat
			res, err := r.Run(k, cfg)
			if err != nil {
				return 0, err
			}
			return sim.Speedup(base, res), nil
		}
		i2, err := imp(2)
		if err != nil {
			return nil, err
		}
		i3, err := imp(3)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, i2-i3)
		t.AddRowCells([]string{l.FullName(), report.Pct(i2), report.Pct(i3), report.Pct(i2 - i3)})
		r.opts.progress("latency %s done", l.FullName())
	}
	t.AddRowCells([]string{"Mean", "", "", report.Pct(mean(deltas))})
	return t, nil
}

// AblationSharedMem reproduces the §II-C baseline study: which GEMM
// operands to stage in shared memory. C-only allows 3 concurrent CTAs and
// wins (the paper reports +29.7% over all-in-shared).
func (r *Runner) AblationSharedMem() (*report.Table, error) {
	t := report.NewTable("Ablation: shared-memory operand placement (§II-C)",
		"Layer", "A+B+C (1 CTA)", "A+C (2 CTAs)", "C-only (3 CTAs)", "C-only vs A+B+C")
	variants := []sim.SharedVariant{sim.SharedABC, sim.SharedAC, sim.SharedCOnly}
	var gains []float64
	for _, l := range r.opts.layers() {
		cycles := make([]int64, len(variants))
		for i, v := range variants {
			k, err := LayerKernel(l)
			if err != nil {
				return nil, err
			}
			k.Variant = v
			k.Name = fmt.Sprintf("%s@%s", l.FullName(), v)
			res, err := r.Run(k, r.opts.config())
			if err != nil {
				return nil, err
			}
			cycles[i] = res.Cycles
		}
		gain := float64(cycles[0])/float64(cycles[2]) - 1
		gains = append(gains, gain)
		t.AddRowCells([]string{l.FullName(),
			fmt.Sprint(cycles[0]), fmt.Sprint(cycles[1]), fmt.Sprint(cycles[2]),
			report.Pct(gain)})
		r.opts.progress("smem %s done", l.FullName())
	}
	t.AddRowCells([]string{"Mean", "", "", "", report.Pct(mean(gains))})
	return t, nil
}

// AblationCacheScaling reproduces the §V-D claim: even 16x L1 and 4x L2
// buy only ~1.8% — bigger caches are not the answer.
func (r *Runner) AblationCacheScaling() (*report.Table, error) {
	t := report.NewTable("Ablation: cache scaling without Duplo (§V-D)",
		"Layer", "Baseline cyc", "16xL1+4xL2 cyc", "Gain")
	var gains []float64
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		k, err := LayerKernel(l)
		if err != nil {
			return nil, err
		}
		cfg := r.opts.config()
		cfg.L1KB *= 16
		cfg.L2KB *= 4
		big, err := r.Run(k, cfg)
		if err != nil {
			return nil, err
		}
		gain := float64(base.Cycles)/float64(big.Cycles) - 1
		gains = append(gains, gain)
		t.AddRowCells([]string{l.FullName(), fmt.Sprint(base.Cycles), fmt.Sprint(big.Cycles), report.Pct(gain)})
		r.opts.progress("cache %s done", l.FullName())
	}
	t.AddRowCells([]string{"Mean", "", "", report.Pct(mean(gains))})
	return t, nil
}

// AblationEviction quantifies the §V-C analysis: the gap between the
// retire-based eviction (the implementable design), the oracle, and a
// never-evict buffer approaching the theoretical duplication limit.
func (r *Runner) AblationEviction() (*report.Table, error) {
	points := []struct {
		name string
		cfg  duplo.LHBConfig
	}{
		{"1024 direct", DefaultLHB},
		{"Oracle (retire-evict)", duplo.LHBConfig{Oracle: true}},
		{"Never-evict (limit)", duplo.LHBConfig{Oracle: true, NeverEvict: true}},
	}
	headers := []string{"Layer"}
	for _, p := range points {
		headers = append(headers, p.name+" hit", p.name+" imp")
	}
	t := report.NewTable("Ablation: LHB eviction policy (§V-C)", headers...)
	agg := make([][]float64, 2*len(points))
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		row := []string{l.FullName()}
		for i, p := range points {
			dup, err := r.Duplo(l, p.cfg)
			if err != nil {
				return nil, err
			}
			hr, imp := dup.LHBHitRate(), sim.Speedup(base, dup)
			agg[2*i] = append(agg[2*i], hr)
			agg[2*i+1] = append(agg[2*i+1], imp)
			row = append(row, report.PctU(hr), report.Pct(imp))
		}
		t.AddRowCells(row)
		r.opts.progress("evict %s done", l.FullName())
	}
	g := []string{"Mean/Gmean"}
	for i := range points {
		g = append(g, report.PctU(mean(agg[2*i])), report.Pct(gmeanImprovement(agg[2*i+1])))
	}
	t.AddRowCells(g)
	return t, nil
}

// AblationIndexing compares the default XOR-fold hashed LHB index with the
// plain modulo the Table II example implies (see internal/core): modulo
// collapses power-of-two ID strides onto a few sets.
func (r *Runner) AblationIndexing() (*report.Table, error) {
	t := report.NewTable("Ablation: LHB index hashing",
		"Layer", "Hashed hit", "Modulo hit", "Hashed imp", "Modulo imp")
	var dh, dm []float64
	for _, l := range r.opts.layers() {
		base, err := r.Baseline(l)
		if err != nil {
			return nil, err
		}
		hash, err := r.Duplo(l, DefaultLHB)
		if err != nil {
			return nil, err
		}
		mod, err := r.Duplo(l, duplo.LHBConfig{Entries: 1024, Ways: 1, ModuloIndex: true})
		if err != nil {
			return nil, err
		}
		ih, im := sim.Speedup(base, hash), sim.Speedup(base, mod)
		dh = append(dh, ih)
		dm = append(dm, im)
		t.AddRowCells([]string{l.FullName(),
			report.PctU(hash.LHBHitRate()), report.PctU(mod.LHBHitRate()),
			report.Pct(ih), report.Pct(im)})
		r.opts.progress("index %s done", l.FullName())
	}
	t.AddRowCells([]string{"Gmean", "", "", report.Pct(gmeanImprovement(dh)), report.Pct(gmeanImprovement(dm))})
	return t, nil
}
