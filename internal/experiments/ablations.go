package experiments

import (
	"fmt"

	duplo "duplo/internal/core"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// The ablations below use the exact run variants only: they probe design
// axes (detection latency, operand placement, cache scaling, eviction
// policy, index hashing) the calibrated predictor never saw move, so
// their tables are documented as ground-truth-only at every predictor
// mode (DESIGN.md §9).

// AblationLatency reproduces the §IV-A sensitivity: a 3-cycle detection
// unit costs only ~0.9% versus the 2-cycle design.
func (r *Runner) AblationLatency() (*report.Table, error) {
	layers := r.opts.layers()
	t := report.NewTable("Ablation: detection-unit latency (§IV-A)",
		"Layer", "2-cycle", "3-cycle", "Delta")
	type row struct{ i2, i3 float64 }
	rows := make([]row, len(layers))
	errs := r.forEachLayer(layers, func(i int, l workload.Layer) error {
		base, err := r.BaselineExact(l)
		if err != nil {
			return err
		}
		k, err := LayerKernel(l)
		if err != nil {
			return err
		}
		imp := func(lat int) (float64, error) {
			cfg := r.opts.config()
			cfg.Duplo = true
			cfg.DetectCfg.LHB = DefaultLHB
			cfg.DetectCfg.LatencyCycles = lat
			res, err := r.RunExact(k, cfg)
			if err != nil {
				return 0, err
			}
			return sim.Speedup(base, res), nil
		}
		i2, err := imp(2)
		if err != nil {
			return err
		}
		i3, err := imp(3)
		if err != nil {
			return err
		}
		rows[i] = row{i2, i3}
		r.progress("latency %s done", l.FullName())
		return nil
	})
	var deltas []float64
	failed := false
	for i, l := range layers {
		if errs[i] != nil {
			failed = true
			t.AddRowCells([]string{l.FullName(), errCell, errCell, errCell})
			continue
		}
		i2, i3 := rows[i].i2, rows[i].i3
		deltas = append(deltas, i2-i3)
		t.AddRowCells([]string{l.FullName(), report.Pct(i2), report.Pct(i3), report.Pct(i2 - i3)})
	}
	t.AddRowCells([]string{"Mean", "", "", footerCell(failed, report.Pct(mean(deltas)))})
	return t, sweepError("lat", errs, func(i int) string { return layers[i].FullName() })
}

// AblationSharedMem reproduces the §II-C baseline study: which GEMM
// operands to stage in shared memory. C-only allows 3 concurrent CTAs and
// wins (the paper reports +29.7% over all-in-shared).
func (r *Runner) AblationSharedMem() (*report.Table, error) {
	layers := r.opts.layers()
	t := report.NewTable("Ablation: shared-memory operand placement (§II-C)",
		"Layer", "A+B+C (1 CTA)", "A+C (2 CTAs)", "C-only (3 CTAs)", "C-only vs A+B+C")
	variants := []sim.SharedVariant{sim.SharedABC, sim.SharedAC, sim.SharedCOnly}
	cycles := make([][]int64, len(layers))
	for i := range cycles {
		cycles[i] = make([]int64, len(variants))
	}
	errs := r.fanOutAll(len(layers)*len(variants), func(idx int) error {
		li, vi := idx/len(variants), idx%len(variants)
		l, v := layers[li], variants[vi]
		k, err := LayerKernel(l)
		if err != nil {
			return err
		}
		k.Variant = v
		k.Name = fmt.Sprintf("%s@%s", l.FullName(), v)
		res, err := r.RunExact(k, r.opts.config())
		if err != nil {
			return err
		}
		cycles[li][vi] = res.Cycles
		r.progress("smem %s %s done", l.FullName(), v)
		return nil
	})
	var gains []float64
	failed := false
	for li, l := range layers {
		// The gain column relates the first and last variant, so any failed
		// variant cell degrades the whole layer row.
		if errs[3*li] != nil || errs[3*li+1] != nil || errs[3*li+2] != nil {
			failed = true
			t.AddRowCells([]string{l.FullName(), errCell, errCell, errCell, errCell})
			continue
		}
		c := cycles[li]
		gain := float64(c[0])/float64(c[2]) - 1
		gains = append(gains, gain)
		t.AddRowCells([]string{l.FullName(),
			fmt.Sprint(c[0]), fmt.Sprint(c[1]), fmt.Sprint(c[2]),
			report.Pct(gain)})
	}
	t.AddRowCells([]string{"Mean", "", "", "", footerCell(failed, report.Pct(mean(gains)))})
	return t, sweepError("smem", errs, gridLabel(layers, len(variants),
		func(vi int) string { return variants[vi].String() }))
}

// AblationCacheScaling reproduces the §V-D claim: even 16x L1 and 4x L2
// buy only ~1.8% — bigger caches are not the answer.
func (r *Runner) AblationCacheScaling() (*report.Table, error) {
	layers := r.opts.layers()
	t := report.NewTable("Ablation: cache scaling without Duplo (§V-D)",
		"Layer", "Baseline cyc", "16xL1+4xL2 cyc", "Gain")
	type row struct{ base, big int64 }
	rows := make([]row, len(layers))
	errs := r.forEachLayer(layers, func(i int, l workload.Layer) error {
		base, err := r.BaselineExact(l)
		if err != nil {
			return err
		}
		k, err := LayerKernel(l)
		if err != nil {
			return err
		}
		cfg := r.opts.config()
		cfg.L1KB *= 16
		cfg.L2KB *= 4
		big, err := r.RunExact(k, cfg)
		if err != nil {
			return err
		}
		rows[i] = row{base.Cycles, big.Cycles}
		r.progress("cache %s done", l.FullName())
		return nil
	})
	var gains []float64
	failed := false
	for i, l := range layers {
		if errs[i] != nil {
			failed = true
			t.AddRowCells([]string{l.FullName(), errCell, errCell, errCell})
			continue
		}
		gain := float64(rows[i].base)/float64(rows[i].big) - 1
		gains = append(gains, gain)
		t.AddRowCells([]string{l.FullName(), fmt.Sprint(rows[i].base), fmt.Sprint(rows[i].big), report.Pct(gain)})
	}
	t.AddRowCells([]string{"Mean", "", "", footerCell(failed, report.Pct(mean(gains)))})
	return t, sweepError("cache", errs, func(i int) string { return layers[i].FullName() })
}

// AblationEviction quantifies the §V-C analysis: the gap between the
// retire-based eviction (the implementable design), the oracle, and a
// never-evict buffer approaching the theoretical duplication limit.
func (r *Runner) AblationEviction() (*report.Table, error) {
	layers := r.opts.layers()
	points := []struct {
		name string
		cfg  duplo.LHBConfig
	}{
		{"1024 direct", DefaultLHB},
		{"Oracle (retire-evict)", duplo.LHBConfig{Oracle: true}},
		{"Never-evict (limit)", duplo.LHBConfig{Oracle: true, NeverEvict: true}},
	}
	headers := []string{"Layer"}
	for _, p := range points {
		headers = append(headers, p.name+" hit", p.name+" imp")
	}
	t := report.NewTable("Ablation: LHB eviction policy (§V-C)", headers...)
	type cell struct{ hit, imp float64 }
	cells := make([][]cell, len(layers))
	for i := range cells {
		cells[i] = make([]cell, len(points))
	}
	errs := r.fanOutAll(len(layers)*len(points), func(idx int) error {
		li, pi := idx/len(points), idx%len(points)
		l := layers[li]
		base, err := r.BaselineExact(l)
		if err != nil {
			return err
		}
		dup, err := r.DuploExact(l, points[pi].cfg)
		if err != nil {
			return err
		}
		cells[li][pi] = cell{dup.LHBHitRate(), sim.Speedup(base, dup)}
		r.progress("evict %s %s done", l.FullName(), points[pi].name)
		return nil
	})
	agg := make([][]float64, 2*len(points))
	colErr := make([]bool, len(points))
	for li, l := range layers {
		row := []string{l.FullName()}
		for pi := range points {
			if errs[li*len(points)+pi] != nil {
				colErr[pi] = true
				row = append(row, errCell, errCell)
				continue
			}
			c := cells[li][pi]
			agg[2*pi] = append(agg[2*pi], c.hit)
			agg[2*pi+1] = append(agg[2*pi+1], c.imp)
			row = append(row, report.PctU(c.hit), report.Pct(c.imp))
		}
		t.AddRowCells(row)
	}
	g := []string{"Mean/Gmean"}
	for i := range points {
		g = append(g,
			footerCell(colErr[i], report.PctU(mean(agg[2*i]))),
			footerCell(colErr[i], report.Pct(gmeanImprovement(agg[2*i+1]))))
	}
	t.AddRowCells(g)
	return t, sweepError("evict", errs, gridLabel(layers, len(points),
		func(pi int) string { return points[pi].name }))
}

// AblationIndexing compares the default XOR-fold hashed LHB index with the
// plain modulo the Table II example implies (see internal/core): modulo
// collapses power-of-two ID strides onto a few sets.
func (r *Runner) AblationIndexing() (*report.Table, error) {
	layers := r.opts.layers()
	t := report.NewTable("Ablation: LHB index hashing",
		"Layer", "Hashed hit", "Modulo hit", "Hashed imp", "Modulo imp")
	type row struct {
		hashHit, modHit, ih, im float64
	}
	rows := make([]row, len(layers))
	errs := r.forEachLayer(layers, func(i int, l workload.Layer) error {
		base, err := r.BaselineExact(l)
		if err != nil {
			return err
		}
		hash, err := r.DuploExact(l, DefaultLHB)
		if err != nil {
			return err
		}
		mod, err := r.DuploExact(l, duplo.LHBConfig{Entries: 1024, Ways: 1, ModuloIndex: true})
		if err != nil {
			return err
		}
		rows[i] = row{hash.LHBHitRate(), mod.LHBHitRate(), sim.Speedup(base, hash), sim.Speedup(base, mod)}
		r.progress("index %s done", l.FullName())
		return nil
	})
	var dh, dm []float64
	failed := false
	for i, l := range layers {
		if errs[i] != nil {
			failed = true
			t.AddRowCells([]string{l.FullName(), errCell, errCell, errCell, errCell})
			continue
		}
		dh = append(dh, rows[i].ih)
		dm = append(dm, rows[i].im)
		t.AddRowCells([]string{l.FullName(),
			report.PctU(rows[i].hashHit), report.PctU(rows[i].modHit),
			report.Pct(rows[i].ih), report.Pct(rows[i].im)})
	}
	t.AddRowCells([]string{"Gmean", "", "",
		footerCell(failed, report.Pct(gmeanImprovement(dh))),
		footerCell(failed, report.Pct(gmeanImprovement(dm)))})
	return t, sweepError("index", errs, func(i int) string { return layers[i].FullName() })
}
