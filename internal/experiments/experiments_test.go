package experiments

import (
	"strings"
	"testing"

	"duplo/internal/workload"
)

// tinyOptions keeps integration tests fast: two representative layers, a
// small CTA cap, two SMs.
func tinyOptions() Options {
	c2, _ := workload.Find("ResNet", "C2")
	return Options{MaxCTAs: 8, SimSMs: 2, Layers: []workload.Layer{c2}}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"ResNet", "GAN", "YOLO", "8x224x224x3", "64x7x7x3", "1024x3x3x512"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if got := strings.Count(out, "\n"); got != 22+3 {
		t.Errorf("Table I line count %d", got)
	}
}

// Table II must reproduce the paper's four-row workflow exactly:
// miss/alloc, bypass, hit/reuse, conflict/replacement.
func TestTable2(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"Entry allocation", "Register reuse", "Entry replacement", "N/A"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
	// Element IDs from the paper: 2, 2, 6.
	lines := strings.Split(out, "\n")
	if len(lines) < 7 {
		t.Fatalf("table too short:\n%s", out)
	}
	if !strings.Contains(out, "Hit") || !strings.Contains(out, "Miss") {
		t.Errorf("Table II missing statuses:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	out := Table3().String()
	for _, want := range []string{"80", "1200MHz", "Greedy-then-oldest", "652.8GB/s", "4.5MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

func TestFig2Fig3(t *testing.T) {
	f2 := Fig2().String()
	if !strings.Contains(f2, "GEMM_TC") || !strings.Contains(f2, "Gmean") {
		t.Error("Fig 2 incomplete")
	}
	// Inapplicable bars: ResNet C1 has n/a for Winograd.
	if !strings.Contains(f2, "n/a") {
		t.Error("Fig 2 must mark inapplicable methods")
	}
	f3 := Fig3().String()
	if !strings.Contains(f3, "FFT") || !strings.Contains(f3, "Mean") {
		t.Error("Fig 3 incomplete")
	}
}

func TestFig9Through13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyOptions())
	f9, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9.String(), "Gmean") || !strings.Contains(f9.String(), "Oracle") {
		t.Errorf("Fig 9 incomplete:\n%s", f9)
	}
	f10, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10.String(), "%") {
		t.Error("Fig 10 has no rates")
	}
	f11, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f11.String(), "DRAM") {
		t.Error("Fig 11 incomplete")
	}
	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f12.String(), "8-way") {
		t.Error("Fig 12 incomplete")
	}
}

func TestFig13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	c8, _ := workload.Find("ResNet", "C8")
	opts := tinyOptions()
	opts.Layers = []workload.Layer{c8}
	r := NewRunner(opts)
	f13, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f13.String(), "Batch 32") {
		t.Errorf("Fig 13 incomplete:\n%s", f13)
	}
}

func TestEnergyAreaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.EnergyArea()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "area overhead") {
		t.Errorf("energy table incomplete:\n%s", out)
	}
}

func TestRunnerMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyOptions())
	l, _ := workload.Find("ResNet", "C8")
	a, err := r.Baseline(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Baseline(l)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("memoized run differs")
	}
	if len(r.cache) != 1 {
		t.Fatalf("cache size %d, want 1", len(r.cache))
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := DefaultOptions()
	if d.MaxCTAs <= 0 || d.SimSMs <= 0 {
		t.Fatal("bad defaults")
	}
	q := QuickOptions()
	if q.MaxCTAs >= d.MaxCTAs {
		t.Fatal("quick options should be smaller")
	}
	if len(d.layers()) != 22 {
		t.Fatal("default layers should be all of Table I")
	}
}

// The analytic hit-rate limits: 3x3 stride-1 layers must sit near 8/9 and
// the Table I mean must land in the §V-C regime (paper: 88.9%).
func TestLimits(t *testing.T) {
	tb := Limits()
	out := tb.String()
	if !strings.Contains(out, "Hit-rate limit") {
		t.Fatalf("table incomplete:\n%s", out)
	}
	c2, _ := workload.Find("ResNet", "C2")
	lim := ExactHitLimit(c2)
	if lim < 0.85 || lim > 0.90 {
		t.Errorf("ResNet C2 limit %v, want ~8/9", lim)
	}
	c6, _ := workload.Find("YOLO", "C6")
	lim6 := ExactHitLimit(c6)
	if lim6 < 0.80 || lim6 > 0.92 {
		t.Errorf("YOLO C6 limit %v", lim6)
	}
	// Strided, pad-0 layers have much less duplication.
	c3, _ := workload.Find("ResNet", "C3")
	if l3 := ExactHitLimit(c3); l3 > lim {
		t.Errorf("strided layer limit %v should be below stride-1 %v", l3, lim)
	}
}
