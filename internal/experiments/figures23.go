package experiments

import (
	"math"

	"duplo/internal/costmodel"
	"duplo/internal/memmodel"
	"duplo/internal/report"
	"duplo/internal/workload"
)

// Fig2 reproduces Figure 2: speedup of each convolution method over direct
// convolution per layer, via the analytic device model (DESIGN.md §1 —
// stand-in for the paper's RTX 2080 Ti measurements). Inapplicable cells
// render "n/a", matching the figure's missing bars.
func Fig2() *report.Table {
	d := costmodel.RTX2080Ti()
	methods := memmodel.Methods()
	headers := []string{"Layer"}
	for _, m := range methods {
		headers = append(headers, m.String())
	}
	t := report.NewTable("Figure 2: Speedup over direct convolution", headers...)
	sums := make([][]float64, len(methods))
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		row := []string{l.FullName()}
		for i, m := range methods {
			s := costmodel.Speedup(d, m, p)
			row = append(row, report.Ratio(s))
			if s > 0 {
				sums[i] = append(sums[i], s)
			}
		}
		t.AddRowCells(row)
	}
	avg := []string{"Gmean"}
	for i := range methods {
		avg = append(avg, report.Ratio(gmean(sums[i])))
	}
	t.AddRowCells(avg)
	return t
}

// Fig3 reproduces Figure 3: memory usage of each method relative to direct
// convolution, plus the §II-C implicit-GEMM comparison.
func Fig3() *report.Table {
	methods := memmodel.Methods()
	headers := []string{"Layer"}
	for _, m := range methods {
		headers = append(headers, m.String())
	}
	headers = append(headers, "Implicit/Explicit")
	t := report.NewTable("Figure 3: Memory usage relative to direct convolution", headers...)
	sums := make([][]float64, len(methods))
	var implicitRatios []float64
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		row := []string{l.FullName()}
		for i, m := range methods {
			u := memmodel.RelativeUsage(m, p)
			row = append(row, report.Ratio(u))
			if u > 0 {
				sums[i] = append(sums[i], u)
			}
		}
		ir := memmodel.ImplicitVsExplicitRatio(p)
		row = append(row, report.Ratio(ir))
		implicitRatios = append(implicitRatios, ir)
		t.AddRowCells(row)
	}
	avg := []string{"Mean"}
	for i := range methods {
		avg = append(avg, report.Ratio(mean(sums[i])))
	}
	avg = append(avg, report.Ratio(mean(implicitRatios)))
	t.AddRowCells(avg)
	return t
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func gmean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	p := 0.0
	for _, x := range v {
		p += math.Log(x)
	}
	return math.Exp(p / float64(len(v)))
}
