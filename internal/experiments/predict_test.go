package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duplo/internal/predictor"
	"duplo/internal/store"
	"duplo/internal/workload"
)

// TestCalibrationGate is the enforced accuracy contract from ISSUE 7 /
// DESIGN.md §9: fitting the analytical model against cycle-sim ground
// truth on the Fig. 9 workloads must reach per-family MAPE <= 15% and
// Pearson r >= 0.95 on the cycles target, on both the Duplo-off and
// Duplo-on sample subsets. CI runs this under the race detector (the
// `predict` job), so it uses the Quick scale.
func TestCalibrationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(QuickOptions())
	cal, err := r.Calibrate(true)
	if err != nil {
		t.Fatal(err)
	}
	fams := cal.FamilyList()
	if len(fams) == 0 {
		t.Fatal("calibration produced no family models")
	}
	for _, m := range fams {
		t.Logf("family %-10s N=%3d  all: MAPE %5.1f%% r %.3f max %5.1f%%  off: MAPE %5.1f%% r %.3f  on: MAPE %5.1f%% r %.3f",
			m.Family, m.All.N, 100*m.All.MAPE, m.All.Pearson, 100*m.All.MaxAPE,
			100*m.Off.MAPE, m.Off.Pearson, 100*m.On.MAPE, m.On.Pearson)
		if m.Off.MAPE > predictor.GateMAPE || m.On.MAPE > predictor.GateMAPE {
			t.Errorf("family %s: MAPE gate failed (off %.3f, on %.3f > %.2f)",
				m.Family, m.Off.MAPE, m.On.MAPE, predictor.GateMAPE)
		}
		if m.Off.Pearson < predictor.GatePearson || m.On.Pearson < predictor.GatePearson {
			t.Errorf("family %s: Pearson gate failed (off %.3f, on %.3f < %.2f)",
				m.Family, m.Off.Pearson, m.On.Pearson, predictor.GatePearson)
		}
		if !m.GatePass {
			t.Errorf("family %s: GatePass false", m.Family)
		}
	}
	if !cal.GatePass() {
		t.Error("calibration gate failed overall")
	}
}

// TestHybridBoundZeroByteIdentical is the safe-by-construction contract:
// hybrid mode with PredictBound 0 must render tables byte-identical to
// predictor-off, because nothing is ever predicted.
func TestHybridBoundZeroByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := tinyOptions()
	exact := NewRunner(base)

	hyb := base
	hyb.Predictor = PredictHybrid
	hyb.PredictBound = 0
	hybrid := NewRunner(hyb)

	// fig14 is omitted: it sweeps every network regardless of the layer
	// restriction (minutes even at the tiny scale), and its predicted-cell
	// marking goes through the same markPred/predNote helpers fig9-13
	// exercise. Its bound-0 behavior is structural (runTier short-circuits
	// to RunCtx before touching predictor state).
	for _, id := range []string{"fig9", "fig10", "fig11", "fig12", "fig13"} {
		se, _ := exact.Sweep(id)
		sh, _ := hybrid.Sweep(id)
		te, err := se.Run()
		if err != nil {
			t.Fatalf("%s exact: %v", id, err)
		}
		th, err := sh.Run()
		if err != nil {
			t.Fatalf("%s hybrid: %v", id, err)
		}
		if te.String() != th.String() {
			t.Errorf("%s: hybrid bound 0 differs from exact:\n--- exact ---\n%s\n--- hybrid ---\n%s",
				id, te, th)
		}
	}
	if n := hybrid.Predicted(); n != 0 {
		t.Errorf("hybrid bound 0 predicted %d cells, want 0", n)
	}
}

// TestPredictAllMarksCells checks the visibility contract: under
// predict-all every predicted cell carries the "~" marker and the table
// grows the max-predicted-error footer, with no ERR cells.
func TestPredictAllMarksCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyOptions()
	opts.Predictor = PredictAll
	r := NewRunner(opts)
	tb, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if strings.Contains(out, errCell) {
		t.Errorf("predict-all fig9 has ERR cells:\n%s", out)
	}
	if !strings.Contains(out, predictedMark) {
		t.Errorf("predict-all fig9 has no predicted marker:\n%s", out)
	}
	if !strings.Contains(out, "max predicted error") {
		t.Errorf("predict-all fig9 missing the predicted-error footer:\n%s", out)
	}
	if r.Predicted() == 0 {
		t.Error("predict-all fig9 predicted no cells")
	}
	// The fit itself simulated the calibration grid, so execs is exactly
	// the calibration set; fig9's own cells must all come from the
	// predictor or the calibration-warmed memo tier.
	cs := r.CacheStats()
	t.Logf("cache stats: %+v", cs)
	if cs.Predicted == 0 {
		t.Error("CacheStats.Predicted is zero after a predict-all sweep")
	}
}

// TestHybridNeverPredictsHeadline: hybrid mode must leave the headline
// cells (the 1024-entry column feeding Fig. 9's Gmean) as ground truth
// even with a permissive bound.
func TestHybridNeverPredictsHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyOptions()
	opts.Predictor = PredictHybrid
	opts.PredictBound = 1e9 // everything below the bound
	r := NewRunner(opts)
	tb, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// The 1024-entry column is the headline; its cells must be unmarked.
	var csv strings.Builder
	tb.CSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("fig9 too short:\n%s", csv.String())
	}
	col := -1
	for i, h := range strings.Split(lines[0], ",") {
		if h == "1024-entry" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no 1024-entry column:\n%s", csv.String())
	}
	for _, ln := range lines[1:] {
		cells := strings.Split(ln, ",")
		if len(cells) <= col {
			continue
		}
		if c := cells[col]; strings.HasSuffix(c, predictedMark) {
			t.Errorf("headline cell %q is predicted:\n%s", c, tb)
		}
	}
	if r.Predicted() == 0 {
		t.Error("hybrid with a permissive bound predicted nothing — non-headline cells should predict")
	}
}

// TestPredictedNeverPersisted: predicted results must not reach the disk
// store — only ground-truth simulations persist.
func TestPredictedNeverPersisted(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOptions()
	opts.Predictor = PredictAll
	opts.Store = st
	r := NewRunner(opts)
	if _, err := r.Fig9(); err != nil {
		t.Fatal(err)
	}
	if r.Predicted() == 0 {
		t.Fatal("nothing predicted; test is vacuous")
	}
	execs := r.Execs()
	c := st.Counters()
	if c.Puts > execs {
		t.Errorf("store has %d puts but only %d ground-truth execs — a predicted result was persisted", c.Puts, execs)
	}
}

// TestCalibrationArtifactWarmLoad: a second runner sharing the store
// directory must load the persisted calibration instead of refitting —
// its predict-all sweep simulates nothing at all.
func TestCalibrationArtifactWarmLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	opts := tinyOptions()
	opts.Predictor = PredictAll
	opts.Store = open()
	cold := NewRunner(opts)
	tb1, err := cold.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Execs() == 0 {
		t.Fatal("cold runner simulated nothing; fit cannot have run")
	}
	// Artifact must exist under <store>/calibration/.
	matches, _ := filepath.Glob(filepath.Join(dir, "calibration", "*.json"))
	if len(matches) != 1 {
		t.Fatalf("want 1 calibration artifact, got %v", matches)
	}

	opts2 := tinyOptions()
	opts2.Predictor = PredictAll
	opts2.Store = open()
	warm := NewRunner(opts2)
	tb2, err := warm.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Execs() != 0 {
		t.Errorf("warm runner simulated %d times; want 0 (artifact + store warm)", warm.Execs())
	}
	if tb1.String() != tb2.String() {
		t.Errorf("warm predict-all table differs from cold:\n%s\n---\n%s", tb1, tb2)
	}
}

// TestCalibrationArtifactKeyMismatch: an artifact fit at one scale must
// not be loaded by a runner at another scale (the key embeds the config).
func TestCalibrationArtifactKeyMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	path := filepath.Join(t.TempDir(), "calib.json")
	opts := tinyOptions()
	opts.CalibrationPath = path
	r := NewRunner(opts)
	if _, err := r.Calibrate(true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	opts2 := tinyOptions()
	opts2.MaxCTAs = opts.MaxCTAs * 2 // different scale, same path
	opts2.CalibrationPath = path
	r2 := NewRunner(opts2)
	if _, err := predictor.Load(path, r2.CalibrationKey()); err == nil {
		t.Error("Load accepted an artifact fit under a different config")
	}
}

// TestFigCalibrateSweep smoke-checks the `-exp calibrate` report.
func TestFigCalibrateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(tinyOptions())
	tb, err := r.FigCalibrate()
	if err != nil {
		t.Fatalf("calibrate sweep failed (gate?): %v\n%s", err, tb)
	}
	out := tb.String()
	for _, want := range []string{"Family", "MAPE", "Gate", "pass", "gate: MAPE"} {
		if !strings.Contains(out, want) {
			t.Errorf("calibrate report missing %q:\n%s", want, out)
		}
	}
	if workload.AllLayers() == nil {
		t.Fatal("no layers")
	}
}
