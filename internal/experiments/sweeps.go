package experiments

import "duplo/internal/report"

// Sweep is one named experiment — a whole figure or table reproduction —
// bound to a Runner. The registry below is the single index shared by
// `duploexp -exp <id>` and duploserved's `GET /v1/sweeps/{id}`, so a new
// experiment becomes servable by being added here once.
type Sweep struct {
	// ID is the CLI/URL name ("fig9", "table2", "energy", …).
	ID string
	// Sim reports whether running the sweep simulates (false for the
	// static tables, which render from the paper's constants and the
	// analytical models only).
	Sim bool
	// Run produces the table. On partial failure it still returns the
	// table (failed cells render "ERR") alongside the error.
	Run func() (*report.Table, error)
}

// Sweeps returns every experiment in the paper's presentation order,
// bound to r.
func (r *Runner) Sweeps() []Sweep {
	static := func(build func() *report.Table) func() (*report.Table, error) {
		return func() (*report.Table, error) { return build(), nil }
	}
	return []Sweep{
		{"table1", false, static(Table1)},
		{"table3", false, static(Table3)},
		{"table2", false, Table2},
		{"fig2", false, static(Fig2)},
		{"limits", false, static(Limits)},
		{"fig3", false, static(Fig3)},
		{"fig9", true, r.Fig9},
		{"fig10", true, r.Fig10},
		{"fig11", true, r.Fig11},
		{"fig12", true, r.Fig12},
		{"fig13", true, r.Fig13},
		{"fig14", true, r.Fig14},
		{"energy", true, r.EnergyArea},
		{"latency", true, r.AblationLatency},
		{"smem", true, r.AblationSharedMem},
		{"cache", true, r.AblationCacheScaling},
		{"evict", true, r.AblationEviction},
		{"index", true, r.AblationIndexing},
		{"calibrate", true, r.FigCalibrate},
		{"cluster", true, r.Cluster},
	}
}

// Sweep looks one experiment up by id.
func (r *Runner) Sweep(id string) (Sweep, bool) {
	for _, s := range r.Sweeps() {
		if s.ID == id {
			return s, true
		}
	}
	return Sweep{}, false
}

// SweepIDs returns the registry's ids in order (for usage/doc strings and
// the server's sweep listing).
func (r *Runner) SweepIDs() []string {
	sweeps := r.Sweeps()
	ids := make([]string, len(sweeps))
	for i, s := range sweeps {
		ids[i] = s.ID
	}
	return ids
}
