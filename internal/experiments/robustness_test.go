package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"duplo/internal/sim"
)

// errInjected is the sentinel the robustness tests inject through the
// Runner's simFn seam.
var errInjected = errors.New("injected cell failure")

// TestRunnerEvictsFailedRuns pins the failure side of the singleflight
// cache: a failed run's entry is evicted before waiters wake (they get the
// error, not a hang), a later request retries instead of being served the
// poisoned key, and successful entries still memoize.
func TestRunnerEvictsFailedRuns(t *testing.T) {
	opts := QuickOptions()
	opts.MaxCTAs = 4
	opts.SimSMs = 1
	opts.Workers = 4
	r := NewRunner(opts)
	var calls atomic.Int64
	r.simFn = func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
		if calls.Add(1) == 1 {
			return sim.Result{}, errInjected
		}
		return sim.Result{Stats: sim.Stats{Cycles: 1234}}, nil
	}
	k, err := sim.NewConvKernel("evict-a", hammerLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.config()

	// First attempt fails and must not stay memoized.
	if _, err := r.Run(k, cfg); !errors.Is(err, errInjected) {
		t.Fatalf("first run: got %v, want the injected failure", err)
	}
	r.mu.Lock()
	cached := len(r.cache)
	r.mu.Unlock()
	if cached != 0 {
		t.Fatalf("failed run stayed cached (%d entries)", cached)
	}

	// The retry re-executes and succeeds; a third request is a cache hit.
	res, err := r.Run(k, cfg)
	if err != nil || res.Cycles != 1234 {
		t.Fatalf("retry: res=%+v err=%v", res.Stats, err)
	}
	again, err := r.Run(k, cfg)
	if err != nil || again != res {
		t.Fatalf("cached request: res changed (%v) or errored (%v)", again != res, err)
	}
	if got := r.Execs(); got != 2 {
		t.Fatalf("executed %d simulations, want 2 (fail + retry, then a hit)", got)
	}

	// Concurrent waiters coalesced onto a failing flight all receive the
	// error. The flight blocks until released, so the waiters are real.
	var failing atomic.Bool
	failing.Store(true)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	r.simFn = func(context.Context, sim.Config, *sim.Kernel, *sim.Arena) (sim.Result, error) {
		if failing.Load() {
			once.Do(func() { close(started) })
			<-release
			return sim.Result{}, errInjected
		}
		return sim.Result{Stats: sim.Stats{Cycles: 5678}}, nil
	}
	k2, err := sim.NewConvKernel("evict-b", hammerLayer)
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Run(k2, cfg)
		}(i)
	}
	<-started // the flight is in simFn: its entry is installed and open
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, errInjected) {
			t.Errorf("waiter %d: got %v, want the injected failure", i, err)
		}
	}
	r.mu.Lock()
	cached = len(r.cache)
	r.mu.Unlock()
	if cached != 1 { // only the evict-a success remains
		t.Fatalf("cache holds %d entries after the failing flights, want 1", cached)
	}
	failing.Store(false)
	if res, err := r.Run(k2, cfg); err != nil || res.Cycles != 5678 {
		t.Fatalf("post-failure retry: res=%+v err=%v", res.Stats, err)
	}
}

// TestFanOutDrainAndFirstError pins the degradation contract of the
// fan-out primitives at both pool widths: every task runs even when some
// fail or panic (no early exit leaving outputs half-written), errors land
// in their own index slots, and fanOut reports the lowest-index error
// regardless of completion order.
func TestFanOutDrainAndFirstError(t *testing.T) {
	const n = 23
	task := func(ran *atomic.Int64) func(int) error {
		return func(i int) error {
			ran.Add(1)
			if i == 7 {
				panic("task 7 exploded")
			}
			if i%5 == 0 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		}
	}
	for _, workers := range []int{1, 8} {
		r := NewRunner(Options{Workers: workers})
		var ran atomic.Int64
		errs := r.fanOutAll(n, task(&ran))
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: drained %d/%d tasks", workers, got, n)
		}
		for i, err := range errs {
			switch {
			case i == 7:
				if err == nil || !strings.Contains(err.Error(), "panicked") {
					t.Errorf("workers=%d task %d: panic not contained: %v", workers, i, err)
				}
			case i%5 == 0:
				if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("task %d failed", i)) {
					t.Errorf("workers=%d task %d: got %v", workers, i, err)
				}
			default:
				if err != nil {
					t.Errorf("workers=%d task %d: unexpected error %v", workers, i, err)
				}
			}
		}
		ran.Store(0)
		err := r.fanOut(n, task(&ran))
		if err == nil || !strings.Contains(err.Error(), "task 0 failed") {
			t.Errorf("workers=%d: fanOut returned %v, want the lowest-index error", workers, err)
		}
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: fanOut drained %d/%d tasks", workers, got, n)
		}
	}
}

// TestPartialTableDeterministic injects one deterministic cell failure
// into a Fig. 9 sweep (through the simFn seam — no real simulations run)
// and requires the degraded output to be byte-identical between Workers=1
// and Workers=8: the same ERR cell, the same poisoned Gmean footer, and
// the same *SweepError. Failure identity is per task, not per schedule.
func TestPartialTableDeterministic(t *testing.T) {
	layers := detLayers(t)
	failLayer := layers[1].FullName()
	failLHB := LHBPoints[1].Cfg
	mk := func(workers int) *Runner {
		opts := QuickOptions()
		opts.Layers = layers
		opts.Workers = workers
		r := NewRunner(opts)
		r.simFn = func(_ context.Context, cfg sim.Config, k *sim.Kernel, _ *sim.Arena) (sim.Result, error) {
			if cfg.Duplo && cfg.DetectCfg.LHB == failLHB && k.Name == failLayer {
				return sim.Result{}, errInjected
			}
			cycles := int64(1000)
			if cfg.Duplo {
				cycles = 900
			}
			return sim.Result{Stats: sim.Stats{Cycles: cycles}}, nil
		}
		return r
	}
	type out struct {
		table string
		err   error
	}
	run := func(workers int) out {
		tbl, err := mk(workers).Fig9()
		if tbl == nil {
			t.Fatalf("workers=%d: degraded sweep must still render a table", workers)
		}
		return out{tbl.String(), err}
	}
	serial, parallel := run(1), run(8)
	if serial.table != parallel.table {
		t.Errorf("degraded fig9 differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.table, parallel.table)
	}
	if n := strings.Count(serial.table, errCell); n != 2 { // the cell and its poisoned Gmean
		t.Errorf("degraded table holds %d %q cells, want 2:\n%s", n, errCell, serial.table)
	}
	for _, o := range []out{serial, parallel} {
		var sw *SweepError
		if !errors.As(o.err, &sw) {
			t.Fatalf("got %T (%v), want *SweepError", o.err, o.err)
		}
		if !errors.Is(o.err, errInjected) {
			t.Errorf("SweepError does not unwrap to the injected failure: %v", o.err)
		}
		if !strings.Contains(o.err.Error(), failLayer+"/"+LHBPoints[1].Name) {
			t.Errorf("SweepError does not name the failed cell: %v", o.err)
		}
	}
	if serial.err.Error() != parallel.err.Error() {
		t.Errorf("SweepError differs between worker counts:\nserial:   %v\nparallel: %v",
			serial.err, parallel.err)
	}
}

// TestSigintCancelsSweep wires a Runner to a signal.NotifyContext (the CLI
// wiring), delivers a real SIGINT to the test process, and requires the
// sweep to degrade: a partial all-ERR table plus a *SweepError that
// unwraps to context.Canceled — the duploexp exit path.
func TestSigintCancelsSweep(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := QuickOptions()
	opts.Layers = detLayers(t)[:1]
	opts.Workers = 4
	opts.Context = ctx
	r := NewRunner(opts)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	tbl, err := r.Fig9()
	if tbl == nil {
		t.Fatal("cancelled sweep must still render a partial table")
	}
	if !strings.Contains(tbl.String(), errCell) {
		t.Errorf("cancelled sweep rendered no %q cells:\n%s", errCell, tbl)
	}
	var sw *SweepError
	if !errors.As(err, &sw) {
		t.Fatalf("got %T (%v), want *SweepError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("SweepError does not unwrap to context.Canceled: %v", err)
	}
	// Every attempt fail-fasted: nothing may be left memoized for a retry
	// after the signal (Execs itself is schedule-dependent here — failed
	// entries evict, so coalescing varies).
	r.mu.Lock()
	cached := len(r.cache)
	r.mu.Unlock()
	if cached != 0 {
		t.Errorf("cancelled sweep left %d cache entries", cached)
	}
}
