// Benchmark harness: one testing.B per table/figure of the paper's
// evaluation. Each bench regenerates its experiment at reduced scale (the
// QuickOptions CTA cap) and reports the headline number the paper quotes as
// a custom metric, so `go test -bench=.` produces the whole result series.
//
// For the full-scale tables, run `go run ./cmd/duploexp -exp all`.
package experiments_test

import (
	"math"
	"strconv"
	"strings"
	"testing"

	duplocore "duplo/internal/core"
	"duplo/internal/costmodel"
	"duplo/internal/energy"
	"duplo/internal/experiments"
	"duplo/internal/memmodel"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// benchLayers is a small representative subset: one duplication-rich
// stride-1 layer, one strided layer, one GAN transposed layer.
func benchLayers(tb testing.TB) []workload.Layer {
	tb.Helper()
	var out []workload.Layer
	for _, id := range [][2]string{{"ResNet", "C2"}, {"ResNet", "C3"}, {"GAN", "TC4"}} {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, l)
	}
	return out
}

func benchRunner(tb testing.TB) *experiments.Runner {
	opts := experiments.QuickOptions()
	opts.Layers = benchLayers(tb)
	return experiments.NewRunner(opts)
}

// BenchmarkTable1Workloads regenerates Table I (layer configurations).
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if !strings.Contains(t.String(), "YOLO") {
			b.Fatal("table incomplete")
		}
	}
}

// BenchmarkTable2Workflow regenerates the Table II LHB workflow example.
func BenchmarkTable2Workflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(t.String(), "Entry replacement") {
			b.Fatal("workflow incomplete")
		}
	}
}

// BenchmarkFig2ConvMethods regenerates the Fig. 2 method-speedup series and
// reports the GEMM_TC gmean (paper: 25.7x).
func BenchmarkFig2ConvMethods(b *testing.B) {
	d := costmodel.RTX2080Ti()
	var last float64
	for i := 0; i < b.N; i++ {
		prod, n := 1.0, 0
		for _, l := range workload.AllLayers() {
			s := costmodel.Speedup(d, memmodel.GEMMTensorCore, l.GemmParams())
			if s > 0 {
				prod *= s
				n++
			}
		}
		last = math.Pow(prod, 1/float64(n))
	}
	b.ReportMetric(last, "gemmTC_speedup_x")
}

// BenchmarkFig3MemoryUsage regenerates the Fig. 3 memory-usage series and
// reports the GEMM mean (paper: 9.7x).
func BenchmarkFig3MemoryUsage(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		s, n := 0.0, 0
		for _, l := range workload.AllLayers() {
			u := memmodel.RelativeUsage(memmodel.GEMM, l.GemmParams())
			if u > 0 {
				s += u
				n++
			}
		}
		last = s / float64(n)
	}
	b.ReportMetric(last, "gemm_mem_usage_x")
}

// BenchmarkFig9LHBSize regenerates the Fig. 9 sweep on the bench subset and
// reports the oracle gmean improvement (paper: +25.9%).
func BenchmarkFig9LHBSize(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		t, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		metric = lastGmeanPct(b, t.String())
	}
	b.ReportMetric(metric, "oracle_improvement_%")
}

// BenchmarkFig10HitRate regenerates the Fig. 10 hit-rate sweep and reports
// the 1024-entry mean hit rate (paper: ~70-76%).
func BenchmarkFig10HitRate(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.Fig10(); err != nil {
			b.Fatal(err)
		}
		l := benchLayers(b)[0]
		res, err := r.Duplo(l, experiments.DefaultLHB)
		if err != nil {
			b.Fatal(err)
		}
		metric = 100 * res.LHBHitRate()
	}
	b.ReportMetric(metric, "hit_rate_%")
}

// BenchmarkFig11MemBreakdown regenerates the Fig. 11 service breakdown and
// reports the DRAM traffic delta (paper: -26.6%).
func BenchmarkFig11MemBreakdown(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.Fig11(); err != nil {
			b.Fatal(err)
		}
		l := benchLayers(b)[0]
		base, err := r.Baseline(l)
		if err != nil {
			b.Fatal(err)
		}
		dup, err := r.Duplo(l, experiments.DefaultLHB)
		if err != nil {
			b.Fatal(err)
		}
		metric = 100 * (float64(dup.DRAMLines)/float64(base.DRAMLines) - 1)
	}
	b.ReportMetric(metric, "dram_delta_%")
}

// BenchmarkFig12Associativity regenerates the Fig. 12 associativity sweep.
func BenchmarkFig12Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		t, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(t.String(), "8-way") {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkFig13BatchSize regenerates the Fig. 13 batch sweep on one layer.
func BenchmarkFig13BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickOptions()
		opts.Layers = benchLayers(b)[:1]
		r := experiments.NewRunner(opts)
		t, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(t.String(), "Batch 32") {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkFig14Network regenerates the network-level comparison on a
// reduced network (first two ResNet layers) and reports the inference
// reduction.
func BenchmarkFig14Network(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickOptions()
		r := experiments.NewRunner(opts)
		layers := workload.ResNet[1:3]
		baseK, dupK := 0.0, 0.0
		cfg := sim.TitanVConfig()
		cfg.MaxCTAs = opts.MaxCTAs
		cfg.SimSMs = opts.SimSMs
		for _, l := range layers {
			k, err := experiments.LayerKernel(l)
			if err != nil {
				b.Fatal(err)
			}
			base, err := r.Run(k, cfg)
			if err != nil {
				b.Fatal(err)
			}
			dcfg := cfg
			dcfg.Duplo = true
			dcfg.DetectCfg.LHB = experiments.DefaultLHB
			dup, err := r.Run(k, dcfg)
			if err != nil {
				b.Fatal(err)
			}
			baseK += float64(base.Cycles)
			dupK += float64(dup.Cycles)
		}
		metric = 100 * (1 - dupK/baseK)
	}
	b.ReportMetric(metric, "inference_reduction_%")
}

// BenchmarkEnergyArea regenerates the §V-H energy/area comparison and
// reports the on-chip saving of the first bench layer (paper avg: 34.1%).
func BenchmarkEnergyArea(b *testing.B) {
	var metric float64
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.EnergyArea(); err != nil {
			b.Fatal(err)
		}
		l := benchLayers(b)[0]
		base, err := r.Baseline(l)
		if err != nil {
			b.Fatal(err)
		}
		dup, err := r.Duplo(l, experiments.DefaultLHB)
		if err != nil {
			b.Fatal(err)
		}
		metric = 100 * energy.OnChipSaving(energy.Default12nm(), base, dup)
	}
	b.ReportMetric(metric, "onchip_energy_saving_%")
}

// BenchmarkAblationEviction regenerates the §V-C eviction-policy study.
func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		if _, err := r.AblationEviction(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSharedMem regenerates the §II-C shared-memory variant
// study on one layer.
func BenchmarkAblationSharedMem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := experiments.QuickOptions()
		opts.Layers = benchLayers(b)[:1]
		r := experiments.NewRunner(opts)
		if _, err := r.AblationSharedMem(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionUnitAccess measures the raw detection-unit lookup path
// (ID generation + LHB probe + rename), the per-load hardware operation.
func BenchmarkDetectionUnitAccess(b *testing.B) {
	l, _ := workload.Find("ResNet", "C2")
	k, err := sim.NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		b.Fatal(err)
	}
	du, err := duplocore.NewDetectionUnit(duplocore.DefaultDetectionUnitConfig(), 64, 32)
	if err != nil {
		b.Fatal(err)
	}
	if err := du.Program(*k.Conv, k.Layout); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := k.Layout.Addr(i%k.M, (i*16)%k.K)
		res, seq := du.Access(i%64, i%32, addr, 0)
		if i%7 == 0 {
			du.Retire(seq)
		}
		_ = res
	}
}

// lastGmeanPct extracts the last percentage on the Gmean row (the oracle
// column).
func lastGmeanPct(tb testing.TB, table string) float64 {
	tb.Helper()
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(line, "Gmean") {
			fields := strings.Fields(line)
			last := fields[len(fields)-1]
			last = strings.TrimSuffix(strings.TrimPrefix(last, "+"), "%")
			v, err := strconv.ParseFloat(last, 64)
			if err != nil {
				tb.Fatalf("parse %q: %v", last, err)
			}
			return v
		}
	}
	tb.Fatal("no Gmean row")
	return 0
}
