package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"duplo/internal/fault"
	"duplo/internal/sim"
	"duplo/internal/store"
)

// stubSimFn is a deterministic stand-in for the cycle simulator, so chaos
// tests exercise the caching/fault plumbing without paying for real
// simulations. Fault tests re-wrap it with faultWrap explicitly (setting
// r.simFn directly bypasses the wrap NewRunner installed).
func stubSimFn(_ context.Context, cfg sim.Config, k *sim.Kernel, _ *sim.Arena) (sim.Result, error) {
	cycles := int64(1000)
	if cfg.Duplo {
		cycles = 900
	}
	return sim.Result{Stats: sim.Stats{Cycles: cycles, Instructions: int64(len(k.Name))}}, nil
}

func stubSim(r *Runner) { r.simFn = stubSimFn }

// TestRunnerSurvivesStoreOutage: with every store read and write failing,
// runs still succeed (simulate + memo), the memo tier keeps serving
// repeats, and the failure is visible in the counters — the disk tier
// degrades to warmth loss, never to wrong answers or errors.
func TestRunnerSurvivesStoreOutage(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.Parse("store-read:every=1;store-write:every=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaults(in)
	opts := QuickOptions()
	opts.Workers = 2
	opts.Store = st
	r := NewRunner(opts)
	stubSim(r)

	l := detLayers(t)[0]
	k, err := LayerKernel(l)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.Config()
	res, err := r.Run(k, cfg)
	if err != nil {
		t.Fatalf("run failed under store outage: %v", err)
	}
	if res.Stats.Cycles != 1000 {
		t.Fatalf("run returned wrong result under store outage: %+v", res.Stats)
	}
	if _, err := r.Run(k, cfg); err != nil {
		t.Fatalf("memoized re-run failed: %v", err)
	}
	if r.Execs() != 1 {
		t.Errorf("executed %d simulations, want 1 (memo tier must survive the outage)", r.Execs())
	}
	c := st.Counters()
	if c.ReadErrors == 0 || c.PutErrors == 0 {
		t.Errorf("outage left no counter trace: %+v", c)
	}
}

// TestSimFaultSurfacesAsTypedPanic: an injected simulation fault comes
// back as a *sim.SimError with phase "panic" wrapping the injected
// sentinel — the same shape a real contained panic produces — and the
// failed run is never memoized or persisted, so the retry succeeds.
func TestSimFaultSurfacesAsTypedPanic(t *testing.T) {
	in, err := fault.Parse("sim:nth=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Workers = 1
	opts.Store = st
	opts.Faults = in
	r := NewRunner(opts)
	r.simFn = faultWrap(in, stubSimFn)

	k, err := LayerKernel(detLayers(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	cfg := opts.Config()
	_, rerr := r.Run(k, cfg)
	var se *sim.SimError
	if !errors.As(rerr, &se) || se.Phase != sim.PhasePanic {
		t.Fatalf("injected sim fault returned %v, want *sim.SimError{Phase: panic}", rerr)
	}
	if !errors.Is(rerr, fault.ErrInjected) {
		t.Errorf("sim fault does not unwrap to ErrInjected: %v", rerr)
	}
	if c := st.Counters(); c.Puts != 0 {
		t.Errorf("failed run was persisted (%d puts)", c.Puts)
	}
	// nth=1 has fired; the retry simulates cleanly (failed-run eviction).
	res, rerr := r.Run(k, cfg)
	if rerr != nil || res.Stats.Cycles == 0 {
		t.Fatalf("retry after injected fault: %v %+v", rerr, res.Stats)
	}
	if c := st.Counters(); c.Puts != 1 {
		t.Errorf("successful retry not persisted (%d puts)", c.Puts)
	}
}

// TestSimDelayLosesToCancellation: an injected sim delay aborts with the
// typed cancellation error when the context dies first — long-job
// modeling must not wedge shutdown.
func TestSimDelayLosesToCancellation(t *testing.T) {
	in, err := fault.Parse("sim-delay:every=1,delay=1h", 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Workers = 1
	opts.Faults = in
	r := NewRunner(opts)
	r.simFn = faultWrap(in, stubSimFn)
	k, err := LayerKernel(detLayers(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, rerr := r.RunCtx(ctx, k, opts.Config())
	var se *sim.SimError
	if !errors.As(rerr, &se) || se.Phase != sim.PhaseCancelled {
		t.Fatalf("cancelled delayed run returned %v, want *sim.SimError{Phase: cancelled}", rerr)
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Errorf("cancelled run does not unwrap to context.Canceled: %v", rerr)
	}
}

// TestFaultFreeDifferential is the acceptance gate for the hook
// discipline: with the whole robustness layer armed (injector attached to
// store and runner, resilience enabled) but no fault rules, fig9 and
// fig10 render byte-identical to a build with the machinery absent.
func TestFaultFreeDifferential(t *testing.T) {
	layers := detLayers(t)
	render := func(armed bool) string {
		opts := QuickOptions()
		opts.Layers = layers
		opts.Workers = 4
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts.Store = st
		if armed {
			in, err := fault.Parse("", 1) // armed, zero rules
			if err != nil {
				t.Fatal(err)
			}
			st.SetFaults(in)
			st.EnableResilience(store.ResilienceConfig{})
			opts.Faults = in
		}
		r := NewRunner(opts)
		if armed {
			r.simFn = faultWrap(opts.Faults, stubSimFn)
		} else {
			stubSim(r)
		}
		var b strings.Builder
		for _, id := range []string{"fig9", "fig10"} {
			sw, ok := r.Sweep(id)
			if !ok {
				t.Fatalf("no sweep %q", id)
			}
			tbl, err := sw.Run()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			tbl.Render(&b)
		}
		return b.String()
	}
	plain, armed := render(false), render(true)
	if plain != armed {
		t.Errorf("fault-free armed run differs from plain run:\n--- plain ---\n%s\n--- armed ---\n%s", plain, armed)
	}
}
