package experiments

import (
	"sync"
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// detLayers is the determinism-test subset: a duplication-rich stride-1
// layer, a strided layer, and a GAN transposed layer.
func detLayers(tb testing.TB) []workload.Layer {
	tb.Helper()
	var out []workload.Layer
	for _, id := range [][2]string{{"ResNet", "C2"}, {"ResNet", "C3"}, {"GAN", "TC4"}} {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, l)
	}
	return out
}

// TestParallelDeterminism renders Figs. 9-12 with Workers=1 (the serial
// path) and Workers=8 at QuickOptions scale and requires byte-identical
// tables: parallel execution must change wall-clock only, never output.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mk := func(workers int) *Runner {
		opts := QuickOptions()
		opts.Layers = detLayers(t)
		opts.Workers = workers
		return NewRunner(opts)
	}
	serial, parallel := mk(1), mk(8)
	if serial.Workers() != 1 || parallel.Workers() != 8 {
		t.Fatalf("worker counts %d/%d", serial.Workers(), parallel.Workers())
	}
	figs := []struct {
		name string
		run  func(*Runner) (*report.Table, error)
	}{
		{"fig9", (*Runner).Fig9},
		{"fig10", (*Runner).Fig10},
		{"fig11", (*Runner).Fig11},
		{"fig12", (*Runner).Fig12},
	}
	for _, f := range figs {
		ts, err := f.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", f.name, err)
		}
		tp, err := f.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", f.name, err)
		}
		if ts.String() != tp.String() {
			t.Errorf("%s differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				f.name, ts, tp)
		}
	}
}

// TestParallelDeterminismFig13 covers the batch sweep (own runner pair: its
// kernels are batch-renamed, so nothing is shared with the Fig. 9-12 keys).
func TestParallelDeterminismFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	mk := func(workers int) *Runner {
		opts := QuickOptions()
		opts.Layers = detLayers(t)[:1]
		opts.Workers = workers
		return NewRunner(opts)
	}
	ts, err := mk(1).Fig13()
	if err != nil {
		t.Fatal(err)
	}
	tp, err := mk(8).Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if ts.String() != tp.String() {
		t.Errorf("fig13 differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", ts, tp)
	}
}

// TestCachedKeyStableAcrossInvocations: the same Runner must hand back the
// identical sim.Result for a cached key, invocation after invocation.
func TestCachedKeyStableAcrossInvocations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := QuickOptions()
	opts.Layers = detLayers(t)[:1]
	opts.Workers = 4
	r := NewRunner(opts)
	l := opts.Layers[0]
	first, err := r.Baseline(l)
	if err != nil {
		t.Fatal(err)
	}
	firstDup, err := r.Duplo(l, DefaultLHB)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := r.Baseline(l)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("invocation %d: cached baseline result changed", i)
		}
		againDup, err := r.Duplo(l, DefaultLHB)
		if err != nil {
			t.Fatal(err)
		}
		if againDup != firstDup {
			t.Fatalf("invocation %d: cached duplo result changed", i)
		}
	}
	if got := r.Execs(); got != 2 {
		t.Fatalf("executed %d simulations, want 2", got)
	}
}

// hammerLayer is a deliberately tiny convolution so the singleflight hammer
// stays fast under -race.
var hammerLayer = conv.Params{N: 1, H: 8, W: 8, C: 16, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}

// TestRunCacheSingleflight hammers the run cache from 16 goroutines
// requesting overlapping keys and asserts (a) every goroutine sees the
// same result per key and (b) each unique key simulated exactly once.
func TestRunCacheSingleflight(t *testing.T) {
	opts := QuickOptions()
	opts.MaxCTAs = 4
	opts.SimSMs = 1
	opts.Workers = 8
	r := NewRunner(opts)

	base := opts.config()
	cfgs := []sim.Config{base}
	for _, entries := range []int{256, 1024} {
		c := base
		c.Duplo = true
		c.DetectCfg.LHB = duplo.LHBConfig{Entries: entries, Ways: 1}
		cfgs = append(cfgs, c)
	}
	oracle := base
	oracle.Duplo = true
	oracle.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
	cfgs = append(cfgs, oracle)

	const goroutines = 16
	const iters = 8
	results := make([][]sim.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Each goroutine walks the key set at its own phase so
				// every key is requested concurrently by many goroutines.
				c := cfgs[(g+i)%len(cfgs)]
				k, err := sim.NewConvKernel("hammer", hammerLayer)
				if err != nil {
					errs[g] = err
					return
				}
				res, err := r.Run(k, c)
				if err != nil {
					errs[g] = err
					return
				}
				results[g] = append(results[g], res)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := r.Execs(); got != int64(len(cfgs)) {
		t.Fatalf("executed %d simulations for %d unique keys", got, len(cfgs))
	}
	if got := len(r.cache); got != len(cfgs) {
		t.Fatalf("cache holds %d entries, want %d", got, len(cfgs))
	}
	// Cross-check result stability: every goroutine's view of key j must
	// match goroutine 0's.
	canon := make(map[int]sim.Result)
	for g := range results {
		for i, res := range results[g] {
			j := (g + i) % len(cfgs)
			if prev, ok := canon[j]; !ok {
				canon[j] = res
			} else if res != prev {
				t.Fatalf("goroutine %d saw a different result for key %d", g, j)
			}
		}
	}
}

// TestProgressSink: Verbose alone must emit (regression: progress used to
// require both Verbose and Progress, so -v printed nothing), and the sink
// must be safe for concurrent workers.
func TestProgressSink(t *testing.T) {
	// Verbose with no Progress func defaults to a stdout sink.
	r := NewRunner(Options{Verbose: true})
	if r.sink == nil {
		t.Fatal("Verbose without Progress must default the sink to stdout")
	}
	// Not verbose: no sink, progress is a no-op.
	if q := NewRunner(Options{Progress: func(string) {}}); q.sink != nil {
		t.Fatal("sink must be nil when Verbose is unset")
	}
	// Verbose with an explicit func: every concurrent emission arrives.
	var mu sync.Mutex
	var got []string
	v := NewRunner(Options{Verbose: true, Workers: 8,
		Progress: func(s string) { mu.Lock(); got = append(got, s); mu.Unlock() }})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.progress("worker %d", i)
		}(i)
	}
	wg.Wait()
	if len(got) != 32 {
		t.Fatalf("progress delivered %d/32 lines", len(got))
	}
}

// BenchmarkRunnerSerial regenerates Fig. 9 on the three-layer subset at
// quick scale through the Workers=1 serial path.
func BenchmarkRunnerSerial(b *testing.B) { benchmarkRunner(b, 1) }

// BenchmarkRunnerParallel is the same workload on the default-width pool;
// the Serial/Parallel ratio is the engine's speedup on this host (~cores,
// until the memory bus saturates; see EXPERIMENTS.md).
func BenchmarkRunnerParallel(b *testing.B) { benchmarkRunner(b, 0) }

func benchmarkRunner(b *testing.B, workers int) {
	opts := QuickOptions()
	opts.Layers = detLayers(b)
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner(opts) // fresh cache: every simulation really runs
		if _, err := r.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}
