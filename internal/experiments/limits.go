package experiments

import (
	"fmt"

	"duplo/internal/report"
	"duplo/internal/workload"
)

// Limits computes the analytic duplication statistics of every layer: the
// workspace expansion factor and the theoretical upper limit of the LHB hit
// rate, 1 - distinctIDs/workspaceElems (§V-C reports 88.9% on average for
// Table I; every 3x3 stride-1 "same" layer is exactly 8/9 ignoring edges).
func Limits() *report.Table {
	t := report.NewTable("Analytic duplication limits (§III / §V-C)",
		"Layer", "Workspace MxK", "Expansion", "Hit-rate limit")
	var sum float64
	for _, l := range workload.AllLayers() {
		p := l.GemmParams()
		limit := ExactHitLimit(l)
		sum += limit
		t.AddRowCells([]string{
			l.FullName(),
			fmt.Sprintf("%dx%d", p.GemmM(), p.GemmK()),
			fmt.Sprintf("%.1fx", p.DuplicationFactor()),
			report.PctU(limit),
		})
	}
	t.AddRowCells([]string{"Mean", "", "", report.PctU(sum / float64(len(workload.AllLayers())))})
	return t
}

// ExactHitLimit returns the exact theoretical hit-rate limit of a layer:
// one compulsory miss per distinct (batch, element) ID, every other
// workspace reference a potential hit. Halo (zero-pad) entries carry
// distinct IDs under the padded-width generalization (internal/core), so
// they count as unique, exactly as the generator treats them.
//
// The distinct-ID set is {(iy*(W+2P)+ix) : referenced padded coords} x C
// per image; it is enumerated over output/tap coordinates in O(OH*FH*OW*FW)
// time, fine for every Table I layer.
func ExactHitLimit(l workload.Layer) float64 {
	p := l.GemmParams()
	wp := p.W + 2*p.Pad
	seen := make(map[int64]struct{})
	oh, ow := p.OutH(), p.OutW()
	for oy := 0; oy < oh; oy++ {
		for fy := 0; fy < p.FH; fy++ {
			iy := oy*p.Stride + fy
			for ox := 0; ox < ow; ox++ {
				for fx := 0; fx < p.FW; fx++ {
					ix := ox*p.Stride + fx
					seen[int64(iy)*int64(wp)+int64(ix)] = struct{}{}
				}
			}
		}
	}
	distinct := int64(len(seen)) * int64(p.C) * int64(p.N)
	total := p.WorkspaceElems()
	limit := 1 - float64(distinct)/float64(total)
	if limit < 0 {
		return 0
	}
	return limit
}
