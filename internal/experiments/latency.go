package experiments

import (
	"fmt"

	"duplo/internal/serving"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// BatchKernel builds the forward GEMM kernel for a layer at an explicit
// batch size, named so runs land on the same cache/store keys as the
// Fig. 13 batch sweep ("Net/Layer@b16"): a cluster experiment re-renders
// warm from a store a fig13 run already filled, and vice versa.
func BatchKernel(l workload.Layer, batch int) (*sim.Kernel, error) {
	lb := l
	lb.Params = l.Params.WithBatch(batch)
	k, err := LayerKernel(lb)
	if err != nil {
		return nil, err
	}
	k.Name = fmt.Sprintf("%s@b%d", lb.FullName(), batch)
	return k, nil
}

// ServingLatencies builds the serving simulator's service-time tables —
// Duplo off (base) and on at the paper's 1024-entry design point (dup) —
// for the given layers at the given batch sizes, through the Runner so
// the memo/store/predictor tiers all apply. Per-layer cycle counts are
// summed per network (one serving request = one forward pass of the
// whole network) and converted to nanoseconds at clockMHz.
//
// On partial simulation failure the returned tables omit every
// (network, batch) point an error touched — a poisoned sum must not
// become a service time — and the *SweepError names the failed cells.
// The tables are byte-identical at any worker count.
func (r *Runner) ServingLatencies(layers []workload.Layer, batches []int, clockMHz int) (base, dup *serving.LatencyTable, err error) {
	if len(batches) == 0 {
		return nil, nil, fmt.Errorf("experiments: ServingLatencies needs at least one batch size")
	}
	if clockMHz <= 0 {
		return nil, nil, fmt.Errorf("experiments: ServingLatencies needs a positive clock rate, got %d MHz", clockMHz)
	}
	// cells[li][bi][d] with d 0=base, 1=duplo.
	nb := len(batches)
	cycles := make([]int64, len(layers)*nb*2)
	errs := r.fanOutAll(len(layers)*nb*2, func(idx int) error {
		li, rest := idx/(nb*2), idx%(nb*2)
		bi, d := rest/2, rest%2
		k, err := BatchKernel(layers[li], batches[bi])
		if err != nil {
			return err
		}
		cfg := r.opts.config()
		if d == 1 {
			cfg.Duplo = true
			cfg.DetectCfg.LHB = DefaultLHB
		}
		res, err := r.Run(k, cfg)
		if err != nil {
			return err
		}
		cycles[idx] = res.Cycles
		mode := "base"
		if d == 1 {
			mode = "duplo"
		}
		r.progress("latency %s b%d %s done", layers[li].FullName(), batches[bi], mode)
		return nil
	})

	base, dup = serving.NewLatencyTable(), serving.NewLatencyTable()
	for _, net := range workload.NetworkNames() {
		for bi, b := range batches {
			for d := 0; d < 2; d++ {
				var sum int64
				ok, present := true, false
				for li, l := range layers {
					if l.Network != net {
						continue
					}
					present = true
					idx := li*nb*2 + bi*2 + d
					if errs[idx] != nil {
						ok = false
						break
					}
					sum += cycles[idx]
				}
				if !present || !ok {
					continue
				}
				t := base
				if d == 1 {
					t = dup
				}
				t.Set(net, b, serving.CyclesToNanos(sum, clockMHz))
			}
		}
	}
	return base, dup, sweepError("latency", errs, func(i int) string {
		li, rest := i/(nb*2), i%(nb*2)
		mode := "base"
		if rest%2 == 1 {
			mode = "duplo"
		}
		return fmt.Sprintf("%s@b%d/%s", layers[li].FullName(), batches[rest/2], mode)
	})
}
