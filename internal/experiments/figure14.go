package experiments

import (
	"fmt"

	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// networkCycles estimates full-network execution time (in baseline cycles,
// scaled from the simulated CTA prefix to the whole grid) for one pass.
// The per-GEMM simulations fan out on the worker pool; the total is summed
// in kernel order so the float result is bit-identical at any Workers.
// predErr reports the worst predicted error among contributing GEMMs
// (predErrOf convention: -1 when every GEMM is ground truth).
func (r *Runner) networkCycles(layers []workload.Layer, training, duploOn bool) (total, predErr float64, err error) {
	cfg := r.opts.config()
	cfg.Duplo = duploOn
	cfg.DetectCfg.LHB = DefaultLHB
	var gemms []workload.TrainingGemm
	for _, l := range layers {
		if training {
			gemms = append(gemms, workload.TrainingGemms(l)...)
		} else {
			p := l.GemmParams()
			gemms = append(gemms, workload.TrainingGemm{Name: l.FullName() + "/fwd", Conv: &p})
		}
	}
	cycles := make([]float64, len(gemms))
	preds := make([]float64, len(gemms))
	err = r.fanOut(len(gemms), func(i int) error {
		g := gemms[i]
		var k *sim.Kernel
		var err error
		if g.Conv != nil {
			k, err = sim.NewConvKernel(g.Name, *g.Conv)
		} else {
			k, err = sim.NewGemmKernel(g.Name, g.M, g.N, g.K)
		}
		if err != nil {
			return err
		}
		res, err := r.Run(k, cfg)
		if err != nil {
			return err
		}
		// Scale the simulated CTA prefix to the full grid.
		scale := float64(res.TotalCTAs) / float64(res.SimulatedCTAs)
		cycles[i] = float64(res.Cycles) * scale
		preds[i] = predErrOf(res)
		r.progress("fig14 %s done (duplo=%v)", g.Name, duploOn)
		return nil
	})
	if err != nil {
		return 0, -1, err
	}
	predErr = -1
	for i, c := range cycles {
		total += c
		if preds[i] > predErr {
			predErr = preds[i]
		}
	}
	return total, predErr, nil
}

// Fig14 reproduces Figure 14: network-level execution time of baseline (B)
// and Duplo (D) for inference and training, normalized to the baseline.
// Training improves less than inference because the weight-gradient GEMM
// has no lowered workspace for Duplo to deduplicate. A failed
// (network, pass) cell renders "ERR" and poisons only its own Mean row.
func (r *Runner) Fig14() (*report.Table, error) {
	t := report.NewTable("Figure 14: Network-level normalized execution time (lower is better)",
		"Network", "Pass", "Baseline", "Duplo", "Reduction")
	var inferImps, trainImps []float64
	var errs []error
	var labels []string
	var preds []float64
	inferFailed, trainFailed := false, false
	inferPred, trainPred := false, false
	for _, name := range workload.NetworkNames() {
		layers := workload.Networks()[name]
		for _, training := range []bool{false, true} {
			pass := "Infer."
			if training {
				pass = "Train."
			}
			labels = append(labels, name+"/"+pass)
			base, basePE, err := r.networkCycles(layers, training, false)
			if err == nil {
				var dup, dupPE float64
				dup, dupPE, err = r.networkCycles(layers, training, true)
				if err == nil {
					pe := basePE
					if dupPE > pe {
						pe = dupPE
					}
					preds = append(preds, pe)
					if pe >= 0 {
						if training {
							trainPred = true
						} else {
							inferPred = true
						}
					}
					red := 1 - dup/base
					if training {
						trainImps = append(trainImps, red)
					} else {
						inferImps = append(inferImps, red)
					}
					t.AddRowCells([]string{name, pass, "1.00",
						markPred(fmt.Sprintf("%.2f", dup/base), pe), markPred(report.Pct(red), pe)})
				}
			}
			errs = append(errs, err)
			if err != nil {
				if training {
					trainFailed = true
				} else {
					inferFailed = true
				}
				t.AddRowCells([]string{name, pass, "1.00", errCell, errCell})
			}
		}
	}
	meanCell := func(failed, pred bool, v []float64) string {
		if failed {
			return errCell
		}
		if pred {
			return report.Pct(mean(v)) + predictedMark
		}
		return report.Pct(mean(v))
	}
	t.AddRowCells([]string{"Mean", "Infer.", "1.00", "", meanCell(inferFailed, inferPred, inferImps)})
	t.AddRowCells([]string{"Mean", "Train.", "1.00", "", meanCell(trainFailed, trainPred, trainImps)})
	predNote(t, preds)
	return t, sweepError("fig14", errs, func(i int) string { return labels[i] })
}
