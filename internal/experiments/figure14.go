package experiments

import (
	"fmt"

	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

// networkCycles estimates full-network execution time (in baseline cycles,
// scaled from the simulated CTA prefix to the whole grid) for one pass.
func (r *Runner) networkCycles(layers []workload.Layer, training, duploOn bool) (float64, error) {
	total := 0.0
	cfg := r.opts.config()
	cfg.Duplo = duploOn
	cfg.DetectCfg.LHB = DefaultLHB
	for _, l := range layers {
		var gemms []workload.TrainingGemm
		if training {
			gemms = workload.TrainingGemms(l)
		} else {
			p := l.GemmParams()
			gemms = []workload.TrainingGemm{{Name: l.FullName() + "/fwd", Conv: &p}}
		}
		for _, g := range gemms {
			var k *sim.Kernel
			var err error
			if g.Conv != nil {
				k, err = sim.NewConvKernel(g.Name, *g.Conv)
			} else {
				k, err = sim.NewGemmKernel(g.Name, g.M, g.N, g.K)
			}
			if err != nil {
				return 0, err
			}
			res, err := r.Run(k, cfg)
			if err != nil {
				return 0, err
			}
			// Scale the simulated CTA prefix to the full grid.
			scale := float64(res.TotalCTAs) / float64(res.SimulatedCTAs)
			total += float64(res.Cycles) * scale
			r.opts.progress("fig14 %s done (duplo=%v)", g.Name, duploOn)
		}
	}
	return total, nil
}

// Fig14 reproduces Figure 14: network-level execution time of baseline (B)
// and Duplo (D) for inference and training, normalized to the baseline.
// Training improves less than inference because the weight-gradient GEMM
// has no lowered workspace for Duplo to deduplicate.
func (r *Runner) Fig14() (*report.Table, error) {
	t := report.NewTable("Figure 14: Network-level normalized execution time (lower is better)",
		"Network", "Pass", "Baseline", "Duplo", "Reduction")
	var inferImps, trainImps []float64
	for _, name := range workload.NetworkNames() {
		layers := workload.Networks()[name]
		for _, training := range []bool{false, true} {
			base, err := r.networkCycles(layers, training, false)
			if err != nil {
				return nil, err
			}
			dup, err := r.networkCycles(layers, training, true)
			if err != nil {
				return nil, err
			}
			red := 1 - dup/base
			pass := "Infer."
			if training {
				pass = "Train."
				trainImps = append(trainImps, red)
			} else {
				inferImps = append(inferImps, red)
			}
			t.AddRowCells([]string{name, pass, "1.00", fmt.Sprintf("%.2f", dup/base), report.Pct(red)})
		}
	}
	t.AddRowCells([]string{"Mean", "Infer.", "1.00", "", report.Pct(mean(inferImps))})
	t.AddRowCells([]string{"Mean", "Train.", "1.00", "", report.Pct(mean(trainImps))})
	return t, nil
}
