package duplo

import (
	"fmt"
	"math/bits"
)

// PhysReg identifies a physical warp-register group holding one loaded
// 16x16 tile (renaming is warp-granular, §IV-B).
type PhysReg uint32

// InvalidReg is returned on LHB misses.
const InvalidReg PhysReg = ^PhysReg(0)

// LHBConfig sizes the load history buffer.
type LHBConfig struct {
	// Entries is the total entry count (power of two). Ignored when Oracle.
	Entries int
	// Ways is the set associativity; 1 = direct-mapped (the paper's default
	// and recommendation, §V-E).
	Ways int
	// Oracle removes capacity and conflict misses (the "oracle" series of
	// Fig. 9/10). Retire-based eviction still applies unless NeverEvict.
	Oracle bool
	// NeverEvict disables retire-based eviction (ablation: approaches the
	// theoretical 88.9% hit-rate limit of §V-C, but is unimplementable in
	// hardware because register liveness would be unbounded).
	NeverEvict bool
	// ModuloIndex selects plain low-bit indexing instead of the default
	// XOR-fold hash (§IV-B says the low element-ID bits are "hashed"; the
	// Table II example implies plain modulo). Modulo is pathological for
	// layers whose C*Stride is a power of two — kept as an ablation.
	ModuloIndex bool
}

// DefaultLHBConfig is the paper's chosen design point: 1024-entry,
// direct-mapped (§V-B).
func DefaultLHBConfig() LHBConfig { return LHBConfig{Entries: 1024, Ways: 1} }

// Validate reports configuration errors.
func (c LHBConfig) Validate() error {
	if c.Oracle {
		return nil
	}
	switch {
	case c.Entries <= 0 || c.Entries&(c.Entries-1) != 0:
		return fmt.Errorf("duplo: LHB entries %d not a positive power of two", c.Entries)
	case c.Ways <= 0 || c.Entries%c.Ways != 0:
		return fmt.Errorf("duplo: LHB ways %d does not divide entries %d", c.Ways, c.Entries)
	case (c.Entries/c.Ways)&(c.Entries/c.Ways-1) != 0:
		return fmt.Errorf("duplo: LHB set count %d not a power of two", c.Entries/c.Ways)
	}
	return nil
}

// LHBStats counts LHB events.
type LHBStats struct {
	Lookups      uint64 // tensor-core-loads that consulted the LHB
	Hits         uint64
	Misses       uint64
	Allocs       uint64
	Replacements uint64 // allocations that evicted a live entry (conflict)
	Releases     uint64 // retire-based evictions
	StoreEvicts  uint64
	Relays       uint64 // hits that extended an entry's lifetime
}

// HitRate returns Hits / Lookups.
func (s LHBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// noEntry terminates the intrusive per-instruction user chains.
const noEntry = int32(-1)

type lhbEntry struct {
	valid bool
	tag   uint64 // elementID upper bits ++ batchID ++ PID (§IV-B)
	reg   PhysReg
	meta  int64 // simulator metadata (data-ready cycle of reg)
	// lastUser is the sequence number of the most recent tensor-core-load
	// served by this entry (the allocator or a relaying hit). The entry is
	// released when that instruction retires (§IV-B / §V-C).
	lastUser uint64
	lru      uint64 // generation counter for set-associative replacement
	// nextUser links the entries owned by the same lastUser into an
	// intrusive singly-linked chain (head in LHB.userHead). Chains replace
	// the per-sequence []int slices the release index used to allocate on
	// every tracked access — the release relation is exactly the inverse of
	// lastUser, so it lives inside the slab for free. Chains are short (at
	// most the rows of one macro-op), so unlink's linear walk is cheap.
	nextUser int32
}

// LHB is the load history buffer (Fig. 8): a small SRAM indexed by the low
// bits of the element ID, tagged with the remaining ID bits, holding the
// physical register that contains each recently loaded unique datum.
//
// Storage is a single entry slab in both modes. The set-associative mode
// (hardware design point) uses a fixed sets*ways slab; oracle mode grows the
// slab on demand and recycles slots through a free list, with a key->slot
// map standing in for the tag match. Retire-based release walks the
// intrusive lastUser chain — no per-access heap allocation on any path.
type LHB struct {
	cfg      LHBConfig
	sets     int
	idxMask  uint32
	idxBits  uint
	pid      uint32
	entries  []lhbEntry       // set-assoc: sets*ways fixed; oracle: grown slab
	oracle   map[uint64]int32 // oracle mode: key -> slab slot
	oFree    []int32          // oracle mode: recycled slab slots
	userHead map[uint64]int32 // instrSeq -> head of its user chain
	clock    uint64
	Stats    LHBStats
}

// NewLHB builds a buffer for the given configuration; PID is the process ID
// mixed into tags (§IV-B).
func NewLHB(cfg LHBConfig, pid uint32) (*LHB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &LHB{cfg: cfg, pid: pid, userHead: make(map[uint64]int32)}
	if cfg.Oracle {
		l.oracle = make(map[uint64]int32)
		return l, nil
	}
	l.sets = cfg.Entries / cfg.Ways
	l.idxBits = uint(bits.TrailingZeros(uint(l.sets)))
	l.idxMask = uint32(l.sets - 1)
	l.entries = make([]lhbEntry, cfg.Entries)
	return l, nil
}

// Reset returns the buffer to its just-built state — counters zeroed, every
// entry invalid, the user chains and oracle storage empty — reusing all
// backing storage. The arena/pool reuse protocol (sim.Arena) depends on a
// reset buffer behaving byte-identically to a fresh NewLHB.
func (l *LHB) Reset() {
	l.Stats = LHBStats{}
	l.clock = 0
	clear(l.userHead)
	if l.cfg.Oracle {
		l.entries = l.entries[:0]
		l.oFree = l.oFree[:0]
		clear(l.oracle)
		return
	}
	for i := range l.entries {
		l.entries[i] = lhbEntry{}
	}
}

// key packs the full identity (element ID, batch ID, PID) for oracle mode
// and tag comparison.
func (l *LHB) key(id ID) uint64 {
	return uint64(id.Elem) | uint64(id.Batch)<<32 | uint64(l.pid)<<42
}

// index hashes the element ID into a set index (§IV-B: the low element-ID
// bits are "hashed for indexing" the buffer). A plain modulo would be
// pathological here: element IDs of spatially adjacent workspace rows differ
// by C*Stride — a power of two for most layers — so untouched low bits
// would collapse a tile's 16 rows onto a couple of sets. XOR-folding the
// full ID spreads them; this is two levels of 10-bit XOR in hardware.
func (l *LHB) index(id ID) int {
	e := id.Elem
	if l.cfg.ModuloIndex {
		return int(e & l.idxMask)
	}
	h := e ^ e>>l.idxBits ^ e>>(2*l.idxBits)
	return int(h & l.idxMask)
}

// tag stores the full identity (element ID, batch ID, PID). With hashed
// indexing the index bits are not removable from the tag; the hardware cost
// is idxBits extra tag bits versus the paper's 22+10 split, accounted in
// the area model.
func (l *LHB) tag(id ID) uint64 {
	return uint64(id.Elem) | uint64(id.Batch)<<32 | uint64(l.pid)<<42
}

// pushUser prepends slab slot i to instrSeq's user chain.
func (l *LHB) pushUser(instrSeq uint64, i int32) {
	if head, ok := l.userHead[instrSeq]; ok {
		l.entries[i].nextUser = head
	} else {
		l.entries[i].nextUser = noEntry
	}
	l.userHead[instrSeq] = i
}

// unlinkUser removes slab slot i from its lastUser chain. Chains hold the
// few rows of one instruction, so the predecessor walk is short.
func (l *LHB) unlinkUser(i int32) {
	e := &l.entries[i]
	head := l.userHead[e.lastUser]
	if head == i {
		if e.nextUser == noEntry {
			delete(l.userHead, e.lastUser)
		} else {
			l.userHead[e.lastUser] = e.nextUser
		}
		return
	}
	p := head
	for l.entries[p].nextUser != i {
		p = l.entries[p].nextUser
	}
	l.entries[p].nextUser = e.nextUser
}

// moveUser re-homes slab slot i from its previous lastUser chain to
// instrSeq (the relay of §IV-B).
func (l *LHB) moveUser(i int32, instrSeq uint64) {
	e := &l.entries[i]
	if e.lastUser == instrSeq {
		return
	}
	l.unlinkUser(i)
	e.lastUser = instrSeq
	l.pushUser(instrSeq, i)
}

// Lookup consults the buffer for id on behalf of the tensor-core-load with
// sequence number instrSeq. On a hit it returns the physical register
// already holding the datum and extends the entry's lifetime to instrSeq
// (the relay of §IV-B). On a miss it returns (InvalidReg, false).
func (l *LHB) Lookup(id ID, instrSeq uint64) (PhysReg, int64, bool) {
	l.Stats.Lookups++
	l.clock++
	if l.cfg.Oracle {
		i, ok := l.oracle[l.key(id)]
		if !ok {
			l.Stats.Misses++
			return InvalidReg, 0, false
		}
		l.Stats.Hits++
		l.Stats.Relays++
		l.moveUser(i, instrSeq)
		e := &l.entries[i]
		return e.reg, e.meta, true
	}
	set := l.index(id)
	t := l.tag(id)
	for w := 0; w < l.cfg.Ways; w++ {
		i := int32(set*l.cfg.Ways + w)
		e := &l.entries[i]
		if e.valid && e.tag == t {
			l.Stats.Hits++
			l.Stats.Relays++
			l.moveUser(i, instrSeq)
			e.lru = l.clock
			return e.reg, e.meta, true
		}
	}
	l.Stats.Misses++
	return InvalidReg, 0, false
}

// Insert allocates an entry mapping id to reg, owned by instrSeq, carrying
// meta (the simulator stores the register's data-ready cycle there, the
// scoreboard information a renamed consumer waits on). On a set conflict the
// LRU way is replaced (§IV-C entry replacement).
func (l *LHB) Insert(id ID, reg PhysReg, instrSeq uint64, meta int64) {
	l.Stats.Allocs++
	l.clock++
	if l.cfg.Oracle {
		k := l.key(id)
		var i int32
		if old, ok := l.oracle[k]; ok {
			l.unlinkUser(old)
			i = old
		} else if n := len(l.oFree); n > 0 {
			i = l.oFree[n-1]
			l.oFree = l.oFree[:n-1]
		} else {
			l.entries = append(l.entries, lhbEntry{})
			i = int32(len(l.entries) - 1)
		}
		l.entries[i] = lhbEntry{valid: true, tag: k, reg: reg, meta: meta, lastUser: instrSeq}
		l.oracle[k] = i
		l.pushUser(instrSeq, i)
		return
	}
	set := l.index(id)
	t := l.tag(id)
	victim := int32(-1)
	var oldest uint64 = ^uint64(0)
	for w := 0; w < l.cfg.Ways; w++ {
		i := int32(set*l.cfg.Ways + w)
		e := &l.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < oldest {
			oldest = e.lru
			victim = i
		}
	}
	e := &l.entries[victim]
	if e.valid {
		l.Stats.Replacements++
		l.unlinkUser(victim)
	}
	*e = lhbEntry{valid: true, tag: t, reg: reg, meta: meta, lastUser: instrSeq, lru: l.clock}
	l.pushUser(instrSeq, victim)
}

// Retire signals that the tensor-core-load with sequence number instrSeq has
// retired. Entries whose lastUser is that instruction are released, because
// the destination register may now be overwritten (§IV-B). NeverEvict
// configurations skip the release (ablation only).
func (l *LHB) Retire(instrSeq uint64) {
	if l.cfg.NeverEvict {
		return
	}
	head, ok := l.userHead[instrSeq]
	if !ok {
		return
	}
	// Every chain member has lastUser == instrSeq by the unlink discipline
	// (Insert/Lookup/StoreInvalidate re-home or unlink entries eagerly).
	for i := head; i != noEntry; {
		e := &l.entries[i]
		next := e.nextUser
		e.valid = false
		if l.cfg.Oracle {
			delete(l.oracle, e.tag)
			l.oFree = append(l.oFree, i)
		}
		l.Stats.Releases++
		i = next
	}
	delete(l.userHead, instrSeq)
}

// StoreInvalidate releases the entry matching id, if any — the consistency
// hook for stores into the workspace (§IV-B; "such a case was never
// observed in our experiments", and the simulator asserts the same).
func (l *LHB) StoreInvalidate(id ID) {
	if l.cfg.Oracle {
		k := l.key(id)
		if i, ok := l.oracle[k]; ok {
			l.unlinkUser(i)
			delete(l.oracle, k)
			l.entries[i].valid = false
			l.oFree = append(l.oFree, i)
			l.Stats.StoreEvicts++
		}
		return
	}
	set := l.index(id)
	t := l.tag(id)
	for w := 0; w < l.cfg.Ways; w++ {
		i := int32(set*l.cfg.Ways + w)
		e := &l.entries[i]
		if e.valid && e.tag == t {
			l.unlinkUser(i)
			e.valid = false
			l.Stats.StoreEvicts++
		}
	}
}

// Live returns the number of valid entries (oracle: map size).
func (l *LHB) Live() int {
	if l.cfg.Oracle {
		return len(l.oracle)
	}
	n := 0
	for i := range l.entries {
		if l.entries[i].valid {
			n++
		}
	}
	return n
}

// Config returns the buffer's configuration.
func (l *LHB) Config() LHBConfig { return l.cfg }

// SetMeta updates the metadata of the live entry mapping id, if present.
func (l *LHB) SetMeta(id ID, meta int64) {
	if l.cfg.Oracle {
		if i, ok := l.oracle[l.key(id)]; ok {
			l.entries[i].meta = meta
		}
		return
	}
	set := l.index(id)
	t := l.tag(id)
	for w := 0; w < l.cfg.Ways; w++ {
		e := &l.entries[set*l.cfg.Ways+w]
		if e.valid && e.tag == t {
			e.meta = meta
		}
	}
}
