package duplo

import "fmt"

// RenameTable implements warp-granular register renaming, adopted from the
// WIR scheme of Kim et al. [15] (§IV-B, Fig. 7). Each (warp, architectural
// destination register) of a tensor-core-load maps to a physical register
// group; when the LHB reports a duplicate, the destination is simply pointed
// at the physical register that already holds the tile, and no memory
// request is issued.
//
// The simulator tracks tile-granular groups ("one wmma.load destination" =
// eight 32-bit registers per thread, §IV-C) as single PhysReg handles.
type RenameTable struct {
	warps    int
	archRegs int
	table    []PhysReg // warps x archRegs
	next     PhysReg
	// refs counts how many (warp, arch) slots point at each physical
	// register group, to measure sharing (register-file savings).
	refs map[PhysReg]int

	Renames uint64 // duplicate-induced renames (LHB hits)
	Allocs  uint64 // fresh allocations (LHB misses / non-workspace loads)
}

// NewRenameTable creates a table for the given warp count and architectural
// register-group count per warp.
func NewRenameTable(warps, archRegs int) *RenameTable {
	if warps <= 0 || archRegs <= 0 {
		panic(fmt.Sprintf("duplo: invalid rename table %dx%d", warps, archRegs))
	}
	t := &RenameTable{
		warps:    warps,
		archRegs: archRegs,
		table:    make([]PhysReg, warps*archRegs),
		refs:     make(map[PhysReg]int),
	}
	for i := range t.table {
		t.table[i] = InvalidReg
	}
	return t
}

func (t *RenameTable) slot(warp, arch int) int {
	if warp < 0 || warp >= t.warps || arch < 0 || arch >= t.archRegs {
		panic(fmt.Sprintf("duplo: rename slot (%d,%d) out of range", warp, arch))
	}
	return warp*t.archRegs + arch
}

// Alloc assigns a fresh physical register group to (warp, arch) — the miss
// path, where the load actually fetches data.
func (t *RenameTable) Alloc(warp, arch int) PhysReg {
	s := t.slot(warp, arch)
	t.release(t.table[s])
	r := t.next
	t.next++
	t.table[s] = r
	t.refs[r] = 1
	t.Allocs++
	return r
}

// RenameTo points (warp, arch) at an existing physical register group — the
// hit path ("Duplo simply renames registers and makes them point to the ones
// containing the same values", §I).
func (t *RenameTable) RenameTo(warp, arch int, r PhysReg) {
	if r == InvalidReg {
		panic("duplo: rename to invalid register")
	}
	s := t.slot(warp, arch)
	t.release(t.table[s])
	t.table[s] = r
	t.refs[r]++
	t.Renames++
}

// Lookup returns the current physical mapping of (warp, arch), or
// InvalidReg if never written.
func (t *RenameTable) Lookup(warp, arch int) PhysReg { return t.table[t.slot(warp, arch)] }

// SharedWith returns how many rename slots currently reference r.
func (t *RenameTable) SharedWith(r PhysReg) int { return t.refs[r] }

// LivePhysRegs returns the number of distinct physical register groups
// currently referenced — the register-file occupancy a duplicate-sharing
// scheme saves compared to Allocs.
func (t *RenameTable) LivePhysRegs() int { return len(t.refs) }

// Reset returns the table to its just-built state, reusing the backing
// array and the refs map (sim.Arena reuse protocol).
func (t *RenameTable) Reset() {
	for i := range t.table {
		t.table[i] = InvalidReg
	}
	clear(t.refs)
	t.next = 0
	t.Renames = 0
	t.Allocs = 0
}

func (t *RenameTable) release(r PhysReg) {
	if r == InvalidReg {
		return
	}
	t.refs[r]--
	if t.refs[r] <= 0 {
		delete(t.refs, r)
	}
}
