package duplo

import (
	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// ID is the (batch ID, element ID) pair that uniquely identifies the input
// datum a workspace entry was copied from (§III-B/C). Two workspace entries
// hold the same value exactly when their IDs are equal.
type ID struct {
	Batch uint32
	Elem  uint32
}

// Status classifies an address presented to the ID generator.
type Status uint8

const (
	// StatusOutside: the address is not in the workspace region; the load
	// bypasses the LHB and goes straight to L1 (§IV-A).
	StatusOutside Status = iota
	// StatusPadCol: the address is in the workspace but in a K-padding
	// column (zero fill for tile alignment); no duplication tracking.
	StatusPadCol
	// StatusOK: a genuine workspace element with a valid ID pair.
	StatusOK
)

// IDGen is the detection unit's ID generator (Fig. 8). It is programmed at
// kernel launch from the compiler-generated ConvInfo and translates
// tensor-core-load addresses into ID pairs using only shift/mask and
// multiply-by-reciprocal operations (§IV-A).
//
// Generalization note (documented in DESIGN.md): the paper's §III formulas
// use the raw input width in the patch offset; with zero padding that would
// alias halo entries onto real data. We use the padded width (W + 2*Pad) as
// the offset pitch, which keeps the map injective; for the paper's pad-0
// examples this reduces to the printed formulas exactly.
type IDGen struct {
	info ConvInfo

	base     uint64
	bytes    uint64
	elemSize uint32
	k        uint32 // logical columns FH*FW*C

	divKPad  divider // address -> (row, col)
	divOutHW divider // row -> (batch, row-in-image)
	divOutW  divider // row-in-image -> (oy, ox)
	divFWC   divider // col -> (fy, fx*C+ch)

	stride uint32
	wpc    uint32 // (W+2*Pad)*C, the element-ID row pitch
	cs     uint32 // C*Stride, multiplier for ox
}

// NewIDGen programs an ID generator from the convolution information.
func NewIDGen(ci ConvInfo) *IDGen {
	k := uint32(ci.FilterH) * uint32(ci.FilterW) * uint32(ci.Channels)
	outHW := uint32(ci.OutH) * uint32(ci.OutW)
	rows := uint64(ci.Batch) * uint64(outHW)
	g := &IDGen{
		info:     ci,
		base:     ci.Base,
		bytes:    rows * uint64(ci.KPad) * uint64(ci.ElemSize),
		elemSize: uint32(ci.ElemSize),
		k:        k,
		divKPad:  newDivider(ci.KPad),
		divOutHW: newDivider(outHW),
		divOutW:  newDivider(uint32(ci.OutW)),
		divFWC:   newDivider(uint32(ci.FilterW) * uint32(ci.Channels)),
		stride:   uint32(ci.Stride),
		wpc:      (uint32(ci.InW) + 2*uint32(ci.Pad)) * uint32(ci.Channels),
		cs:       uint32(ci.Channels) * uint32(ci.Stride),
	}
	return g
}

// InWorkspace reports whether addr falls in the workspace region — the
// validity check performed before any ID math (§IV-A: "since data
// duplication appears only in a workspace").
func (g *IDGen) InWorkspace(addr uint64) bool {
	return addr >= g.base && addr < g.base+g.bytes
}

// IDs translates a workspace address into its ID pair.
func (g *IDGen) IDs(addr uint64) (ID, Status) {
	if !g.InWorkspace(addr) {
		return ID{}, StatusOutside
	}
	e := uint32((addr - g.base) / uint64(g.elemSize))
	row, col := g.divKPad.DivMod(e)
	if col >= g.k {
		return ID{}, StatusPadCol
	}
	return g.FromCoords(row, col), StatusOK
}

// FromCoords computes the ID pair of workspace entry (row, col) in logical
// coordinates. Exposed for the trace generator, which knows tile coordinates
// directly.
func (g *IDGen) FromCoords(row, col uint32) ID {
	batch, rowIm := g.divOutHW.DivMod(row)
	oy, ox := g.divOutW.DivMod(rowIm)
	fy, fxc := g.divFWC.DivMod(col) // fxc = fx*C + ch
	// element_id = ox*C*S + (fx*C + ch) + (oy*S + fy) * Wp*C   (§III-C)
	elem := ox*g.cs + fxc + (oy*g.stride+fy)*g.wpc
	return ID{Batch: batch, Elem: elem}
}

// HardwareFriendly reports whether every divider in the generator
// decomposes into a shift (power-of-two factor) plus a small-odd-divisor
// reciprocal (odd part < 256) — the constraint under which the paper's
// two-cycle logic estimate holds (§IV-A: power-of-two data dimensions plus
// Jones-style small-divisor logic for filter sizes like 3 and 5). Every
// Table I layer satisfies it after K-padding.
func (g *IDGen) HardwareFriendly() bool {
	for _, d := range []divider{g.divKPad, g.divOutHW, g.divOutW, g.divFWC} {
		odd := d.d
		for odd&1 == 0 {
			odd >>= 1
		}
		if odd >= 256 {
			return false
		}
	}
	return true
}

// UniqueIDLimit returns the number of distinct element IDs per image, i.e.
// the padded-input element count. The ratio of workspace entries to this is
// the duplication the LHB can theoretically exploit.
func (g *IDGen) UniqueIDLimit() uint64 {
	hp := uint64(g.info.InH) + 2*uint64(g.info.Pad)
	return hp * uint64(g.wpc)
}

// PaperIDs computes the ID pair for workspace entry (row, col) using the
// §III-B/C formulas verbatim (patch IDs and offsets), with the padded-width
// substitution noted above. It must agree with FromCoords everywhere; the
// property test in idgen_test.go checks that, and the Fig. 6 test pins the
// printed example values.
func PaperIDs(p conv.Params, row, col int) ID {
	outHW := p.OutH() * p.OutW()
	batch := row / outHW // batch_id = worksp_row_idx / (output_w * output_h)
	rowIm := row % outHW

	// patch_row_idx = worksp_row_idx / output_height (square outputs)
	patchRow := rowIm / p.OutH()
	// patch_col_idx = worksp_col_idx / filter_width (per-channel groups)
	patchCol := col / (p.FW * p.C)
	// patch_id = patch_row_idx * stride_dist + patch_col_idx
	patchID := patchRow*p.Stride + patchCol
	// offset = patch_id * input_width * num_channels (padded width, see doc)
	offset := patchID * (p.W + 2*p.Pad) * p.C
	// element_id = row % output_width * C * stride
	//            + col % (filter_width * C) + offset
	elem := (rowIm%p.OutW())*p.C*p.Stride + col%(p.FW*p.C) + offset
	return ID{Batch: uint32(batch), Elem: uint32(elem)}
}

// SemanticIDs computes the ID pair from first principles: decode (row, col)
// to the source input coordinates and use the padded-image linear index.
// This is the ground-truth definition the hardware formulas must reproduce.
func SemanticIDs(p conv.Params, row, col int) ID {
	img, oy, ox := lowering.RowToOutput(p, row)
	fy, fx, ch := lowering.ColToTap(p, col)
	iy := oy*p.Stride + fy // padded coordinates
	ix := ox*p.Stride + fx
	wp := p.W + 2*p.Pad
	elem := (iy*wp+ix)*p.C + ch
	return ID{Batch: uint32(img), Elem: uint32(elem)}
}
