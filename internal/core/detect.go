package duplo

import (
	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// AccessKind classifies the outcome of a detection-unit access.
type AccessKind uint8

const (
	// AccessBypass: the address is outside the workspace (or a padding
	// column); the load proceeds to L1 untouched (§IV-A).
	AccessBypass AccessKind = iota
	// AccessHit: a duplicate is present in the register file; the load is
	// eliminated and replaced by a rename.
	AccessHit
	// AccessMiss: a workspace load with no live duplicate; it goes to L1
	// and allocates an LHB entry.
	AccessMiss
)

// AccessResult is what the LDST unit learns from one detection-unit lookup.
type AccessResult struct {
	Kind AccessKind
	// Reg is the physical register group now mapped to the instruction's
	// destination (existing on hits, fresh on misses, InvalidReg on bypass).
	Reg PhysReg
	// ID is the generated pair (valid when Kind != AccessBypass).
	ID ID
	// Meta is the metadata stored with the hit entry (the register's
	// data-ready cycle in the simulator); zero on miss/bypass.
	Meta int64
}

// DetectionUnitConfig collects the microarchitectural knobs of §IV-A.
type DetectionUnitConfig struct {
	LHB LHBConfig
	// LatencyCycles is the ID-generator + LHB access latency, overlapped
	// with the L1 lookup (paper default 2; 3 costs ~0.9%, §IV-A).
	LatencyCycles int
	// PID is the process ID mixed into LHB tags.
	PID uint32
}

// DefaultDetectionUnitConfig returns the paper's design point.
func DefaultDetectionUnitConfig() DetectionUnitConfig {
	return DetectionUnitConfig{LHB: DefaultLHBConfig(), LatencyCycles: 2}
}

// DetectionUnit is the per-SM Duplo logic of Fig. 8: an ID generator and a
// load history buffer, programmed at kernel launch and consulted by the LDST
// unit on every tensor-core-load. It is power-gated between convolution
// kernels; Program models the wake-up.
type DetectionUnit struct {
	cfg     DetectionUnitConfig
	gen     *IDGen
	lhb     *LHB
	renames *RenameTable
	awake   bool
	seq     uint64 // global tensor-core-load sequence numbers
}

// NewDetectionUnit builds a powered-down unit; it must be Programmed with
// convolution information before use.
func NewDetectionUnit(cfg DetectionUnitConfig, warps, archRegs int) (*DetectionUnit, error) {
	lhb, err := NewLHB(cfg.LHB, cfg.PID)
	if err != nil {
		return nil, err
	}
	if cfg.LatencyCycles <= 0 {
		cfg.LatencyCycles = 2
	}
	return &DetectionUnit{
		cfg:     cfg,
		lhb:     lhb,
		renames: NewRenameTable(warps, archRegs),
	}, nil
}

// Reset power-gates the unit and clears all run-accumulated state (LHB
// contents and counters, rename mappings, the load sequence counter) while
// keeping every backing buffer, so a pooled unit re-Programmed for the next
// kernel behaves byte-identically to a fresh NewDetectionUnit.
func (d *DetectionUnit) Reset() {
	d.lhb.Reset()
	d.renames.Reset()
	d.gen = nil
	d.awake = false
	d.seq = 0
}

// Fits reports whether a pooled unit built with some earlier configuration
// can be reused (after Reset) for a run wanting cfg, warps and archRegs —
// i.e. whether its fixed-size storage has exactly the requested geometry.
func (d *DetectionUnit) Fits(cfg DetectionUnitConfig, warps, archRegs int) bool {
	if cfg.LatencyCycles <= 0 {
		cfg.LatencyCycles = 2
	}
	return d.cfg == cfg && d.renames.warps == warps && d.renames.archRegs == archRegs
}

// Program loads the compiler-generated convolution information at kernel
// launch, waking the unit (§IV-A).
func (d *DetectionUnit) Program(p conv.Params, layout lowering.Layout) error {
	ci, err := NewConvInfo(p, layout)
	if err != nil {
		return err
	}
	d.gen = NewIDGen(ci)
	d.awake = true
	return nil
}

// Awake reports whether the unit has been programmed (it is power-gated
// otherwise and every access bypasses).
func (d *DetectionUnit) Awake() bool { return d.awake }

// Latency returns the detection latency in cycles, overlapped with L1.
func (d *DetectionUnit) Latency() int { return d.cfg.LatencyCycles }

// Access processes one tensor-core-load: warp and arch identify the
// destination register group, addr is the load address, and meta is stored
// with a newly allocated entry (the simulator passes the load's data-ready
// cycle; a later hit returns it so the renamed consumer waits on the
// original load's scoreboard entry). It returns how the load resolves and
// advances the load sequence number. The returned sequence number must be
// passed to Retire when the instruction retires.
func (d *DetectionUnit) Access(warp, arch int, addr uint64, meta int64) (AccessResult, uint64) {
	seq := d.seq
	d.seq++
	if !d.awake {
		return AccessResult{Kind: AccessBypass, Reg: InvalidReg}, seq
	}
	id, st := d.gen.IDs(addr)
	if st != StatusOK {
		return AccessResult{Kind: AccessBypass, Reg: InvalidReg}, seq
	}
	if reg, m, hit := d.lhb.Lookup(id, seq); hit {
		d.renames.RenameTo(warp, arch, reg)
		return AccessResult{Kind: AccessHit, Reg: reg, ID: id, Meta: m}, seq
	}
	reg := d.renames.Alloc(warp, arch)
	d.lhb.Insert(id, reg, seq, meta)
	return AccessResult{Kind: AccessMiss, Reg: reg, ID: id}, seq
}

// SetMeta updates the metadata of the entry currently mapping id, if live.
// The simulator calls it when a miss's completion time becomes known after
// the lookup was made.
func (d *DetectionUnit) SetMeta(id ID, meta int64) { d.lhb.SetMeta(id, meta) }

// Retire releases LHB entries owned by the retiring load (§IV-B).
func (d *DetectionUnit) Retire(seq uint64) { d.lhb.Retire(seq) }

// Store models a store hitting the workspace region: matching LHB entries
// are invalidated for consistency (§IV-B).
func (d *DetectionUnit) Store(addr uint64) {
	if !d.awake {
		return
	}
	if id, st := d.gen.IDs(addr); st == StatusOK {
		d.lhb.StoreInvalidate(id)
	}
}

// LHBStats exposes the buffer counters.
func (d *DetectionUnit) LHBStats() LHBStats { return d.lhb.Stats }

// Renames exposes the rename table (for stats and tests).
func (d *DetectionUnit) Renames() *RenameTable { return d.renames }

// Gen exposes the programmed ID generator (nil before Program).
func (d *DetectionUnit) Gen() *IDGen { return d.gen }
