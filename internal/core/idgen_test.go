package duplo

import (
	"math/rand"
	"testing"

	"duplo/internal/conv"
	"duplo/internal/lowering"
)

var fig6Params = conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}

// Fig. 6 prints the complete element-ID grid for the 4x4/3x3 example. The ID
// generator must reproduce it exactly.
func TestElementIDsMatchFig6(t *testing.T) {
	want := [4][9]uint32{
		{0, 1, 2, 4, 5, 6, 8, 9, 10},
		{1, 2, 3, 5, 6, 7, 9, 10, 11},
		{4, 5, 6, 8, 9, 10, 12, 13, 14},
		{5, 6, 7, 9, 10, 11, 13, 14, 15},
	}
	for row := 0; row < 4; row++ {
		for col := 0; col < 9; col++ {
			if got := PaperIDs(fig6Params, row, col); got.Elem != want[row][col] || got.Batch != 0 {
				t.Errorf("PaperIDs(%d,%d) = %+v, want elem %d", row, col, got, want[row][col])
			}
			if got := SemanticIDs(fig6Params, row, col); got.Elem != want[row][col] {
				t.Errorf("SemanticIDs(%d,%d) = %+v, want elem %d", row, col, got, want[row][col])
			}
		}
	}
}

// Fig. 6 also prints the patch-ID grid; spot-check it through the paper
// formula components embedded in PaperIDs via known offsets: patch IDs are
// elem/4 for the first column group entries with fx=ch=0 and ox=0... instead
// we verify the printed property directly: patches on the same diagonal get
// identical IDs, i.e. (row 0, cols 3..5) and (row 2, cols 0..2) have equal
// element IDs element-wise ([1,0,-2] in the worked example).
func TestInterPatchDuplication(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := PaperIDs(fig6Params, 0, 3+i)
		b := PaperIDs(fig6Params, 2, 0+i)
		if a != b {
			t.Errorf("inter-patch duplicate (0,%d) vs (2,%d): %+v vs %+v", 3+i, i, a, b)
		}
	}
}

// Intra-patch duplication: the horizontal filter slide makes [1,4] of the
// example appear twice: (row 0, col 1) == (row 1, col 0), etc.
func TestIntraPatchDuplication(t *testing.T) {
	pairs := [][4]int{{0, 1, 1, 0}, {0, 2, 1, 1}, {0, 4, 1, 3}, {2, 1, 3, 0}}
	for _, q := range pairs {
		a := PaperIDs(fig6Params, q[0], q[1])
		b := PaperIDs(fig6Params, q[2], q[3])
		if a != b {
			t.Errorf("intra-patch duplicate (%d,%d) vs (%d,%d): %+v vs %+v", q[0], q[1], q[2], q[3], a, b)
		}
	}
}

// The total number of unique IDs must equal the original input size
// (§III-B: "the count matches the number of elements in the original 4x4
// input").
func TestUniqueIDCountFig6(t *testing.T) {
	seen := map[ID]bool{}
	for row := 0; row < 4; row++ {
		for col := 0; col < 9; col++ {
			seen[PaperIDs(fig6Params, row, col)] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("unique IDs = %d, want 16", len(seen))
	}
}

var idTestLayers = []conv.Params{
	fig6Params,
	{N: 2, H: 8, W: 8, C: 4, K: 8, FH: 3, FW: 3, Pad: 1, Stride: 1},
	{N: 2, H: 8, W: 8, C: 4, K: 8, FH: 3, FW: 3, Pad: 0, Stride: 2},
	{N: 1, H: 16, W: 16, C: 8, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 2},
	{N: 3, H: 12, W: 12, C: 2, K: 4, FH: 7, FW: 7, Pad: 3, Stride: 2},
	{N: 1, H: 8, W: 8, C: 16, K: 16, FH: 1, FW: 1, Pad: 0, Stride: 1},
}

// Soundness (the property the whole mechanism rests on): two workspace
// entries get equal IDs if and only if they were copied from the same padded
// input element. Checked exhaustively on a family of layers including
// padding, stride, channels and batch.
func TestIDSoundnessAndCompleteness(t *testing.T) {
	for _, p := range idTestLayers {
		type src struct{ img, iy, ix, ch int }
		bySrc := map[src]ID{}
		byID := map[ID]src{}
		for row := 0; row < p.GemmM(); row++ {
			for col := 0; col < p.GemmK(); col++ {
				id := SemanticIDs(p, row, col)
				img, oy, ox := lowering.RowToOutput(p, row)
				fy, fx, ch := lowering.ColToTap(p, col)
				s := src{img, oy*p.Stride + fy, ox*p.Stride + fx, ch} // padded coords
				if prev, ok := bySrc[s]; ok && prev != id {
					t.Fatalf("%v: same source %+v got different IDs %+v vs %+v", p, s, prev, id)
				}
				bySrc[s] = id
				if prevSrc, ok := byID[id]; ok && prevSrc != s {
					t.Fatalf("%v: ID %+v aliases sources %+v and %+v", p, id, prevSrc, s)
				}
				byID[id] = s
			}
		}
	}
}

// The paper formulas (PaperIDs) and the first-principles decode
// (SemanticIDs) must agree on every square-output layer.
func TestPaperFormulaEqualsSemantic(t *testing.T) {
	for _, p := range idTestLayers {
		if p.OutH() != p.OutW() {
			continue // paper formulas assume square outputs (§III-B)
		}
		for row := 0; row < p.GemmM(); row++ {
			for col := 0; col < p.GemmK(); col++ {
				a, b := PaperIDs(p, row, col), SemanticIDs(p, row, col)
				if a != b {
					t.Fatalf("%v: (%d,%d) paper %+v != semantic %+v", p, row, col, a, b)
				}
			}
		}
	}
}

// The hardware IDGen (address-driven, shift/magic arithmetic) must agree
// with SemanticIDs through the full address path.
func TestIDGenMatchesSemantic(t *testing.T) {
	for _, p := range idTestLayers {
		layout := lowering.NewLayout(p, 0x10000, 2)
		ci, err := NewConvInfo(p, layout)
		if err != nil {
			t.Fatal(err)
		}
		g := NewIDGen(ci)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 5000; i++ {
			row := rng.Intn(p.GemmM())
			col := rng.Intn(layout.KPad)
			addr := layout.Addr(row, col)
			id, st := g.IDs(addr)
			if col >= p.GemmK() {
				if st != StatusPadCol {
					t.Fatalf("%v: (%d,%d) pad col status %v", p, row, col, st)
				}
				continue
			}
			if st != StatusOK {
				t.Fatalf("%v: (%d,%d) status %v", p, row, col, st)
			}
			if want := SemanticIDs(p, row, col); id != want {
				t.Fatalf("%v: (%d,%d) gen %+v != semantic %+v", p, row, col, id, want)
			}
		}
		// Outside addresses.
		if _, st := g.IDs(0x10000 - 2); st != StatusOutside {
			t.Error("address below base not Outside")
		}
		if _, st := g.IDs(0x10000 + layout.Bytes()); st != StatusOutside {
			t.Error("address past end not Outside")
		}
		if !g.HardwareFriendly() {
			t.Errorf("%v: expected hardware-friendly dividers", p)
		}
	}
}

// Batch IDs differentiate images: same within-image position in different
// images must differ in Batch but share Elem (§III-C).
func TestBatchDifferentiation(t *testing.T) {
	p := conv.Params{N: 4, H: 8, W: 8, C: 2, K: 2, FH: 3, FW: 3, Pad: 1, Stride: 1}
	per := p.OutH() * p.OutW()
	for img := 1; img < 4; img++ {
		a := SemanticIDs(p, 5, 7)
		b := SemanticIDs(p, img*per+5, 7)
		if b.Batch != uint32(img) || a.Batch != 0 {
			t.Fatalf("batch IDs: %+v vs %+v", a, b)
		}
		if a.Elem != b.Elem {
			t.Fatalf("element IDs should match across images: %+v vs %+v", a, b)
		}
	}
}

// The ID generator's unique-ID limit bounds the observed unique count.
func TestUniqueIDLimit(t *testing.T) {
	p := conv.Params{N: 1, H: 6, W: 6, C: 2, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	layout := lowering.NewLayout(p, 0, 2)
	ci, _ := NewConvInfo(p, layout)
	g := NewIDGen(ci)
	seen := map[uint32]bool{}
	for row := 0; row < p.GemmM(); row++ {
		for col := 0; col < p.GemmK(); col++ {
			seen[SemanticIDs(p, row, col).Elem] = true
		}
	}
	if uint64(len(seen)) > g.UniqueIDLimit() {
		t.Fatalf("unique %d exceeds limit %d", len(seen), g.UniqueIDLimit())
	}
}

func TestConvInfoSerialize(t *testing.T) {
	p := conv.Params{N: 8, H: 56, W: 56, C: 64, K: 128, FH: 3, FW: 3, Pad: 1, Stride: 1}
	layout := lowering.NewLayout(p, 0xDEAD0000, 2)
	ci, err := NewConvInfo(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	b := ci.Serialize()
	if len(b) != 32 {
		t.Fatalf("serialized size %d != 32 (§IV-A)", len(b))
	}
	back := DeserializeConvInfo(b)
	if back != ci {
		t.Fatalf("round trip: %+v vs %+v", back, ci)
	}
}

func TestConvInfoBatchLimit(t *testing.T) {
	p := conv.Params{N: 2048, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	if _, err := NewConvInfo(p, lowering.NewLayout(p, 0, 2)); err == nil {
		t.Fatal("expected batch-limit error (10-bit batch ID)")
	}
}
