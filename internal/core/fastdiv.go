package duplo

import (
	"fmt"
	"math/bits"
)

// divider performs division by a compile-time-known constant without a
// hardware divider, the way the ID generator's logic is built (§IV-A):
// power-of-two divisors become shifts, and small odd divisors (3, 5, 7, ...)
// use the multiply-by-reciprocal ("magic number") scheme of Granlund &
// Montgomery, which the paper cites via Jones [10]. Div and Mod therefore
// never execute an integer divide, which is the point the hardware argument
// rests on.
type divider struct {
	d     uint32
	shift uint   // pow-2: log2(d); magic: post-shift amount (in (32, 64])
	magic uint64 // 0 selects the pow-2 path
}

// newDivider prepares a divider for d >= 1, valid for all 32-bit numerators.
func newDivider(d uint32) divider {
	if d == 0 {
		panic("duplo: divider by zero")
	}
	if d&(d-1) == 0 {
		return divider{d: d, shift: uint(bits.TrailingZeros32(d))}
	}
	// Round-up magic: m = ceil(2^(32+L) / d) with L = ceil(log2 d).
	// For any n < 2^32: floor(n*m / 2^(32+L)) == n/d (Granlund–Montgomery
	// round-up variant; exhaustively property-tested in fastdiv_test.go).
	l := uint(bits.Len32(d - 1)) // ceil(log2 d)
	m := (uint64(1)<<(32+l) + uint64(d) - 1) / uint64(d)
	return divider{d: d, shift: 32 + l, magic: m}
}

// Div returns n / d.
func (v divider) Div(n uint32) uint32 {
	if v.magic == 0 {
		return n >> v.shift
	}
	// (n * magic) >> shift, with shift in (32, 64]. The product fits in
	// hi:lo of a 64x64 multiply because n < 2^32 and magic < 2^34.
	hi, lo := bits.Mul64(uint64(n), v.magic)
	if v.shift >= 64 {
		return uint32(hi >> (v.shift - 64))
	}
	return uint32(hi<<(64-v.shift) | lo>>v.shift)
}

// DivMod returns (n/d, n%d).
func (v divider) DivMod(n uint32) (q, r uint32) {
	q = v.Div(n)
	return q, n - q*v.d
}

// Mod returns n % d.
func (v divider) Mod(n uint32) uint32 {
	_, r := v.DivMod(n)
	return r
}

// IsPow2 reports whether the divisor is a power of two (pure shift/mask in
// hardware).
func (v divider) IsPow2() bool { return v.magic == 0 }

func (v divider) String() string {
	if v.magic == 0 {
		return fmt.Sprintf("div%d(shift %d)", v.d, v.shift)
	}
	return fmt.Sprintf("div%d(magic %#x >> %d)", v.d, v.magic, v.shift)
}
