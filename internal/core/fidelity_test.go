package duplo

import (
	"math/rand"
	"testing"

	"duplo/internal/conv"
	"duplo/internal/lowering"
	"duplo/internal/tensor"
)

// The warp-granular renaming of §IV-B keys a whole 16-element row-vector
// load on the ID of its first element. This test validates the assumption
// behind it: when the channel count is a multiple of 16 (so a row-vector
// never straddles a filter-tap boundary), two row-vectors with equal anchor
// IDs are bit-exact duplicates in the real workspace.
func TestRowVectorFidelityAlignedChannels(t *testing.T) {
	layers := []conv.Params{
		{N: 2, H: 8, W: 8, C: 16, K: 4, FH: 3, FW: 3, Pad: 1, Stride: 1},
		{N: 1, H: 10, W: 10, C: 32, K: 4, FH: 3, FW: 3, Pad: 0, Stride: 1},
		{N: 1, H: 8, W: 8, C: 16, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 2},
	}
	for _, p := range layers {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(77, 1)
		f := tensor.New(p.K, p.FH, p.FW, p.C)
		l, err := lowering.Lower(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		// Group row-vector anchors (col aligned to 16) by anchor ID.
		type anchor struct{ row, col int }
		byID := map[ID][]anchor{}
		for row := 0; row < l.M; row++ {
			for col := 0; col+16 <= l.K; col += 16 {
				id := SemanticIDs(p, row, col)
				byID[id] = append(byID[id], anchor{row, col})
			}
		}
		pairs, mismatches := 0, 0
		for _, as := range byID {
			if len(as) < 2 {
				continue
			}
			first := as[0]
			for _, a := range as[1:] {
				pairs++
				for i := 0; i < 16; i++ {
					if l.A.At(first.row, first.col+i) != l.A.At(a.row, a.col+i) {
						mismatches++
						break
					}
				}
			}
		}
		if pairs == 0 {
			t.Fatalf("%v: no duplicate anchors found", p)
		}
		if mismatches != 0 {
			t.Errorf("%v: %d/%d anchor-equal row-vectors differ", p, mismatches, pairs)
		}
	}
}

// For channel counts that are NOT multiples of 16 a row-vector can straddle
// a tap boundary, and anchor-ID matching is heuristic. Quantify the
// mismatch rate (the paper does not discuss it; we keep it visible).
func TestRowVectorFidelityUnalignedChannels(t *testing.T) {
	p := conv.Params{N: 1, H: 12, W: 12, C: 3, K: 4, FH: 7, FW: 7, Pad: 3, Stride: 2}
	in := tensor.New(p.N, p.H, p.W, p.C)
	in.FillRandom(78, 1)
	f := tensor.New(p.K, p.FH, p.FW, p.C)
	l, err := lowering.Lower(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	type anchor struct{ row, col int }
	byID := map[ID]anchor{}
	pairs, mismatches := 0, 0
	for i := 0; i < 20000; i++ {
		row := rng.Intn(l.M)
		col := rng.Intn(l.K/16) * 16
		if col+16 > l.K {
			continue
		}
		id := SemanticIDs(p, row, col)
		if prev, ok := byID[id]; ok {
			pairs++
			for j := 0; j < 16; j++ {
				if l.A.At(prev.row, prev.col+j) != l.A.At(row, col+j) {
					mismatches++
					break
				}
			}
		} else {
			byID[id] = anchor{row, col}
		}
	}
	if pairs > 0 {
		rate := float64(mismatches) / float64(pairs)
		t.Logf("unaligned-channel row-vector mismatch rate: %.1f%% (%d/%d pairs)",
			100*rate, mismatches, pairs)
		// The anchor element itself is always a true duplicate; only the
		// tail can diverge, and for C=3 the divergence should not be total.
		if rate == 1 {
			t.Error("every pair mismatched — anchor IDs are broken")
		}
	}
}
