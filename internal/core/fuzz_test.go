package duplo

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// FuzzDetectionUnitProgram pins the hardening contract of the detection
// unit's programming interface: whatever convolution parameters and
// workspace layout it is handed, Program either rejects them with an error
// or the programmed unit survives an access/store hammer without
// panicking. The bug class this targets is field-width truncation zeroing
// an ID-generator divider (newDivider panics on zero), which NewConvInfo
// must reject up front. Seeds: a Table I layer, the Table II worked
// example, the unit-test layer, and a truncation probe at the 16-bit
// field boundary.
func FuzzDetectionUnitProgram(f *testing.F) {
	f.Add(8, 112, 112, 64, 3, 3, 1, 1, uint32(640), uint8(2), uint64(0x1000), 1024, 1)
	f.Add(1, 4, 4, 1, 3, 3, 0, 1, uint32(16), uint8(2), uint64(0x1000), 4, 1)
	f.Add(2, 16, 16, 16, 3, 3, 1, 1, uint32(144), uint8(2), uint64(0), 256, 2)
	f.Add(8, 65536, 4, 65536, 256, 3, 0, 1, uint32(0), uint8(0), uint64(1)<<40, 0, 0)
	f.Fuzz(func(t *testing.T, n, h, w, c, fh, fw, pad, stride int, kpad uint32, elem uint8, base uint64, entries, ways int) {
		cfg := DetectionUnitConfig{LHB: LHBConfig{Entries: entries, Ways: ways}, LatencyCycles: 2}
		du, err := NewDetectionUnit(cfg, 8, 32)
		if err != nil {
			// Invalid LHB shape: fall back to the default so the fuzz still
			// exercises Program with these convolution parameters.
			if du, err = NewDetectionUnit(DefaultDetectionUnitConfig(), 8, 32); err != nil {
				t.Fatal(err)
			}
		}
		p := conv.Params{N: n, H: h, W: w, C: c, K: 1, FH: fh, FW: fw, Pad: pad, Stride: stride}
		layout := lowering.Layout{Base: base, ElemSize: int(elem), KPad: int(kpad)}
		if err := du.Program(p, layout); err != nil {
			return // rejected programming is the defended outcome
		}
		// Programmed without error: the unit must be total over accesses
		// around (and below) the workspace base.
		for i := 0; i < 64; i++ {
			addr := base + uint64(i-8)*uint64(elem)
			_, seq := du.Access(i%8, i%32, addr, int64(i))
			du.Retire(seq)
		}
		du.Store(base)
	})
}
