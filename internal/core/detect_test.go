package duplo

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// TestTableIIWorkflow reproduces Table II of the paper step by step: four
// wmma.load instructions against the Fig. 6 workspace with a small LHB.
//
//	#1 wmma.load.a array_idx 2  -> element 2, entry 2: miss, allocate
//	#2 wmma.load.b (filter)     -> outside workspace: bypass
//	#3 wmma.load.a array_idx 10 -> element 2, entry 2: hit, register reuse
//	#4 wmma.load.a array_idx 28 -> element 6, entry 2 (6 mod 4): conflict,
//	                               entry replacement
func TestTableIIWorkflow(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	layout := lowering.NewLayout(p, 0x1000, 2)
	du, err := NewDetectionUnit(DetectionUnitConfig{
		// Table II's entry arithmetic (element 6 -> entry 6 mod 4 = 2)
		// implies plain modulo indexing.
		LHB:           LHBConfig{Entries: 4, Ways: 1, ModuloIndex: true},
		LatencyCycles: 2,
	}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if du.Awake() {
		t.Fatal("unit must start power-gated")
	}
	if err := du.Program(p, layout); err != nil {
		t.Fatal(err)
	}
	if !du.Awake() {
		t.Fatal("Program must wake the unit")
	}

	// The paper's array indices are over the logical 4x9 workspace; our
	// addresses use the KPad=16 pitch, so convert (row, col).
	addrOf := func(arrayIdx int) uint64 { return layout.Addr(arrayIdx/9, arrayIdx%9) }

	// #1: array_idx 2 -> element 2, compulsory miss, entry allocation.
	r1, seq1 := du.Access(0, 4, addrOf(2), 0) // dst %r4
	if r1.Kind != AccessMiss || r1.ID.Elem != 2 {
		t.Fatalf("inst 1: %+v", r1)
	}

	// #2: wmma.load.b reads the filter matrix, outside the workspace.
	r2, _ := du.Access(0, 2, 0x9000_0000, 0)
	if r2.Kind != AccessBypass {
		t.Fatalf("inst 2: %+v", r2)
	}

	// #3: array_idx 10 -> different address, same element ID 2: hit; the
	// destination is renamed to inst 1's physical register.
	r3, _ := du.Access(0, 3, addrOf(10), 0)
	if r3.Kind != AccessHit || r3.ID.Elem != 2 {
		t.Fatalf("inst 3: %+v", r3)
	}
	if r3.Reg != r1.Reg {
		t.Fatalf("inst 3 must reuse inst 1's register: %d vs %d", r3.Reg, r1.Reg)
	}
	if du.Renames().Lookup(0, 3) != r1.Reg {
		t.Fatal("rename table not updated")
	}

	// #4: array_idx 28 -> element 6, maps to entry 6 mod 4 = 2: conflict
	// miss with entry replacement.
	r4, _ := du.Access(0, 5, addrOf(28), 0)
	if r4.Kind != AccessMiss || r4.ID.Elem != 6 {
		t.Fatalf("inst 4: %+v", r4)
	}
	st := du.LHBStats()
	if st.Replacements != 1 {
		t.Fatalf("expected the Table II entry replacement, stats %+v", st)
	}
	if st.Hits != 1 || st.Misses != 2 || st.Lookups != 3 {
		t.Fatalf("stats %+v", st)
	}
	_ = seq1
}

func TestDetectionUnitBypassWhenAsleep(t *testing.T) {
	du, err := NewDetectionUnit(DefaultDetectionUnitConfig(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := du.Access(0, 0, 0x1000, 0)
	if r.Kind != AccessBypass {
		t.Fatal("power-gated unit must bypass")
	}
	du.Store(0x1000) // must not panic while asleep
}

func TestDetectionUnitPadColBypass(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	layout := lowering.NewLayout(p, 0x1000, 2)
	du, _ := NewDetectionUnit(DefaultDetectionUnitConfig(), 2, 4)
	if err := du.Program(p, layout); err != nil {
		t.Fatal(err)
	}
	// Column 12 is K-padding (K=9, KPad=16).
	r, _ := du.Access(0, 0, layout.Addr(1, 12), 0)
	if r.Kind != AccessBypass {
		t.Fatalf("pad column must bypass: %+v", r)
	}
}

func TestDetectionUnitRetireAndStore(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	layout := lowering.NewLayout(p, 0, 2)
	du, _ := NewDetectionUnit(DefaultDetectionUnitConfig(), 2, 4)
	if err := du.Program(p, layout); err != nil {
		t.Fatal(err)
	}
	addr := layout.Addr(0, 2)
	r1, seq := du.Access(0, 0, addr, 0)
	if r1.Kind != AccessMiss {
		t.Fatal("expected miss")
	}
	du.Retire(seq)
	r2, _ := du.Access(0, 1, layout.Addr(1, 1), 0) // same element ID (intra-patch dup)
	if r2.Kind != AccessMiss {
		t.Fatalf("after retirement the duplicate must miss again: %+v", r2)
	}
	// Store invalidation path.
	r3, _ := du.Access(0, 2, addr, 0)
	if r3.Kind != AccessHit {
		t.Fatalf("expected hit before store: %+v", r3)
	}
	du.Store(addr)
	r4, _ := du.Access(0, 3, layout.Addr(1, 1), 0)
	if r4.Kind != AccessMiss {
		t.Fatalf("store must invalidate: %+v", r4)
	}
	if du.Latency() != 2 {
		t.Fatalf("latency %d", du.Latency())
	}
}

func TestRenameTable(t *testing.T) {
	rt := NewRenameTable(2, 4)
	if rt.Lookup(0, 0) != InvalidReg {
		t.Fatal("fresh slot must be invalid")
	}
	a := rt.Alloc(0, 0)
	b := rt.Alloc(0, 1)
	if a == b {
		t.Fatal("fresh allocations must differ")
	}
	rt.RenameTo(1, 0, a)
	if rt.Lookup(1, 0) != a {
		t.Fatal("rename not visible")
	}
	if rt.SharedWith(a) != 2 {
		t.Fatalf("sharing count %d", rt.SharedWith(a))
	}
	if rt.LivePhysRegs() != 2 {
		t.Fatalf("live phys regs %d", rt.LivePhysRegs())
	}
	// Overwriting a slot releases its previous mapping.
	rt.Alloc(1, 0)
	if rt.SharedWith(a) != 1 {
		t.Fatalf("sharing count after overwrite %d", rt.SharedWith(a))
	}
	if rt.Renames != 1 || rt.Allocs != 3 {
		t.Fatalf("counters renames=%d allocs=%d", rt.Renames, rt.Allocs)
	}
}

func TestRenameTablePanics(t *testing.T) {
	rt := NewRenameTable(1, 1)
	for _, f := range []func(){
		func() { rt.Lookup(1, 0) },
		func() { rt.Lookup(0, -1) },
		func() { rt.RenameTo(0, 0, InvalidReg) },
		func() { NewRenameTable(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// End-to-end duplicate elimination fraction on a real layer shape: with an
// oracle LHB and no retirement, the eliminated fraction must equal
// 1 - unique/total workspace entries.
func TestEliminationFractionMatchesAnalytic(t *testing.T) {
	p := conv.Params{N: 2, H: 8, W: 8, C: 4, K: 8, FH: 3, FW: 3, Pad: 1, Stride: 1}
	layout := lowering.NewLayout(p, 0x100, 2)
	du, err := NewDetectionUnit(DetectionUnitConfig{
		LHB: LHBConfig{Oracle: true, NeverEvict: true},
	}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := du.Program(p, layout); err != nil {
		t.Fatal(err)
	}
	total, hits := 0, 0
	for row := 0; row < p.GemmM(); row++ {
		for col := 0; col < p.GemmK(); col++ {
			r, _ := du.Access(row%4, col%8, layout.Addr(row, col), 0)
			total++
			if r.Kind == AccessHit {
				hits++
			}
		}
	}
	// Unique (padded) elements referenced = misses.
	misses := total - hits
	seen := map[ID]bool{}
	for row := 0; row < p.GemmM(); row++ {
		for col := 0; col < p.GemmK(); col++ {
			seen[SemanticIDs(p, row, col)] = true
		}
	}
	if misses != len(seen) {
		t.Fatalf("misses %d != unique IDs %d", misses, len(seen))
	}
	if hits == 0 {
		t.Fatal("expected duplicate eliminations")
	}
}
