package duplo

import (
	"testing"
)

func mustLHB(t *testing.T, cfg LHBConfig) *LHB {
	t.Helper()
	l, err := NewLHB(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLHBConfigValidate(t *testing.T) {
	good := []LHBConfig{
		{Entries: 1024, Ways: 1},
		{Entries: 1024, Ways: 8},
		{Entries: 256, Ways: 2},
		{Oracle: true},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	bad := []LHBConfig{
		{Entries: 0, Ways: 1},
		{Entries: 1000, Ways: 1}, // not pow2
		{Entries: 1024, Ways: 0},
		{Entries: 1024, Ways: 3}, // does not divide into pow2 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: expected error", c)
		}
	}
}

func TestLHBMissAllocHit(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 16, Ways: 1})
	id := ID{Elem: 5}
	if _, _, hit := l.Lookup(id, 1); hit {
		t.Fatal("compulsory miss expected")
	}
	l.Insert(id, 7, 1, 0)
	reg, _, hit := l.Lookup(id, 2)
	if !hit || reg != 7 {
		t.Fatalf("hit=(%v,%d), want (true,7)", hit, reg)
	}
	if l.Stats.Hits != 1 || l.Stats.Misses != 1 || l.Stats.Allocs != 1 {
		t.Fatalf("stats %+v", l.Stats)
	}
	if l.Stats.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", l.Stats.HitRate())
	}
}

func TestLHBRetireEviction(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 16, Ways: 1})
	id := ID{Elem: 3}
	l.Insert(id, 1, 10, 0)
	l.Retire(10)
	if _, _, hit := l.Lookup(id, 11); hit {
		t.Fatal("entry must be released when its owner retires (§IV-B)")
	}
	if l.Stats.Releases != 1 {
		t.Fatalf("releases %d", l.Stats.Releases)
	}
}

// The relay: a hit extends the entry's lifetime to the hitting instruction,
// so retiring the original owner no longer evicts it (§IV-B "continuous
// hits ... can relay the warp register to the next tensor-core-load").
func TestLHBRelayExtension(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 16, Ways: 1})
	id := ID{Elem: 3}
	l.Insert(id, 1, 10, 0)
	if _, _, hit := l.Lookup(id, 20); !hit {
		t.Fatal("expected hit")
	}
	l.Retire(10) // original owner retires; entry relayed to 20
	if _, _, hit := l.Lookup(id, 30); !hit {
		t.Fatal("relayed entry must survive the original owner's retirement")
	}
	l.Retire(20)
	l.Retire(30)
	if _, _, hit := l.Lookup(id, 40); hit {
		t.Fatal("entry must die when the last relayed user retires")
	}
}

func TestLHBConflictReplacement(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 4, Ways: 1, ModuloIndex: true})
	a := ID{Elem: 2}
	b := ID{Elem: 6} // 6 % 4 == 2: same set (the Table II conflict)
	l.Insert(a, 1, 1, 0)
	l.Insert(b, 2, 2, 0)
	if l.Stats.Replacements != 1 {
		t.Fatalf("replacements %d", l.Stats.Replacements)
	}
	if _, _, hit := l.Lookup(a, 3); hit {
		t.Fatal("replaced entry must miss")
	}
	if reg, _, hit := l.Lookup(b, 4); !hit || reg != 2 {
		t.Fatal("replacement must hit")
	}
}

// Set associativity removes the conflict of the direct-mapped case.
func TestLHBSetAssociative(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 8, Ways: 2, ModuloIndex: true})
	a := ID{Elem: 2}
	b := ID{Elem: 6} // same set of 4, different ways
	l.Insert(a, 1, 1, 0)
	l.Insert(b, 2, 2, 0)
	if l.Stats.Replacements != 0 {
		t.Fatal("2-way buffer should absorb the conflict")
	}
	if _, _, hit := l.Lookup(a, 3); !hit {
		t.Fatal("a should still hit")
	}
	if _, _, hit := l.Lookup(b, 4); !hit {
		t.Fatal("b should still hit")
	}
	// A third conflicting ID evicts the LRU way (a: touched at seq 3, b at 4
	// -> LRU is a).
	c := ID{Elem: 10}
	l.Insert(c, 3, 5, 0)
	if _, _, hit := l.Lookup(a, 6); hit {
		t.Fatal("LRU way (a) should have been evicted")
	}
	if _, _, hit := l.Lookup(b, 7); !hit {
		t.Fatal("MRU way (b) should survive")
	}
}

func TestLHBTagDistinguishesBatchAndHighBits(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 4, Ways: 1, ModuloIndex: true})
	a := ID{Elem: 1, Batch: 0}
	b := ID{Elem: 1, Batch: 1} // same element, different image: distinct data
	l.Insert(a, 1, 1, 0)
	if _, _, hit := l.Lookup(b, 2); hit {
		t.Fatal("different batch must not hit (§III-C)")
	}
	c := ID{Elem: 1 + 4} // same set, different tag bits
	if _, _, hit := l.Lookup(c, 3); hit {
		t.Fatal("different element high bits must not hit")
	}
}

// The default (hashed) index must spread power-of-two-strided IDs that
// modulo indexing collapses onto one set.
func TestLHBHashedIndexSpreadsStrides(t *testing.T) {
	hashed := mustLHB(t, LHBConfig{Entries: 64, Ways: 1})
	modulo := mustLHB(t, LHBConfig{Entries: 64, Ways: 1, ModuloIndex: true})
	// 16 IDs with stride 64 (a tile's rows for a C=64 layer): modulo maps
	// them all to set 0.
	for i := uint32(0); i < 16; i++ {
		id := ID{Elem: i * 64}
		hashed.Insert(id, PhysReg(i), uint64(i), 0)
		modulo.Insert(id, PhysReg(i), uint64(i), 0)
	}
	if modulo.Stats.Replacements != 15 {
		t.Fatalf("modulo replacements %d, want 15 (all collide)", modulo.Stats.Replacements)
	}
	if hashed.Stats.Replacements != 0 {
		t.Fatalf("hashed replacements %d, want 0", hashed.Stats.Replacements)
	}
}

func TestLHBStoreInvalidate(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 16, Ways: 1})
	id := ID{Elem: 9}
	l.Insert(id, 1, 1, 0)
	l.StoreInvalidate(id)
	if _, _, hit := l.Lookup(id, 2); hit {
		t.Fatal("store must invalidate the matching entry")
	}
	if l.Stats.StoreEvicts != 1 {
		t.Fatalf("store evicts %d", l.Stats.StoreEvicts)
	}
}

func TestLHBOracle(t *testing.T) {
	l := mustLHB(t, LHBConfig{Oracle: true})
	// No conflicts ever: thousands of distinct IDs coexist.
	for i := uint32(0); i < 5000; i++ {
		l.Insert(ID{Elem: i}, PhysReg(i), uint64(i), 0)
	}
	for i := uint32(0); i < 5000; i++ {
		reg, _, hit := l.Lookup(ID{Elem: i}, uint64(10000+i))
		if !hit || reg != PhysReg(i) {
			t.Fatalf("oracle lost entry %d", i)
		}
	}
	if l.Live() != 5000 {
		t.Fatalf("live %d", l.Live())
	}
	// Retire-based eviction still applies in oracle mode (§V-C: the oracle
	// saturates near 76%, not the 88.9% theoretical limit).
	for i := uint32(0); i < 5000; i++ {
		l.Retire(uint64(10000 + i))
	}
	if l.Live() != 0 {
		t.Fatalf("live after retire %d", l.Live())
	}
}

func TestLHBNeverEvict(t *testing.T) {
	l := mustLHB(t, LHBConfig{Oracle: true, NeverEvict: true})
	l.Insert(ID{Elem: 1}, 1, 1, 0)
	l.Retire(1)
	if _, _, hit := l.Lookup(ID{Elem: 1}, 2); !hit {
		t.Fatal("NeverEvict must survive retirement")
	}
}

func TestLHBOracleStoreInvalidate(t *testing.T) {
	l := mustLHB(t, LHBConfig{Oracle: true})
	l.Insert(ID{Elem: 4}, 2, 1, 0)
	l.StoreInvalidate(ID{Elem: 4})
	if _, _, hit := l.Lookup(ID{Elem: 4}, 2); hit {
		t.Fatal("oracle store invalidate failed")
	}
}

func TestLHBReinsertSameID(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 4, Ways: 1})
	id := ID{Elem: 2}
	l.Insert(id, 1, 1, 0)
	l.Insert(id, 2, 2, 0) // re-allocation replaces in place
	reg, _, hit := l.Lookup(id, 3)
	if !hit || reg != 2 {
		t.Fatalf("latest insert must win: (%v,%d)", hit, reg)
	}
	// Retiring the first owner must not kill the second insert.
	l.Retire(1)
	if _, _, hit := l.Lookup(id, 4); !hit {
		t.Fatal("stale retire must not evict the new entry")
	}
}

func TestLHBLiveCount(t *testing.T) {
	l := mustLHB(t, LHBConfig{Entries: 8, Ways: 1})
	if l.Live() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	l.Insert(ID{Elem: 1}, 1, 1, 0)
	l.Insert(ID{Elem: 2}, 2, 2, 0)
	if l.Live() != 2 {
		t.Fatalf("live %d", l.Live())
	}
}
