package duplo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// randomParams draws a valid convolution from the generator values.
func randomParams(rng *rand.Rand) conv.Params {
	stride := 1 + rng.Intn(2)
	f := []int{1, 3, 5, 7}[rng.Intn(4)]
	h := f + rng.Intn(12) + stride
	w := f + rng.Intn(12) + stride
	return conv.Params{
		N:      1 + rng.Intn(3),
		H:      h,
		W:      w,
		C:      1 + rng.Intn(8),
		K:      1 + rng.Intn(8),
		FH:     f,
		FW:     f,
		Pad:    rng.Intn(f),
		Stride: stride,
	}
}

// Property: for any valid layer, equal IDs imply equal padded source
// coordinates and vice versa (the soundness invariant of §III), checked on
// randomly sampled workspace coordinate pairs.
func TestQuickIDSoundness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		if p.Validate() != nil {
			return true
		}
		type src struct{ img, iy, ix, ch int }
		source := func(row, col int) src {
			img, oy, ox := lowering.RowToOutput(p, row)
			fy, fx, ch := lowering.ColToTap(p, col)
			return src{img, oy*p.Stride + fy, ox*p.Stride + fx, ch}
		}
		for i := 0; i < 50; i++ {
			r1, c1 := rng.Intn(p.GemmM()), rng.Intn(p.GemmK())
			r2, c2 := rng.Intn(p.GemmM()), rng.Intn(p.GemmK())
			id1, id2 := SemanticIDs(p, r1, c1), SemanticIDs(p, r2, c2)
			s1, s2 := source(r1, c1), source(r2, c2)
			if (id1 == id2) != (s1 == s2) {
				t.Logf("params %+v: (%d,%d)/(%d,%d): ids %v/%v srcs %v/%v",
					p, r1, c1, r2, c2, id1, id2, s1, s2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the hardware address path (IDGen with shift/reciprocal
// arithmetic) agrees with the semantic decode for random layers/coords.
func TestQuickIDGenAgreesWithSemantic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		if p.Validate() != nil {
			return true
		}
		layout := lowering.NewLayout(p, 0x4000, 2)
		ci, err := NewConvInfo(p, layout)
		if err != nil {
			return true
		}
		g := NewIDGen(ci)
		for i := 0; i < 50; i++ {
			row, col := rng.Intn(p.GemmM()), rng.Intn(p.GemmK())
			id, st := g.IDs(layout.Addr(row, col))
			if st != StatusOK {
				t.Logf("params %+v: (%d,%d) status %v", p, row, col, st)
				return false
			}
			if id != SemanticIDs(p, row, col) {
				t.Logf("params %+v: (%d,%d) gen %v semantic %v", p, row, col, id, SemanticIDs(p, row, col))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: an LHB lookup immediately after Insert hits and returns the
// inserted register, for any ID and any valid geometry; after Retire of the
// only user, it misses.
func TestQuickLHBInsertLookupRetire(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	prop := func(elem uint32, batch uint16, entPow uint8, waysSel uint8) bool {
		entries := 1 << (4 + entPow%8) // 16..2048
		ways := 1 << (waysSel % 3)     // 1, 2, 4
		l, err := NewLHB(LHBConfig{Entries: entries, Ways: ways}, 0)
		if err != nil {
			return false
		}
		id := ID{Elem: elem, Batch: uint32(batch) % 1024}
		l.Insert(id, PhysReg(7), 1, 42)
		reg, meta, hit := l.Lookup(id, 2)
		if !hit || reg != 7 || meta != 42 {
			return false
		}
		l.Retire(1)
		l.Retire(2)
		_, _, hit = l.Lookup(id, 3)
		return !hit
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the XOR-fold index always stays within [0, sets) and the tag
// distinguishes any two distinct IDs mapping to the same set.
func TestQuickLHBIndexTagConsistency(t *testing.T) {
	l, err := NewLHB(LHBConfig{Entries: 256, Ways: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &quick.Config{MaxCount: 2000}
	prop := func(a, b uint32, ba, bb uint16) bool {
		idA := ID{Elem: a, Batch: uint32(ba) % 1024}
		idB := ID{Elem: b, Batch: uint32(bb) % 1024}
		ia, ib := l.index(idA), l.index(idB)
		if ia < 0 || ia >= 256 || ib < 0 || ib >= 256 {
			return false
		}
		if idA != idB && l.tag(idA) == l.tag(idB) {
			return false // distinct identities must never share a tag
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: rename-table sharing counts match the number of slots pointing
// at each register after any sequence of Alloc/RenameTo operations.
func TestQuickRenameSharing(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(ops []uint16) bool {
		const warps, regs = 4, 8
		rt := NewRenameTable(warps, regs)
		var allocated []PhysReg
		for _, op := range ops {
			w := int(op) % warps
			a := int(op>>2) % regs
			if op%3 == 0 || len(allocated) == 0 {
				allocated = append(allocated, rt.Alloc(w, a))
			} else {
				rt.RenameTo(w, a, allocated[int(op>>5)%len(allocated)])
			}
		}
		// Recount from the table.
		counts := map[PhysReg]int{}
		for w := 0; w < warps; w++ {
			for a := 0; a < regs; a++ {
				if r := rt.Lookup(w, a); r != InvalidReg {
					counts[r]++
				}
			}
		}
		if len(counts) != rt.LivePhysRegs() {
			return false
		}
		for r, n := range counts {
			if rt.SharedWith(r) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
