// Package duplo implements the paper's primary contribution: the Duplo
// detection unit that identifies and eliminates redundant tensor-core-load
// instructions fetching duplicates of workspace data (§III and §IV).
//
// The unit is composed of:
//
//   - ConvInfo — the 32-byte compile-time convolution information loaded at
//     kernel launch (§IV-A);
//   - IDGen — the ID generator translating workspace memory addresses to
//     (batch ID, element ID) pairs such that two workspace entries hold the
//     same value exactly when their ID pairs are equal (§III-B/C);
//   - LHB — the load history buffer recording which physical warp registers
//     hold each recently loaded unique datum (§IV-B);
//   - RenameTable — warp-granular register renaming (adopted from Kim et
//     al. [15]) that converts an LHB hit into a register rename;
//   - DetectionUnit — the glue the LDST unit consults on every
//     tensor-core-load.
//
// One DetectionUnit instance is attached to each SM's LDST unit, mirroring
// Fig. 7/8.
package duplo
