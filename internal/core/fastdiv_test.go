package duplo

import (
	"math/rand"
	"testing"
)

func TestDividerExhaustiveSmall(t *testing.T) {
	for _, d := range []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 25, 49, 147, 160, 288, 4608} {
		v := newDivider(d)
		for n := uint32(0); n < 70000; n++ {
			q, r := v.DivMod(n)
			if q != n/d || r != n%d {
				t.Fatalf("d=%d n=%d: got (%d,%d), want (%d,%d)", d, n, q, r, n/d, n%d)
			}
		}
	}
}

func TestDividerRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	divisors := []uint32{3, 5, 7, 9, 25, 49, 63, 147, 1152, 4608, 12800, 1 << 20, 3 * (1 << 18)}
	for _, d := range divisors {
		v := newDivider(d)
		for i := 0; i < 200000; i++ {
			n := rng.Uint32()
			if got := v.Div(n); got != n/d {
				t.Fatalf("d=%d n=%d: div got %d, want %d", d, n, got, n/d)
			}
			if got := v.Mod(n); got != n%d {
				t.Fatalf("d=%d n=%d: mod got %d, want %d", d, n, got, n%d)
			}
		}
		// Boundary values.
		for _, n := range []uint32{0, 1, d - 1, d, d + 1, 2*d - 1, ^uint32(0), ^uint32(0) - 1} {
			if got := v.Div(n); got != n/d {
				t.Fatalf("d=%d boundary n=%d: got %d, want %d", d, n, got, n/d)
			}
		}
	}
}

func TestDividerPow2Path(t *testing.T) {
	for _, d := range []uint32{1, 2, 16, 1024, 1 << 30} {
		v := newDivider(d)
		if !v.IsPow2() {
			t.Errorf("d=%d should take the shift path", d)
		}
	}
	if newDivider(3).IsPow2() {
		t.Error("3 should take the magic path")
	}
}

func TestDividerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newDivider(0)
}

func TestDividerString(t *testing.T) {
	if s := newDivider(16).String(); s == "" {
		t.Error("empty string")
	}
	if s := newDivider(3).String(); s == "" {
		t.Error("empty string")
	}
}

func BenchmarkDividerMagic(b *testing.B) {
	v := newDivider(147)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += v.Div(uint32(i))
	}
	_ = sink
}
