// Package store persists simulation results on disk, content-addressed by
// the experiments runner's cache key, so the (kernel, config) → Result
// mapping survives process exit. The in-memory singleflight cache (PR 1)
// dedups within one process; this store is the second tier underneath it:
// one warm directory serves any number of later invocations — and any
// number of duploserved clients — with zero redundant simulation.
//
// Layout: each record lives at <dir>/<hh>/<rest-of-sha256(key)>.json where
// hh is the first two hex digits of the key hash (a two-level fan-out so
// directories stay small). The file is a versioned JSON envelope carrying
// the payload's own SHA-256, so truncation, bit flips and partial writes
// are detected — a corrupt record is counted, removed, and reported as a
// miss (the caller re-simulates; it never trusts a damaged file). Writes
// go through a temp file plus atomic rename, so concurrent writers and
// crashed processes leave either the old record or the new one, never a
// torn file. A record whose envelope Version differs from FormatVersion
// is ignored cleanly (miss, no corruption count, file left in place for
// the older/newer binary that owns it).
//
// Only successful runs are persisted: the runner's failed-run eviction
// semantics (PR 5) extend to this tier by construction, because a failed
// simulation never reaches Put.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"duplo/internal/sim"
)

// FaultInjector is the deterministic fault-injection seam (DESIGN.md
// §12): internal/fault.Injector implements it, and it is nil — every
// check compiled to one pointer test — on the production path.
type FaultInjector interface {
	// ReadFault, when non-nil, fails the lookup with a transient I/O
	// error before the disk is touched (the record stays intact).
	ReadFault(key string) error
	// WriteFault, when non-nil, fails the persist before bytes land.
	WriteFault(key string) error
	// MangleRead corrupts a successfully read record's raw bytes (the
	// checksum must catch it; the mangled copy must never be served).
	MangleRead(raw []byte) ([]byte, bool)
	// IODelay adds latency to a disk operation (0 = none).
	IODelay() time.Duration
}

// OpError is the typed store failure: which operation failed, on which
// key, and why. Transient errors (I/O faults the resilience layer may
// retry) and permanent ones (a read-only directory) share the shape;
// Unwrap exposes the cause for errors.Is classification.
type OpError struct {
	Op  string // "get" | "put"
	Key string
	Err error
}

func (e *OpError) Error() string { return fmt.Sprintf("store: %s %q: %v", e.Op, e.Key, e.Err) }

// Unwrap exposes the underlying cause.
func (e *OpError) Unwrap() error { return e.Err }

// FormatVersion is bumped whenever the persisted encoding changes
// incompatibly (a field changes meaning, the checksum scheme changes, …).
// Records carrying any other version are ignored, never reinterpreted.
const FormatVersion = 1

// Record is the persisted subset of a sim.Result: the full Stats block
// plus the CTA accounting. The Kernel and Config are deliberately not
// serialized — they are reconstructed by the caller from the same request
// that produced the cache key, which is exactly what the key's
// content-addressing guarantees is possible.
type Record struct {
	Stats         sim.Stats `json:"stats"`
	SimulatedCTAs int       `json:"simulated_ctas"`
	TotalCTAs     int       `json:"total_ctas"`
}

// RecordOf extracts the persisted subset of a result.
func RecordOf(res sim.Result) Record {
	return Record{Stats: res.Stats, SimulatedCTAs: res.SimulatedCTAs, TotalCTAs: res.TotalCTAs}
}

// Result rehydrates a full sim.Result by reattaching the kernel and config
// the caller rebuilt from the run request.
func (r Record) Result(k *sim.Kernel, cfg sim.Config) sim.Result {
	return sim.Result{Stats: r.Stats, SimulatedCTAs: r.SimulatedCTAs, TotalCTAs: r.TotalCTAs,
		Kernel: k, Config: cfg}
}

// envelope is the on-disk frame around a Record: the format version, the
// full (unhashed) cache key for collision/tamper detection, and the
// payload checksum.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Counters is a point-in-time snapshot of store activity (see Stats).
type Counters struct {
	Hits int64 `json:"hits"`
	// Misses counts lookups that found no usable record for any reason
	// (absent, corrupt, or version-skewed) — Hits+Misses is the lookup
	// total.
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// PutErrors counts failed persists (the simulation result is still
	// returned to the caller; the store is best-effort on the write side).
	PutErrors int64 `json:"put_errors"`
	// ReadErrors counts transient lookup failures — I/O errors other than
	// "absent" (and injected read faults). The record is left on disk:
	// unlike corruption, a transient error says nothing about the bytes,
	// and the resilience layer retries instead of destroying warmth.
	ReadErrors int64 `json:"read_errors"`
	// Corruptions counts records that failed envelope decode, key match,
	// checksum, or payload decode; each was removed so the slot heals on
	// the re-simulation's Put.
	Corruptions int64 `json:"corruptions"`
	// VersionSkips counts records ignored because their envelope Version
	// differs from FormatVersion (left on disk untouched).
	VersionSkips int64 `json:"version_skips"`
}

// Store is an on-disk content-addressed result store rooted at one
// directory. All methods are safe for concurrent use by any number of
// goroutines and cooperating processes sharing the directory.
type Store struct {
	dir string

	// faults is the fault-injection seam; nil in production. Set before
	// the store is shared across goroutines (SetFaults is not synchronized
	// against in-flight operations).
	faults FaultInjector
	// res is the optional retry + circuit-breaker layer (EnableResilience);
	// nil keeps the raw single-attempt semantics.
	res *resilience

	hits, misses, puts, putErrors, readErrors, corruptions, versionSkips atomic.Int64
}

// Open roots a store at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns where the record for key lives (whether or not it exists):
// the key is hashed, never trusted as a path component.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+".json")
}

// SetFaults installs the fault-injection hooks (nil = none). Install
// before sharing the store across goroutines.
func (s *Store) SetFaults(h FaultInjector) { s.faults = h }

// Get looks key up. ok is false on any miss — absent, version-skewed,
// corrupt (counted separately; a corrupt file is removed so the slot heals
// on the next Put), or a transient read error. A false return always means
// "re-simulate"; Get never returns a record it could not fully verify.
// With resilience enabled (EnableResilience) transient errors are retried
// and an open breaker degrades to a clean miss.
func (s *Store) Get(key string) (Record, bool) {
	rec, ok, _ := s.Lookup(key)
	return rec, ok
}

// Lookup is Get with the transient-failure channel exposed: a non-nil
// error means the disk op itself failed (I/O error, injected fault) and
// the record — if any — is still intact on disk, so the caller may retry.
// ok is false whenever err is non-nil. With resilience enabled the retry
// happens internally and err is always nil (an exhausted retry budget or
// an open breaker degrade to a miss, tallied in the breaker snapshot).
func (s *Store) Lookup(key string) (Record, bool, error) {
	if s.res != nil {
		return s.res.lookup(key)
	}
	return s.lookup(key)
}

// lookup is the raw single-attempt lookup.
func (s *Store) lookup(key string) (Record, bool, error) {
	path := s.Path(key)
	if s.faults != nil {
		if d := s.faults.IODelay(); d > 0 {
			time.Sleep(d)
		}
		if err := s.faults.ReadFault(key); err != nil {
			s.readErrors.Add(1)
			s.misses.Add(1)
			return Record{}, false, &OpError{Op: "get", Key: key, Err: err}
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Transient: the bytes were never seen, so this says nothing
			// about the record. Keep the file; the caller may retry.
			s.readErrors.Add(1)
			s.misses.Add(1)
			return Record{}, false, &OpError{Op: "get", Key: key, Err: err}
		}
		s.misses.Add(1)
		return Record{}, false, nil
	}
	if s.faults != nil {
		if m, ok := s.faults.MangleRead(raw); ok {
			raw = m
		}
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false, nil
	}
	if env.Version != FormatVersion {
		s.versionSkips.Add(1)
		s.misses.Add(1)
		return Record{}, false, nil
	}
	if env.Key != key || env.Sum != payloadSum(env.Payload) {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false, nil
	}
	var rec Record
	if err := json.Unmarshal(env.Payload, &rec); err != nil {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false, nil
	}
	s.hits.Add(1)
	return rec, true, nil
}

// Put persists rec under key atomically: the record is written to a temp
// file in the destination directory and renamed into place, so a
// concurrent reader sees the old record or the new one, never a torn
// write. Failures return a typed *OpError and are tallied in
// Counters().PutErrors so best-effort callers can drop the return value
// without losing observability. With resilience enabled transient errors
// are retried and an open breaker skips the write (ErrDegraded).
func (s *Store) Put(key string, rec Record) error {
	if s.res != nil {
		return s.res.put(key, rec)
	}
	return s.putCounted(key, rec)
}

// putCounted is the raw single-attempt persist plus counter accounting.
func (s *Store) putCounted(key string, rec Record) error {
	err := s.put(key, rec)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, rec Record) error {
	if s.faults != nil {
		if d := s.faults.IODelay(); d > 0 {
			time.Sleep(d)
		}
		if err := s.faults.WriteFault(key); err != nil {
			return &OpError{Op: "put", Key: key, Err: err}
		}
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return &OpError{Op: "put", Key: key, Err: fmt.Errorf("encode: %w", err)}
	}
	data, err := json.Marshal(envelope{
		Version: FormatVersion, Key: key, Sum: payloadSum(payload), Payload: payload,
	})
	if err != nil {
		return &OpError{Op: "put", Key: key, Err: fmt.Errorf("encode: %w", err)}
	}
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return &OpError{Op: "put", Key: key, Err: err}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return &OpError{Op: "put", Key: key, Err: err}
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return &OpError{Op: "put", Key: key, Err: werr}
	}
	return nil
}

// Counters snapshots the activity counters. The snapshot is not atomic
// across fields, but each field is individually exact.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		PutErrors:    s.putErrors.Load(),
		ReadErrors:   s.readErrors.Load(),
		Corruptions:  s.corruptions.Load(),
		VersionSkips: s.versionSkips.Load(),
	}
}

// corrupt records a damaged file and removes it, so the key heals on the
// re-simulation's Put instead of re-parsing garbage forever.
func (s *Store) corrupt(path string) {
	s.corruptions.Add(1)
	os.Remove(path)
}

// payloadSum is the envelope checksum: hex SHA-256 of the payload bytes.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
