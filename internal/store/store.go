// Package store persists simulation results on disk, content-addressed by
// the experiments runner's cache key, so the (kernel, config) → Result
// mapping survives process exit. The in-memory singleflight cache (PR 1)
// dedups within one process; this store is the second tier underneath it:
// one warm directory serves any number of later invocations — and any
// number of duploserved clients — with zero redundant simulation.
//
// Layout: each record lives at <dir>/<hh>/<rest-of-sha256(key)>.json where
// hh is the first two hex digits of the key hash (a two-level fan-out so
// directories stay small). The file is a versioned JSON envelope carrying
// the payload's own SHA-256, so truncation, bit flips and partial writes
// are detected — a corrupt record is counted, removed, and reported as a
// miss (the caller re-simulates; it never trusts a damaged file). Writes
// go through a temp file plus atomic rename, so concurrent writers and
// crashed processes leave either the old record or the new one, never a
// torn file. A record whose envelope Version differs from FormatVersion
// is ignored cleanly (miss, no corruption count, file left in place for
// the older/newer binary that owns it).
//
// Only successful runs are persisted: the runner's failed-run eviction
// semantics (PR 5) extend to this tier by construction, because a failed
// simulation never reaches Put.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"duplo/internal/sim"
)

// FormatVersion is bumped whenever the persisted encoding changes
// incompatibly (a field changes meaning, the checksum scheme changes, …).
// Records carrying any other version are ignored, never reinterpreted.
const FormatVersion = 1

// Record is the persisted subset of a sim.Result: the full Stats block
// plus the CTA accounting. The Kernel and Config are deliberately not
// serialized — they are reconstructed by the caller from the same request
// that produced the cache key, which is exactly what the key's
// content-addressing guarantees is possible.
type Record struct {
	Stats         sim.Stats `json:"stats"`
	SimulatedCTAs int       `json:"simulated_ctas"`
	TotalCTAs     int       `json:"total_ctas"`
}

// RecordOf extracts the persisted subset of a result.
func RecordOf(res sim.Result) Record {
	return Record{Stats: res.Stats, SimulatedCTAs: res.SimulatedCTAs, TotalCTAs: res.TotalCTAs}
}

// Result rehydrates a full sim.Result by reattaching the kernel and config
// the caller rebuilt from the run request.
func (r Record) Result(k *sim.Kernel, cfg sim.Config) sim.Result {
	return sim.Result{Stats: r.Stats, SimulatedCTAs: r.SimulatedCTAs, TotalCTAs: r.TotalCTAs,
		Kernel: k, Config: cfg}
}

// envelope is the on-disk frame around a Record: the format version, the
// full (unhashed) cache key for collision/tamper detection, and the
// payload checksum.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Counters is a point-in-time snapshot of store activity (see Stats).
type Counters struct {
	Hits int64 `json:"hits"`
	// Misses counts lookups that found no usable record for any reason
	// (absent, corrupt, or version-skewed) — Hits+Misses is the lookup
	// total.
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// PutErrors counts failed persists (the simulation result is still
	// returned to the caller; the store is best-effort on the write side).
	PutErrors int64 `json:"put_errors"`
	// Corruptions counts records that failed envelope decode, key match,
	// checksum, or payload decode; each was removed so the slot heals on
	// the re-simulation's Put.
	Corruptions int64 `json:"corruptions"`
	// VersionSkips counts records ignored because their envelope Version
	// differs from FormatVersion (left on disk untouched).
	VersionSkips int64 `json:"version_skips"`
}

// Store is an on-disk content-addressed result store rooted at one
// directory. All methods are safe for concurrent use by any number of
// goroutines and cooperating processes sharing the directory.
type Store struct {
	dir string

	hits, misses, puts, putErrors, corruptions, versionSkips atomic.Int64
}

// Open roots a store at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns where the record for key lives (whether or not it exists):
// the key is hashed, never trusted as a path component.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h[2:]+".json")
}

// Get looks key up. ok is false on any miss — absent, version-skewed, or
// corrupt (counted separately; a corrupt file is removed so the slot heals
// on the next Put). A false return always means "re-simulate"; Get never
// returns a record it could not fully verify.
func (s *Store) Get(key string) (Record, bool) {
	path := s.Path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// Unreadable is indistinguishable from damaged for our purposes.
			s.corrupt(path)
		}
		s.misses.Add(1)
		return Record{}, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false
	}
	if env.Version != FormatVersion {
		s.versionSkips.Add(1)
		s.misses.Add(1)
		return Record{}, false
	}
	if env.Key != key || env.Sum != payloadSum(env.Payload) {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(env.Payload, &rec); err != nil {
		s.corrupt(path)
		s.misses.Add(1)
		return Record{}, false
	}
	s.hits.Add(1)
	return rec, true
}

// Put persists rec under key atomically: the record is written to a temp
// file in the destination directory and renamed into place, so a
// concurrent reader sees the old record or the new one, never a torn
// write. Errors are also tallied in Counters().PutErrors so best-effort
// callers can drop the return value without losing observability.
func (s *Store) Put(key string, rec Record) error {
	err := s.put(key, rec)
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key string, rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	data, err := json.Marshal(envelope{
		Version: FormatVersion, Key: key, Sum: payloadSum(payload), Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}

// Counters snapshots the activity counters. The snapshot is not atomic
// across fields, but each field is individually exact.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		PutErrors:    s.putErrors.Load(),
		Corruptions:  s.corruptions.Load(),
		VersionSkips: s.versionSkips.Load(),
	}
}

// corrupt records a damaged file and removes it, so the key heals on the
// re-simulation's Put instead of re-parsing garbage forever.
func (s *Store) corrupt(path string) {
	s.corruptions.Add(1)
	os.Remove(path)
}

// payloadSum is the envelope checksum: hex SHA-256 of the payload bytes.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
