package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"duplo/internal/fault"
)

// quickResilience is the test configuration: no real sleeping (backoffs
// are recorded, not taken) and a virtual clock the test advances by hand,
// so every breaker transition is deterministic.
type clock struct{ at time.Time }

func (c *clock) now() time.Time          { return c.at }
func (c *clock) advance(d time.Duration) { c.at = c.at.Add(d) }
func noSleep(slept *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *slept = append(*slept, d) }
}

func resilientStore(t *testing.T, spec string, threshold, retries int) (*Store, *fault.Injector, *clock, *[]time.Duration) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(in)
	ck := &clock{at: time.Unix(1_700_000_000, 0)}
	var slept []time.Duration
	s.EnableResilience(ResilienceConfig{
		FailureThreshold: threshold,
		OpenFor:          5 * time.Second,
		Retries:          retries,
		RetryBase:        10 * time.Millisecond,
		Sleep:            noSleep(&slept),
		Now:              ck.now,
	})
	return s, in, ck, &slept
}

// TestResilientRetryRecovers: a lookup whose first attempt hits a
// transient fault retries (with a jittered backoff) and serves the hit —
// the caller never sees the blip.
func TestResilientRetryRecovers(t *testing.T) {
	s, _, _, slept := resilientStore(t, "store-read:nth=1", 5, 2)
	if err := s.Put(testKey, testRecord(t)); err != nil {
		t.Fatal(err)
	}
	rec, ok := s.Get(testKey)
	if !ok {
		t.Fatal("retried lookup missed despite an intact record")
	}
	if rec.Stats.Cycles == 0 {
		t.Fatal("retried lookup returned an empty record")
	}
	if len(*slept) != 1 {
		t.Fatalf("took %d backoffs, want 1", len(*slept))
	}
	// Jittered exponential: attempt 0 sleeps in [base/2, base).
	if d := (*slept)[0]; d < 5*time.Millisecond || d >= 10*time.Millisecond {
		t.Errorf("backoff %v outside [5ms, 10ms)", d)
	}
	c := s.Counters()
	if c.ReadErrors != 1 || c.Hits != 1 {
		t.Errorf("counters = %+v, want 1 read error and 1 hit", c)
	}
	b := s.Breaker()
	if b.State != BreakerClosed || b.Retries != 1 || b.ConsecutiveFailures != 0 {
		t.Errorf("breaker = %+v, want closed with 1 retry and 0 consecutive failures", b)
	}
}

// TestResilientBreakerLifecycle drives the full state machine: trip on
// consecutive failures, degrade while open, half-open after the dwell,
// re-open on a failed probe, close on a successful one.
func TestResilientBreakerLifecycle(t *testing.T) {
	// Every read fails; retries=0 so each lookup is one failure.
	s, in, ck, _ := resilientStore(t, "store-read:every=1", 2, 0)
	if err := s.Put(testKey, testRecord(t)); err != nil {
		t.Fatal(err)
	}

	// Two failing lookups trip the breaker.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(testKey); ok {
			t.Fatal("faulted lookup hit")
		}
	}
	b := s.Breaker()
	if b.State != BreakerOpen || b.Trips != 1 {
		t.Fatalf("after threshold failures breaker = %+v, want open with 1 trip", b)
	}
	if b.LastError == "" {
		t.Error("open breaker reports no last error")
	}

	// While open, lookups degrade to clean misses without touching the
	// disk: the injector's read counter must not advance.
	calls := in.Calls(fault.OpStoreRead)
	if _, ok := s.Get(testKey); ok {
		t.Fatal("degraded lookup hit")
	}
	if in.Calls(fault.OpStoreRead) != calls {
		t.Error("degraded lookup touched the disk")
	}
	if b := s.Breaker(); b.DegradedGets != 1 {
		t.Errorf("DegradedGets = %d, want 1", b.DegradedGets)
	}

	// Degraded puts are skipped with the typed ErrDegraded.
	err := s.Put(testKey, testRecord(t))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded put error = %v, want ErrDegraded", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "put" {
		t.Errorf("degraded put error = %T %v, want *OpError{Op: put}", err, err)
	}
	if b := s.Breaker(); b.DegradedPuts != 1 {
		t.Errorf("DegradedPuts = %d, want 1", b.DegradedPuts)
	}

	// After the dwell, a half-open probe runs — faults still armed, so it
	// fails and the breaker re-opens (trip 2).
	ck.advance(6 * time.Second)
	if _, ok := s.Get(testKey); ok {
		t.Fatal("failing probe hit")
	}
	b = s.Breaker()
	if b.State != BreakerOpen || b.Trips != 2 || b.Probes != 1 {
		t.Fatalf("after failed probe breaker = %+v, want re-opened with 1 probe", b)
	}

	// Faults stop; after another dwell the probe succeeds and the breaker
	// closes — the stored record is served again.
	in.Disable()
	ck.advance(6 * time.Second)
	if _, ok := s.Get(testKey); !ok {
		t.Fatal("recovering probe missed")
	}
	b = s.Breaker()
	if b.State != BreakerClosed || b.Probes != 2 {
		t.Fatalf("after recovery breaker = %+v, want closed with 2 probes", b)
	}
	if _, ok := s.Get(testKey); !ok {
		t.Fatal("closed-breaker lookup missed")
	}
}

// TestResilientReadErrorKeepsFile: a transient read error must not
// destroy the record — unlike corruption, it says nothing about the
// bytes (satellite: the destructive remove-on-any-error of the seed
// would lose warmth under a flaky disk).
func TestResilientReadErrorKeepsFile(t *testing.T) {
	s, in, _, _ := resilientStore(t, "store-read:every=1", 100, 0)
	if err := s.Put(testKey, testRecord(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey); ok {
		t.Fatal("faulted lookup hit")
	}
	if _, err := os.Stat(s.Path(testKey)); err != nil {
		t.Fatalf("record vanished after a transient read error: %v", err)
	}
	in.Disable()
	if _, ok := s.Get(testKey); !ok {
		t.Fatal("record unreadable after faults stopped")
	}
}

// TestPutInjectedWriteFailure: an injected ENOSPC-style write error
// returns the typed *OpError, increments PutErrors, and leaves no partial
// temp files behind (satellite: store write-failure coverage).
func TestPutInjectedWriteFailure(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in, err := fault.Parse("store-write:every=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(in)

	perr := s.Put(testKey, testRecord(t))
	var oe *OpError
	if !errors.As(perr, &oe) || oe.Op != "put" || oe.Key != testKey {
		t.Fatalf("put error = %T %v, want *OpError{Op: put}", perr, perr)
	}
	if !errors.Is(perr, fault.ErrInjected) {
		t.Errorf("put error does not unwrap to the injected fault: %v", perr)
	}
	if c := s.Counters(); c.PutErrors != 1 || c.Puts != 0 {
		t.Errorf("counters = %+v, want 1 put error and 0 puts", c)
	}
	assertNoTempFiles(t, s.Dir())
	if _, ok := s.Get(testKey); ok {
		t.Error("failed put left a readable record")
	}

	// The slot heals once the fault clears.
	in.Disable()
	if err := s.Put(testKey, testRecord(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey); !ok {
		t.Error("healed slot missed")
	}
}

// TestPutReadOnlyDir: a Put against an unwritable destination fails with
// the typed error, counts, and leaves no temp files. Skipped when the
// process can write anyway (root ignores permission bits).
func TestPutReadOnlyDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) }) //nolint:errcheck
	if f, err := os.CreateTemp(dir, ".probe-*"); err == nil {
		f.Close()
		os.Remove(f.Name())
		t.Skip("process writes through a read-only dir (running as root)")
	}

	perr := s.Put(testKey, testRecord(t))
	var oe *OpError
	if !errors.As(perr, &oe) || oe.Op != "put" {
		t.Fatalf("put error = %T %v, want *OpError{Op: put}", perr, perr)
	}
	if c := s.Counters(); c.PutErrors != 1 {
		t.Errorf("PutErrors = %d, want 1", c.PutErrors)
	}
	assertNoTempFiles(t, dir)
}

// TestResilientPutRetries: a one-shot write fault is absorbed by the
// retry budget; the record lands.
func TestResilientPutRetries(t *testing.T) {
	s, _, _, slept := resilientStore(t, "store-write:nth=1", 5, 2)
	if err := s.Put(testKey, testRecord(t)); err != nil {
		t.Fatalf("retried put failed: %v", err)
	}
	if len(*slept) != 1 {
		t.Fatalf("took %d backoffs, want 1", len(*slept))
	}
	if _, ok := s.Get(testKey); !ok {
		t.Fatal("record missing after retried put")
	}
	if c := s.Counters(); c.PutErrors != 1 || c.Puts != 1 {
		t.Errorf("counters = %+v, want 1 put error then 1 put", c)
	}
}

// assertNoTempFiles walks dir and fails on any leftover ".put-" temp
// file: failed writes must clean up after themselves.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && len(d.Name()) > 5 && d.Name()[:5] == ".put-" {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
