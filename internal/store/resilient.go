// Store resilience: transient-error retries with exponential backoff +
// jitter, and a circuit breaker that degrades the disk tier to memo-only
// operation instead of hammering a failing volume (DESIGN.md §12).
//
// The breaker is the classic three-state machine:
//
//	closed ──(FailureThreshold consecutive op failures)──▶ open
//	open ──(OpenFor elapses)──▶ half-open
//	half-open: exactly one op probes the disk; success ▶ closed,
//	           failure ▶ open again (dwell restarts)
//
// While open (or waiting behind the half-open probe), lookups degrade to
// clean misses and persists are skipped with ErrDegraded: jobs keep
// succeeding off the memo tier and re-simulation, nothing is lost but
// warmth. Every degradation, retry, trip, and probe is counted in the
// BreakerSnapshot that /statsz and /healthz surface.
package store

import (
	"errors"
	"sync"
	"time"
)

// Breaker states, as surfaced in BreakerSnapshot.State.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// ErrDegraded is returned (wrapped in *OpError) by Put while the breaker
// is open: the write was skipped, not attempted and failed.
var ErrDegraded = errors.New("circuit breaker open: store degraded to memo-only")

// ResilienceConfig tunes EnableResilience. Zero fields take the defaults
// noted on each; the zero value is a usable production configuration.
type ResilienceConfig struct {
	// FailureThreshold is how many consecutive op failures (each already
	// past its retry budget) trip the breaker. Default 5.
	FailureThreshold int
	// OpenFor is the open-state dwell before a half-open probe. Default 5s.
	OpenFor time.Duration
	// Retries is how many times a failed op is retried before it counts
	// as a failure. Default 2 (three attempts total).
	Retries int
	// RetryBase is the backoff base: attempt k sleeps RetryBase<<k scaled
	// by a uniform jitter in [0.5, 1). Default 10ms.
	RetryBase time.Duration
	// Seed seeds the jitter stream (default 1) — deterministic like every
	// other random stream in this repo.
	Seed int64
	// Sleep and Now are test seams (nil = time.Sleep / time.Now).
	Sleep func(time.Duration)
	Now   func() time.Time
}

func (c *ResilienceConfig) fillDefaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// BreakerSnapshot is a point-in-time view of the resilience layer for
// /statsz and /healthz. Fields are exact individually, not jointly.
type BreakerSnapshot struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	// Trips counts closed/half-open → open transitions.
	Trips int64 `json:"trips"`
	// Probes counts half-open probe attempts.
	Probes int64 `json:"probes"`
	// Retries counts retried op attempts (backoff sleeps taken).
	Retries int64 `json:"retries"`
	// DegradedGets/DegradedPuts count ops shed by an open breaker —
	// lookups degraded to misses, persists skipped.
	DegradedGets int64 `json:"degraded_gets"`
	DegradedPuts int64 `json:"degraded_puts"`
	// LastError is the most recent op failure, for the health report.
	LastError string `json:"last_error,omitempty"`
}

// resilience is the per-Store retry/breaker state. All fields are guarded
// by mu; store ops are per-simulation-cell, so one uncontended mutex per
// op is noise next to the file I/O it wraps.
type resilience struct {
	s   *Store
	cfg ResilienceConfig

	mu       sync.Mutex
	state    string
	consec   int
	openedAt time.Time
	probing  bool
	lastErr  string
	rng      uint64

	trips, probes, retries, degradedGets, degradedPuts int64
}

// EnableResilience wraps the store's Get/Put in the retry + breaker
// layer. Call once, before the store is shared across goroutines. All
// runners (and daemon sweeps) sharing this store share one breaker — the
// disk is one resource, so its health is daemon-wide state.
func (s *Store) EnableResilience(cfg ResilienceConfig) {
	cfg.fillDefaults()
	seed := uint64(cfg.Seed)
	splitmix64store(&seed)
	s.res = &resilience{s: s, cfg: cfg, state: BreakerClosed, rng: seed}
}

// Breaker snapshots the resilience layer, nil when EnableResilience was
// never called.
func (s *Store) Breaker() *BreakerSnapshot {
	if s.res == nil {
		return nil
	}
	r := s.res
	r.mu.Lock()
	defer r.mu.Unlock()
	return &BreakerSnapshot{
		State:               r.state,
		ConsecutiveFailures: r.consec,
		Trips:               r.trips,
		Probes:              r.probes,
		Retries:             r.retries,
		DegradedGets:        r.degradedGets,
		DegradedPuts:        r.degradedPuts,
		LastError:           r.lastErr,
	}
}

// allow decides whether an op may touch the disk right now. probe marks
// the single op allowed through a half-open breaker; its outcome decides
// the next state.
func (r *resilience) allow() (ok, probe bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == BreakerOpen {
		if r.cfg.Now().Sub(r.openedAt) < r.cfg.OpenFor {
			return false, false
		}
		r.state = BreakerHalfOpen
	}
	if r.state == BreakerHalfOpen {
		if r.probing {
			return false, false
		}
		r.probing = true
		r.probes++
		return true, true
	}
	return true, false
}

// outcome folds one op's final result (after retries) into the state
// machine.
func (r *resilience) outcome(err error, probe bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if probe {
		r.probing = false
	}
	if err == nil {
		r.consec = 0
		if r.state == BreakerHalfOpen {
			r.state = BreakerClosed
		}
		return
	}
	r.lastErr = err.Error()
	r.consec++
	if r.state == BreakerHalfOpen || r.consec >= r.cfg.FailureThreshold {
		if r.state != BreakerOpen {
			r.trips++
		}
		r.state = BreakerOpen
		r.openedAt = r.cfg.Now()
		r.consec = 0
		r.probing = false
	}
}

// backoff sleeps attempt k's jittered exponential delay.
func (r *resilience) backoff(attempt int) {
	d := r.cfg.RetryBase << uint(attempt)
	r.mu.Lock()
	r.retries++
	// Full-ish jitter: scale by a uniform factor in [0.5, 1) so retrying
	// workers desynchronize instead of stampeding the disk in lockstep.
	f := 0.5 + 0.5*float64(splitmix64store(&r.rng)>>11)/(1<<53)
	r.mu.Unlock()
	r.cfg.Sleep(time.Duration(float64(d) * f))
}

// lookup is the resilient Get: breaker-gated, transient errors retried,
// failures degraded to clean misses (the caller re-simulates — the memo
// tier and the simulator are the availability story, the disk is only
// warmth).
func (r *resilience) lookup(key string) (Record, bool, error) {
	ok, probe := r.allow()
	if !ok {
		r.mu.Lock()
		r.degradedGets++
		r.mu.Unlock()
		return Record{}, false, nil
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		rec, hit, err := r.s.lookup(key)
		if err == nil {
			r.outcome(nil, probe)
			return rec, hit, nil
		}
		lastErr = err
		if attempt >= r.cfg.Retries {
			break
		}
		r.backoff(attempt)
	}
	r.outcome(lastErr, probe)
	return Record{}, false, nil
}

// put is the resilient Put: breaker-gated, retried; an open breaker skips
// the write with a typed ErrDegraded instead of queueing against a dead
// disk.
func (r *resilience) put(key string, rec Record) error {
	ok, probe := r.allow()
	if !ok {
		r.mu.Lock()
		r.degradedPuts++
		r.mu.Unlock()
		return &OpError{Op: "put", Key: key, Err: ErrDegraded}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := r.s.putCounted(key, rec)
		if err == nil {
			r.outcome(nil, probe)
			return nil
		}
		lastErr = err
		if attempt >= r.cfg.Retries {
			break
		}
		r.backoff(attempt)
	}
	r.outcome(lastErr, probe)
	return lastErr
}

// splitmix64store is the jitter stream's mixer (the same constants as
// internal/serving's RNG; duplicated so store does not import the DES).
func splitmix64store(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
