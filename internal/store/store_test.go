package store

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"duplo/internal/sim"
)

// fillInts walks v and assigns every settable integer field a distinct
// nonzero value, recursing into structs and arrays. Built on reflection so
// a Stats field added later is automatically part of the round-trip
// check — a new field that fails to survive the disk trip breaks
// TestStoreRoundTrip without anyone updating this file.
func fillInts(v reflect.Value, next *int64) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(*next)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		v.SetUint(uint64(*next))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				fillInts(v.Field(i), next)
			}
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillInts(v.Index(i), next)
		}
	}
}

// testRecord builds a Record with every integer field of Stats (and the
// CTA accounting) set to a distinct nonzero value.
func testRecord(t *testing.T) Record {
	t.Helper()
	var rec Record
	var next int64 = 100
	fillInts(reflect.ValueOf(&rec).Elem(), &next)
	if rec.Stats.Cycles == 0 || rec.Stats.LHB.Hits == 0 || rec.Stats.ServiceLines[3] == 0 {
		t.Fatalf("fillInts failed to reach nested fields: %+v", rec)
	}
	return rec
}

const testKey = "ResNet/C2|d=true|e=1024,w=1|..."

// TestStoreRoundTrip pins Result → disk → Result as field-for-field
// identical, including every nested Stats counter.
func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord(t)
	if err := s.Put(testKey, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(testKey)
	if !ok {
		t.Fatal("freshly written record missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", got, want)
	}
	// Rehydration attaches exactly the passed kernel/config.
	cfg := sim.TitanVConfig()
	res := got.Result(nil, cfg)
	if !reflect.DeepEqual(res.Stats, want.Stats) || res.SimulatedCTAs != want.SimulatedCTAs ||
		res.TotalCTAs != want.TotalCTAs || !reflect.DeepEqual(res.Config, cfg) {
		t.Fatalf("rehydrated result mismatch: %+v", res)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 0 || c.Puts != 1 || c.Corruptions != 0 {
		t.Fatalf("counters after round trip: %+v", c)
	}
}

// TestStoreMiss pins the absent-key path: a plain miss, no corruption.
func TestStoreMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("never-written"); ok {
		t.Fatal("hit on an absent key")
	}
	c := s.Counters()
	if c.Misses != 1 || c.Corruptions != 0 || c.Hits != 0 {
		t.Fatalf("counters after cold miss: %+v", c)
	}
}

// corruptionCase damages a stored file in one way and expects detection.
type corruptionCase struct {
	name   string
	damage func(t *testing.T, path string)
}

// TestStoreCorruptionDetected pins the safety property: a truncated or
// bit-flipped record is detected, counted, removed, and reported as a
// miss — never trusted — and the slot heals on the next Put.
func TestStoreCorruptionDetected(t *testing.T) {
	cases := []corruptionCase{
		{"truncated", func(t *testing.T, path string) {
			raw := readFile(t, path)
			writeFile(t, path, raw[:len(raw)/2])
		}},
		{"bit-flipped payload", func(t *testing.T, path string) {
			// Flip a digit inside the payload so the JSON still parses but
			// the checksum no longer matches.
			raw := readFile(t, path)
			i := bytes.Index(raw, []byte(`"Cycles":`))
			if i < 0 {
				t.Fatal("no Cycles field in stored payload")
			}
			raw[i+len(`"Cycles":`)] ^= 0x01 // digit -> different digit
			writeFile(t, path, raw)
		}},
		{"garbage", func(t *testing.T, path string) {
			writeFile(t, path, []byte("not json at all"))
		}},
		{"wrong key", func(t *testing.T, path string) {
			// A syntactically valid record filed under the wrong hash slot
			// (e.g. a botched manual copy) must not be served for this key.
			raw := readFile(t, path)
			writeFile(t, path, bytes.Replace(raw, []byte(testKey), []byte("some-other-key"), 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			rec := testRecord(t)
			if err := s.Put(testKey, rec); err != nil {
				t.Fatal(err)
			}
			path := s.Path(testKey)
			tc.damage(t, path)

			if _, ok := s.Get(testKey); ok {
				t.Fatal("damaged record was trusted")
			}
			c := s.Counters()
			if c.Corruptions != 1 || c.Misses != 1 {
				t.Fatalf("counters after damage: %+v", c)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged file not removed (stat err %v)", err)
			}
			// The slot heals: re-Put (the caller's re-simulation) and re-Get.
			if err := s.Put(testKey, rec); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(testKey)
			if !ok || !reflect.DeepEqual(got, rec) {
				t.Fatalf("slot did not heal after re-put (ok=%v)", ok)
			}
		})
	}
}

// TestStoreVersionSkew pins forward/backward compatibility: a record
// written by a different format version is ignored cleanly — a miss, not
// a corruption, and the file is left in place for the binary that owns it.
func TestStoreVersionSkew(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t)
	if err := s.Put(testKey, rec); err != nil {
		t.Fatal(err)
	}
	// Re-frame the valid record under a bumped version (checksum stays
	// valid, so only the version gate can reject it).
	path := s.Path(testKey)
	var env envelope
	if err := json.Unmarshal(readFile(t, path), &env); err != nil {
		t.Fatal(err)
	}
	env.Version = FormatVersion + 1
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, path, raw)

	if _, ok := s.Get(testKey); ok {
		t.Fatal("version-skewed record was served")
	}
	c := s.Counters()
	if c.VersionSkips != 1 || c.Corruptions != 0 || c.Misses != 1 {
		t.Fatalf("counters after version skew: %+v", c)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("version-skewed file was removed: %v", err)
	}
	// Writing the current version reclaims the slot.
	if err := s.Put(testKey, rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey); !ok {
		t.Fatal("slot not reclaimed after re-put")
	}
}

// TestStorePersistsAcrossOpens pins the whole point: a second Store over
// the same directory (a later process) serves the first one's records.
func TestStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t)
	if err := s1.Put(testKey, rec); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(testKey)
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatalf("record did not survive reopen (ok=%v)", ok)
	}
}

// TestPersistedEncodingTags is the struct-tag consistency gate for the
// persisted Result encoding (alongside `go vet`'s structtag check in CI):
// every exported field of the on-disk types carries an explicit,
// lowercase, unique json tag, so the wire/disk format never silently
// depends on Go identifier spelling.
func TestPersistedEncodingTags(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Record{}),
		reflect.TypeOf(envelope{}),
		reflect.TypeOf(Counters{}),
	} {
		seen := map[string]string{}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() && typ != reflect.TypeOf(envelope{}) {
				continue
			}
			tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if tag == "" || tag == "-" {
				t.Errorf("%s.%s: missing json tag", typ.Name(), f.Name)
				continue
			}
			if tag != strings.ToLower(tag) {
				t.Errorf("%s.%s: json tag %q is not lowercase", typ.Name(), f.Name, tag)
			}
			if prev, dup := seen[tag]; dup {
				t.Errorf("%s: json tag %q reused by %s and %s", typ.Name(), tag, prev, f.Name)
			}
			seen[tag] = f.Name
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func writeFile(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
