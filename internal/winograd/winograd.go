// Package winograd implements the Winograd minimal-filtering convolution
// F(2x2, 3x3) of Lavin & Gray [18], one of the accelerated convolution
// methods the paper compares against (Fig. 2/3).
//
// A 4x4 input tile d and 3x3 filter g are transformed into the Winograd
// domain (V = Bᵀ d B, U = G g Gᵀ), multiplied element-wise, accumulated
// over channels, and inverse-transformed (Y = Aᵀ M A) into a 2x2 output
// tile. The per-tile multiplication count drops from 36 to 16 MACs.
//
// Applicability follows §II-A: 3x3 filters with unit stride only. The
// harness reports N/A for other shapes, reproducing the missing bars of
// Fig. 2/3.
package winograd

import (
	"fmt"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

// Applicable reports whether the Winograd path supports the layer: 3x3
// filter, unit stride (§II-A limitations).
func Applicable(p conv.Params) bool {
	return p.FH == 3 && p.FW == 3 && p.Stride == 1
}

// transformFilter computes U = G g Gᵀ for a 3x3 filter tap matrix g.
//
//	G = | 1    0    0  |
//	    | 1/2  1/2  1/2|
//	    | 1/2 -1/2  1/2|
//	    | 0    0    1  |
func transformFilter(g *[3][3]float32) (u [4][4]float32) {
	// t = G g  (4x3)
	var t [4][3]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[0][c], g[1][c], g[2][c]
		t[0][c] = g0
		t[1][c] = 0.5 * (g0 + g1 + g2)
		t[2][c] = 0.5 * (g0 - g1 + g2)
		t[3][c] = g2
	}
	// u = t Gᵀ (4x4)
	for r := 0; r < 4; r++ {
		g0, g1, g2 := t[r][0], t[r][1], t[r][2]
		u[r][0] = g0
		u[r][1] = 0.5 * (g0 + g1 + g2)
		u[r][2] = 0.5 * (g0 - g1 + g2)
		u[r][3] = g2
	}
	return u
}

// transformInput computes V = Bᵀ d B for a 4x4 input tile d.
//
//	Bᵀ = | 1  0 -1  0 |
//	     | 0  1  1  0 |
//	     | 0 -1  1  0 |
//	     | 0  1  0 -1 |
func transformInput(d *[4][4]float32) (v [4][4]float32) {
	var t [4][4]float32
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[0][c], d[1][c], d[2][c], d[3][c]
		t[0][c] = d0 - d2
		t[1][c] = d1 + d2
		t[2][c] = d2 - d1
		t[3][c] = d1 - d3
	}
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r][0], t[r][1], t[r][2], t[r][3]
		v[r][0] = t0 - t2
		v[r][1] = t1 + t2
		v[r][2] = t2 - t1
		v[r][3] = t1 - t3
	}
	return v
}

// inverseTransform computes Y = Aᵀ m A for a 4x4 Winograd-domain tile.
//
//	Aᵀ = | 1  1  1  0 |
//	     | 0  1 -1 -1 |
func inverseTransform(m *[4][4]float32) (y [2][2]float32) {
	var t [2][4]float32
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[0][c], m[1][c], m[2][c], m[3][c]
		t[0][c] = m0 + m1 + m2
		t[1][c] = m1 - m2 - m3
	}
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r][0], t[r][1], t[r][2], t[r][3]
		y[r][0] = t0 + t1 + t2
		y[r][1] = t1 - t2 - t3
	}
	return y
}

// Conv computes the convolution with F(2x2, 3x3) Winograd tiling. It
// matches conv.Direct within fp32 tolerance for any padding; output tiles
// that extend past the output edge are computed and cropped.
func Conv(p conv.Params, input, filters *tensor.Tensor) (*tensor.Tensor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !Applicable(p) {
		return nil, fmt.Errorf("winograd: inapplicable layer (%dx%d filter, stride %d)", p.FH, p.FW, p.Stride)
	}
	if input.N != p.N || input.H != p.H || input.W != p.W || input.C != p.C {
		return nil, fmt.Errorf("winograd: input shape %s != params", input.ShapeString())
	}
	if filters.N != p.K || filters.H != 3 || filters.W != 3 || filters.C != p.C {
		return nil, fmt.Errorf("winograd: filter shape %s != params", filters.ShapeString())
	}

	oh, ow := p.OutH(), p.OutW()
	out := p.NewOutput()

	// Pre-transform all filters: U[k][c].
	u := make([][][4][4]float32, p.K)
	for k := 0; k < p.K; k++ {
		u[k] = make([][4][4]float32, p.C)
		for c := 0; c < p.C; c++ {
			var g [3][3]float32
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					g[y][x] = filters.At(k, y, x, c)
				}
			}
			u[k][c] = transformFilter(&g)
		}
	}

	tilesY := (oh + 1) / 2
	tilesX := (ow + 1) / 2
	vbuf := make([][4][4]float32, p.C)
	for n := 0; n < p.N; n++ {
		for ty := 0; ty < tilesY; ty++ {
			for tx := 0; tx < tilesX; tx++ {
				// Input tile anchor in padded coordinates.
				iy0 := ty*2 - p.Pad
				ix0 := tx*2 - p.Pad
				for c := 0; c < p.C; c++ {
					var d [4][4]float32
					for y := 0; y < 4; y++ {
						for x := 0; x < 4; x++ {
							d[y][x] = input.AtPadded(n, iy0+y, ix0+x, c)
						}
					}
					vbuf[c] = transformInput(&d)
				}
				for k := 0; k < p.K; k++ {
					var m [4][4]float32
					for c := 0; c < p.C; c++ {
						uk := &u[k][c]
						vc := &vbuf[c]
						for y := 0; y < 4; y++ {
							for x := 0; x < 4; x++ {
								m[y][x] += uk[y][x] * vc[y][x]
							}
						}
					}
					y2 := inverseTransform(&m)
					for dy := 0; dy < 2; dy++ {
						oy := ty*2 + dy
						if oy >= oh {
							continue
						}
						for dx := 0; dx < 2; dx++ {
							ox := tx*2 + dx
							if ox >= ow {
								continue
							}
							out.Set(n, oy, ox, k, y2[dy][dx])
						}
					}
				}
			}
		}
	}
	return out, nil
}

// TransformElems returns the number of Winograd-domain elements the method
// materializes (U, V and M buffers), the quantity behind the Fig. 3 memory
// accounting for the Winograd bars.
func TransformElems(p conv.Params) int64 {
	if !Applicable(p) {
		return 0
	}
	tiles := int64((p.OutH()+1)/2) * int64((p.OutW()+1)/2) * int64(p.N)
	u := int64(p.K) * int64(p.C) * 16
	v := int64(p.C) * tiles * 16
	m := int64(p.K) * tiles * 16
	return u + v + m
}
