package winograd

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

func TestApplicable(t *testing.T) {
	ok := conv.Params{N: 1, H: 8, W: 8, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	if !Applicable(ok) {
		t.Error("3x3 stride 1 should be applicable")
	}
	for _, p := range []conv.Params{
		{N: 1, H: 8, W: 8, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 2},
		{N: 1, H: 8, W: 8, C: 1, K: 1, FH: 5, FW: 5, Pad: 2, Stride: 1},
		{N: 1, H: 8, W: 8, C: 1, K: 1, FH: 7, FW: 7, Pad: 3, Stride: 1},
	} {
		if Applicable(p) {
			t.Errorf("%v should be inapplicable", p)
		}
		if _, err := Conv(p, tensor.New(p.N, p.H, p.W, p.C), tensor.New(p.K, p.FH, p.FW, p.C)); err == nil {
			t.Errorf("%v: Conv should reject inapplicable layer", p)
		}
	}
}

// F(2x2,3x3) on a delta input must reproduce the (flipped-position) filter.
func TestDeltaResponse(t *testing.T) {
	p := conv.Params{N: 1, H: 6, W: 6, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	in := tensor.New(1, 6, 6, 1)
	in.Set(0, 3, 3, 0, 1) // delta at (3,3)
	f := tensor.New(1, 3, 3, 1)
	f.FillSequential() // 0..8
	want, err := conv.Direct(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Conv(p, in, f)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-4 {
		t.Fatalf("delta response differs by %v", d)
	}
}

func TestMatchesDirect(t *testing.T) {
	layers := []conv.Params{
		{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1},
		{N: 2, H: 8, W: 8, C: 4, K: 8, FH: 3, FW: 3, Pad: 1, Stride: 1},
		{N: 1, H: 7, W: 9, C: 3, K: 2, FH: 3, FW: 3, Pad: 1, Stride: 1}, // odd output dims
		{N: 1, H: 5, W: 5, C: 2, K: 2, FH: 3, FW: 3, Pad: 0, Stride: 1}, // 3x3 output (tile crop)
	}
	for _, p := range layers {
		in := tensor.New(p.N, p.H, p.W, p.C)
		in.FillRandom(71, 1)
		f := tensor.New(p.K, 3, 3, p.C)
		f.FillRandom(72, 0.5)
		want, err := conv.Direct(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Conv(p, in, f)
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameShape(want) {
			t.Fatalf("%v: shape %s vs %s", p, got.ShapeString(), want.ShapeString())
		}
		if d := got.RelErr(want); d > 1e-4 {
			t.Errorf("%v: winograd rel err %v", p, d)
		}
	}
}

func TestTransformElems(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 1, Stride: 1}
	// tiles = 2x2=4; U = 16, V = 4*16 = 64, M = 4*16 = 64 -> 144.
	if got := TransformElems(p); got != 144 {
		t.Errorf("TransformElems = %d, want 144", got)
	}
	bad := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 5, FW: 5, Pad: 2, Stride: 1}
	if TransformElems(bad) != 0 {
		t.Error("inapplicable layer should report 0 transform elems")
	}
}

func TestShapeValidation(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 1, FH: 3, FW: 3, Pad: 0, Stride: 1}
	if _, err := Conv(p, tensor.New(1, 5, 4, 1), tensor.New(1, 3, 3, 1)); err == nil {
		t.Error("expected input shape error")
	}
	if _, err := Conv(p, tensor.New(1, 4, 4, 1), tensor.New(2, 3, 3, 1)); err == nil {
		t.Error("expected filter shape error")
	}
}
