package nn

import (
	"math"
	"strings"
	"testing"

	"duplo/internal/conv"
	"duplo/internal/tensor"
)

func smallNet(method ConvMethod) *Network {
	nw := &Network{}
	nw.Add(
		NewConv(conv.Params{K: 8, FH: 3, FW: 3, C: 3, Pad: 1, Stride: 1, N: 1, H: 16, W: 16}, method, 1),
		ReLU{},
		MaxPool{Size: 2},
		NewConv(conv.Params{K: 16, FH: 3, FW: 3, C: 8, Pad: 1, Stride: 1, N: 1, H: 8, W: 8}, method, 2),
		ReLU{},
		GlobalAvgPool{},
		NewDense(16, 10, 3),
		Softmax{},
	)
	return nw
}

func TestNetworkForwardShapes(t *testing.T) {
	nw := smallNet(MethodGEMM)
	in := tensor.New(2, 16, 16, 3)
	in.FillRandom(4, 1)
	out, err := nw.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || out.H != 1 || out.W != 1 || out.C != 10 {
		t.Fatalf("output shape %s", out.ShapeString())
	}
}

func TestSummary(t *testing.T) {
	s, err := smallNet(Auto).Summary(2, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conv 3x3", "maxpool", "dense 16->10", "softmax", "2x1x1x10"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// All convolution backends must produce the same network output within
// numerical tolerance (half precision bounds the tensor-core path).
func TestMethodEquivalence(t *testing.T) {
	in := tensor.New(1, 16, 16, 3)
	in.FillRandom(5, 0.5)
	ref, err := smallNet(MethodDirect).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ConvMethod{MethodGEMM, MethodTensorCore, MethodWinograd, MethodFFT} {
		got, err := smallNet(m).Forward(in)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		tol := 1e-4
		if m == MethodTensorCore {
			tol = 2e-2
		}
		if d := got.MaxAbsDiff(ref); d > tol {
			t.Errorf("%v: network output differs by %v", m, d)
		}
	}
}

func TestSoftmaxDistribution(t *testing.T) {
	in := tensor.New(2, 1, 1, 5)
	in.FillRandom(6, 3)
	out, err := (Softmax{}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		var sum float64
		for c := 0; c < 5; c++ {
			v := out.At(n, 0, 0, c)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("softmax sums to %v", sum)
		}
	}
}

func TestReLUAndLeaky(t *testing.T) {
	in := tensor.FromSlice(1, 1, 1, 4, []float32{-2, -0.5, 0, 3})
	out, _ := (ReLU{}).Forward(in)
	want := []float32{0, 0, 0, 3}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("relu[%d] = %v", i, out.Data[i])
		}
	}
	lout, _ := (LeakyReLU{Alpha: 0.1}).Forward(in)
	lwant := []float32{-0.2, -0.05, 0, 3}
	for i, w := range lwant {
		if math.Abs(float64(lout.Data[i]-w)) > 1e-6 {
			t.Errorf("leaky[%d] = %v, want %v", i, lout.Data[i], w)
		}
	}
	// Input must be left untouched.
	if in.Data[0] != -2 {
		t.Error("activation mutated its input")
	}
}

func TestMaxPool(t *testing.T) {
	in := tensor.FromSlice(1, 2, 2, 1, []float32{1, 5, 3, 2})
	out, err := (MaxPool{Size: 2}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 1 || out.W != 1 || out.Data[0] != 5 {
		t.Fatalf("maxpool = %v", out.Data)
	}
	if _, err := (MaxPool{Size: 4}).Forward(in); err == nil {
		t.Error("oversized pool should fail")
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.FromSlice(1, 2, 2, 1, []float32{1, 2, 3, 6})
	out, err := (GlobalAvgPool{}).Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out.Data[0]-3)) > 1e-6 {
		t.Fatalf("avg = %v", out.Data[0])
	}
}

func TestDenseShapes(t *testing.T) {
	d := NewDense(4, 2, 7)
	in := tensor.New(3, 1, 2, 2)
	in.FillRandom(8, 1)
	out, err := d.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 3 || out.C != 2 {
		t.Fatalf("dense out %s", out.ShapeString())
	}
	bad := tensor.New(1, 1, 1, 3)
	if _, err := d.Forward(bad); err == nil {
		t.Error("feature mismatch should fail")
	}
}

func TestBatchNormIdentityAndAffine(t *testing.T) {
	bn := NewBatchNorm(2)
	in := tensor.New(1, 2, 2, 2)
	in.FillRandom(9, 1)
	out, err := bn.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAbsDiff(in) != 0 {
		t.Error("identity batchnorm changed data")
	}
	bn.Scale[0] = 2
	bn.Shift[1] = 1
	out2, _ := bn.Forward(in)
	if out2.At(0, 0, 0, 0) != 2*in.At(0, 0, 0, 0) {
		t.Error("scale not applied")
	}
	if out2.At(0, 0, 0, 1) != in.At(0, 0, 0, 1)+1 {
		t.Error("shift not applied")
	}
	if _, err := bn.Forward(tensor.New(1, 2, 2, 3)); err == nil {
		t.Error("channel mismatch should fail")
	}
}

func TestConvBias(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 1, K: 2, FH: 1, FW: 1, Pad: 0, Stride: 1}
	l := NewConv(p, MethodDirect, 11)
	l.Bias = []float32{1, -1}
	in := tensor.New(1, 4, 4, 1)
	out, err := l.Forward(in) // zero input: output = bias
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 0, 0, 1) != -1 {
		t.Fatalf("bias not applied: %v %v", out.At(0, 0, 0, 0), out.At(0, 0, 0, 1))
	}
}

func TestTransposedConvLayer(t *testing.T) {
	p := conv.Params{N: 1, H: 4, W: 4, C: 4, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 2}
	l := NewConv(p, MethodGEMM, 12)
	l.Transposed = true
	in := tensor.New(1, 4, 4, 4)
	in.FillRandom(13, 1)
	out, err := l.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 8 || out.W != 8 || out.C != 2 {
		t.Fatalf("transposed out %s", out.ShapeString())
	}
	// Against the scatter reference.
	want, err := conv.Transposed(p, in, l.Filters)
	if err != nil {
		t.Fatal(err)
	}
	if d := out.RelErr(want); d > 1e-4 {
		t.Errorf("transposed layer rel err %v", d)
	}
	// Shape prediction agrees.
	_, oh, ow, oc, err := l.OutShape(1, 4, 4, 4)
	if err != nil || oh != 8 || ow != 8 || oc != 2 {
		t.Errorf("OutShape (%d,%d,%d) err %v", oh, ow, oc, err)
	}
}

func TestInapplicableMethodErrors(t *testing.T) {
	p := conv.Params{N: 1, H: 8, W: 8, C: 2, K: 2, FH: 5, FW: 5, Pad: 2, Stride: 2}
	l := NewConv(p, MethodWinograd, 14)
	in := tensor.New(1, 8, 8, 2)
	if _, err := l.Forward(in); err == nil {
		t.Error("winograd on 5x5 stride 2 should fail")
	}
	l.Method = MethodFFT
	if _, err := l.Forward(in); err == nil {
		t.Error("fft on stride 2 should fail")
	}
}
