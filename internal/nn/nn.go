// Package nn is a small forward-pass neural-network substrate built on the
// convolution kernels of this repository. The paper's Fig. 14 evaluates
// whole networks ("pooling and softmax layers are not shown because they
// account for infinitesimally small fraction of execution time"); this
// package provides those surrounding layers so the examples can run
// realistic end-to-end inference, with the convolution method selectable
// (direct / GEMM / tensor-core GEMM / Winograd / FFT) and cross-validated.
package nn

import (
	"fmt"
	"math"

	"duplo/internal/conv"
	"duplo/internal/fftconv"
	"duplo/internal/lowering"
	"duplo/internal/tensor"
	"duplo/internal/winograd"
)

// ConvMethod selects the convolution implementation for Conv layers.
type ConvMethod int

const (
	// Auto picks tensor-core GEMM (the paper's accelerated baseline).
	Auto ConvMethod = iota
	MethodDirect
	MethodGEMM
	MethodTensorCore
	MethodWinograd
	MethodFFT
)

// String names the method.
func (m ConvMethod) String() string {
	switch m {
	case Auto:
		return "auto"
	case MethodDirect:
		return "direct"
	case MethodGEMM:
		return "gemm"
	case MethodTensorCore:
		return "tensorcore"
	case MethodWinograd:
		return "winograd"
	case MethodFFT:
		return "fft"
	}
	return "?"
}

// Layer is one forward-pass stage.
type Layer interface {
	// Forward consumes the input tensor and produces the output.
	Forward(in *tensor.Tensor) (*tensor.Tensor, error)
	// Name describes the layer for summaries.
	Name() string
	// OutShape predicts the output shape for a given input shape.
	OutShape(n, h, w, c int) (int, int, int, int, error)
}

// Network is an ordered layer list.
type Network struct {
	Layers []Layer
}

// Add appends layers.
func (nw *Network) Add(ls ...Layer) *Network {
	nw.Layers = append(nw.Layers, ls...)
	return nw
}

// Forward runs the whole network.
func (nw *Network) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	x := in
	for i, l := range nw.Layers {
		y, err := l.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		x = y
	}
	return x, nil
}

// Summary lists layers with their output shapes for the given input.
func (nw *Network) Summary(n, h, w, c int) (string, error) {
	out := ""
	for i, l := range nw.Layers {
		var err error
		n, h, w, c, err = l.OutShape(n, h, w, c)
		if err != nil {
			return "", fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		out += fmt.Sprintf("%2d  %-28s -> %dx%dx%dx%d\n", i, l.Name(), n, h, w, c)
	}
	return out, nil
}

// Conv is a convolutional layer (optionally transposed) with a selectable
// backend method.
type Conv struct {
	P          conv.Params
	Filters    *tensor.Tensor
	Bias       []float32 // per output channel, may be nil
	Method     ConvMethod
	Transposed bool
}

// NewConv builds a convolution layer with deterministic He-style random
// weights.
func NewConv(p conv.Params, method ConvMethod, seed int64) *Conv {
	f := tensor.New(p.K, p.FH, p.FW, p.C)
	scale := float32(math.Sqrt(2 / float64(p.FH*p.FW*p.C)))
	f.FillRandom(seed, scale)
	return &Conv{P: p, Filters: f, Method: method}
}

// Name implements Layer.
func (l *Conv) Name() string {
	kind := "conv"
	if l.Transposed {
		kind = "convT"
	}
	return fmt.Sprintf("%s %dx%d s%d p%d %d->%d (%s)",
		kind, l.P.FH, l.P.FW, l.P.Stride, l.P.Pad, l.P.C, l.P.K, l.Method)
}

// OutShape implements Layer.
func (l *Conv) OutShape(n, h, w, c int) (int, int, int, int, error) {
	if c != l.P.C {
		return 0, 0, 0, 0, fmt.Errorf("channel mismatch: %d != %d", c, l.P.C)
	}
	p := l.P
	p.N, p.H, p.W = n, h, w
	if l.Transposed {
		dp := conv.TransposedEquivalentParams(p)
		return n, dp.OutH(), dp.OutW(), p.K, nil
	}
	if err := p.Validate(); err != nil {
		return 0, 0, 0, 0, err
	}
	return n, p.OutH(), p.OutW(), p.K, nil
}

// Forward implements Layer.
func (l *Conv) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	p := l.P
	p.N, p.H, p.W = in.N, in.H, in.W
	var out *tensor.Tensor
	var err error
	if l.Transposed {
		dp, dil, flip, terr := conv.ToDirect(p, in, l.Filters)
		if terr != nil {
			return nil, terr
		}
		out, err = runMethod(l.Method, dp, dil, flip)
	} else {
		out, err = runMethod(l.Method, p, in, l.Filters)
	}
	if err != nil {
		return nil, err
	}
	if l.Bias != nil {
		if len(l.Bias) != out.C {
			return nil, fmt.Errorf("bias length %d != channels %d", len(l.Bias), out.C)
		}
		for i := 0; i < len(out.Data); i += out.C {
			for c := 0; c < out.C; c++ {
				out.Data[i+c] += l.Bias[c]
			}
		}
	}
	return out, nil
}

func runMethod(m ConvMethod, p conv.Params, in, f *tensor.Tensor) (*tensor.Tensor, error) {
	switch m {
	case MethodDirect:
		return conv.Direct(p, in, f)
	case MethodGEMM:
		return lowering.GemmConv(p, in, f)
	case Auto, MethodTensorCore:
		return lowering.TensorCoreConv(p, in, f)
	case MethodWinograd:
		if !winograd.Applicable(p) {
			return nil, fmt.Errorf("winograd inapplicable for %v", p)
		}
		return winograd.Conv(p, in, f)
	case MethodFFT:
		if !fftconv.Applicable(p) {
			return nil, fmt.Errorf("fft inapplicable for %v", p)
		}
		return fftconv.Conv(p, in, f)
	}
	return nil, fmt.Errorf("unknown method %d", m)
}
