package nn

import (
	"fmt"
	"math"

	"duplo/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct{}

// Name implements Layer.
func (ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (ReLU) OutShape(n, h, w, c int) (int, int, int, int, error) { return n, h, w, c, nil }

// Forward implements Layer.
func (ReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// LeakyReLU applies x<0 ? alpha*x : x (YOLO's activation).
type LeakyReLU struct{ Alpha float32 }

// Name implements Layer.
func (l LeakyReLU) Name() string { return fmt.Sprintf("leaky_relu(%.2f)", l.Alpha) }

// OutShape implements Layer.
func (LeakyReLU) OutShape(n, h, w, c int) (int, int, int, int, error) { return n, h, w, c, nil }

// Forward implements Layer.
func (l LeakyReLU) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = l.Alpha * v
		}
	}
	return out, nil
}

// MaxPool downsamples with a Size x Size window and matching stride.
type MaxPool struct{ Size int }

// Name implements Layer.
func (p MaxPool) Name() string { return fmt.Sprintf("maxpool %dx%d", p.Size, p.Size) }

// OutShape implements Layer.
func (p MaxPool) OutShape(n, h, w, c int) (int, int, int, int, error) {
	if p.Size <= 0 || h < p.Size || w < p.Size {
		return 0, 0, 0, 0, fmt.Errorf("maxpool %d on %dx%d", p.Size, h, w)
	}
	return n, h / p.Size, w / p.Size, c, nil
}

// Forward implements Layer.
func (p MaxPool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	_, oh, ow, _, err := p.OutShape(in.N, in.H, in.W, in.C)
	if err != nil {
		return nil, err
	}
	out := tensor.New(in.N, oh, ow, in.C)
	for n := 0; n < in.N; n++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for c := 0; c < in.C; c++ {
					best := float32(math.Inf(-1))
					for dy := 0; dy < p.Size; dy++ {
						for dx := 0; dx < p.Size; dx++ {
							if v := in.At(n, y*p.Size+dy, x*p.Size+dx, c); v > best {
								best = v
							}
						}
					}
					out.Set(n, y, x, c, best)
				}
			}
		}
	}
	return out, nil
}

// GlobalAvgPool reduces each channel plane to its mean (1x1 spatial).
type GlobalAvgPool struct{}

// Name implements Layer.
func (GlobalAvgPool) Name() string { return "global_avg_pool" }

// OutShape implements Layer.
func (GlobalAvgPool) OutShape(n, h, w, c int) (int, int, int, int, error) { return n, 1, 1, c, nil }

// Forward implements Layer.
func (GlobalAvgPool) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(in.N, 1, 1, in.C)
	inv := 1 / float32(in.H*in.W)
	for n := 0; n < in.N; n++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				for c := 0; c < in.C; c++ {
					out.Data[out.Index(n, 0, 0, c)] += in.At(n, y, x, c) * inv
				}
			}
		}
	}
	return out, nil
}

// Dense is a fully connected layer on flattened input (1x1 spatial in and
// out; implemented as a 1x1 convolution would be equivalent, kept separate
// for clarity).
type Dense struct {
	In, Out int
	W       []float32 // Out x In, row-major
	B       []float32 // Out
}

// NewDense builds a dense layer with deterministic random weights.
func NewDense(in, out int, seed int64) *Dense {
	t := tensor.New(1, 1, out, in)
	t.FillRandom(seed, float32(math.Sqrt(2/float64(in))))
	return &Dense{In: in, Out: out, W: t.Data, B: make([]float32, out)}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense %d->%d", d.In, d.Out) }

// OutShape implements Layer.
func (d *Dense) OutShape(n, h, w, c int) (int, int, int, int, error) {
	if h*w*c != d.In {
		return 0, 0, 0, 0, fmt.Errorf("dense expects %d features, got %dx%dx%d", d.In, h, w, c)
	}
	return n, 1, 1, d.Out, nil
}

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	feats := in.H * in.W * in.C
	if feats != d.In {
		return nil, fmt.Errorf("dense expects %d features, got %d", d.In, feats)
	}
	out := tensor.New(in.N, 1, 1, d.Out)
	for n := 0; n < in.N; n++ {
		x := in.Data[n*feats : (n+1)*feats]
		for o := 0; o < d.Out; o++ {
			acc := d.B[o]
			row := d.W[o*d.In : (o+1)*d.In]
			for i, v := range x {
				acc += row[i] * v
			}
			out.Set(n, 0, 0, o, acc)
		}
	}
	return out, nil
}

// Softmax normalizes the channel dimension into a probability distribution
// per (n, y, x) position.
type Softmax struct{}

// Name implements Layer.
func (Softmax) Name() string { return "softmax" }

// OutShape implements Layer.
func (Softmax) OutShape(n, h, w, c int) (int, int, int, int, error) { return n, h, w, c, nil }

// Forward implements Layer.
func (Softmax) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := in.Clone()
	for i := 0; i < len(out.Data); i += out.C {
		seg := out.Data[i : i+out.C]
		max := seg[0]
		for _, v := range seg {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range seg {
			e := math.Exp(float64(v - max))
			seg[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range seg {
			seg[j] *= inv
		}
	}
	return out, nil
}

// BatchNorm applies a frozen (inference-time) per-channel affine
// normalization.
type BatchNorm struct {
	Scale, Shift []float32 // per channel
}

// NewBatchNorm builds an identity batch norm for c channels.
func NewBatchNorm(c int) *BatchNorm {
	s := make([]float32, c)
	for i := range s {
		s[i] = 1
	}
	return &BatchNorm{Scale: s, Shift: make([]float32, c)}
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return fmt.Sprintf("batchnorm(%d)", len(b.Scale)) }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(n, h, w, c int) (int, int, int, int, error) {
	if c != len(b.Scale) {
		return 0, 0, 0, 0, fmt.Errorf("batchnorm channels %d != %d", c, len(b.Scale))
	}
	return n, h, w, c, nil
}

// Forward implements Layer.
func (b *BatchNorm) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.C != len(b.Scale) {
		return nil, fmt.Errorf("batchnorm channels %d != %d", in.C, len(b.Scale))
	}
	out := in.Clone()
	for i := 0; i < len(out.Data); i += out.C {
		for c := 0; c < out.C; c++ {
			out.Data[i+c] = out.Data[i+c]*b.Scale[c] + b.Shift[c]
		}
	}
	return out, nil
}
