package sim

import duplo "duplo/internal/core"

// Arena is a reusable bundle of per-run simulator state: the memory system,
// the per-SM states (L1 arrays, MSHR maps, warp contexts, staging buffers)
// and the per-SM Duplo detection units. A sweep's Nth cell hands the arena
// its (N-1)th cell's buffers back through RunPooledContext instead of
// rebuilding everything — newMemSystem plus SimSMs×newSM plus
// NewDetectionUnit is the dominant allocation of a short run.
//
// Reuse is component-wise: each cached component carries a fits() check
// against the next run's geometry (cache shapes, warp counts, scheduler
// counts, LHB configuration) and is reset in place when it fits or rebuilt
// when it does not, so heterogeneous sweeps (Duplo off/on, different LHB
// geometries, different SM counts) still reuse whatever matches. Detection
// units are cached in their own slots so a Duplo-off cell between two
// Duplo-on cells does not discard them.
//
// Correctness protocol: the arena is marked dirty when a run acquires it
// and clean again only when that run completes without error. A run that
// panics, is cancelled, or trips the watchdog leaves the arena dirty —
// half-mutated state is never reset-and-reused, the next run rebuilds from
// scratch. Every reset() restores its component to a state
// behavior-indistinguishable from freshly constructed; the pooled-vs-fresh
// differential matrix (pool_test.go) asserts byte-identical Results across
// clock modes, SM sharding, and Duplo modes.
//
// An Arena is not safe for concurrent use: at most one Run may hold it at
// a time. The experiments Runner keeps one per worker via sync.Pool.
type Arena struct {
	mem *memSystem
	sms []*smState
	dus []*duplo.DetectionUnit
	// clean reports that the previous run using this arena completed
	// without error, so its components are in a resettable state.
	clean bool
}

// NewArena returns an empty arena; the first run through it builds fresh
// state and caches it.
func NewArena() *Arena { return &Arena{} }

// acquire marks the arena dirty and reports whether its cached components
// may be reused (the previous run completed cleanly).
func (a *Arena) acquire() bool {
	reuse := a.clean
	a.clean = false
	return reuse
}

// fits reports whether the array's geometry matches what newCacheArray
// would build for the given parameters.
func (c *cacheArray) fits(capacityBytes, lineBytes, ways int) bool {
	n := newGeometry(capacityBytes, lineBytes, ways)
	return c.sets == n.sets && c.ways == n.ways && c.lineShift == n.lineShift
}

// reset restores the array to its freshly-built state. Clearing the valid
// bits alone makes every stale entry unreachable — Lookup requires valid,
// and Insert picks invalid ways first and compares lru only among valid
// ones — so tags and lru keep their stale values without any behavioral
// trace. clock restarts so LRU generations match a fresh run exactly.
func (c *cacheArray) reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock = 0
}

// reset re-aims the memory system at a new run's config and stats sink,
// reusing the L2 array when its geometry fits. Returns false when it does
// not (the caller then builds a fresh memSystem).
func (m *memSystem) reset(cfg Config, stats *Stats) bool {
	l2Bytes := int(float64(cfg.L2KB<<10) * cfg.SliceScale())
	if !m.l2.fits(l2Bytes, cfg.LineBytes, cfg.L2Ways) {
		return false
	}
	m.l2.reset()
	bpc := cfg.DRAMBytesPerCycle() * cfg.SliceScale()
	m.cfg = cfg
	m.dramFree = 0
	m.dramCyclesPerLine = float64(cfg.LineBytes) / bpc
	m.dramFrac = 0
	m.stats = stats
	return true
}

// fits reports whether this SM's fixed-size storage (L1 geometry, warp
// slots, scheduler arrays) matches what newSM would build for cfg.
func (sm *smState) fits(cfg Config) bool {
	return sm.cfg.L1KB == cfg.L1KB && sm.cfg.LineBytes == cfg.LineBytes &&
		sm.cfg.Schedulers == cfg.Schedulers && sm.cfg.MaxWarpsPerSM == cfg.MaxWarpsPerSM
}

// reset restores the SM to its newSM state for a new run, keeping every
// backing array: warp slots are deactivated (placeCTA overwrites a slot
// wholesale when it claims one, recycling the regReady/rob arrays exactly
// as it does across CTA waves within a run), the staging buffers are kept
// but detached (serial runs must see a nil stage), and the detection unit
// is detached (the run re-attaches one from the arena when Duplo is on).
func (sm *smState) reset(cfg Config, mem *memSystem, gpu *gpuState) {
	sm.cfg = cfg
	sm.mem = mem
	sm.gpu = gpu
	sm.du = nil
	sm.tr = cfg.Tracer
	sm.l1.reset()
	clear(sm.mshr)
	sm.l1Port = 0
	for i := range sm.pbFree {
		sm.pbFree[i] = 0
	}
	for i := range sm.warps {
		sm.warps[i].active = false
	}
	for i := range sm.liveMask {
		sm.liveMask[i] = 0
	}
	for _, m := range sm.schedLive {
		for i := range m {
			m[i] = 0
		}
	}
	for i := range sm.greedy {
		sm.greedy[i] = -1
	}
	sm.ldstBusy = sm.ldstBusy[:0]
	sm.lhbRelease = sm.lhbRelease[:0]
	clear(sm.ctaWarpsLeft)
	sm.resident = 0
	sm.stage = nil
	if sm.stageCache != nil {
		sm.stageCache.reset()
	}
	sm.buffering = false
	sm.stats = Stats{}
	sm.lineBuf = sm.lineBuf[:0]
}

// reset empties the staging buffers, keeping their backing arrays. After a
// clean run they are already empty (commitStaged truncates them); this
// guards the pooled path against any future early-exit that leaves staged
// state behind.
func (st *smStage) reset() {
	st.ops = st.ops[:0]
	st.lines = st.lines[:0]
	st.deps = st.deps[:0]
	st.ids = st.ids[:0]
	st.pend = st.pend[:0]
	st.events = st.events[:0]
	st.resolved = st.resolved[:0]
}
