package sim

import (
	"runtime"
	"runtime/debug"
	"sync"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// This file implements sharded SM execution: one sim.Run spread across
// goroutines with a two-phase tick that stays byte-identical to the serial
// loop (DESIGN.md §3, "SM sharding").
//
// Per tick:
//
//   - serial pre-phase (dispatcher goroutine): releaseLHB + retire for
//     every SM in ascending order. Retirement is hoisted out of the
//     parallel phase because finishing a CTA calls back into the shared
//     dispatcher (ctaDone -> dispatchTo mutates nextCTA/launchSeq);
//     scheduling never reads that state, so the hoist cannot change
//     results.
//   - phase A (parallel, one goroutine per contiguous SM shard):
//     tickStaged — LDST drain plus scheduling. Everything touched is
//     SM-local; operations that need the shared memory system are recorded
//     into the SM's smStage with placeholder ready times. A warp issues at
//     most once per tick, so a placeholder is never consulted before phase
//     B overwrites it.
//   - phase B (serial): commitStaged for every SM in ascending order
//     replays the staged operations against the shared L2/DRAM in exactly
//     the order the serial loop would have produced them — ascending
//     (smID, op index) — then writes the resolved ready times back into
//     regReady / ROB entries / ldstBusy slots.
//
// The event-driven clock composes: when the barrier reduction says the chip
// issued nothing, the dispatcher min-reduces nextWake over all SMs — the
// same chip-idle-only scan the serial loop does (scanning per shard during
// phase A would waste work on every busy tick where only some shards were
// idle). Chip-idle means nothing was staged this tick, and the previous
// tick's ops are already committed, so nextWake never sees a placeholder.

// smStage is the per-SM staging area of one sharded tick. Slices are arenas
// reset (not freed) every tick; indices into them live in stagedOp.
type smStage struct {
	ops   []stagedOp
	lines []uint64    // line addresses, all ops, in issue order
	deps  []int32     // staged-op indices a load's completion waits on
	ids   []duplo.ID  // row IDs needing SetMeta once the load resolves
	pend  []pendEntry // IDs whose entry meta is stale until phase B
	// resolved[i] is op i's completion cycle, filled during commitStaged
	// (kept here so the backing array is reused across ticks).
	resolved []int64
	// events buffers this SM's phase-A trace events (sm.emit) so phase B
	// can splice the replayed service events into serial capture order.
	events []trace.Event
}

// stagedOp is one deferred memory instruction.
type stagedOp struct {
	isStore bool
	warp    int16 // warp slot (phase-B writeback + service events)
	dst     uint8 // destination register group (loads)
	robIdx  int32 // index of the placeholder ROB entry in warps[warp].rob
	ldstIdx int32 // placeholder slot in ldstBusy; -1 when no memory rows
	// base is the completion lower bound known at stage time: the max over
	// LHB-hit rows of (detection latency, entry meta), excluding rows that
	// depend on a staged op.
	base             int64
	lineOff, lineLen int32 // stage.lines span (line requests, in order)
	depOff, depLen   int32 // stage.deps span
	idOff, idLen     int32 // stage.ids span
	evPos            int32 // stage.events length when the op was staged
}

// pendEntry maps a row ID staged for SetMeta this tick to the staged op
// that will produce its ready cycle. The slice is tiny (live only within
// one tick), so linear scans beat a map.
type pendEntry struct {
	key uint64
	op  int32
}

// pendKey packs an ID for pend lookups.
func pendKey(id duplo.ID) uint64 { return uint64(id.Elem) | uint64(id.Batch)<<32 }

// pendLookup returns the staged op that will set id's entry meta, if any.
func (st *smStage) pendLookup(key uint64) (int32, bool) {
	for i := range st.pend {
		if st.pend[i].key == key {
			return st.pend[i].op, true
		}
	}
	return 0, false
}

// pendSet records (or re-points, when a later op re-allocates the same ID
// after an eviction) the pending meta source of an ID.
func (st *smStage) pendSet(key uint64, op int32) {
	for i := range st.pend {
		if st.pend[i].key == key {
			st.pend[i].op = op
			return
		}
	}
	st.pend = append(st.pend, pendEntry{key: key, op: op})
}

// stageLoad records the deferred half of issueLoad: line requests from
// sm.lineBuf, the dependency span [depLo, len(deps)), the placeholder ROB /
// ldstBusy / regReady writes, and — for tracked loads with memory rows —
// the row IDs whose LHB entry meta phase B must set. Placeholders use
// now+1, which is always a lower bound on the real completion, and a warp
// issues at most once per tick, so nothing reads them before commitStaged
// overwrites them.
func (sm *smState) stageLoad(w *warpCtx, in Instr, now, base int64, tracked bool, seqLo, seqHi uint64, depLo int) {
	st := sm.stage
	op := stagedOp{
		warp:    int16(w.slot),
		dst:     in.Dst,
		robIdx:  int32(len(w.rob)),
		ldstIdx: -1,
		base:    base,
		lineOff: int32(len(st.lines)),
		depOff:  int32(depLo),
		depLen:  int32(len(st.deps) - depLo),
		idOff:   int32(len(st.ids)),
	}
	st.lines = append(st.lines, sm.lineBuf...)
	op.lineLen = int32(len(st.lines)) - op.lineOff
	anyMem := op.lineLen > 0 // a missing row always contributes >= 1 line
	if anyMem {
		op.ldstIdx = int32(len(sm.ldstBusy))
		sm.ldstBusy = append(sm.ldstBusy, now+1)
	}
	w.regReady[in.Dst] = now + 1
	w.robPush(robEntry{complete: now + 1, isTCLoad: tracked, seqLo: seqLo, seqHi: seqHi})
	opIdx := int32(len(st.ops))
	if tracked && anyMem {
		// The serial path would SetMeta every StatusOK row after resolving
		// the miss; record those IDs and mark them pending so later hits
		// this tick wait on this op instead of reading the stale meta.
		for r := 0; r < tileRows; r++ {
			rowAddr := in.Addr + uint64(r)*uint64(in.RowPitch)
			if id, s := sm.du.Gen().IDs(rowAddr); s == duplo.StatusOK {
				st.ids = append(st.ids, id)
				st.pendSet(pendKey(id), opIdx)
			}
		}
	}
	op.idLen = int32(len(st.ids)) - op.idOff
	if sm.tr != nil {
		op.evPos = int32(len(st.events))
	}
	st.ops = append(st.ops, op)
}

// stageStore records the deferred half of issueStore: only the line
// transactions (sm.lineBuf) are shared-state; the completion time is local
// and already applied by the caller.
func (sm *smState) stageStore(now int64) {
	st := sm.stage
	op := stagedOp{
		isStore: true,
		ldstIdx: -1,
		lineOff: int32(len(st.lines)),
	}
	st.lines = append(st.lines, sm.lineBuf...)
	op.lineLen = int32(len(st.lines)) - op.lineOff
	if sm.tr != nil {
		op.evPos = int32(len(st.events))
	}
	st.ops = append(st.ops, op)
}

// commitStaged is phase B for one SM: replay the staged operations against
// the shared memory system in issue order, resolve completion times, and
// write them back. The dispatcher calls it for every SM in ascending order,
// which reproduces the serial loop's memory-system mutation order exactly:
// ascending (cycle, smID, request index).
func (sm *smState) commitStaged(now int64) {
	st := sm.stage
	if len(st.ops) == 0 {
		if len(st.events) > 0 {
			for _, e := range st.events {
				sm.tr.Emit(sm.id, e)
			}
			st.events = st.events[:0]
		}
		return
	}
	if cap(st.resolved) < len(st.ops) {
		st.resolved = make([]int64, len(st.ops))
	}
	resolved := st.resolved[:len(st.ops)]
	evCursor := 0
	for i := range st.ops {
		op := &st.ops[i]
		if sm.tr != nil {
			// Flush the buffered phase-A events that preceded this op
			// (its issue event, LHB-hit rows, earlier stalls) so the
			// replayed service events land in serial capture order.
			for ; evCursor < int(op.evPos); evCursor++ {
				sm.tr.Emit(sm.id, st.events[evCursor])
			}
		}
		lines := st.lines[op.lineOff : op.lineOff+op.lineLen]
		if op.isStore {
			for range lines {
				t := now
				if sm.l1Port > t {
					t = sm.l1Port
				}
				sm.l1Port = t + 1
				sm.stats.L1Accesses++
				sm.mem.writeLine(t)
			}
			continue
		}
		var memReady int64
		for _, line := range lines {
			t := now
			if sm.l1Port > t {
				t = sm.l1Port
			}
			sm.l1Port = t + 1
			ready, src := sm.accessLine(line, t)
			if ready > memReady {
				memReady = ready
			}
			sm.stats.ServiceLines[src]++
			if sm.tr != nil {
				sm.tr.Emit(sm.id, trace.Event{
					Cycle: t, Kind: trace.KindService, Addr: line,
					Level: int8(src), Sched: -1, Warp: op.warp,
				})
			}
		}
		complete := op.base
		for _, d := range st.deps[op.depOff : op.depOff+op.depLen] {
			if resolved[d] > complete {
				complete = resolved[d]
			}
		}
		if memReady > complete {
			complete = memReady
		}
		if complete == 0 {
			complete = now + 1
		}
		resolved[i] = complete
		w := &sm.warps[op.warp]
		w.regReady[op.dst] = complete
		w.rob[op.robIdx].complete = complete
		if op.ldstIdx >= 0 {
			sm.ldstBusy[op.ldstIdx] = complete
		}
		for _, id := range st.ids[op.idOff : op.idOff+op.idLen] {
			// Op-order SetMeta converges to the serial final state even
			// when an ID was evicted and re-allocated within the tick:
			// the last writer matches the serial last writer.
			sm.du.SetMeta(id, complete)
		}
	}
	if sm.tr != nil {
		for ; evCursor < len(st.events); evCursor++ {
			sm.tr.Emit(sm.id, st.events[evCursor])
		}
		st.events = st.events[:0]
	}
	st.ops = st.ops[:0]
	st.lines = st.lines[:0]
	st.deps = st.deps[:0]
	st.ids = st.ids[:0]
	st.pend = st.pend[:0]
}

// shardState carries one shard's phase-A outputs across the barrier. Padded
// so adjacent shards' results do not false-share a cache line.
type shardState struct {
	issued int
	// panicked/stack hold a recovered phase-A panic until the dispatcher
	// converts it after the barrier (shardSafe).
	panicked any
	stack    []byte
	_        [16]byte
}

// shardPhaseA runs phase A for one contiguous shard of SMs: tickStaged per
// SM. The nextWake reduction deliberately does NOT happen here: a shard
// cannot know whether the whole chip issued nothing (the only case the wake
// matters), and scanning wake state for every idle shard on a busy tick is
// pure waste — the serial loop only scans on chip-idle ticks, so the barrier
// does too.
func (g *gpuState) shardPhaseA(sms []*smState, st *shardState, blocked []int, now int64) {
	issued := 0
	for _, sm := range sms {
		iss, blk := sm.tickStaged(now)
		issued += iss
		blocked[sm.id] = blk
	}
	st.issued = issued
}

// shardSafe is shardPhaseA behind a panic barrier: a panic anywhere in a
// shard's tick is captured into its shardState instead of crashing the
// worker goroutine (or, for shard 0 and the inline path, unwinding the
// dispatcher mid-tick); the dispatcher converts it into a *SimError right
// after the barrier, when every shard is quiescent and the state is safe
// to dump.
func (g *gpuState) shardSafe(sms []*smState, st *shardState, blocked []int, now int64) {
	defer func() {
		if r := recover(); r != nil {
			st.panicked = r
			st.stack = debug.Stack()
		}
	}()
	g.shardPhaseA(sms, st, blocked, now)
}

// runShardedLoop is the parallel cycle loop (Config.SMWorkers > 1): the
// two-phase tick documented at the top of this file, with persistent worker
// goroutines fed through one channel each (the channel send and the
// WaitGroup establish the happens-before edges between the phases).
//
// On a single-processor runtime (GOMAXPROCS == 1) the shards run inline on
// this goroutine instead: shard execution is mutually independent, so the
// computation — and therefore the Result — is identical either way, and
// goroutines would only add a per-tick handoff that a lone processor pays
// for in context switches without any wall-clock return.
func (g *gpuState) runShardedLoop(workers int) (int64, error) {
	n := len(g.sms)
	for _, sm := range g.sms {
		if sm.stageCache == nil {
			sm.stageCache = &smStage{}
		}
		sm.stage = sm.stageCache
	}
	shardSize := (n + workers - 1) / workers
	var shards [][]*smState
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		shards = append(shards, g.sms[lo:hi])
	}
	states := make([]shardState, len(shards))
	blocked := make([]int, n) // per-SM ldst-blocked schedulers this tick
	spawn := runtime.GOMAXPROCS(0) > 1 && len(shards) > 1
	var wg sync.WaitGroup
	ticks := make([]chan int64, len(shards))
	if spawn {
		for i := 1; i < len(shards); i++ {
			ch := make(chan int64, 1)
			ticks[i] = ch
			go func(sms []*smState, st *shardState, ch chan int64) {
				for now := range ch {
					g.shardSafe(sms, st, blocked, now)
					wg.Done()
				}
			}(shards[i], &states[i], ch)
		}
		defer func() {
			for i := 1; i < len(shards); i++ {
				close(ticks[i])
			}
		}()
	}

	// Phase B placement: commitStaged(t) only has to run after every shard's
	// phase A of tick t and before the same SM's retirement and scheduling
	// at t+1 — nothing in between reads the staged state. Folding it into
	// the next tick's serial pre-phase saves a third pass over all SM state
	// per tick (a measurable locality win). The exception is tracing: the
	// skipped-span event accountSkip emits between ticks must land after
	// tick t's spliced events in capture order, so traced runs commit
	// eagerly at the barrier instead. Results are identical either way;
	// only event capture order is at stake.
	tracing := g.cfg.Tracer != nil
	var now, stagedAt int64
	for {
		g.now = now
		// Serial pre-phase, in ascending SM order (the order the serial
		// loop interleaves the shared mutations in): committed staged ops
		// of the previous tick, then retirement, CTA completion and
		// backfill dispatch at `now`.
		busy := false
		for _, sm := range g.sms {
			if !tracing {
				sm.commitStaged(stagedAt)
			}
			sm.releaseLHB(now)
			sm.retire(now)
			if sm.busy() {
				busy = true
			}
		}
		// Phase A: parallel scheduling, shard 0 inline on this goroutine.
		if spawn {
			wg.Add(len(shards) - 1)
			for i := 1; i < len(shards); i++ {
				ticks[i] <- now
			}
			g.shardSafe(shards[0], &states[0], blocked, now)
			wg.Wait()
		} else {
			for i := range shards {
				g.shardSafe(shards[i], &states[i], blocked, now)
			}
		}
		issued := 0
		for i := range states {
			issued += states[i].issued
		}
		// Contain shard panics after the barrier, lowest shard first
		// (deterministic when several shards fail the same tick). Every
		// goroutine is quiescent here, so the dump reads a stable state.
		for i := range states {
			if p := states[i].panicked; p != nil {
				return 0, g.containPanic(p, states[i].stack)
			}
		}
		if tracing {
			// Eager phase B: canonical-order service of the staged ops,
			// before accountSkip can emit a span event.
			for _, sm := range g.sms {
				sm.commitStaged(now)
			}
		}
		stagedAt = now
		if !busy && g.nextCTA >= g.totalCTAs {
			// No active warps this tick, so phase A staged nothing; any
			// deferred ops were committed in the pre-phase above.
			break
		}
		if issued == 0 && !g.cfg.DenseClock {
			// Chip-idle tick: nothing was staged anywhere (issues are the
			// only source of staged ops) and the previous tick's ops were
			// committed above, so nextWake reads exactly the state the
			// serial loop would — no placeholders exist to mislead it.
			wake := farFuture
			for _, sm := range g.sms {
				if w := sm.nextWake(now); w < wake {
					wake = w
				}
			}
			now = g.accountSkip(now, wake, blocked)
		}
		now++
		if err := g.checkGuard(now, issued); err != nil {
			return 0, err
		}
	}
	return now, nil
}
