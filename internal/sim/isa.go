package sim

import "fmt"

// Op is the warp-level instruction kind of the tensor-core GEMM kernel.
type Op uint8

const (
	// OpLoadA is a wmma.load.a fetching a 16x16 half tile of the workspace
	// matrix A from global memory — the instruction class Duplo filters.
	OpLoadA Op = iota
	// OpLoadB is a wmma.load.b fetching a 16x16 half tile of the filter
	// matrix B (outside the workspace region; always bypasses the LHB).
	OpLoadB
	// OpMMA is a warp-level wmma.mma 16x16x16 step on the tensor cores.
	OpMMA
	// OpStoreD writes a 16x16 fp32 tile of D to global memory.
	OpStoreD
)

// String names the op like PTX.
func (o Op) String() string {
	switch o {
	case OpLoadA:
		return "wmma.load.a"
	case OpLoadB:
		return "wmma.load.b"
	case OpMMA:
		return "wmma.mma"
	case OpStoreD:
		return "wmma.store.d"
	}
	return "?"
}

// Instr is one decoded warp instruction. Register operands identify
// register groups within the warp (a wmma fragment = 8 registers/thread,
// tracked as one group, §IV-C).
type Instr struct {
	Op   Op
	Dst  uint8 // destination register group (loads, MMA accumulator)
	SrcA uint8 // MMA: A fragment group
	SrcB uint8 // MMA: B fragment group
	// Memory geometry (loads/stores): a 16-row tile starting at Addr with
	// RowBytes bytes per row segment and RowPitch bytes between rows.
	Addr     uint64
	RowPitch uint32
	RowBytes uint16
}

const tileRows = 16

// relocateInstr rebases a canonical-program instruction to a warp's
// absolute tile origin (kernel.warpOffsets). MMA steps carry no address
// and pass through untouched.
func relocateInstr(in *Instr, aOff, bOff, dOff uint64) {
	switch in.Op {
	case OpLoadA:
		in.Addr += aOff
	case OpLoadB:
		in.Addr += bOff
	case OpStoreD:
		in.Addr += dOff
	}
}

// warpProgram synthesizes a warp's instruction stream lazily: programs for
// large layers reach millions of instructions per CTA wave, so they are
// decoded on demand from the loop structure instead of materialized.
//
// The stream mirrors the §II-C baseline kernel (only C staged in shared
// memory): for every 16-deep k-step, each of the warp's A row tiles and B
// column tiles is loaded TWICE (the octet duplication of §II-B: "each half
// of input matrices A and B are loaded twice by different octets"),
// followed by the rt x ct MMA steps; after the k-loop the accumulators are
// stored to D.
type warpProgram struct {
	k       *Kernel
	work    warpWork
	ktiles  int
	rt, ct  int
	blockLn int // instructions per k-step
	total   int
}

func newWarpProgram(k *Kernel, work warpWork) *warpProgram {
	rt, ct := len(work.rowTiles), len(work.colTiles)
	p := &warpProgram{
		k:      k,
		work:   work,
		ktiles: k.KTiles(),
		rt:     rt,
		ct:     ct,
	}
	if rt == 0 || ct == 0 {
		return p // empty program
	}
	p.blockLn = 2*rt + 2*ct + rt*ct
	p.total = p.ktiles*p.blockLn + rt*ct
	return p
}

// Len returns the instruction count.
func (p *warpProgram) Len() int { return p.total }

// RegGroups returns the number of register groups the warp uses
// (2rt A copies + 2ct B copies + rt*ct accumulators).
func (p *warpProgram) RegGroups() int { return 2*p.rt + 2*p.ct + p.rt*p.ct }

// regA returns the register group of A tile a, copy c.
func (p *warpProgram) regA(a, c int) uint8 { return uint8(a*2 + c) }

// regB returns the register group of B tile b, copy c.
func (p *warpProgram) regB(b, c int) uint8 { return uint8(2*p.rt + b*2 + c) }

// regAcc returns the accumulator group of tile (a, b).
func (p *warpProgram) regAcc(a, b int) uint8 { return uint8(2*p.rt + 2*p.ct + a*p.ct + b) }

// At decodes instruction i. An out-of-range index is an internal
// consistency failure (a corrupted pc); it panics with a structured
// *SimError that the run loop's containment (gpu.go/shard.go) converts
// into an error with a crash dump instead of killing the process.
func (p *warpProgram) At(i int) Instr {
	if i < 0 || i >= p.total {
		panic(&SimError{
			Phase:  PhaseProgram,
			Reason: fmt.Sprintf("warp program index %d out of range [0,%d)", i, p.total),
		})
	}
	k := p.k
	if i < p.ktiles*p.blockLn {
		kt := i / p.blockLn
		j := i % p.blockLn
		switch {
		case j < 2*p.rt: // A loads (two copies per row tile)
			a, c := j/2, j%2
			row := p.work.rowTiles[a]
			return Instr{
				Op:       OpLoadA,
				Dst:      p.regA(a, c),
				Addr:     k.ABase + uint64(row*k.KPad+kt*16)*uint64(k.ElemSize),
				RowPitch: uint32(k.KPad * k.ElemSize),
				RowBytes: uint16(16 * k.ElemSize),
			}
		case j < 2*p.rt+2*p.ct: // B loads (two copies per column tile)
			jj := j - 2*p.rt
			b, c := jj/2, jj%2
			col := p.work.colTiles[b]
			return Instr{
				Op:       OpLoadB,
				Dst:      p.regB(b, c),
				Addr:     k.BBase + uint64(kt*16*k.NPad+col)*uint64(k.ElemSize),
				RowPitch: uint32(k.NPad * k.ElemSize),
				RowBytes: uint16(16 * k.ElemSize),
			}
		default: // MMA steps
			m := j - 2*p.rt - 2*p.ct
			a, b := m/p.ct, m%p.ct
			// Octet pairing: the left column half consumes A copy 0, the
			// right half copy 1; the top row half consumes B copy 0, the
			// bottom half copy 1 (§II-B, Fig. 4).
			ac := 0
			if b >= (p.ct+1)/2 {
				ac = 1
			}
			bc := 0
			if a >= (p.rt+1)/2 {
				bc = 1
			}
			return Instr{
				Op:   OpMMA,
				Dst:  p.regAcc(a, b),
				SrcA: p.regA(a, ac),
				SrcB: p.regB(b, bc),
			}
		}
	}
	// Epilogue stores.
	m := i - p.ktiles*p.blockLn
	a, b := m/p.ct, m%p.ct
	row, col := p.work.rowTiles[a], p.work.colTiles[b]
	return Instr{
		Op:       OpStoreD,
		SrcA:     p.regAcc(a, b),
		Addr:     k.DBase + uint64(row*k.NPad+col)*uint64(k.DElemSize),
		RowPitch: uint32(k.NPad * k.DElemSize),
		RowBytes: uint16(16 * k.DElemSize),
	}
}

// lineSpan appends the distinct cache-line addresses a tile memory
// operation touches to dst and returns it. Segments of RowBytes at
// RowPitch intervals are decomposed into lineBytes-aligned lines.
func lineSpan(dst []uint64, in Instr, lineBytes int) []uint64 {
	lb := uint64(lineBytes)
	for r := 0; r < tileRows; r++ {
		seg := in.Addr + uint64(r)*uint64(in.RowPitch)
		first := seg &^ (lb - 1)
		last := (seg + uint64(in.RowBytes) - 1) &^ (lb - 1)
		for line := first; line <= last; line += lb {
			dup := false
			for _, v := range dst {
				if v == line {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, line)
			}
		}
	}
	return dst
}
