package sim

import (
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
)

// runBoth simulates the test layer baseline and Duplo.
func runBoth(t *testing.T, p conv.Params, lhb duplo.LHBConfig) (Result, Result) {
	t.Helper()
	k, err := NewConvKernel("inv", p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	base, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duplo = true
	cfg.DetectCfg.LHB = lhb
	dup, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return base, dup
}

// Accounting invariants that must hold for any run.
func checkInvariants(t *testing.T, r Result, duploOn bool) {
	t.Helper()
	if r.L1Hits > r.L1Accesses {
		t.Errorf("L1 hits %d > accesses %d", r.L1Hits, r.L1Accesses)
	}
	if r.L2Hits > r.L2Accesses {
		t.Errorf("L2 hits %d > accesses %d", r.L2Hits, r.L2Accesses)
	}
	// Every L2 miss transfers exactly one line from DRAM.
	if r.DRAMLines != r.L2Accesses-r.L2Hits {
		t.Errorf("DRAM lines %d != L2 misses %d", r.DRAMLines, r.L2Accesses-r.L2Hits)
	}
	// DRAM-served lines in the breakdown equal DRAM transfers.
	if r.ServiceLines[ServiceDRAM] != r.DRAMLines {
		t.Errorf("service DRAM %d != DRAM lines %d", r.ServiceLines[ServiceDRAM], r.DRAMLines)
	}
	// Eliminated loads never exceed LHB hits, and both are zero without
	// Duplo.
	if !duploOn && (r.LoadsEliminated != 0 || r.LHB.Hits != 0) {
		t.Error("baseline produced Duplo activity")
	}
	if duploOn && r.LoadsEliminated != int64(r.LHB.Hits) {
		t.Errorf("eliminated %d != LHB hits %d", r.LoadsEliminated, r.LHB.Hits)
	}
	if r.LHB.Hits+r.LHB.Misses != r.LHB.Lookups {
		t.Errorf("LHB hits+misses %d != lookups %d", r.LHB.Hits+r.LHB.Misses, r.LHB.Lookups)
	}
	// Row loads are 16 per warp-level wmma.load.
	if r.TensorLoads%16 != 0 {
		t.Errorf("tensor loads %d not a multiple of 16 rows", r.TensorLoads)
	}
	if r.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestAccountingInvariants(t *testing.T) {
	layers := []conv.Params{
		testLayer,
		{N: 1, H: 12, W: 12, C: 4, K: 8, FH: 3, FW: 3, Pad: 0, Stride: 2},
		{N: 2, H: 8, W: 8, C: 8, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 2},
	}
	for _, p := range layers {
		base, dup := runBoth(t, p, duplo.DefaultLHBConfig())
		checkInvariants(t, base, false)
		checkInvariants(t, dup, true)
		// The two runs execute identical work.
		if base.Instructions != dup.Instructions {
			t.Errorf("%v: instruction counts differ %d vs %d", p, base.Instructions, dup.Instructions)
		}
	}
}

// Determinism: repeated runs are bit-identical (no map-iteration or
// time-dependent behavior in the model).
func TestDeterminism(t *testing.T) {
	k, _ := NewConvKernel("det", testLayer)
	cfg := testConfig()
	cfg.Duplo = true
	a, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.LHB != b.LHB || a.DRAMLines != b.DRAMLines ||
		a.L1Accesses != b.L1Accesses || a.ServiceLines != b.ServiceLines {
		t.Fatalf("nondeterministic simulation:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
}

// The detection-latency knob must cost performance, not help it.
func TestDetectionLatencyMonotone(t *testing.T) {
	k, _ := NewConvKernel("lat", testLayer)
	cfg := testConfig()
	cfg.Duplo = true
	cfg.DetectCfg.LatencyCycles = 2
	fast, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DetectCfg.LatencyCycles = 12 // exaggerated to make the effect visible
	slow, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles < fast.Cycles {
		t.Errorf("higher detection latency ran faster: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

// Never-evict oracle must dominate the retire-evicting oracle in hit rate.
func TestEvictionPolicyOrdering(t *testing.T) {
	_, retire := runBoth(t, testLayer, duplo.LHBConfig{Oracle: true})
	_, never := runBoth(t, testLayer, duplo.LHBConfig{Oracle: true, NeverEvict: true})
	if never.LHBHitRate() < retire.LHBHitRate() {
		t.Errorf("never-evict %v < retire-evict %v", never.LHBHitRate(), retire.LHBHitRate())
	}
	// And the never-evict hit rate must respect the analytic duplication
	// ceiling: hits <= duplicate fraction of workspace-row lookups.
	if never.LHBHitRate() > 1 {
		t.Error("hit rate > 1")
	}
}

// Shared-memory variants must expose CTA concurrency 1, 2, 3 (the §II-C
// setup) and every variant must simulate to completion. The performance
// ordering itself is workload-dependent (TLP only pays off when latency
// bound); the smem ablation experiment evaluates it at scale.
func TestSharedVariantConcurrency(t *testing.T) {
	cfg := testConfig()
	want := map[SharedVariant]int{SharedABC: 1, SharedAC: 2, SharedCOnly: 3}
	for v, n := range want {
		k, _ := NewConvKernel("smem", testLayer)
		k.Variant = v
		if got := k.CTAsPerSM(cfg); got != n {
			t.Errorf("%v: CTAs/SM %d, want %d", v, got, n)
		}
		if _, err := Run(cfg, k); err != nil {
			t.Errorf("%v: %v", v, err)
		}
	}
}

// Batch growth must not increase the per-CTA improvement for a fixed LHB
// (the §V-F trend) on a duplication-rich layer... at minimum, the sim must
// run and produce monotone workspace sizes.
func TestBatchScaling(t *testing.T) {
	p8 := testLayer
	p32 := testLayer.WithBatch(testLayer.N * 4)
	k8, _ := NewConvKernel("b8", p8)
	k32, _ := NewConvKernel("b32", p32)
	if k32.M != 4*k8.M {
		t.Fatalf("batch scaling broken: M %d vs %d", k32.M, k8.M)
	}
	if k32.TotalCTAs() < k8.TotalCTAs() {
		t.Fatal("CTA count must grow with batch")
	}
}
