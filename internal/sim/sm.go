package sim

import (
	"math/bits"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// lhbReleaseEvt schedules the release of a retired load's LHB entries.
type lhbReleaseEvt struct {
	at    int64
	seqLo uint64
	seqHi uint64
}

// robEntry tracks one in-flight instruction for in-order retirement. For
// tensor-core loads, [seqLo, seqHi) is the range of detection-unit sequence
// numbers of the instruction's row-vector loads (each wmma.load macro-op
// issues 16 row loads, §II-B: "a tensor-core-load instruction fetches 16
// half-precision data, e.g. a row of matrix A").
type robEntry struct {
	complete int64
	isTCLoad bool
	seqLo    uint64
	seqHi    uint64
}

// warpCtx is the execution state of one warp slot. prog is the kernel's
// shared canonical program for this warp's tile shape; aOff/bOff/dOff
// relocate its addresses to the warp's absolute tile origin at decode time
// (kernel.warpOffsets), which is what lets every same-shape warp of every
// CTA share one immutable program.
type warpCtx struct {
	active           bool
	prog             *warpProgram
	aOff, bOff, dOff uint64
	pc               int
	cur              Instr // decoded prog.At(pc), relocated
	curOK            bool
	slot             int // SM warp slot (detection-unit warp id)
	cta              int // resident-CTA index on this SM
	age              int64
	regReady         []int64
	rob              []robEntry
	robHead          int
}

func (w *warpCtx) decode() {
	if !w.curOK && w.pc < w.prog.Len() {
		w.cur = w.prog.At(w.pc)
		relocateInstr(&w.cur, w.aOff, w.bOff, w.dOff)
		w.curOK = true
	}
}

func (w *warpCtx) advance() {
	w.pc++
	w.curOK = false
}

func (w *warpCtx) robPush(e robEntry) { w.rob = append(w.rob, e) }

func (w *warpCtx) robEmpty() bool { return w.robHead >= len(w.rob) }

func (w *warpCtx) finished() bool {
	return w.pc >= w.prog.Len() && w.robEmpty()
}

// smState models one streaming multiprocessor: warp slots, GTO schedulers,
// tensor-core processing blocks, the LDST unit with its L1, and (optionally)
// the Duplo detection unit.
type smState struct {
	cfg  Config
	id   int
	mem  *memSystem
	gpu  *gpuState
	du   *duplo.DetectionUnit
	tr   trace.Tracer // nil unless Config.Tracer is set
	l1   *cacheArray
	mshr map[uint64]int64 // lineAddr -> fill cycle

	l1Port int64   // next free L1 tag-port cycle (1 line/cycle)
	pbFree []int64 // per-scheduler processing-block (tensor core) free cycle

	warps []warpCtx
	// liveMask mirrors warps[s].active as a bitset (bit s of word s/64) so
	// the per-cycle scans (retire, nextWake) touch only live slots instead
	// of walking all MaxWarpsPerSM entries. schedLive is the same scoreboard
	// folded per scheduler: bit k of schedLive[sid] covers slot sid +
	// k*Schedulers, which keeps scheduleOne's strided oldest-first scan in
	// its original slot order. Both are maintained exclusively by
	// activateSlot/deactivateSlot.
	liveMask  []uint64
	schedLive [][]uint64
	greedy    []int // per-scheduler greedy warp slot (GTO)
	ldstBusy  []int64

	// lhbRelease is a FIFO of pending LHB entry releases: a retired load's
	// entries are released RetireDelay cycles after the instruction pops
	// from the ROB (the modeled register lifetime; release times are
	// monotone because pops are).
	lhbRelease []lhbReleaseEvt

	ctaWarpsLeft map[int]int // resident CTA -> unfinished warps
	resident     int

	// stage is non-nil only in sharded mode (Config.SMWorkers > 1): memory
	// operations scheduled during the parallel phase A are recorded here
	// and replayed against the shared memory system in canonical order by
	// commitStaged (phase B; see shard.go and DESIGN.md §3 "SM sharding").
	stage *smStage
	// stageCache retains the staging buffers across pooled runs: the
	// sharded loop attaches it as stage, and the arena reset detaches
	// stage again (issueLoad uses stage != nil to mean "sharded mode", so
	// a pooled serial run must not see a stale pointer).
	stageCache *smStage
	// buffering redirects emit into stage.events during phase A so phase B
	// can splice replayed service events into serial capture order.
	buffering bool

	stats   Stats
	lineBuf []uint64
}

func newSM(cfg Config, id int, mem *memSystem, gpu *gpuState) *smState {
	sm := &smState{
		cfg:          cfg,
		id:           id,
		mem:          mem,
		gpu:          gpu,
		tr:           cfg.Tracer,
		l1:           newCacheArray(cfg.L1KB<<10, cfg.LineBytes, 8),
		mshr:         make(map[uint64]int64),
		pbFree:       make([]int64, cfg.Schedulers),
		warps:        make([]warpCtx, cfg.MaxWarpsPerSM),
		greedy:       make([]int, cfg.Schedulers),
		ctaWarpsLeft: make(map[int]int),
		lineBuf:      make([]uint64, 0, 64),
	}
	sm.liveMask = make([]uint64, (len(sm.warps)+63)/64)
	sm.schedLive = make([][]uint64, cfg.Schedulers)
	perSched := (len(sm.warps) + cfg.Schedulers - 1) / cfg.Schedulers
	for i := range sm.schedLive {
		sm.schedLive[i] = make([]uint64, (perSched+63)/64)
	}
	for i := range sm.greedy {
		sm.greedy[i] = -1
	}
	return sm
}

// activateSlot marks warp slot s live in both scoreboards (warps[s].active
// is set by the caller's slot initialization).
func (sm *smState) activateSlot(s int) {
	sm.liveMask[s>>6] |= 1 << uint(s&63)
	k := s / sm.cfg.Schedulers
	sm.schedLive[s%sm.cfg.Schedulers][k>>6] |= 1 << uint(k&63)
}

// deactivateSlot retires warp slot s from both scoreboards.
func (sm *smState) deactivateSlot(s int) {
	sm.warps[s].active = false
	sm.liveMask[s>>6] &^= 1 << uint(s&63)
	k := s / sm.cfg.Schedulers
	sm.schedLive[s%sm.cfg.Schedulers][k>>6] &^= 1 << uint(k&63)
}

// placeCTA installs a CTA's warps into free slots. Caller guarantees
// capacity (warpsPerCTA free slots). Warps share the kernel's memoized
// canonical program for their tile shape; only the per-warp address
// offsets and the recycled regReady/rob backing arrays are written.
func (sm *smState) placeCTA(k *Kernel, cta int, launchSeq int64) {
	live := 0
	for w := 0; w < warpsPerCTA; w++ {
		rt, ct, firstRow, firstCol := k.warpShape(cta, w)
		if rt == 0 || ct == 0 {
			continue // edge warp with no tiles
		}
		prog := k.program(rt, ct)
		aOff, bOff, dOff := k.warpOffsets(firstRow, firstCol)
		// Find a free slot.
		for s := range sm.warps {
			if sm.warps[s].active {
				continue
			}
			wc := &sm.warps[s]
			// Recycle the slot's regReady backing array across CTA waves
			// (the rob backing array is recycled the same way below).
			rr := wc.regReady
			if cap(rr) < prog.RegGroups() {
				rr = make([]int64, prog.RegGroups())
			} else {
				rr = rr[:prog.RegGroups()]
				for i := range rr {
					rr[i] = 0
				}
			}
			*wc = warpCtx{
				active:   true,
				prog:     prog,
				aOff:     aOff,
				bOff:     bOff,
				dOff:     dOff,
				slot:     s,
				cta:      cta,
				age:      launchSeq*int64(warpsPerCTA) + int64(w),
				regReady: rr,
				rob:      wc.rob[:0],
			}
			sm.activateSlot(s)
			live++
			break
		}
	}
	if live == 0 {
		// Degenerate CTA (fully out of range): nothing resident.
		return
	}
	sm.ctaWarpsLeft[cta] = live
	sm.resident++
}

// tick advances the SM by one cycle on the serial path. It returns how many
// instructions issued and how many schedulers stalled on a full LDST queue
// this cycle; the dispatcher uses both to decide whether the chip is dead at
// `now` and, if so, to account the skipped span's stall counters
// arithmetically.
func (sm *smState) tick(now int64) (issued, ldstBlocked int) {
	sm.releaseLHB(now)
	sm.retire(now)
	return sm.schedule(now)
}

// tickStaged is the sharded-mode phase A of a tick: the retirement half
// (releaseLHB + retire) already ran in the dispatcher's serial pre-phase,
// and scheduling runs here with memory operations staged instead of applied
// (sm.stage is non-nil). Trace events are buffered so commitStaged can
// splice the replayed service events into serial capture order.
func (sm *smState) tickStaged(now int64) (issued, ldstBlocked int) {
	sm.buffering = sm.tr != nil
	issued, ldstBlocked = sm.schedule(now)
	sm.buffering = false
	return issued, ldstBlocked
}

// schedule runs the issue half of a tick: LDST queue drain, then one
// scheduling attempt per warp scheduler.
func (sm *smState) schedule(now int64) (issued, ldstBlocked int) {
	sm.drainLDST(now)
	for sid := 0; sid < sm.cfg.Schedulers; sid++ {
		ok, blocked := sm.scheduleOne(sid, now)
		if ok {
			issued++
		} else if blocked {
			ldstBlocked++
		}
	}
	if sm.tr != nil && issued < sm.cfg.Schedulers {
		// Every non-issuing scheduler counted one IssueStallCycle this
		// tick (scheduleOne); fold them into a single stall event.
		sm.emit(trace.Event{
			Cycle: now, Kind: trace.KindStall,
			A: int64(sm.cfg.Schedulers - issued), B: int64(ldstBlocked),
			Sched: -1, Warp: -1,
		})
	}
	return issued, ldstBlocked
}

// emit routes a pipeline event to the tracer. During a sharded phase A
// (buffering set) events are captured into the staging buffer instead, and
// commitStaged forwards them in serial capture order. Callers guard with
// sm.tr != nil.
func (sm *smState) emit(e trace.Event) {
	if sm.buffering {
		sm.stage.events = append(sm.stage.events, e)
		return
	}
	sm.tr.Emit(sm.id, e)
}

// retire pops completed instructions in program order per warp. Retired
// tensor-core-loads schedule their LHB entry releases RetireDelay cycles
// later: with the warp-register renaming of [15], a destination register
// group stays valid well past instruction completion, until the rename pool
// reclaims it; RetireDelay is the calibrated model of that reuse window
// (§V-C governs the hit-rate ceiling through it).
func (sm *smState) retire(now int64) {
	delay := int64(sm.cfg.RetireDelay)
	for wi, word := range sm.liveMask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			s := wi<<6 + b
			w := &sm.warps[s]
			sm.retireWarp(w, s, now, delay)
		}
	}
}

// retireWarp pops warp s's completed ROB entries and releases its slot once
// the program has drained (the per-warp body of retire; s is always live).
func (sm *smState) retireWarp(w *warpCtx, s int, now, delay int64) {
	for !w.robEmpty() {
		e := &w.rob[w.robHead]
		if e.complete > now {
			break
		}
		if e.isTCLoad && sm.du != nil {
			sm.lhbRelease = append(sm.lhbRelease, lhbReleaseEvt{at: now + delay, seqLo: e.seqLo, seqHi: e.seqHi})
		}
		w.robHead++
		// Forward-progress heartbeat for the watchdog: a ROB pop covers
		// both instruction retirement and memory-request completion (a
		// completed request pops when it reaches the head). Retirement
		// runs serially in both loop modes, so the bare counter is
		// race-free.
		sm.gpu.progress++
	}
	if w.robHead > 0 && w.robEmpty() {
		w.rob = w.rob[:0]
		w.robHead = 0
	}
	if w.finished() {
		sm.deactivateSlot(s)
		left := sm.ctaWarpsLeft[w.cta] - 1
		if left == 0 {
			delete(sm.ctaWarpsLeft, w.cta)
			sm.resident--
			sm.gpu.ctaDone(sm, now)
		} else {
			sm.ctaWarpsLeft[w.cta] = left
		}
	}
}

// releaseLHB applies due entry releases (FIFO; times are monotone).
func (sm *smState) releaseLHB(now int64) {
	i := 0
	for i < len(sm.lhbRelease) && sm.lhbRelease[i].at <= now {
		e := sm.lhbRelease[i]
		for q := e.seqLo; q < e.seqHi; q++ {
			sm.du.Retire(q)
		}
		if sm.tr != nil {
			sm.emit(trace.Event{
				Cycle: now, Kind: trace.KindLHBRelease,
				A: int64(e.seqHi - e.seqLo), Sched: -1, Warp: -1,
			})
		}
		i++
	}
	if i > 0 {
		// Compact in place so the slice reuses its backing array instead of
		// marching through memory one re-slice at a time.
		n := copy(sm.lhbRelease, sm.lhbRelease[i:])
		sm.lhbRelease = sm.lhbRelease[:n]
	}
}

// mshrSweepLen is the MSHR map size beyond which drainLDST sweeps dead
// entries. Real MSHRs hold tens of entries; the map is allowed to grow well
// past that as a fill-time memo, but without a sweep it would accrete one
// entry per distinct line ever missed over a multi-million-cycle run.
const mshrSweepLen = 1 << 12

// drainLDST frees queue slots whose memory operations completed, and keeps
// the MSHR map bounded by sweeping entries whose fills are in the past.
// The sweep is behavior-invisible: accessLine deletes a passed entry on
// first touch anyway, and the fill <= now condition is per-entry, so map
// iteration order cannot leak into results.
func (sm *smState) drainLDST(now int64) {
	q := sm.ldstBusy[:0]
	for _, t := range sm.ldstBusy {
		if t > now {
			q = append(q, t)
		}
	}
	sm.ldstBusy = q
	if len(sm.mshr) > mshrSweepLen {
		for line, fill := range sm.mshr {
			if fill <= now {
				delete(sm.mshr, line)
			}
		}
	}
}

// scheduleOne runs one warp scheduler for one cycle: greedy-then-oldest.
// It reports whether an instruction issued and, when it did not, whether
// the stall was (at least partly) caused by a full LDST queue.
func (sm *smState) scheduleOne(sid int, now int64) (issued, blocked bool) {
	// Candidate order: the greedy warp first, then all of this scheduler's
	// warps oldest-first.
	ldstBlocked := false
	try := func(s int) bool {
		w := &sm.warps[s]
		if !w.active || w.pc >= w.prog.Len() {
			return false
		}
		ok, blocked := sm.tryIssue(sid, w, now)
		if blocked {
			ldstBlocked = true
		}
		return ok
	}
	if g := sm.greedy[sid]; g >= 0 && try(g) {
		return true, false
	}
	// Oldest-first scan over this scheduler's live warp slots (the
	// schedLive scoreboard walks them in the same ascending-slot order as
	// the pre-bitset strided loop).
	best := -1
	var bestAge int64 = 1 << 62
	for wi, word := range sm.schedLive[sid] {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			s := (wi<<6+b)*sm.cfg.Schedulers + sid
			w := &sm.warps[s]
			if w.pc >= w.prog.Len() || s == sm.greedy[sid] {
				continue
			}
			if w.age < bestAge {
				// Try in age order lazily: collect the oldest issuable.
				if ok, blocked := sm.canIssue(sid, w, now); ok {
					bestAge = w.age
					best = s
				} else if blocked {
					ldstBlocked = true
				}
			}
		}
	}
	if best >= 0 {
		w := &sm.warps[best]
		sm.tryIssue(sid, w, now)
		sm.greedy[sid] = best
		return true, false
	}
	sm.greedy[sid] = -1
	sm.stats.IssueStallCycles++
	if ldstBlocked {
		sm.stats.LDSTStallCycles++
	}
	return false, ldstBlocked
}

// canIssue checks issueability without side effects.
func (sm *smState) canIssue(sid int, w *warpCtx, now int64) (ok, ldstBlocked bool) {
	w.decode()
	in := &w.cur
	switch in.Op {
	case OpLoadA, OpLoadB:
		if w.regReady[in.Dst] > now {
			return false, false
		}
		if len(sm.ldstBusy) >= sm.cfg.LDSTQueueDepth {
			return false, true
		}
	case OpMMA:
		if w.regReady[in.SrcA] > now || w.regReady[in.SrcB] > now || w.regReady[in.Dst] > now {
			return false, false
		}
		if sm.pbFree[sid] > now {
			return false, false
		}
	case OpStoreD:
		if w.regReady[in.SrcA] > now {
			return false, false
		}
		if len(sm.ldstBusy) >= sm.cfg.LDSTQueueDepth {
			return false, true
		}
	}
	return true, false
}

// tryIssue issues the warp's next instruction if possible.
func (sm *smState) tryIssue(sid int, w *warpCtx, now int64) (issued, ldstBlocked bool) {
	ok, blocked := sm.canIssue(sid, w, now)
	if !ok {
		return false, blocked
	}
	in := w.cur
	sm.stats.Instructions++
	if sm.tr != nil {
		ev := trace.Event{
			Cycle: now, Kind: trace.KindIssue, Addr: in.Addr,
			Op: int8(in.Op), Sched: int8(sid), Warp: int16(w.slot),
		}
		if in.Op == OpLoadA || in.Op == OpLoadB {
			ev.A = tileRows // row-vector loads this macro-op expands into
		}
		sm.emit(ev)
	}
	switch in.Op {
	case OpLoadA, OpLoadB:
		sm.issueLoad(w, in, now)
	case OpMMA:
		sm.stats.MMAs++
		sm.pbFree[sid] = now + int64(sm.cfg.MMAInitiation)
		w.regReady[in.Dst] = now + int64(sm.cfg.MMALatency)
		w.robPush(robEntry{complete: now + int64(sm.cfg.MMALatency)})
	case OpStoreD:
		sm.issueStore(w, in, now)
	}
	w.advance()
	return true, false
}

// issueLoad processes a wmma.load macro-op. Following §II-B, the macro-op
// expands into 16 row-vector loads (one 16-element row of the tile each);
// each row load consults the Duplo detection unit individually (row IDs are
// what the LHB tracks), and only the rows that miss generate line requests.
//
// In sharded mode (sm.stage non-nil) the detection-unit walk still runs
// here — it is SM-local — but any load that needs the shared memory system,
// or whose completion depends on a load staged earlier this tick, is
// recorded via stageLoad and finished by commitStaged in phase B.
func (sm *smState) issueLoad(w *warpCtx, in Instr, now int64) {
	sm.stats.TensorLoads += tileRows
	var seqLo, seqHi uint64
	tracked := false
	var complete int64
	anyMem := false
	sm.lineBuf = sm.lineBuf[:0]
	lb := uint64(sm.cfg.LineBytes)
	st := sm.stage
	depLo := 0
	if st != nil {
		depLo = len(st.deps)
	}

	for r := 0; r < tileRows; r++ {
		rowAddr := in.Addr + uint64(r)*uint64(in.RowPitch)
		hit := false
		if sm.du != nil {
			res, seq := sm.du.Access(w.slot, int(in.Dst), rowAddr, 0)
			if r == 0 {
				seqLo = seq
			}
			seqHi = seq + 1
			if res.Kind != duplo.AccessBypass {
				tracked = true
			}
			if res.Kind == duplo.AccessHit {
				// Row eliminated: rename after the detection latency; the
				// consumer waits for the original load's data via the
				// scoreboard (entry meta carries its ready cycle).
				hit = true
				sm.stats.LoadsEliminated++
				t := now + int64(sm.du.Latency())
				meta := res.Meta
				if st != nil {
					if op, ok := st.pendLookup(pendKey(res.ID)); ok {
						// The source load is staged this tick: its ready
						// cycle is unknown until phase B replays it, and the
						// entry meta is stale. Depend on the staged op.
						st.deps = append(st.deps, op)
						meta = 0
					}
				}
				if meta > t {
					t = meta
				}
				if t > complete {
					complete = t
				}
				// Parallel L1 lookup happens anyway (energy), then cancels.
				sm.stats.L1Accesses++
				sm.stats.ServiceLines[ServiceLHB]++
				if sm.tr != nil {
					sm.emit(trace.Event{
						Cycle: now, Kind: trace.KindLHBHit, Addr: rowAddr,
						Sched: -1, Warp: int16(w.slot),
					})
				}
			}
		}
		if !hit {
			anyMem = true
			// Collect this row's line(s), deduplicated across miss rows.
			// Row addresses are monotone (RowPitch > 0) and each row's
			// lines are contiguous, so collected lines are monotone too: a
			// candidate can only duplicate the tail of what is already
			// collected, never land in a gap below it.
			first := rowAddr &^ (lb - 1)
			last := (rowAddr + uint64(in.RowBytes) - 1) &^ (lb - 1)
			for line := first; line <= last; line += lb {
				if n := len(sm.lineBuf); n > 0 && line <= sm.lineBuf[n-1] {
					continue
				}
				sm.lineBuf = append(sm.lineBuf, line)
			}
		}
	}

	if st != nil && (anyMem || len(st.deps) > depLo) {
		// Needs the shared level, or a ready time phase B has not resolved
		// yet: defer. Pure-hit loads with fully-known metas fall through to
		// the serial tail, which touches nothing shared when lineBuf is
		// empty.
		sm.stageLoad(w, in, now, complete, tracked, seqLo, seqHi, depLo)
		return
	}

	// Memory path for the missing rows: line requests serialized on the L1
	// tag port.
	var memReady int64
	for _, line := range sm.lineBuf {
		t := now
		if sm.l1Port > t {
			t = sm.l1Port
		}
		sm.l1Port = t + 1
		ready, src := sm.accessLine(line, t)
		if ready > memReady {
			memReady = ready
		}
		sm.stats.ServiceLines[src]++
		if sm.tr != nil {
			sm.emit(trace.Event{
				Cycle: t, Kind: trace.KindService, Addr: line,
				Level: int8(src), Sched: -1, Warp: int16(w.slot),
			})
		}
	}
	if memReady > complete {
		complete = memReady
	}
	if complete == 0 {
		complete = now + 1
	}
	w.regReady[in.Dst] = complete
	if anyMem {
		sm.ldstBusy = append(sm.ldstBusy, complete)
	}
	w.robPush(robEntry{complete: complete, isTCLoad: tracked, seqLo: seqLo, seqHi: seqHi})
	if tracked && anyMem {
		// Record the data-ready cycle in the rows' LHB entries so later
		// hits wait for the data (meta update after the miss resolved).
		for r := 0; r < tileRows; r++ {
			rowAddr := in.Addr + uint64(r)*uint64(in.RowPitch)
			if id, st := sm.du.Gen().IDs(rowAddr); st == duplo.StatusOK {
				sm.du.SetMeta(id, complete)
			}
		}
	}
}

// accessLine performs one read line access at cycle t (post port
// arbitration) and returns (data-ready cycle, serving level).
func (sm *smState) accessLine(line uint64, t int64) (int64, ServiceLevel) {
	sm.stats.L1Accesses++
	l1Lat := int64(sm.cfg.L1LatencyCycles)
	if fill, pending := sm.mshr[line]; pending {
		if fill > t {
			// Merge into the outstanding miss.
			sm.stats.MSHRMerges++
			sm.stats.L1Hits++ // serviced without new traffic
			if sm.tr != nil {
				sm.emit(trace.Event{
					Cycle: t, Kind: trace.KindMSHRMerge, Addr: line,
					Sched: -1, Warp: -1,
				})
			}
			return fill, ServiceL1
		}
		delete(sm.mshr, line)
	}
	if sm.l1.Lookup(line) {
		sm.stats.L1Hits++
		return t + l1Lat, ServiceL1
	}
	fill, src := sm.mem.readLine(line, t+l1Lat)
	sm.l1.Insert(line)
	sm.mshr[line] = fill
	return fill, src
}

// issueStore processes a wmma.store.d: write-through line transactions.
// The store's completion time is local (StoreLatency), so in sharded mode
// only the line transactions — L1 port arbitration plus the write-through
// DRAM bandwidth charge — are staged for phase B.
func (sm *smState) issueStore(w *warpCtx, in Instr, now int64) {
	sm.stats.Stores++
	if sm.du != nil {
		sm.du.Store(in.Addr) // consistency hook (§IV-B); no-op outside workspace
	}
	sm.lineBuf = lineSpan(sm.lineBuf[:0], in, sm.cfg.LineBytes)
	if sm.stage != nil {
		sm.stageStore(now)
	} else {
		for range sm.lineBuf {
			t := now
			if sm.l1Port > t {
				t = sm.l1Port
			}
			sm.l1Port = t + 1
			sm.stats.L1Accesses++
			sm.mem.writeLine(t)
		}
	}
	complete := now + int64(sm.cfg.StoreLatency)
	sm.ldstBusy = append(sm.ldstBusy, complete)
	w.robPush(robEntry{complete: complete})
}

// busy reports whether any warp is resident.
func (sm *smState) busy() bool { return sm.resident > 0 }

// farFuture is the sentinel wake cycle for "no pending event".
const farFuture = int64(1) << 62

// nextWake returns a conservative lower bound (> now, or farFuture when the
// SM has nothing pending) on the next cycle at which this SM's tick could
// do anything a fully-stalled dense tick would not: issue an instruction,
// retire a ROB entry, release an LHB entry, or drain an LDST queue slot.
// The dispatcher calls it only after a tick(now) that issued nothing
// chip-wide, so every active warp is gated on one of the events below; the
// wake set is
//
//   - the earliest ldstBusy drain (opens LDST queue back-pressure),
//   - the head lhbRelease.at (LHB entry releases run at exact cycles),
//   - the L1 tag port's free cycle,
//   - per active warp: the head ROB entry's complete cycle (in-order
//     retire, so the head always pops first), and the gate of its current
//     instruction — the blocking regReady cycles, or the processing-block
//     free cycle once an MMA's operands are all ready.
//
// Any stale event (<= now) clamps to now+1 — the clock may refuse to skip,
// but can never be sent backwards or past a wake (the deadlock guard,
// asserted by TestNextWakeNeverInPast).
func (sm *smState) nextWake(now int64) int64 {
	wake := farFuture
	add := func(t int64) {
		if t <= now {
			t = now + 1
		}
		if t < wake {
			wake = t
		}
	}
	minLdst := farFuture
	for _, t := range sm.ldstBusy {
		if t < minLdst {
			minLdst = t
		}
	}
	if minLdst < farFuture {
		add(minLdst)
	}
	if len(sm.lhbRelease) > 0 {
		add(sm.lhbRelease[0].at) // FIFO with monotone times: head is earliest
	}
	if sm.l1Port > now {
		add(sm.l1Port)
	}
	for wi, word := range sm.liveMask {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			s := wi<<6 + b
			w := &sm.warps[s]
			if !w.robEmpty() {
				add(w.rob[w.robHead].complete)
			}
			if w.pc >= w.prog.Len() {
				continue
			}
			w.decode()
			in := &w.cur
			switch in.Op {
			case OpLoadA, OpLoadB, OpStoreD:
				reg := in.Dst
				if in.Op == OpStoreD {
					reg = in.SrcA
				}
				if t := w.regReady[reg]; t > now {
					add(t)
				} else if len(sm.ldstBusy) == 0 {
					// A ready memory op can only be gated by a full LDST
					// queue; an empty queue here is inconsistent — wake
					// immediately instead of risking a missed event.
					add(now + 1)
				}
			case OpMMA:
				gated := false
				for _, rg := range [...]uint8{in.SrcA, in.SrcB, in.Dst} {
					if t := w.regReady[rg]; t > now {
						add(t)
						gated = true
					}
				}
				if !gated {
					// Operands ready: the gate is the processing block.
					add(sm.pbFree[s%sm.cfg.Schedulers])
				}
			}
		}
	}
	return wake
}
