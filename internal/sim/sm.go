package sim

import (
	duplo "duplo/internal/core"
)

// lhbReleaseEvt schedules the release of a retired load's LHB entries.
type lhbReleaseEvt struct {
	at    int64
	seqLo uint64
	seqHi uint64
}

// robEntry tracks one in-flight instruction for in-order retirement. For
// tensor-core loads, [seqLo, seqHi) is the range of detection-unit sequence
// numbers of the instruction's row-vector loads (each wmma.load macro-op
// issues 16 row loads, §II-B: "a tensor-core-load instruction fetches 16
// half-precision data, e.g. a row of matrix A").
type robEntry struct {
	complete int64
	isTCLoad bool
	seqLo    uint64
	seqHi    uint64
}

// warpCtx is the execution state of one warp slot.
type warpCtx struct {
	active   bool
	prog     *warpProgram
	pc       int
	cur      Instr // decoded prog.At(pc)
	curOK    bool
	slot     int // SM warp slot (detection-unit warp id)
	cta      int // resident-CTA index on this SM
	age      int64
	regReady []int64
	rob      []robEntry
	robHead  int
}

func (w *warpCtx) decode() {
	if !w.curOK && w.pc < w.prog.Len() {
		w.cur = w.prog.At(w.pc)
		w.curOK = true
	}
}

func (w *warpCtx) advance() {
	w.pc++
	w.curOK = false
}

func (w *warpCtx) robPush(e robEntry) { w.rob = append(w.rob, e) }

func (w *warpCtx) robEmpty() bool { return w.robHead >= len(w.rob) }

func (w *warpCtx) finished() bool {
	return w.pc >= w.prog.Len() && w.robEmpty()
}

// smState models one streaming multiprocessor: warp slots, GTO schedulers,
// tensor-core processing blocks, the LDST unit with its L1, and (optionally)
// the Duplo detection unit.
type smState struct {
	cfg  Config
	id   int
	mem  *memSystem
	gpu  *gpuState
	du   *duplo.DetectionUnit
	l1   *cacheArray
	mshr map[uint64]int64 // lineAddr -> fill cycle

	l1Port int64   // next free L1 tag-port cycle (1 line/cycle)
	pbFree []int64 // per-scheduler processing-block (tensor core) free cycle

	warps    []warpCtx
	greedy   []int // per-scheduler greedy warp slot (GTO)
	ldstBusy []int64

	// lhbRelease is a FIFO of pending LHB entry releases: a retired load's
	// entries are released RetireDelay cycles after the instruction pops
	// from the ROB (the modeled register lifetime; release times are
	// monotone because pops are).
	lhbRelease []lhbReleaseEvt

	ctaWarpsLeft map[int]int // resident CTA -> unfinished warps
	resident     int

	stats   Stats
	lineBuf []uint64
}

func newSM(cfg Config, id int, mem *memSystem, gpu *gpuState) *smState {
	sm := &smState{
		cfg:          cfg,
		id:           id,
		mem:          mem,
		gpu:          gpu,
		l1:           newCacheArray(cfg.L1KB<<10, cfg.LineBytes, 8),
		mshr:         make(map[uint64]int64),
		pbFree:       make([]int64, cfg.Schedulers),
		warps:        make([]warpCtx, cfg.MaxWarpsPerSM),
		greedy:       make([]int, cfg.Schedulers),
		ctaWarpsLeft: make(map[int]int),
		lineBuf:      make([]uint64, 0, 64),
	}
	for i := range sm.greedy {
		sm.greedy[i] = -1
	}
	return sm
}

// placeCTA installs a CTA's warps into free slots. Caller guarantees
// capacity (warpsPerCTA free slots).
func (sm *smState) placeCTA(k *Kernel, cta int, launchSeq int64) {
	work := k.warpAssignments(cta)
	placed := 0
	live := 0
	for w := 0; w < warpsPerCTA; w++ {
		prog := newWarpProgram(k, work[w])
		if prog.Len() == 0 {
			continue // edge warp with no tiles
		}
		// Find a free slot.
		for s := range sm.warps {
			if sm.warps[s].active {
				continue
			}
			wc := &sm.warps[s]
			*wc = warpCtx{
				active:   true,
				prog:     prog,
				slot:     s,
				cta:      cta,
				age:      launchSeq*int64(warpsPerCTA) + int64(w),
				regReady: make([]int64, prog.RegGroups()),
				rob:      wc.rob[:0],
			}
			placed++
			live++
			break
		}
	}
	if live == 0 {
		// Degenerate CTA (fully out of range): nothing resident.
		return
	}
	sm.ctaWarpsLeft[cta] = live
	sm.resident++
	_ = placed
}

// tick advances the SM by one cycle.
func (sm *smState) tick(now int64) {
	sm.releaseLHB(now)
	sm.retire(now)
	sm.drainLDST(now)
	for sid := 0; sid < sm.cfg.Schedulers; sid++ {
		sm.scheduleOne(sid, now)
	}
}

// retire pops completed instructions in program order per warp. Retired
// tensor-core-loads schedule their LHB entry releases RetireDelay cycles
// later: with the warp-register renaming of [15], a destination register
// group stays valid well past instruction completion, until the rename pool
// reclaims it; RetireDelay is the calibrated model of that reuse window
// (§V-C governs the hit-rate ceiling through it).
func (sm *smState) retire(now int64) {
	delay := int64(sm.cfg.RetireDelay)
	for s := range sm.warps {
		w := &sm.warps[s]
		if !w.active {
			continue
		}
		for !w.robEmpty() {
			e := &w.rob[w.robHead]
			if e.complete > now {
				break
			}
			if e.isTCLoad && sm.du != nil {
				sm.lhbRelease = append(sm.lhbRelease, lhbReleaseEvt{at: now + delay, seqLo: e.seqLo, seqHi: e.seqHi})
			}
			w.robHead++
		}
		if w.robHead > 0 && w.robEmpty() {
			w.rob = w.rob[:0]
			w.robHead = 0
		}
		if w.finished() {
			w.active = false
			left := sm.ctaWarpsLeft[w.cta] - 1
			if left == 0 {
				delete(sm.ctaWarpsLeft, w.cta)
				sm.resident--
				sm.gpu.ctaDone(sm, now)
			} else {
				sm.ctaWarpsLeft[w.cta] = left
			}
		}
	}
}

// releaseLHB applies due entry releases (FIFO; times are monotone).
func (sm *smState) releaseLHB(now int64) {
	i := 0
	for i < len(sm.lhbRelease) && sm.lhbRelease[i].at <= now {
		e := sm.lhbRelease[i]
		for q := e.seqLo; q < e.seqHi; q++ {
			sm.du.Retire(q)
		}
		i++
	}
	if i > 0 {
		sm.lhbRelease = sm.lhbRelease[i:]
	}
}

// drainLDST frees queue slots whose memory operations completed.
func (sm *smState) drainLDST(now int64) {
	q := sm.ldstBusy[:0]
	for _, t := range sm.ldstBusy {
		if t > now {
			q = append(q, t)
		}
	}
	sm.ldstBusy = q
}

// scheduleOne runs one warp scheduler for one cycle: greedy-then-oldest.
func (sm *smState) scheduleOne(sid int, now int64) {
	// Candidate order: the greedy warp first, then all of this scheduler's
	// warps oldest-first.
	ldstBlocked := false
	try := func(s int) bool {
		w := &sm.warps[s]
		if !w.active || w.pc >= w.prog.Len() {
			return false
		}
		ok, blocked := sm.tryIssue(sid, w, now)
		if blocked {
			ldstBlocked = true
		}
		return ok
	}
	if g := sm.greedy[sid]; g >= 0 && try(g) {
		return
	}
	// Oldest-first scan over this scheduler's warp slots.
	best := -1
	var bestAge int64 = 1 << 62
	for s := sid; s < len(sm.warps); s += sm.cfg.Schedulers {
		w := &sm.warps[s]
		if !w.active || w.pc >= w.prog.Len() || s == sm.greedy[sid] {
			continue
		}
		if w.age < bestAge {
			// Try in age order lazily: collect the oldest issuable.
			if ok, blocked := sm.canIssue(sid, w, now); ok {
				bestAge = w.age
				best = s
			} else if blocked {
				ldstBlocked = true
			}
		}
	}
	if best >= 0 {
		w := &sm.warps[best]
		sm.tryIssue(sid, w, now)
		sm.greedy[sid] = best
		return
	}
	sm.greedy[sid] = -1
	sm.stats.IssueStallCycles++
	if ldstBlocked {
		sm.stats.LDSTStallCycles++
	}
}

// canIssue checks issueability without side effects.
func (sm *smState) canIssue(sid int, w *warpCtx, now int64) (ok, ldstBlocked bool) {
	w.decode()
	in := &w.cur
	switch in.Op {
	case OpLoadA, OpLoadB:
		if w.regReady[in.Dst] > now {
			return false, false
		}
		if len(sm.ldstBusy) >= sm.cfg.LDSTQueueDepth {
			return false, true
		}
	case OpMMA:
		if w.regReady[in.SrcA] > now || w.regReady[in.SrcB] > now || w.regReady[in.Dst] > now {
			return false, false
		}
		if sm.pbFree[sid] > now {
			return false, false
		}
	case OpStoreD:
		if w.regReady[in.SrcA] > now {
			return false, false
		}
		if len(sm.ldstBusy) >= sm.cfg.LDSTQueueDepth {
			return false, true
		}
	}
	return true, false
}

// tryIssue issues the warp's next instruction if possible.
func (sm *smState) tryIssue(sid int, w *warpCtx, now int64) (issued, ldstBlocked bool) {
	ok, blocked := sm.canIssue(sid, w, now)
	if !ok {
		return false, blocked
	}
	in := w.cur
	sm.stats.Instructions++
	switch in.Op {
	case OpLoadA, OpLoadB:
		sm.issueLoad(w, in, now)
	case OpMMA:
		sm.stats.MMAs++
		sm.pbFree[sid] = now + int64(sm.cfg.MMAInitiation)
		w.regReady[in.Dst] = now + int64(sm.cfg.MMALatency)
		w.robPush(robEntry{complete: now + int64(sm.cfg.MMALatency)})
	case OpStoreD:
		sm.issueStore(w, in, now)
	}
	w.advance()
	return true, false
}

// issueLoad processes a wmma.load macro-op. Following §II-B, the macro-op
// expands into 16 row-vector loads (one 16-element row of the tile each);
// each row load consults the Duplo detection unit individually (row IDs are
// what the LHB tracks), and only the rows that miss generate line requests.
func (sm *smState) issueLoad(w *warpCtx, in Instr, now int64) {
	sm.stats.TensorLoads += tileRows
	var seqLo, seqHi uint64
	tracked := false
	var complete int64
	anyMem := false
	sm.lineBuf = sm.lineBuf[:0]
	lb := uint64(sm.cfg.LineBytes)

	for r := 0; r < tileRows; r++ {
		rowAddr := in.Addr + uint64(r)*uint64(in.RowPitch)
		hit := false
		if sm.du != nil {
			res, seq := sm.du.Access(w.slot, int(in.Dst), rowAddr, 0)
			if r == 0 {
				seqLo = seq
			}
			seqHi = seq + 1
			if res.Kind != duplo.AccessBypass {
				tracked = true
			}
			if res.Kind == duplo.AccessHit {
				// Row eliminated: rename after the detection latency; the
				// consumer waits for the original load's data via the
				// scoreboard (entry meta carries its ready cycle).
				hit = true
				sm.stats.LoadsEliminted++
				t := now + int64(sm.du.Latency())
				if res.Meta > t {
					t = res.Meta
				}
				if t > complete {
					complete = t
				}
				// Parallel L1 lookup happens anyway (energy), then cancels.
				sm.stats.L1Accesses++
				sm.stats.ServiceLines[ServiceLHB]++
			}
		}
		if !hit {
			anyMem = true
			// Collect this row's line(s), deduplicated across miss rows.
			first := rowAddr &^ (lb - 1)
			last := (rowAddr + uint64(in.RowBytes) - 1) &^ (lb - 1)
			for line := first; line <= last; line += lb {
				dup := false
				for _, v := range sm.lineBuf {
					if v == line {
						dup = true
						break
					}
				}
				if !dup {
					sm.lineBuf = append(sm.lineBuf, line)
				}
			}
		}
	}

	// Memory path for the missing rows: line requests serialized on the L1
	// tag port.
	var memReady int64
	for _, line := range sm.lineBuf {
		t := now
		if sm.l1Port > t {
			t = sm.l1Port
		}
		sm.l1Port = t + 1
		ready, src := sm.accessLine(line, t)
		if ready > memReady {
			memReady = ready
		}
		sm.stats.ServiceLines[src]++
	}
	if memReady > complete {
		complete = memReady
	}
	if complete == 0 {
		complete = now + 1
	}
	w.regReady[in.Dst] = complete
	if anyMem {
		sm.ldstBusy = append(sm.ldstBusy, complete)
	}
	w.robPush(robEntry{complete: complete, isTCLoad: tracked, seqLo: seqLo, seqHi: seqHi})
	if tracked && anyMem {
		// Record the data-ready cycle in the rows' LHB entries so later
		// hits wait for the data (meta update after the miss resolved).
		for r := 0; r < tileRows; r++ {
			rowAddr := in.Addr + uint64(r)*uint64(in.RowPitch)
			if id, st := sm.du.Gen().IDs(rowAddr); st == duplo.StatusOK {
				sm.du.SetMeta(id, complete)
			}
		}
	}
}

// accessLine performs one read line access at cycle t (post port
// arbitration) and returns (data-ready cycle, serving level).
func (sm *smState) accessLine(line uint64, t int64) (int64, ServiceLevel) {
	sm.stats.L1Accesses++
	l1Lat := int64(sm.cfg.L1LatencyCycles)
	if fill, pending := sm.mshr[line]; pending {
		if fill > t {
			// Merge into the outstanding miss.
			sm.stats.MSHRMerges++
			sm.stats.L1Hits++ // serviced without new traffic
			return fill, ServiceL1
		}
		delete(sm.mshr, line)
	}
	if sm.l1.Lookup(line) {
		sm.stats.L1Hits++
		return t + l1Lat, ServiceL1
	}
	fill, src := sm.mem.readLine(line, t+l1Lat)
	sm.l1.Insert(line)
	sm.mshr[line] = fill
	return fill, src
}

// issueStore processes a wmma.store.d: write-through line transactions.
func (sm *smState) issueStore(w *warpCtx, in Instr, now int64) {
	sm.stats.Stores++
	if sm.du != nil {
		sm.du.Store(in.Addr) // consistency hook (§IV-B); no-op outside workspace
	}
	sm.lineBuf = lineSpan(sm.lineBuf[:0], in, sm.cfg.LineBytes)
	for range sm.lineBuf {
		t := now
		if sm.l1Port > t {
			t = sm.l1Port
		}
		sm.l1Port = t + 1
		sm.stats.L1Accesses++
		sm.mem.writeLine(t)
	}
	complete := now + int64(sm.cfg.StoreLatency)
	sm.ldstBusy = append(sm.ldstBusy, complete)
	w.robPush(robEntry{complete: complete})
}

// busy reports whether any warp is resident.
func (sm *smState) busy() bool { return sm.resident > 0 }
