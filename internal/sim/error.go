package sim

import "fmt"

// Phases of a *SimError: which guard of the hardened run loop tripped.
const (
	// PhaseCancelled: the RunContext context was cancelled.
	PhaseCancelled = "cancelled"
	// PhaseDeadline: the context deadline (Config.WallTimeout or a caller
	// deadline) expired.
	PhaseDeadline = "deadline"
	// PhaseCycleLimit: the simulated clock reached Config.MaxCycles (or the
	// built-in runaway bound).
	PhaseCycleLimit = "cycle-limit"
	// PhaseWatchdog: the forward-progress watchdog fired — no instruction
	// issued and no ROB entry retired for a whole WatchdogWindow.
	PhaseWatchdog = "watchdog"
	// PhasePanic: a panic inside the cycle loop (serial, or any SM-shard
	// goroutine) was contained and converted to an error.
	PhasePanic = "panic"
	// PhaseProgram: program decode walked out of a warp program's bounds —
	// an internal consistency failure surfaced as a structured error.
	PhaseProgram = "program"
)

// SimError is the structured failure a hardened simulation returns instead
// of hanging or crashing the process: which guard tripped (Phase), where
// the simulated clock stood (Cycle), a human-readable diagnosis (Reason),
// and — for watchdog fires and contained panics — the path of the crash
// dump written for postmortem debugging (Dump).
type SimError struct {
	Phase  string
	Cycle  int64
	Reason string
	// Dump is the crash-dump file path ("" when none was written; dumps
	// accompany watchdog fires and contained panics, see dump.go).
	Dump string
	// Err is the underlying cause when one exists (the context error for
	// cancellations/deadlines, the panic value when it was an error).
	Err error

	// stack is the recovered goroutine stack of a contained panic,
	// serialized into the crash dump.
	stack []byte
}

// Error renders "sim: <phase> at cycle N: <reason> (crash dump: <path>)".
func (e *SimError) Error() string {
	s := fmt.Sprintf("sim: %s at cycle %d: %s", e.Phase, e.Cycle, e.Reason)
	if e.Dump != "" {
		s += " (crash dump: " + e.Dump + ")"
	}
	return s
}

// Unwrap exposes the underlying cause so errors.Is sees context.Canceled /
// context.DeadlineExceeded through the guard.
func (e *SimError) Unwrap() error { return e.Err }
