package sim

import (
	"testing"

	"duplo/internal/conv"
	"duplo/internal/workload"
)

// GAN TC4 has K=3 filters -> NPad=16: only one 16-wide column tile exists,
// so half of each CTA's warps (the wc=1 column) have no work.
func TestTinyNKernel(t *testing.T) {
	tc4, _ := workload.Find("GAN", "TC4")
	k, err := NewConvKernel(tc4.FullName(), tc4.GemmParams())
	if err != nil {
		t.Fatal(err)
	}
	if k.NPad != 16 {
		t.Fatalf("NPad %d", k.NPad)
	}
	work := k.warpAssignments(0)
	live := 0
	for _, w := range work {
		if len(w.rowTiles) > 0 && len(w.colTiles) > 0 {
			live++
			if len(w.colTiles) != 1 {
				t.Fatalf("col tiles %d, want 1", len(w.colTiles))
			}
		}
	}
	if live != 4 {
		t.Fatalf("live warps %d, want 4 (wc=0 column only)", live)
	}
	// The kernel must still simulate to completion.
	cfg := testConfig()
	cfg.MaxCTAs = 4
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.MMAs <= 0 {
		t.Fatal("degenerate run")
	}
}

// Edge CTA at the bottom of the grid: a kernel whose MPad is not a multiple
// of the CTA tile leaves some warps of the last CTA without row tiles.
func TestEdgeCTA(t *testing.T) {
	// M = 1*6*6 = 36 -> MPad = 48: CTA covers 128 rows, only 3 row tiles.
	p := conv.Params{N: 1, H: 6, W: 6, C: 16, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}
	k, err := NewConvKernel("edge", p)
	if err != nil {
		t.Fatal(err)
	}
	if k.TotalCTAs() != 1 {
		t.Fatalf("grid %d", k.TotalCTAs())
	}
	work := k.warpAssignments(0)
	totalRowTiles := 0
	for _, w := range work {
		if len(w.colTiles) == 0 {
			continue
		}
		totalRowTiles += len(w.rowTiles)
	}
	// MPad=48 -> 3 row tiles; NPad=32 -> only the wc=0 warp column has
	// work, so 3 row-tile assignments in total.
	if totalRowTiles != 3 {
		t.Fatalf("row tile assignments %d, want 3", totalRowTiles)
	}
	res, err := Run(testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	// Work conservation: warp MMAs cover exactly MPad/16 x NPad/16 x KTiles.
	wantMMA := int64(k.MPad/16) * int64(k.NPad/16) * int64(k.KTiles())
	if res.MMAs != wantMMA {
		t.Fatalf("MMAs %d, want %d", res.MMAs, wantMMA)
	}
	wantStores := int64(k.MPad/16) * int64(k.NPad/16)
	if res.Stores != wantStores {
		t.Fatalf("stores %d, want %d", res.Stores, wantStores)
	}
}

// Work conservation on a multi-CTA grid with the CTA cap disabled.
func TestWorkConservationFullGrid(t *testing.T) {
	p := conv.Params{N: 1, H: 16, W: 16, C: 16, K: 48, FH: 3, FW: 3, Pad: 1, Stride: 1}
	k, _ := NewConvKernel("full", p)
	cfg := testConfig()
	cfg.MaxCTAs = 0 // full grid
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedCTAs != k.TotalCTAs() {
		t.Fatalf("simulated %d of %d", res.SimulatedCTAs, k.TotalCTAs())
	}
	wantMMA := int64(k.MPad/16) * int64(k.NPad/16) * int64(k.KTiles())
	if res.MMAs != wantMMA {
		t.Fatalf("MMAs %d, want %d", res.MMAs, wantMMA)
	}
	// Loads: per warp per kstep, 2 octet copies per row tile and per col
	// tile, each expanding to 16 row-vector loads. Expected count derived
	// from the static warp assignments, independent of the issue logic.
	var perKstep int64
	for cta := 0; cta < k.TotalCTAs(); cta++ {
		for _, w := range k.warpAssignments(cta) {
			if len(w.rowTiles) == 0 || len(w.colTiles) == 0 {
				continue
			}
			perKstep += int64(2*len(w.rowTiles) + 2*len(w.colTiles))
		}
	}
	wantLoads := 16 * int64(k.KTiles()) * perKstep
	if res.TensorLoads != wantLoads {
		t.Fatalf("loads %d, want %d", res.TensorLoads, wantLoads)
	}
}

func TestGemmKernelValidation(t *testing.T) {
	if _, err := NewGemmKernel("bad", 0, 4, 4); err == nil {
		t.Error("zero M should fail")
	}
	if _, err := NewConvKernel("bad", conv.Params{}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestTraceWarp(t *testing.T) {
	k, _ := NewConvKernel("tr", testLayer)
	insts, err := TraceWarp(k, 0, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 25 {
		t.Fatalf("got %d instructions", len(insts))
	}
	if insts[0].Op != OpLoadA {
		t.Fatalf("first op %v", insts[0].Op)
	}
	if _, err := TraceWarp(k, -1, 0, 1); err == nil {
		t.Error("negative CTA should fail")
	}
	if _, err := TraceWarp(k, 0, 99, 1); err == nil {
		t.Error("warp out of range should fail")
	}
	// n beyond program length truncates.
	long, err := TraceWarp(k, 0, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(long) == 0 || len(long) >= 1<<30 {
		t.Fatalf("truncation failed: %d", len(long))
	}
}

func TestSharedVariantStrings(t *testing.T) {
	for _, v := range []SharedVariant{SharedCOnly, SharedAC, SharedABC} {
		if v.String() == "?" {
			t.Errorf("variant %d unnamed", v)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for _, o := range []Op{OpLoadA, OpLoadB, OpMMA, OpStoreD} {
		if o.String() == "?" {
			t.Errorf("op %d unnamed", o)
		}
	}
}
