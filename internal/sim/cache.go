package sim

import "math/bits"

// cacheArray is a functional set-associative tag array with LRU
// replacement. Timing is handled by the callers (latency constants and port
// serialization); the array answers only hit/miss and tracks residency.
type cacheArray struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets*ways, set-major; tag = line address
	valid     []bool
	lru       []int64
	clock     int64
}

// cacheGeometry is the derived shape of a cacheArray — split out so the
// arena's fits() check can recompute it without allocating an array.
type cacheGeometry struct {
	sets      int
	ways      int
	lineShift uint
}

// newGeometry derives the array shape for capacityBytes. The set count is
// forced to a power of two (rounding down) so indexing is a mask, as in
// the hardware.
func newGeometry(capacityBytes, lineBytes, ways int) cacheGeometry {
	lines := capacityBytes / lineBytes
	if lines < ways {
		ways = lines
		if ways == 0 {
			ways = 1
		}
	}
	sets := lines / ways
	if sets == 0 {
		sets = 1
	}
	sets = 1 << (bits.Len(uint(sets)) - 1)
	return cacheGeometry{
		sets:      sets,
		ways:      ways,
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
	}
}

// newCacheArray builds an array for capacityBytes with the given geometry.
func newCacheArray(capacityBytes, lineBytes, ways int) *cacheArray {
	g := newGeometry(capacityBytes, lineBytes, ways)
	return &cacheArray{
		sets:      g.sets,
		ways:      g.ways,
		lineShift: g.lineShift,
		tags:      make([]uint64, g.sets*g.ways),
		valid:     make([]bool, g.sets*g.ways),
		lru:       make([]int64, g.sets*g.ways),
	}
}

func (c *cacheArray) set(lineAddr uint64) int {
	return int((lineAddr >> c.lineShift) & uint64(c.sets-1))
}

// Lookup probes for lineAddr, updating LRU on hit.
func (c *cacheArray) Lookup(lineAddr uint64) bool {
	c.clock++
	s := c.set(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[s+w] && c.tags[s+w] == lineAddr {
			c.lru[s+w] = c.clock
			return true
		}
	}
	return false
}

// Insert fills lineAddr, evicting the LRU way if needed.
func (c *cacheArray) Insert(lineAddr uint64) {
	c.clock++
	s := c.set(lineAddr) * c.ways
	victim := s
	oldest := int64(1) << 62
	for w := 0; w < c.ways; w++ {
		i := s + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.tags[victim] = lineAddr
	c.valid[victim] = true
	c.lru[victim] = c.clock
}

// Capacity returns sets*ways lines.
func (c *cacheArray) Capacity() int { return c.sets * c.ways }

// memSystem is the shared part of the hierarchy: the L2 slice and the
// DRAM bandwidth model behind it. Per-SM L1s live in smState.
//
// Ordering contract: every access mutates shared state (L2 LRU recency,
// dramFree, and the dramFrac fractional accumulator — floating-point, so not
// even reorderable), which makes results depend on the exact arrival order
// of requests. All callers must therefore touch the memSystem from one
// goroutine in the canonical serial order — ascending (cycle, smID, issue
// index). The sharded loop honors this by staging phase-A requests per SM
// and replaying them here during serial phase B (shard.go); never call into
// the memSystem from phase A.
type memSystem struct {
	cfg Config
	l2  *cacheArray
	// dramFree is the cycle the DRAM channel next accepts a transfer
	// (bandwidth serialization over the simulated slice).
	dramFree          int64
	dramCyclesPerLine float64
	dramFrac          float64 // fractional accumulation of transfer cycles
	stats             *Stats
}

func newMemSystem(cfg Config, stats *Stats) *memSystem {
	// Slice-scaled L2 capacity and DRAM bandwidth (Config.SimSMs doc).
	l2Bytes := int(float64(cfg.L2KB<<10) * cfg.SliceScale())
	bpc := cfg.DRAMBytesPerCycle() * cfg.SliceScale()
	return &memSystem{
		cfg:               cfg,
		l2:                newCacheArray(l2Bytes, cfg.LineBytes, cfg.L2Ways),
		dramCyclesPerLine: float64(cfg.LineBytes) / bpc,
		stats:             stats,
	}
}

// readLine handles an L1 miss arriving at the L2 at cycle t. It returns the
// fill cycle and the level that supplied the data.
func (m *memSystem) readLine(lineAddr uint64, t int64) (int64, ServiceLevel) {
	m.stats.L2Accesses++
	if m.l2.Lookup(lineAddr) {
		m.stats.L2Hits++
		return t + int64(m.cfg.L2LatencyCycles), ServiceL2
	}
	// DRAM: bandwidth-serialized transfer after the access latency.
	start := t + int64(m.cfg.L2LatencyCycles)
	if m.dramFree > start {
		start = m.dramFree
	}
	m.dramFrac += m.dramCyclesPerLine
	whole := int64(m.dramFrac)
	m.dramFrac -= float64(whole)
	m.dramFree = start + whole
	fill := start + int64(m.cfg.DRAMLatencyCycles) + whole
	m.stats.DRAMLines++
	m.l2.Insert(lineAddr)
	return fill, ServiceDRAM
}

// writeLine handles a write-through store line at cycle t: it consumes DRAM
// bandwidth but completes immediately from the SM's perspective.
func (m *memSystem) writeLine(t int64) {
	start := t
	if m.dramFree > start {
		start = m.dramFree
	}
	m.dramFrac += m.dramCyclesPerLine
	whole := int64(m.dramFrac)
	m.dramFrac -= float64(whole)
	m.dramFree = start + whole
	m.stats.StoreLines++
}
