package sim

import (
	"sync"
	"testing"

	duplo "duplo/internal/core"
)

// TestRunConcurrentMatchesSerial runs the same set of configurations
// serially and from concurrent goroutines (sharing one *Kernel) and
// requires identical Results — the guarantee the parallel experiment
// engine builds on. Run under -race this also audits that Run touches no
// hidden shared state.
func TestRunConcurrentMatchesSerial(t *testing.T) {
	k, err := NewConvKernel("conc", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, 0, 4)
	base := testConfig()
	cfgs = append(cfgs, base)
	for _, entries := range []int{256, 1024} {
		c := testConfig()
		c.Duplo = true
		c.DetectCfg.LHB = duplo.LHBConfig{Entries: entries, Ways: 1}
		cfgs = append(cfgs, c)
	}
	oracle := testConfig()
	oracle.Duplo = true
	oracle.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
	cfgs = append(cfgs, oracle)

	serial := make([]Result, len(cfgs))
	for i, c := range cfgs {
		r, err := Run(c, k)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}

	const rounds = 3 // each config simulated concurrently multiple times
	results := make([]Result, len(cfgs)*rounds)
	errs := make([]error, len(cfgs)*rounds)
	var wg sync.WaitGroup
	for g := 0; g < len(cfgs)*rounds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = Run(cfgs[g%len(cfgs)], k)
		}(g)
	}
	wg.Wait()
	for g := range results {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		want := serial[g%len(cfgs)]
		if results[g].Stats != want.Stats {
			t.Errorf("concurrent run %d diverged from serial:\n got %+v\nwant %+v",
				g, results[g].Stats, want.Stats)
		}
	}
}
