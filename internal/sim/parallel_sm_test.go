package sim

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
	"duplo/internal/workload"
)

// smWorkerModes returns the same configuration on the serial reference loop
// and the sharded loop (forced to `workers` goroutines so the test exercises
// the two-phase tick even on a 1-core host).
func smWorkerModes(cfg Config, workers int) (serial, parallel Config) {
	serial = cfg
	serial.SMWorkers = 1
	parallel = cfg
	parallel.SMWorkers = workers
	return serial, parallel
}

// diffWorkers simulates k on the serial and sharded loops and requires
// byte-identical results (every Stats field plus the CTA counts; Config is
// an input and necessarily differs in SMWorkers).
func diffWorkers(t *testing.T, name string, cfg Config, k *Kernel, workers int) {
	t.Helper()
	serialCfg, parallelCfg := smWorkerModes(cfg, workers)
	se, err := Run(serialCfg, k)
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	pa, err := Run(parallelCfg, k)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if se.Stats != pa.Stats {
		t.Errorf("%s: SM-worker modes diverged\nserial:   %+v\nparallel: %+v", name, se.Stats, pa.Stats)
	}
	if se.SimulatedCTAs != pa.SimulatedCTAs || se.TotalCTAs != pa.TotalCTAs {
		t.Errorf("%s: CTA counts diverged: %d/%d vs %d/%d",
			name, se.SimulatedCTAs, se.TotalCTAs, pa.SimulatedCTAs, pa.TotalCTAs)
	}
	// Hardened twin: a cancellable context with every guard armed at its
	// default must not perturb a healthy run — the hardening contract is
	// strictly observational (DESIGN.md §5).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hardCfg := parallelCfg
	hardCfg.WatchdogWindow = DefaultWatchdogWindow
	ha, err := RunContext(ctx, hardCfg, k)
	if err != nil {
		t.Fatalf("%s hardened: %v", name, err)
	}
	if ha.Stats != pa.Stats {
		t.Errorf("%s: hardened run diverged\nplain:    %+v\nhardened: %+v", name, pa.Stats, ha.Stats)
	}
}

// TestParallelSMsByteIdenticalSmall is the always-on differential gate for
// the sharded loop on the unit-test layer, baseline and Duplo.
func TestParallelSMsByteIdenticalSmall(t *testing.T) {
	k, err := NewConvKernel("shard-small", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	diffWorkers(t, "baseline", cfg, k, 2)
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	diffWorkers(t, "duplo", cfg, k, 2)
}

// TestParallelSMsDifferentialMatrix is the full serial x parallel x
// {dense, event-driven} x {duplo off, LHB 1024, oracle} matrix over the
// Fig. 9 quick workloads — the acceptance gate of the SM-sharding PR, and
// the test the CI race job runs explicitly.
func TestParallelSMsDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	layers := [][2]string{{"ResNet", "C2"}, {"ResNet", "C3"}, {"GAN", "TC4"}}
	modes := []struct {
		name string
		set  func(*Config)
	}{
		{"base", func(*Config) {}},
		{"duplo1024", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Entries: 1024, Ways: 1}
		}},
		{"oracle", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
		}},
	}
	for _, id := range layers {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			t.Fatal(err)
		}
		k, err := NewConvKernel(l.FullName(), l.GemmParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			for _, dense := range []bool{false, true} {
				// Quick scale, like experiments.QuickOptions.
				cfg := TitanVConfig()
				cfg.MaxCTAs = 12
				cfg.SimSMs = 2
				cfg.DenseClock = dense
				m.set(&cfg)
				name := l.FullName() + "/" + m.name
				if dense {
					name += "/dense"
				} else {
					name += "/event"
				}
				diffWorkers(t, name, cfg, k, 2)
			}
		}
	}
}

// traceRun executes one traced run and returns the collector plus rendered
// Perfetto and CSV outputs.
func traceRun(t *testing.T, cfg Config, k *Kernel) (*trace.Collector, []byte, []byte) {
	t.Helper()
	col := trace.NewCollector(cfg.TraceMeta(0))
	cfg.Tracer = col
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	col.Finish(res.Cycles)
	var perfetto, csv bytes.Buffer
	if err := col.WritePerfetto(&perfetto); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return col, perfetto.Bytes(), csv.Bytes()
}

// TestParallelSMsTraceIdentical asserts the sharded loop reproduces the
// serial trace exactly: the per-SM event streams in capture order (phase B
// splices replayed service events back between the buffered issue events),
// the merged interval series, and the rendered Perfetto/CSV bytes.
func TestParallelSMsTraceIdentical(t *testing.T) {
	k, err := NewConvKernel("shard-trace", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig()
	base.Duplo = true
	base.DetectCfg.LHB = duplo.DefaultLHBConfig()
	serialCfg, parallelCfg := smWorkerModes(base, 2)

	sCol, sPerfetto, sCSV := traceRun(t, serialCfg, k)
	pCol, pPerfetto, pCSV := traceRun(t, parallelCfg, k)

	if sCol.Dropped() != 0 || pCol.Dropped() != 0 {
		t.Fatalf("ring overflow (serial %d, parallel %d dropped): grow RingCap for this test",
			sCol.Dropped(), pCol.Dropped())
	}
	for sm := 0; sm < base.SimSMs; sm++ {
		se, pe := sCol.Events(sm), pCol.Events(sm)
		if len(se) != len(pe) {
			t.Fatalf("SM %d: event count diverged: %d vs %d", sm, len(se), len(pe))
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("SM %d event %d diverged:\nserial:   %+v\nparallel: %+v", sm, i, se[i], pe[i])
			}
		}
	}
	si, pi := sCol.Intervals(), pCol.Intervals()
	if len(si) != len(pi) {
		t.Fatalf("interval count diverged: %d vs %d", len(si), len(pi))
	}
	for i := range si {
		if si[i] != pi[i] {
			t.Fatalf("interval %d diverged:\nserial:   %+v\nparallel: %+v", i, si[i], pi[i])
		}
	}
	if !bytes.Equal(sPerfetto, pPerfetto) {
		t.Error("Perfetto output diverged between serial and sharded loops")
	}
	if !bytes.Equal(sCSV, pCSV) {
		t.Error("CSV output diverged between serial and sharded loops")
	}
}

// TestParallelSMsRaceHammer runs sharded-mode simulations concurrently from
// multiple goroutines (mirroring TestRunConcurrentMatchesSerial) so the
// race detector sees the worker handoff under contention, and checks every
// result against its serial reference. GOMAXPROCS is raised for the
// duration so the worker goroutines actually spawn (runShardedLoop runs
// shards inline on a single-processor runtime) even on a 1-core host.
func TestParallelSMsRaceHammer(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	k, err := NewConvKernel("shard-hammer", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]Config, 0, 3)
	{
		cfg := testConfig()
		cfgs = append(cfgs, cfg)
		dup := cfg
		dup.Duplo = true
		dup.DetectCfg.LHB = duplo.DefaultLHBConfig()
		cfgs = append(cfgs, dup)
		dense := dup
		dense.DenseClock = true
		cfgs = append(cfgs, dense)
	}
	refs := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		cfg.SMWorkers = 1
		ref, err := Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	const replicas = 3
	var wg sync.WaitGroup
	errCh := make(chan error, len(cfgs)*replicas)
	for rep := 0; rep < replicas; rep++ {
		for i, cfg := range cfgs {
			wg.Add(1)
			cfg.SMWorkers = 2
			go func(i int, cfg Config) {
				defer wg.Done()
				res, err := Run(cfg, k)
				if err != nil {
					errCh <- err
					return
				}
				if res.Stats != refs[i].Stats {
					t.Errorf("cfg %d: sharded run diverged from serial reference", i)
				}
			}(i, cfg)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestWarpProgramMemoized pins the memoization contract: placeCTA-visible
// instruction streams from the canonical shared programs (relocated by the
// warp offsets) must match a freshly built absolute-address program for
// every warp of interior and edge CTAs alike.
func TestWarpProgramMemoized(t *testing.T) {
	k, err := NewConvKernel("memo", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	if k.progs == nil {
		t.Fatal("constructor did not populate the program cache")
	}
	gm, gn := k.GridCTAs()
	ctas := []int{0, gn - 1, (gm - 1) * gn, gm*gn - 1} // corners incl. edge tiles
	for _, cta := range ctas {
		for w := 0; w < warpsPerCTA; w++ {
			ref := newWarpProgram(k, k.warpAssignments(cta)[w])
			rt, ct, firstRow, firstCol := k.warpShape(cta, w)
			got := k.program(rt, ct)
			if got.Len() != ref.Len() {
				t.Fatalf("CTA %d warp %d: length %d, want %d", cta, w, got.Len(), ref.Len())
			}
			if ref.Len() == 0 {
				continue
			}
			if rt >= 1 && rt <= warpTileM && ct >= 1 && ct <= warpTileN && got != k.progs[rt][ct] {
				t.Fatalf("CTA %d warp %d: program not served from the cache", cta, w)
			}
			aOff, bOff, dOff := k.warpOffsets(firstRow, firstCol)
			for i := 0; i < ref.Len(); i++ {
				in := got.At(i)
				relocateInstr(&in, aOff, bOff, dOff)
				if want := ref.At(i); in != want {
					t.Fatalf("CTA %d warp %d instr %d: relocated %+v, want %+v", cta, w, i, in, want)
				}
			}
		}
	}
}
