package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"duplo/internal/trace"
)

// This file validates the hardening layer (DESIGN.md §5 "Robustness"):
// injected livelocks must trip the forward-progress watchdog within one
// window on both clocks and both loop modes, cancellation/deadlines/cycle
// bounds must abort with the right structured phase, and panics anywhere
// in the cycle loop must come back as errors with readable crash dumps —
// never as a hung or dead process.

// setInjection installs a testFaultInjection hook for the duration of the
// test. The hook is a package global, so tests using it must not run in
// parallel with each other.
func setInjection(t *testing.T, fn func(*gpuState)) {
	t.Helper()
	testFaultInjection = fn
	t.Cleanup(func() { testFaultInjection = nil })
}

// injectStuckWarps gates every active warp's scoreboard at farFuture: no
// instruction can ever issue, nothing is in flight to retire, and every
// wake estimate is farFuture — the canonical livelock.
func injectStuckWarps(g *gpuState) {
	for _, sm := range g.sms {
		for s := range sm.warps {
			w := &sm.warps[s]
			if !w.active {
				continue
			}
			for i := range w.regReady {
				w.regReady[i] = farFuture
			}
		}
	}
}

// injectFullLDST fills the listed SMs' LDST queues with entries that never
// drain: memory instructions stay back-pressured forever. With a subset of
// SMs the rest of the chip keeps running until the grid needs the stuck
// SMs' CTAs.
func injectFullLDST(g *gpuState, smIdx ...int) {
	for _, i := range smIdx {
		sm := g.sms[i]
		for len(sm.ldstBusy) < sm.cfg.LDSTQueueDepth {
			sm.ldstBusy = append(sm.ldstBusy, farFuture)
		}
	}
}

// injectBadPC corrupts one active warp's program counter on the given SM so
// the next decode hits warpProgram.At(-1) — the structured *SimError panic.
func injectBadPC(g *gpuState, smIdx int) {
	sm := g.sms[smIdx]
	for s := range sm.warps {
		w := &sm.warps[s]
		if w.active {
			w.pc = -1
			w.curOK = false
			return
		}
	}
}

// injectNilProg nil-s one active warp's program on the given SM: the next
// decode dereferences it — a raw runtime panic, not a *SimError.
func injectNilProg(g *gpuState, smIdx int) {
	sm := g.sms[smIdx]
	for s := range sm.warps {
		w := &sm.warps[s]
		if w.active {
			w.prog = nil
			return
		}
	}
}

func hardenKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := NewConvKernel("harden", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// asSimError asserts err is a *SimError in the given phase.
func asSimError(t *testing.T, err error, phase string) *SimError {
	t.Helper()
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("want *SimError, got %T: %v", err, err)
	}
	if se.Phase != phase {
		t.Fatalf("phase = %q, want %q (err: %v)", se.Phase, phase, err)
	}
	return se
}

// readDump asserts the error references a readable crash dump and returns
// its contents.
func readDump(t *testing.T, se *SimError) string {
	t.Helper()
	if se.Dump == "" {
		t.Fatalf("no crash dump attached: %v", se)
	}
	data, err := os.ReadFile(se.Dump)
	if err != nil {
		t.Fatalf("crash dump unreadable: %v", err)
	}
	if !strings.Contains(se.Error(), "crash dump: ") {
		t.Errorf("error text does not reference the dump: %q", se.Error())
	}
	return string(data)
}

// TestInjectedLivelockWatchdog is the acceptance matrix: an injected
// livelock must fail within one watchdog window — with a *SimError and a
// readable dump, never a hang — on both clocks and both loop modes, for
// both livelock shapes (stuck scoreboards and an un-drainable LDST queue).
func TestInjectedLivelockWatchdog(t *testing.T) {
	k := hardenKernel(t)
	const window = 2000
	injections := []struct {
		name string
		fn   func(*gpuState)
	}{
		{"stuck-warps", injectStuckWarps},
		{"full-ldst", func(g *gpuState) { injectFullLDST(g, 0, 1) }},
	}
	for _, dense := range []bool{false, true} {
		for _, workers := range []int{1, 2} {
			for _, inj := range injections {
				name := fmt.Sprintf("dense=%v/workers=%d/%s", dense, workers, inj.name)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig()
					cfg.DenseClock = dense
					cfg.SMWorkers = workers
					cfg.WatchdogWindow = window
					cfg.CrashDumpDir = t.TempDir()
					setInjection(t, inj.fn)
					_, err := Run(cfg, k)
					se := asSimError(t, err, PhaseWatchdog)
					// Progress never happens, so the fire cycle is the window
					// itself (plus at most one tick of slack).
					if se.Cycle < window || se.Cycle > window+1 {
						t.Errorf("watchdog fired at cycle %d, want ~%d", se.Cycle, window)
					}
					if !strings.Contains(se.Reason, "no forward progress") {
						t.Errorf("reason %q lacks the livelock diagnosis", se.Reason)
					}
					dump := readDump(t, se)
					for _, want := range []string{"duplo crash dump", "phase:  watchdog", "SM 0:", "SM 1:", "warp"} {
						if !strings.Contains(dump, want) {
							t.Errorf("dump lacks %q", want)
						}
					}
				})
			}
		}
	}
}

// TestRunContextCancel: cancelling the context aborts a livelocked run
// (watchdog disabled to prove the cancel path alone ends it) and the error
// unwraps to context.Canceled.
func TestRunContextCancel(t *testing.T) {
	k := hardenKernel(t)
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := testConfig()
			cfg.SMWorkers = workers
			cfg.WatchdogWindow = -1 // disabled: only the cancel can end this run
			setInjection(t, injectStuckWarps)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			_, err := RunContext(ctx, cfg, k)
			se := asSimError(t, err, PhaseCancelled)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("err does not unwrap to context.Canceled: %v", err)
			}
			if se.Cycle == 0 {
				t.Error("cancel observed at cycle 0: poll never ran")
			}
		})
	}
}

// TestRunContextPreCancelled: a dead context fails fast, before any tick.
func TestRunContextPreCancelled(t *testing.T) {
	k := hardenKernel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, testConfig(), k)
	se := asSimError(t, err, PhaseCancelled)
	if se.Cycle != 0 {
		t.Errorf("fail-fast at cycle %d, want 0", se.Cycle)
	}
}

// TestWallTimeout: Config.WallTimeout alone (background context) bounds a
// livelocked run and reports PhaseDeadline.
func TestWallTimeout(t *testing.T) {
	k := hardenKernel(t)
	cfg := testConfig()
	cfg.WatchdogWindow = -1
	cfg.WallTimeout = 20 * time.Millisecond
	setInjection(t, injectStuckWarps)
	_, err := Run(cfg, k)
	asSimError(t, err, PhaseDeadline)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err does not unwrap to DeadlineExceeded: %v", err)
	}
}

// TestMaxCycles: the cycle bound aborts a healthy run on both clocks.
func TestMaxCycles(t *testing.T) {
	k := hardenKernel(t)
	for _, dense := range []bool{false, true} {
		t.Run(fmt.Sprintf("dense=%v", dense), func(t *testing.T) {
			cfg := testConfig()
			cfg.DenseClock = dense
			cfg.MaxCycles = 1000
			_, err := Run(cfg, k)
			se := asSimError(t, err, PhaseCycleLimit)
			if se.Cycle <= 1000 {
				t.Errorf("fired at cycle %d, want > MaxCycles", se.Cycle)
			}
		})
	}
}

// TestPanicContainment: corruptions that panic inside the cycle loop —
// both the structured *SimError decode panic and a raw nil dereference —
// come back as errors with dumps on the serial loop and from a spawned
// shard goroutine.
func TestPanicContainment(t *testing.T) {
	k := hardenKernel(t)
	cases := []struct {
		name  string
		fn    func(*gpuState, int)
		phase string
		want  string
	}{
		{"bad-pc", injectBadPC, PhaseProgram, "out of range"},
		{"nil-prog", injectNilProg, PhasePanic, "panic:"},
	}
	for _, workers := range []int{1, 2} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, tc.name), func(t *testing.T) {
				cfg := testConfig()
				cfg.SMWorkers = workers
				cfg.CrashDumpDir = t.TempDir()
				// With 2 workers SM 1 runs on a spawned shard goroutine, so
				// this exercises the worker-side recover path.
				smIdx := 0
				if workers > 1 {
					smIdx = 1
				}
				setInjection(t, func(g *gpuState) { tc.fn(g, smIdx) })
				_, err := Run(cfg, k)
				se := asSimError(t, err, tc.phase)
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("error %q lacks %q", err.Error(), tc.want)
				}
				dump := readDump(t, se)
				if !strings.Contains(dump, "panic stack:") {
					t.Error("dump lacks the panic stack section")
				}
			})
		}
	}
}

// TestCrashDumpContainsTraceTail: with a collector attached and only part
// of the chip stuck, the dump carries the healthy SMs' trace-ring tails —
// the last thing the pipeline did before the freeze.
func TestCrashDumpContainsTraceTail(t *testing.T) {
	k := hardenKernel(t)
	cfg := testConfig()
	cfg.WatchdogWindow = 2000
	cfg.CrashDumpDir = t.TempDir()
	col := trace.NewCollector(cfg.TraceMeta(1000))
	cfg.Tracer = col
	// Only SM 1 is stuck: SM 0 runs (emitting events) until the grid is
	// blocked on SM 1's CTAs, then the watchdog fires.
	setInjection(t, func(g *gpuState) { injectFullLDST(g, 1) })
	_, err := Run(cfg, k)
	se := asSimError(t, err, PhaseWatchdog)
	dump := readDump(t, se)
	if !strings.Contains(dump, "trace ring tail, SM 0") {
		t.Errorf("dump lacks SM 0's trace tail:\n%s", dump)
	}
	if !strings.Contains(dump, "ldst=24/24") {
		t.Errorf("dump does not show SM 1's full LDST queue")
	}
}

// TestSimErrorUnwrap pins the error-chain contract the CLIs rely on.
func TestSimErrorUnwrap(t *testing.T) {
	inner := errors.New("inner")
	se := &SimError{Phase: PhaseCancelled, Cycle: 7, Reason: "r", Dump: "/tmp/d", Err: inner}
	if !errors.Is(se, inner) {
		t.Error("Unwrap lost the inner error")
	}
	for _, want := range []string{"cancelled", "cycle 7", "crash dump: /tmp/d"} {
		if !strings.Contains(se.Error(), want) {
			t.Errorf("Error() %q lacks %q", se.Error(), want)
		}
	}
}

// TestHardenedRunByteIdentical: the full guard stack at healthy settings is
// invisible — byte-identical Stats across clocks, worker counts, and Duplo
// on/off.
func TestHardenedRunByteIdentical(t *testing.T) {
	k := hardenKernel(t)
	for _, dense := range []bool{false, true} {
		for _, workers := range []int{1, 2} {
			for _, dup := range []bool{false, true} {
				name := fmt.Sprintf("dense=%v/workers=%d/duplo=%v", dense, workers, dup)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig()
					cfg.DenseClock = dense
					cfg.SMWorkers = workers
					cfg.Duplo = dup
					plain, err := Run(cfg, k)
					if err != nil {
						t.Fatal(err)
					}
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					hcfg := cfg
					hcfg.WatchdogWindow = DefaultWatchdogWindow
					hcfg.MaxCycles = maxSimCycles
					hcfg.WallTimeout = time.Hour
					hcfg.CrashDumpDir = t.TempDir()
					hard, err := RunContext(ctx, hcfg, k)
					if err != nil {
						t.Fatal(err)
					}
					if plain.Stats != hard.Stats {
						t.Errorf("hardened run diverged\nplain: %+v\nhard:  %+v", plain.Stats, hard.Stats)
					}
				})
			}
		}
	}
}
