package sim

import (
	"fmt"

	"duplo/internal/conv"
	"duplo/internal/lowering"
)

// SharedVariant selects which GEMM operands a CTA stages in shared memory —
// the §II-C study. The paper's baseline is SharedCOnly: with a 96KB shared
// memory, the 32KB-per-CTA footprint lets three CTAs run concurrently,
// providing the TLP the other variants lack; A and B are then fetched from
// global memory by wmma.load instructions, which is the stream Duplo
// filters.
type SharedVariant int

const (
	// SharedCOnly: only the C accumulator tile in shared memory
	// (32KB/CTA, up to 3 CTAs). The paper's baseline.
	SharedCOnly SharedVariant = iota
	// SharedAC: A and C staged (48KB/CTA, up to 2 CTAs).
	SharedAC
	// SharedABC: everything staged (64KB/CTA, 1 CTA, worst TLP).
	SharedABC
)

// String names the variant.
func (v SharedVariant) String() string {
	switch v {
	case SharedCOnly:
		return "C-only"
	case SharedAC:
		return "A+C"
	case SharedABC:
		return "A+B+C"
	}
	return "?"
}

// sharedBytesPerCTA returns the §II-C footprints: 16KB each for the
// half-precision A and B tiles, 32KB for the fp32 C tile.
func (v SharedVariant) sharedBytesPerCTA() int {
	switch v {
	case SharedABC:
		return 64 << 10
	case SharedAC:
		return 48 << 10
	default:
		return 32 << 10
	}
}

// sharedMemoryKB is the configurable Volta shared-memory capacity (§II-C).
const sharedMemoryKB = 96

// Device memory map: the workspace (A), filter matrix (B) and output (D)
// regions are placed at fixed, well-separated bases.
const (
	aBase = 0x1_0000_0000
	bBase = 0x5_0000_0000
	dBase = 0x9_0000_0000
)

// Kernel describes one GEMM launch: D = A x B with A an M x K matrix of
// half-precision data (row pitch KPad), B K x N (row pitch NPad), D M x N
// fp32 (row pitch NPad). When the A operand is a lowered convolution
// workspace, Conv and Layout carry the duplication structure for Duplo.
type Kernel struct {
	Name                string
	M, N, K             int
	MPad, NPad, KPad    int
	ElemSize            int // A/B element size (2 = half)
	DElemSize           int // D element size (4 = fp32)
	ABase, BBase, DBase uint64
	Variant             SharedVariant

	// Conv is non-nil when A is the lowered workspace of a convolution;
	// Layout then describes the workspace region (programs the detection
	// unit at launch).
	Conv   *conv.Params
	Layout lowering.Layout

	// progs caches the canonical warp programs shared read-only across
	// every placeCTA call (see program); nil for hand-built Kernel
	// literals, which fall back to building programs on demand.
	progs *progCache
}

// progCache holds one immutable canonical program per warp shape
// (rt row tiles x ct column tiles); index [0][*] and [*][0] stay nil.
type progCache [warpTileM + 1][warpTileN + 1]*warpProgram

// initProgCache eagerly builds the canonical program for every possible
// warp shape. Kernels are immutable during simulation, so the cache can be
// shared read-only across CTAs, SMs and concurrent Runs.
func (k *Kernel) initProgCache() {
	var c progCache
	for rt := 1; rt <= warpTileM; rt++ {
		for ct := 1; ct <= warpTileN; ct++ {
			c[rt][ct] = newWarpProgram(k, canonicalWork(rt, ct))
		}
	}
	k.progs = &c
}

// program returns the canonical warp program for an rt x ct warp shape —
// tile origins relative to the warp's first row/column, relocated at decode
// time by the warpCtx offsets (sm.go). Shapes with no tiles yield an empty
// program.
func (k *Kernel) program(rt, ct int) *warpProgram {
	if k.progs != nil && rt >= 1 && rt <= warpTileM && ct >= 1 && ct <= warpTileN {
		return k.progs[rt][ct]
	}
	return newWarpProgram(k, canonicalWork(rt, ct))
}

// canonicalWork builds the relative-origin work of an rt x ct warp shape:
// row tiles at 0, 16, ... and column tiles likewise.
func canonicalWork(rt, ct int) warpWork {
	rows := make([]int, rt)
	for i := range rows {
		rows[i] = i * 16
	}
	cols := make([]int, ct)
	for i := range cols {
		cols[i] = i * 16
	}
	return warpWork{rowTiles: rows, colTiles: cols}
}

// NewConvKernel builds the tensor-core GEMM kernel for a lowered
// convolution: M = N*OutH*OutW, K = FH*FW*C, N = filters (§II-B, Fig. 4).
func NewConvKernel(name string, p conv.Params) (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	layout := lowering.NewLayout(p, aBase, 2)
	k := &Kernel{
		Name:      name,
		M:         p.GemmM(),
		N:         p.GemmN(),
		K:         p.GemmK(),
		MPad:      lowering.RoundUp(p.GemmM(), lowering.Tile),
		NPad:      lowering.RoundUp(p.GemmN(), lowering.Tile),
		KPad:      layout.KPad,
		ElemSize:  2,
		DElemSize: 4,
		ABase:     aBase,
		BBase:     bBase,
		DBase:     dBase,
		Variant:   SharedCOnly,
		Conv:      &p,
		Layout:    layout,
	}
	k.initProgCache()
	return k, nil
}

// NewGemmKernel builds a plain GEMM launch with no duplication structure
// (e.g. the weight-gradient GEMM of a training pass); Duplo bypasses every
// load because no workspace region is programmed.
func NewGemmKernel(name string, m, n, kdim int) (*Kernel, error) {
	if m <= 0 || n <= 0 || kdim <= 0 {
		return nil, fmt.Errorf("sim: invalid GEMM dims %dx%dx%d", m, n, kdim)
	}
	k := &Kernel{
		Name:      name,
		M:         m,
		N:         n,
		K:         kdim,
		MPad:      lowering.RoundUp(m, lowering.Tile),
		NPad:      lowering.RoundUp(n, lowering.Tile),
		KPad:      lowering.RoundUp(kdim, lowering.Tile),
		ElemSize:  2,
		DElemSize: 4,
		ABase:     aBase,
		BBase:     bBase,
		DBase:     dBase,
		Variant:   SharedCOnly,
	}
	k.initProgCache()
	return k, nil
}

// CTA tiling of the baseline kernel (cudaTensorCoreGemm decomposition): a
// CTA of 8 warps computes a 128x128 D tile; each warp owns a 32x64 region
// organized as 2x4 tiles of 16x16, warps arranged 4 rows x 2 columns.
const (
	warpsPerCTA  = 8
	warpTileM    = 2 // 16x16 tiles per warp, M direction
	warpTileN    = 4 // 16x16 tiles per warp, N direction
	ctaWarpRows  = 4
	ctaWarpCols  = 2
	ctaTileMElem = ctaWarpRows * warpTileM * 16 // 128
	ctaTileNElem = ctaWarpCols * warpTileN * 16 // 128
)

// GridCTAs returns the CTA grid size (N-major like CUDA blockIdx.x, then M).
func (k *Kernel) GridCTAs() (gridM, gridN int) {
	gridM = (k.MPad + ctaTileMElem - 1) / ctaTileMElem
	gridN = (k.NPad + ctaTileNElem - 1) / ctaTileNElem
	return gridM, gridN
}

// TotalCTAs returns the full grid size.
func (k *Kernel) TotalCTAs() int {
	gm, gn := k.GridCTAs()
	return gm * gn
}

// KTiles returns the number of 16-deep reduction steps.
func (k *Kernel) KTiles() int { return k.KPad / 16 }

// CTAsPerSM returns how many CTAs fit concurrently on one SM, limited by
// shared memory (§II-C), the 8-warps-per-CTA occupancy, and MaxCTAsPerSM.
func (k *Kernel) CTAsPerSM(cfg Config) int {
	bySmem := (sharedMemoryKB << 10) / k.Variant.sharedBytesPerCTA()
	byWarp := cfg.MaxWarpsPerSM / warpsPerCTA
	n := bySmem
	if byWarp < n {
		n = byWarp
	}
	if cfg.MaxCTAsPerSM < n {
		n = cfg.MaxCTAsPerSM
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ctaCoords returns the D-tile element origin of CTA index i (N-major
// ordering: consecutive CTAs sweep the N dimension first, which is CUDA's
// blockIdx.x-fastest convention).
func (k *Kernel) ctaCoords(i int) (mBase, nBase int) {
	_, gn := k.GridCTAs()
	return (i / gn) * ctaTileMElem, (i % gn) * ctaTileNElem
}

// warpWork describes the tiles a warp computes: absolute element origins of
// its row tiles (M) and column tiles (N). Edge warps own fewer tiles.
type warpWork struct {
	rowTiles []int // element row origins, each a 16-row A/D stripe
	colTiles []int // element col origins, each a 16-col B/D stripe
}

// warpAssignments lists per-warp work for CTA index cta. Warps with no
// in-range tiles get empty work (they exit immediately).
func (k *Kernel) warpAssignments(cta int) [warpsPerCTA]warpWork {
	mBase, nBase := k.ctaCoords(cta)
	var out [warpsPerCTA]warpWork
	for w := 0; w < warpsPerCTA; w++ {
		wr := w % ctaWarpRows
		wc := w / ctaWarpRows
		var rows, cols []int
		for t := 0; t < warpTileM; t++ {
			r := mBase + (wr*warpTileM+t)*16
			if r < k.MPad {
				rows = append(rows, r)
			}
		}
		for t := 0; t < warpTileN; t++ {
			c := nBase + (wc*warpTileN+t)*16
			if c < k.NPad {
				cols = append(cols, c)
			}
		}
		if len(rows) > 0 && len(cols) > 0 {
			out[w] = warpWork{rowTiles: rows, colTiles: cols}
		}
	}
	return out
}

// warpShape returns the tile shape of warp w of CTA cta — rt row tiles by
// ct column tiles — plus the element origin of its first tile. The in-range
// tiles of a warp always form a contiguous prefix (MPad/NPad are multiples
// of 16 and tile origins ascend by 16), so (rt, ct) plus the origin fully
// determines the work warpAssignments would list: rowTiles[i] =
// firstRow + 16i, colTiles[j] = firstCol + 16j.
func (k *Kernel) warpShape(cta, w int) (rt, ct, firstRow, firstCol int) {
	mBase, nBase := k.ctaCoords(cta)
	wr := w % ctaWarpRows
	wc := w / ctaWarpRows
	firstRow = mBase + wr*warpTileM*16
	firstCol = nBase + wc*warpTileN*16
	rt = tilePrefix(firstRow, k.MPad, warpTileM)
	ct = tilePrefix(firstCol, k.NPad, warpTileN)
	return rt, ct, firstRow, firstCol
}

// tilePrefix counts how many of a warp's up-to-max tiles starting at first
// fall inside the padded extent.
func tilePrefix(first, pad, max int) int {
	if first >= pad {
		return 0
	}
	if n := (pad - first) / 16; n < max {
		return n
	}
	return max
}

// warpOffsets returns the address relocations that map the canonical
// rt x ct program onto a warp whose first tile sits at (firstRow,
// firstCol): canonical A loads shift by firstRow rows of the workspace,
// B loads by firstCol columns of the filter matrix, D stores by both.
func (k *Kernel) warpOffsets(firstRow, firstCol int) (aOff, bOff, dOff uint64) {
	aOff = uint64(firstRow*k.KPad) * uint64(k.ElemSize)
	bOff = uint64(firstCol) * uint64(k.ElemSize)
	dOff = uint64(firstRow*k.NPad+firstCol) * uint64(k.DElemSize)
	return aOff, bOff, dOff
}

// TraceWarp decodes the first n instructions of one warp of one CTA — the
// inspection hook behind cmd/duplotrace. It returns fewer than n when the
// warp's program is shorter, and an error for out-of-range indices.
func (k *Kernel) traceWarp(cta, warp, n int) ([]Instr, error) {
	if cta < 0 || cta >= k.TotalCTAs() {
		return nil, fmt.Errorf("sim: CTA %d out of range (grid %d)", cta, k.TotalCTAs())
	}
	if warp < 0 || warp >= warpsPerCTA {
		return nil, fmt.Errorf("sim: warp %d out of range (0-%d)", warp, warpsPerCTA-1)
	}
	rt, ct, firstRow, firstCol := k.warpShape(cta, warp)
	prog := k.program(rt, ct)
	aOff, bOff, dOff := k.warpOffsets(firstRow, firstCol)
	if n > prog.Len() {
		n = prog.Len()
	}
	out := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		in := prog.At(i)
		relocateInstr(&in, aOff, bOff, dOff)
		out = append(out, in)
	}
	return out, nil
}

// TraceWarp is the exported form of traceWarp.
func TraceWarp(k *Kernel, cta, warp, n int) ([]Instr, error) { return k.traceWarp(cta, warp, n) }
