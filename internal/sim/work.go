package sim

// Work is the static instruction and footprint profile of a kernel's
// simulated CTA prefix: the exact warp-level instruction counts the warp
// programs will issue (isa.go decodes 2rt A-loads + 2ct B-loads + rt*ct
// MMAs per k-tile block and rt*ct epilogue stores per warp) and the padded
// A/B extents those CTAs touch. It is computed without simulating — the
// analytical predictor (internal/predictor) builds its feature vectors
// from it — and is exact by construction, not an estimate: the simulator
// executes precisely these instructions.
type Work struct {
	// CTAs is the simulated CTA count (the maxCTAs cap applied the same
	// way RunContext applies Config.MaxCTAs).
	CTAs int
	// Warps counts warps with non-empty programs.
	Warps int64
	// Warp-level instruction counts over all simulated CTAs.
	ALoads, BLoads, MMAs, Stores int64
	// RowsCovered / ColsCovered are the padded element extents of the A
	// rows and B columns the simulated prefix touches (compulsory-traffic
	// footprint; both clamped to MPad / NPad).
	RowsCovered, ColsCovered int
}

// Instructions returns the total warp-level instruction count.
func (w Work) Instructions() int64 { return w.ALoads + w.BLoads + w.MMAs + w.Stores }

// RowLoads converts the macro-op load counts into the row-vector units
// Stats.TensorLoads is kept in: each wmma.load expands into tileRows row
// loads (§II-B), and the detection unit sees each row individually.
func (w Work) RowLoads() int64 { return (w.ALoads + w.BLoads) * tileRows }

// ARowLoads is the A-operand share of RowLoads. Every A row load of a
// lowered-workspace kernel consults the detection unit, so this is
// exactly Stats.LHB.Lookups when Duplo is on.
func (w Work) ARowLoads() int64 { return w.ALoads * tileRows }

// StaticWork profiles the first min(maxCTAs, TotalCTAs) CTAs of the grid
// (maxCTAs <= 0 profiles the whole grid), mirroring the dispatch order of
// gpu.go: CTA indices ascend, N-major.
func (k *Kernel) StaticWork(maxCTAs int) Work {
	n := k.TotalCTAs()
	if maxCTAs > 0 && n > maxCTAs {
		n = maxCTAs
	}
	w := Work{CTAs: n}
	ktiles := int64(k.KTiles())
	rowMax, colMax := 0, 0
	for cta := 0; cta < n; cta++ {
		for warp := 0; warp < warpsPerCTA; warp++ {
			rt, ct, firstRow, firstCol := k.warpShape(cta, warp)
			if rt == 0 || ct == 0 {
				continue
			}
			w.Warps++
			w.ALoads += ktiles * 2 * int64(rt)
			w.BLoads += ktiles * 2 * int64(ct)
			w.MMAs += ktiles * int64(rt) * int64(ct)
			w.Stores += int64(rt) * int64(ct)
			if r := firstRow + rt*16; r > rowMax {
				rowMax = r
			}
			if c := firstCol + ct*16; c > colMax {
				colMax = c
			}
		}
	}
	w.RowsCovered, w.ColsCovered = rowMax, colMax
	return w
}
