package sim

import (
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	cfg := TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 16
	return cfg
}

// A small stride-1 layer with heavy duplication.
var testLayer = conv.Params{N: 2, H: 16, W: 16, C: 16, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}

func TestKernelGeometry(t *testing.T) {
	k, err := NewConvKernel("test", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	if k.M != 2*16*16 || k.K != 3*3*16 || k.N != 32 {
		t.Fatalf("GEMM dims %dx%dx%d", k.M, k.K, k.N)
	}
	if k.KPad%16 != 0 || k.NPad%16 != 0 || k.MPad%16 != 0 {
		t.Fatal("padded dims not tile aligned")
	}
	gm, gn := k.GridCTAs()
	if gm*gn != k.TotalCTAs() || k.TotalCTAs() <= 0 {
		t.Fatalf("grid %dx%d", gm, gn)
	}
	if k.KTiles() != k.KPad/16 {
		t.Fatal("KTiles")
	}
}

func TestCTAsPerSMVariants(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	cfg := testConfig()
	// §II-C: C-only -> 3 CTAs, A+C -> 2, A+B+C -> 1.
	k.Variant = SharedCOnly
	if got := k.CTAsPerSM(cfg); got != 3 {
		t.Errorf("C-only CTAs = %d, want 3", got)
	}
	k.Variant = SharedAC
	if got := k.CTAsPerSM(cfg); got != 2 {
		t.Errorf("A+C CTAs = %d, want 2", got)
	}
	k.Variant = SharedABC
	if got := k.CTAsPerSM(cfg); got != 1 {
		t.Errorf("A+B+C CTAs = %d, want 1", got)
	}
}

func TestWarpAssignmentsCoverCTA(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	work := k.warpAssignments(0)
	rowSeen := map[int]int{}
	colSeen := map[int]int{}
	for _, w := range work {
		for _, r := range w.rowTiles {
			rowSeen[r]++
		}
		for _, c := range w.colTiles {
			colSeen[c]++
		}
	}
	// CTA 0 covers rows 0..127 (8 tiles) if MPad >= 128.
	if k.MPad >= 128 && len(rowSeen) != 8 {
		t.Fatalf("row tiles covered: %d", len(rowSeen))
	}
	// NPad = 32 here: only two column tiles exist.
	if len(colSeen) != k.NPad/16 {
		t.Fatalf("col tiles covered: %d, want %d", len(colSeen), k.NPad/16)
	}
}

func TestWarpProgramDecoding(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	work := k.warpAssignments(0)
	for wi, w := range work {
		prog := newWarpProgram(k, w)
		if prog.Len() == 0 {
			continue
		}
		loads, mmas, stores := 0, 0, 0
		regWritten := make([]bool, prog.RegGroups())
		for i := 0; i < prog.Len(); i++ {
			in := prog.At(i)
			switch in.Op {
			case OpLoadA, OpLoadB:
				loads++
				regWritten[in.Dst] = true
			case OpMMA:
				mmas++
				// Data-flow sanity: MMA sources must have been written.
				if !regWritten[in.SrcA] || !regWritten[in.SrcB] {
					t.Fatalf("warp %d instr %d: MMA reads unwritten register", wi, i)
				}
				regWritten[in.Dst] = true
			case OpStoreD:
				stores++
				if !regWritten[in.SrcA] {
					t.Fatalf("warp %d instr %d: store reads unwritten accumulator", wi, i)
				}
			}
		}
		rt, ct := len(w.rowTiles), len(w.colTiles)
		kt := k.KTiles()
		if loads != kt*(2*rt+2*ct) {
			t.Fatalf("warp %d: loads %d, want %d", wi, loads, kt*(2*rt+2*ct))
		}
		if mmas != kt*rt*ct {
			t.Fatalf("warp %d: mmas %d, want %d", wi, mmas, kt*rt*ct)
		}
		if stores != rt*ct {
			t.Fatalf("warp %d: stores %d, want %d", wi, stores, rt*ct)
		}
	}
}

// Octet duplication: per k-step each A/B tile is loaded exactly twice at the
// same address (§II-B).
func TestOctetDuplicateLoads(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	work := k.warpAssignments(0)
	prog := newWarpProgram(k, work[0])
	addrCount := map[uint64]int{}
	for i := 0; i < prog.blockLn; i++ { // first k-step
		in := prog.At(i)
		if in.Op == OpLoadA || in.Op == OpLoadB {
			addrCount[in.Addr]++
		}
	}
	for a, n := range addrCount {
		if n != 2 {
			t.Fatalf("address %#x loaded %d times, want 2", a, n)
		}
	}
}

func TestLineSpan(t *testing.T) {
	// 16 rows of 32 bytes with a 32-byte pitch: fully contiguous 512B ->
	// 4 lines of 128B.
	in := Instr{Addr: 0x1000, RowPitch: 32, RowBytes: 32}
	lines := lineSpan(nil, in, 128)
	if len(lines) != 4 {
		t.Fatalf("contiguous tile lines = %d, want 4", len(lines))
	}
	// 16 rows with a large pitch: 16 distinct lines.
	in = Instr{Addr: 0x1000, RowPitch: 4096, RowBytes: 32}
	lines = lineSpan(nil, in, 128)
	if len(lines) != 16 {
		t.Fatalf("strided tile lines = %d, want 16", len(lines))
	}
	// Misaligned segment straddling a line boundary.
	in = Instr{Addr: 0x10F0, RowPitch: 4096, RowBytes: 32}
	lines = lineSpan(nil, in, 128)
	if len(lines) != 32 {
		t.Fatalf("straddling tile lines = %d, want 32", len(lines))
	}
}

func TestCacheArrayLRU(t *testing.T) {
	c := newCacheArray(4*128, 128, 2)                  // 2 sets x 2 ways
	a, b, d := uint64(0), uint64(2*128), uint64(4*128) // same set (stride 2 lines)
	if c.Lookup(a) {
		t.Fatal("cold miss expected")
	}
	c.Insert(a)
	c.Insert(b)
	if !c.Lookup(a) || !c.Lookup(b) {
		t.Fatal("both ways should hit")
	}
	c.Lookup(a) // make b the LRU
	c.Insert(d) // evicts b
	if c.Lookup(b) {
		t.Fatal("LRU way should have been evicted")
	}
	if !c.Lookup(a) || !c.Lookup(d) {
		t.Fatal("a and d should be resident")
	}
}

func TestRunBaselineCompletes(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	res, err := Run(testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instructions <= 0 {
		t.Fatalf("empty result %+v", res.Stats)
	}
	if res.TensorLoads == 0 || res.MMAs == 0 || res.Stores == 0 {
		t.Fatalf("missing instruction classes: %+v", res.Stats)
	}
	if res.LoadsEliminated != 0 || res.LHB.Lookups != 0 {
		t.Fatal("baseline must not touch the LHB")
	}
	if res.DRAMLines == 0 {
		t.Fatal("expected DRAM traffic")
	}
}

func TestRunDuploFasterAndCorrectCounts(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	cfg := testConfig()
	base, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duplo = true
	dup, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	// Same work.
	if dup.MMAs != base.MMAs || dup.Stores != base.Stores || dup.TensorLoads != base.TensorLoads {
		t.Fatalf("instruction counts differ: base %+v vs duplo %+v", base.Stats, dup.Stats)
	}
	if dup.LHB.Lookups == 0 || dup.LHB.Hits == 0 {
		t.Fatalf("expected LHB activity: %+v", dup.LHB)
	}
	if dup.LoadsEliminated == 0 {
		t.Fatal("expected eliminated loads")
	}
	if dup.Cycles >= base.Cycles {
		t.Fatalf("Duplo (%d cycles) not faster than baseline (%d)", dup.Cycles, base.Cycles)
	}
	// This small layer fits in cache, so eliminated loads were L1 hits in
	// the baseline: traffic can only stay equal or shrink.
	if dup.DRAMLines > base.DRAMLines {
		t.Fatalf("Duplo DRAM lines %d > baseline %d", dup.DRAMLines, base.DRAMLines)
	}
	if Speedup(base, dup) <= 0 {
		t.Fatal("speedup must be positive")
	}
}

// Under cache pressure (tiny L1/L2), duplicate refetches reach DRAM in the
// baseline; Duplo's renaming must cut the DRAM read traffic — the Fig. 11
// effect.
func TestDuploReducesDRAMTrafficUnderPressure(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	cfg := testConfig()
	cfg.L1KB = 8
	cfg.L2KB = 64
	base, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duplo = true
	dup, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if dup.DRAMLines >= base.DRAMLines {
		t.Fatalf("Duplo DRAM lines %d >= baseline %d under cache pressure", dup.DRAMLines, base.DRAMLines)
	}
}

// A plain GEMM kernel (no conv info) must run under Duplo with zero LHB
// activity — the detection unit stays power-gated.
func TestRunPlainGemmBypasses(t *testing.T) {
	k, err := NewGemmKernel("wgrad", 512, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Duplo = true
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.LHB.Lookups != 0 || res.LoadsEliminated != 0 {
		t.Fatalf("plain GEMM must bypass the LHB: %+v", res.LHB)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
}

// Oracle LHB must dominate finite LHBs, which must dominate tiny ones.
func TestLHBSizeMonotonicity(t *testing.T) {
	k, _ := NewConvKernel("test", testLayer)
	cfg := testConfig()
	cfg.Duplo = true
	hit := func(c duplo.LHBConfig) float64 {
		cfg.DetectCfg.LHB = c
		res, err := Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		return res.LHBHitRate()
	}
	small := hit(duplo.LHBConfig{Entries: 64, Ways: 1})
	large := hit(duplo.LHBConfig{Entries: 2048, Ways: 1})
	oracle := hit(duplo.LHBConfig{Oracle: true})
	if !(small <= large+1e-9 && large <= oracle+1e-9) {
		t.Fatalf("hit rates not monotone: %v %v %v", small, large, oracle)
	}
	if oracle == 0 {
		t.Fatal("oracle hit rate zero")
	}
}

func TestConfigValidate(t *testing.T) {
	good := TitanVConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.SimSMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("SimSMs=0 should fail")
	}
	bad = good
	bad.SimSMs = 200
	if err := bad.Validate(); err == nil {
		t.Error("SimSMs>NumSMs should fail")
	}
	bad = good
	bad.Schedulers = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing schedulers should fail")
	}
	bad = good
	bad.SectorBytes = 33
	if err := bad.Validate(); err == nil {
		t.Error("bad sector size should fail")
	}
}

func TestDRAMBytesPerCycle(t *testing.T) {
	cfg := TitanVConfig()
	// 652.8 GB/s at 1.2 GHz = 544 B/cycle.
	if got := cfg.DRAMBytesPerCycle(); got < 543.9 || got > 544.1 {
		t.Fatalf("DRAM B/cyc = %v", got)
	}
}

func TestStatsAddAndBreakdown(t *testing.T) {
	var a, b Stats
	a.TensorLoads = 3
	a.ServiceLines[ServiceL1] = 3
	b.TensorLoads = 2
	b.ServiceLines[ServiceDRAM] = 1
	a.Add(b)
	if a.TensorLoads != 5 {
		t.Fatal("Add failed")
	}
	br := a.ServiceBreakdown()
	if br[ServiceL1] != 0.75 || br[ServiceDRAM] != 0.25 {
		t.Fatalf("breakdown %+v", br)
	}
}

func TestServiceLevelStrings(t *testing.T) {
	names := []string{"LHB", "L1$", "L2$", "DRAM"}
	for i, w := range names {
		if ServiceLevel(i).String() != w {
			t.Errorf("level %d = %q", i, ServiceLevel(i).String())
		}
	}
}
