package sim

import (
	"fmt"

	duplo "duplo/internal/core"
)

// ServiceLevel identifies which component of the memory hierarchy supplied a
// load's data — the Fig. 11 breakdown.
type ServiceLevel int

const (
	ServiceLHB ServiceLevel = iota
	ServiceL1
	ServiceL2
	ServiceDRAM
	serviceLevels
)

// String names the level like the Fig. 11 legend.
func (s ServiceLevel) String() string {
	switch s {
	case ServiceLHB:
		return "LHB"
	case ServiceL1:
		return "L1$"
	case ServiceL2:
		return "L2$"
	case ServiceDRAM:
		return "DRAM"
	}
	return "?"
}

// Stats aggregates the counters one simulation produces.
type Stats struct {
	Cycles int64

	// Instruction counts (warp-level).
	Instructions    int64
	TensorLoads     int64 // wmma.load.a/b issued
	LoadsEliminated int64 // tensor-core-loads removed by Duplo renaming
	MMAs            int64
	Stores          int64

	// Issue-stall accounting (per scheduler-cycle with nothing issued).
	IssueStallCycles int64
	LDSTStallCycles  int64 // stalls caused by a full LDST queue (§V-B)

	// Memory-system event counts, in 128B-line units.
	L1Accesses int64 // line accesses presented to L1 (incl. parallel lookups)
	L1Hits     int64
	L2Accesses int64
	L2Hits     int64
	DRAMLines  int64 // lines transferred from DRAM
	StoreLines int64 // store line transactions (write-through)
	MSHRMerges int64

	// ServiceLines[level] counts line-equivalents supplied by each level
	// (LHB hits credit the lines the load would otherwise have fetched).
	ServiceLines [serviceLevels]int64

	// Duplo detection unit counters (aggregated over SMs).
	LHB duplo.LHBStats
	// Register sharing: renames vs fresh allocations.
	RenameCount int64
	AllocCount  int64
}

// Add accumulates other into s (used to merge per-SM stats). The merge in
// Run iterates SMs in ascending id order regardless of how many goroutines
// simulated them: every field is integer-summed (no floats), so the merged
// Stats are byte-identical at any Config.SMWorkers value.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.TensorLoads += o.TensorLoads
	s.LoadsEliminated += o.LoadsEliminated
	s.MMAs += o.MMAs
	s.Stores += o.Stores
	s.IssueStallCycles += o.IssueStallCycles
	s.LDSTStallCycles += o.LDSTStallCycles
	s.L1Accesses += o.L1Accesses
	s.L1Hits += o.L1Hits
	s.L2Accesses += o.L2Accesses
	s.L2Hits += o.L2Hits
	s.DRAMLines += o.DRAMLines
	s.StoreLines += o.StoreLines
	s.MSHRMerges += o.MSHRMerges
	for i := range s.ServiceLines {
		s.ServiceLines[i] += o.ServiceLines[i]
	}
	s.LHB.Lookups += o.LHB.Lookups
	s.LHB.Hits += o.LHB.Hits
	s.LHB.Misses += o.LHB.Misses
	s.LHB.Allocs += o.LHB.Allocs
	s.LHB.Replacements += o.LHB.Replacements
	s.LHB.Releases += o.LHB.Releases
	s.LHB.StoreEvicts += o.LHB.StoreEvicts
	s.LHB.Relays += o.LHB.Relays
	s.RenameCount += o.RenameCount
	s.AllocCount += o.AllocCount
}

// DumpSummary renders the counters as one bounded key=value line for
// crash dumps (dump.go) — a per-SM progress snapshot, not an export
// format.
func (s Stats) DumpSummary() string {
	return fmt.Sprintf(
		"instr=%d tcloads=%d elim=%d mmas=%d stores=%d issueStall=%d ldstStall=%d l1=%d/%d l2=%d/%d dram=%d mshrMerge=%d lhb=%d/%d",
		s.Instructions, s.TensorLoads, s.LoadsEliminated, s.MMAs, s.Stores,
		s.IssueStallCycles, s.LDSTStallCycles,
		s.L1Hits, s.L1Accesses, s.L2Hits, s.L2Accesses,
		s.DRAMLines, s.MSHRMerges, s.LHB.Hits, s.LHB.Lookups)
}

// LHBHitRate is the aggregate LHB hit rate (Fig. 10).
func (s Stats) LHBHitRate() float64 { return s.LHB.HitRate() }

// EliminatedFraction is the fraction of tensor-core-loads removed (§V-B
// discusses the oracle eliminating ~76% of them).
func (s Stats) EliminatedFraction() float64 {
	if s.TensorLoads == 0 {
		return 0
	}
	return float64(s.LoadsEliminated) / float64(s.TensorLoads)
}

// ServiceBreakdown returns the fraction of load line-equivalents served by
// each level (Fig. 11).
func (s Stats) ServiceBreakdown() [serviceLevels]float64 {
	var total int64
	for _, v := range s.ServiceLines {
		total += v
	}
	var out [serviceLevels]float64
	if total == 0 {
		return out
	}
	for i, v := range s.ServiceLines {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// DRAMBytes returns the read traffic volume in bytes given the line size.
func (s Stats) DRAMBytes(lineBytes int) int64 { return s.DRAMLines * int64(lineBytes) }
