package sim

import (
	"testing"

	duplo "duplo/internal/core"
	"duplo/internal/workload"
)

// clockModes returns the same configuration with the event-driven (default)
// and dense clocks.
func clockModes(cfg Config) (event, dense Config) {
	event = cfg
	event.DenseClock = false
	dense = cfg
	dense.DenseClock = true
	return event, dense
}

// diffRun simulates k under both clock modes and requires byte-identical
// results: every Stats field (including the arithmetically accounted stall
// counters) and the CTA counts. Kernel and Config are inputs, not outputs,
// so they are excluded (Config necessarily differs in DenseClock).
func diffRun(t *testing.T, name string, cfg Config, k *Kernel) {
	t.Helper()
	eventCfg, denseCfg := clockModes(cfg)
	ev, err := Run(eventCfg, k)
	if err != nil {
		t.Fatalf("%s event-driven: %v", name, err)
	}
	de, err := Run(denseCfg, k)
	if err != nil {
		t.Fatalf("%s dense: %v", name, err)
	}
	if ev.Stats != de.Stats {
		t.Errorf("%s: clock modes diverged\nevent: %+v\ndense: %+v", name, ev.Stats, de.Stats)
	}
	if ev.SimulatedCTAs != de.SimulatedCTAs || ev.TotalCTAs != de.TotalCTAs {
		t.Errorf("%s: CTA counts diverged: %d/%d vs %d/%d",
			name, ev.SimulatedCTAs, ev.TotalCTAs, de.SimulatedCTAs, de.TotalCTAs)
	}
}

// TestClockModesByteIdenticalSmall is the always-on differential gate on
// the unit-test layer, baseline and Duplo.
func TestClockModesByteIdenticalSmall(t *testing.T) {
	k, err := NewConvKernel("clock-small", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	diffRun(t, "baseline", cfg, k)
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	diffRun(t, "duplo", cfg, k)
}

// TestClockModesByteIdentical runs the dense-vs-event-driven differential
// over the Fig. 9 quick workloads (the determinism subset of the
// experiment engine: a duplication-rich stride-1 layer, a strided layer,
// and a GAN transposed layer), Duplo off and on (1024-entry LHB and the
// oracle) — the contract PR 1's byte-identical-tables promise rests on.
func TestClockModesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	layers := [][2]string{{"ResNet", "C2"}, {"ResNet", "C3"}, {"GAN", "TC4"}}
	modes := []struct {
		name string
		set  func(*Config)
	}{
		{"base", func(*Config) {}},
		{"duplo1024", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Entries: 1024, Ways: 1}
		}},
		{"oracle", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
		}},
	}
	for _, id := range layers {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			t.Fatal(err)
		}
		k, err := NewConvKernel(l.FullName(), l.GemmParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			// Quick scale, like experiments.QuickOptions.
			cfg := TitanVConfig()
			cfg.MaxCTAs = 12
			cfg.SimSMs = 2
			m.set(&cfg)
			diffRun(t, l.FullName()+"/"+m.name, cfg, k)
		}
	}
}

// TestEventClockSkips asserts the event-driven loop actually takes the
// skip path on a memory-bound configuration — guarding against the
// optimization silently degenerating to dense ticking. Simulated cycles
// must vastly exceed executed ticks; we can only observe the former, so
// the proxy is that stall cycles dominate total scheduler-cycles, which is
// exactly the regime where skipping pays.
func TestEventClockSkips(t *testing.T) {
	k, err := NewConvKernel("skip", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.L1KB = 8
	cfg.L2KB = 64
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	schedCycles := res.Cycles * int64(cfg.SimSMs) * int64(cfg.Schedulers)
	if res.IssueStallCycles*2 < schedCycles {
		t.Fatalf("expected a stall-dominated run (stalls %d of %d scheduler-cycles)",
			res.IssueStallCycles, schedCycles)
	}
}

// TestNextWakeNeverInPast: a fully-stalled SM's nextWake must always be in
// the future (> now), whatever stale state it holds — the infinite-loop /
// clock-reversal guard of the event-driven dispatcher.
func TestNextWakeNeverInPast(t *testing.T) {
	cfg := testConfig()
	var stats Stats
	mem := newMemSystem(cfg, &stats)
	k, err := NewConvKernel("wake", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	sm := newSM(cfg, 0, mem, &gpuState{cfg: cfg})
	sm.placeCTA(k, 0, 1)

	const now = int64(100)
	check := func(name string) {
		t.Helper()
		if w := sm.nextWake(now); w <= now {
			t.Fatalf("%s: nextWake(%d) = %d, in the past", name, now, w)
		}
	}

	// Fresh warps: loads are register-ready with an empty LDST queue — the
	// "inconsistent" branch must clamp to now+1, not report no event.
	check("fresh CTA")

	// Registers busy far in the past (stale scoreboard).
	for s := range sm.warps {
		w := &sm.warps[s]
		if !w.active {
			continue
		}
		for i := range w.regReady {
			w.regReady[i] = now - 50
		}
	}
	check("stale regReady")

	// Stale queue, ROB, LHB-release and L1-port events, all before now.
	sm.ldstBusy = append(sm.ldstBusy, now-10)
	check("stale ldstBusy")
	for s := range sm.warps {
		w := &sm.warps[s]
		if w.active {
			w.robPush(robEntry{complete: now - 30})
			break
		}
	}
	check("stale ROB head")
	sm.lhbRelease = append(sm.lhbRelease, lhbReleaseEvt{at: now - 1})
	check("stale lhbRelease")
	sm.l1Port = now - 5
	check("stale l1Port")

	// Sanity: genuine future events are still honored (min, not clamp).
	sm2 := newSM(cfg, 1, mem, &gpuState{cfg: cfg})
	sm2.placeCTA(k, 0, 1)
	for s := range sm2.warps {
		w := &sm2.warps[s]
		if !w.active {
			continue
		}
		for i := range w.regReady {
			w.regReady[i] = now + 400
		}
	}
	if w := sm2.nextWake(now); w != now+400 {
		t.Fatalf("future regReady: nextWake = %d, want %d", w, now+400)
	}
	if w := sm2.nextWake(now + 1000); w != now+1001 {
		t.Fatalf("all-stale state: nextWake = %d, want clamp to %d", w, now+1001)
	}
}
