// Package sim is the cycle-level GPU timing simulator the reproduction runs
// on, standing in for GPGPU-Sim with the tensor-core model of Raihan et
// al. [32] (see DESIGN.md §1 for the substitution argument).
//
// The model captures the mechanisms Duplo's evaluation depends on:
//
//   - SMs with four warp schedulers running greedy-then-oldest (GTO),
//     per-warp scoreboards and in-order issue/retire;
//   - tensor-core pipelines executing warp-granular 16x16x16 MMA steps;
//   - an LDST unit that splits warp-level wmma.load/store instructions into
//     32-byte-segment line requests, with L1 port serialization;
//   - per-SM sectored L1 caches with MSHR merging, a shared L2 slice, and a
//     bandwidth-limited DRAM behind it;
//   - the Duplo detection unit (internal/core) attached to the LDST unit,
//     looked up in parallel with L1 (§IV of the paper).
//
// Timing is modeled with functional tag arrays plus latency/throughput
// queues (GPGPU-Sim's performance-model style), not RTL. Absolute cycle
// counts are not the target; baseline-vs-Duplo deltas are.
package sim

import (
	"fmt"
	"runtime"
	"time"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// Config describes the simulated GPU. Defaults follow Table III (NVIDIA
// Titan V-like).
type Config struct {
	// --- Table III parameters ---

	NumSMs        int     // physical SM count the results are scaled to (80)
	ClockMHz      int     // 1200 MHz
	MaxCTAsPerSM  int     // 32
	MaxWarpsPerSM int     // 64
	Schedulers    int     // 4 warp schedulers per SM, GTO policy
	TensorCores   int     // 8 per SM (2 per processing block)
	RegFileKB     int     // 256 KB per SM
	L1KB          int     // 128 KB unified L1 per SM
	L2KB          int     // 4.5 MB shared
	L2Ways        int     // 24 ways, 32 sets (per Table III / [11])
	DRAMBandwidth float64 // GB/s (652.8)

	// --- Timing parameters (from [11] and §V-D) ---

	L1LatencyCycles   int // 28 (§V-D)
	L2LatencyCycles   int // 120 (Table III)
	DRAMLatencyCycles int // access latency before transfer
	LineBytes         int // 128-byte lines, 32-byte sectors
	SectorBytes       int

	// MMA pipeline: a warp-level 16x16x16 MMA step occupies its processing
	// block for InitiationInterval cycles and completes after Latency.
	MMALatency    int
	MMAInitiation int
	// StoreLatency: cycles for a store to clear the LDST queue entry.
	StoreLatency int
	// RetireDelay models the register reuse window: the interval between a
	// tensor-core-load retiring and its destination register group being
	// reclaimed by the warp-register renaming pool of [15], at which point
	// the LHB entry must be released (§IV-B/§V-C). It is a calibrated
	// constant (see EXPERIMENTS.md): it sets the LHB hit-rate ceiling the
	// same way the paper's retire-eviction does.
	RetireDelay int

	// LDSTQueueDepth is the number of outstanding memory instructions per
	// SM before issue back-pressure (LDST stalls, §V-B).
	LDSTQueueDepth int

	// --- Simulation scaling ---

	// SimSMs is the number of SMs actually simulated; the memory system
	// (L2 capacity, L2/DRAM bandwidth) is sliced proportionally. SMs run
	// identical CTA mixes, so relative results are preserved while
	// simulation cost drops by NumSMs/SimSMs.
	SimSMs int
	// MaxCTAs bounds the number of CTAs simulated (0 = whole grid). The
	// duplicate structure is periodic in M, so a steady-state prefix
	// preserves hit rates and speedup shape (DESIGN.md §3).
	MaxCTAs int

	// DenseClock forces the dense one-cycle-at-a-time loop instead of the
	// default event-driven clock that skips cycles where no SM can make
	// progress. Results are byte-identical either way (the differential
	// test in clock_test.go is the gate); the flag exists as an escape
	// hatch and as the baseline for the clocking benchmarks.
	DenseClock bool

	// SMWorkers shards the simulated SMs across goroutines inside one Run
	// (the two-phase tick of DESIGN.md §3, "SM sharding"): 0 selects
	// GOMAXPROCS, 1 forces the single-goroutine reference loop, and any
	// value is clamped to SimSMs. Results are byte-identical at every
	// worker count (the differential matrix in parallel_sm_test.go is the
	// gate); the knob trades wall-clock for cores, never output.
	SMWorkers int

	// --- Hardening: run bounds and diagnostics ---

	// MaxCycles bounds the simulated clock: a run reaching this many cycles
	// aborts with a *SimError (PhaseCycleLimit) instead of running on. 0
	// selects the built-in runaway bound; negative is invalid.
	MaxCycles int64
	// WallTimeout bounds a run's wall-clock time: Run/RunContext derive a
	// deadline context from it, and the loop returns a *SimError
	// (PhaseDeadline) when it expires. 0 = no bound; negative is invalid.
	WallTimeout time.Duration
	// WatchdogWindow is the forward-progress watchdog's window in cycles:
	// when no instruction issues and no ROB entry retires for this many
	// consecutive cycles, the run aborts with a livelock diagnosis and a
	// crash dump instead of spinning forever. 0 selects the default —
	// max(DefaultWatchdogWindow, 8*RetireDelay), far above any legitimate
	// no-progress gap (the longest is the RetireDelay between a load
	// retiring and its LHB release) — and negative disables the watchdog.
	// Small explicit windows are for fault-injection tests only: a window
	// under ~8*RetireDelay can fire on a healthy but memory-bound run.
	WatchdogWindow int64
	// CrashDumpDir is the directory watchdog/panic crash dumps are written
	// to ("" = os.TempDir()); see dump.go for the format.
	CrashDumpDir string

	// Duplo enables the detection unit; DetectCfg configures it.
	Duplo     bool
	DetectCfg duplo.DetectionUnitConfig

	// Tracer, when non-nil, receives pipeline events (warp issues,
	// stalls, LHB hits, memory-level services, MSHR merges, LHB entry
	// releases) from every SM — the observability subsystem of
	// internal/trace. Tracing is strictly observational: the Result is
	// byte-identical with any Tracer, including nil, and a nil Tracer
	// costs one pointer comparison per emit site (the default hot path
	// does no tracing work).
	Tracer trace.Tracer
}

// TitanVConfig returns the baseline GPU model of Table III.
func TitanVConfig() Config {
	return Config{
		NumSMs:        80,
		ClockMHz:      1200,
		MaxCTAsPerSM:  32,
		MaxWarpsPerSM: 64,
		Schedulers:    4,
		TensorCores:   8,
		RegFileKB:     256,
		L1KB:          128,
		L2KB:          4608, // 4.5 MB
		L2Ways:        24,
		DRAMBandwidth: 652.8,

		L1LatencyCycles:   28,
		L2LatencyCycles:   120,
		DRAMLatencyCycles: 220,
		LineBytes:         128,
		SectorBytes:       32,

		MMALatency:    16,
		MMAInitiation: 4,
		StoreLatency:  4,
		RetireDelay:   8000,

		LDSTQueueDepth: 24,

		SimSMs:  4,
		MaxCTAs: 384,

		Duplo:     false,
		DetectCfg: duplo.DefaultDetectionUnitConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SimSMs <= 0 || c.SimSMs > c.NumSMs:
		return fmt.Errorf("sim: SimSMs %d out of range (1..%d)", c.SimSMs, c.NumSMs)
	case c.Schedulers <= 0 || c.MaxWarpsPerSM%c.Schedulers != 0:
		return fmt.Errorf("sim: %d schedulers must divide %d warps", c.Schedulers, c.MaxWarpsPerSM)
	case c.LineBytes <= 0 || c.SectorBytes <= 0 || c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("sim: line %dB / sector %dB invalid", c.LineBytes, c.SectorBytes)
	case c.L1KB <= 0 || c.L2KB <= 0:
		return fmt.Errorf("sim: cache sizes must be positive")
	case c.DRAMBandwidth <= 0:
		return fmt.Errorf("sim: DRAM bandwidth must be positive")
	case c.LDSTQueueDepth <= 0:
		return fmt.Errorf("sim: LDST queue depth must be positive")
	case c.SMWorkers < 0:
		return fmt.Errorf("sim: SMWorkers %d must be >= 0 (0 = GOMAXPROCS)", c.SMWorkers)
	case c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("sim: MaxWarpsPerSM must be positive")
	case c.RetireDelay < 0:
		return fmt.Errorf("sim: RetireDelay %d must be >= 0", c.RetireDelay)
	case c.MaxCycles < 0:
		return fmt.Errorf("sim: MaxCycles %d must be >= 0 (0 = built-in bound)", c.MaxCycles)
	case c.WallTimeout < 0:
		return fmt.Errorf("sim: WallTimeout %v must be >= 0 (0 = none)", c.WallTimeout)
	}
	return nil
}

// DefaultWatchdogWindow is the floor of the resolved forward-progress
// window when Config.WatchdogWindow is 0 (~1M cycles: two orders of
// magnitude above the longest legitimate no-progress gap, the RetireDelay
// release lag).
const DefaultWatchdogWindow = int64(1) << 20

// watchdogWindow resolves Config.WatchdogWindow: 0 selects
// max(DefaultWatchdogWindow, 8*RetireDelay); negative disables (returns 0).
func (c Config) watchdogWindow() int64 {
	w := c.WatchdogWindow
	if w == 0 {
		w = DefaultWatchdogWindow
		if rd := 8 * int64(c.RetireDelay); rd > w {
			w = rd
		}
	}
	if w < 0 {
		return 0
	}
	return w
}

// maxCycles resolves Config.MaxCycles: 0 selects the built-in runaway
// bound.
func (c Config) maxCycles() int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	return maxSimCycles
}

// smWorkers resolves Config.SMWorkers to the effective shard count for one
// Run: 0 selects GOMAXPROCS, and the result is clamped to [1, SimSMs] (a
// shard never holds less than one SM, so extra workers would idle).
func (c Config) smWorkers() int {
	w := c.SMWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.SimSMs {
		w = c.SimSMs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// DRAMBytesPerCycle returns the whole-GPU DRAM bandwidth in bytes/cycle.
func (c Config) DRAMBytesPerCycle() float64 {
	return c.DRAMBandwidth * 1e9 / (float64(c.ClockMHz) * 1e6)
}

// SliceScale is the fraction of the chip being simulated.
func (c Config) SliceScale() float64 { return float64(c.SimSMs) / float64(c.NumSMs) }

// WarpsPerScheduler returns MaxWarpsPerSM / Schedulers.
func (c Config) WarpsPerScheduler() int { return c.MaxWarpsPerSM / c.Schedulers }

// TraceMeta describes this configuration to a trace.Collector: shard
// count, the skipped-span stall weight, and the slice-scaled DRAM
// bandwidth the exporters normalize against. interval <= 0 selects
// trace.DefaultInterval.
func (c Config) TraceMeta(interval int64) trace.Meta {
	return trace.Meta{
		SMs:               c.SimSMs,
		Schedulers:        c.Schedulers,
		Interval:          interval,
		LineBytes:         c.LineBytes,
		DRAMBytesPerCycle: c.DRAMBytesPerCycle() * c.SliceScale(),
	}
}
