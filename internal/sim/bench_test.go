package sim

import (
	"context"
	"testing"

	"duplo/internal/conv"
	duplo "duplo/internal/core"
)

// BenchmarkSimBaseline measures raw simulator throughput on the small test
// layer (cycles simulated per wall second matter for experiment budgets).
func BenchmarkSimBaseline(b *testing.B) {
	k, err := NewConvKernel("bench", testLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxCTAs = 8
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkSimDuplo measures the Duplo-enabled path (detection-unit lookups
// on every workspace row load).
func BenchmarkSimDuplo(b *testing.B) {
	k, err := NewConvKernel("bench", testLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxCTAs = 8
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	b.ResetTimer()
	var imp float64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		imp = res.LHBHitRate()
	}
	b.ReportMetric(100*imp, "hit_rate_%")
}

// BenchmarkSimDuploPooled is BenchmarkSimDuplo through one reused Arena —
// the steady-state cost of a sweep cell once the pool is warm.
func BenchmarkSimDuploPooled(b *testing.B) {
	k, err := NewConvKernel("bench", testLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxCTAs = 8
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	ar := NewArena()
	ctx := context.Background()
	if _, err := RunPooledContext(ctx, cfg, k, ar); err != nil {
		b.Fatal(err) // warm the arena outside the timed region
	}
	b.ReportAllocs()
	b.ResetTimer()
	var imp float64
	for i := 0; i < b.N; i++ {
		res, err := RunPooledContext(ctx, cfg, k, ar)
		if err != nil {
			b.Fatal(err)
		}
		imp = res.LHBHitRate()
	}
	b.ReportMetric(100*imp, "hit_rate_%")
}

// benchMemBoundLayer is ResNet C6-shaped: a deep-K 3x3 stride-1 layer
// whose fills dominate under the shrunken caches below.
var benchMemBoundLayer = conv.Params{N: 8, H: 14, W: 14, C: 256, K: 256, FH: 3, FW: 3, Pad: 1, Stride: 1}

// memBoundConfig is a quick-scale Titan-V slice with shrunken caches:
// fills go to DRAM, occupancy is low, and most cycles are dead — the
// regime the event-driven clock targets (and Duplo's §V sweet spot).
func memBoundConfig() Config {
	cfg := TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 8
	cfg.L1KB = 8
	cfg.L2KB = 64
	return cfg
}

func benchClock(b *testing.B, dense, withDuplo bool) {
	k, err := NewConvKernel("clock-bench", benchMemBoundLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := memBoundConfig()
	cfg.DenseClock = dense
	if withDuplo {
		cfg.Duplo = true
		cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkRunDense vs BenchmarkRunEventDriven measure the cycle-skipping
// payoff on a memory-bound layer (ratio recorded in EXPERIMENTS.md);
// BenchmarkRunEventDrivenDuplo is the same cell with the detection path on
// — the workload the hot-path data-layout work targets.
func BenchmarkRunDense(b *testing.B)            { benchClock(b, true, false) }
func BenchmarkRunEventDriven(b *testing.B)      { benchClock(b, false, false) }
func BenchmarkRunEventDrivenDuplo(b *testing.B) { benchClock(b, false, true) }

func benchSMWorkers(b *testing.B, workers int) {
	k, err := NewConvKernel("shard-bench", benchMemBoundLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := memBoundConfig()
	cfg.SimSMs = 4 // a >= 4-SM slice so the shards have real work each
	cfg.MaxCTAs = 16
	cfg.SMWorkers = workers
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkRunSerialSMs vs BenchmarkRunParallelSMs measure the SM-sharding
// payoff on a 4-SM memory-bound layer (ratio recorded in EXPERIMENTS.md).
// The parallel bench pins SMWorkers to 4 — not GOMAXPROCS — so the sharded
// loop is exercised (and CI-smoked) even on a 1-core host.
func BenchmarkRunSerialSMs(b *testing.B)   { benchSMWorkers(b, 1) }
func BenchmarkRunParallelSMs(b *testing.B) { benchSMWorkers(b, 4) }

// BenchmarkPlaceCTA measures CTA placement cost — the path the memoized
// warp-program cache removes per-wave program construction from.
func BenchmarkPlaceCTA(b *testing.B) {
	k, err := NewConvKernel("place-bench", testLayer)
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	var stats Stats
	mem := newMemSystem(cfg, &stats)
	sm := newSM(cfg, 0, mem, &gpuState{cfg: cfg})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sm.placeCTA(k, i%k.TotalCTAs(), int64(i))
		// Free the slots again so placement never runs out of capacity.
		for s := range sm.warps {
			sm.deactivateSlot(s)
		}
		sm.resident = 0
		for cta := range sm.ctaWarpsLeft {
			delete(sm.ctaWarpsLeft, cta)
		}
	}
}

func BenchmarkWarpProgramDecode(b *testing.B) {
	k, _ := NewConvKernel("bench", testLayer)
	prog := newWarpProgram(k, k.warpAssignments(0)[0])
	b.ResetTimer()
	var sink Instr
	for i := 0; i < b.N; i++ {
		sink = prog.At(i % prog.Len())
	}
	_ = sink
}

func BenchmarkLineSpan(b *testing.B) {
	in := Instr{Addr: 0x1000, RowPitch: 1152, RowBytes: 32}
	buf := make([]uint64, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = lineSpan(buf[:0], in, 128)
	}
	_ = buf
}
