package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// Result is the outcome of one kernel simulation.
type Result struct {
	Stats
	// SimulatedCTAs is how many CTAs actually ran (MaxCTAs cap).
	SimulatedCTAs int
	// TotalCTAs is the full grid size.
	TotalCTAs int
	Kernel    *Kernel
	Config    Config

	// Predicted marks a Result synthesized by the calibrated analytical
	// model (internal/predictor) instead of simulated; PredictedErr then
	// carries the calibration's expected relative error (the fitted
	// family's MAPE against cycle-sim ground truth). The simulator never
	// sets these, and predicted results are never persisted to the
	// on-disk store — only ground truth is content-addressable.
	Predicted    bool
	PredictedErr float64
}

// CyclesPerCTA normalizes runtime for cross-configuration comparison.
func (r Result) CyclesPerCTA() float64 {
	if r.SimulatedCTAs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.SimulatedCTAs)
}

// gpuState drives the whole-chip simulation: CTA dispatch and the global
// cycle loop.
type gpuState struct {
	cfg       Config
	kernel    *Kernel
	mem       *memSystem
	sms       []*smState
	nextCTA   int
	totalCTAs int
	launchSeq int64
	ctasPerSM int

	// guard is the hardening state of this run: cancellation, cycle/wall
	// bounds, and the forward-progress watchdog.
	guard runGuard
	// progress counts ROB pops (retire.go bumps it once per retired
	// instruction). Retirement runs serially in both loop modes — the
	// serial tick and the sharded pre-phase both execute on the dispatcher
	// goroutine — so the counter needs no synchronization.
	progress int64
	// now mirrors the loop's current cycle so crash dumps written from a
	// panic recovery know where the clock stood.
	now int64
}

// runGuard bundles the per-run hardening state consulted once per loop
// iteration (checkGuard).
type runGuard struct {
	ctx       context.Context
	done      <-chan struct{} // ctx.Done(), nil when the context can't cancel
	maxCycles int64
	window    int64 // watchdog window in cycles; 0 = disabled
	ticks     int64 // loop iterations, for the masked cancellation poll

	lastProgress   int64 // g.progress at the last observed progress
	lastProgressAt int64 // cycle of the last observed progress
}

// cancelPollMask: cancellation is polled every 1024 loop iterations — a
// single masked branch per tick, bounded staleness either way (ticks are
// the unit of forward motion on both the dense and the event-driven
// clock).
const cancelPollMask = 1<<10 - 1

// checkGuard runs the per-iteration guards after the tick at `now`:
// cancellation/deadline, the cycle bound, and the forward-progress
// watchdog. issued is the chip-wide issue count of the tick; retirement
// progress is read from g.progress. Returns the *SimError to abort with,
// or nil.
func (g *gpuState) checkGuard(now int64, issued int) error {
	gd := &g.guard
	gd.ticks++
	if gd.done != nil && gd.ticks&cancelPollMask == 0 {
		select {
		case <-gd.done:
			return g.cancelError(now)
		default:
		}
	}
	if now > gd.maxCycles {
		return &SimError{
			Phase: PhaseCycleLimit, Cycle: now,
			Reason: fmt.Sprintf("exceeded %d simulated cycles", gd.maxCycles),
		}
	}
	if issued > 0 || g.progress != gd.lastProgress {
		gd.lastProgress = g.progress
		gd.lastProgressAt = now
	} else if gd.window > 0 && now-gd.lastProgressAt >= gd.window {
		return g.watchdogFire(now)
	}
	return nil
}

// cancelError converts the guard context's error into a *SimError,
// distinguishing deadline expiry from cancellation.
func (g *gpuState) cancelError(now int64) error {
	err := g.guard.ctx.Err()
	phase, reason := PhaseCancelled, "run cancelled"
	if errors.Is(err, context.DeadlineExceeded) {
		phase, reason = PhaseDeadline, "wall-clock deadline exceeded"
	}
	return &SimError{Phase: phase, Cycle: now, Reason: reason, Err: err}
}

// watchdogFire builds the livelock diagnosis and writes the crash dump.
func (g *gpuState) watchdogFire(now int64) error {
	se := &SimError{
		Phase: PhaseWatchdog, Cycle: now,
		Reason: fmt.Sprintf(
			"no forward progress for %d cycles (livelock?): no instruction issued and no ROB entry retired since cycle %d",
			g.guard.window, g.guard.lastProgressAt),
	}
	g.attachDump(se)
	return se
}

// attachDump writes the crash dump for se and records its path (best
// effort: a dump-write failure is folded into the reason, never masks the
// original error).
func (g *gpuState) attachDump(se *SimError) {
	dump, err := writeCrashDump(g, se)
	if err != nil {
		se.Reason += "; crash dump failed: " + err.Error()
		return
	}
	se.Dump = dump
}

// containPanic converts a recovered panic value into a *SimError with a
// crash dump. A *SimError panic value — the structured program-decode
// error warpProgram.At raises — passes through with its phase intact.
func (g *gpuState) containPanic(r any, stack []byte) error {
	se, ok := r.(*SimError)
	if !ok {
		se = &SimError{Phase: PhasePanic, Reason: fmt.Sprintf("panic: %v", r)}
		if err, isErr := r.(error); isErr {
			se.Err = err
		}
	}
	se.Cycle = g.now
	se.stack = stack
	g.attachDump(se)
	return se
}

// ctaDone is called by an SM when a resident CTA finishes; the dispatcher
// immediately backfills (a CTA scheduler assigning the next CTA to the freed
// slot).
func (g *gpuState) ctaDone(sm *smState, now int64) {
	g.dispatchTo(sm)
}

func (g *gpuState) dispatchTo(sm *smState) {
	for sm.resident < g.ctasPerSM && g.nextCTA < g.totalCTAs {
		cta := g.nextCTA
		g.nextCTA++
		g.launchSeq++
		sm.placeCTA(g.kernel, cta, g.launchSeq)
	}
}

// maxSimCycles bounds runaway simulations (deadlock detection).
const maxSimCycles = int64(4) << 30

// Run simulates the kernel on the configured GPU and returns merged
// statistics. With cfg.Duplo set, each SM gets a detection unit programmed
// with the kernel's convolution information (no-op for plain GEMM kernels,
// whose loads all bypass).
//
// Run is safe for concurrent use: all simulation state (gpuState, smState,
// memSystem, the per-SM detection units) is allocated per call, neither sim
// nor internal/core holds package-level mutable state, and the Kernel is
// only read. Callers may share one *Kernel across concurrent Runs but must
// not mutate it (Name, Variant) while any Run is in flight. Run is also
// deterministic: the same (cfg, kernel) pair always produces the same
// Result — the cycle loop iterates slices only, never map order — which is
// what lets the parallel experiment engine promise byte-identical tables at
// any worker count.
//
// Clocking: by default the cycle loop is event-driven — when a tick issues
// nothing chip-wide, the dispatcher jumps `now` straight to the minimum
// nextWake cycle over all SMs instead of re-ticking every dead cycle, and
// accounts the skipped span's stall counters arithmetically. Every Stats
// field (including IssueStallCycles / LDSTStallCycles) is byte-identical to
// the dense one-cycle-at-a-time loop, which remains available behind
// cfg.DenseClock (asserted by TestClockModesByteIdentical; see DESIGN.md
// §3 "Clocking").
//
// Observability: with cfg.Tracer set, every SM emits pipeline events
// (issues, stalls, skipped spans, LHB hits/releases, memory-level
// services, MSHR merges) into the tracer as it simulates. Tracing never
// changes the Result (asserted by TestTracingDoesNotPerturb) and a nil
// Tracer costs one pointer check per site; see internal/trace and
// DESIGN.md §4.
//
// Parallelism: with cfg.SMWorkers resolved above 1, the cycle loop shards
// the SMs across goroutines using the two-phase tick of shard.go; the
// Result — and any attached trace, event for event — stays byte-identical
// to the single-goroutine reference loop (asserted by the differential
// matrix in parallel_sm_test.go; see DESIGN.md §3 "SM sharding").
//
// Hardening: Run is RunContext with a background context; both are
// bounded (Config.MaxCycles, Config.WallTimeout), interruptible, watched
// for forward progress (Config.WatchdogWindow), and contain panics from
// the cycle loop — failures come back as a *SimError, with a crash dump
// on watchdog fires and contained panics (DESIGN.md §5 "Robustness").
// The hardening is strictly observational: a healthy run's Result is
// byte-identical with or without a cancellable context.
func Run(cfg Config, k *Kernel) (Result, error) {
	return RunContext(context.Background(), cfg, k)
}

// testFaultInjection, when non-nil, is invoked on the fully-built gpuState
// after initial dispatch and before the cycle loop — the seam
// harden_test.go uses to inject livelocks and panics. It is nil outside
// tests and is not synchronized: a test that sets it owns every Run in
// flight.
var testFaultInjection func(*gpuState)

// RunContext is Run with cancellation: the cycle loop polls ctx cheaply
// (every cancelPollMask+1 ticks) and returns a *SimError (PhaseCancelled
// or PhaseDeadline) when it fires. cfg.WallTimeout, when set, is applied
// as a deadline on top of ctx.
func RunContext(ctx context.Context, cfg Config, k *Kernel) (Result, error) {
	return runWithArena(ctx, cfg, k, nil)
}

// RunPooledContext is RunContext drawing per-run state from ar (see Arena):
// the memory system, SM states and detection units of the previous run
// through the same arena are reset and reused instead of rebuilt wherever
// their geometry fits. The Result is byte-identical to RunContext — the
// pool_test.go differential matrix asserts it across clock modes, SM
// sharding and Duplo modes — and errors leave the arena dirty, so a failed
// run's half-mutated state is never reused. The arena must not be shared
// by concurrent runs.
func RunPooledContext(ctx context.Context, cfg Config, k *Kernel, ar *Arena) (Result, error) {
	return runWithArena(ctx, cfg, k, ar)
}

func runWithArena(ctx context.Context, cfg Config, k *Kernel, ar *Arena) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.WallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.WallTimeout)
		defer cancel()
	}
	reuse := false
	if ar != nil {
		reuse = ar.acquire()
	}
	var merged Stats
	var mem *memSystem
	if reuse && ar.mem != nil && ar.mem.reset(cfg, &merged) {
		mem = ar.mem
	} else {
		mem = newMemSystem(cfg, &merged)
	}
	g := &gpuState{
		cfg:       cfg,
		kernel:    k,
		mem:       mem,
		totalCTAs: k.TotalCTAs(),
		ctasPerSM: k.CTAsPerSM(cfg),
	}
	if cfg.MaxCTAs > 0 && g.totalCTAs > cfg.MaxCTAs {
		g.totalCTAs = cfg.MaxCTAs
	}
	g.sms = make([]*smState, cfg.SimSMs)
	for i := range g.sms {
		var sm *smState
		if reuse && i < len(ar.sms) && ar.sms[i] != nil && ar.sms[i].fits(cfg) {
			sm = ar.sms[i]
			sm.reset(cfg, mem, g)
		} else {
			sm = newSM(cfg, i, mem, g)
		}
		if cfg.Duplo {
			var du *duplo.DetectionUnit
			if reuse && i < len(ar.dus) && ar.dus[i] != nil && ar.dus[i].Fits(cfg.DetectCfg, cfg.MaxWarpsPerSM, 32) {
				du = ar.dus[i]
				du.Reset()
			} else {
				var err error
				du, err = duplo.NewDetectionUnit(cfg.DetectCfg, cfg.MaxWarpsPerSM, 32)
				if err != nil {
					return Result{}, err
				}
			}
			if ar != nil {
				for len(ar.dus) <= i {
					ar.dus = append(ar.dus, nil)
				}
				ar.dus[i] = du
			}
			if k.Conv != nil {
				if err := du.Program(*k.Conv, k.Layout); err != nil {
					return Result{}, err
				}
			}
			sm.du = du
		}
		g.sms[i] = sm
	}
	if ar != nil {
		// Cache the built components regardless of how this run ends; the
		// clean flag (set only on success) gates whether the next run may
		// reset-and-reuse them. Slots beyond this run's SimSMs keep their
		// cached state for a later, wider run.
		ar.mem = mem
		for i, sm := range g.sms {
			if i < len(ar.sms) {
				ar.sms[i] = sm
			} else {
				ar.sms = append(ar.sms, sm)
			}
		}
	}
	// Initial dispatch.
	for _, sm := range g.sms {
		g.dispatchTo(sm)
	}
	g.guard = runGuard{ctx: ctx, done: ctx.Done(), maxCycles: cfg.maxCycles(), window: cfg.watchdogWindow()}
	if hook := testFaultInjection; hook != nil {
		hook(g)
	}
	if g.guard.done != nil {
		// Fail fast when the context is already dead (a cancelled sweep
		// spawning follow-up runs should not simulate 1024 ticks each).
		select {
		case <-g.guard.done:
			return Result{}, g.cancelError(0)
		default:
		}
	}

	now, err := g.runLoops()
	if err != nil {
		return Result{}, err
	}

	for _, sm := range g.sms {
		if sm.du != nil {
			sm.stats.LHB = sm.du.LHBStats()
			sm.stats.RenameCount = int64(sm.du.Renames().Renames)
			sm.stats.AllocCount = int64(sm.du.Renames().Allocs)
		}
		merged.Add(sm.stats)
	}
	merged.Cycles = now
	if ar != nil {
		ar.clean = true
	}
	return Result{
		Stats:         merged,
		SimulatedCTAs: g.totalCTAs,
		TotalCTAs:     k.TotalCTAs(),
		Kernel:        k,
		Config:        cfg,
	}, nil
}

// runLoops dispatches to the configured cycle loop behind one panic
// barrier: any panic on the dispatcher goroutine — the serial loop, the
// sharded pre-phase/commit, or shard 0 running inline — is contained into
// a *SimError with a crash dump. Spawned shard goroutines recover locally
// into their shardState (shard.go) and the dispatcher converts those the
// same way.
func (g *gpuState) runLoops() (now int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = g.containPanic(r, debug.Stack())
		}
	}()
	if workers := g.cfg.smWorkers(); workers > 1 {
		return g.runShardedLoop(workers)
	}
	return g.runSerialLoop()
}

// runSerialLoop is the single-goroutine reference cycle loop
// (Config.SMWorkers <= 1 after resolution); runShardedLoop (shard.go) must
// stay byte-identical to it.
func (g *gpuState) runSerialLoop() (int64, error) {
	var now int64
	blocked := make([]int, len(g.sms)) // per-SM ldst-blocked schedulers this tick
	for {
		g.now = now
		busy := false
		issued := 0
		for i, sm := range g.sms {
			iss, blk := sm.tick(now)
			issued += iss
			blocked[i] = blk
			if sm.busy() {
				busy = true
			}
		}
		if !busy && g.nextCTA >= g.totalCTAs {
			break
		}
		if issued == 0 && !g.cfg.DenseClock {
			wake := farFuture
			for _, sm := range g.sms {
				if w := sm.nextWake(now); w < wake {
					wake = w
				}
			}
			now = g.accountSkip(now, wake, blocked)
		}
		now++
		if err := g.checkGuard(now, issued); err != nil {
			return 0, err
		}
	}
	return now, nil
}

// accountSkip applies the event-driven clock's jump: given the chip-wide
// minimum wake cycle after a tick at `now` that issued nothing, it accounts
// the dead span (now, wake) and returns the cycle the loop should increment
// from (wake-1, so the caller's increment lands on the wake cycle), or now
// unchanged when there is nothing to skip.
func (g *gpuState) accountSkip(now, wake int64, blocked []int) int64 {
	span := wake - now - 1
	if span <= 0 || wake >= farFuture {
		return now
	}
	// Dead span (now, wake): every state-change driver is in the wake set,
	// so each skipped cycle would have stalled all schedulers of every SM —
	// with the same per-SM LDST blockage this tick observed. Account those
	// ticks arithmetically instead of running them. The tracer gets the
	// same span so interval metrics can apportion it across bucket
	// boundaries with identical arithmetic.
	for i, sm := range g.sms {
		sm.stats.IssueStallCycles += span * int64(g.cfg.Schedulers)
		sm.stats.LDSTStallCycles += span * int64(blocked[i])
		if sm.tr != nil {
			sm.tr.Emit(sm.id, trace.Event{
				Cycle: now + 1, Kind: trace.KindStallSpan,
				A: span, B: int64(blocked[i]),
				Sched: -1, Warp: -1,
			})
		}
	}
	return wake - 1
}

// Speedup returns (base cycles / duplo cycles) - 1 as the fractional
// performance improvement (the Fig. 9 metric).
func Speedup(base, duplo Result) float64 {
	if duplo.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(duplo.Cycles) - 1
}
