package sim

import (
	"fmt"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// Result is the outcome of one kernel simulation.
type Result struct {
	Stats
	// SimulatedCTAs is how many CTAs actually ran (MaxCTAs cap).
	SimulatedCTAs int
	// TotalCTAs is the full grid size.
	TotalCTAs int
	Kernel    *Kernel
	Config    Config
}

// CyclesPerCTA normalizes runtime for cross-configuration comparison.
func (r Result) CyclesPerCTA() float64 {
	if r.SimulatedCTAs == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.SimulatedCTAs)
}

// gpuState drives the whole-chip simulation: CTA dispatch and the global
// cycle loop.
type gpuState struct {
	cfg       Config
	kernel    *Kernel
	mem       *memSystem
	sms       []*smState
	nextCTA   int
	totalCTAs int
	launchSeq int64
	ctasPerSM int
}

// ctaDone is called by an SM when a resident CTA finishes; the dispatcher
// immediately backfills (a CTA scheduler assigning the next CTA to the freed
// slot).
func (g *gpuState) ctaDone(sm *smState, now int64) {
	g.dispatchTo(sm)
}

func (g *gpuState) dispatchTo(sm *smState) {
	for sm.resident < g.ctasPerSM && g.nextCTA < g.totalCTAs {
		cta := g.nextCTA
		g.nextCTA++
		g.launchSeq++
		sm.placeCTA(g.kernel, cta, g.launchSeq)
	}
}

// maxSimCycles bounds runaway simulations (deadlock detection).
const maxSimCycles = int64(4) << 30

// Run simulates the kernel on the configured GPU and returns merged
// statistics. With cfg.Duplo set, each SM gets a detection unit programmed
// with the kernel's convolution information (no-op for plain GEMM kernels,
// whose loads all bypass).
//
// Run is safe for concurrent use: all simulation state (gpuState, smState,
// memSystem, the per-SM detection units) is allocated per call, neither sim
// nor internal/core holds package-level mutable state, and the Kernel is
// only read. Callers may share one *Kernel across concurrent Runs but must
// not mutate it (Name, Variant) while any Run is in flight. Run is also
// deterministic: the same (cfg, kernel) pair always produces the same
// Result — the cycle loop iterates slices only, never map order — which is
// what lets the parallel experiment engine promise byte-identical tables at
// any worker count.
//
// Clocking: by default the cycle loop is event-driven — when a tick issues
// nothing chip-wide, the dispatcher jumps `now` straight to the minimum
// nextWake cycle over all SMs instead of re-ticking every dead cycle, and
// accounts the skipped span's stall counters arithmetically. Every Stats
// field (including IssueStallCycles / LDSTStallCycles) is byte-identical to
// the dense one-cycle-at-a-time loop, which remains available behind
// cfg.DenseClock (asserted by TestClockModesByteIdentical; see DESIGN.md
// §3 "Clocking").
//
// Observability: with cfg.Tracer set, every SM emits pipeline events
// (issues, stalls, skipped spans, LHB hits/releases, memory-level
// services, MSHR merges) into the tracer as it simulates. Tracing never
// changes the Result (asserted by TestTracingDoesNotPerturb) and a nil
// Tracer costs one pointer check per site; see internal/trace and
// DESIGN.md §4.
//
// Parallelism: with cfg.SMWorkers resolved above 1, the cycle loop shards
// the SMs across goroutines using the two-phase tick of shard.go; the
// Result — and any attached trace, event for event — stays byte-identical
// to the single-goroutine reference loop (asserted by the differential
// matrix in parallel_sm_test.go; see DESIGN.md §3 "SM sharding").
func Run(cfg Config, k *Kernel) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var merged Stats
	mem := newMemSystem(cfg, &merged)
	g := &gpuState{
		cfg:       cfg,
		kernel:    k,
		mem:       mem,
		totalCTAs: k.TotalCTAs(),
		ctasPerSM: k.CTAsPerSM(cfg),
	}
	if cfg.MaxCTAs > 0 && g.totalCTAs > cfg.MaxCTAs {
		g.totalCTAs = cfg.MaxCTAs
	}
	g.sms = make([]*smState, cfg.SimSMs)
	for i := range g.sms {
		sm := newSM(cfg, i, mem, g)
		if cfg.Duplo {
			du, err := duplo.NewDetectionUnit(cfg.DetectCfg, cfg.MaxWarpsPerSM, 32)
			if err != nil {
				return Result{}, err
			}
			if k.Conv != nil {
				if err := du.Program(*k.Conv, k.Layout); err != nil {
					return Result{}, err
				}
			}
			sm.du = du
		}
		g.sms[i] = sm
	}
	// Initial dispatch.
	for _, sm := range g.sms {
		g.dispatchTo(sm)
	}

	var now int64
	var err error
	if workers := cfg.smWorkers(); workers > 1 {
		now, err = g.runShardedLoop(workers)
	} else {
		now, err = g.runSerialLoop()
	}
	if err != nil {
		return Result{}, err
	}

	for _, sm := range g.sms {
		if sm.du != nil {
			sm.stats.LHB = sm.du.LHBStats()
			sm.stats.RenameCount = int64(sm.du.Renames().Renames)
			sm.stats.AllocCount = int64(sm.du.Renames().Allocs)
		}
		merged.Add(sm.stats)
	}
	merged.Cycles = now
	return Result{
		Stats:         merged,
		SimulatedCTAs: g.totalCTAs,
		TotalCTAs:     k.TotalCTAs(),
		Kernel:        k,
		Config:        cfg,
	}, nil
}

// runSerialLoop is the single-goroutine reference cycle loop
// (Config.SMWorkers <= 1 after resolution); runShardedLoop (shard.go) must
// stay byte-identical to it.
func (g *gpuState) runSerialLoop() (int64, error) {
	var now int64
	blocked := make([]int, len(g.sms)) // per-SM ldst-blocked schedulers this tick
	for {
		busy := false
		issued := 0
		for i, sm := range g.sms {
			iss, blk := sm.tick(now)
			issued += iss
			blocked[i] = blk
			if sm.busy() {
				busy = true
			}
		}
		if !busy && g.nextCTA >= g.totalCTAs {
			break
		}
		if issued == 0 && !g.cfg.DenseClock {
			wake := farFuture
			for _, sm := range g.sms {
				if w := sm.nextWake(now); w < wake {
					wake = w
				}
			}
			now = g.accountSkip(now, wake, blocked)
		}
		now++
		if now > maxSimCycles {
			return 0, fmt.Errorf("sim: exceeded %d cycles (deadlock?)", maxSimCycles)
		}
	}
	return now, nil
}

// accountSkip applies the event-driven clock's jump: given the chip-wide
// minimum wake cycle after a tick at `now` that issued nothing, it accounts
// the dead span (now, wake) and returns the cycle the loop should increment
// from (wake-1, so the caller's increment lands on the wake cycle), or now
// unchanged when there is nothing to skip.
func (g *gpuState) accountSkip(now, wake int64, blocked []int) int64 {
	span := wake - now - 1
	if span <= 0 || wake >= farFuture {
		return now
	}
	// Dead span (now, wake): every state-change driver is in the wake set,
	// so each skipped cycle would have stalled all schedulers of every SM —
	// with the same per-SM LDST blockage this tick observed. Account those
	// ticks arithmetically instead of running them. The tracer gets the
	// same span so interval metrics can apportion it across bucket
	// boundaries with identical arithmetic.
	for i, sm := range g.sms {
		sm.stats.IssueStallCycles += span * int64(g.cfg.Schedulers)
		sm.stats.LDSTStallCycles += span * int64(blocked[i])
		if sm.tr != nil {
			sm.tr.Emit(sm.id, trace.Event{
				Cycle: now + 1, Kind: trace.KindStallSpan,
				A: span, B: int64(blocked[i]),
				Sched: -1, Warp: -1,
			})
		}
	}
	return wake - 1
}

// Speedup returns (base cycles / duplo cycles) - 1 as the fractional
// performance improvement (the Fig. 9 metric).
func Speedup(base, duplo Result) float64 {
	if duplo.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(duplo.Cycles) - 1
}
