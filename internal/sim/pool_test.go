package sim

import (
	"context"
	"testing"

	duplo "duplo/internal/core"
	"duplo/internal/workload"
)

// poolCells builds the heterogeneous cell sequence the pooled differential
// tests push through one arena: alternating Duplo off / set-assoc / oracle,
// clock modes, and SM-worker counts, so every reuse transition (detection
// unit cached across a Duplo-off cell, sharded stage detached before a
// serial cell, geometry changes forcing rebuilds) is exercised back to back.
func poolCells(t *testing.T) []struct {
	name string
	cfg  Config
	k    *Kernel
} {
	t.Helper()
	k1, err := NewConvKernel("pool-a", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	l, err := workload.Find("ResNet", "C2")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		t.Fatal(err)
	}
	base := func() Config {
		cfg := testConfig()
		cfg.MaxCTAs = 8
		return cfg
	}
	var cells []struct {
		name string
		cfg  Config
		k    *Kernel
	}
	add := func(name string, k *Kernel, mut func(*Config)) {
		cfg := base()
		mut(&cfg)
		cells = append(cells, struct {
			name string
			cfg  Config
			k    *Kernel
		}{name, cfg, k})
	}
	add("base/serial", k1, func(c *Config) {})
	add("duplo/serial", k1, func(c *Config) {
		c.Duplo = true
		c.DetectCfg.LHB = duplo.DefaultLHBConfig()
	})
	add("base/sharded", k1, func(c *Config) { c.SMWorkers = 2 })
	// Serial directly after sharded: the cached stage must be detached or
	// issueLoad would take the staging path on the serial loop.
	add("duplo/serial-after-sharded", k1, func(c *Config) {
		c.Duplo = true
		c.DetectCfg.LHB = duplo.DefaultLHBConfig()
	})
	add("oracle/dense", k1, func(c *Config) {
		c.Duplo = true
		c.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
		c.DenseClock = true
	})
	// Different LHB geometry: the cached unit must fail Fits and rebuild.
	add("duplo256x2/sharded", k2, func(c *Config) {
		c.Duplo = true
		c.DetectCfg.LHB = duplo.LHBConfig{Entries: 256, Ways: 2}
		c.SMWorkers = 2
	})
	// Different SM count and L1: memSystem and smState rebuild paths.
	add("duplo/wide", k2, func(c *Config) {
		c.Duplo = true
		c.DetectCfg.LHB = duplo.DefaultLHBConfig()
		c.SimSMs = 3
		c.L1KB = 64
	})
	add("base/narrow", k2, func(c *Config) { c.SimSMs = 1 })
	return cells
}

// TestPooledRunsByteIdentical drives the heterogeneous cell sequence twice
// through one arena (so every cell both inherits dirty-from-previous state
// and donates to the next) and requires each pooled Result to be
// byte-identical to a fresh-state RunContext of the same cell.
func TestPooledRunsByteIdentical(t *testing.T) {
	cells := poolCells(t)
	ar := NewArena()
	for pass := 0; pass < 2; pass++ {
		for _, cell := range cells {
			fresh, err := Run(cell.cfg, cell.k)
			if err != nil {
				t.Fatalf("pass %d %s fresh: %v", pass, cell.name, err)
			}
			pooled, err := RunPooledContext(context.Background(), cell.cfg, cell.k, ar)
			if err != nil {
				t.Fatalf("pass %d %s pooled: %v", pass, cell.name, err)
			}
			if fresh.Stats != pooled.Stats {
				t.Errorf("pass %d %s: pooled run diverged\nfresh:  %+v\npooled: %+v",
					pass, cell.name, fresh.Stats, pooled.Stats)
			}
			if fresh.SimulatedCTAs != pooled.SimulatedCTAs || fresh.TotalCTAs != pooled.TotalCTAs {
				t.Errorf("pass %d %s: CTA counts diverged: %d/%d vs %d/%d", pass, cell.name,
					fresh.SimulatedCTAs, fresh.TotalCTAs, pooled.SimulatedCTAs, pooled.TotalCTAs)
			}
		}
	}
}

// TestPooledArenaDirtyAfterError checks the invalidate-on-error protocol: a
// run that dies mid-flight (cycle bound) leaves the arena dirty, and the
// next pooled run — which must rebuild rather than reset the half-mutated
// state — still matches a fresh run exactly.
func TestPooledArenaDirtyAfterError(t *testing.T) {
	k, err := NewConvKernel("pool-err", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Duplo = true
	cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()

	ar := NewArena()
	if _, err := RunPooledContext(context.Background(), cfg, k, ar); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	if !ar.clean {
		t.Fatal("arena not clean after successful run")
	}

	bounded := cfg
	bounded.MaxCycles = 50
	if _, err := RunPooledContext(context.Background(), bounded, k, ar); err == nil {
		t.Fatal("expected the cycle-bounded run to fail")
	}
	if ar.clean {
		t.Fatal("arena still clean after a failed run")
	}

	fresh, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunPooledContext(context.Background(), cfg, k, ar)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats != pooled.Stats {
		t.Errorf("post-error pooled run diverged\nfresh:  %+v\npooled: %+v", fresh.Stats, pooled.Stats)
	}
	if !ar.clean {
		t.Error("arena not clean after recovery run")
	}
}

// TestPooledMatrixQuickGrid is the pooled counterpart of the SM-sharding
// differential matrix: fig9-quick-scale workloads, {duplo off, LHB 1024,
// oracle} x {dense, event} x {serial, sharded}, all through one arena in
// sequence, each compared against fresh state.
func TestPooledMatrixQuickGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	layers := [][2]string{{"ResNet", "C2"}, {"GAN", "TC4"}}
	modes := []struct {
		name string
		set  func(*Config)
	}{
		{"base", func(*Config) {}},
		{"duplo1024", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Entries: 1024, Ways: 1}
		}},
		{"oracle", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.LHBConfig{Oracle: true}
		}},
	}
	ar := NewArena()
	for _, id := range layers {
		l, err := workload.Find(id[0], id[1])
		if err != nil {
			t.Fatal(err)
		}
		k, err := NewConvKernel(l.FullName(), l.GemmParams())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			for _, dense := range []bool{false, true} {
				for _, workers := range []int{1, 2} {
					cfg := TitanVConfig()
					cfg.MaxCTAs = 12
					cfg.SimSMs = 2
					cfg.DenseClock = dense
					cfg.SMWorkers = workers
					m.set(&cfg)
					name := l.FullName() + "/" + m.name
					fresh, err := Run(cfg, k)
					if err != nil {
						t.Fatalf("%s fresh: %v", name, err)
					}
					pooled, err := RunPooledContext(context.Background(), cfg, k, ar)
					if err != nil {
						t.Fatalf("%s pooled: %v", name, err)
					}
					if fresh.Stats != pooled.Stats {
						t.Errorf("%s (dense=%v workers=%d): pooled diverged\nfresh:  %+v\npooled: %+v",
							name, dense, workers, fresh.Stats, pooled.Stats)
					}
				}
			}
		}
	}
}
