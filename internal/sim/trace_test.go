package sim

import (
	"testing"

	duplo "duplo/internal/core"
	"duplo/internal/trace"
)

// TestTraceVocabularyMatchesSim pins the numeric correspondence between
// sim's ServiceLevel/Op values and trace's mirrored constants (trace
// cannot import sim, so the contract is asserted here).
func TestTraceVocabularyMatchesSim(t *testing.T) {
	levels := map[ServiceLevel]int8{
		ServiceLHB:  trace.LevelLHB,
		ServiceL1:   trace.LevelL1,
		ServiceL2:   trace.LevelL2,
		ServiceDRAM: trace.LevelDRAM,
	}
	for s, l := range levels {
		if int8(s) != l {
			t.Errorf("ServiceLevel %v = %d, trace level %d", s, s, l)
		}
		if s.String() != trace.LevelName(l) {
			t.Errorf("level name mismatch: %q vs %q", s.String(), trace.LevelName(l))
		}
	}
	if int(serviceLevels) != int(trace.NumLevels) {
		t.Errorf("level count mismatch: %d vs %d", serviceLevels, trace.NumLevels)
	}
	ops := map[Op]int8{
		OpLoadA:  trace.OpLoadA,
		OpLoadB:  trace.OpLoadB,
		OpMMA:    trace.OpMMA,
		OpStoreD: trace.OpStoreD,
	}
	for o, to := range ops {
		if int8(o) != to {
			t.Errorf("Op %v = %d, trace op %d", o, o, to)
		}
		if o.String() != trace.OpName(to) {
			t.Errorf("op name mismatch: %q vs %q", o.String(), trace.OpName(to))
		}
	}
}

// traceMatrix enumerates the duplo x clock configurations the tracing
// tests cover.
func traceMatrix() []struct {
	name string
	set  func(*Config)
} {
	return []struct {
		name string
		set  func(*Config)
	}{
		{"base/event", func(c *Config) {}},
		{"base/dense", func(c *Config) { c.DenseClock = true }},
		{"duplo/event", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.DefaultLHBConfig()
		}},
		{"duplo/dense", func(c *Config) {
			c.Duplo = true
			c.DetectCfg.LHB = duplo.DefaultLHBConfig()
			c.DenseClock = true
		}},
	}
}

// TestTracingDoesNotPerturb is the tracing differential gate: a run with a
// nil tracer, the no-op tracer, and a full Collector must produce
// byte-identical Results in every duplo x clock mode — tracing observes
// the machine, it never becomes part of it.
func TestTracingDoesNotPerturb(t *testing.T) {
	k, err := NewConvKernel("trace-diff", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range traceMatrix() {
		cfg := testConfig()
		m.set(&cfg)

		ref, err := Run(cfg, k)
		if err != nil {
			t.Fatalf("%s nil tracer: %v", m.name, err)
		}

		nopCfg := cfg
		nopCfg.Tracer = trace.Nop{}
		nop, err := Run(nopCfg, k)
		if err != nil {
			t.Fatalf("%s nop tracer: %v", m.name, err)
		}
		if nop.Stats != ref.Stats {
			t.Errorf("%s: no-op tracer perturbed the run\nnil: %+v\nnop: %+v", m.name, ref.Stats, nop.Stats)
		}

		colCfg := cfg
		col := trace.NewCollector(cfg.TraceMeta(1000))
		colCfg.Tracer = col
		traced, err := Run(colCfg, k)
		if err != nil {
			t.Fatalf("%s collector: %v", m.name, err)
		}
		if traced.Stats != ref.Stats {
			t.Errorf("%s: collecting tracer perturbed the run\nnil:   %+v\ntraced: %+v", m.name, ref.Stats, traced.Stats)
		}
		if traced.SimulatedCTAs != ref.SimulatedCTAs || traced.TotalCTAs != ref.TotalCTAs {
			t.Errorf("%s: CTA counts diverged", m.name)
		}
	}
}

// collect runs k under cfg with a fresh collector attached and returns
// both.
func collect(t *testing.T, cfg Config, k *Kernel, interval int64) (Result, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector(cfg.TraceMeta(interval))
	cfg.Tracer = col
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	col.Finish(res.Cycles)
	return res, col
}

// TestIntervalConservation: summing every interval's counters must
// reproduce the final Stats exactly — on both clocks, so the skipped
// spans' arithmetic apportioning is covered — and the per-interval series
// itself must be identical across clock modes (a skipped span lands its
// stall cycles in the same buckets dense ticking would have).
func TestIntervalConservation(t *testing.T) {
	k, err := NewConvKernel("trace-conserve", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately awkward interval so spans cross bucket boundaries.
	const interval = 777
	for _, duploOn := range []bool{false, true} {
		cfg := testConfig()
		if duploOn {
			cfg.Duplo = true
			cfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
		}
		evCfg := cfg
		evCfg.DenseClock = false
		deCfg := cfg
		deCfg.DenseClock = true

		evRes, evCol := collect(t, evCfg, k, interval)
		deRes, deCol := collect(t, deCfg, k, interval)
		if evRes.Stats != deRes.Stats {
			t.Fatalf("duplo=%v: clock modes diverged (pre-existing gate)", duploOn)
		}

		for _, c := range []struct {
			clock string
			res   Result
			col   *trace.Collector
		}{{"event", evRes, evCol}, {"dense", deRes, deCol}} {
			tot := c.col.Totals()
			s := c.res.Stats
			checks := []struct {
				name      string
				got, want int64
			}{
				{"Instructions", tot.Instructions, s.Instructions},
				{"TensorLoads", tot.TensorLoads, s.TensorLoads},
				{"LoadsEliminated", tot.LoadsEliminated, s.LoadsEliminated},
				{"MMAs", tot.MMAs, s.MMAs},
				{"Stores", tot.Stores, s.Stores},
				{"IssueStallCycles", tot.IssueStallCycles, s.IssueStallCycles},
				{"LDSTStallCycles", tot.LDSTStallCycles, s.LDSTStallCycles},
				{"MSHRMerges", tot.MSHRMerges, s.MSHRMerges},
				{"DRAMLines", tot.DRAMLines(), s.DRAMLines},
				{"ServiceLHB", tot.ServiceLines[trace.LevelLHB], s.ServiceLines[ServiceLHB]},
				{"ServiceL1", tot.ServiceLines[trace.LevelL1], s.ServiceLines[ServiceL1]},
				{"ServiceL2", tot.ServiceLines[trace.LevelL2], s.ServiceLines[ServiceL2]},
				{"ServiceDRAM", tot.ServiceLines[trace.LevelDRAM], s.ServiceLines[ServiceDRAM]},
			}
			for _, ch := range checks {
				if ch.got != ch.want {
					t.Errorf("duplo=%v %s clock: interval sum %s = %d, Stats %d",
						duploOn, c.clock, ch.name, ch.got, ch.want)
				}
			}
		}

		// Interval-by-interval equality across clocks.
		evIv, deIv := evCol.Intervals(), deCol.Intervals()
		if len(evIv) != len(deIv) {
			t.Fatalf("duplo=%v: interval counts differ: %d vs %d", duploOn, len(evIv), len(deIv))
		}
		for i := range evIv {
			if evIv[i] != deIv[i] {
				t.Errorf("duplo=%v interval %d diverged across clocks\nevent: %+v\ndense: %+v",
					duploOn, i, evIv[i], deIv[i])
			}
		}
	}
}

// TestIntervalCoverage: the merged series is contiguous from cycle 0
// through the run's end, with the last partial interval clipped to the
// true cycle count.
func TestIntervalCoverage(t *testing.T) {
	k, err := NewConvKernel("trace-cover", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	const interval = 1000
	res, col := collect(t, testConfig(), k, interval)
	ivs := col.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var covered int64
	for i, iv := range ivs {
		if iv.Start != int64(i)*interval {
			t.Fatalf("interval %d starts at %d", i, iv.Start)
		}
		covered += iv.Cycles
	}
	if covered != res.Cycles {
		t.Fatalf("intervals cover %d cycles, run had %d", covered, res.Cycles)
	}
	last := ivs[len(ivs)-1]
	if want := res.Cycles - last.Start; last.Cycles != want {
		t.Fatalf("last interval cycles = %d, want %d", last.Cycles, want)
	}
}
