package sim

import (
	"fmt"
	"os"
	"strings"

	"duplo/internal/trace"
)

// This file writes crash dumps: when the forward-progress watchdog fires
// or a panic is contained, the postmortem pipeline state — per-SM ROB
// heads, scoreboards, MSHR occupancy, LHB release queues — plus the tail
// of the attached trace ring buffer is serialized to a file the returned
// *SimError references (DESIGN.md §5 "Robustness").

// Dump bounds: state sections are truncated, never the whole file — a
// dump must stay readable, not complete.
const (
	dumpMaxWarpsPerSM = 8  // active warp lines per SM
	dumpTailEvents    = 32 // trailing trace-ring events per SM
)

// writeCrashDump serializes g's pipeline state into a fresh file under
// Config.CrashDumpDir (os.TempDir() when empty) and returns its path. Best
// effort by contract: the caller folds any error into the SimError's
// reason instead of masking the original failure.
func writeCrashDump(g *gpuState, se *SimError) (string, error) {
	dir := g.cfg.CrashDumpDir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "duplo-crash-"+sanitizeDumpName(g.kernel.Name)+"-*.txt")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	// The dump formatter reads a pipeline that just crashed — its state may
	// be arbitrarily corrupted (that corruption is often WHY we are here).
	// A formatting panic degrades to a truncated dump, never a new crash.
	func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Fprintf(&b, "\n[dump truncated: formatter panicked: %v]\n", r)
			}
		}()
		formatCrashDump(&b, g, se)
	}()
	_, werr := f.WriteString(b.String())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return "", werr
	}
	return f.Name(), nil
}

// sanitizeDumpName maps a kernel name ("ResNet/C2@b16") onto a safe file
// name fragment.
func sanitizeDumpName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// formatCrashDump renders the postmortem text. It runs with every shard
// goroutine quiescent (the dispatcher aborts only after the phase-A
// barrier), so reading SM state here is race-free.
func formatCrashDump(b *strings.Builder, g *gpuState, se *SimError) {
	fmt.Fprintf(b, "duplo crash dump\n")
	fmt.Fprintf(b, "phase:  %s\n", se.Phase)
	fmt.Fprintf(b, "cycle:  %d\n", se.Cycle)
	fmt.Fprintf(b, "reason: %s\n", se.Reason)
	fmt.Fprintf(b, "kernel: %s (variant %s, %d CTAs total, %d simulated)\n",
		g.kernel.Name, g.kernel.Variant, g.kernel.TotalCTAs(), g.totalCTAs)
	fmt.Fprintf(b, "config: sms=%d ctas=%d duplo=%v lhb={e=%d w=%d oracle=%v} dense=%v smWorkers=%d retireDelay=%d ldstDepth=%d\n",
		g.cfg.SimSMs, g.cfg.MaxCTAs, g.cfg.Duplo,
		g.cfg.DetectCfg.LHB.Entries, g.cfg.DetectCfg.LHB.Ways, g.cfg.DetectCfg.LHB.Oracle,
		g.cfg.DenseClock, g.cfg.SMWorkers, g.cfg.RetireDelay, g.cfg.LDSTQueueDepth)
	fmt.Fprintf(b, "chip:   nextCTA=%d/%d progress=%d lastProgressAt=%d watchdogWindow=%d\n",
		g.nextCTA, g.totalCTAs, g.progress, g.guard.lastProgressAt, g.guard.window)

	for _, sm := range g.sms {
		fmt.Fprintf(b, "\nSM %d: resident=%d l1Port=%d ldst=%s mshr=%d lhbRelease=%s\n",
			sm.id, sm.resident, sm.l1Port, dumpQueue(sm.ldstBusy, sm.cfg.LDSTQueueDepth),
			len(sm.mshr), dumpReleases(sm.lhbRelease))
		fmt.Fprintf(b, "  stats: %s\n", sm.stats.DumpSummary())
		shown, active := 0, 0
		for s := range sm.warps {
			w := &sm.warps[s]
			if !w.active {
				continue
			}
			active++
			if shown >= dumpMaxWarpsPerSM {
				continue
			}
			shown++
			progLen := -1 // a nil program is itself diagnostic; keep dumping
			if w.prog != nil {
				progLen = w.prog.Len()
			}
			fmt.Fprintf(b, "  warp %2d: cta=%d pc=%d/%d rob=%d/%d", w.slot, w.cta, w.pc, progLen, w.robHead, len(w.rob))
			if !w.robEmpty() {
				fmt.Fprintf(b, " head.complete=%d", w.rob[w.robHead].complete)
			}
			// Scoreboard: the earliest and latest register-ready cycles tell
			// a livelock (farFuture gates) from a long memory stall.
			if len(w.regReady) > 0 {
				lo, hi := w.regReady[0], w.regReady[0]
				for _, t := range w.regReady[1:] {
					if t < lo {
						lo = t
					}
					if t > hi {
						hi = t
					}
				}
				fmt.Fprintf(b, " regReady=[%s..%s]", dumpCycle(lo), dumpCycle(hi))
			}
			b.WriteByte('\n')
		}
		if active > shown {
			fmt.Fprintf(b, "  ... and %d more active warps\n", active-shown)
		}
	}

	if col, ok := g.cfg.Tracer.(*trace.Collector); ok {
		for _, sm := range g.sms {
			tail := col.TailEvents(sm.id, dumpTailEvents)
			if len(tail) == 0 {
				continue
			}
			fmt.Fprintf(b, "\ntrace ring tail, SM %d (last %d events):\n", sm.id, len(tail))
			for _, e := range tail {
				fmt.Fprintf(b, "  %s\n", trace.Format(sm.id, e))
			}
		}
	}

	if len(se.stack) > 0 {
		fmt.Fprintf(b, "\npanic stack:\n%s\n", se.stack)
	}
}

// dumpCycle renders a cycle value, naming the farFuture sentinel.
func dumpCycle(t int64) string {
	if t >= farFuture {
		return "farFuture"
	}
	return fmt.Sprint(t)
}

// dumpQueue summarizes the LDST queue: occupancy and the min/max pending
// completion cycles.
func dumpQueue(q []int64, depth int) string {
	if len(q) == 0 {
		return fmt.Sprintf("0/%d", depth)
	}
	lo, hi := q[0], q[0]
	for _, t := range q[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return fmt.Sprintf("%d/%d[%s..%s]", len(q), depth, dumpCycle(lo), dumpCycle(hi))
}

// dumpReleases summarizes the LHB release FIFO: length and head due cycle.
func dumpReleases(q []lhbReleaseEvt) string {
	if len(q) == 0 {
		return "0"
	}
	return fmt.Sprintf("%d[head@%d]", len(q), q[0].at)
}
