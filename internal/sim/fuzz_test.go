package sim

import (
	"testing"
	"time"
)

// FuzzConfigValidate pins the Validate contract: any Config that passes
// must be safe for every derived accessor the simulator consults before
// the cycle loop — no panics, no zero divisors, no negative resolved
// bounds. The seeds are the shipped configuration plus degenerate and
// boundary shapes.
func FuzzConfigValidate(f *testing.F) {
	c := TitanVConfig()
	f.Add(c.NumSMs, c.MaxWarpsPerSM, c.Schedulers, c.LineBytes, c.SectorBytes,
		c.L1KB, c.L2KB, c.LDSTQueueDepth, c.SimSMs, c.RetireDelay,
		int64(0), int64(0), int64(0), c.DRAMBandwidth)
	f.Add(2, 8, 4, 128, 32, 16, 64, 4, 1, 0, int64(-1), int64(1), int64(5), 1.0)
	f.Add(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, int64(-7), int64(-9), int64(-1), 0.0)
	f.Add(80, 64, 3, 96, 32, 128, 4608, 24, 4, 8000, int64(1), int64(-1), int64(0), 652.8)
	f.Fuzz(func(t *testing.T, numSMs, warps, scheds, line, sector, l1, l2, ldst, simSMs, retire int,
		maxCycles, window, wallMS int64, bw float64) {
		c := TitanVConfig()
		c.NumSMs, c.MaxWarpsPerSM, c.Schedulers = numSMs, warps, scheds
		c.LineBytes, c.SectorBytes = line, sector
		c.L1KB, c.L2KB, c.LDSTQueueDepth = l1, l2, ldst
		c.SimSMs, c.RetireDelay = simSMs, retire
		c.MaxCycles, c.WatchdogWindow = maxCycles, window
		c.WallTimeout = time.Duration(wallMS) * time.Millisecond
		c.DRAMBandwidth = bw
		if err := c.Validate(); err != nil {
			return // rejected configurations are outside the contract
		}
		_ = c.smWorkers()
		_ = c.WarpsPerScheduler()
		_ = c.DRAMBytesPerCycle()
		_ = c.SliceScale()
		_ = c.TraceMeta(0)
		if c.watchdogWindow() < 0 {
			t.Fatalf("validated config resolved a negative watchdog window")
		}
		if c.maxCycles() <= 0 {
			t.Fatalf("validated config resolved a non-positive cycle bound")
		}
	})
}
