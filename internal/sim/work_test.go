package sim

import (
	"testing"

	duplo "duplo/internal/core"
)

// TestStaticWorkMatchesSimulation: the static work profile must agree
// exactly with the simulator's own instruction accounting — it is the
// predictor's "exact by construction" foundation (DESIGN.md §9).
func TestStaticWorkMatchesSimulation(t *testing.T) {
	k, err := NewConvKernel("work", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	w := k.StaticWork(cfg.MaxCTAs)
	if w.CTAs != res.SimulatedCTAs {
		t.Errorf("CTAs %d != simulated %d", w.CTAs, res.SimulatedCTAs)
	}
	if got := w.RowLoads(); got != res.TensorLoads {
		t.Errorf("row loads %d != simulated %d", got, res.TensorLoads)
	}
	if w.MMAs != res.MMAs {
		t.Errorf("MMAs %d != simulated %d", w.MMAs, res.MMAs)
	}
	if w.Stores != res.Stores {
		t.Errorf("stores %d != simulated %d", w.Stores, res.Stores)
	}
	if w.Instructions() != res.Instructions {
		t.Errorf("instructions %d != simulated %d", w.Instructions(), res.Instructions)
	}

	// With Duplo on, every A row load consults the detection unit — the
	// LHB lookup count is structural, which is why PredictResult derives
	// it from ARowLoads instead of regressing it.
	dcfg := cfg
	dcfg.Duplo = true
	dcfg.DetectCfg.LHB = duplo.DefaultLHBConfig()
	dres, err := Run(dcfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(w.ARowLoads()); got != dres.LHB.Lookups {
		t.Errorf("A row loads %d != simulated LHB lookups %d", got, dres.LHB.Lookups)
	}
}

// TestStaticWorkCap: the CTA cap truncates the profile the same way it
// truncates the dispatch, and 0 means the full grid.
func TestStaticWorkCap(t *testing.T) {
	k, err := NewConvKernel("workcap", testLayer)
	if err != nil {
		t.Fatal(err)
	}
	full := k.StaticWork(0)
	if full.CTAs != k.TotalCTAs() {
		t.Errorf("uncapped CTAs %d != total %d", full.CTAs, k.TotalCTAs())
	}
	capped := k.StaticWork(3)
	if capped.CTAs != 3 {
		t.Errorf("capped CTAs %d != 3", capped.CTAs)
	}
	if capped.Instructions() >= full.Instructions() {
		t.Errorf("capped instructions %d not below full %d", capped.Instructions(), full.Instructions())
	}
	if capped.RowsCovered > full.RowsCovered || capped.ColsCovered > full.ColsCovered {
		t.Error("capped coverage exceeds full coverage")
	}
}
