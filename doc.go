// Package duplo is a from-scratch Go reproduction of "Duplo: Lifting
// Redundant Memory Accesses of Deep Neural Networks for GPU Tensor Cores"
// (MICRO 2020).
//
// The root package only anchors the module; the implementation lives under
// internal/:
//
//   - internal/core — the Duplo detection unit (ID generator, load history
//     buffer, warp register renaming);
//   - internal/sim — the cycle-level GPU tensor-core simulator;
//   - internal/conv, lowering, gemm, winograd, fftconv — the convolution
//     substrates;
//   - internal/workload, experiments — Table I and every figure/table of
//     the paper's evaluation;
//   - cmd/duplosim, cmd/duploexp — the command-line tools;
//   - examples/ — runnable walk-throughs.
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package duplo
