// GAN generator walk-through: the transposed-convolution ("TC") layers of
// Table I upsample a 4x4 latent feature map to a 64x64 image. This example
// shows the §II-A lowering — zero-dilating the input and convolving — and
// the duplication structure Duplo exploits on each stage, including a
// functional correctness check of the lowering on the first stage.
//
//	go run ./examples/gan_upsample
package main

import (
	"fmt"
	"log"

	"duplo/internal/conv"
	"duplo/internal/lowering"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/tensor"
	"duplo/internal/workload"
)

func main() {
	// Functional: transposed conv == direct conv on the dilated input.
	small := conv.Params{N: 1, H: 4, W: 4, C: 8, K: 4, FH: 5, FW: 5, Pad: 2, Stride: 2}
	in := tensor.New(small.N, small.H, small.W, small.C)
	in.FillRandom(3, 1)
	f := tensor.New(small.K, small.FH, small.FW, small.C)
	f.FillRandom(4, 0.5)
	want, err := conv.Transposed(small, in, f)
	if err != nil {
		log.Fatal(err)
	}
	dp, dil, flip, err := conv.ToDirect(small, in, f)
	if err != nil {
		log.Fatal(err)
	}
	got, err := lowering.GemmConv(dp, dil, flip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transposed-conv via zero-dilated GEMM: rel err %.2e (output %s)\n\n",
		got.RelErr(want), got.ShapeString())

	// Timing: each generator stage under the simulator.
	cfg := sim.TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 32

	t := report.NewTable("GAN generator stages (Table I TC1-TC4), baseline vs Duplo",
		"Stage", "Spatial", "Lowered GEMM", "Duplication", "Improvement", "Hit rate", "DRAM delta")
	for _, l := range workload.GAN[:4] {
		p := l.GemmParams()
		k, err := sim.NewConvKernel(l.FullName(), p)
		if err != nil {
			log.Fatal(err)
		}
		base, err := sim.Run(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		dcfg := cfg
		dcfg.Duplo = true
		dup, err := sim.Run(dcfg, k)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowCells([]string{
			l.Name,
			fmt.Sprintf("%dx%d -> %dx%d", l.Params.H, l.Params.W, p.OutH(), p.OutW()),
			fmt.Sprintf("%dx%dx%d", p.GemmM(), p.GemmN(), p.GemmK()),
			fmt.Sprintf("%.1fx", p.DuplicationFactor()),
			report.Pct(sim.Speedup(base, dup)),
			report.PctU(dup.LHBHitRate()),
			report.Pct(float64(dup.DRAMLines)/float64(base.DRAMLines) - 1),
		})
	}
	fmt.Print(t)
	fmt.Println("\nNote: zero-dilation makes the workspace sparse AND duplicated —")
	fmt.Println("upsampling layers are exactly where lowering is most memory-wasteful.")
}
