// LHB design-space exploration on a single layer: size x associativity x
// eviction policy, the trade-off space behind §V-B/C/E. Useful when porting
// Duplo to a different GPU configuration.
//
//	go run ./examples/lhb_design [-net YOLO -layer C3]
package main

import (
	"flag"
	"fmt"
	"log"

	duplo "duplo/internal/core"
	"duplo/internal/energy"
	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

func main() {
	net := flag.String("net", "YOLO", "network")
	layer := flag.String("layer", "C3", "layer")
	flag.Parse()

	l, err := workload.Find(*net, *layer)
	if err != nil {
		log.Fatal(err)
	}
	k, err := sim.NewConvKernel(l.FullName(), l.GemmParams())
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 48

	base, err := sim.Run(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	em := energy.Default12nm()

	t := report.NewTable(fmt.Sprintf("LHB design space on %s", l.FullName()),
		"Design", "Improvement", "Hit rate", "DRAM delta", "Energy saving", "Area vs RF")
	designs := []struct {
		name string
		lhb  duplo.LHBConfig
	}{
		{"256 direct", duplo.LHBConfig{Entries: 256, Ways: 1}},
		{"512 direct", duplo.LHBConfig{Entries: 512, Ways: 1}},
		{"1024 direct", duplo.LHBConfig{Entries: 1024, Ways: 1}},
		{"1024 4-way", duplo.LHBConfig{Entries: 1024, Ways: 4}},
		{"2048 direct", duplo.LHBConfig{Entries: 2048, Ways: 1}},
		{"1024 modulo-indexed", duplo.LHBConfig{Entries: 1024, Ways: 1, ModuloIndex: true}},
		{"oracle", duplo.LHBConfig{Oracle: true}},
		{"never-evict limit", duplo.LHBConfig{Oracle: true, NeverEvict: true}},
	}
	for _, d := range designs {
		dcfg := cfg
		dcfg.Duplo = true
		dcfg.DetectCfg.LHB = d.lhb
		dup, err := sim.Run(dcfg, k)
		if err != nil {
			log.Fatal(err)
		}
		area := "-"
		if !d.lhb.Oracle {
			area = report.PctU(energy.AreaOverhead(em, d.lhb.Entries))
		}
		t.AddRowCells([]string{
			d.name,
			report.Pct(sim.Speedup(base, dup)),
			report.PctU(dup.LHBHitRate()),
			report.Pct(float64(dup.DRAMLines)/float64(base.DRAMLines) - 1),
			report.Pct(energy.OnChipSaving(em, base, dup)),
			area,
		})
	}
	fmt.Print(t)
	fmt.Println("\nThe paper picks 1024-entry direct-mapped: ~4/5 of the oracle's gain")
	fmt.Println("for a buffer smaller than 1% of the register file (§V-B, §V-H).")
}
