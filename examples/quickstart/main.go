// Quickstart: lower a small convolution, verify the GEMM-based result
// against direct convolution, and simulate it on the modeled GPU with and
// without the Duplo detection unit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"duplo/internal/conv"
	"duplo/internal/lowering"
	"duplo/internal/sim"
	"duplo/internal/tensor"
)

func main() {
	// A small convolutional layer: 2 images of 32x32x16, 32 filters of
	// 3x3, stride 1, "same" padding — the shape class where lowering
	// creates ~9x data duplication.
	p := conv.Params{N: 2, H: 32, W: 32, C: 16, K: 32, FH: 3, FW: 3, Pad: 1, Stride: 1}
	fmt.Println("layer:", p)
	fmt.Printf("GEMM dims: M=%d N=%d K=%d, workspace duplication %.2fx\n",
		p.GemmM(), p.GemmN(), p.GemmK(), p.DuplicationFactor())

	// Functional check: GEMM-based convolution equals direct convolution.
	input := tensor.New(p.N, p.H, p.W, p.C)
	input.FillRandom(1, 1)
	filters := tensor.New(p.K, p.FH, p.FW, p.C)
	filters.FillRandom(2, 0.5)

	direct, err := conv.Direct(p, input, filters)
	if err != nil {
		log.Fatal(err)
	}
	gemm, err := lowering.GemmConv(p, input, filters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEMM vs direct max rel err: %.2e\n", gemm.RelErr(direct))

	tc, err := lowering.TensorCoreConv(p, input, filters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor-core (fp16) vs direct rel err: %.2e\n\n", tc.RelErr(direct))

	// Timing: simulate the tensor-core GEMM kernel on the Table III GPU.
	k, err := sim.NewConvKernel("quickstart", p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sim.TitanVConfig()
	cfg.SimSMs = 2
	cfg.MaxCTAs = 48

	base, err := sim.Run(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Duplo = true
	dup, err := sim.Run(cfg, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline: %d cycles, %d DRAM lines\n", base.Cycles, base.DRAMLines)
	fmt.Printf("duplo:    %d cycles, %d DRAM lines, %d loads eliminated (LHB hit rate %.1f%%)\n",
		dup.Cycles, dup.DRAMLines, dup.LoadsEliminated, 100*dup.LHBHitRate())
	fmt.Printf("performance improvement: %+.1f%%\n", 100*sim.Speedup(base, dup))
}
