// End-to-end inference example: build a small convolutional classifier with
// the nn substrate, run the same synthetic batch through every convolution
// backend (direct, GEMM, tensor-core fp16, Winograd, FFT), and check that
// they agree — the functional counterpart of the paper's premise that all
// these methods compute the same convolution at very different costs.
//
//	go run ./examples/classifier
package main

import (
	"fmt"
	"log"

	"duplo/internal/conv"
	"duplo/internal/nn"
	"duplo/internal/tensor"
)

func buildNet(method nn.ConvMethod) *nn.Network {
	nw := &nn.Network{}
	nw.Add(
		nn.NewConv(conv.Params{K: 16, FH: 3, FW: 3, C: 3, Pad: 1, Stride: 1, N: 1, H: 32, W: 32}, method, 1),
		nn.NewBatchNorm(16),
		nn.ReLU{},
		nn.MaxPool{Size: 2},
		nn.NewConv(conv.Params{K: 32, FH: 3, FW: 3, C: 16, Pad: 1, Stride: 1, N: 1, H: 16, W: 16}, method, 2),
		nn.ReLU{},
		nn.MaxPool{Size: 2},
		nn.NewConv(conv.Params{K: 64, FH: 3, FW: 3, C: 32, Pad: 1, Stride: 1, N: 1, H: 8, W: 8}, method, 3),
		nn.ReLU{},
		nn.GlobalAvgPool{},
		nn.NewDense(64, 10, 4),
		nn.Softmax{},
	)
	return nw
}

func main() {
	// A deterministic synthetic "image" batch.
	batch := tensor.New(4, 32, 32, 3)
	batch.FillRandom(42, 0.5)

	summary, err := buildNet(nn.Auto).Summary(4, 32, 32, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:")
	fmt.Print(summary)

	ref, err := buildNet(nn.MethodDirect).Forward(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-backend agreement with direct convolution:")
	for _, m := range []nn.ConvMethod{nn.MethodGEMM, nn.MethodTensorCore, nn.MethodWinograd, nn.MethodFFT} {
		out, err := buildNet(m).Forward(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s max |dp| = %.2e\n", m, out.MaxAbsDiff(ref))
	}

	fmt.Println("\npredictions (tensor-core backend):")
	out, err := buildNet(nn.MethodTensorCore).Forward(batch)
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < out.N; n++ {
		best, bestP := 0, float32(0)
		for c := 0; c < out.C; c++ {
			if p := out.At(n, 0, 0, c); p > bestP {
				best, bestP = c, p
			}
		}
		fmt.Printf("  image %d -> class %d (p=%.3f)\n", n, best, bestP)
	}
}
