// ResNet inference walk-through: run every ResNet layer of Table I through
// the simulator, baseline vs Duplo, and print the per-layer and network
// totals (the data behind the ResNet group of Fig. 9 and Fig. 14).
//
//	go run ./examples/resnet [-ctas N]
package main

import (
	"flag"
	"fmt"
	"log"

	"duplo/internal/report"
	"duplo/internal/sim"
	"duplo/internal/workload"
)

func main() {
	ctas := flag.Int("ctas", 48, "max CTAs simulated per layer")
	flag.Parse()

	cfg := sim.TitanVConfig()
	cfg.MaxCTAs = *ctas
	cfg.SimSMs = 2

	t := report.NewTable("ResNet inference, baseline vs Duplo (1024-entry LHB)",
		"Layer", "GEMM MxNxK", "Duplication", "Base cycles", "Duplo cycles", "Improvement", "Hit rate")

	var baseTotal, dupTotal float64
	for _, l := range workload.ResNet {
		p := l.GemmParams()
		k, err := sim.NewConvKernel(l.FullName(), p)
		if err != nil {
			log.Fatal(err)
		}
		base, err := sim.Run(cfg, k)
		if err != nil {
			log.Fatal(err)
		}
		dcfg := cfg
		dcfg.Duplo = true
		dup, err := sim.Run(dcfg, k)
		if err != nil {
			log.Fatal(err)
		}
		// Scale the simulated prefix to the full grid for network totals.
		scale := float64(base.TotalCTAs) / float64(base.SimulatedCTAs)
		baseTotal += float64(base.Cycles) * scale
		dupTotal += float64(dup.Cycles) * scale

		t.AddRowCells([]string{
			l.Name,
			fmt.Sprintf("%dx%dx%d", p.GemmM(), p.GemmN(), p.GemmK()),
			fmt.Sprintf("%.1fx", p.DuplicationFactor()),
			fmt.Sprint(base.Cycles),
			fmt.Sprint(dup.Cycles),
			report.Pct(sim.Speedup(base, dup)),
			report.PctU(dup.LHBHitRate()),
		})
	}
	fmt.Print(t)
	fmt.Printf("\nnetwork execution time (scaled to full grids): baseline %.0f, duplo %.0f cycles\n",
		baseTotal, dupTotal)
	fmt.Printf("network-level reduction: %.1f%% (paper Fig. 14: ResNet inference ~-20%%)\n",
		100*(1-dupTotal/baseTotal))
}
